
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/visualize_trace.cpp" "examples/CMakeFiles/visualize_trace.dir/visualize_trace.cpp.o" "gcc" "examples/CMakeFiles/visualize_trace.dir/visualize_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vppb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/vppb_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/vppb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/ult/CMakeFiles/vppb_ult.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vppb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
