file(REMOVE_RECURSE
  "CMakeFiles/fileserver_whatif.dir/fileserver_whatif.cpp.o"
  "CMakeFiles/fileserver_whatif.dir/fileserver_whatif.cpp.o.d"
  "fileserver_whatif"
  "fileserver_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fileserver_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
