# Empty dependencies file for fileserver_whatif.
# This may be replaced when dependencies are built.
