# Empty compiler generated dependencies file for prodcons_tuning.
# This may be replaced when dependencies are built.
