file(REMOVE_RECURSE
  "CMakeFiles/prodcons_tuning.dir/prodcons_tuning.cpp.o"
  "CMakeFiles/prodcons_tuning.dir/prodcons_tuning.cpp.o.d"
  "prodcons_tuning"
  "prodcons_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prodcons_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
