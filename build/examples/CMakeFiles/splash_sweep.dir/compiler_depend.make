# Empty compiler generated dependencies file for splash_sweep.
# This may be replaced when dependencies are built.
