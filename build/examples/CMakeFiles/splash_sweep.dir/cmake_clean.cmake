file(REMOVE_RECURSE
  "CMakeFiles/splash_sweep.dir/splash_sweep.cpp.o"
  "CMakeFiles/splash_sweep.dir/splash_sweep.cpp.o.d"
  "splash_sweep"
  "splash_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splash_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
