file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_visualizer.dir/bench_fig5_visualizer.cpp.o"
  "CMakeFiles/bench_fig5_visualizer.dir/bench_fig5_visualizer.cpp.o.d"
  "bench_fig5_visualizer"
  "bench_fig5_visualizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_visualizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
