# Empty compiler generated dependencies file for bench_fig5_visualizer.
# This may be replaced when dependencies are built.
