file(REMOVE_RECURSE
  "CMakeFiles/bench_logsize_scaling.dir/bench_logsize_scaling.cpp.o"
  "CMakeFiles/bench_logsize_scaling.dir/bench_logsize_scaling.cpp.o.d"
  "bench_logsize_scaling"
  "bench_logsize_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_logsize_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
