# Empty dependencies file for bench_logsize_scaling.
# This may be replaced when dependencies are built.
