# Empty compiler generated dependencies file for bench_prodcons_case.
# This may be replaced when dependencies are built.
