file(REMOVE_RECURSE
  "CMakeFiles/bench_prodcons_case.dir/bench_prodcons_case.cpp.o"
  "CMakeFiles/bench_prodcons_case.dir/bench_prodcons_case.cpp.o.d"
  "bench_prodcons_case"
  "bench_prodcons_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prodcons_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
