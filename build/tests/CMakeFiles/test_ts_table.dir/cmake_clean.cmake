file(REMOVE_RECURSE
  "CMakeFiles/test_ts_table.dir/test_ts_table.cpp.o"
  "CMakeFiles/test_ts_table.dir/test_ts_table.cpp.o.d"
  "test_ts_table"
  "test_ts_table.pdb"
  "test_ts_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ts_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
