# Empty compiler generated dependencies file for test_excluded.
# This may be replaced when dependencies are built.
