file(REMOVE_RECURSE
  "CMakeFiles/test_excluded.dir/test_excluded.cpp.o"
  "CMakeFiles/test_excluded.dir/test_excluded.cpp.o.d"
  "test_excluded"
  "test_excluded.pdb"
  "test_excluded[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_excluded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
