# Empty compiler generated dependencies file for test_solaris.
# This may be replaced when dependencies are built.
