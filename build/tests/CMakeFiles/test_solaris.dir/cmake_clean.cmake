file(REMOVE_RECURSE
  "CMakeFiles/test_solaris.dir/test_solaris.cpp.o"
  "CMakeFiles/test_solaris.dir/test_solaris.cpp.o.d"
  "test_solaris"
  "test_solaris.pdb"
  "test_solaris[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solaris.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
