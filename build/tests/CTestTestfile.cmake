# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_ult[1]_include.cmake")
include("/root/repo/build/tests/test_solaris[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_recorder[1]_include.cmake")
include("/root/repo/build/tests/test_compiler[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_ts_table[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_viz[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_binary[1]_include.cmake")
include("/root/repo/build/tests/test_excluded[1]_include.cmake")
include("/root/repo/build/tests/test_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_edge[1]_include.cmake")
include("/root/repo/build/tests/test_stress[1]_include.cmake")
