# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_gen "/root/repo/build/tools/vppb" "gen" "radix" "--threads" "4" "--out" "/root/repo/build/cli_smoke.trace" "--binary")
set_tests_properties(cli_gen PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_info "/root/repo/build/tools/vppb" "info" "/root/repo/build/cli_smoke.trace")
set_tests_properties(cli_info PROPERTIES  DEPENDS "cli_gen" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_predict "/root/repo/build/tools/vppb" "predict" "/root/repo/build/cli_smoke.trace" "--max-cpus" "4")
set_tests_properties(cli_predict PROPERTIES  DEPENDS "cli_gen" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_simulate "/root/repo/build/tools/vppb" "simulate" "/root/repo/build/cli_smoke.trace" "--cpus" "2" "--columns" "60")
set_tests_properties(cli_simulate PROPERTIES  DEPENDS "cli_gen" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_analyze "/root/repo/build/tools/vppb" "analyze" "/root/repo/build/cli_smoke.trace" "--cpus" "2")
set_tests_properties(cli_analyze PROPERTIES  DEPENDS "cli_gen" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_convert "/root/repo/build/tools/vppb" "convert" "/root/repo/build/cli_smoke.trace" "/root/repo/build/cli_smoke.txt")
set_tests_properties(cli_convert PROPERTIES  DEPENDS "cli_gen" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_validate "/root/repo/build/tools/vppb" "validate" "forkjoin" "--cpus-list" "2" "--reps" "2")
set_tests_properties(cli_validate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage "/root/repo/build/tools/vppb")
set_tests_properties(cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
