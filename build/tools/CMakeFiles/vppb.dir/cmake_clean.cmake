file(REMOVE_RECURSE
  "CMakeFiles/vppb.dir/vppb.cpp.o"
  "CMakeFiles/vppb.dir/vppb.cpp.o.d"
  "vppb"
  "vppb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vppb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
