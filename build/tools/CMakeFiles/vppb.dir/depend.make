# Empty dependencies file for vppb.
# This may be replaced when dependencies are built.
