# Empty dependencies file for vppb_viz.
# This may be replaced when dependencies are built.
