file(REMOVE_RECURSE
  "libvppb_viz.a"
)
