file(REMOVE_RECURSE
  "CMakeFiles/vppb_viz.dir/analysis.cpp.o"
  "CMakeFiles/vppb_viz.dir/analysis.cpp.o.d"
  "CMakeFiles/vppb_viz.dir/ascii.cpp.o"
  "CMakeFiles/vppb_viz.dir/ascii.cpp.o.d"
  "CMakeFiles/vppb_viz.dir/model.cpp.o"
  "CMakeFiles/vppb_viz.dir/model.cpp.o.d"
  "CMakeFiles/vppb_viz.dir/svg.cpp.o"
  "CMakeFiles/vppb_viz.dir/svg.cpp.o.d"
  "libvppb_viz.a"
  "libvppb_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vppb_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
