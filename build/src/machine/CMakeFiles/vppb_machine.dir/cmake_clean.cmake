file(REMOVE_RECURSE
  "CMakeFiles/vppb_machine.dir/machine.cpp.o"
  "CMakeFiles/vppb_machine.dir/machine.cpp.o.d"
  "CMakeFiles/vppb_machine.dir/validate.cpp.o"
  "CMakeFiles/vppb_machine.dir/validate.cpp.o.d"
  "libvppb_machine.a"
  "libvppb_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vppb_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
