file(REMOVE_RECURSE
  "libvppb_machine.a"
)
