# Empty compiler generated dependencies file for vppb_machine.
# This may be replaced when dependencies are built.
