# Empty dependencies file for vppb_util.
# This may be replaced when dependencies are built.
