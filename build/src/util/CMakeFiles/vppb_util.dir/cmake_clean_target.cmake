file(REMOVE_RECURSE
  "libvppb_util.a"
)
