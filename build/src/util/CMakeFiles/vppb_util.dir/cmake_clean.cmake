file(REMOVE_RECURSE
  "CMakeFiles/vppb_util.dir/flags.cpp.o"
  "CMakeFiles/vppb_util.dir/flags.cpp.o.d"
  "CMakeFiles/vppb_util.dir/rng.cpp.o"
  "CMakeFiles/vppb_util.dir/rng.cpp.o.d"
  "CMakeFiles/vppb_util.dir/stats.cpp.o"
  "CMakeFiles/vppb_util.dir/stats.cpp.o.d"
  "CMakeFiles/vppb_util.dir/strings.cpp.o"
  "CMakeFiles/vppb_util.dir/strings.cpp.o.d"
  "CMakeFiles/vppb_util.dir/table.cpp.o"
  "CMakeFiles/vppb_util.dir/table.cpp.o.d"
  "libvppb_util.a"
  "libvppb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vppb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
