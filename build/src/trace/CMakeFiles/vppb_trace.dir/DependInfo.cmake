
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/binary.cpp" "src/trace/CMakeFiles/vppb_trace.dir/binary.cpp.o" "gcc" "src/trace/CMakeFiles/vppb_trace.dir/binary.cpp.o.d"
  "/root/repo/src/trace/event.cpp" "src/trace/CMakeFiles/vppb_trace.dir/event.cpp.o" "gcc" "src/trace/CMakeFiles/vppb_trace.dir/event.cpp.o.d"
  "/root/repo/src/trace/io.cpp" "src/trace/CMakeFiles/vppb_trace.dir/io.cpp.o" "gcc" "src/trace/CMakeFiles/vppb_trace.dir/io.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/trace/CMakeFiles/vppb_trace.dir/trace.cpp.o" "gcc" "src/trace/CMakeFiles/vppb_trace.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vppb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ult/CMakeFiles/vppb_ult.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
