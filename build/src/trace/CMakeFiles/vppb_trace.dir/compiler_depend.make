# Empty compiler generated dependencies file for vppb_trace.
# This may be replaced when dependencies are built.
