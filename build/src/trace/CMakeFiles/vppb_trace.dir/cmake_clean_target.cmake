file(REMOVE_RECURSE
  "libvppb_trace.a"
)
