file(REMOVE_RECURSE
  "CMakeFiles/vppb_trace.dir/binary.cpp.o"
  "CMakeFiles/vppb_trace.dir/binary.cpp.o.d"
  "CMakeFiles/vppb_trace.dir/event.cpp.o"
  "CMakeFiles/vppb_trace.dir/event.cpp.o.d"
  "CMakeFiles/vppb_trace.dir/io.cpp.o"
  "CMakeFiles/vppb_trace.dir/io.cpp.o.d"
  "CMakeFiles/vppb_trace.dir/trace.cpp.o"
  "CMakeFiles/vppb_trace.dir/trace.cpp.o.d"
  "libvppb_trace.a"
  "libvppb_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vppb_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
