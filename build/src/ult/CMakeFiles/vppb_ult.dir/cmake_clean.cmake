file(REMOVE_RECURSE
  "CMakeFiles/vppb_ult.dir/clock.cpp.o"
  "CMakeFiles/vppb_ult.dir/clock.cpp.o.d"
  "CMakeFiles/vppb_ult.dir/fiber.cpp.o"
  "CMakeFiles/vppb_ult.dir/fiber.cpp.o.d"
  "CMakeFiles/vppb_ult.dir/runtime.cpp.o"
  "CMakeFiles/vppb_ult.dir/runtime.cpp.o.d"
  "CMakeFiles/vppb_ult.dir/wait_queue.cpp.o"
  "CMakeFiles/vppb_ult.dir/wait_queue.cpp.o.d"
  "libvppb_ult.a"
  "libvppb_ult.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vppb_ult.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
