# Empty dependencies file for vppb_ult.
# This may be replaced when dependencies are built.
