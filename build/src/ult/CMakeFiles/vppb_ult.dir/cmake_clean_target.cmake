file(REMOVE_RECURSE
  "libvppb_ult.a"
)
