
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ult/clock.cpp" "src/ult/CMakeFiles/vppb_ult.dir/clock.cpp.o" "gcc" "src/ult/CMakeFiles/vppb_ult.dir/clock.cpp.o.d"
  "/root/repo/src/ult/fiber.cpp" "src/ult/CMakeFiles/vppb_ult.dir/fiber.cpp.o" "gcc" "src/ult/CMakeFiles/vppb_ult.dir/fiber.cpp.o.d"
  "/root/repo/src/ult/runtime.cpp" "src/ult/CMakeFiles/vppb_ult.dir/runtime.cpp.o" "gcc" "src/ult/CMakeFiles/vppb_ult.dir/runtime.cpp.o.d"
  "/root/repo/src/ult/wait_queue.cpp" "src/ult/CMakeFiles/vppb_ult.dir/wait_queue.cpp.o" "gcc" "src/ult/CMakeFiles/vppb_ult.dir/wait_queue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vppb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
