# Empty compiler generated dependencies file for vppb_recorder.
# This may be replaced when dependencies are built.
