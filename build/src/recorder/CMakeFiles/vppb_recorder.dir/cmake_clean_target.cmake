file(REMOVE_RECURSE
  "libvppb_recorder.a"
)
