file(REMOVE_RECURSE
  "CMakeFiles/vppb_recorder.dir/recorder.cpp.o"
  "CMakeFiles/vppb_recorder.dir/recorder.cpp.o.d"
  "libvppb_recorder.a"
  "libvppb_recorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vppb_recorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
