file(REMOVE_RECURSE
  "libvppb_core.a"
)
