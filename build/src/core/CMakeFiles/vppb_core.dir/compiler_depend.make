# Empty compiler generated dependencies file for vppb_core.
# This may be replaced when dependencies are built.
