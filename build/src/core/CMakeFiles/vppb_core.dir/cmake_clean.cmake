file(REMOVE_RECURSE
  "CMakeFiles/vppb_core.dir/compiler.cpp.o"
  "CMakeFiles/vppb_core.dir/compiler.cpp.o.d"
  "CMakeFiles/vppb_core.dir/engine.cpp.o"
  "CMakeFiles/vppb_core.dir/engine.cpp.o.d"
  "CMakeFiles/vppb_core.dir/result.cpp.o"
  "CMakeFiles/vppb_core.dir/result.cpp.o.d"
  "CMakeFiles/vppb_core.dir/sweep.cpp.o"
  "CMakeFiles/vppb_core.dir/sweep.cpp.o.d"
  "CMakeFiles/vppb_core.dir/ts_table.cpp.o"
  "CMakeFiles/vppb_core.dir/ts_table.cpp.o.d"
  "libvppb_core.a"
  "libvppb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vppb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
