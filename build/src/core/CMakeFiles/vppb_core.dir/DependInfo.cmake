
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/compiler.cpp" "src/core/CMakeFiles/vppb_core.dir/compiler.cpp.o" "gcc" "src/core/CMakeFiles/vppb_core.dir/compiler.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/vppb_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/vppb_core.dir/engine.cpp.o.d"
  "/root/repo/src/core/result.cpp" "src/core/CMakeFiles/vppb_core.dir/result.cpp.o" "gcc" "src/core/CMakeFiles/vppb_core.dir/result.cpp.o.d"
  "/root/repo/src/core/sweep.cpp" "src/core/CMakeFiles/vppb_core.dir/sweep.cpp.o" "gcc" "src/core/CMakeFiles/vppb_core.dir/sweep.cpp.o.d"
  "/root/repo/src/core/ts_table.cpp" "src/core/CMakeFiles/vppb_core.dir/ts_table.cpp.o" "gcc" "src/core/CMakeFiles/vppb_core.dir/ts_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/vppb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vppb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ult/CMakeFiles/vppb_ult.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
