# Empty compiler generated dependencies file for vppb_solaris.
# This may be replaced when dependencies are built.
