file(REMOVE_RECURSE
  "CMakeFiles/vppb_solaris.dir/probe.cpp.o"
  "CMakeFiles/vppb_solaris.dir/probe.cpp.o.d"
  "CMakeFiles/vppb_solaris.dir/program.cpp.o"
  "CMakeFiles/vppb_solaris.dir/program.cpp.o.d"
  "CMakeFiles/vppb_solaris.dir/pthread_compat.cpp.o"
  "CMakeFiles/vppb_solaris.dir/pthread_compat.cpp.o.d"
  "CMakeFiles/vppb_solaris.dir/sync.cpp.o"
  "CMakeFiles/vppb_solaris.dir/sync.cpp.o.d"
  "CMakeFiles/vppb_solaris.dir/threads.cpp.o"
  "CMakeFiles/vppb_solaris.dir/threads.cpp.o.d"
  "libvppb_solaris.a"
  "libvppb_solaris.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vppb_solaris.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
