file(REMOVE_RECURSE
  "libvppb_solaris.a"
)
