
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solaris/probe.cpp" "src/solaris/CMakeFiles/vppb_solaris.dir/probe.cpp.o" "gcc" "src/solaris/CMakeFiles/vppb_solaris.dir/probe.cpp.o.d"
  "/root/repo/src/solaris/program.cpp" "src/solaris/CMakeFiles/vppb_solaris.dir/program.cpp.o" "gcc" "src/solaris/CMakeFiles/vppb_solaris.dir/program.cpp.o.d"
  "/root/repo/src/solaris/pthread_compat.cpp" "src/solaris/CMakeFiles/vppb_solaris.dir/pthread_compat.cpp.o" "gcc" "src/solaris/CMakeFiles/vppb_solaris.dir/pthread_compat.cpp.o.d"
  "/root/repo/src/solaris/sync.cpp" "src/solaris/CMakeFiles/vppb_solaris.dir/sync.cpp.o" "gcc" "src/solaris/CMakeFiles/vppb_solaris.dir/sync.cpp.o.d"
  "/root/repo/src/solaris/threads.cpp" "src/solaris/CMakeFiles/vppb_solaris.dir/threads.cpp.o" "gcc" "src/solaris/CMakeFiles/vppb_solaris.dir/threads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ult/CMakeFiles/vppb_ult.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/vppb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vppb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
