file(REMOVE_RECURSE
  "CMakeFiles/vppb_workloads.dir/excluded.cpp.o"
  "CMakeFiles/vppb_workloads.dir/excluded.cpp.o.d"
  "CMakeFiles/vppb_workloads.dir/prodcons.cpp.o"
  "CMakeFiles/vppb_workloads.dir/prodcons.cpp.o.d"
  "CMakeFiles/vppb_workloads.dir/splash.cpp.o"
  "CMakeFiles/vppb_workloads.dir/splash.cpp.o.d"
  "CMakeFiles/vppb_workloads.dir/synthetic.cpp.o"
  "CMakeFiles/vppb_workloads.dir/synthetic.cpp.o.d"
  "libvppb_workloads.a"
  "libvppb_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vppb_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
