# Empty dependencies file for vppb_workloads.
# This may be replaced when dependencies are built.
