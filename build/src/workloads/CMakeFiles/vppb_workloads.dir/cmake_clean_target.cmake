file(REMOVE_RECURSE
  "libvppb_workloads.a"
)
