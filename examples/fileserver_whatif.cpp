// What-if analysis of an I/O-bound server — exercising the I/O
// extension (the paper's §6 future work: "our technique does not model
// I/O ... we are currently working on solving this problem").
//
// A file server handles `requests` with a pool of worker threads: each
// request is parse (CPU) → disk read (I/O latency) → format reply
// (CPU).  Because the I/O waits release the CPU, the right pool size is
// far larger than the CPU count; this example records ONE uni-processor
// run per pool size and predicts the throughput curve.
//
// Usage: ./fileserver_whatif --cpus 4 --requests 64
#include <cstdio>
#include <memory>

#include "core/engine.hpp"
#include "recorder/recorder.hpp"
#include "solaris/program.hpp"
#include "solaris/solaris.hpp"
#include "util/flags.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace vppb;

void file_server(int workers, int requests, SimTime parse_cost,
                 SimTime disk_latency, SimTime reply_cost) {
  // A shared work counter guarded by a mutex: each worker claims one
  // request at a time until none remain.
  struct Shared {
    sol::Mutex queue_lock;
    int remaining;
  };
  auto shared = std::make_shared<Shared>();
  shared->remaining = requests;
  for (int w = 0; w < workers; ++w) {
    sol::thr_create_fn(
        [=]() -> void* {
          for (;;) {
            {
              sol::ScopedLock lock(shared->queue_lock);
              if (shared->remaining == 0) return nullptr;
              --shared->remaining;
            }
            sol::compute(parse_cost);
            sol::io_wait(disk_latency, "disk");
            sol::compute(reply_cost);
          }
        },
        0, nullptr, "server_worker");
  }
  sol::join_all();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define_i64("cpus", 4, "simulated processors");
  flags.define_i64("requests", 64, "requests to serve");
  flags.define_i64("parse-us", 400, "CPU cost to parse a request");
  flags.define_i64("disk-us", 2000, "disk latency per request");
  flags.define_i64("reply-us", 400, "CPU cost to format the reply");
  flags.parse(argc, argv);
  const int cpus = static_cast<int>(flags.i64("cpus"));
  const int requests = static_cast<int>(flags.i64("requests"));

  std::printf("file server: %d requests of parse %lldus + disk %lldus + "
              "reply %lldus on %d CPUs\n\n",
              requests, static_cast<long long>(flags.i64("parse-us")),
              static_cast<long long>(flags.i64("disk-us")),
              static_cast<long long>(flags.i64("reply-us")), cpus);

  TextTable table;
  table.header({"workers", "predicted time", "speed-up vs 1 worker"});
  double base_ms = 0.0;
  for (int workers = 1; workers <= 4 * cpus; workers *= 2) {
    sol::Program program;
    const trace::Trace log = rec::record_program(program, [&]() {
      file_server(workers, requests, SimTime::micros(flags.i64("parse-us")),
                  SimTime::micros(flags.i64("disk-us")),
                  SimTime::micros(flags.i64("reply-us")));
    });
    core::SimConfig cfg;
    cfg.hw.cpus = cpus;
    cfg.build_timeline = false;
    const core::SimResult r = core::simulate(log, cfg);
    const double ms = r.total.seconds_d() * 1000.0;
    if (workers == 1) base_ms = ms;
    table.row({strprintf("%d", workers), strprintf("%.1fms", ms),
               strprintf("%.2fx", base_ms / ms)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "because the disk waits overlap, the useful pool size exceeds the "
      "CPU count —\nthe prediction one would want before sizing a real "
      "thread pool.\n\n"
      "caveat (paper §4/§6): this server hands out work from a shared "
      "queue, the very\npattern that made Raytrace/Volrend unusable with "
      "the original recorder (one\nthread steals all tasks on one LWP).  "
      "The io_wait extension yields the LWP, so\nrecording works, but the "
      "per-worker request distribution is still frozen from\nthe "
      "uni-processor run — trace-driven prediction under-estimates "
      "dynamically\nbalanced programs.\n");
  return 0;
}
