// Sweep a SPLASH-style application across processor counts and
// scheduling policies — the flexible what-if analysis the paper's
// introduction motivates (predicting bottlenecks at processor counts
// you did not measure on).
//
// Usage:
//   ./splash_sweep --app FFT --max-cpus 16
//   ./splash_sweep --app Ocean --lwps 4 --comm-delay-us 100
#include <cstdio>

#include "core/engine.hpp"
#include "recorder/recorder.hpp"
#include "solaris/program.hpp"
#include "util/flags.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workloads/splash.hpp"

int main(int argc, char** argv) {
  using namespace vppb;

  Flags flags;
  flags.define_string("app", "FFT", "Ocean|Water-spatial|FFT|Radix|LU");
  flags.define_i64("max-cpus", 16, "largest processor count to predict");
  flags.define_i64("lwps", 0, "LWP pool (0 = one per thread)");
  flags.define_i64("comm-delay-us", 0, "inter-CPU communication delay");
  flags.define_double("scale", 0.2, "problem scale");
  flags.parse(argc, argv);

  const auto suite = workloads::splash_suite();
  const workloads::SplashApp* app = nullptr;
  for (const auto& a : suite) {
    if (a.name == flags.str("app")) app = &a;
  }
  if (app == nullptr) {
    std::fprintf(stderr, "unknown app '%s'\n%s", flags.str("app").c_str(),
                 flags.usage("splash_sweep").c_str());
    return 1;
  }

  std::printf("%s: predicted speed-up from one uni-processor log per "
              "thread count\n\n",
              app->name.c_str());
  TextTable table;
  table.header({"CPUs", "speed-up", "efficiency", "events"});
  for (int cpus = 1; cpus <= flags.i64("max-cpus"); cpus *= 2) {
    // One thread per processor, one log per setup — as the paper does
    // for the SPLASH programs.
    sol::Program program;
    const double scale = flags.dbl("scale");
    const trace::Trace log = rec::record_program(program, [&]() {
      app->run(workloads::SplashParams{cpus, scale});
    });
    core::SimConfig cfg;
    cfg.hw.cpus = cpus;
    cfg.sched.lwps = static_cast<int>(flags.i64("lwps"));
    cfg.hw.comm_delay = SimTime::micros(flags.i64("comm-delay-us"));
    cfg.build_timeline = false;
    const core::SimResult r = core::simulate(log, cfg);
    table.row({strprintf("%d", cpus), strprintf("%.2f", r.speedup),
               strprintf("%.0f%%", 100.0 * r.speedup / cpus),
               strprintf("%zu", log.records.size())});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
