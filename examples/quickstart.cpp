// Quickstart: the complete VPPB workflow from paper fig. 1 in ~60 lines.
//
//   1. write a multithreaded program against the Solaris threads API;
//   2. run it once on the uni-processor runtime with the Recorder
//      attached (the LD_PRELOAD substitute) — this produces the log;
//   3. feed the log to the Simulator with a hardware configuration and
//      scheduling policy;
//   4. inspect the predicted speed-up and the visualized execution.
//
// Build & run:  ./quickstart
#include <cstdio>
#include <fstream>

#include "core/engine.hpp"
#include "recorder/recorder.hpp"
#include "solaris/program.hpp"
#include "solaris/solaris.hpp"
#include "trace/io.hpp"
#include "viz/visualizer.hpp"

namespace {

using namespace vppb;

// A small program: four workers compute independently, then combine
// their results under a mutex.
void my_program() {
  sol::Mutex result_mutex;
  for (int i = 0; i < 4; ++i) {
    sol::thr_create_fn(
        [&result_mutex]() -> void* {
          sol::compute(SimTime::millis(20));     // the parallel part
          sol::ScopedLock lock(result_mutex);
          sol::compute(SimTime::millis(1));      // the combining part
          return nullptr;
        },
        0, nullptr, "worker");
  }
  sol::join_all();
}

}  // namespace

int main() {
  // Step 1+2: one monitored uni-processor execution.
  sol::Program program;
  const trace::Trace log = rec::record_program(program, my_program);
  trace::save_file(log, "quickstart.trace");
  std::printf("recorded %zu events over %s of uni-processor execution "
              "(saved to quickstart.trace)\n",
              log.records.size(), log.duration().to_string().c_str());

  // Step 3: simulate any number of processors from the same log.
  std::printf("\npredicted speed-up:\n");
  for (int cpus : {1, 2, 4, 8}) {
    std::printf("  %d CPUs: %.2fx\n", cpus, core::predict_speedup(log, cpus));
  }

  // Step 4: visualize the 4-CPU prediction.
  core::SimConfig cfg;
  cfg.hw.cpus = 4;
  const core::SimResult result = core::simulate(log, cfg);
  viz::Visualizer viz(result, log);
  std::printf("\nexecution flow on 4 CPUs:\n%s",
              viz::render_flow_ascii(viz, 90).c_str());
  std::ofstream("quickstart.svg") << viz::render_svg(viz, viz::RenderOptions{});
  std::printf("\nwrote quickstart.svg\n");
  return 0;
}
