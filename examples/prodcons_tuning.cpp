// The paper's §5 performance-tuning walkthrough, as a user would do it:
//
//   1. record the naive producer-consumer program and simulate 8 CPUs —
//      the program barely speeds up;
//   2. use the Visualizer's navigation to find the culprit: click on a
//      blocked thread's arrow, then step through "similar events" (same
//      mutex) and see every thread blocking on the same lock, each with
//      its source line;
//   3. apply the paper's fix (100 buffers with private locks) and
//      re-run: the speed-up jumps to ~7.7x.
#include <cstdio>

#include "core/engine.hpp"
#include "recorder/recorder.hpp"
#include "solaris/program.hpp"
#include "util/flags.hpp"
#include "viz/visualizer.hpp"
#include "workloads/prodcons.hpp"

namespace {

using namespace vppb;

core::SimResult simulate_on(const trace::Trace& log, int cpus) {
  core::SimConfig cfg;
  cfg.hw.cpus = cpus;
  return core::simulate(log, cfg);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define_i64("cpus", 8, "simulated processors");
  flags.define_i64("producers", 60, "producer threads");
  flags.define_i64("consumers", 30, "consumer threads");
  flags.parse(argc, argv);
  const int cpus = static_cast<int>(flags.i64("cpus"));

  workloads::ProdConsParams params;
  params.producers = static_cast<int>(flags.i64("producers"));
  params.consumers = static_cast<int>(flags.i64("consumers"));

  // --- Step 1: the naive program barely speeds up ---
  sol::Program p1;
  const trace::Trace naive =
      rec::record_program(p1, [&params]() { workloads::prodcons_naive(params); });
  const core::SimResult naive_sim = simulate_on(naive, cpus);
  std::printf("naive program on %d CPUs: %.1f%% faster — why so little?\n\n",
              cpus, 100.0 * (naive_sim.speedup - 1.0));

  // --- Step 2: investigate with the Visualizer ---
  viz::Visualizer viz(naive_sim, naive);
  // "Click" the first long mutex_lock event of any consumer.
  std::size_t clicked = 0;
  for (std::size_t i = 0; i < viz.event_count(); ++i) {
    const auto& e = viz.event(i);
    if (e.op == trace::Op::kMutexLock && (e.done - e.at) > SimTime::millis(1)) {
      clicked = i;
      break;
    }
  }
  viz.select_event(clicked);
  const viz::EventInfo info = viz.event_info(clicked);
  std::printf("selected event: %s on %s by thread '%s' at %s — blocked %s\n",
              info.op.c_str(), info.object.c_str(), info.thread_name.c_str(),
              info.source.c_str(), info.duration.to_string().c_str());

  // Step through similar events (same mutex): every thread hits it.
  std::printf("stepping through operations on the same mutex:\n");
  std::size_t cursor = clicked;
  int distinct_threads = 0;
  trace::ThreadId last_tid = -1;
  for (int steps = 0; steps < 6; ++steps) {
    const auto next = viz.next_similar_event(cursor);
    if (!next) break;
    cursor = *next;
    const viz::EventInfo e = viz.event_info(cursor);
    std::printf("  %s by T%d (%s) at %s\n", e.op.c_str(), e.tid,
                e.thread_name.c_str(), e.source.c_str());
    if (e.tid != last_tid) {
      ++distinct_threads;
      last_tid = e.tid;
    }
  }
  std::printf("=> the same mutex blocks %s threads: the buffer lock is the "
              "bottleneck.\n\n",
              distinct_threads > 1 ? "many different" : "the");

  // --- Step 3: the paper's fix ---
  sol::Program p2;
  const trace::Trace tuned =
      rec::record_program(p2, [&params]() { workloads::prodcons_tuned(params); });
  const core::SimResult tuned_sim = simulate_on(tuned, cpus);
  std::printf("tuned program (100 buffers, split locks) on %d CPUs: %.2fx "
              "speed-up (was %.2fx)\n",
              cpus, tuned_sim.speedup, naive_sim.speedup);
  return 0;
}
