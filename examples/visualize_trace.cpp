// Load a recorded log file, simulate it under a chosen configuration,
// and render the two graphs — the Visualizer end of the paper's
// workflow, driven from the command line.
//
// Usage:
//   ./quickstart                            # produces quickstart.trace
//   ./visualize_trace quickstart.trace --cpus 4 --svg out.svg
//   ./visualize_trace quickstart.trace --cpus 2 --zoom 3 --compress
#include <cstdio>
#include <fstream>

#include "core/engine.hpp"
#include "trace/io.hpp"
#include "util/error.hpp"
#include "util/flags.hpp"
#include "viz/visualizer.hpp"

int main(int argc, char** argv) {
  using namespace vppb;

  Flags flags;
  flags.define_i64("cpus", 4, "simulated processors");
  flags.define_i64("lwps", 0, "LWP pool (0 = one per thread)");
  flags.define_string("svg", "", "write the combined SVG here");
  flags.define_double("zoom", 1.0, "zoom factor (1.5/3 are paper steps)");
  flags.define_bool("compress", false, "hide threads inactive in the view");
  flags.define_i64("columns", 110, "ASCII width");
  flags.parse(argc, argv);

  if (flags.positional().empty()) {
    std::fprintf(stderr, "usage: visualize_trace <trace-file> [flags]\n%s",
                 flags.usage("visualize_trace").c_str());
    return 1;
  }

  try {
    const trace::Trace log = trace::load_file(flags.positional()[0]);
    core::SimConfig cfg;
    cfg.hw.cpus = static_cast<int>(flags.i64("cpus"));
    cfg.sched.lwps = static_cast<int>(flags.i64("lwps"));
    const core::SimResult result = core::simulate(log, cfg);

    std::printf("%s: %zu events, %zu threads; predicted %s on %d CPUs "
                "(speed-up %.2f)\n\n",
                flags.positional()[0].c_str(), log.records.size(),
                log.threads.size(), result.total.to_string().c_str(),
                cfg.hw.cpus, result.speedup);

    viz::Visualizer viz(result, log);
    if (flags.dbl("zoom") > 1.0) viz.zoom_in(flags.dbl("zoom"));
    if (flags.boolean("compress")) viz.compress_threads();

    const int columns = static_cast<int>(flags.i64("columns"));
    std::printf("%s\n", viz::render_parallelism_ascii(viz, columns, 8).c_str());
    std::printf("%s", viz::render_flow_ascii(viz, columns).c_str());

    if (!flags.str("svg").empty()) {
      std::ofstream(flags.str("svg"))
          << viz::render_svg(viz, viz::RenderOptions{});
      std::printf("\nwrote %s\n", flags.str("svg").c_str());
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
