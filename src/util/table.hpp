// Plain-text table rendering for the bench binaries, which print the same
// rows the paper's tables report.
#pragma once

#include <string>
#include <vector>

namespace vppb {

/// A simple left/right-aligned text table.  Columns are sized to fit; the
/// first row added with header() is separated from the body by a rule.
class TextTable {
 public:
  void header(std::vector<std::string> cells);
  void row(std::vector<std::string> cells);

  /// Render with single-space padding and '|' separators, e.g.
  ///   App    | 2 CPUs | 4 CPUs
  ///   -------+--------+-------
  ///   Ocean  | 1.96   | 3.85
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vppb
