#include "util/rng.hpp"

#include <cmath>

namespace vppb {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  have_spare_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

std::uint64_t Rng::below(std::uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::gaussian() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double m = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * m;
  have_spare_ = true;
  return u * m;
}

double Rng::gaussian(double mean, double stddev) {
  return mean + stddev * gaussian();
}

double Rng::jitter_factor(double rel_stddev) {
  if (rel_stddev <= 0.0) return 1.0;
  double f = gaussian(1.0, rel_stddev);
  const double lo = 1.0 - 4.0 * rel_stddev;
  const double hi = 1.0 + 4.0 * rel_stddev;
  if (f < lo) f = lo;
  if (f > hi) f = hi;
  return f < 0.01 ? 0.01 : f;
}

Rng Rng::split() {
  Rng child(next_u64());
  return child;
}

}  // namespace vppb
