// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) for chunk checksums in the
// crash-safe trace log.
//
// The implementation is a plain table walk over a compile-time table:
// no allocation, no locks, no errno — deliberately async-signal-safe so
// the recorder's crash finalizer can checksum the pending chunk from
// inside a SIGSEGV handler.
#pragma once

#include <cstddef>
#include <cstdint>

namespace vppb::util {

/// Incremental CRC-32: pass the previous return value as `seed` to
/// continue a running checksum (seed 0 starts a fresh one).
std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed = 0);

}  // namespace vppb::util
