#include "util/netem.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace vppb::util {
namespace {

/// xorshift64* — the same deterministic generator the retry jitter and
/// the chaos harness use; a schedule is replayable from its seed.
std::uint64_t next_rand(std::uint64_t& state) {
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 2685821657736338717ULL;
}

std::int64_t parse_int(const std::string& s, const std::string& entry) {
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || s.empty())
    throw Error("netem: bad number '" + s + "' in entry '" + entry + "'");
  return static_cast<std::int64_t>(v);
}

constexpr std::size_t kChunk = 16384;
constexpr int kPumpPollMs = 50;  ///< how often idle pumps re-check rules

}  // namespace

NetemRelay::NetemRelay(NetemOptions opt) : opt_(std::move(opt)) {}

NetemRelay::~NetemRelay() { stop(); }

NetemRelay::Rules NetemRelay::parse(const std::string& spec) {
  Rules r;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    std::vector<std::string> parts;
    std::size_t p = 0;
    while (p <= entry.size()) {
      std::size_t colon = entry.find(':', p);
      if (colon == std::string::npos) colon = entry.size();
      parts.push_back(entry.substr(p, colon - p));
      p = colon + 1;
    }
    const std::string& site = parts[0];
    const auto arg = [&](std::size_t i) -> std::int64_t {
      if (i >= parts.size())
        throw Error("netem: entry '" + entry + "' is missing arguments");
      return parse_int(parts[i], entry);
    };
    if (site == "delay-ms") {
      r.delay_ms = static_cast<int>(arg(1));
    } else if (site == "drop") {
      r.drop_pct = static_cast<int>(arg(1));
      if (r.drop_pct < 0 || r.drop_pct > 100)
        throw Error("netem: drop percentage out of range in '" + entry + "'");
    } else if (site == "partition") {
      r.partition_start_ms = arg(1);
      r.partition_dur_ms = arg(2);
    } else if (site == "half-open") {
      r.half_open_period = static_cast<std::uint64_t>(arg(1));
      if (r.half_open_period == 0)
        throw Error("netem: half-open period must be > 0 in '" + entry + "'");
    } else if (site == "trickle") {
      r.trickle_bytes = static_cast<std::size_t>(arg(1));
      if (r.trickle_bytes == 0)
        throw Error("netem: trickle bytes must be > 0 in '" + entry + "'");
    } else {
      throw Error("netem: unknown site '" + site + "' (know delay-ms, drop, "
                  "partition, half-open, trickle)");
    }
  }
  return r;
}

void NetemRelay::start() {
  VPPB_CHECK_MSG(!running_.load(), "netem relay already started");
  rules_ = parse(opt_.schedule);
  rng_ = opt_.seed ? opt_.seed : 1;
  if (!opt_.listen_unix.empty()) {
    listener_ = listen_unix(opt_.listen_unix);
    endpoint_ = opt_.listen_unix;
  } else {
    port_ = opt_.listen_port;
    listener_ = listen_tcp(port_);
    endpoint_ = strprintf("127.0.0.1:%u", port_);
  }
  started_at_ = std::chrono::steady_clock::now();
  running_.store(true);
  accept_thread_ = std::thread(&NetemRelay::accept_loop, this);
}

void NetemRelay::stop() {
  if (!running_.exchange(false)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto& c : conns_) {
      c->client.shutdown_both();
      c->target.shutdown_both();
    }
  }
  // The accept thread is gone, so conns_ is stable from here.
  for (auto& c : conns_) {
    if (c->up.joinable()) c->up.join();
    if (c->down.joinable()) c->down.join();
  }
  conns_.clear();
  if (!opt_.listen_unix.empty()) ::unlink(opt_.listen_unix.c_str());
}

std::int64_t NetemRelay::elapsed_ms() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - started_at_)
      .count();
}

bool NetemRelay::partitioned() const {
  if (!running_.load() || rules_.partition_start_ms < 0) return false;
  const std::int64_t t = elapsed_ms();
  return t >= rules_.partition_start_ms &&
         t < rules_.partition_start_ms + rules_.partition_dur_ms;
}

void NetemRelay::accept_loop() {
  while (running_.load()) {
    Socket s = accept_with_timeout(listener_, 100);
    if (!s.valid()) continue;
    ++accepted_;
    connections_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_unique<Conn>();
    conn->client = std::move(s);
    conn->blackholed = partitioned();
    // Seeded per-connection plan, decided up front so the two pump
    // threads never touch the generator.
    if (rules_.drop_pct > 0 &&
        static_cast<int>(next_rand(rng_) % 100) < rules_.drop_pct) {
      conn->cut_after = static_cast<std::size_t>(next_rand(rng_) % 8192);
      conn->cut_closes = true;
    } else if (rules_.half_open_period > 0 &&
               accepted_ % rules_.half_open_period == 0) {
      conn->cut_after = static_cast<std::size_t>(next_rand(rng_) % 8192);
      conn->cut_closes = false;
    }
    try {
      conn->target =
          opt_.target_unix.empty()
              ? connect_tcp(opt_.target_host, opt_.target_port,
                            opt_.connect_timeout_ms)
              : connect_unix(opt_.target_unix, opt_.connect_timeout_ms);
    } catch (const Error&) {
      // Target down: the client sees exactly what it would see from a
      // dead shard — a closed connection.
      continue;
    }
    conn->client.set_recv_timeout(kPumpPollMs);
    conn->target.set_recv_timeout(kPumpPollMs);
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (!running_.load()) break;
    conns_.push_back(std::move(conn));
    Conn* cp = conns_.back().get();
    cp->up = std::thread(&NetemRelay::pump, this, cp, true);
    cp->down = std::thread(&NetemRelay::pump, this, cp, false);
  }
}

void NetemRelay::pump(Conn* conn, bool upstream) {
  Socket& src = upstream ? conn->client : conn->target;
  Socket& dst = upstream ? conn->target : conn->client;
  std::uint8_t buf[kChunk];
  const std::size_t cap =
      rules_.trickle_bytes > 0 ? std::min(rules_.trickle_bytes, kChunk)
                               : kChunk;
  const auto cut = [&]() {
    if (!conn->dead.exchange(true))
      cut_.fetch_add(1, std::memory_order_relaxed);
    conn->client.shutdown_both();
    conn->target.shutdown_both();
  };
  try {
    for (;;) {
      if (!running_.load()) return;
      const bool in_partition = partitioned();
      // A connection that predates the partition is cut when the window
      // opens; one born inside it is cut when the window closes (its
      // stream integrity is unknowable — frames vanished into the
      // black hole).
      if (in_partition && !conn->blackholed) return cut();
      if (!in_partition && conn->blackholed) return cut();
      std::size_t n;
      try {
        n = src.recv_some(buf, cap);
      } catch (const SocketTimeout&) {
        continue;  // idle tick: re-check partition / stop flags
      }
      if (n == 0) {
        // Clean end-of-stream: propagate the half-close downstream so
        // in-flight bytes in the other direction still drain.
        dst.shutdown_both();
        return;
      }
      if (conn->blackholed || conn->silent.load()) {
        blackholed_.fetch_add(n, std::memory_order_relaxed);
        continue;
      }
      const std::size_t total =
          conn->moved.fetch_add(n, std::memory_order_relaxed) + n;
      if (total >= conn->cut_after) {
        if (conn->cut_closes) return cut();
        // Half-open: stop forwarding in both directions, keep the
        // sockets up.  Only deadlines or keepalive can save the peers.
        conn->silent.store(true);
        if (!conn->dead.exchange(true))
          half_open_.fetch_add(1, std::memory_order_relaxed);
        blackholed_.fetch_add(n, std::memory_order_relaxed);
        continue;
      }
      if (rules_.delay_ms > 0)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(rules_.delay_ms));
      dst.send_all(buf, n);
      forwarded_.fetch_add(n, std::memory_order_relaxed);
      if (rules_.trickle_bytes > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  } catch (const Error&) {
    // Either side vanished: cut the pair and let the peers' own
    // resilience take it from here.
    cut();
  }
}

}  // namespace vppb::util
