// Error handling primitives shared by every VPPB module.
//
// The library reports contract violations and malformed input through
// vppb::Error (an exception carrying a formatted message).  Internal
// invariants use VPPB_CHECK, which is active in all build types: a
// simulator that silently continues past a broken invariant produces
// wrong predictions, which is worse than terminating.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace vppb {

/// Exception type for all user-facing VPPB errors (bad traces, bad
/// configurations, impossible schedules).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void fail_check(const char* expr, const char* file,
                                    int line, const std::string& msg) {
  std::ostringstream os;
  os << "VPPB_CHECK failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace vppb

/// Invariant check, active in every build type.  Throws vppb::Error.
#define VPPB_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr)) ::vppb::detail::fail_check(#expr, __FILE__, __LINE__, ""); \
  } while (0)

/// Invariant check with a formatted context message.
#define VPPB_CHECK_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream vppb_os_;                                    \
      vppb_os_ << msg;                                                \
      ::vppb::detail::fail_check(#expr, __FILE__, __LINE__, vppb_os_.str()); \
    }                                                                 \
  } while (0)
