// A network fault-injection relay: a byte-level TCP/Unix proxy that
// sits between two vppb endpoints and injects wire-level faults on a
// seeded, deterministic schedule — the VPPB_FAULT idea extended from
// the process to the network.
//
// The relay accepts connections on its own endpoint and pumps bytes to
// a fixed target, applying the configured rules to every forwarded
// chunk.  Schedules are seeded (xorshift64*), so a chaos run that
// passes is a reproducible proof, not a coin flip.
//
// Spec grammar (comma-separated entries, like VPPB_FAULT):
//
//   delay-ms:N        pause N ms before forwarding each chunk
//                     (both directions — models path latency)
//   drop:P            P% of connections (seeded per-connection coin)
//                     are cut after a random prefix of forwarded bytes
//   partition:S:D     full partition window [S, S+D) ms after start():
//                     existing connections are cut at S; connections
//                     made during the window are black-holed (accepted,
//                     bytes discarded, nothing forwarded) and cut when
//                     the window ends
//   half-open:N       every Nth connection goes silent after a random
//                     prefix: forwarding stops in both directions but
//                     the sockets stay open — the classic vanished-peer
//                     shape that only keepalive/deadlines detect
//   trickle:B         forward at most B bytes per 10 ms tick per
//                     direction (byte-trickle; defeats naive per-recv
//                     timers, which is why frame deadlines exist)
//
// Used by the chaos harness for partition scenarios and exposed as
// `vppb netem` for interactive experiments.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/socket.hpp"

namespace vppb::util {

struct NetemOptions {
  /// Listen endpoint: Unix path when non-empty, else loopback TCP
  /// (`listen_port` 0 = ephemeral; read the bound port after start()).
  std::string listen_unix;
  std::uint16_t listen_port = 0;
  /// Forward target: Unix path when non-empty, else host:port
  /// (host empty = loopback).
  std::string target_unix;
  std::string target_host;
  std::uint16_t target_port = 0;
  /// Fault schedule (see file comment); empty = transparent relay.
  std::string schedule;
  std::uint64_t seed = 1;
  /// Bound on the relay's own connect to the target.
  int connect_timeout_ms = 2000;
};

class NetemRelay {
 public:
  explicit NetemRelay(NetemOptions opt);
  ~NetemRelay();  ///< calls stop()

  NetemRelay(const NetemRelay&) = delete;
  NetemRelay& operator=(const NetemRelay&) = delete;

  /// Parses the schedule, binds the listen endpoint, starts the accept
  /// thread.  Throws vppb::Error on a malformed schedule or bind
  /// failure.
  void start();
  void stop();

  std::uint16_t port() const { return port_; }
  const std::string& endpoint() const { return endpoint_; }

  /// True while a configured partition window is open (for tests that
  /// want to synchronize assertions with the schedule).
  bool partitioned() const;

  // Observability for tests.
  std::uint64_t connections() const { return connections_.load(); }
  std::uint64_t cut_connections() const { return cut_.load(); }
  std::uint64_t half_open_connections() const { return half_open_.load(); }
  std::uint64_t forwarded_bytes() const { return forwarded_.load(); }
  std::uint64_t blackholed_bytes() const { return blackholed_.load(); }

 private:
  struct Rules {
    int delay_ms = 0;
    int drop_pct = 0;
    std::int64_t partition_start_ms = -1;
    std::int64_t partition_dur_ms = 0;
    std::uint64_t half_open_period = 0;
    std::size_t trickle_bytes = 0;
  };

  struct Conn {
    Socket client;
    Socket target;
    std::thread up;    ///< client -> target pump
    std::thread down;  ///< target -> client pump
    std::atomic<bool> silent{false};  ///< half-open: stop forwarding
    std::atomic<bool> dead{false};    ///< cut already accounted
    std::atomic<std::size_t> moved{0};  ///< forwarded bytes, both pumps
    /// Seeded plan, fixed at accept: cut/quiet after this many
    /// forwarded bytes (SIZE_MAX = never).
    std::size_t cut_after = SIZE_MAX;
    bool cut_closes = true;  ///< true: close (drop); false: go silent
    bool blackholed = false; ///< born inside a partition window
  };

  static Rules parse(const std::string& spec);
  void accept_loop();
  void pump(Conn* conn, bool upstream);
  std::int64_t elapsed_ms() const;

  NetemOptions opt_;
  Rules rules_;
  Socket listener_;
  std::string endpoint_;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::chrono::steady_clock::time_point started_at_{};

  std::mutex conn_mu_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::uint64_t rng_ = 1;       ///< accept-thread only
  std::uint64_t accepted_ = 0;  ///< accept-thread only

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> cut_{0};
  std::atomic<std::uint64_t> half_open_{0};
  std::atomic<std::uint64_t> forwarded_{0};
  std::atomic<std::uint64_t> blackholed_{0};
};

}  // namespace vppb::util
