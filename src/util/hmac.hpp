// SHA-256 and HMAC-SHA256 (FIPS 180-4 / RFC 2104) for the protocol-v8
// authenticated handshake.
//
// Self-contained — no OpenSSL, no allocation beyond the caller's
// buffers — because the build must not grow a crypto dependency for
// one keyed MAC.  The handshake only needs collision resistance against
// an online attacker forging a challenge response, which HMAC-SHA256
// over a 32-byte shared key provides with a wide margin.
//
// `constant_time_equal` compares MACs without data-dependent branches
// so a remote peer cannot binary-search the expected digest through
// response timing.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace vppb::util {

/// SHA-256 digest size in bytes.
inline constexpr std::size_t kSha256Bytes = 32;

using Sha256Digest = std::array<std::uint8_t, kSha256Bytes>;

/// One-shot SHA-256 of `n` bytes at `data`.
Sha256Digest sha256(const void* data, std::size_t n);

/// HMAC-SHA256 over `msg` with `key` (any key length; keys longer than
/// the 64-byte block are pre-hashed per RFC 2104).
Sha256Digest hmac_sha256(const void* key, std::size_t key_len,
                         const void* msg, std::size_t msg_len);

/// Timing-safe comparison: examines every byte regardless of where the
/// first difference is.  Returns true when the `n`-byte buffers match.
bool constant_time_equal(const void* a, const void* b, std::size_t n);

/// Lowercase hex rendering of a digest, for logs and tests.
std::string to_hex(const Sha256Digest& d);

}  // namespace vppb::util
