// A small reusable worker pool for embarrassingly parallel loops.
//
// The Simulator's processor sweeps run one independent core::simulate
// per machine configuration (paper §3.2: "run the simulator once per
// candidate configuration"); the pool lets those runs use every
// hardware thread.  Workers are started once and reused across
// parallel_for calls, so a sweep-heavy tool pays the thread-creation
// cost once.  With fewer than two participants the loop runs inline on
// the caller — a graceful no-op on single-core hosts.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vppb::util {

class ThreadPool {
 public:
  /// Starts `jobs - 1` workers (the caller is the jobs-th participant).
  /// `jobs <= 0` selects resolve_jobs(0), i.e. all hardware threads.
  explicit ThreadPool(int jobs = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Participants in a parallel_for: workers plus the calling thread.
  int jobs() const {
    return worker_count_.load(std::memory_order_acquire) + 1;
  }

  /// Starts `n` additional workers.  Used by the server watchdog to
  /// restore pool capacity after abandoning a request whose worker is
  /// wedged: the stuck worker keeps its thread, the replacement keeps
  /// the pool serving.  Safe from any thread; a no-op once the pool is
  /// stopping.
  void grow(int n);

  /// Runs fn(0) .. fn(n-1) across the workers and the calling thread,
  /// claiming indices through a shared counter; returns when every
  /// index has finished.  The first exception thrown by any index is
  /// rethrown on the caller (remaining indices are skipped).  Calls
  /// serialize: the pool runs one loop at a time.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Enqueues an independent task and returns immediately; a free
  /// worker runs it (FIFO order, interleaved with parallel_for slices —
  /// a worker prefers queued tasks).  With no workers (jobs == 1) the
  /// task runs inline on the caller before post() returns.  Queued
  /// tasks are drained, not dropped, before the destructor returns.
  /// Tasks must handle their own errors: an exception escaping a posted
  /// task terminates the process.
  void post(std::function<void()> task);

  /// `jobs` <= 0 -> hardware_concurrency (at least 1); else `jobs`.
  static int resolve_jobs(int jobs);

 private:
  void worker_loop(std::uint64_t seen);
  void run_slice();

  std::vector<std::thread> workers_;  ///< mutated under mu_ (grow) until stop
  std::atomic<int> worker_count_{0};  ///< lock-free mirror of workers_.size()

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< signals a new job generation
  std::condition_variable done_cv_;  ///< signals job completion
  std::uint64_t generation_ = 0;     ///< bumped once per parallel_for
  int active_ = 0;                   ///< workers currently inside run_slice
  bool stopping_ = false;
  std::deque<std::function<void()>> tasks_;  ///< posted, not yet started

  // Current job (valid while done_ < n_).
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t n_ = 0;
  std::atomic<std::size_t> next_{0};  ///< next unclaimed index
  std::atomic<std::size_t> done_{0};  ///< finished indices
  std::atomic<bool> failed_{false};
  std::exception_ptr error_;

  std::mutex serialize_mu_;  ///< one parallel_for at a time
};

}  // namespace vppb::util
