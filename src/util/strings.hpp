// Small string helpers used by the trace reader/writer and CLI layers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace vppb {

/// Split `s` on `sep`, dropping empty fields when `keep_empty` is false.
std::vector<std::string_view> split(std::string_view s, char sep,
                                    bool keep_empty = false);

/// Strip leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Parse helpers returning false on malformed input (no exceptions so the
/// trace reader can produce line-numbered diagnostics).
bool parse_i64(std::string_view s, std::int64_t& out);
bool parse_u64(std::string_view s, std::uint64_t& out);
bool parse_double(std::string_view s, double& out);

/// printf-style formatting into a std::string.
std::string strprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace vppb
