// Summary statistics used by the validation harness (Table 1 reports the
// middle value and (min–max) of five real executions) and by the benches.
#pragma once

#include <cstddef>
#include <vector>

namespace vppb {

/// Streaming accumulator (Welford) for mean/variance plus min/max.
class Accumulator {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Median (the paper's "middle value of five executions").  Copies and
/// sorts; fine for the handful of repetitions we run.
double median(std::vector<double> xs);

/// Percentile in [0,100] with linear interpolation.
double percentile(std::vector<double> xs, double p);

/// Same value as percentile(), computed with nth_element instead of a
/// full sort — O(n) per call instead of O(n log n), which matters when
/// the sample is a 64k latency ring read under a lock.  Destructive:
/// reorders `xs`.
double percentile_nth(std::vector<double>& xs, double p);

/// The paper's error definition: (real - predicted) / real.
double prediction_error(double real, double predicted);

/// Fixed-width histogram over [lo, hi); values outside are clamped into
/// the first/last bucket.  Used by the parallelism-graph tests.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x, double weight = 1.0);
  double bucket_weight(std::size_t i) const { return weights_.at(i); }
  std::size_t buckets() const { return weights_.size(); }
  double total() const { return total_; }

 private:
  double lo_, hi_;
  std::vector<double> weights_;
  double total_ = 0.0;
};

}  // namespace vppb
