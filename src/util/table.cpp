#include "util/table.hpp"

#include <algorithm>
#include <sstream>

namespace vppb {

void TextTable::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths;
  auto grow = [&widths](const std::vector<std::string>& cells) {
    if (widths.size() < cells.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  if (!header_.empty()) grow(header_);
  for (const auto& r : rows_) grow(r);

  std::ostringstream os;
  auto emit = [&os, &widths](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      os << c << std::string(widths[i] - c.size(), ' ');
      if (i + 1 < widths.size()) os << " | ";
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    for (std::size_t i = 0; i < widths.size(); ++i) {
      os << std::string(widths[i], '-');
      if (i + 1 < widths.size()) os << "-+-";
    }
    os << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

}  // namespace vppb
