#include "util/fault.hpp"

#include "util/env.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace vppb::util {
namespace {

constexpr int kSiteCount = static_cast<int>(FaultSite::kCount);

const char* kSiteNames[kSiteCount] = {
    "corrupt-frame", "short-read", "delay-ms", "cache-enomem", "cache-eio",
    "wedge-ms",
};

bool site_from_name(std::string_view name, FaultSite& out) {
  for (int i = 0; i < kSiteCount; ++i) {
    if (name == kSiteNames[i]) {
      out = static_cast<FaultSite>(i);
      return true;
    }
  }
  return false;
}

}  // namespace

const char* fault_site_name(FaultSite site) {
  const int i = static_cast<int>(site);
  return (i >= 0 && i < kSiteCount) ? kSiteNames[i] : "?";
}

FaultPlan::FaultPlan(const FaultPlan& other) {
  std::lock_guard<std::mutex> lock(other.mu_);
  for (int i = 0; i < kSiteCount; ++i) rules_[i] = other.rules_[i];
}

FaultPlan& FaultPlan::operator=(const FaultPlan& other) {
  if (this != &other) {
    FaultPlan copy(other);
    std::lock_guard<std::mutex> lock(mu_);
    for (int i = 0; i < kSiteCount; ++i) rules_[i] = copy.rules_[i];
  }
  return *this;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  for (const auto& entry : split(trim(spec), ',')) {
    const std::string_view e = trim(entry);
    if (e.empty()) continue;
    const auto fields = split(e, ':');
    FaultSite site;
    if (!site_from_name(fields[0], site)) {
      std::string known;
      for (int i = 0; i < kSiteCount; ++i)
        known += std::string(i ? " " : "") + kSiteNames[i];
      throw Error(strprintf("VPPB_FAULT: unknown site '%.*s' (known: %s)",
                            static_cast<int>(fields[0].size()),
                            fields[0].data(), known.c_str()));
    }
    if (fields.size() < 2 || fields.size() > 4)
      throw Error("VPPB_FAULT: expected site:period[:limit[:param]], got '" +
                  std::string(e) + "'");
    std::int64_t period = 0, limit = 0, param = 0;
    if (!parse_i64(fields[1], period) || period < 1)
      throw Error("VPPB_FAULT: bad period in '" + std::string(e) + "'");
    if (fields.size() >= 3 && (!parse_i64(fields[2], limit) || limit < 0))
      throw Error("VPPB_FAULT: bad limit in '" + std::string(e) + "'");
    if (fields.size() == 4 && !parse_i64(fields[3], param))
      throw Error("VPPB_FAULT: bad param in '" + std::string(e) + "'");
    Rule& r = plan.rules_[static_cast<int>(site)];
    r.period = static_cast<std::uint64_t>(period);
    r.limit = static_cast<std::uint64_t>(limit);
    r.param = param;
  }
  return plan;
}

FaultPlan& FaultPlan::global() {
  static FaultPlan plan = parse(env_or("VPPB_FAULT", ""));
  return plan;
}

bool FaultPlan::should_fire(FaultSite site) {
  std::lock_guard<std::mutex> lock(mu_);
  Rule& r = rules_[static_cast<int>(site)];
  if (r.period == 0) return false;
  if (r.limit != 0 && r.fired >= r.limit) return false;
  if (++r.hits % r.period != 0) return false;
  ++r.fired;
  return true;
}

std::int64_t FaultPlan::param(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return rules_[static_cast<int>(site)].param;
}

bool FaultPlan::armed() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Rule& r : rules_)
    if (r.period != 0) return true;
  return false;
}

std::uint64_t FaultPlan::fired_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const Rule& r : rules_) total += r.fired;
  return total;
}

std::string FaultPlan::summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (int i = 0; i < kSiteCount; ++i) {
    const Rule& r = rules_[i];
    if (r.period == 0) continue;
    if (!out.empty()) out += ", ";
    out += strprintf("%s every %llu", kSiteNames[i],
                     static_cast<unsigned long long>(r.period));
    if (r.limit != 0)
      out += strprintf(" (max %llu)",
                       static_cast<unsigned long long>(r.limit));
    if (r.param != 0)
      out += strprintf(" [%lld]", static_cast<long long>(r.param));
  }
  return out.empty() ? "off" : out;
}

}  // namespace vppb::util
