#include "util/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace vppb::util {
namespace {

[[noreturn]] void fail(const char* what) {
  throw Error(strprintf("%s: %s", what, std::strerror(errno)));
}

Socket new_socket(int domain) {
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  Socket s(fd);
#ifdef SO_NOSIGPIPE
  // BSD/macOS: no MSG_NOSIGNAL, suppress SIGPIPE at the socket level.
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#endif
  return s;
}

/// connect(2), retrying EINTR.  A connect interrupted by a signal
/// completes asynchronously, so the retry path waits out EINPROGRESS /
/// EALREADY / "already connected" instead of failing a healthy attempt.
int connect_retry(int fd, const sockaddr* addr, socklen_t len) {
  if (::connect(fd, addr, len) == 0) return 0;
  while (errno == EINTR || errno == EALREADY || errno == EINPROGRESS) {
    pollfd pfd{fd, POLLOUT, 0};
    if (::poll(&pfd, 1, -1) < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    int err = 0;
    socklen_t elen = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &elen) != 0) return -1;
    if (err == 0) return 0;
    errno = err;
  }
  return -1;
}

void set_nonblocking(int fd, bool on) {
  const int fl = ::fcntl(fd, F_GETFL, 0);
  if (fl < 0) fail("fcntl(F_GETFL)");
  const int want = on ? (fl | O_NONBLOCK) : (fl & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, want) != 0) fail("fcntl(F_SETFL)");
}

/// connect(2) bounded by a deadline: the socket goes non-blocking for
/// the attempt and the in-progress connect is polled with the time that
/// remains, so a black-holed address (SYN never answered) fails with
/// ETIMEDOUT after `timeout_ms` instead of sitting in the kernel's
/// minutes-long SYN retry schedule.  `timeout_ms` <= 0 falls back to
/// the unbounded legacy path.  On success the socket is blocking again.
int connect_deadline(int fd, const sockaddr* addr, socklen_t len,
                     int timeout_ms) {
  if (timeout_ms <= 0) return connect_retry(fd, addr, len);
  set_nonblocking(fd, true);
  int rc = ::connect(fd, addr, len);
  if (rc != 0 && errno != EINPROGRESS && errno != EINTR &&
      errno != EALREADY) {
    return -1;
  }
  if (rc != 0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - std::chrono::steady_clock::now())
                            .count();
      if (left <= 0) {
        errno = ETIMEDOUT;
        return -1;
      }
      pollfd pfd{fd, POLLOUT, 0};
      const int n = ::poll(&pfd, 1, static_cast<int>(left));
      if (n < 0) {
        if (errno == EINTR) continue;
        return -1;
      }
      if (n == 0) {
        errno = ETIMEDOUT;
        return -1;
      }
      int err = 0;
      socklen_t elen = sizeof(err);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &elen) != 0) return -1;
      if (err != 0) {
        errno = err;
        return -1;
      }
      break;
    }
  }
  set_nonblocking(fd, false);
  return 0;
}

/// Disables Nagle on a TCP socket.  The framed protocol is small
/// request/response pairs — a 4-byte header plus a payload written
/// back-to-back — and Nagle holds the second write hostage to the
/// peer's delayed ACK (~40 ms per round trip); a proxy hop in the
/// middle would pay that twice per request.  Harmless no-op on
/// AF_UNIX sockets (the setsockopt fails and is deliberately ignored),
/// so accepted sockets of either domain can pass through here.
void set_tcp_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path))
    throw Error("unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

sockaddr_in host_addr(const std::string& host, std::uint16_t port) {
  if (host.empty() || host == "localhost") return loopback_addr(port);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw Error("not a numeric IPv4 address (no DNS here): " + host);
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_read() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

std::size_t Socket::recv_some(void* data, std::size_t n) {
  for (;;) {
    const ssize_t r = ::recv(fd_, data, n, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        throw SocketTimeout("recv timed out waiting for the peer");
      fail("recv");
    }
    return static_cast<std::size_t>(r);
  }
}

void Socket::send_all(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t sent = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        throw SocketTimeout("send timed out: peer not reading");
      fail("send");
    }
    p += sent;
    n -= static_cast<std::size_t>(sent);
  }
}

std::size_t Socket::recv_exact(void* data, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd_, p + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        throw SocketTimeout("recv timed out waiting for the peer");
      fail("recv");
    }
    if (r == 0) break;  // end of stream
    got += static_cast<std::size_t>(r);
  }
  return got;
}

std::size_t Socket::recv_exact_deadline(void* data, std::size_t n,
                                        int deadline_ms) {
  if (deadline_ms <= 0) return recv_exact(data, n);
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  while (got < n) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - std::chrono::steady_clock::now())
                          .count();
    if (left <= 0)
      throw SocketTimeout(strprintf(
          "recv deadline lapsed with %zu of %zu bytes read", got, n));
    pollfd pfd{fd_, POLLIN, 0};
    const int pn = ::poll(&pfd, 1, static_cast<int>(left));
    if (pn < 0) {
      if (errno == EINTR) continue;
      fail("poll");
    }
    if (pn == 0) continue;  // deadline check at the top of the loop
    const ssize_t r = ::recv(fd_, p + got, n - got, MSG_DONTWAIT);
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue;
      fail("recv");
    }
    if (r == 0) break;  // end of stream
    got += static_cast<std::size_t>(r);
  }
  return got;
}

void Socket::set_recv_timeout(int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0)
    fail("setsockopt(SO_RCVTIMEO)");
}

void Socket::set_send_timeout(int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0)
    fail("setsockopt(SO_SNDTIMEO)");
}

void Socket::set_keepalive(int idle_s, int interval_s, int probes,
                           int user_timeout_ms) {
  const int one = 1;
  // Fails (and is ignored) on AF_UNIX sockets, where there is no
  // network to lose a peer to.
  if (::setsockopt(fd_, SOL_SOCKET, SO_KEEPALIVE, &one, sizeof(one)) != 0)
    return;
#ifdef TCP_KEEPIDLE
  ::setsockopt(fd_, IPPROTO_TCP, TCP_KEEPIDLE, &idle_s, sizeof(idle_s));
#endif
#ifdef TCP_KEEPINTVL
  ::setsockopt(fd_, IPPROTO_TCP, TCP_KEEPINTVL, &interval_s,
               sizeof(interval_s));
#endif
#ifdef TCP_KEEPCNT
  ::setsockopt(fd_, IPPROTO_TCP, TCP_KEEPCNT, &probes, sizeof(probes));
#endif
#ifdef TCP_USER_TIMEOUT
  // Also bounds the time unacked *transmit* data may sit in flight, so
  // a half-open connection dies even when we are the one sending.
  const unsigned int ut = static_cast<unsigned int>(user_timeout_ms);
  ::setsockopt(fd_, IPPROTO_TCP, TCP_USER_TIMEOUT, &ut, sizeof(ut));
#else
  (void)user_timeout_ms;
#endif
}

Socket listen_unix(const std::string& path, int backlog) {
  Socket s = new_socket(AF_UNIX);
  ::unlink(path.c_str());
  const sockaddr_un addr = unix_addr(path);
  if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    throw Error(strprintf("bind %s: %s", path.c_str(), std::strerror(errno)));
  if (::listen(s.fd(), backlog) != 0) fail("listen");
  return s;
}

Socket listen_tcp(std::uint16_t& port, int backlog) {
  Socket s = new_socket(AF_INET);
  const int one = 1;
  ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr(port);
  if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    throw Error(strprintf("bind port %u: %s", port, std::strerror(errno)));
  if (::listen(s.fd(), backlog) != 0) fail("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(s.fd(), reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    fail("getsockname");
  port = ntohs(addr.sin_port);
  return s;
}

Socket connect_unix(const std::string& path) {
  return connect_unix(path, 0);
}

Socket connect_unix(const std::string& path, int timeout_ms) {
  Socket s = new_socket(AF_UNIX);
  const sockaddr_un addr = unix_addr(path);
  if (connect_deadline(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr), timeout_ms) != 0) {
    if (errno == ETIMEDOUT)
      throw SocketTimeout(strprintf("connect %s: timed out after %d ms",
                                    path.c_str(), timeout_ms));
    throw Error(strprintf("connect %s: %s", path.c_str(),
                          std::strerror(errno)));
  }
  return s;
}

Socket connect_tcp(std::uint16_t port) {
  return connect_tcp(std::string(), port, 0);
}

Socket connect_tcp(const std::string& host, std::uint16_t port,
                   int timeout_ms) {
  Socket s = new_socket(AF_INET);
  set_tcp_nodelay(s.fd());
  const sockaddr_in addr = host_addr(host, port);
  const char* shown = host.empty() ? "127.0.0.1" : host.c_str();
  if (connect_deadline(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr), timeout_ms) != 0) {
    if (errno == ETIMEDOUT)
      throw SocketTimeout(strprintf("connect %s:%u: timed out after %d ms",
                                    shown, port, timeout_ms));
    throw Error(strprintf("connect %s:%u: %s", shown, port,
                          std::strerror(errno)));
  }
  return s;
}

Socket accept_with_timeout(Socket& listener, int timeout_ms) {
  pollfd pfd{listener.fd(), POLLIN, 0};
  const int n = ::poll(&pfd, 1, timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return Socket();
    fail("poll");
  }
  if (n == 0) return Socket();
  const int fd = ::accept(listener.fd(), nullptr, nullptr);
  if (fd < 0) {
    if (errno == EINTR || errno == ECONNABORTED) return Socket();
    fail("accept");
  }
  set_tcp_nodelay(fd);  // no-op for AF_UNIX listeners
  return Socket(fd);
}

std::pair<Socket, Socket> socket_pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) fail("socketpair");
  return {Socket(fds[0]), Socket(fds[1])};
}

}  // namespace vppb::util
