#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace vppb {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double median(std::vector<double> xs) {
  VPPB_CHECK_MSG(!xs.empty(), "median of empty sample");
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  if (n % 2 == 1) return xs[n / 2];
  return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double percentile(std::vector<double> xs, double p) {
  VPPB_CHECK_MSG(!xs.empty(), "percentile of empty sample");
  VPPB_CHECK_MSG(p >= 0.0 && p <= 100.0, "percentile out of range: " << p);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

double percentile_nth(std::vector<double>& xs, double p) {
  VPPB_CHECK_MSG(!xs.empty(), "percentile of empty sample");
  VPPB_CHECK_MSG(p >= 0.0 && p <= 100.0, "percentile out of range: " << p);
  if (xs.size() == 1) return xs[0];
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  const auto lo_it = xs.begin() + static_cast<std::ptrdiff_t>(lo);
  std::nth_element(xs.begin(), lo_it, xs.end());
  if (lo + 1 >= xs.size() || frac == 0.0) return *lo_it;
  // The interpolation partner is the smallest element above the lo-th;
  // nth_element left it somewhere in the (unordered) right partition.
  const double hi = *std::min_element(lo_it + 1, xs.end());
  return *lo_it * (1.0 - frac) + hi * frac;
}

double prediction_error(double real, double predicted) {
  VPPB_CHECK_MSG(real != 0.0, "prediction_error with zero real value");
  return (real - predicted) / real;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), weights_(buckets, 0.0) {
  VPPB_CHECK_MSG(hi > lo, "histogram range is empty");
  VPPB_CHECK_MSG(buckets > 0, "histogram needs at least one bucket");
}

void Histogram::add(double x, double weight) {
  const double width = (hi_ - lo_) / static_cast<double>(weights_.size());
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width);
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(weights_.size()) - 1);
  weights_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

}  // namespace vppb
