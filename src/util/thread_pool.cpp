#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>

#include "obs/metrics.hpp"

namespace vppb::util {

namespace {

/// Registry handles for the pool's task path, registered once.  Every
/// pool in the process shares them: the gauge tracks the most recently
/// mutated queue, which is the single shared pool in practice.
struct PoolMetrics {
  obs::Counter& tasks;
  obs::Gauge& depth;
  obs::Histogram& wait_us;
  obs::Histogram& run_us;

  static PoolMetrics& get() {
    static PoolMetrics m{
        obs::Registry::global().counter("vppb_pool_tasks_total",
                                        "Tasks accepted by ThreadPool::post"),
        obs::Registry::global().gauge("vppb_pool_queue_depth",
                                      "Posted tasks waiting for a worker"),
        obs::Registry::global().histogram(
            "vppb_pool_task_wait_us",
            "Queue wait from post() to task start, microseconds",
            obs::latency_us_bounds()),
        obs::Registry::global().histogram(
            "vppb_pool_task_run_us", "Task execution time, microseconds",
            obs::latency_us_bounds()),
    };
    return m;
  }
};

double us_since(std::chrono::steady_clock::time_point t0,
                std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
             t1 - t0)
      .count();
}

}  // namespace

int ThreadPool::resolve_jobs(int jobs) {
  if (jobs > 0) return jobs;
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(int jobs) {
  const int n = resolve_jobs(jobs);
  workers_.reserve(static_cast<std::size_t>(n - 1));
  for (int i = 1; i < n; ++i) {
    workers_.emplace_back([this]() { worker_loop(0); });
  }
  worker_count_.store(n - 1, std::memory_order_release);
}

void ThreadPool::grow(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) return;  // too late: the destructor owns workers_ now
  for (int i = 0; i < n; ++i) {
    // A late-started worker must not mistake the *current* generation
    // for a fresh parallel_for announcement, so it starts caught up.
    const std::uint64_t seen = generation_;
    workers_.emplace_back([this, seen]() { worker_loop(seen); });
    worker_count_.fetch_add(1, std::memory_order_acq_rel);
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

/// Claims and runs indices of the current job until none remain.  On an
/// exception the first error is kept and the remaining indices are
/// drained without running (every index must still be counted done, or
/// the caller would wait forever).
void ThreadPool::run_slice() {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n_) return;
    if (!failed_.load(std::memory_order_relaxed)) {
      try {
        (*fn_)(i);
      } catch (...) {
        bool expected = false;
        if (failed_.compare_exchange_strong(expected, true)) error_ = std::current_exception();
      }
    }
    if (done_.fetch_add(1, std::memory_order_acq_rel) + 1 == n_) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::worker_loop(std::uint64_t seen) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&]() {
        return stopping_ || !tasks_.empty() || generation_ != seen;
      });
      if (!tasks_.empty()) {
        // Posted tasks first: a pending parallel_for still completes
        // through its caller, but a posted task has no other runner.
        task = std::move(tasks_.front());
        tasks_.pop_front();
        PoolMetrics::get().depth.set(static_cast<std::int64_t>(tasks_.size()));
      } else if (generation_ != seen) {
        seen = generation_;
        ++active_;
      } else {  // stopping_, and the task queue is drained
        return;
      }
    }
    if (task) {
      task();
      continue;
    }
    run_slice();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::post(std::function<void()> task) {
  PoolMetrics& m = PoolMetrics::get();
  m.tasks.inc();
  const auto posted = std::chrono::steady_clock::now();
  auto timed = [task = std::move(task), posted, &m]() {
    const auto started = std::chrono::steady_clock::now();
    m.wait_us.observe(us_since(posted, started));
    task();
    m.run_us.observe(us_since(started, std::chrono::steady_clock::now()));
  };
  if (worker_count_.load(std::memory_order_acquire) == 0) {
    timed();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(timed));
    m.depth.set(static_cast<std::int64_t>(tasks_.size()));
  }
  work_cv_.notify_one();
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (worker_count_.load(std::memory_order_acquire) == 0 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::lock_guard<std::mutex> serialize(serialize_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    done_.store(0, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();
  run_slice();
  {
    // Wait for every index to finish AND for the workers to leave
    // run_slice: a straggler still inside the claim loop must not see
    // the next job's fn_/n_ without synchronization.
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&]() {
      return done_.load(std::memory_order_acquire) == n_ && active_ == 0;
    });
    fn_ = nullptr;
  }
  if (error_) std::rethrow_exception(error_);
}

}  // namespace vppb::util
