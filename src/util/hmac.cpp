#include "util/hmac.hpp"

#include <cstring>

namespace vppb::util {
namespace {

// FIPS 180-4 round constants: fractional parts of the cube roots of the
// first 64 primes.
constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

struct Sha256Ctx {
  std::uint32_t h[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                        0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  std::uint8_t block[64];
  std::size_t block_fill = 0;
  std::uint64_t total_bytes = 0;

  void compress(const std::uint8_t* p) {
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (std::uint32_t{p[4 * i]} << 24) |
             (std::uint32_t{p[4 * i + 1]} << 16) |
             (std::uint32_t{p[4 * i + 2]} << 8) | std::uint32_t{p[4 * i + 3]};
    }
    for (int i = 16; i < 64; ++i) {
      const std::uint32_t s0 =
          rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 =
          rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    std::uint32_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4], f = h[5],
                  g = h[6], hh = h[7];
    for (int i = 0; i < 64; ++i) {
      const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t t1 = hh + s1 + ch + kK[i] + w[i];
      const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t t2 = s0 + maj;
      hh = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
    h[5] += f;
    h[6] += g;
    h[7] += hh;
  }

  void update(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    total_bytes += n;
    if (block_fill != 0) {
      const std::size_t take = std::min(n, sizeof(block) - block_fill);
      std::memcpy(block + block_fill, p, take);
      block_fill += take;
      p += take;
      n -= take;
      if (block_fill == sizeof(block)) {
        compress(block);
        block_fill = 0;
      }
    }
    while (n >= sizeof(block)) {
      compress(p);
      p += sizeof(block);
      n -= sizeof(block);
    }
    if (n != 0) {
      std::memcpy(block, p, n);
      block_fill = n;
    }
  }

  Sha256Digest finish() {
    const std::uint64_t bit_len = total_bytes * 8;
    const std::uint8_t pad_byte = 0x80;
    update(&pad_byte, 1);
    const std::uint8_t zero = 0;
    while (block_fill != 56) update(&zero, 1);
    std::uint8_t len_be[8];
    for (int i = 0; i < 8; ++i) {
      len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
    }
    // The length bytes land exactly on the block boundary; update()
    // compresses the final block as a side effect.
    update(len_be, 8);
    Sha256Digest out;
    for (int i = 0; i < 8; ++i) {
      out[4 * i] = static_cast<std::uint8_t>(h[i] >> 24);
      out[4 * i + 1] = static_cast<std::uint8_t>(h[i] >> 16);
      out[4 * i + 2] = static_cast<std::uint8_t>(h[i] >> 8);
      out[4 * i + 3] = static_cast<std::uint8_t>(h[i]);
    }
    return out;
  }
};

}  // namespace

Sha256Digest sha256(const void* data, std::size_t n) {
  Sha256Ctx ctx;
  ctx.update(data, n);
  return ctx.finish();
}

Sha256Digest hmac_sha256(const void* key, std::size_t key_len,
                         const void* msg, std::size_t msg_len) {
  constexpr std::size_t kBlock = 64;
  std::uint8_t k[kBlock] = {0};
  if (key_len > kBlock) {
    const Sha256Digest kd = sha256(key, key_len);
    std::memcpy(k, kd.data(), kd.size());
  } else {
    std::memcpy(k, key, key_len);
  }
  std::uint8_t ipad[kBlock], opad[kBlock];
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }
  Sha256Ctx inner;
  inner.update(ipad, kBlock);
  inner.update(msg, msg_len);
  const Sha256Digest inner_d = inner.finish();
  Sha256Ctx outer;
  outer.update(opad, kBlock);
  outer.update(inner_d.data(), inner_d.size());
  return outer.finish();
}

bool constant_time_equal(const void* a, const void* b, std::size_t n) {
  const auto* pa = static_cast<const volatile std::uint8_t*>(a);
  const auto* pb = static_cast<const volatile std::uint8_t*>(b);
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < n; ++i) {
    diff = static_cast<std::uint8_t>(diff | (pa[i] ^ pb[i]));
  }
  return diff == 0;
}

std::string to_hex(const Sha256Digest& d) {
  static const char* hex = "0123456789abcdef";
  std::string out;
  out.reserve(2 * d.size());
  for (std::uint8_t b : d) {
    out.push_back(hex[b >> 4]);
    out.push_back(hex[b & 0xf]);
  }
  return out;
}

}  // namespace vppb::util
