#include "util/flags.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace vppb {

void Flags::define_i64(std::string name, std::int64_t def, std::string desc) {
  Def d;
  d.kind = Kind::kI64;
  d.desc = std::move(desc);
  d.i64 = def;
  defs_.emplace(std::move(name), std::move(d));
}

void Flags::define_double(std::string name, double def, std::string desc) {
  Def d;
  d.kind = Kind::kDouble;
  d.desc = std::move(desc);
  d.dbl = def;
  defs_.emplace(std::move(name), std::move(d));
}

void Flags::define_bool(std::string name, bool def, std::string desc) {
  Def d;
  d.kind = Kind::kBool;
  d.desc = std::move(desc);
  d.boolean = def;
  defs_.emplace(std::move(name), std::move(d));
}

void Flags::define_string(std::string name, std::string def, std::string desc) {
  Def d;
  d.kind = Kind::kString;
  d.desc = std::move(desc);
  d.str = std::move(def);
  defs_.emplace(std::move(name), std::move(d));
}

Flags::Def& Flags::find(std::string_view name, Kind kind) {
  auto it = defs_.find(name);
  VPPB_CHECK_MSG(it != defs_.end(), "unknown flag --" << name);
  VPPB_CHECK_MSG(it->second.kind == kind, "flag --" << name << " accessed as wrong type");
  return it->second;
}

const Flags::Def& Flags::find(std::string_view name, Kind kind) const {
  return const_cast<Flags*>(this)->find(name, kind);
}

void Flags::set_from_string(Def& def, std::string_view name,
                            std::string_view value) {
  switch (def.kind) {
    case Kind::kI64:
      if (!parse_i64(value, def.i64))
        throw Error(strprintf("flag --%.*s: bad integer '%.*s'",
                              static_cast<int>(name.size()), name.data(),
                              static_cast<int>(value.size()), value.data()));
      break;
    case Kind::kDouble:
      if (!parse_double(value, def.dbl))
        throw Error(strprintf("flag --%.*s: bad number '%.*s'",
                              static_cast<int>(name.size()), name.data(),
                              static_cast<int>(value.size()), value.data()));
      break;
    case Kind::kBool:
      if (value == "true" || value == "1") {
        def.boolean = true;
      } else if (value == "false" || value == "0") {
        def.boolean = false;
      } else {
        throw Error(strprintf("flag --%.*s: bad boolean '%.*s'",
                              static_cast<int>(name.size()), name.data(),
                              static_cast<int>(value.size()), value.data()));
      }
      break;
    case Kind::kString:
      def.str = std::string(value);
      break;
  }
}

void Flags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      const std::string_view name = arg.substr(0, eq);
      auto it = defs_.find(name);
      if (it == defs_.end()) throw Error("unknown flag --" + std::string(name));
      set_from_string(it->second, name, arg.substr(eq + 1));
      continue;
    }
    // --name value | --flag | --no-flag
    auto it = defs_.find(arg);
    if (it == defs_.end() && starts_with(arg, "no-")) {
      auto neg = defs_.find(arg.substr(3));
      if (neg != defs_.end() && neg->second.kind == Kind::kBool) {
        neg->second.boolean = false;
        continue;
      }
    }
    if (it == defs_.end()) throw Error("unknown flag --" + std::string(arg));
    if (it->second.kind == Kind::kBool) {
      it->second.boolean = true;
      continue;
    }
    if (i + 1 >= argc)
      throw Error("flag --" + std::string(arg) + " needs a value");
    set_from_string(it->second, arg, argv[++i]);
  }
}

std::int64_t Flags::i64(std::string_view name) const {
  return find(name, Kind::kI64).i64;
}
double Flags::dbl(std::string_view name) const {
  return find(name, Kind::kDouble).dbl;
}
bool Flags::boolean(std::string_view name) const {
  return find(name, Kind::kBool).boolean;
}
const std::string& Flags::str(std::string_view name) const {
  return find(name, Kind::kString).str;
}

std::string Flags::usage(std::string_view program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [name, def] : defs_) {
    os << "  --" << name;
    switch (def.kind) {
      case Kind::kI64: os << "=<int> (default " << def.i64 << ")"; break;
      case Kind::kDouble: os << "=<num> (default " << def.dbl << ")"; break;
      case Kind::kBool: os << " (default " << (def.boolean ? "true" : "false") << ")"; break;
      case Kind::kString: os << "=<str> (default '" << def.str << "')"; break;
    }
    os << "\n      " << def.desc << "\n";
  }
  return os.str();
}

}  // namespace vppb
