// Process-environment access for every VPPB_* variable, in one place.
//
// The tool family reads a handful of environment variables; each one is
// parsed exactly once, by the subsystem that owns it, through these
// helpers (so a variable can never be half-honored by one code path and
// ignored by another).  The full registry — keep this table in sync
// with README.md "Environment variables":
//
//   VPPB_AUTH_KEY shared secret for the protocol-v8 TCP handshake
//                 (server/auth.hpp; --auth-key-file wins when both are
//                 set; unix sockets never authenticate)
//   VPPB_FAULT    deterministic fault-injection plan for vppbd
//                 (util/fault.hpp; `site:period[:limit[:param]]`, comma
//                 separated)
//   VPPB_LOG      log level and sink format for the structured logger
//                 (obs/log.hpp; `level[:json]`, e.g. "debug" or
//                 "info:json")
//   VPPB_PROFILE  path to write a Chrome trace-event profile of the CLI
//                 command at exit (tools/vppb.cpp; same as --profile)
//
// Header-only on purpose: obs (the bottom layer, linked by util) and
// util itself both include it without creating a link cycle.
#pragma once

#include <cstdlib>
#include <string>

namespace vppb::util {

/// Raw getenv: nullptr when unset.  Prefer env_or unless the caller
/// must distinguish "unset" from "set to empty".
inline const char* env_raw(const char* name) { return std::getenv(name); }

/// The variable's value, or `def` when unset.  An empty value is
/// returned as-is (it usually means "explicitly off").
inline std::string env_or(const char* name, const char* def) {
  const char* v = std::getenv(name);
  return std::string(v != nullptr ? v : def);
}

/// True when the variable is set to a non-empty value.
inline bool env_set(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0';
}

}  // namespace vppb::util
