#include "util/strings.hpp"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace vppb {

std::vector<std::string_view> split(std::string_view s, char sep,
                                    bool keep_empty) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t pos = s.find(sep, start);
    const std::size_t end = pos == std::string_view::npos ? s.size() : pos;
    std::string_view field = s.substr(start, end - start);
    if (keep_empty || !field.empty()) out.push_back(field);
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  const char* ws = " \t\r\n";
  const std::size_t b = s.find_first_not_of(ws);
  if (b == std::string_view::npos) return {};
  const std::size_t e = s.find_last_not_of(ws);
  return s.substr(b, e - b + 1);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

namespace {

// string_views are not NUL-terminated; copy into a small buffer for strto*.
bool to_cstr(std::string_view s, char* buf, std::size_t cap) {
  if (s.empty() || s.size() >= cap) return false;
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  return true;
}

}  // namespace

bool parse_i64(std::string_view s, std::int64_t& out) {
  char buf[64];
  if (!to_cstr(s, buf, sizeof buf)) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf, &end, 10);
  if (errno != 0 || end == buf || *end != '\0') return false;
  out = v;
  return true;
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  char buf[64];
  if (!to_cstr(s, buf, sizeof buf)) return false;
  if (buf[0] == '-') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(buf, &end, 10);
  if (errno != 0 || end == buf || *end != '\0') return false;
  out = v;
  return true;
}

bool parse_double(std::string_view s, double& out) {
  char buf[64];
  if (!to_cstr(s, buf, sizeof buf)) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf, &end);
  if (errno != 0 || end == buf || *end != '\0') return false;
  out = v;
  return true;
}

std::string strprintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

}  // namespace vppb
