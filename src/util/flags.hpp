// Minimal command-line flag parser for the examples and benches.
//
// Supports --name=value, --name value, and boolean --name / --no-name.
// Unknown flags are an error (typos in experiment parameters must not be
// silently ignored).  Positional arguments are collected in order.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace vppb {

class Flags {
 public:
  /// Define flags before parse().  The description is used by usage().
  void define_i64(std::string name, std::int64_t def, std::string desc);
  void define_double(std::string name, double def, std::string desc);
  void define_bool(std::string name, bool def, std::string desc);
  void define_string(std::string name, std::string def, std::string desc);

  /// Parse argv (skipping argv[0]).  Throws vppb::Error on unknown flags
  /// or malformed values.
  void parse(int argc, const char* const* argv);

  std::int64_t i64(std::string_view name) const;
  double dbl(std::string_view name) const;
  bool boolean(std::string_view name) const;
  const std::string& str(std::string_view name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Human-readable flag summary.
  std::string usage(std::string_view program) const;

 private:
  enum class Kind { kI64, kDouble, kBool, kString };
  struct Def {
    Kind kind = Kind::kBool;
    std::string desc;
    std::int64_t i64 = 0;
    double dbl = 0.0;
    bool boolean = false;
    std::string str;
  };

  Def& find(std::string_view name, Kind kind);
  const Def& find(std::string_view name, Kind kind) const;
  void set_from_string(Def& def, std::string_view name, std::string_view value);

  std::map<std::string, Def, std::less<>> defs_;
  std::vector<std::string> positional_;
};

}  // namespace vppb
