#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace vppb::util {
namespace {

[[noreturn]] void fail(const char* what, const std::string& path, int err) {
  throw Error(strprintf("%s %s: %s", what, path.c_str(),
                        std::strerror(err)));
}

}  // namespace

void atomic_write_file(const std::string& path, const void* data,
                       std::size_t n) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("cannot open temp file", tmp, errno);

  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t left = n;
  while (left > 0) {
    const ssize_t wrote = ::write(fd, p, left);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      fail("failed writing", tmp, err);
    }
    p += wrote;
    left -= static_cast<std::size_t>(wrote);
  }
  // fsync before rename: the rename must never become visible ahead of
  // the data it is supposed to publish.
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    fail("failed syncing", tmp, err);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    fail("cannot rename into place", path, err);
  }
}

void atomic_write_file(const std::string& path, const std::string& text) {
  atomic_write_file(path, text.data(), text.size());
}

void atomic_write_file(const std::string& path,
                       const std::vector<std::uint8_t>& bytes) {
  atomic_write_file(path, bytes.data(), bytes.size());
}

}  // namespace vppb::util
