// Minimal blocking-socket helpers for the prediction service.
//
// The server speaks a length-prefixed framed protocol over either a
// Unix-domain socket (the default for a local daemon) or loopback TCP;
// both endpoints only need four operations: listen, connect, send every
// byte, receive an exact count.  This wraps the POSIX calls in RAII and
// vppb::Error so the protocol layer never touches errno directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "util/error.hpp"

namespace vppb::util {

/// Thrown by recv_exact when a receive timeout (set_recv_timeout) lapses
/// with the peer still silent.  A distinct type so callers can tell "the
/// server is slow" (retryable) from "the stream is broken".
class SocketTimeout : public Error {
 public:
  explicit SocketTimeout(const std::string& what) : Error(what) {}
};

/// An owned socket file descriptor.  Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  void close();

  /// Half-closes the read side: a peer or another thread blocked in
  /// recv on this socket observes end-of-stream.  The write side stays
  /// open so an in-flight response can still be delivered — this is how
  /// the server drains connections on shutdown.
  void shutdown_read();

  /// Sends all `n` bytes (looping over partial sends and EINTR, SIGPIPE
  /// suppressed via MSG_NOSIGNAL / SO_NOSIGPIPE so a vanished peer is an
  /// EPIPE error, never a process-killing signal).  Throws vppb::Error
  /// if the peer goes away.
  void send_all(const void* data, std::size_t n);

  /// Receives exactly `n` bytes unless the stream ends first; returns
  /// the number of bytes actually read (0 = clean end-of-stream before
  /// the first byte).  Loops over EINTR.  Throws SocketTimeout when a
  /// receive timeout lapses, vppb::Error on other socket errors.
  std::size_t recv_exact(void* data, std::size_t n);

  /// Bounds every subsequent receive: recv_exact throws SocketTimeout
  /// if no data arrives for `ms` milliseconds (0 = wait forever).
  void set_recv_timeout(int ms);

 private:
  int fd_ = -1;
};

/// Binds and listens on a Unix-domain socket.  An existing socket file
/// at `path` is removed first: the daemon owns its socket path.
Socket listen_unix(const std::string& path, int backlog = 64);

/// Binds and listens on loopback TCP.  `port` 0 picks an ephemeral
/// port; on return `port` holds the actual bound port.
Socket listen_tcp(std::uint16_t& port, int backlog = 64);

Socket connect_unix(const std::string& path);
Socket connect_tcp(std::uint16_t port);

/// Waits up to `timeout_ms` for a connection on `listener`; returns an
/// invalid Socket on timeout (so an accept loop can poll a stop flag).
Socket accept_with_timeout(Socket& listener, int timeout_ms);

/// A connected AF_UNIX stream pair, for tests and in-process plumbing.
std::pair<Socket, Socket> socket_pair();

}  // namespace vppb::util
