// Minimal blocking-socket helpers for the prediction service.
//
// The server speaks a length-prefixed framed protocol over either a
// Unix-domain socket (the default for a local daemon) or TCP; both
// endpoints only need four operations: listen, connect, send every
// byte, receive an exact count.  This wraps the POSIX calls in RAII and
// vppb::Error so the protocol layer never touches errno directly.
//
// Partition tolerance: every operation that can wait on a remote peer
// takes a bound.  connect_tcp/connect_unix accept a timeout so a
// black-holed address (SYN swallowed by a firewall) fails in bounded
// time instead of pinning the caller for minutes; set_recv_timeout and
// set_send_timeout bound the per-call read/write stalls; set_keepalive
// arms TCP keepalive plus TCP_USER_TIMEOUT so a half-open connection
// (peer host vanished without a FIN) dies deterministically instead of
// lingering until the kernel's multi-hour default gives up.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "util/error.hpp"

namespace vppb::util {

/// Thrown by recv_exact/send_all when a configured timeout lapses with
/// the peer still silent (or its window still closed).  A distinct type
/// so callers can tell "the peer is slow" (retryable) from "the stream
/// is broken".
class SocketTimeout : public Error {
 public:
  explicit SocketTimeout(const std::string& what) : Error(what) {}
};

/// An owned socket file descriptor.  Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  void close();

  /// Half-closes the read side: a peer or another thread blocked in
  /// recv on this socket observes end-of-stream.  The write side stays
  /// open so an in-flight response can still be delivered — this is how
  /// the server drains connections on shutdown.
  void shutdown_read();

  /// Full shutdown of both directions without closing the descriptor —
  /// safe to call from another thread while a pump is blocked in recv
  /// (close() would race on the fd; shutdown only wakes the blocked
  /// call with end-of-stream).
  void shutdown_both();

  /// Receives *up to* `n` bytes — whatever the next recv delivers.
  /// Returns 0 on end-of-stream.  Throws SocketTimeout on a lapsed
  /// receive timeout, vppb::Error on other errors.  For byte pumps that
  /// forward stream data without caring about message boundaries.
  std::size_t recv_some(void* data, std::size_t n);

  /// Sends all `n` bytes (looping over partial sends and EINTR, SIGPIPE
  /// suppressed via MSG_NOSIGNAL / SO_NOSIGPIPE so a vanished peer is an
  /// EPIPE error, never a process-killing signal).  Throws SocketTimeout
  /// when a send timeout (set_send_timeout) lapses with the peer's
  /// receive window still closed, vppb::Error if the peer goes away.
  void send_all(const void* data, std::size_t n);

  /// Receives exactly `n` bytes unless the stream ends first; returns
  /// the number of bytes actually read (0 = clean end-of-stream before
  /// the first byte).  Loops over EINTR.  Throws SocketTimeout when a
  /// receive timeout lapses, vppb::Error on other socket errors.
  std::size_t recv_exact(void* data, std::size_t n);

  /// Bounds every subsequent receive: recv_exact throws SocketTimeout
  /// if no data arrives for `ms` milliseconds (0 = wait forever).
  void set_recv_timeout(int ms);

  /// recv_exact with a *total* deadline over all `n` bytes, independent
  /// of SO_RCVTIMEO.  A peer trickling one byte per timeout window can
  /// hold a per-recv timer open forever; it cannot hold this one.
  /// `deadline_ms` <= 0 degrades to plain recv_exact.  Throws
  /// SocketTimeout when the deadline lapses mid-transfer.
  std::size_t recv_exact_deadline(void* data, std::size_t n,
                                  int deadline_ms);

  /// Bounds every subsequent send: send_all throws SocketTimeout if the
  /// peer's receive window stays closed for `ms` milliseconds (0 = wait
  /// forever).  A peer that accepts a connection and never reads cannot
  /// wedge a writer for longer than this.
  void set_send_timeout(int ms);

  /// Arms TCP keepalive (probe after `idle_s` seconds of silence, every
  /// `interval_s` seconds, `probes` times) and, where the platform
  /// supports it, TCP_USER_TIMEOUT = `user_timeout_ms` so unacked
  /// transmit data also bounds the connection's life.  Together these
  /// make a half-open connection — the peer host gone without a FIN —
  /// die in bounded time.  No-op on AF_UNIX sockets.
  void set_keepalive(int idle_s, int interval_s, int probes,
                     int user_timeout_ms);

 private:
  int fd_ = -1;
};

/// Binds and listens on a Unix-domain socket.  An existing socket file
/// at `path` is removed first: the daemon owns its socket path.
Socket listen_unix(const std::string& path, int backlog = 64);

/// Binds and listens on loopback TCP.  `port` 0 picks an ephemeral
/// port; on return `port` holds the actual bound port.
Socket listen_tcp(std::uint16_t& port, int backlog = 64);

Socket connect_unix(const std::string& path);
Socket connect_tcp(std::uint16_t port);

/// Connects to `host`:`port` ("localhost" or a numeric IPv4 address; no
/// DNS — a resolver stall is exactly the kind of unbounded wait this
/// layer exists to eliminate) with a connect deadline: the attempt runs
/// non-blocking and is polled, so a black-holed address throws
/// SocketTimeout after `timeout_ms` instead of hanging in connect(2).
/// `timeout_ms` <= 0 waits forever (the legacy loopback behaviour).
Socket connect_tcp(const std::string& host, std::uint16_t port,
                   int timeout_ms);

/// connect_unix with the same bounded-connect semantics (a daemon whose
/// accept queue is full can black-hole Unix connects too).
Socket connect_unix(const std::string& path, int timeout_ms);

/// Waits up to `timeout_ms` for a connection on `listener`; returns an
/// invalid Socket on timeout (so an accept loop can poll a stop flag).
Socket accept_with_timeout(Socket& listener, int timeout_ms);

/// A connected AF_UNIX stream pair, for tests and in-process plumbing.
std::pair<Socket, Socket> socket_pair();

}  // namespace vppb::util
