// Bump allocator for flat, immutable data built in one pass and freed
// in one pass (the compiled-trace step stream and its SoA thread
// tables).  Allocation is a pointer bump within the current block; a
// full block chains a new one of twice the size.  reset() recycles the
// blocks without returning them to the heap, which is what lets a
// reusable engine workspace rebuild per-run tables with zero
// allocations after warm-up.
//
// Arena memory is only ever handed out for trivially-destructible
// types: nothing is destroyed on reset, the storage is simply reused.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace vppb::util {

class Arena {
 public:
  explicit Arena(std::size_t first_block_bytes = 64 * 1024)
      : first_block_bytes_(first_block_bytes == 0 ? 64 : first_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Raw allocation: `bytes` bytes at `align` alignment (power of two).
  void* allocate(std::size_t bytes, std::size_t align) {
    std::size_t p = (cur_ + (align - 1)) & ~(align - 1);
    if (p + bytes > end_) {
      grow(bytes + align);
      p = (cur_ + (align - 1)) & ~(align - 1);
    }
    cur_ = p + bytes;
    bytes_used_ += bytes;
    return reinterpret_cast<void*>(p);
  }

  /// `n` value-initialized Ts.  T must be trivially destructible: the
  /// arena never runs destructors (see header comment).
  template <typename T>
  T* make_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is recycled without destruction");
    T* out = static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < n; ++i) ::new (out + i) T();
    return out;
  }

  /// A single value-initialized T (same contract as make_array).
  template <typename T, typename... Args>
  T* make(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is recycled without destruction");
    T* out = static_cast<T*>(allocate(sizeof(T), alignof(T)));
    return ::new (out) T(static_cast<Args&&>(args)...);
  }

  /// Rewinds to empty, keeping every block for reuse.  Previously
  /// returned pointers become dangling-but-allocated storage; nothing
  /// is freed or destroyed.
  void reset() {
    next_block_ = 0;
    bytes_used_ = 0;
    if (blocks_.empty()) {
      cur_ = end_ = 0;
    } else {
      use_block(0);
    }
  }

  /// Bytes handed out since construction/reset (excludes alignment pad).
  std::size_t bytes_used() const { return bytes_used_; }

  /// Bytes of block storage owned (survives reset).
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void use_block(std::size_t i) {
    cur_ = reinterpret_cast<std::uintptr_t>(blocks_[i].data.get());
    end_ = cur_ + blocks_[i].size;
    next_block_ = i + 1;
  }

  void grow(std::size_t need) {
    // Reuse an already-owned block when one is big enough (post-reset
    // path); otherwise chain a new block, doubling as we go.
    while (next_block_ < blocks_.size()) {
      if (blocks_[next_block_].size >= need) {
        use_block(next_block_);
        return;
      }
      ++next_block_;
    }
    std::size_t size = blocks_.empty() ? first_block_bytes_
                                       : blocks_.back().size * 2;
    while (size < need) size *= 2;
    blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
    use_block(blocks_.size() - 1);
  }

  std::size_t first_block_bytes_;
  std::vector<Block> blocks_;
  std::size_t next_block_ = 0;  ///< next owned block grow() may reuse
  std::uintptr_t cur_ = 0;
  std::uintptr_t end_ = 0;
  std::size_t bytes_used_ = 0;
};

}  // namespace vppb::util
