// Atomic file replacement: write to a same-directory temp file, fsync,
// then rename over the destination.
//
// Every artifact the tool writes non-incrementally (text/binary traces,
// SVG renders) goes through this, so an interrupted run — SIGKILL,
// full disk, a crash in a later phase — either leaves the previous file
// untouched or the complete new one, never a half-written hybrid.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vppb::util {

/// Replaces `path` atomically with `n` bytes of `data`.  The temp file
/// lives next to `path` (rename must not cross filesystems) and is
/// unlinked on any failure.  Throws vppb::Error with errno context.
void atomic_write_file(const std::string& path, const void* data,
                       std::size_t n);

void atomic_write_file(const std::string& path, const std::string& text);
void atomic_write_file(const std::string& path,
                       const std::vector<std::uint8_t>& bytes);

}  // namespace vppb::util
