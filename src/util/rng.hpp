// Deterministic pseudo-random numbers for the reference machine's noise
// models and for the workload generators.  xoshiro256** seeded via
// SplitMix64: fast, high quality, and identical across platforms (unlike
// std::normal_distribution, whose output is implementation-defined).
#pragma once

#include <cstdint>

namespace vppb {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double next_double();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t below(std::uint64_t n);

  /// Standard normal via Box–Muller (deterministic across platforms).
  double gaussian();

  /// Normal with the given mean and standard deviation.
  double gaussian(double mean, double stddev);

  /// Multiplicative jitter: a positive factor with mean ~1 and the given
  /// relative standard deviation, clamped to [1-4σ, 1+4σ] and ≥ 0.01.
  double jitter_factor(double rel_stddev);

  /// Split off an independent stream (for per-thread determinism).
  Rng split();

 private:
  std::uint64_t s_[4] = {};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace vppb
