// Simulation time.
//
// The paper records wall-clock time with 1 µs resolution.  We keep all
// times as integer nanoseconds (SimTime), which gives deterministic
// arithmetic, microsecond-compatible formatting, and ~292 years of
// headroom in 64 bits.
#pragma once

#include <chrono>
#include <compare>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <limits>
#include <string>

namespace vppb {

/// A point in (or duration of) simulated time, in integer nanoseconds.
/// Value-semantic wrapper so times and plain integers cannot be mixed up.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}

  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }
  static constexpr SimTime nanos(std::int64_t n) { return SimTime{n}; }
  static constexpr SimTime micros(std::int64_t u) { return SimTime{u * 1000}; }
  static constexpr SimTime millis(std::int64_t m) {
    return SimTime{m * 1'000'000};
  }
  static constexpr SimTime seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e9)};
  }
  static SimTime from(std::chrono::nanoseconds d) { return SimTime{d.count()}; }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr std::int64_t us() const { return ns_ / 1000; }
  constexpr double seconds_d() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double micros_d() const { return static_cast<double>(ns_) / 1e3; }

  constexpr bool is_zero() const { return ns_ == 0; }

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime{a.ns_ + b.ns_};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime{a.ns_ - b.ns_};
  }
  constexpr SimTime& operator+=(SimTime o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    ns_ -= o.ns_;
    return *this;
  }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) {
    return SimTime{a.ns_ * k};
  }
  friend constexpr SimTime operator*(std::int64_t k, SimTime a) { return a * k; }
  /// Scale by a real factor (e.g. the paper's ×6.7 bound-thread cost).
  constexpr SimTime scaled(double f) const {
    return SimTime{static_cast<std::int64_t>(static_cast<double>(ns_) * f)};
  }
  friend constexpr std::int64_t operator/(SimTime a, SimTime b) {
    return a.ns_ / b.ns_;
  }
  friend constexpr SimTime operator/(SimTime a, std::int64_t k) {
    return SimTime{a.ns_ / k};
  }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  /// Render as a human-readable quantity, e.g. "12.345ms" or "1.5s".
  std::string to_string() const;

 private:
  std::int64_t ns_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, SimTime t) {
  return os << t.to_string();
}

inline std::string SimTime::to_string() const {
  char buf[48];
  const double a = ns_ < 0 ? -static_cast<double>(ns_) : static_cast<double>(ns_);
  if (a >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.3fs", static_cast<double>(ns_) / 1e9);
  } else if (a >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.3fms", static_cast<double>(ns_) / 1e6);
  } else if (a >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.3fus", static_cast<double>(ns_) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(ns_));
  }
  return buf;
}

}  // namespace vppb
