// Deterministic fault injection for resilience testing.
//
// A FaultPlan is a set of rules, one per injection site, parsed from a
// spec string (the `VPPB_FAULT` environment variable for the daemon, or
// built programmatically in tests):
//
//   VPPB_FAULT="corrupt-frame:5,short-read:7:2,delay-ms:3:0:40"
//
// Each entry is `site:period[:limit[:param]]` — the site fires on every
// `period`-th hit, at most `limit` times (0 = unlimited), with an
// optional integer parameter (e.g. the delay in milliseconds).  There
// is no randomness anywhere: the same request sequence always injects
// the same faults, so a recovery test that passes is a proof, not a
// coin flip.
//
// Sites (where the server consults the plan):
//   corrupt-frame  flip a byte of an incoming request payload
//   short-read     drop the connection after reading a frame, as if the
//                  peer vanished mid-stream
//   delay-ms       stall a worker before it runs a request (param = ms);
//                  the stall is cooperative — it polls the request's
//                  RunGuard, so a watchdog cancel cuts it short
//   cache-enomem   throw std::bad_alloc inside the trace-cache load
//   cache-eio      fail the trace file read with an I/O error
//   wedge-ms       stall a worker *uncancellably* (param = ms), as if it
//                  were stuck in a tight native loop — exercises the
//                  watchdog's abandon-and-replace escalation
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

namespace vppb::util {

enum class FaultSite : int {
  kCorruptFrame = 0,
  kShortRead,
  kDelayResponse,
  kCacheEnomem,
  kCacheEio,
  kWedge,
  kCount,
};

const char* fault_site_name(FaultSite site);

class FaultPlan {
 public:
  FaultPlan() = default;  ///< no rules: nothing ever fires

  /// Parses a spec string (see file comment).  Throws vppb::Error on
  /// unknown sites or malformed entries.  Empty spec = no rules.
  static FaultPlan parse(const std::string& spec);

  /// The process-wide plan, parsed once from $VPPB_FAULT (empty or
  /// unset = inert).  A bad spec in the environment throws on first use
  /// rather than silently running without faults.
  static FaultPlan& global();

  /// Counts a hit at `site`; returns true when the rule says this hit
  /// fires (every period-th hit, up to the limit).  Thread-safe.
  bool should_fire(FaultSite site);

  /// The rule's parameter (0 when absent or the site has no rule).
  std::int64_t param(FaultSite site) const;

  /// True when any rule is configured.
  bool armed() const;

  /// Total faults injected so far, across all sites.
  std::uint64_t fired_total() const;

  /// Human-readable description of the configured rules ("off" when
  /// inert), for the daemon's startup banner.
  std::string summary() const;

 private:
  struct Rule {
    std::uint64_t period = 0;  ///< 0 = site disabled
    std::uint64_t limit = 0;   ///< 0 = unlimited
    std::int64_t param = 0;
    std::uint64_t hits = 0;
    std::uint64_t fired = 0;
  };

  mutable std::mutex mu_;
  Rule rules_[static_cast<int>(FaultSite::kCount)];

 public:
  // Copyable so parse() can return by value; the mutex is per-instance
  // state, not shared.
  FaultPlan(const FaultPlan& other);
  FaultPlan& operator=(const FaultPlan& other);
};

}  // namespace vppb::util
