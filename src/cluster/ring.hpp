// Consistent-hash ring for the vppb proxy routing tier.
//
// Each shard occupies `vnodes` pseudo-random points on a 64-bit ring;
// a key is owned by the first shard point clockwise from the key's
// hash.  Virtual nodes smooth the load split (with one point per shard
// the largest arc is unboundedly lucky; with 64 the per-shard share of
// a uniform key population concentrates near 1/N), and they bound
// remapping: removing a shard moves only the keys that shard owned —
// every other key keeps its owner, which is what preserves the other
// shards' warm caches across a failover.
//
// Keys are the same FNV-1a content digests the TraceCache keys by
// (server::content_key), so "which shard serves this trace" and "which
// cache slot holds it" agree by construction.
//
// The ring itself is a passive value type — no locking, no membership
// policy.  cluster::Membership owns one and mutates it under its own
// lock as shards are ejected and re-probed.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace vppb::cluster {

class Ring {
 public:
  /// `vnodes` points per shard; clamped to >= 1.
  explicit Ring(int vnodes = 64);

  /// Adds a shard's points.  Adding a present shard is a no-op.
  void add(std::uint64_t shard_id);

  /// Removes a shard's points.  Removing an absent shard is a no-op.
  void remove(std::uint64_t shard_id);

  bool contains(std::uint64_t shard_id) const;
  std::size_t shard_count() const { return shards_.size(); }
  bool empty() const { return points_.empty(); }

  /// The shard owning `key`: first point clockwise from hash(key).
  /// Throws vppb::Error on an empty ring.
  std::uint64_t owner(std::uint64_t key) const;

  /// Up to `n` distinct shards in ring order starting at the owner —
  /// the owner first, then the natural failover/hedging successors.
  /// Shorter than `n` when fewer shards are on the ring.
  std::vector<std::uint64_t> owners(std::uint64_t key, std::size_t n) const;

 private:
  int vnodes_;
  std::map<std::uint64_t, std::uint64_t> points_;  ///< ring point -> shard
  std::vector<std::uint64_t> shards_;              ///< present shard ids
};

}  // namespace vppb::cluster
