// Shard membership for the vppb proxy: who is in the routing ring, and
// the prober that moves shards in and out of it.
//
// Every configured shard is in exactly one of two states:
//
//   up    — on the consistent-hash ring; the proxy routes to it.
//   down  — off the ring; a prober thread re-probes it with
//           decorrelated-jitter backoff until it answers again.
//
// Transitions:
//   up -> down    eject(): a forward hit a transport error (dead
//                 process, dropped connection, recv timeout).  The
//                 shard leaves the ring immediately — subsequent
//                 requests rehash to the ring successor — and the
//                 prober is woken to start probing it.
//   down -> up    the prober's `health` request (the admission-
//                 bypassing probe, so a saturated shard still proves
//                 liveness) comes back ready.  The shard rejoins the
//                 ring; its consistent-hash arc — and only that arc —
//                 moves back to it.
//
// Probes record the shard's reported epoch, so a restart (same id, new
// epoch — cold cache) is observable, and its last StatsBody, so
// cluster aggregation can still show a row for a down shard.
//
// Membership also owns the per-shard connection pools: forwards check
// a connection out, and return it only after a clean request/response
// exchange — a connection that saw a transport error is dropped, never
// pooled, because its framing state is unknown.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/ring.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"

namespace vppb::cluster {

/// One backend's address.  Unix path preferred when non-empty, TCP
/// otherwise — the same convention as ServerOptions.  `host` empty
/// means loopback; a non-loopback host is a *remote* shard (protocol
/// v8) and Membership refuses it without an auth key configured.
struct ShardEndpoint {
  std::uint64_t id = 0;  ///< routing identity; must be unique, nonzero
  std::string unix_path;
  std::string host;  ///< "" = loopback; else a numeric IPv4 address
  std::uint16_t tcp_port = 0;

  std::string display() const;
  bool loopback() const {
    return host.empty() || host == "127.0.0.1" || host == "localhost";
  }
  /// Parses "path.sock", ":port" / "port" (loopback), or
  /// "a.b.c.d:port" (numeric IPv4 — no DNS; a resolver stall is an
  /// unbounded wait this layer refuses to take).
  static ShardEndpoint parse(std::uint64_t id, const std::string& spec);
};

/// A point-in-time view of one shard, for aggregation and rendering.
struct ShardView {
  ShardEndpoint endpoint;
  bool healthy = false;
  std::uint64_t epoch = 0;        ///< from the last successful probe
  std::uint64_t ejections = 0;    ///< up->down transitions so far
  server::StatsBody last_stats;   ///< from the last probe / stats fanout
};

struct MembershipOptions {
  int vnodes = 64;
  /// Decorrelated-jitter re-probe backoff, and the probe's own
  /// transport timeout.
  std::int64_t probe_base_ms = 25;
  std::int64_t probe_cap_ms = 1000;
  int probe_timeout_ms = 2000;
  std::uint64_t seed = 1;  ///< jitter PRNG seed (deterministic tests)

  // --- hostile-network hardening (protocol v8) ---
  /// Bound on every dial (pool refill, probe, forward).  A black-holed
  /// shard costs this much, never the kernel's SYN-retry minutes —
  /// probes used to stall here and wedge the whole prober thread.
  int dial_timeout_ms = 2000;
  /// Shared key for TCP shards; required for any non-loopback endpoint.
  std::string auth_key;
  /// Idle pooled connections per shard: at most `pool_cap` are kept,
  /// and one idle longer than `pool_idle_ms` is closed by the prober's
  /// sweep — long-lived proxies stop pinning shard fds forever.
  std::size_t pool_cap = 8;
  std::int64_t pool_idle_ms = 30000;
};

class Membership {
 public:
  Membership(std::vector<ShardEndpoint> shards, MembershipOptions opt);
  ~Membership();  ///< calls stop()

  Membership(const Membership&) = delete;
  Membership& operator=(const Membership&) = delete;

  /// Probes every shard once synchronously (populating the ring), then
  /// starts the re-probe thread.  Not an error if every shard is down
  /// at start — the prober keeps trying.
  void start();
  void stop();

  /// Up to `n` healthy shard indices in ring order for `key` (owner
  /// first, failover successors after).  Empty when every shard is
  /// down.
  std::vector<std::size_t> route(std::uint64_t key, std::size_t n) const;

  /// The shard id that owns `key` when every shard is healthy — the
  /// key's *primary*, regardless of who is in the live ring right now.
  /// The replica failover layer uses it to tell "routing to the
  /// primary" from "routing to a stand-in" (and only reorders
  /// stand-ins).  Computed on an immutable all-shards ring; no lock.
  std::uint64_t configured_owner(std::uint64_t key) const {
    return full_ring_.owner(key);
  }

  /// Marks shard `idx` down, removes it from the ring, and wakes the
  /// prober.  Idempotent while the shard stays down.
  void eject(std::size_t idx);

  /// One immediate probe of shard `idx` (also used internally by
  /// start() and the prober).  Returns true when the shard answered
  /// ready and is now up.
  bool probe(std::size_t idx);

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t up_count() const;
  const ShardEndpoint& endpoint(std::size_t idx) const {
    return shards_[idx].endpoint;
  }
  std::vector<ShardView> snapshot() const;

  /// Records the stats a cluster-wide fanout got from shard `idx`, so
  /// snapshot() stays fresh without waiting for the next probe.
  void note_stats(std::size_t idx, const server::StatsBody& s,
                  std::uint64_t epoch);

  /// Checks out a connection to shard `idx`: pooled if one is idle,
  /// freshly dialed otherwise (throws vppb::Error when the dial
  /// fails).  Return it with give_back() ONLY after a clean exchange.
  server::Client take_conn(std::size_t idx);
  void give_back(std::size_t idx, server::Client conn);

  /// Total idle pooled connections across all shards (tests observe
  /// the reaper through this).
  std::size_t pooled_count() const;

 private:
  /// An idle pooled connection and when it went idle (the reaper's
  /// clock).
  struct PooledConn {
    server::Client conn;
    std::chrono::steady_clock::time_point idle_since;
  };

  struct Shard {
    ShardEndpoint endpoint;
    bool healthy = false;
    std::uint64_t epoch = 0;
    std::uint64_t ejections = 0;
    server::StatsBody last_stats;
    /// Prober state: next probe due time and the previous backoff
    /// sleep (decorrelated jitter feeds on it).
    std::chrono::steady_clock::time_point next_probe{};
    std::int64_t prev_backoff_ms = 0;
    std::vector<PooledConn> pool;  ///< idle connections, newest at back
  };

  void probe_loop();
  /// Closes pooled connections idle past pool_idle_ms; returns the
  /// next reap deadline (or `fallback` when every pool is empty).
  /// Caller holds mu_.
  std::chrono::steady_clock::time_point reap_idle(
      std::chrono::steady_clock::time_point now,
      std::chrono::steady_clock::time_point fallback);
  server::Client dial(const ShardEndpoint& ep, int timeout_ms) const;

  const MembershipOptions opt_;
  std::vector<Shard> shards_;  ///< fixed size after construction

  mutable std::mutex mu_;
  std::condition_variable cv_;  ///< wakes the prober (eject, stop)
  Ring ring_;
  Ring full_ring_;  ///< every configured shard; immutable after ctor
  std::uint64_t rng_;
  bool running_ = false;
  std::thread prober_;
};

}  // namespace vppb::cluster
