#include "cluster/quota.hpp"

#include <algorithm>
#include <cmath>

namespace vppb::cluster {

ClientQuota::ClientQuota(QuotaOptions opt) : opt_(opt) {}

ClientQuota::Verdict ClientQuota::admit(
    std::uint64_t client, std::chrono::steady_clock::time_point now) {
  Verdict v;
  if (!enabled()) return v;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = buckets_.find(client);
  if (it == buckets_.end()) {
    if (buckets_.size() >= opt_.max_clients) evict_idle_locked(now);
    Bucket fresh;
    fresh.tokens = std::max(opt_.burst, 1.0);
    fresh.last = now;
    it = buckets_.emplace(client, fresh).first;
  }
  Bucket& b = it->second;
  const double elapsed_s =
      std::chrono::duration<double>(now - b.last).count();
  if (elapsed_s > 0) {
    b.tokens = std::min(std::max(opt_.burst, 1.0),
                        b.tokens + elapsed_s * opt_.rps);
    b.last = now;
  }
  if (b.tokens >= 1.0) {
    b.tokens -= 1.0;
    return v;
  }
  ++rejections_;
  v.admitted = false;
  v.retry_after_ms = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil((1.0 - b.tokens) / opt_.rps * 1000.0)));
  return v;
}

void ClientQuota::evict_idle_locked(
    std::chrono::steady_clock::time_point now) {
  const double full = std::max(opt_.burst, 1.0);
  for (auto it = buckets_.begin(); it != buckets_.end();) {
    const double elapsed_s =
        std::chrono::duration<double>(now - it->second.last).count();
    const double refilled =
        std::min(full, it->second.tokens + elapsed_s * opt_.rps);
    if (refilled >= full) {
      it = buckets_.erase(it);
    } else {
      ++it;
    }
  }
  // When every bucket is mid-spend the map may briefly exceed the cap
  // (bounded by concurrently *active* identities, which admission
  // itself bounds); never evicting a non-full bucket keeps decisions
  // exact — dropping one would hand its owner a fresh burst.
}

std::uint64_t ClientQuota::rejections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejections_;
}

}  // namespace vppb::cluster
