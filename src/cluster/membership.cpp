#include "cluster/membership.hpp"

#include <algorithm>
#include <cctype>

#include "obs/log.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace vppb::cluster {
namespace {

std::uint64_t next_rand(std::uint64_t& state) {
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 2685821657736338717ULL;
}

/// Decorrelated jitter, same scheme as Client::call_retry: each sleep
/// uniform in [base, prev * 3], capped.  Keeps a fleet of proxies from
/// re-probing a rebooting shard in synchronized waves.
std::int64_t next_backoff_ms(std::int64_t prev_ms,
                             const MembershipOptions& opt,
                             std::uint64_t& rng) {
  const std::int64_t lo = opt.probe_base_ms;
  const std::int64_t hi =
      std::max(lo, std::min(opt.probe_cap_ms,
                            prev_ms > 0 ? prev_ms * 3 : lo));
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_rand(rng) % span);
}

}  // namespace

std::string ShardEndpoint::display() const {
  if (!unix_path.empty()) return unix_path;
  return strprintf("%s:%u", host.empty() ? "127.0.0.1" : host.c_str(),
                   static_cast<unsigned>(tcp_port));
}

ShardEndpoint ShardEndpoint::parse(std::uint64_t id,
                                   const std::string& spec) {
  ShardEndpoint ep;
  ep.id = id;
  if (spec.empty()) throw Error("empty shard endpoint");
  const auto colon = spec.rfind(':');
  std::string port_str;
  if (colon != std::string::npos) {
    const std::string host = spec.substr(0, colon);
    if (!host.empty() && host != "127.0.0.1" && host != "localhost") {
      // Remote shard: numeric IPv4 only.  A hostname would mean DNS,
      // and a resolver stall is an unbounded wait the dial path
      // refuses to take.
      const bool numeric = std::all_of(
          host.begin(), host.end(), [](unsigned char c) {
            return std::isdigit(c) || c == '.';
          });
      if (!numeric)
        throw Error("shard endpoint '" + spec + "': host must be a "
                    "numeric IPv4 address, 127.0.0.1/localhost, or a "
                    "unix socket path (no DNS)");
      ep.host = host;
    }
    port_str = spec.substr(colon + 1);
  } else if (std::all_of(spec.begin(), spec.end(),
                         [](unsigned char c) { return std::isdigit(c); })) {
    port_str = spec;
  }
  if (port_str.empty()) {
    ep.unix_path = spec;
    return ep;
  }
  std::int64_t port = 0;
  if (!parse_i64(port_str, port) || port <= 0 || port > 65535)
    throw Error("shard endpoint '" + spec + "': bad port");
  ep.tcp_port = static_cast<std::uint16_t>(port);
  return ep;
}

Membership::Membership(std::vector<ShardEndpoint> shards,
                       MembershipOptions opt)
    : opt_(opt), ring_(opt.vnodes), full_ring_(opt.vnodes),
      rng_(opt.seed ? opt.seed : 1) {
  shards_.reserve(shards.size());
  for (auto& ep : shards) {
    for (const Shard& existing : shards_) {
      if (existing.endpoint.id == ep.id)
        throw Error(strprintf("duplicate shard id %llu",
                              static_cast<unsigned long long>(ep.id)));
    }
    if (ep.id == 0) throw Error("shard id 0 is reserved for standalone");
    if (ep.unix_path.empty() && !ep.loopback() && opt_.auth_key.empty())
      throw Error("shard endpoint '" + ep.display() + "' is not "
                  "loopback: remote shards require an auth key "
                  "(--auth-key-file / VPPB_AUTH_KEY)");
    Shard s;
    s.endpoint = std::move(ep);
    full_ring_.add(s.endpoint.id);
    shards_.push_back(std::move(s));
  }
  if (shards_.empty()) throw Error("a cluster needs at least one shard");
}

Membership::~Membership() { stop(); }

void Membership::start() {
  for (std::size_t i = 0; i < shards_.size(); ++i) probe(i);
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  running_ = true;
  prober_ = std::thread([this] { probe_loop(); });
}

void Membership::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
  }
  cv_.notify_all();
  if (prober_.joinable()) prober_.join();
}

server::Client Membership::dial(const ShardEndpoint& ep,
                                int timeout_ms) const {
  if (!ep.unix_path.empty())
    return server::Client::connect_unix(ep.unix_path, timeout_ms);
  return server::Client::connect_tcp(ep.host, ep.tcp_port, opt_.auth_key,
                                     timeout_ms);
}

bool Membership::probe(std::size_t idx) {
  const ShardEndpoint ep = shards_[idx].endpoint;
  server::Response resp;
  try {
    server::Client c = dial(ep, opt_.probe_timeout_ms);
    server::Request req;
    req.type = server::ReqType::kHealth;  // bypasses shard admission
    server::RetryPolicy once;
    once.max_attempts = 1;
    once.request_timeout_ms = opt_.probe_timeout_ms;
    resp = c.call_retry(req, once);
  } catch (const Error&) {
    std::lock_guard<std::mutex> lock(mu_);
    Shard& s = shards_[idx];
    if (s.healthy) {
      s.healthy = false;
      ring_.remove(s.endpoint.id);
    }
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  Shard& s = shards_[idx];
  const bool ready = resp.status == server::Status::kOk && resp.ready;
  if (ready) {
    if (!s.healthy) {
      s.healthy = true;
      s.prev_backoff_ms = 0;
      ring_.add(s.endpoint.id);
      obs::logf(obs::LogLevel::kInfo, "cluster",
                "shard %llu (%s) is up (epoch %016llx)",
                static_cast<unsigned long long>(s.endpoint.id),
                s.endpoint.display().c_str(),
                static_cast<unsigned long long>(resp.epoch));
    }
    s.epoch = resp.epoch;
    s.last_stats = resp.stats;
  } else if (s.healthy) {
    s.healthy = false;
    ring_.remove(s.endpoint.id);
  }
  return ready;
}

void Membership::probe_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (running_) {
    const auto now = std::chrono::steady_clock::now();
    auto next_due = now + std::chrono::milliseconds(opt_.probe_cap_ms);
    next_due = reap_idle(now, next_due);
    std::vector<std::size_t> due;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      Shard& s = shards_[i];
      if (s.healthy) continue;
      if (s.next_probe <= now) {
        due.push_back(i);
        // Schedule the next attempt before probing: a probe that wins
        // resets the backoff anyway, and a crash between unlock and
        // re-lock cannot leave the shard due "now" in a hot loop.
        s.prev_backoff_ms = next_backoff_ms(s.prev_backoff_ms, opt_, rng_);
        s.next_probe =
            now + std::chrono::milliseconds(s.prev_backoff_ms);
      }
      next_due = std::min(next_due, s.next_probe);
    }
    if (!due.empty()) {
      lock.unlock();
      for (std::size_t i : due) probe(i);
      lock.lock();
      continue;  // re-derive deadlines with fresh state
    }
    cv_.wait_until(lock, next_due);
  }
}

std::vector<std::size_t> Membership::route(std::uint64_t key,
                                           std::size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::size_t> out;
  if (ring_.empty()) return out;
  for (std::uint64_t id : ring_.owners(key, n)) {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      if (shards_[i].endpoint.id == id) {
        out.push_back(i);
        break;
      }
    }
  }
  return out;
}

void Membership::eject(std::size_t idx) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Shard& s = shards_[idx];
    if (s.healthy) {
      s.healthy = false;
      ++s.ejections;
      s.prev_backoff_ms = 0;
      s.next_probe = std::chrono::steady_clock::now();
      ring_.remove(s.endpoint.id);
      s.pool.clear();  // every pooled connection shares the dead peer
      obs::logf(obs::LogLevel::kWarn, "cluster",
                "shard %llu (%s) ejected; re-probing with backoff",
                static_cast<unsigned long long>(s.endpoint.id),
                s.endpoint.display().c_str());
    }
  }
  cv_.notify_all();
}

std::size_t Membership::up_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const Shard& s : shards_) n += s.healthy ? 1 : 0;
  return n;
}

std::vector<ShardView> Membership::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ShardView> out;
  out.reserve(shards_.size());
  for (const Shard& s : shards_) {
    ShardView v;
    v.endpoint = s.endpoint;
    v.healthy = s.healthy;
    v.epoch = s.epoch;
    v.ejections = s.ejections;
    v.last_stats = s.last_stats;
    out.push_back(std::move(v));
  }
  return out;
}

void Membership::note_stats(std::size_t idx, const server::StatsBody& s,
                            std::uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  shards_[idx].last_stats = s;
  if (epoch != 0) shards_[idx].epoch = epoch;
}

server::Client Membership::take_conn(std::size_t idx) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Shard& s = shards_[idx];
    if (!s.pool.empty()) {
      // Newest first: the hot end of the stack stays warm while the
      // cold end ages toward the reaper.
      server::Client c = std::move(s.pool.back().conn);
      s.pool.pop_back();
      return c;
    }
  }
  return dial(shards_[idx].endpoint, opt_.dial_timeout_ms);
}

void Membership::give_back(std::size_t idx, server::Client conn) {
  std::lock_guard<std::mutex> lock(mu_);
  Shard& s = shards_[idx];
  // A connection to an ejected shard is stale by definition.
  if (s.healthy && s.pool.size() < opt_.pool_cap)
    s.pool.push_back(
        PooledConn{std::move(conn), std::chrono::steady_clock::now()});
}

std::size_t Membership::pooled_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const Shard& s : shards_) n += s.pool.size();
  return n;
}

std::chrono::steady_clock::time_point Membership::reap_idle(
    std::chrono::steady_clock::time_point now,
    std::chrono::steady_clock::time_point fallback) {
  if (opt_.pool_idle_ms <= 0) return fallback;
  const auto window = std::chrono::milliseconds(opt_.pool_idle_ms);
  auto next = fallback;
  for (Shard& s : shards_) {
    // Pools are stacks (take_conn pops the back), so the front is the
    // coldest entry — expired connections form a prefix.
    std::size_t expired = 0;
    while (expired < s.pool.size() &&
           s.pool[expired].idle_since + window <= now)
      ++expired;
    if (expired > 0)
      s.pool.erase(s.pool.begin(),
                   s.pool.begin() + static_cast<std::ptrdiff_t>(expired));
    if (!s.pool.empty())
      next = std::min(next, s.pool.front().idle_since + window);
  }
  return next;
}

}  // namespace vppb::cluster
