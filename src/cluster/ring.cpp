#include "cluster/ring.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace vppb::cluster {
namespace {

/// splitmix64: scrambles (shard_id, vnode index) into a ring point.
/// The low bits of small sequential ids are far too regular to place
/// points with; this finalizer passes avalanche tests, which is all a
/// ring position needs.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t point_hash(std::uint64_t shard_id, int vnode) {
  return mix(mix(shard_id) ^ static_cast<std::uint64_t>(vnode));
}

}  // namespace

Ring::Ring(int vnodes) : vnodes_(std::max(1, vnodes)) {}

void Ring::add(std::uint64_t shard_id) {
  if (contains(shard_id)) return;
  for (int v = 0; v < vnodes_; ++v) {
    // On the (astronomically unlikely) collision of two shards' points,
    // first writer keeps the point; the loser just has one fewer vnode.
    points_.emplace(point_hash(shard_id, v), shard_id);
  }
  shards_.push_back(shard_id);
}

void Ring::remove(std::uint64_t shard_id) {
  if (!contains(shard_id)) return;
  for (auto it = points_.begin(); it != points_.end();) {
    if (it->second == shard_id) {
      it = points_.erase(it);
    } else {
      ++it;
    }
  }
  shards_.erase(std::remove(shards_.begin(), shards_.end(), shard_id),
                shards_.end());
}

bool Ring::contains(std::uint64_t shard_id) const {
  return std::find(shards_.begin(), shards_.end(), shard_id) !=
         shards_.end();
}

std::uint64_t Ring::owner(std::uint64_t key) const {
  if (points_.empty()) throw Error("consistent-hash ring is empty");
  auto it = points_.lower_bound(mix(key));
  if (it == points_.end()) it = points_.begin();  // wrap
  return it->second;
}

std::vector<std::uint64_t> Ring::owners(std::uint64_t key,
                                        std::size_t n) const {
  std::vector<std::uint64_t> out;
  if (points_.empty() || n == 0) return out;
  n = std::min(n, shards_.size());
  auto it = points_.lower_bound(mix(key));
  // Walk clockwise collecting distinct shards; one full lap visits
  // every shard, so the loop is bounded by points_.size().
  for (std::size_t seen = 0; seen < points_.size() && out.size() < n;
       ++seen, ++it) {
    if (it == points_.end()) it = points_.begin();
    if (std::find(out.begin(), out.end(), it->second) == out.end())
      out.push_back(it->second);
  }
  return out;
}

}  // namespace vppb::cluster
