// Global per-client admission for the routing tier: one token bucket
// per caller identity, refilled continuously at `rps` with capacity
// `burst`.
//
// This is the cluster-wide complement of the shard's per-client
// *in-flight* limit.  The shard limit bounds concurrency per shard, so
// a client spraying requests across K shards still gets K times its
// budget; the proxy sits in front of every shard and enforces *rate*
// exactly once.  A rejected request gets a typed kQuotaExceeded with a
// retry_after_ms hint: the time until the caller's next token refills,
// so a well-behaved client can sleep precisely instead of hammering.
//
// Time is passed in by the caller (steady_clock points), never read
// here — unit tests drive the bucket with synthetic clocks and the
// refill math stays deterministic.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>

namespace vppb::cluster {

struct QuotaOptions {
  /// Sustained tokens per second per client; <= 0 disables the quota
  /// entirely (admit() always admits).
  double rps = 0.0;
  /// Bucket capacity: how many requests a client may burst after an
  /// idle period before the sustained rate applies.
  double burst = 8.0;
  /// Bound on tracked identities; beyond it, fully-refilled (idle)
  /// buckets are evicted first.  An idle bucket and a fresh one behave
  /// identically, so eviction never changes an admission decision.
  std::size_t max_clients = 4096;
};

/// Thread-safe per-client token-bucket map.
class ClientQuota {
 public:
  explicit ClientQuota(QuotaOptions opt);

  struct Verdict {
    bool admitted = true;
    /// When rejected: milliseconds until one token refills for this
    /// client (always >= 1, so a client that honors the hint cannot
    /// spin on a zero wait).
    std::int64_t retry_after_ms = 0;
  };

  /// Charges one token to `client` at time `now`.  `client` is the
  /// resolved identity: Request::client_id, or the proxy's connection
  /// key for anonymous callers.
  Verdict admit(std::uint64_t client,
                std::chrono::steady_clock::time_point now);

  bool enabled() const { return opt_.rps > 0.0; }
  std::uint64_t rejections() const;

 private:
  struct Bucket {
    double tokens = 0.0;
    std::chrono::steady_clock::time_point last;
  };

  void evict_idle_locked(std::chrono::steady_clock::time_point now);

  const QuotaOptions opt_;
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Bucket> buckets_;
  std::uint64_t rejections_ = 0;
};

}  // namespace vppb::cluster
