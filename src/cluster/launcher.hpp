// LocalCluster: fork/exec N vppbd shards as real child processes.
//
// Used by `vppb cluster` (the one-command local deployment), the
// shard-kill failover tests, and the scaling bench.  Shards are
// separate *processes*, not in-process Server instances, because that
// is the failure mode the cluster tier exists to survive: a SIGKILLed
// child takes its sockets, cache, and in-flight requests with it,
// exactly like a crashed production shard — something an in-process
// server shutdown (graceful drain) cannot simulate.
//
// fork is immediately followed by exec of the vppb binary ("serve"
// subcommand): forking without exec from a threaded parent (the tests,
// the proxy) would clone locked mutexes into the child.  Each shard
// listens on <dir>/shard<i>.sock with --shard-id i+1, and start()
// blocks until every shard answers a ready health probe (or the
// timeout expires — then it throws with the stragglers named).
#pragma once

#include <cstdint>
#include <string>
#include <sys/types.h>
#include <utility>
#include <vector>

#include "cluster/membership.hpp"

namespace vppb::cluster {

struct ClusterOptions {
  /// Path to the vppb binary to exec ("/proc/self/exe" for the CLI,
  /// the VPPB_EXE compile definition for tests/bench).
  std::string exe;
  /// Directory for the shard sockets; created if missing.
  std::string dir;
  int shards = 2;
  /// Per-shard --jobs (0 = all hardware threads).
  int jobs = 0;
  /// Per-shard --cache-entries (0 = keep the serve default).
  std::size_t cache_entries = 0;
  /// Extra `vppb serve` arguments appended verbatim to every shard.
  std::vector<std::string> serve_args;
  /// Extra environment entries set in each child before exec (e.g.
  /// VPPB_FAULT for deterministic per-shard service-time injection).
  std::vector<std::pair<std::string, std::string>> env;
  std::int64_t ready_timeout_ms = 15000;
};

class LocalCluster {
 public:
  explicit LocalCluster(ClusterOptions opt);
  ~LocalCluster();  ///< calls stop()

  LocalCluster(const LocalCluster&) = delete;
  LocalCluster& operator=(const LocalCluster&) = delete;

  /// Spawns every shard and waits for all of them to answer ready.
  /// Throws vppb::Error when one fails to come up in time.
  void start();

  /// SIGTERM + waitpid every live shard (graceful drain).  Idempotent.
  void stop();

  /// SIGKILL + waitpid shard `i` — the crash the failover layer exists
  /// for.  The shard's endpoint stays configured; restart_shard revives
  /// it.
  void kill_shard(std::size_t i);

  /// Spawns shard `i` again on its original endpoint (fresh process,
  /// new epoch, cold cache) and waits for it to answer ready.
  void restart_shard(std::size_t i);

  const std::vector<ShardEndpoint>& shards() const { return endpoints_; }
  pid_t pid(std::size_t i) const { return pids_[i]; }

 private:
  pid_t spawn(std::size_t i);
  bool wait_ready(std::size_t i, std::int64_t timeout_ms) const;
  void reap(std::size_t i, int sig);

  ClusterOptions opt_;
  std::vector<ShardEndpoint> endpoints_;
  std::vector<pid_t> pids_;  ///< -1 = not running
};

}  // namespace vppb::cluster
