// LocalCluster: fork/exec N vppbd shards as real child processes.
//
// Used by `vppb cluster` (the one-command local deployment), the
// shard-kill failover tests, and the scaling bench.  Shards are
// separate *processes*, not in-process Server instances, because that
// is the failure mode the cluster tier exists to survive: a SIGKILLed
// child takes its sockets, cache, and in-flight requests with it,
// exactly like a crashed production shard — something an in-process
// server shutdown (graceful drain) cannot simulate.
//
// fork is immediately followed by exec of the vppb binary ("serve"
// subcommand): forking without exec from a threaded parent (the tests,
// the proxy) would clone locked mutexes into the child.  Each shard
// listens on <dir>/shard<i>.sock with --shard-id i+1, and start()
// blocks until every shard answers a ready health probe (or the
// timeout expires — then it throws with the stragglers named).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <sys/types.h>
#include <utility>
#include <vector>

#include "cluster/membership.hpp"

namespace vppb::cluster {

struct ClusterOptions {
  /// Path to the vppb binary to exec ("/proc/self/exe" for the CLI,
  /// the VPPB_EXE compile definition for tests/bench).
  std::string exe;
  /// Directory for the shard sockets; created if missing.
  std::string dir;
  int shards = 2;
  /// Per-shard --jobs (0 = all hardware threads).
  int jobs = 0;
  /// Per-shard --cache-entries (0 = keep the serve default).
  std::size_t cache_entries = 0;
  /// Extra `vppb serve` arguments appended verbatim to every shard.
  std::vector<std::string> serve_args;
  /// Extra environment entries set in each child before exec (e.g.
  /// VPPB_FAULT for deterministic per-shard service-time injection).
  std::vector<std::pair<std::string, std::string>> env;
  std::int64_t ready_timeout_ms = 15000;

  /// Crash-loop governance for restart_shard: restarts inside the
  /// cool-off window (10x the backoff cap since the previous restart)
  /// count as a crash loop.  Each one waits a decorrelated-jitter
  /// backoff before re-forking, and past max_crash_restarts the
  /// restart refuses (throws) instead of flapping forever.
  int max_crash_restarts = 8;
  std::int64_t restart_backoff_base_ms = 50;
  std::int64_t restart_backoff_cap_ms = 2000;
  std::uint64_t backoff_seed = 1;  ///< jitter PRNG seed (deterministic)
};

class LocalCluster {
 public:
  explicit LocalCluster(ClusterOptions opt);
  ~LocalCluster();  ///< calls stop()

  LocalCluster(const LocalCluster&) = delete;
  LocalCluster& operator=(const LocalCluster&) = delete;

  /// Spawns every shard and waits for all of them to answer ready.
  /// Throws vppb::Error when one fails to come up in time.
  void start();

  /// SIGTERM + waitpid every live shard (graceful drain).  Idempotent.
  void stop();

  /// SIGKILL + waitpid shard `i` — the crash the failover layer exists
  /// for.  The shard's endpoint stays configured; restart_shard revives
  /// it.
  void kill_shard(std::size_t i);

  /// SIGSTOP shard `i`: the gray failure.  The process holds its
  /// sockets and accepts connects (kernel backlog) but never answers —
  /// only forward/probe timeouts can tell it from a healthy shard.
  void pause_shard(std::size_t i);
  void resume_shard(std::size_t i);  ///< SIGCONT

  /// Reaps (waitpid, WNOHANG) any shard that exited on its own — a
  /// crash, not a kill_shard — and returns their indices.  Without
  /// this a crashed child stays a zombie until stop().
  std::vector<std::size_t> reap_exited();

  /// Spawns shard `i` again on its original endpoint (fresh process,
  /// new epoch, cold cache) and waits for it to answer ready.  Reaps a
  /// zombie first if the shard crashed; a crash loop backs off with
  /// decorrelated jitter and throws past max_crash_restarts.
  void restart_shard(std::size_t i);

  const std::vector<ShardEndpoint>& shards() const { return endpoints_; }
  pid_t pid(std::size_t i) const { return procs_[i].pid; }
  bool alive(std::size_t i) const { return procs_[i].pid > 0; }
  int restarts(std::size_t i) const { return procs_[i].restarts; }

 private:
  struct ShardProc {
    pid_t pid = -1;  ///< -1 = not running
    bool paused = false;
    int restarts = 0;  ///< consecutive crash-loop restarts
    std::int64_t prev_backoff_ms = 0;
    std::chrono::steady_clock::time_point last_restart{};
  };

  pid_t spawn(std::size_t i);
  bool wait_ready(std::size_t i, std::int64_t timeout_ms) const;
  void reap(std::size_t i, int sig);

  ClusterOptions opt_;
  std::vector<ShardEndpoint> endpoints_;
  std::vector<ShardProc> procs_;
  std::uint64_t rng_ = 1;  ///< restart-backoff jitter state
};

}  // namespace vppb::cluster
