// vppb proxy — the consistent-hash routing tier in front of N vppbd
// shards.
//
// The proxy speaks the exact varint frame protocol on both sides: to a
// client it looks like one (very large) vppbd; to a shard it looks like
// one more client.  Compute requests (predict / simulate / analyze)
// are routed by the FNV-1a digest of the trace file's bytes — the same
// function the TraceCache keys by — so each shard's cache sees a
// disjoint, stable slice of the trace population and a cluster of N
// shards has ~N times the effective cache, not N copies of one.
//
// Layered on the routing:
//
//   Single-flight   Identical concurrent requests (same encoded bytes)
//                   collapse into one upstream forward; followers wait
//                   and share the leader's response.  This sits *above*
//                   each shard's cache single-flight: the shard's
//                   version collapses concurrent compiles of one trace,
//                   the proxy's collapses identical whole requests
//                   before they spend shard admission slots.
//
//   Failover        A transport error on a forward ejects the shard
//                   (Membership re-probes it with backoff) and re-routes
//                   to the ring successor, so a shard death costs
//                   clients nothing but latency: typed errors never
//                   reach a healthy client because of a dead shard.
//
//   Hedged retries  With hedge_ms > 0, a routed request that has not
//                   answered within the hedge window is also sent to
//                   the ring successor; first definitive answer wins.
//                   Deadline-aware: a request whose remaining deadline
//                   budget cannot absorb the hedge window is never
//                   hedged (the hedge would answer a client that
//                   already gave up).
//
//   Aggregation     stats / health / metricsdump fan out to every
//                   shard and come back merged (counters summed,
//                   latency percentiles upper-bounded by the per-shard
//                   maxima) plus a per-shard ShardInfo breakdown, so
//                   `vppb stats --watch` works unchanged against the
//                   proxy.  Down shards contribute their last-known
//                   stats, marked unhealthy.
//
//   Global quota    A per-client token bucket (cluster/quota.hpp) in
//                   front of the routing: one identity's rate budget
//                   is enforced once, at the proxy, instead of K times
//                   across K shards.  Rejections are typed
//                   kQuotaExceeded with a retry_after_ms refill hint.
//                   Anonymous callers are resolved to the proxy's
//                   connection key, which is also stamped into the
//                   forwarded request's origin_id so shard-level
//                   per-client fairness still tells them apart behind
//                   the proxy's pooled connections.
//
//   Replicas        Failover walks the key's R-owner ring walk
//                   (Ring::owners) in order before rehashing: the
//                   primary first — cache affinity — then, when the
//                   primary is off the ring, stand-ins that have
//                   already served this exact request (warm for it)
//                   ahead of cold successors.
//
//   Brownout        When the live-shard fraction or the proxy's own
//                   in-flight compute load crosses a threshold, the
//                   proxy sheds by priority: health/stats always
//                   answer, repeat computes are served slightly stale
//                   from the proxy's response cache (digest-safe:
//                   responses are deterministic in the request), cold
//                   computes are shed kOverloaded with a retry hint.
//                   The degraded state is surfaced in health/stats.
//                   The same response cache is the last resort when
//                   every shard is down mid-request.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/membership.hpp"
#include "cluster/quota.hpp"
#include "obs/slo.hpp"
#include "obs/timeline.hpp"
#include "server/protocol.hpp"
#include "util/socket.hpp"
#include "util/thread_pool.hpp"

namespace vppb::cluster {

struct ProxyOptions {
  /// Listen endpoint, same convention as ServerOptions: unix path
  /// preferred, loopback TCP otherwise (0 = ephemeral).
  std::string unix_path;
  std::uint16_t tcp_port = 0;

  std::vector<ShardEndpoint> shards;
  MembershipOptions membership;

  /// Hedge window for routed compute requests; 0 disables hedging.
  std::int64_t hedge_ms = 0;
  /// Per-forward receive timeout; a shard silent past this is treated
  /// as dead (ejected + failover).  0 = wait forever (then only a
  /// closed connection triggers failover).
  int forward_timeout_ms = 30000;
  /// Worker threads for hedged forwards (a hedged request occupies up
  /// to two while in flight).  Non-hedged forwards run on the
  /// connection's own IO thread and never touch this pool.
  int hedge_jobs = 8;

  /// Cluster-wide per-client rate quota; quota.rps <= 0 disables.
  QuotaOptions quota;
  /// Owner-walk length for compute failover/hedging: the primary plus
  /// replicas-1 ring successors are tried in order before the key is
  /// rehashed on the shrunken ring.  Clamped to [1, shard count].
  int replicas = 2;
  /// Brownout trigger: live shards strictly below this percentage of
  /// configured shards (0 = never by liveness).
  int brownout_min_live_pct = 0;
  /// Brownout trigger: proxy-level in-flight compute requests at or
  /// above this (0 = never by load).
  int brownout_max_inflight = 0;
  /// Oldest proxy-cached response servable during brownout or total
  /// outage; 0 disables stale serving.
  std::int64_t stale_ms = 30000;
  /// Response cache capacity (kOk compute responses; SVG-bearing
  /// responses are never cached — they dwarf everything else).
  std::size_t response_cache_entries = 256;

  // --- hostile-network hardening (protocol v8) -----------------------
  /// Shared auth key for the proxy's own TCP listener: every accepted
  /// TCP connection must pass the v8 challenge–response before its
  /// first frame is read.  Empty = handshake still runs but proof is
  /// optional.  Unix listeners never handshake.  The same key is used
  /// upstream (membership.auth_key) when dialing TCP shards.
  std::string auth_key;
  std::int64_t auth_timeout_ms = 5000;
  /// Client connections idle past this are reaped (0 = never) —
  /// slowloris cannot hold proxy threads open.
  std::int64_t idle_timeout_ms = 0;
  /// Total per-frame read deadline once the length prefix arrived
  /// (0 = unbounded); defeats byte-trickle senders.
  std::int64_t frame_deadline_ms = 0;
  /// Hard cap on a client frame (0 = protocol max).
  std::size_t max_request_frame_bytes = 0;

  /// Always-on span capture, same convention as ServerOptions: the
  /// proxy's own rings feed the cluster-wide `vppb trace-collect`.
  bool tracing = true;
  /// Cluster-level SLO objectives over routed compute requests
  /// (0 = objective off).  Independent of the per-shard objectives:
  /// this is the latency/availability a *client* of the cluster sees,
  /// failover and hedging included.
  double slo_p99_ms = 0.0;
  double slo_availability = 0.0;
};

class Proxy {
 public:
  explicit Proxy(ProxyOptions opt);
  ~Proxy();  ///< calls stop()

  Proxy(const Proxy&) = delete;
  Proxy& operator=(const Proxy&) = delete;

  /// Binds the endpoint, probes every shard once, and starts serving.
  /// Not an error if all shards are down (the prober keeps trying; the
  /// proxy answers kError until one comes up).
  void start();
  void stop();  ///< graceful drain; idempotent

  const std::string& endpoint() const { return endpoint_; }
  std::uint16_t tcp_port() const { return port_; }
  Membership& membership() { return membership_; }

  /// True when a brownout trigger holds right now; fills the live /
  /// configured shard counts either way (also used by aggregation).
  bool brownout_active(std::size_t* live = nullptr,
                       std::size_t* total = nullptr) const;

 private:
  struct Conn {
    util::Socket sock;
    std::thread thread;
    std::uint64_t key = 0;  ///< fallback identity for anonymous clients
  };

  /// One proxy-cached compute response: the answer, when it landed,
  /// and which shard incarnations have served this exact request
  /// (warm-replica preference during failover).
  struct CachedResponse {
    server::Response resp;
    std::chrono::steady_clock::time_point at;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> warm;  ///< (id, epoch)
    std::uint64_t tick = 0;  ///< LRU stamp
  };

  /// Cross-tier single-flight state: one per distinct in-flight
  /// encoded request; followers wait on it.
  struct Flight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    server::Response resp;
    std::exception_ptr error;
  };

  /// Shared state of one hedged forward (primary + optional hedge).
  struct Hedge {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;                ///< a definitive response landed
    std::size_t winner = 0;           ///< shard index that answered
    server::Response resp;
    int launched = 0;
    int failed = 0;
    std::vector<std::size_t> failed_shards;
  };

  void accept_loop();
  void serve_connection(Conn* conn);
  server::Response execute(const server::Request& req,
                           std::uint64_t conn_key);
  /// `tl` (optional) is the proxy-side stage timeline for
  /// want_timeline requests.  It is only ever stamped from the leader
  /// connection's thread (hedge attempts run on the pool but the
  /// orchestration — and every stamp — stays on the caller), which is
  /// the Timeline's single-writer requirement.
  server::Response single_flight(const server::Request& req,
                                 std::uint64_t route_key,
                                 std::uint64_t cache_key,
                                 std::chrono::steady_clock::time_point t0,
                                 obs::Timeline* tl);
  server::Response forward_failover(const server::Request& req,
                                    std::uint64_t route_key,
                                    std::uint64_t cache_key,
                                    std::chrono::steady_clock::time_point t0,
                                    obs::Timeline* tl);
  /// One forward on one connection; throws vppb::Error on transport
  /// failure (the caller ejects).  Clean exchanges pool the connection.
  server::Response forward_once(std::size_t idx, const server::Request& req);
  /// Primary + hedge via the pool; false when every launched attempt
  /// died on transport (the caller re-routes).
  bool hedged_forward(const server::Request& req,
                      const std::vector<std::size_t>& candidates,
                      std::chrono::steady_clock::time_point t0,
                      server::Response* out, obs::Timeline* tl);
  server::Response aggregate(const server::Request& req);
  server::Response error_response(const server::Request& req,
                                  const std::string& what) const;

  /// Digest-safe cache identity of a compute request: the route key
  /// (trace content) plus every parameter that shapes the result —
  /// caller identity and deadline excluded, they never change the
  /// computed answer.
  static std::uint64_t response_cache_key(const server::Request& req,
                                          std::uint64_t route_key);
  /// A cached kOk response younger than `max_age_ms`, marked
  /// served_stale with its age; nullopt on miss/expired/disabled.
  bool cache_lookup(std::uint64_t cache_key, std::int64_t max_age_ms,
                    server::Response* out);
  /// Remembers a kOk compute response (and that shard id/epoch served
  /// it).  SVG-bearing responses are skipped.
  void cache_store(std::uint64_t cache_key, const server::Response& resp);
  bool cache_warm(std::uint64_t cache_key, std::uint64_t shard_id,
                  std::uint64_t epoch) const;

  ProxyOptions opt_;
  Membership membership_;
  ClientQuota quota_;
  obs::SloTracker slo_;
  util::ThreadPool hedge_pool_;

  util::Socket listener_;
  std::string endpoint_;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;

  std::mutex conn_mu_;
  std::vector<std::unique_ptr<Conn>> conns_;

  std::mutex flight_mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Flight>> flights_;

  std::atomic<std::uint64_t> next_conn_key_{1};
  std::atomic<int> inflight_{0};  ///< compute requests being forwarded
  std::atomic<std::uint64_t> brownout_sheds_{0};
  std::atomic<std::uint64_t> stale_serves_{0};
  std::atomic<std::uint64_t> sampled_{0};  ///< trace-carrying requests seen

  mutable std::mutex cache_mu_;
  std::unordered_map<std::uint64_t, CachedResponse> rcache_;
  std::uint64_t cache_tick_ = 0;

  // Posted-but-unfinished hedge tasks; stop() waits for zero so an
  // abandoned attempt can never outlive the proxy it captures.
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  int tasks_live_ = 0;
};

/// Sums `from` into `into`: counters add; latency percentiles take the
/// per-shard maximum (an upper bound — order statistics do not merge).
void merge_stats(server::StatsBody& into, const server::StatsBody& from);

/// Merges Prometheus text expositions: samples with the same series
/// key are summed, HELP/TYPE comments are kept from their first
/// appearance, family order follows first appearance.  Input order is
/// (section label, exposition text); labels are only used in error
/// logging.
std::string merge_prometheus(
    const std::vector<std::pair<std::string, std::string>>& sections);

}  // namespace vppb::cluster
