// vppb proxy — the consistent-hash routing tier in front of N vppbd
// shards.
//
// The proxy speaks the exact varint frame protocol on both sides: to a
// client it looks like one (very large) vppbd; to a shard it looks like
// one more client.  Compute requests (predict / simulate / analyze)
// are routed by the FNV-1a digest of the trace file's bytes — the same
// function the TraceCache keys by — so each shard's cache sees a
// disjoint, stable slice of the trace population and a cluster of N
// shards has ~N times the effective cache, not N copies of one.
//
// Layered on the routing:
//
//   Single-flight   Identical concurrent requests (same encoded bytes)
//                   collapse into one upstream forward; followers wait
//                   and share the leader's response.  This sits *above*
//                   each shard's cache single-flight: the shard's
//                   version collapses concurrent compiles of one trace,
//                   the proxy's collapses identical whole requests
//                   before they spend shard admission slots.
//
//   Failover        A transport error on a forward ejects the shard
//                   (Membership re-probes it with backoff) and re-routes
//                   to the ring successor, so a shard death costs
//                   clients nothing but latency: typed errors never
//                   reach a healthy client because of a dead shard.
//
//   Hedged retries  With hedge_ms > 0, a routed request that has not
//                   answered within the hedge window is also sent to
//                   the ring successor; first definitive answer wins.
//                   Deadline-aware: a request whose remaining deadline
//                   budget cannot absorb the hedge window is never
//                   hedged (the hedge would answer a client that
//                   already gave up).
//
//   Aggregation     stats / health / metricsdump fan out to every
//                   shard and come back merged (counters summed,
//                   latency percentiles upper-bounded by the per-shard
//                   maxima) plus a per-shard ShardInfo breakdown, so
//                   `vppb stats --watch` works unchanged against the
//                   proxy.  Down shards contribute their last-known
//                   stats, marked unhealthy.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/membership.hpp"
#include "server/protocol.hpp"
#include "util/socket.hpp"
#include "util/thread_pool.hpp"

namespace vppb::cluster {

struct ProxyOptions {
  /// Listen endpoint, same convention as ServerOptions: unix path
  /// preferred, loopback TCP otherwise (0 = ephemeral).
  std::string unix_path;
  std::uint16_t tcp_port = 0;

  std::vector<ShardEndpoint> shards;
  MembershipOptions membership;

  /// Hedge window for routed compute requests; 0 disables hedging.
  std::int64_t hedge_ms = 0;
  /// Per-forward receive timeout; a shard silent past this is treated
  /// as dead (ejected + failover).  0 = wait forever (then only a
  /// closed connection triggers failover).
  int forward_timeout_ms = 30000;
  /// Worker threads for hedged forwards (a hedged request occupies up
  /// to two while in flight).  Non-hedged forwards run on the
  /// connection's own IO thread and never touch this pool.
  int hedge_jobs = 8;
};

class Proxy {
 public:
  explicit Proxy(ProxyOptions opt);
  ~Proxy();  ///< calls stop()

  Proxy(const Proxy&) = delete;
  Proxy& operator=(const Proxy&) = delete;

  /// Binds the endpoint, probes every shard once, and starts serving.
  /// Not an error if all shards are down (the prober keeps trying; the
  /// proxy answers kError until one comes up).
  void start();
  void stop();  ///< graceful drain; idempotent

  const std::string& endpoint() const { return endpoint_; }
  std::uint16_t tcp_port() const { return port_; }
  Membership& membership() { return membership_; }

 private:
  struct Conn {
    util::Socket sock;
    std::thread thread;
  };

  /// Cross-tier single-flight state: one per distinct in-flight
  /// encoded request; followers wait on it.
  struct Flight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    server::Response resp;
    std::exception_ptr error;
  };

  /// Shared state of one hedged forward (primary + optional hedge).
  struct Hedge {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;                ///< a definitive response landed
    std::size_t winner = 0;           ///< shard index that answered
    server::Response resp;
    int launched = 0;
    int failed = 0;
    std::vector<std::size_t> failed_shards;
  };

  void accept_loop();
  void serve_connection(Conn* conn);
  server::Response execute(const server::Request& req);
  server::Response single_flight(const server::Request& req,
                                 std::uint64_t route_key,
                                 std::chrono::steady_clock::time_point t0);
  server::Response forward_failover(const server::Request& req,
                                    std::uint64_t route_key,
                                    std::chrono::steady_clock::time_point t0);
  /// One forward on one connection; throws vppb::Error on transport
  /// failure (the caller ejects).  Clean exchanges pool the connection.
  server::Response forward_once(std::size_t idx, const server::Request& req);
  /// Primary + hedge via the pool; false when every launched attempt
  /// died on transport (the caller re-routes).
  bool hedged_forward(const server::Request& req,
                      const std::vector<std::size_t>& candidates,
                      std::chrono::steady_clock::time_point t0,
                      server::Response* out);
  server::Response aggregate(const server::Request& req);
  server::Response error_response(const server::Request& req,
                                  const std::string& what) const;

  ProxyOptions opt_;
  Membership membership_;
  util::ThreadPool hedge_pool_;

  util::Socket listener_;
  std::string endpoint_;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;

  std::mutex conn_mu_;
  std::vector<std::unique_ptr<Conn>> conns_;

  std::mutex flight_mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Flight>> flights_;

  // Posted-but-unfinished hedge tasks; stop() waits for zero so an
  // abandoned attempt can never outlive the proxy it captures.
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  int tasks_live_ = 0;
};

/// Sums `from` into `into`: counters add; latency percentiles take the
/// per-shard maximum (an upper bound — order statistics do not merge).
void merge_stats(server::StatsBody& into, const server::StatsBody& from);

/// Merges Prometheus text expositions: samples with the same series
/// key are summed, HELP/TYPE comments are kept from their first
/// appearance, family order follows first appearance.  Input order is
/// (section label, exposition text); labels are only used in error
/// logging.
std::string merge_prometheus(
    const std::vector<std::pair<std::string, std::string>>& sections);

}  // namespace vppb::cluster
