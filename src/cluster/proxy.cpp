#include "cluster/proxy.hpp"

#include <algorithm>
#include <cstdlib>
#include <unistd.h>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "server/auth.hpp"
#include "server/trace_cache.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace vppb::cluster {
namespace {

using obs::LogLevel;
using server::Request;
using server::ReqType;
using server::Response;
using server::StageSpan;
using server::StatsBody;
using server::Status;
using server::WireSpan;

/// Cap on the merged trace-collect response: shards dump up to 32k
/// spans per ring, and the proxy concatenates all of them plus its own;
/// the total must stay under kMaxFrame (64 MiB) at ~60 encoded bytes a
/// span.
constexpr std::size_t kMergedSpanCap = 1u << 19;

/// Registry handles for the proxy, registered once (same pattern as
/// the cache metrics): the routing tier's own behavior — forwards,
/// failovers, hedges, dedup hits — is visible in `vppb request
/// metricsdump` against the proxy.
struct ProxyMetrics {
  obs::Counter& requests;
  obs::Counter& forwards;
  obs::Counter& failovers;
  obs::Counter& hedges;
  obs::Counter& hedge_wins;
  obs::Counter& dedup_hits;
  obs::Counter& no_shards;
  obs::Counter& quota_rejections;
  obs::Counter& brownout_sheds;
  obs::Counter& stale_serves;
  obs::Counter& auth_failures;
  obs::Counter& idle_reaps;
  obs::Gauge& shards_up;

  static ProxyMetrics& get() {
    auto& reg = obs::Registry::global();
    static ProxyMetrics m{
        reg.counter("vppb_proxy_requests_total",
                    "Requests received by the proxy"),
        reg.counter("vppb_proxy_forwards_total",
                    "Forward attempts sent to shards"),
        reg.counter("vppb_proxy_failovers_total",
                    "Forwards re-routed after a shard transport failure"),
        reg.counter("vppb_proxy_hedges_total", "Hedge attempts launched"),
        reg.counter("vppb_proxy_hedge_wins_total",
                    "Requests answered by the hedge, not the primary"),
        reg.counter("vppb_proxy_dedup_hits_total",
                    "Requests collapsed into an identical in-flight one"),
        reg.counter("vppb_proxy_no_shards_total",
                    "Requests failed because every shard was down"),
        reg.counter("vppb_proxy_quota_rejections_total",
                    "Requests rejected by the global per-client quota"),
        reg.counter("vppb_proxy_brownout_sheds_total",
                    "Cold computes shed while the proxy was in brownout"),
        reg.counter("vppb_proxy_stale_serves_total",
                    "Answers served from the proxy response cache"),
        reg.counter("vppb_proxy_auth_failures_total",
                    "TCP connections rejected by the v8 handshake"),
        reg.counter("vppb_proxy_idle_reaps_total",
                    "Client connections reaped for idling past the limit"),
        reg.gauge("vppb_proxy_shards_up", "Healthy shards in the ring"),
    };
    return m;
  }
};

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::int64_t elapsed_ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

bool is_compute(ReqType t) {
  return t == ReqType::kPredict || t == ReqType::kSimulate ||
         t == ReqType::kAnalyze;
}

/// RAII in-flight accounting for the brownout load trigger.
class InflightScope {
 public:
  explicit InflightScope(std::atomic<int>& n) : n_(n) { ++n_; }
  ~InflightScope() { --n_; }
  InflightScope(const InflightScope&) = delete;
  InflightScope& operator=(const InflightScope&) = delete;

 private:
  std::atomic<int>& n_;
};

}  // namespace

void merge_stats(StatsBody& into, const StatsBody& from) {
  into.requests += from.requests;
  for (std::size_t i = 0; i < server::kReqTypeCount; ++i)
    into.by_type[i] += from.by_type[i];
  into.errors += from.errors;
  into.overloads += from.overloads;
  into.deadlines += from.deadlines;
  into.cache_hits += from.cache_hits;
  into.cache_misses += from.cache_misses;
  into.cache_evictions += from.cache_evictions;
  into.cache_waits += from.cache_waits;
  into.cache_entries += from.cache_entries;
  into.cache_bytes += from.cache_bytes;
  into.latency_count += from.latency_count;
  // Order statistics do not merge; the per-shard maximum is an honest
  // upper bound ("no shard's p99 exceeds this"), which is the side an
  // operator wants to be wrong on.
  into.p50_us = std::max(into.p50_us, from.p50_us);
  into.p90_us = std::max(into.p90_us, from.p90_us);
  into.p99_us = std::max(into.p99_us, from.p99_us);
  into.max_us = std::max(into.max_us, from.max_us);
  into.budget_kills += from.budget_kills;
  into.poisoned += from.poisoned;
  into.poison_strikes += from.poison_strikes;
  into.quarantined += from.quarantined;
  into.watchdog_cancels += from.watchdog_cancels;
  into.watchdog_replacements += from.watchdog_replacements;
  into.quota_rejections += from.quota_rejections;
  into.brownout_sheds += from.brownout_sheds;
  into.stale_serves += from.stale_serves;
  // SLO state merges pessimistically: the cluster's objective is the
  // strictest configured one, and the cluster's burn is the worst
  // shard's burn — an operator paged on the merged number is paged no
  // later than they would be watching every shard.
  const auto min_nonzero = [](double a, double b) {
    if (a == 0.0) return b;
    if (b == 0.0) return a;
    return std::min(a, b);
  };
  into.slo_p99_ms = min_nonzero(into.slo_p99_ms, from.slo_p99_ms);
  into.slo_availability =
      std::max(into.slo_availability, from.slo_availability);
  into.lat_burn_1m = std::max(into.lat_burn_1m, from.lat_burn_1m);
  into.lat_burn_5m = std::max(into.lat_burn_5m, from.lat_burn_5m);
  into.lat_burn_1h = std::max(into.lat_burn_1h, from.lat_burn_1h);
  into.avail_burn_1m = std::max(into.avail_burn_1m, from.avail_burn_1m);
  into.avail_burn_5m = std::max(into.avail_burn_5m, from.avail_burn_5m);
  into.avail_burn_1h = std::max(into.avail_burn_1h, from.avail_burn_1h);
  into.sampled_requests += from.sampled_requests;
  into.trace_dropped += from.trace_dropped;
}

std::string merge_prometheus(
    const std::vector<std::pair<std::string, std::string>>& sections) {
  // Series key -> summed value, plus first-appearance ordering and the
  // HELP/TYPE comment block captured from the first section to carry
  // each family.
  std::vector<std::string> order;                    // series keys
  std::unordered_map<std::string, double> values;
  std::unordered_map<std::string, std::string> comments;  // family -> block
  std::vector<std::string> family_order;

  for (const auto& [label, text] : sections) {
    std::string pending_comments;
    std::size_t pos = 0;
    while (pos < text.size()) {
      std::size_t eol = text.find('\n', pos);
      if (eol == std::string::npos) eol = text.size();
      std::string line = text.substr(pos, eol - pos);
      pos = eol + 1;
      if (line.empty()) continue;
      if (line[0] == '#') {
        pending_comments += line;
        pending_comments += '\n';
        continue;
      }
      // Histogram bucket lines may carry an OpenMetrics exemplar suffix
      // (` # {trace_id="..."} value`); exemplars do not merge — cut the
      // line back to the plain sample before parsing.
      const std::size_t ex = line.find(" # ");
      if (ex != std::string::npos) line.resize(ex);
      const std::size_t sp = line.rfind(' ');
      if (sp == std::string::npos || sp == 0) continue;  // not a sample
      const std::string key = line.substr(0, sp);
      const double val = std::strtod(line.c_str() + sp + 1, nullptr);
      // Family name: the series key up to '{' (or the whole key).
      const std::string family = key.substr(0, key.find('{'));
      if (!pending_comments.empty()) {
        if (comments.emplace(family, pending_comments).second)
          family_order.push_back(family);
        pending_comments.clear();
      } else if (comments.emplace(family, std::string()).second) {
        family_order.push_back(family);
      }
      auto [it, fresh] = values.emplace(key, val);
      if (fresh) {
        order.push_back(key);
      } else {
        it->second += val;
      }
    }
    (void)label;
  }

  // Emit family by family in first-appearance order, each series in
  // first-appearance order within it.
  std::string out;
  for (const std::string& family : family_order) {
    out += comments[family];
    for (const std::string& key : order) {
      if (key.substr(0, key.find('{')) != family) continue;
      const double v = values[key];
      if (v == static_cast<double>(static_cast<long long>(v))) {
        out += strprintf("%s %lld\n", key.c_str(),
                         static_cast<long long>(v));
      } else {
        out += strprintf("%s %.6g\n", key.c_str(), v);
      }
    }
  }
  return out;
}

namespace {

/// One key secures the whole path: unless the membership options name
/// their own upstream key, the proxy's listener key is also used when
/// dialing TCP shards.
ProxyOptions normalize(ProxyOptions opt) {
  if (opt.membership.auth_key.empty())
    opt.membership.auth_key = opt.auth_key;
  return opt;
}

}  // namespace

Proxy::Proxy(ProxyOptions opt)
    : opt_(normalize(std::move(opt))),
      membership_(opt_.shards, opt_.membership),
      quota_(opt_.quota),
      hedge_pool_(std::max(2, opt_.hedge_jobs)) {
  slo_.configure(obs::SloOptions{opt_.slo_p99_ms, opt_.slo_availability});
}

Proxy::~Proxy() { stop(); }

void Proxy::start() {
  VPPB_CHECK_MSG(!running_.load(), "proxy already started");
  if (!opt_.unix_path.empty()) {
    listener_ = util::listen_unix(opt_.unix_path);
    endpoint_ = opt_.unix_path;
  } else {
    port_ = opt_.tcp_port;
    listener_ = util::listen_tcp(port_);
    endpoint_ = strprintf("127.0.0.1:%u", port_);
  }
  membership_.start();  // one synchronous probe round populates the ring
  ProxyMetrics::get().shards_up.set(
      static_cast<std::int64_t>(membership_.up_count()));
  if (opt_.tracing) obs::Tracer::global().enable();
  running_.store(true);
  accept_thread_ = std::thread(&Proxy::accept_loop, this);
  obs::logf(LogLevel::kInfo, "proxy",
            "routing on %s across %zu shards (%zu up, hedge %lld ms)",
            endpoint_.c_str(), membership_.shard_count(),
            membership_.up_count(),
            static_cast<long long>(opt_.hedge_ms));
}

void Proxy::stop() {
  if (!running_.exchange(false)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto& c : conns_) c->sock.shutdown_read();
  }
  for (auto& c : conns_)
    if (c->thread.joinable()) c->thread.join();
  conns_.clear();
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    drain_cv_.wait(lock, [&]() { return tasks_live_ == 0; });
  }
  membership_.stop();
  if (!opt_.unix_path.empty()) ::unlink(opt_.unix_path.c_str());
  obs::logf(LogLevel::kInfo, "proxy", "stopped (drained) on %s",
            endpoint_.c_str());
}

void Proxy::accept_loop() {
  while (running_.load()) {
    util::Socket s = util::accept_with_timeout(listener_, 100);
    if (!s.valid()) continue;
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (!running_.load()) break;
    conns_.push_back(std::make_unique<Conn>());
    Conn* conn = conns_.back().get();
    conn->sock = std::move(s);
    conn->key = next_conn_key_.fetch_add(1);
    conn->thread = std::thread(&Proxy::serve_connection, this, conn);
  }
}

void Proxy::serve_connection(Conn* conn) {
  // Same accept-path gate as the shard server: TCP connections prove
  // key knowledge before the first frame is read; Unix connections are
  // local by construction and skip the handshake.
  if (opt_.unix_path.empty()) {
    server::AuthConfig auth;
    auth.key = opt_.auth_key;
    auth.handshake_timeout_ms = opt_.auth_timeout_ms;
    try {
      server::auth_accept(conn->sock, auth);
    } catch (const server::AuthError& e) {
      ProxyMetrics::get().auth_failures.inc();
      obs::logf(LogLevel::kWarn, "proxy", "auth rejected: %s", e.what());
      return;
    } catch (const Error& e) {
      ProxyMetrics::get().auth_failures.inc();
      obs::logf(LogLevel::kDebug, "proxy", "handshake aborted: %s",
                e.what());
      return;
    }
    conn->sock.set_keepalive(30, 10, 3, 45000);
  }
  if (opt_.idle_timeout_ms > 0)
    conn->sock.set_recv_timeout(static_cast<int>(opt_.idle_timeout_ms));
  server::FrameLimits limits;
  if (opt_.max_request_frame_bytes > 0)
    limits.max_bytes = opt_.max_request_frame_bytes;
  limits.frame_deadline_ms = opt_.frame_deadline_ms;
  try {
    std::vector<std::uint8_t> payload;
    while (server::read_frame(conn->sock, payload, limits)) {
      Response resp;
      std::uint64_t trace_id = 0;
      try {
        const Request req = server::decode_request(payload);
        trace_id = req.trace_id;
        resp = execute(req, conn->key);
      } catch (const Error& e) {
        // Undecodable request, unreadable trace file, every shard
        // down: a typed answer on an intact connection.
        resp.status = Status::kError;
        resp.error = e.what();
      }
      // Echo the caller's trace id even on stale-cache answers, whose
      // stored copy carries whatever id first populated them.
      resp.trace_id = trace_id;
      server::write_frame(conn->sock, server::encode(resp));
    }
  } catch (const util::SocketTimeout& e) {
    ProxyMetrics::get().idle_reaps.inc();
    obs::logf(LogLevel::kInfo, "proxy", "idle connection reaped: %s",
              e.what());
  } catch (const Error& e) {
    obs::logf(LogLevel::kDebug, "proxy", "connection dropped: %s", e.what());
  }
  // Shut the wire down the moment we stop serving it: the Conn object
  // outlives this thread (joined at stop()), and without the shutdown a
  // peer blocked on recv would wait for the proxy's exit, not ours.
  conn->sock.shutdown_both();
}

Response Proxy::error_response(const Request& req,
                               const std::string& what) const {
  Response resp;
  resp.type = req.type;
  resp.status = Status::kError;
  resp.error = what;
  return resp;
}

bool Proxy::brownout_active(std::size_t* live, std::size_t* total) const {
  const std::size_t up = membership_.up_count();
  const std::size_t all = membership_.shard_count();
  if (live) *live = up;
  if (total) *total = all;
  if (opt_.brownout_min_live_pct > 0 &&
      up * 100 < all * static_cast<std::size_t>(opt_.brownout_min_live_pct))
    return true;
  if (opt_.brownout_max_inflight > 0 &&
      inflight_.load() >= opt_.brownout_max_inflight)
    return true;
  return false;
}

Response Proxy::execute(const Request& req, std::uint64_t conn_key) {
  ProxyMetrics& pm = ProxyMetrics::get();
  pm.requests.inc();
  if (req.trace_id != 0) sampled_.fetch_add(1);
  // Propagated trace context: the proxy's own spans for this request
  // carry the caller's trace id, so trace-collect stitches the routing
  // tier and the shards into one distributed trace.
  obs::TraceContext tctx(req.sampled ? req.trace_id : 0);
  obs::Span span("proxy.execute", "proxy");
  const auto t0 = std::chrono::steady_clock::now();
  // Health and stats never queue behind compute and are never shed:
  // in a brownout they are exactly the requests an operator needs.
  if (!is_compute(req.type)) return aggregate(req);

  // Global per-client quota, enforced once for the whole cluster.
  // Anonymous callers resolve to this connection's key.
  const std::uint64_t ident =
      req.client_id != 0 ? req.client_id : conn_key;
  if (quota_.enabled()) {
    const ClientQuota::Verdict v = quota_.admit(ident, t0);
    if (!v.admitted) {
      pm.quota_rejections.inc();
      Response resp;
      resp.type = req.type;
      resp.status = Status::kQuotaExceeded;
      resp.retry_after_ms = v.retry_after_ms;
      resp.error = strprintf(
          "client %llu over its cluster-wide rate quota "
          "(%.4g rps, burst %.4g); retry in %lld ms",
          static_cast<unsigned long long>(ident), opt_.quota.rps,
          opt_.quota.burst, static_cast<long long>(v.retry_after_ms));
      return resp;
    }
  }

  // Proxy-side stage timeline; the shard's stages come back in its
  // response and are grafted under the forward stage at depth+1.
  std::unique_ptr<obs::Timeline> tl;
  if (req.want_timeline) tl = std::make_unique<obs::Timeline>();

  // Route by the trace's content digest — the same FNV-1a the shard's
  // TraceCache will key the compiled trace by.
  std::uint64_t key = 0;
  const std::int64_t route0 = tl ? tl->now_us() : 0;
  try {
    key = server::content_key_of_file(req.trace_path);
  } catch (const Error& e) {
    return error_response(
        req, strprintf("proxy cannot read trace %s: %s",
                       req.trace_path.c_str(), e.what()));
  }
  if (tl) tl->stage("route", route0, tl->now_us() - route0);
  const std::uint64_t ckey = response_cache_key(req, key);

  // Brownout: shed by priority.  Repeats answer slightly stale from
  // the response cache (digest-safe), cold computes are turned away
  // with a hint instead of piling onto a degraded cluster.
  if (brownout_active()) {
    Response cached;
    if (cache_lookup(ckey, opt_.stale_ms, &cached)) {
      pm.stale_serves.inc();
      stale_serves_.fetch_add(1);
      cached.brownout = true;
      if (tl) {
        tl->marker("stale-serve");
        cached.timeline.clear();
        for (const obs::Stage& s : tl->stages())
          cached.timeline.push_back(
              StageSpan{s.name, s.start_us, s.dur_us, s.depth});
      }
      return cached;
    }
    pm.brownout_sheds.inc();
    brownout_sheds_.fetch_add(1);
    Response resp;
    resp.type = req.type;
    resp.status = Status::kOverloaded;
    resp.brownout = true;
    resp.retry_after_ms = opt_.membership.probe_cap_ms;
    resp.error = "proxy brownout: shedding cold compute requests until "
                 "the cluster recovers; retry later";
    return resp;
  }

  // Forward with the resolved identity stamped, so shard-side fairness
  // can still tell anonymous proxied callers apart.
  Request fwd = req;
  if (fwd.client_id == 0) fwd.origin_id = ident;
  InflightScope scope(inflight_);
  Response resp = single_flight(fwd, key, ckey, t0, tl.get());
  // Cluster-level SLO: what this client actually experienced, failover
  // and hedging included.  Rejections above (quota, brownout shed) are
  // the proxy protecting the objective, not burning it.
  const bool ok = resp.status != Status::kError &&
                  resp.status != Status::kDeadlineExceeded &&
                  resp.status != Status::kBudgetExceeded;
  slo_.record(std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - t0)
                  .count(),
              ok);
  if (tl) {
    // Compose: proxy stages at their recorded depth, shard stages
    // (already shifted to this timeline and re-parented by the forward
    // layer) appended after.
    std::vector<StageSpan> merged;
    for (const obs::Stage& s : tl->stages())
      merged.push_back(StageSpan{s.name, s.start_us, s.dur_us, s.depth});
    for (StageSpan& s : resp.timeline) merged.push_back(std::move(s));
    resp.timeline = std::move(merged);
  }
  return resp;
}

Response Proxy::single_flight(const Request& req, std::uint64_t route_key,
                              std::uint64_t cache_key,
                              std::chrono::steady_clock::time_point t0,
                              obs::Timeline* tl) {
  // De-dup key: the encoded request with the proxy's own origin stamp
  // zeroed, so requests that arrived byte-identical (same trace
  // content *and* same parameters, deadline, client id) still collapse
  // across connections; the leader's origin represents the flight.
  Request canon = req;
  canon.origin_id = 0;
  const std::vector<std::uint8_t> encoded = server::encode(canon);
  const std::uint64_t fkey = fnv1a(encoded.data(), encoded.size());

  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(flight_mu_);
    auto it = flights_.find(fkey);
    if (it == flights_.end()) {
      flight = std::make_shared<Flight>();
      flights_.emplace(fkey, flight);
      leader = true;
    } else {
      flight = it->second;
    }
  }
  if (!leader) {
    ProxyMetrics::get().dedup_hits.inc();
    std::unique_lock<std::mutex> lock(flight->mu);
    flight->cv.wait(lock, [&]() { return flight->done; });
    if (flight->error) std::rethrow_exception(flight->error);
    return flight->resp;
  }

  Response resp;
  std::exception_ptr error;
  try {
    resp = forward_failover(req, route_key, cache_key, t0, tl);
  } catch (...) {
    error = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lock(flight_mu_);
    flights_.erase(fkey);
  }
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    flight->done = true;
    flight->resp = resp;
    flight->error = error;
  }
  flight->cv.notify_all();
  if (error) std::rethrow_exception(error);
  return resp;
}

Response Proxy::forward_once(std::size_t idx, const Request& req) {
  ProxyMetrics::get().forwards.inc();
  obs::Span span("proxy.forward", "proxy");
  span.arg("shard", static_cast<std::int64_t>(membership_.endpoint(idx).id));
  server::Client conn = membership_.take_conn(idx);
  server::RetryPolicy once;
  once.max_attempts = 1;  // retries belong to the failover layer
  once.request_timeout_ms = opt_.forward_timeout_ms;
  Response resp = conn.call_retry(req, once);
  // Only a connection that completed a clean request/response exchange
  // is safe to reuse; a thrown transport error never reaches here.
  membership_.give_back(idx, std::move(conn));
  return resp;
}

bool Proxy::hedged_forward(const Request& req,
                           const std::vector<std::size_t>& candidates,
                           std::chrono::steady_clock::time_point t0,
                           Response* out, obs::Timeline* tl) {
  ProxyMetrics& pm = ProxyMetrics::get();
  auto hedge = std::make_shared<Hedge>();
  auto launch = [this, hedge, req](std::size_t idx) {
    {
      std::lock_guard<std::mutex> lock(drain_mu_);
      ++tasks_live_;
    }
    {
      std::lock_guard<std::mutex> lock(hedge->mu);
      ++hedge->launched;
    }
    hedge_pool_.post([this, hedge, req, idx]() {
      // The pool thread needs its own trace context: thread-locals do
      // not follow the request across the post.
      obs::TraceContext tctx(req.sampled ? req.trace_id : 0);
      try {
        Response r = forward_once(idx, req);
        std::lock_guard<std::mutex> lock(hedge->mu);
        if (!hedge->done) {
          hedge->done = true;
          hedge->winner = idx;
          hedge->resp = std::move(r);
        }
      } catch (...) {
        // Transport failure, or anything else: an exception escaping a
        // posted task would terminate the process, so every failure
        // becomes "this attempt lost" and the shard gets ejected.
        std::lock_guard<std::mutex> lock(hedge->mu);
        ++hedge->failed;
        hedge->failed_shards.push_back(idx);
      }
      hedge->cv.notify_all();
      // Notify while holding the lock: stop() may destroy the proxy the
      // instant it sees tasks_live_ == 0, so an unlocked notify here
      // could touch a dead condition variable (a losing hedge attempt
      // routinely outlives its request).
      std::lock_guard<std::mutex> lock(drain_mu_);
      if (--tasks_live_ == 0) drain_cv_.notify_all();
    });
  };

  launch(candidates[0]);
  bool hedged = false;
  {
    std::unique_lock<std::mutex> lock(hedge->mu);
    hedge->cv.wait_for(lock, std::chrono::milliseconds(opt_.hedge_ms),
                       [&]() {
                         return hedge->done ||
                                hedge->failed >= hedge->launched;
                       });
    // Hedge only when the primary is still silent and the request's
    // remaining deadline could actually absorb another attempt — a
    // hedge the client cannot wait for is pure load.
    const bool deadline_allows =
        req.deadline_ms == 0 ||
        req.deadline_ms - elapsed_ms(t0) > opt_.hedge_ms;
    if (!hedge->done && candidates.size() > 1 && deadline_allows) {
      lock.unlock();
      pm.hedges.inc();
      if (tl) tl->marker("hedge");
      hedged = true;
      launch(candidates[1]);
      lock.lock();
    }
    hedge->cv.wait(lock, [&]() {
      return hedge->done || hedge->failed >= hedge->launched;
    });
  }

  // Eject outside hedge->mu: eject takes the membership lock and
  // notifies the prober.
  std::vector<std::size_t> failed;
  bool done = false;
  std::size_t winner = 0;
  {
    std::lock_guard<std::mutex> lock(hedge->mu);
    failed = hedge->failed_shards;
    done = hedge->done;
    winner = hedge->winner;
    if (done) *out = hedge->resp;
  }
  for (std::size_t idx : failed) {
    pm.failovers.inc();
    membership_.eject(idx);
  }
  if (done && hedged && winner == candidates[1]) pm.hedge_wins.inc();
  pm.shards_up.set(static_cast<std::int64_t>(membership_.up_count()));
  return done;
}

std::uint64_t Proxy::response_cache_key(const Request& req,
                                        std::uint64_t route_key) {
  Request canon = req;
  canon.trace_path.clear();  // content, not path, identifies the trace
  canon.client_id = 0;
  canon.origin_id = 0;
  canon.deadline_ms = 0;
  const std::vector<std::uint8_t> encoded = server::encode(canon);
  std::uint64_t h = fnv1a(encoded.data(), encoded.size());
  // Splice the trace content key in (boost-style hash combine).
  h ^= route_key + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

bool Proxy::cache_lookup(std::uint64_t cache_key, std::int64_t max_age_ms,
                         Response* out) {
  if (max_age_ms <= 0 || opt_.response_cache_entries == 0) return false;
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = rcache_.find(cache_key);
  if (it == rcache_.end()) return false;
  const std::int64_t age =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - it->second.at)
          .count();
  if (age > max_age_ms) return false;
  it->second.tick = ++cache_tick_;
  *out = it->second.resp;
  out->served_stale = true;
  out->stale_age_ms = age;
  return true;
}

void Proxy::cache_store(std::uint64_t cache_key, const Response& resp) {
  if (opt_.response_cache_entries == 0) return;
  if (resp.status != Status::kOk || !resp.svg.empty()) return;
  std::lock_guard<std::mutex> lock(cache_mu_);
  CachedResponse& e = rcache_[cache_key];
  const std::pair<std::uint64_t, std::uint64_t> served{resp.shard_id,
                                                       resp.epoch};
  if (std::find(e.warm.begin(), e.warm.end(), served) == e.warm.end())
    e.warm.push_back(served);
  e.resp = resp;
  // Per-request observability never replays: a stale serve gets the
  // cached *answer*, not the timeline of whoever populated the cache.
  e.resp.timeline.clear();
  e.resp.spans.clear();
  e.at = std::chrono::steady_clock::now();
  e.tick = ++cache_tick_;
  while (rcache_.size() > opt_.response_cache_entries) {
    auto oldest = rcache_.begin();
    for (auto it = rcache_.begin(); it != rcache_.end(); ++it)
      if (it->second.tick < oldest->second.tick) oldest = it;
    rcache_.erase(oldest);
  }
}

bool Proxy::cache_warm(std::uint64_t cache_key, std::uint64_t shard_id,
                       std::uint64_t epoch) const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = rcache_.find(cache_key);
  if (it == rcache_.end()) return false;
  const std::pair<std::uint64_t, std::uint64_t> want{shard_id, epoch};
  return std::find(it->second.warm.begin(), it->second.warm.end(), want) !=
         it->second.warm.end();
}

Response Proxy::forward_failover(const Request& req, std::uint64_t route_key,
                                 std::uint64_t cache_key,
                                 std::chrono::steady_clock::time_point t0,
                                 obs::Timeline* tl) {
  // Grafts the answering shard's timeline under this proxy's: shift to
  // when the (winning) forward began and nest one level deeper, so a
  // depth-0 walk of the merged waterfall never double-counts shard time
  // already covered by the forward stage.
  const auto graft = [tl](Response& resp, std::int64_t f0,
                          const char* label) {
    if (tl == nullptr) return;
    for (StageSpan& s : resp.timeline) {
      s.start_us += f0;
      s.depth += 1;
    }
    tl->stage(strprintf("%s shard=%llu", label,
                        static_cast<unsigned long long>(resp.shard_id)),
              f0, tl->now_us() - f0);
  };
  ProxyMetrics& pm = ProxyMetrics::get();
  const std::size_t shard_count = membership_.shard_count();
  const std::size_t rounds = std::max<std::size_t>(std::size_t{1},
                                                   shard_count);
  const std::size_t want = std::clamp<std::size_t>(
      static_cast<std::size_t>(std::max(1, opt_.replicas)), std::size_t{1},
      std::max<std::size_t>(std::size_t{1}, shard_count));
  const std::uint64_t primary_id = membership_.configured_owner(route_key);
  for (std::size_t round = 0; round < rounds; ++round) {
    std::vector<std::size_t> candidates =
        membership_.route(route_key, want);
    if (candidates.empty()) break;
    // Replica-read preference: the primary always comes first while it
    // is on the ring (cache affinity).  When the walk starts at a
    // stand-in, a replica that has already served this exact request
    // — its cache is warm for it — beats a cold ring successor.
    if (candidates.size() > 1 &&
        membership_.endpoint(candidates[0]).id != primary_id) {
      const std::vector<ShardView> snap = membership_.snapshot();
      std::stable_partition(
          candidates.begin(), candidates.end(), [&](std::size_t i) {
            return cache_warm(cache_key, snap[i].endpoint.id,
                              snap[i].epoch);
          });
    }
    if (opt_.hedge_ms > 0 && candidates.size() > 1) {
      Response resp;
      const std::int64_t f0 = tl ? tl->now_us() : 0;
      if (hedged_forward(req, candidates, t0, &resp, tl)) {
        graft(resp, f0, "forward");
        cache_store(cache_key, resp);
        return resp;
      }
      continue;  // every attempt died on transport: re-route
    }
    // The replica walk: primary first, then up to replicas-1 ring
    // successors, each tried in order before the key is rehashed on
    // the shrunken ring.
    for (std::size_t idx : candidates) {
      try {
        const std::int64_t f0 = tl ? tl->now_us() : 0;
        Response resp = forward_once(idx, req);
        graft(resp, f0, "forward");
        cache_store(cache_key, resp);
        return resp;
      } catch (const Error& e) {
        obs::logf(LogLevel::kWarn, "proxy",
                  "shard %llu failed mid-forward (%s); failing over",
                  static_cast<unsigned long long>(
                      membership_.endpoint(idx).id),
                  e.what());
        if (tl) tl->marker("failover");
        pm.failovers.inc();
        membership_.eject(idx);
        pm.shards_up.set(static_cast<std::int64_t>(membership_.up_count()));
      }
    }
  }
  // Every owner (and every re-route) is gone.  A slightly-stale cached
  // answer is digest-identical to what a live shard would compute —
  // strictly better than a typed error for a read of a deterministic
  // function.
  Response cached;
  if (cache_lookup(cache_key, opt_.stale_ms, &cached)) {
    pm.stale_serves.inc();
    stale_serves_.fetch_add(1);
    if (tl) tl->marker("stale-serve");
    return cached;
  }
  pm.no_shards.inc();
  return error_response(req, "no healthy shards: every backend is down "
                             "or failed mid-request");
}

Response Proxy::aggregate(const Request& req) {
  Response out;
  out.type = req.type;
  out.status = Status::kOk;

  Request probe;
  probe.type = req.type;
  std::vector<std::pair<std::string, std::string>> metric_sections;
  metric_sections.emplace_back("proxy",
                               obs::Registry::global().prometheus_text());

  const std::vector<ShardView> before = membership_.snapshot();
  bool shard_burning = false;
  for (std::size_t i = 0; i < before.size(); ++i) {
    server::ShardInfo info;
    info.shard_id = before[i].endpoint.id;
    info.endpoint = before[i].endpoint.display();
    info.epoch = before[i].epoch;
    info.healthy = false;
    info.stats = before[i].last_stats;
    if (before[i].healthy) {
      try {
        Response r = forward_once(i, probe);
        if (r.status == Status::kOk) {
          info.healthy = true;
          info.epoch = r.epoch;
          info.stats = r.stats;
          membership_.note_stats(i, r.stats, r.epoch);
          out.ready = out.ready || r.ready;
          out.in_flight += r.in_flight;
          out.admission_limit += r.admission_limit;
          shard_burning = shard_burning || r.slo_burning;
          if (req.type == ReqType::kMetricsDump)
            metric_sections.emplace_back(info.endpoint, r.report);
          if (req.type == ReqType::kTraceDump)
            out.spans.insert(out.spans.end(),
                             std::make_move_iterator(r.spans.begin()),
                             std::make_move_iterator(r.spans.end()));
        }
      } catch (const Error&) {
        membership_.eject(i);
        ProxyMetrics::get().shards_up.set(
            static_cast<std::int64_t>(membership_.up_count()));
      }
    }
    merge_stats(out.stats, info.stats);
    out.shards.push_back(std::move(info));
  }
  if (req.type == ReqType::kTraceDump) {
    // The proxy's own rings join the merged dump as pid 0 (shard ids
    // start at 1), on the same absolute unix-ns timebase the shards
    // used, so the collector needs no clock negotiation.
    const obs::Tracer& tracer = obs::Tracer::global();
    const std::int64_t epoch_unix = tracer.epoch_unix_ns();
    for (const obs::Tracer::SnapshotEvent& se : tracer.snapshot(1u << 15)) {
      WireSpan w;
      w.pid = 0;
      w.tid = se.tid;
      w.name = se.ev.name != nullptr ? se.ev.name : "?";
      w.cat = se.ev.cat != nullptr ? se.ev.cat : "vppb";
      w.start_unix_ns = epoch_unix + se.ev.start_ns;
      w.dur_ns = se.ev.dur_ns;
      w.trace_id = se.ev.trace_id;
      if (se.ev.arg_name != nullptr) {
        w.arg_name = se.ev.arg_name;
        w.arg_value = se.ev.arg_value;
      }
      out.spans.push_back(std::move(w));
    }
    if (out.spans.size() > kMergedSpanCap) {
      obs::logf(LogLevel::kWarn, "proxy",
                "tracedump truncated: %zu spans merged, keeping newest %zu",
                out.spans.size(), kMergedSpanCap);
      out.spans.erase(out.spans.begin(),
                      out.spans.end() - static_cast<std::ptrdiff_t>(
                                            kMergedSpanCap));
      out.stats.trace_dropped += 1;  // surfaced as a truncation warning
    }
  }
  if (req.type == ReqType::kMetricsDump)
    out.report = merge_prometheus(metric_sections);
  // Health from the routing tier's own perspective: ready as long as
  // any shard can take traffic.
  if (req.type == ReqType::kHealth) {
    bool any_up = false;
    for (const auto& sh : out.shards) any_up = any_up || sh.healthy;
    out.ready = out.ready && any_up;
  }
  // The proxy's own resilience layers are part of the cluster's story:
  // the merged stats carry its quota/brownout/stale counters (shards
  // report zeros for these), and health says when load is being shed.
  out.stats.quota_rejections += quota_.rejections();
  out.stats.brownout_sheds += brownout_sheds_.load();
  out.stats.stale_serves += stale_serves_.load();
  out.stats.sampled_requests += sampled_.load();
  out.stats.trace_dropped += obs::Tracer::global().dropped_count();
  // Cluster SLO verdict: the proxy's own client-facing burn, or any
  // shard already in breach.
  const obs::BurnRates burn = slo_.burn();
  if (slo_.enabled()) {
    out.stats.slo_p99_ms = opt_.slo_p99_ms;
    out.stats.slo_availability = opt_.slo_availability;
    out.stats.lat_burn_1m = std::max(out.stats.lat_burn_1m, burn.lat_1m);
    out.stats.lat_burn_5m = std::max(out.stats.lat_burn_5m, burn.lat_5m);
    out.stats.lat_burn_1h = std::max(out.stats.lat_burn_1h, burn.lat_1h);
    out.stats.avail_burn_1m =
        std::max(out.stats.avail_burn_1m, burn.avail_1m);
    out.stats.avail_burn_5m =
        std::max(out.stats.avail_burn_5m, burn.avail_5m);
    out.stats.avail_burn_1h =
        std::max(out.stats.avail_burn_1h, burn.avail_1h);
  }
  out.slo_burning = burn.burning || shard_burning;
  std::size_t live = 0, total = 0;
  out.brownout = brownout_active(&live, &total);
  out.live_shards = live;
  out.total_shards = total;
  return out;
}

}  // namespace vppb::cluster
