#include "cluster/launcher.hpp"

#include <csignal>
#include <cstdlib>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <thread>

#include "obs/log.hpp"
#include "server/client.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace vppb::cluster {

namespace {

std::uint64_t next_rand(std::uint64_t& state) {
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 2685821657736338717ULL;
}

}  // namespace

LocalCluster::LocalCluster(ClusterOptions opt) : opt_(std::move(opt)) {
  if (opt_.shards < 1) throw Error("a cluster needs at least one shard");
  if (opt_.exe.empty()) throw Error("LocalCluster needs the vppb binary path");
  rng_ = opt_.backoff_seed ? opt_.backoff_seed : 1;
  for (int i = 0; i < opt_.shards; ++i) {
    ShardEndpoint ep;
    ep.id = static_cast<std::uint64_t>(i) + 1;
    ep.unix_path = strprintf("%s/shard%d.sock", opt_.dir.c_str(), i);
    endpoints_.push_back(std::move(ep));
    procs_.emplace_back();
  }
}

LocalCluster::~LocalCluster() { stop(); }

pid_t LocalCluster::spawn(std::size_t i) {
  // argv is assembled before fork: the child must only touch
  // async-signal-safe territory between fork and exec (the parent may
  // be heavily threaded — tests, the proxy, the bench).
  std::vector<std::string> args = {
      opt_.exe,
      "serve",
      "--socket", endpoints_[i].unix_path,
      "--shard-id", strprintf("%llu", static_cast<unsigned long long>(
                                          endpoints_[i].id)),
      "--jobs", strprintf("%d", opt_.jobs),
  };
  if (opt_.cache_entries > 0) {
    args.push_back("--cache-entries");
    args.push_back(strprintf("%zu", opt_.cache_entries));
  }
  for (const std::string& a : opt_.serve_args) args.push_back(a);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) throw Error("fork failed spawning shard");
  if (pid == 0) {
    for (const auto& [k, v] : opt_.env)
      ::setenv(k.c_str(), v.c_str(), 1);
    ::execv(opt_.exe.c_str(), argv.data());
    _exit(127);  // exec failed; the parent sees it as "never ready"
  }
  return pid;
}

bool LocalCluster::wait_ready(std::size_t i, std::int64_t timeout_ms) const {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    try {
      server::Client c =
          server::Client::connect_unix(endpoints_[i].unix_path);
      server::Request req;
      req.type = server::ReqType::kHealth;
      server::RetryPolicy once;
      once.max_attempts = 1;
      once.request_timeout_ms = 1000;
      const server::Response r = c.call_retry(req, once);
      if (r.status == server::Status::kOk && r.ready) return true;
    } catch (const Error&) {
      // Socket not bound yet (or mid-restart): poll again.
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

void LocalCluster::start() {
  if (!opt_.dir.empty()) ::mkdir(opt_.dir.c_str(), 0755);  // EEXIST is fine
  for (std::size_t i = 0; i < endpoints_.size(); ++i)
    procs_[i].pid = spawn(i);
  std::string stragglers;
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    if (!wait_ready(i, opt_.ready_timeout_ms))
      stragglers += ' ' + endpoints_[i].unix_path;
  }
  if (!stragglers.empty()) {
    stop();
    throw Error("cluster shards never became ready:" + stragglers);
  }
  obs::logf(obs::LogLevel::kInfo, "cluster", "%zu shard(s) up under %s",
            endpoints_.size(), opt_.dir.c_str());
}

void LocalCluster::reap(std::size_t i, int sig) {
  ShardProc& p = procs_[i];
  if (p.pid <= 0) return;
  // A stopped process cannot run its SIGTERM handler (the signal stays
  // pending forever) — wake it first so the blocking waitpid below
  // cannot hang on a paused shard.
  if (p.paused) {
    ::kill(p.pid, SIGCONT);
    p.paused = false;
  }
  ::kill(p.pid, sig);
  int status = 0;
  ::waitpid(p.pid, &status, 0);
  p.pid = -1;
}

void LocalCluster::stop() {
  for (std::size_t i = 0; i < procs_.size(); ++i) reap(i, SIGTERM);
}

void LocalCluster::kill_shard(std::size_t i) {
  reap(i, SIGKILL);
  obs::logf(obs::LogLevel::kWarn, "cluster", "killed shard %zu (%s)", i,
            endpoints_[i].unix_path.c_str());
}

void LocalCluster::pause_shard(std::size_t i) {
  ShardProc& p = procs_[i];
  if (p.pid <= 0 || p.paused) return;
  ::kill(p.pid, SIGSTOP);
  p.paused = true;
  obs::logf(obs::LogLevel::kWarn, "cluster", "paused shard %zu (%s)", i,
            endpoints_[i].unix_path.c_str());
}

void LocalCluster::resume_shard(std::size_t i) {
  ShardProc& p = procs_[i];
  if (p.pid <= 0 || !p.paused) return;
  ::kill(p.pid, SIGCONT);
  p.paused = false;
  obs::logf(obs::LogLevel::kInfo, "cluster", "resumed shard %zu (%s)", i,
            endpoints_[i].unix_path.c_str());
}

std::vector<std::size_t> LocalCluster::reap_exited() {
  std::vector<std::size_t> exited;
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    ShardProc& p = procs_[i];
    if (p.pid <= 0) continue;
    int status = 0;
    if (::waitpid(p.pid, &status, WNOHANG) == p.pid) {
      p.pid = -1;
      p.paused = false;
      exited.push_back(i);
      obs::logf(obs::LogLevel::kWarn, "cluster",
                "shard %zu (%s) exited on its own (status %d)", i,
                endpoints_[i].unix_path.c_str(), status);
    }
  }
  return exited;
}

void LocalCluster::restart_shard(std::size_t i) {
  ShardProc& p = procs_[i];
  if (p.pid > 0) {
    // The shard may already be a zombie (crashed, not yet reaped) —
    // collect it without signaling; otherwise drain it gracefully.
    int status = 0;
    if (::waitpid(p.pid, &status, WNOHANG) == p.pid) {
      p.pid = -1;
      p.paused = false;
    } else {
      reap(i, SIGTERM);
    }
  }

  // Crash-loop governance: restarts spaced further apart than the
  // cool-off window are routine operations and reset the streak; rapid
  // ones back off with decorrelated jitter and eventually refuse.
  const auto now = std::chrono::steady_clock::now();
  const auto cooloff =
      std::chrono::milliseconds(opt_.restart_backoff_cap_ms * 10);
  if (p.last_restart != std::chrono::steady_clock::time_point{} &&
      now - p.last_restart > cooloff) {
    p.restarts = 0;
    p.prev_backoff_ms = 0;
  }
  if (p.restarts >= opt_.max_crash_restarts)
    throw Error(strprintf(
        "shard %zu (%s) is crash-looping: %d restarts without a quiet "
        "period; refusing to restart again",
        i, endpoints_[i].unix_path.c_str(), p.restarts));
  if (p.restarts > 0) {
    const std::int64_t lo = opt_.restart_backoff_base_ms;
    const std::int64_t hi = std::max(
        lo, std::min(opt_.restart_backoff_cap_ms,
                     p.prev_backoff_ms > 0 ? p.prev_backoff_ms * 3 : lo));
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    p.prev_backoff_ms =
        lo + static_cast<std::int64_t>(next_rand(rng_) % span);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(p.prev_backoff_ms));
  }
  ++p.restarts;
  p.last_restart = now;

  p.pid = spawn(i);
  if (!wait_ready(i, opt_.ready_timeout_ms))
    throw Error("restarted shard never became ready: " +
                endpoints_[i].unix_path);
}

}  // namespace vppb::cluster
