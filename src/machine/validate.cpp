#include "machine/validate.hpp"

#include <cmath>

#include "core/engine.hpp"
#include "recorder/recorder.hpp"
#include "solaris/program.hpp"
#include "util/stats.hpp"

namespace vppb::machine {

double ValidationReport::max_abs_error() const {
  double worst = 0.0;
  for (const ValidationPoint& p : points)
    worst = std::max(worst, std::fabs(p.error));
  return worst;
}

ValidationReport validate_workload(std::string app, const WorkloadFn& workload,
                                   std::span<const int> cpu_counts,
                                   const MachineConfig& machine_config) {
  ValidationReport report;
  report.app = std::move(app);
  for (const int cpus : cpu_counts) {
    // One log per processor setup, as in the paper.
    sol::Program program;
    const trace::Trace trace =
        rec::record_program(program, [&workload, cpus]() { workload(cpus); });
    const core::CompiledTrace compiled = core::compile(trace);
    const trace::TraceStats stats = trace::compute_stats(trace);

    core::SimConfig predictor;
    predictor.hw.cpus = cpus;
    predictor.hw.comm_delay = machine_config.comm_delay;
    predictor.sched.lwps = machine_config.lwps;
    predictor.build_timeline = false;

    MachineConfig mc = machine_config;
    mc.cpus = cpus;

    ValidationPoint point;
    point.cpus = cpus;
    point.predicted = core::simulate(compiled, predictor).speedup;
    const MachineResult real = execute(compiled, mc);
    point.real_mid = real.speedup_mid;
    point.real_min = real.speedup_min;
    point.real_max = real.speedup_max;
    point.error = prediction_error(point.real_mid, point.predicted);
    point.log_records = stats.records;
    point.events_per_second = stats.events_per_second;
    report.points.push_back(point);
  }
  return report;
}

}  // namespace vppb::machine
