// The paper's §4 validation harness: for each processor count, record a
// fresh uni-processor log (SPLASH-style programs create one thread per
// processor, so "one log file was made for each processor setup"),
// predict the speed-up with the Simulator, and measure the "real"
// speed-up on the reference machine.  Produces the rows of Table 1.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "machine/machine.hpp"

namespace vppb::machine {

/// A workload body parameterized by worker-thread count.
using WorkloadFn = std::function<void(int nthreads)>;

struct ValidationPoint {
  int cpus = 0;
  double real_mid = 0.0;
  double real_min = 0.0;
  double real_max = 0.0;
  double predicted = 0.0;
  /// (real - predicted) / real, the paper's definition.
  double error = 0.0;
  /// Recording statistics for the §4 intrusion discussion.
  std::size_t log_records = 0;
  double events_per_second = 0.0;
};

struct ValidationReport {
  std::string app;
  std::vector<ValidationPoint> points;

  /// Largest |error| across the points (the paper's headline is 6%).
  double max_abs_error() const;
};

/// Runs the full validation for one application.
ValidationReport validate_workload(std::string app, const WorkloadFn& workload,
                                   std::span<const int> cpu_counts,
                                   const MachineConfig& machine_config);

}  // namespace vppb::machine
