// The reference multiprocessor — this reproduction's stand-in for the
// paper's Sun Ultra Enterprise 4000 (the "Real" rows of Table 1).
//
// The paper validates the predictor against real executions on an
// 8-CPU machine we do not have.  The substitute executes the same
// compiled trace on the same two-level-scheduling core, but with the
// dynamics a real machine adds and the predictor deliberately ignores
// (paper §6): per-segment duration jitter, LWP context-switch cost,
// cross-CPU migration penalty, and optional memory-bus contention.
// Each "execution" uses a different jitter seed; like the paper, the
// reported real speed-up is the middle value of the repetitions with
// the (min–max) range alongside.
//
// The real speed-up of one repetition is measured the way the paper
// measures it: the same jittered workload timed on 1 CPU and on N CPUs.
#pragma once

#include <cstdint>
#include <vector>

#include "core/compiler.hpp"
#include "core/engine.hpp"
#include "trace/trace.hpp"
#include "util/time.hpp"

namespace vppb::machine {

struct MachineConfig {
  int cpus = 8;
  int lwps = 0;  ///< 0 = one per thread
  SimTime comm_delay = SimTime::zero();
  /// Relative standard deviation of per-segment durations between runs
  /// (scheduling noise, cache luck, interrupts).
  double cpu_jitter = 0.015;
  /// Kernel costs the predictor ignores (paper §6).
  SimTime context_switch_cost = SimTime::micros(2);
  SimTime migration_penalty = SimTime::micros(5);
  double memory_contention_alpha = 0.0;
  /// Number of executions; the paper uses five.
  int repetitions = 5;
  std::uint64_t seed = 0x5eedULL;
};

struct MachineRun {
  SimTime total_1cpu;
  SimTime total_ncpu;
  double speedup = 0.0;
};

struct MachineResult {
  std::vector<MachineRun> runs;
  double speedup_mid = 0.0;  ///< middle value, as the paper reports
  double speedup_min = 0.0;
  double speedup_max = 0.0;
};

/// "Runs" the recorded program on the reference multiprocessor.
MachineResult execute(const trace::Trace& trace, const MachineConfig& config);
MachineResult execute(const core::CompiledTrace& compiled,
                      const MachineConfig& config);

/// One jittered copy of a compiled trace (exposed for tests/ablations).
core::CompiledTrace jittered(const core::CompiledTrace& compiled,
                             double rel_stddev, std::uint64_t seed);

}  // namespace vppb::machine
