#include "machine/machine.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace vppb::machine {

core::CompiledTrace jittered(const core::CompiledTrace& compiled,
                             double rel_stddev, std::uint64_t seed) {
  core::CompiledTrace out = compiled;
  Rng rng(seed);
  for (auto& [tid, ct] : out.threads) {
    // Per-thread streams keep the jitter independent of map order.
    Rng thread_rng(rng.next_u64() ^ static_cast<std::uint64_t>(tid));
    ct.total_cpu = SimTime::zero();
    for (core::Step& s : ct.steps) {
      s.cpu = s.cpu.scaled(thread_rng.jitter_factor(rel_stddev));
      s.op_cost = s.op_cost.scaled(thread_rng.jitter_factor(rel_stddev));
      ct.total_cpu += s.cpu + s.op_cost;
    }
  }
  // The copy shares the source's flat program; the steps just changed,
  // so derive a fresh one or the engine would replay unjittered demands.
  out.rebuild_flat();
  return out;
}

MachineResult execute(const core::CompiledTrace& compiled,
                      const MachineConfig& config) {
  VPPB_CHECK_MSG(config.repetitions >= 1, "need at least one repetition");
  VPPB_CHECK_MSG(config.cpus >= 1, "need at least one CPU");

  core::SimConfig ncpu;
  ncpu.hw.cpus = config.cpus;
  ncpu.hw.comm_delay = config.comm_delay;
  ncpu.hw.migration_penalty = config.migration_penalty;
  ncpu.hw.memory_contention_alpha = config.memory_contention_alpha;
  ncpu.sched.lwps = config.lwps;
  ncpu.cost.context_switch_cost = config.context_switch_cost;
  ncpu.build_timeline = false;

  core::SimConfig onecpu = ncpu;
  onecpu.hw.cpus = 1;
  onecpu.hw.comm_delay = SimTime::zero();
  onecpu.hw.migration_penalty = SimTime::zero();

  MachineResult result;
  Rng seeds(config.seed);
  for (int rep = 0; rep < config.repetitions; ++rep) {
    const core::CompiledTrace run_trace =
        jittered(compiled, config.cpu_jitter, seeds.next_u64());
    MachineRun run;
    run.total_1cpu = core::simulate(run_trace, onecpu).total;
    run.total_ncpu = core::simulate(run_trace, ncpu).total;
    run.speedup = static_cast<double>(run.total_1cpu.ns()) /
                  static_cast<double>(run.total_ncpu.ns());
    result.runs.push_back(run);
  }

  std::vector<double> speedups;
  speedups.reserve(result.runs.size());
  for (const MachineRun& r : result.runs) speedups.push_back(r.speedup);
  result.speedup_mid = median(speedups);
  result.speedup_min = *std::min_element(speedups.begin(), speedups.end());
  result.speedup_max = *std::max_element(speedups.begin(), speedups.end());
  return result;
}

MachineResult execute(const trace::Trace& trace, const MachineConfig& config) {
  return execute(core::compile(trace), config);
}

}  // namespace vppb::machine
