// Solaris-style dispatch queues for the engine's two scheduling levels.
//
// Solaris dispatches kernel threads through `dispq`: an array of FIFO
// run queues, one per global priority, plus a bitmap of non-empty
// levels (disp_qactmap).  Insertion appends to the level's queue and
// sets its bit; picking the next thread finds the highest set bit and
// takes that queue's head — both O(1) in the number of queued threads.
// The engine reproduces that shape at the library level (unbound
// threads waiting for an LWP, bucketed by user priority) and at the
// kernel level (LWPs waiting for a CPU, bucketed by user priority ×
// TS level), replacing the sort-per-step scheduler it started with.
//
// Two usage patterns share the structure:
//
//  * A persistent queue with lazy deletion (the library level).  The
//    owner stamps every entry with an epoch; bumping the epoch outside
//    the queue invalidates the entry in place, and `invalidate()`
//    keeps the per-bucket live count (and the bitmap) in step.  The
//    stale husk is discarded when a later `scan` walks over it.
//  * A scratch queue rebuilt from scratch before each decision (the
//    kernel level): every entry is live, so `top()`/`pop_top()` read
//    the best entry directly.  `clear()` is O(buckets touched since
//    the last clear), not O(levels), so a mostly-idle queue stays
//    cheap to recycle.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

namespace vppb::core {

/// Bitmap of non-empty priority levels (Solaris' disp_qactmap).
class PrioBitmap {
 public:
  void configure(int levels) {
    words_.assign(static_cast<std::size_t>((levels + 63) / 64), 0);
  }
  void set(int level) {
    words_[static_cast<std::size_t>(level >> 6)] |= 1ull << (level & 63);
  }
  void clear(int level) {
    words_[static_cast<std::size_t>(level >> 6)] &= ~(1ull << (level & 63));
  }

  /// Highest set level, or -1 when empty.
  int highest() const {
    for (int w = static_cast<int>(words_.size()) - 1; w >= 0; --w) {
      const std::uint64_t word = words_[static_cast<std::size_t>(w)];
      if (word != 0) return (w << 6) + 63 - std::countl_zero(word);
    }
    return -1;
  }

  /// Highest set level strictly below `level`, or -1.
  int highest_below(int level) const {
    if (level <= 0) return -1;
    int w = (level - 1) >> 6;
    const std::uint64_t mask = ~0ull >> (63 - ((level - 1) & 63));
    std::uint64_t word = words_[static_cast<std::size_t>(w)] & mask;
    for (;;) {
      if (word != 0) return (w << 6) + 63 - std::countl_zero(word);
      if (--w < 0) return -1;
      word = words_[static_cast<std::size_t>(w)];
    }
  }

 private:
  std::vector<std::uint64_t> words_;
};

/// One dispatch-queue array: per-level FIFO buckets ordered by an
/// explicit sequence number, plus the bitmap of non-empty levels.
/// Higher level = dispatched first; within a level, smaller seq first.
template <typename Item>
class DispQueue {
 public:
  struct Entry {
    Item item;
    std::uint64_t seq;
    std::uint32_t epoch;  ///< owner's stamp; mismatch = lazily deleted
  };

  enum class Visit : std::uint8_t {
    kSkip,  ///< live but not eligible right now: leave it queued
    kDrop,  ///< stale husk (already invalidate()d): discard physically
    kTake,  ///< pop this entry and stop the scan
  };

  /// Sizes the queue for `levels` buckets and empties it.  Re-configuring
  /// to the same level count (a reused engine workspace running the same
  /// program again) recycles the bucket storage instead of freeing it.
  void configure(int levels) {
    if (static_cast<std::size_t>(levels) == buckets_.size()) {
      clear();
      return;
    }
    buckets_.clear();
    buckets_.resize(static_cast<std::size_t>(levels));
    bits_.configure(levels);
    touched_.clear();
    live_total_ = 0;
  }

  /// Queue `item` at `level`, ordered by `seq` within the bucket.  The
  /// common case (monotonically growing seq) appends; re-queues with an
  /// older seq walk back from the tail to their position, so bucket
  /// order is always by seq regardless of arrival order.
  void insert(int level, Item item, std::uint64_t seq, std::uint32_t epoch) {
    Bucket& b = buckets_[static_cast<std::size_t>(level)];
    if (!b.touched) {
      b.touched = true;
      touched_.push_back(level);
    }
    if (b.live == 0) bits_.set(level);
    ++b.live;
    ++live_total_;
    std::size_t pos = b.q.size();
    while (pos > b.head && b.q[pos - 1].seq > seq) --pos;
    b.q.insert(b.q.begin() + static_cast<std::ptrdiff_t>(pos),
               Entry{item, seq, epoch});
  }

  /// The owner removed an entry of `level` by bumping its epoch; keep
  /// the live count and bitmap consistent.
  void invalidate(int level) {
    Bucket& b = buckets_[static_cast<std::size_t>(level)];
    --b.live;
    --live_total_;
    if (b.live == 0) reset_bucket(b, level);
  }

  /// Walks entries from the strongest level down, calling
  /// `classify(item, epoch)` on each; returns the first kTake'n item,
  /// or Item{} when every entry was skipped or dropped.  The caller
  /// updates its own bookkeeping (epoch bump etc.) for a taken item.
  template <typename F>
  Item scan(F&& classify) {
    for (int level = bits_.highest(); level >= 0;
         level = bits_.highest_below(level)) {
      Bucket& b = buckets_[static_cast<std::size_t>(level)];
      for (std::size_t i = b.head; i < b.q.size(); ++i) {
        const Visit v = classify(b.q[i].item, b.q[i].epoch);
        if (v == Visit::kSkip) continue;
        if (v == Visit::kDrop) {
          // live was already decremented by invalidate(); only the
          // husk remains.  Trim it when it sits at the head.
          if (i == b.head) ++b.head;
          continue;
        }
        Item out = b.q[i].item;
        if (i == b.head) ++b.head;
        --b.live;
        --live_total_;
        if (b.live == 0) reset_bucket(b, level);
        return out;
      }
    }
    return Item{};
  }

  /// Best entry, assuming every queued entry is live (scratch usage —
  /// rebuilt queues with no lazy deletions).  nullptr when empty.
  const Entry* top() const {
    const int level = bits_.highest();
    if (level < 0) return nullptr;
    const Bucket& b = buckets_[static_cast<std::size_t>(level)];
    return &b.q[b.head];
  }

  /// Pops the entry `top()` returned.  Same all-live assumption.
  Item pop_top() {
    const int level = bits_.highest();
    Bucket& b = buckets_[static_cast<std::size_t>(level)];
    Item out = b.q[b.head].item;
    ++b.head;
    --b.live;
    --live_total_;
    if (b.live == 0) reset_bucket(b, level);
    return out;
  }

  /// Empties the queue in O(buckets touched since the last clear).
  void clear() {
    for (const int level : touched_) {
      Bucket& b = buckets_[static_cast<std::size_t>(level)];
      b.q.clear();
      b.head = 0;
      b.live = 0;
      b.touched = false;
      bits_.clear(level);
    }
    touched_.clear();
    live_total_ = 0;
  }

  /// Entries inserted and not yet taken or invalidated, across all
  /// buckets.  Zero means a scan cannot take anything, letting callers
  /// skip it in O(1).
  std::size_t live() const { return live_total_; }

 private:
  struct Bucket {
    std::vector<Entry> q;
    std::size_t head = 0;   ///< physical entries before this are consumed
    std::size_t live = 0;   ///< entries not lazily deleted
    bool touched = false;   ///< on the touched_ list
  };

  void reset_bucket(Bucket& b, int level) {
    // No live entries: whatever is physically left is stale husks, so
    // the storage can be recycled wholesale.
    b.q.clear();
    b.head = 0;
    bits_.clear(level);
  }

  std::vector<Bucket> buckets_;
  PrioBitmap bits_;
  std::vector<int> touched_;
  std::size_t live_total_ = 0;
};

}  // namespace vppb::core
