#include "core/ts_table.hpp"

#include "util/error.hpp"

namespace vppb::core {

TsTable TsTable::solaris_default() {
  TsTable t;
  for (int level = 0; level < kTsLevels; ++level) {
    TsEntry e;
    // Quanta fall in 40 ms steps per decade of priority: 200 ms for
    // levels 0–9 down to 40 ms for 40–49, then 20 ms above.
    const int decade = level / 10;
    const std::int64_t quantum_ms = decade < 5 ? 200 - 40 * decade : 20;
    e.quantum = SimTime::millis(quantum_ms);
    // Using the whole quantum drops the level by 10 (CPU hogs sink).
    e.on_expiry = level < 10 ? 0 : level - 10;
    // Returning from sleep boosts interactive work into the 50s band.
    e.on_sleep_return = level < 10 ? 50 : (level < 50 ? 50 + (level - 10) / 8
                                                      : 58);
    if (e.on_sleep_return > 59) e.on_sleep_return = 59;
    // Starvation relief mirrors the sleep-return boost.
    e.on_starve = e.on_sleep_return;
    e.max_wait = SimTime::seconds(1.0);
    t.entries[static_cast<std::size_t>(level)] = e;
  }
  return t;
}

TsTable TsTable::flat(SimTime quantum) {
  VPPB_CHECK_MSG(quantum > SimTime::zero(), "flat TS table needs a quantum");
  TsTable t;
  for (int level = 0; level < kTsLevels; ++level) {
    t.entries[static_cast<std::size_t>(level)] =
        TsEntry{quantum, level, level, level, SimTime::max()};
  }
  return t;
}

}  // namespace vppb::core
