#include "core/compiler.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/error.hpp"

namespace vppb::core {

const CompiledThread& CompiledTrace::thread(ThreadId tid) const {
  auto it = threads.find(tid);
  VPPB_CHECK_MSG(it != threads.end(), "no compiled thread T" << tid);
  return it->second;
}

namespace {

/// Raw-id -> dense-slot map for one object kind.  Slots are handed out
/// in first-touch order over the (ascending-tid, step-order) walk of
/// the program, so the numbering is a pure function of the trace.
class SlotMap {
 public:
  std::uint32_t slot(std::uint32_t id) {
    const auto [it, inserted] =
        map_.try_emplace(id, static_cast<std::uint32_t>(map_.size()));
    return it->second;
  }
  std::uint32_t count() const { return static_cast<std::uint32_t>(map_.size()); }

 private:
  std::unordered_map<std::uint32_t, std::uint32_t> map_;
};

/// Assigns the engine-internal dense object slots of one step.  A cond
/// wait names its mutex in `arg`, so that id maps into the mutex table
/// too (slot2).
void assign_slots(Step& s, SlotMap& mutexes, SlotMap& semas, SlotMap& conds,
                  SlotMap& rwlocks) {
  switch (trace::op_obj_kind(s.op)) {
    case trace::ObjKind::kMutex: s.slot = mutexes.slot(s.obj.id); break;
    case trace::ObjKind::kSema: s.slot = semas.slot(s.obj.id); break;
    case trace::ObjKind::kCond: s.slot = conds.slot(s.obj.id); break;
    case trace::ObjKind::kRwlock: s.slot = rwlocks.slot(s.obj.id); break;
    default: break;
  }
  if (s.op == trace::Op::kCondWait || s.op == trace::Op::kCondTimedwait)
    s.slot2 = mutexes.slot(static_cast<std::uint32_t>(s.arg));
}

}  // namespace

std::shared_ptr<const FlatProgram> build_flat_program(
    const std::map<ThreadId, CompiledThread>& threads) {
  auto fp = std::make_shared<FlatProgram>();
  std::size_t total = 0;
  for (const auto& [tid, ct] : threads) total += ct.steps.size();
  fp->total_steps = total;
  fp->n_threads = threads.size();
  FlatThread* table = fp->arena.make_array<FlatThread>(threads.size());
  fp->threads = table;
  SlotMap mutexes, semas, conds, rwlocks;
  std::size_t i = 0;
  for (const auto& [tid, ct] : threads) {
    FlatThread& ft = table[i++];
    ft.tid = tid;
    ft.n_steps = static_cast<std::uint32_t>(ct.steps.size());
    ft.bound = ct.bound;
    ft.created_in_log = ct.created_in_log;
    ft.initial_priority = ct.initial_priority;
    ft.first_record_at = ct.first_record_at;
    ft.total_cpu = ct.total_cpu;
    Step* steps = fp->arena.make_array<Step>(ct.steps.size());
    ft.steps = steps;
    for (std::size_t k = 0; k < ct.steps.size(); ++k) {
      steps[k] = ct.steps[k];
      assign_slots(steps[k], mutexes, semas, conds, rwlocks);
    }
  }
  fp->mutex_ids = mutexes.count();
  fp->sema_ids = semas.count();
  fp->cond_ids = conds.count();
  fp->rwlock_ids = rwlocks.count();
  return fp;
}

void CompiledTrace::rebuild_flat() { flat = build_flat_program(threads); }

CompiledTrace compile(const trace::Trace& trace) {
  return compile(trace, nullptr);
}

CompiledTrace compile(const trace::Trace& trace, const RunGuard* guard) {
  trace.validate();
  CompiledTrace out;
  out.recorded_duration = trace.duration();

  // Seed thread entries from the metadata section.
  for (const auto& meta : trace.threads) {
    CompiledThread ct;
    ct.tid = meta.tid;
    ct.name = trace.strings.get(meta.name);
    ct.start_func = trace.strings.get(meta.start_func);
    ct.bound = meta.bound;
    ct.initial_priority = meta.initial_priority;
    out.threads.emplace(meta.tid, std::move(ct));
  }

  std::map<ThreadId, SimTime> accum;       // CPU charged since last own record
  std::map<ThreadId, Step> open;           // call seen, waiting for return
  std::map<ThreadId, bool> seen;           // first-record bookkeeping
  SimTime prev_at = SimTime::zero();

  auto thread_of = [&out](ThreadId tid) -> CompiledThread& {
    auto it = out.threads.find(tid);
    VPPB_CHECK_MSG(it != out.threads.end(),
                   "record from thread T" << tid << " with no metadata");
    return it->second;
  };

  std::size_t scanned = 0;
  for (const trace::Record& r : trace.records) {
    // Governance checkpoint: cheap enough per batch that a cancelled or
    // wall-overdue request bails out of even a multi-GB compile.
    if (guard != nullptr && (++scanned & 4095u) == 0) {
      guard->check_cancel();
      guard->check_wall();
    }
    // Single-LWP attribution: the interval since the previous record was
    // executed by this record's thread.
    accum[r.tid] += r.at - prev_at;
    prev_at = r.at;

    CompiledThread& ct = thread_of(r.tid);
    if (!seen[r.tid]) {
      seen[r.tid] = true;
      ct.first_record_at = r.at;
    }

    if (r.op == trace::Op::kStartCollect) {
      // Keep the accumulated interval: compute performed before the
      // first library call belongs to the thread that makes it.
      continue;
    }
    if (r.op == trace::Op::kEndCollect) {
      accum[r.tid] = SimTime::zero();
      continue;
    }

    if (r.phase == trace::Phase::kCall) {
      Step s;
      s.cpu = accum[r.tid];
      accum[r.tid] = SimTime::zero();
      s.op = r.op;
      s.obj = r.obj;
      s.arg = r.arg;
      s.arg2 = r.arg2;
      s.loc = r.loc;
      s.logged_at = r.at;
      const bool single =
          r.op == trace::Op::kThrExit || r.op == trace::Op::kUserMark;
      if (single) {
        ct.steps.push_back(s);
      } else {
        VPPB_CHECK_MSG(open.find(r.tid) == open.end(),
                       "T" << r.tid << " has two open calls in the log");
        open.emplace(r.tid, s);
      }
      continue;
    }

    // kReturn: close the open step.
    auto it = open.find(r.tid);
    VPPB_CHECK_MSG(it != open.end() && it->second.op == r.op,
                   "return of " << trace::op_name(r.op) << " by T" << r.tid
                                << " without a matching call");
    Step s = it->second;
    open.erase(it);
    s.outcome = r.arg;
    if (s.op == trace::Op::kIoWait) {
      // Extension: recorded I/O latency replays as a device delay, not
      // compute demand.
      s.delay = r.at - s.logged_at;
      s.op_cost = SimTime::zero();
      accum[r.tid] = SimTime::zero();
    } else if (s.op == trace::Op::kCondTimedwait && s.outcome == 0) {
      // Timed out in the recording: replayed as a pure delay of the
      // recorded length (paper §3.2); the tail interval charged to this
      // thread was sleep, not compute.
      s.delay = r.at - s.logged_at;
      s.op_cost = SimTime::zero();
      accum[r.tid] = SimTime::zero();
    } else {
      s.op_cost = accum[r.tid];
      accum[r.tid] = SimTime::zero();
    }
    ct.steps.push_back(s);
  }

  VPPB_CHECK_MSG(open.empty(), "log ends with an unreturned call");

  // Mark threads that are created by a thr_create in the log, and total
  // up per-thread demand.
  for (auto& [tid, ct] : out.threads) {
    for (const Step& s : ct.steps) {
      if (s.op == trace::Op::kThrCreate && s.outcome != 0) {
        auto child = out.threads.find(static_cast<ThreadId>(s.outcome));
        if (child != out.threads.end()) child->second.created_in_log = true;
      }
    }
    (void)tid;
  }
  for (auto& [tid, ct] : out.threads) {
    for (const Step& s : ct.steps) {
      ct.total_cpu += s.cpu + s.op_cost;
      if (s.op == trace::Op::kThrSetPrio)
        out.setprio_values.push_back(static_cast<int>(s.arg));
    }
    (void)tid;
  }
  std::sort(out.setprio_values.begin(), out.setprio_values.end());
  out.setprio_values.erase(
      std::unique(out.setprio_values.begin(), out.setprio_values.end()),
      out.setprio_values.end());
  out.rebuild_flat();
  return out;
}

}  // namespace vppb::core
