// The VPPB Simulator: event-driven simulation of a multiprocessor
// running Solaris 2.5, replaying a compiled uni-processor trace under a
// user-supplied hardware configuration and scheduling policy.
//
// Two-level scheduling, as in Solaris (paper §3.2): user threads are
// multiplexed on LWPs by the (simulated) thread library in user-priority
// order; LWPs are dispatched on CPUs by the (simulated) kernel in TS
// priority order with table-driven quantum/priority adjustment.  "Each
// (simulated) CPU picks a (simulated) LWP, which in turn picks a
// (simulated) thread.  Each CPU executes the minimum time required for
// one of the threads to reach an event from the thread's list."
//
// Replay rules (paper §3.2/§6):
//  - try-operations succeed iff they succeeded in the log;
//  - cond_timedwait that timed out replays as a delay of the recorded
//    length; otherwise as a cond_wait;
//  - a cond_broadcast that released N waiters blocks the broadcaster
//    until N waiters have arrived (barrier behaviour);
//  - thr_join with a wildcard joins whichever thread exits first;
//  - creating a bound thread costs ×6.7, synchronization on bound
//    threads ×5.9;
//  - LWP context-switch overhead is NOT modelled (that is the
//    reference machine's job — see src/machine).
#pragma once

#include <memory>

#include "core/compiler.hpp"
#include "core/config.hpp"
#include "core/guard.hpp"
#include "core/result.hpp"
#include "trace/trace.hpp"

namespace vppb::core {

/// A reusable simulation engine: one instance owns a workspace (thread
/// tables, dispatch queues, wait queues, timers, object slabs) that
/// run() resets — preserving every allocation — instead of rebuilding.
/// After the first run on a trace, subsequent runs are allocation-free
/// in steady state, which is what makes batched sweeps (many configs,
/// one compiled trace) cheap: the per-run constant cost drops to a
/// workspace reset.
///
/// Results are bit-identical to the one-shot simulate() path: a reset
/// workspace is observationally a fresh one (sequence counters, wait
/// queues and slabs all restart from their initial state), and the
/// determinism suite pins that with the golden digests.
///
/// Not thread-safe; use one SimEngine per thread (SweepRunner pools
/// them for parallel sweeps).
class SimEngine {
 public:
  SimEngine();
  ~SimEngine();
  SimEngine(SimEngine&&) noexcept;
  SimEngine& operator=(SimEngine&&) noexcept;
  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  /// Simulates `compiled` under `config`, exactly like simulate() —
  /// including guard semantics — but against this engine's reused
  /// workspace.
  SimResult run(const CompiledTrace& compiled, const SimConfig& config,
                const RunGuard* guard = nullptr);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Simulates the compiled trace.  Throws vppb::Error on unreplayable
/// traces (e.g. a replay deadlock, which indicates either a broken log
/// or a program whose behaviour depends on the schedule — paper §6).
///
/// The same engine serves as the predictor and as the reference
/// machine's core: the replay rules are necessarily identical (both are
/// trace-driven; the recorded control flow fixes every branch), and the
/// reference machine differentiates itself through the SimConfig cost
/// knobs (context-switch cost, migration penalty, memory contention)
/// plus pre-jittered compiled step demands — see src/machine.
SimResult simulate(const CompiledTrace& compiled, const SimConfig& config);

/// Guarded run: the engine polls `guard` once per step (cancellation +
/// step budget; wall/result budgets every ~1k steps) and once per clock
/// advance (simulated-time budget), throwing BudgetExceeded on a trip.
/// A null guard is identical to the two-argument overload; a guard with
/// no limits costs one relaxed load per step.  Guards never alter a
/// completed run's result.
SimResult simulate(const CompiledTrace& compiled, const SimConfig& config,
                   const RunGuard* guard);

/// Convenience: compile + simulate.
SimResult simulate(const trace::Trace& trace, const SimConfig& config);

/// Guarded convenience overload: the guard also covers compilation.
SimResult simulate(const trace::Trace& trace, const SimConfig& config,
                   const RunGuard* guard);

/// The headline number: predicted speed-up of the traced program on
/// `cpus` processors (paper Table 1).
double predict_speedup(const trace::Trace& trace, int cpus);

}  // namespace vppb::core
