// The trace compiler: turns the Recorder's interleaved one-LWP log into
// per-thread replay programs (the paper's fig. 4 per-thread event lists,
// augmented with the CPU demand between events).
//
// CPU attribution uses the single-LWP invariant: between two consecutive
// records in the global log exactly one thread is executing — the thread
// that produces the *later* record (the earlier record's thread either
// kept running, in which case both records are its, or was descheduled
// inside the library call that produced the earlier record).  Summing
// those intervals per thread yields each thread's compute demand between
// its own events, which is exactly what the Simulator replays.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/guard.hpp"
#include "trace/trace.hpp"
#include "util/arena.hpp"
#include "util/time.hpp"

namespace vppb::core {

using trace::ThreadId;

/// One replayable step: run `cpu`, apply the operation, run `op_cost`
/// (the recorded library overhead, scaled for bound threads), continue.
struct Step {
  SimTime cpu;       ///< compute demand before the call
  SimTime op_cost;   ///< library time of the call itself
  trace::Op op = trace::Op::kThrExit;
  trace::ObjectRef obj;
  std::int64_t arg = 0;      ///< call argument (priority, flags, …)
  std::int64_t arg2 = 0;     ///< secondary argument (mutex of a cond wait)
  std::int64_t outcome = 0;  ///< return value (created tid, try success, …)
  SimTime delay;     ///< recorded sleep length of a timed-out cond_timedwait
  std::uint32_t loc = 0;     ///< source location of the call
  SimTime logged_at;         ///< when the call happened in the recording
  /// Engine-internal dense object slots, assigned by build_flat_program:
  /// the replay keys its per-kind object tables by these (first-touch
  /// order, 0..n-1) rather than the trace's raw ids, which recorders
  /// derive from addresses and are therefore arbitrarily sparse.  `slot`
  /// remaps obj.id (for synchronization-object ops); `slot2` remaps a
  /// cond wait's recorded mutex (arg).  Results and events still carry
  /// the raw ids — slots never leak out of the engine.
  std::uint32_t slot = 0;
  std::uint32_t slot2 = 0;
};

struct CompiledThread {
  ThreadId tid = 0;
  std::string name;
  std::string start_func;
  bool bound = false;        ///< created with THR_BOUND in the recording
  int initial_priority = 0;
  /// True when some thr_create in the log creates this thread; if not
  /// (hand-written traces), the simulator spawns it at first_record_at.
  bool created_in_log = false;
  SimTime first_record_at;
  std::vector<Step> steps;
  SimTime total_cpu;  ///< sum of cpu + op_cost over all steps
};

/// The engine-facing view of one compiled thread: a dense record whose
/// step array lives in the owning FlatProgram's arena.  Everything the
/// replay hot path needs, nothing it does not (names etc. stay on
/// CompiledThread).
struct FlatThread {
  ThreadId tid = 0;
  const Step* steps = nullptr;  ///< arena-backed, contiguous
  std::uint32_t n_steps = 0;
  bool bound = false;
  bool created_in_log = false;
  int initial_priority = 0;
  SimTime first_record_at;
  SimTime total_cpu;
};

/// The data-oriented form of a CompiledTrace: every thread's step
/// stream copied into one bump arena, plus a dense thread table in
/// ascending-tid order (the same order the std::map iterates, so the
/// engine's thread indices are unchanged) and the per-kind object-id
/// bounds the engine uses to presize its slabs once per run instead of
/// growing them mid-replay.  Immutable after build; shared by every
/// simulation of the trace (all sweep points, all cached requests).
struct FlatProgram {
  util::Arena arena;
  const FlatThread* threads = nullptr;  ///< arena-backed, ascending tid
  std::size_t n_threads = 0;
  std::size_t total_steps = 0;
  /// Distinct objects of each kind (== the per-kind slot count): the
  /// engine sizes its dense object tables to exactly these.  Cond-wait
  /// steps contribute their recorded mutex (Step::arg) to the mutex
  /// count.
  std::uint32_t mutex_ids = 0;
  std::uint32_t sema_ids = 0;
  std::uint32_t cond_ids = 0;
  std::uint32_t rwlock_ids = 0;
};

struct CompiledTrace {
  std::map<ThreadId, CompiledThread> threads;
  SimTime recorded_duration;
  /// Every thr_setprio argument in the trace (sorted, deduplicated).
  /// Collected once here so the engine's per-run priority table does
  /// not have to rescan every step of every thread.
  std::vector<int> setprio_values;
  /// Flat replay form, built once by compile() and shared (immutably)
  /// by every copy of this trace.  Code that mutates `threads` after
  /// compilation (see machine::jittered) must call rebuild_flat(), or
  /// the engine would replay the stale stream.
  std::shared_ptr<const FlatProgram> flat;

  const CompiledThread& thread(ThreadId tid) const;

  /// (Re)derives `flat` from `threads`.  Cheap relative to compile():
  /// one pass copying the step streams into a fresh arena.
  void rebuild_flat();
};

/// Builds the flat replay form of a compiled thread map: one arena
/// holding every step stream plus the dense thread table.  compile()
/// calls this via CompiledTrace::rebuild_flat(); the engine calls it
/// directly for hand-built CompiledTraces that never went through
/// compile() and so carry no flat form.
std::shared_ptr<const FlatProgram> build_flat_program(
    const std::map<ThreadId, CompiledThread>& threads);

/// Compiles a validated trace.  Throws vppb::Error on traces that cannot
/// be replayed (e.g. a return without a call).
CompiledTrace compile(const trace::Trace& trace);

/// Guarded compilation: polls `guard` (cancellation + wall budget)
/// every few thousand records, so a cancelled request does not sit
/// through the full compile of a huge trace.  Null guard = unguarded.
CompiledTrace compile(const trace::Trace& trace, const RunGuard* guard);

}  // namespace vppb::core
