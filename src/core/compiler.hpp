// The trace compiler: turns the Recorder's interleaved one-LWP log into
// per-thread replay programs (the paper's fig. 4 per-thread event lists,
// augmented with the CPU demand between events).
//
// CPU attribution uses the single-LWP invariant: between two consecutive
// records in the global log exactly one thread is executing — the thread
// that produces the *later* record (the earlier record's thread either
// kept running, in which case both records are its, or was descheduled
// inside the library call that produced the earlier record).  Summing
// those intervals per thread yields each thread's compute demand between
// its own events, which is exactly what the Simulator replays.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/guard.hpp"
#include "trace/trace.hpp"
#include "util/time.hpp"

namespace vppb::core {

using trace::ThreadId;

/// One replayable step: run `cpu`, apply the operation, run `op_cost`
/// (the recorded library overhead, scaled for bound threads), continue.
struct Step {
  SimTime cpu;       ///< compute demand before the call
  SimTime op_cost;   ///< library time of the call itself
  trace::Op op = trace::Op::kThrExit;
  trace::ObjectRef obj;
  std::int64_t arg = 0;      ///< call argument (priority, flags, …)
  std::int64_t arg2 = 0;     ///< secondary argument (mutex of a cond wait)
  std::int64_t outcome = 0;  ///< return value (created tid, try success, …)
  SimTime delay;     ///< recorded sleep length of a timed-out cond_timedwait
  std::uint32_t loc = 0;     ///< source location of the call
  SimTime logged_at;         ///< when the call happened in the recording
};

struct CompiledThread {
  ThreadId tid = 0;
  std::string name;
  std::string start_func;
  bool bound = false;        ///< created with THR_BOUND in the recording
  int initial_priority = 0;
  /// True when some thr_create in the log creates this thread; if not
  /// (hand-written traces), the simulator spawns it at first_record_at.
  bool created_in_log = false;
  SimTime first_record_at;
  std::vector<Step> steps;
  SimTime total_cpu;  ///< sum of cpu + op_cost over all steps
};

struct CompiledTrace {
  std::map<ThreadId, CompiledThread> threads;
  SimTime recorded_duration;
  /// Every thr_setprio argument in the trace (sorted, deduplicated).
  /// Collected once here so the engine's per-run priority table does
  /// not have to rescan every step of every thread.
  std::vector<int> setprio_values;

  const CompiledThread& thread(ThreadId tid) const;
};

/// Compiles a validated trace.  Throws vppb::Error on traces that cannot
/// be replayed (e.g. a return without a call).
CompiledTrace compile(const trace::Trace& trace);

/// Guarded compilation: polls `guard` (cancellation + wall budget)
/// every few thousand records, so a cancelled request does not sit
/// through the full compile of a huge trace.  Null guard = unguarded.
CompiledTrace compile(const trace::Trace& trace, const RunGuard* guard);

}  // namespace vppb::core
