// Simulated synchronization objects.  Semantics mirror src/solaris
// (priority-ordered FIFO wakeups, direct handoff), with the replay
// rules of paper §3.2 applied by the engine.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "trace/event.hpp"
#include "ult/wait_queue.hpp"

namespace vppb::core {

using ult::ThreadId;
using ult::WaitQueue;

struct SimMutex {
  ThreadId owner = ult::kNoThread;
  WaitQueue waiters;
};

struct SimSema {
  std::int64_t count = 0;
  WaitQueue waiters;
};

struct SimCond {
  WaitQueue waiters;
  /// Replay rule symmetric to the barrier rule: a cond_signal that woke
  /// a waiter in the recording but finds none in the simulation (the
  /// waiter has not arrived yet under the different schedule) is
  /// remembered here and consumed by the next arriving waiter.  Without
  /// it the signal would be lost and the recorded waiter would sleep
  /// forever — the condition-variable hazard of paper §6.
  std::int64_t pending_signals = 0;
  /// The paper's barrier rule: a cond_broadcast that released N threads
  /// in the recording blocks the broadcaster until N threads are
  /// waiting in the simulation, then releases them all ("the last
  /// thread arriving at the barrier releases all the waiting threads").
  struct PendingBroadcast {
    ThreadId broadcaster = ult::kNoThread;
    std::int64_t needed = 0;
  };
  std::optional<PendingBroadcast> pending;
};

struct SimRwlock {
  int readers = 0;
  ThreadId writer = ult::kNoThread;
  int waiting_writers = 0;
  WaitQueue reader_q;
  WaitQueue writer_q;
};

/// Lazily-created objects of one kind.  The compiler assigns per-kind
/// sequential ids, so small ids index a deque directly (a deque keeps
/// references stable across growth — the engine holds references while
/// creating other objects); stray large ids from hand-written traces
/// fall back to a map.
template <typename T>
class ObjectSlab {
 public:
  T& at(std::uint32_t id) {
    if (id < kDenseLimit) {
      if (id >= dense_.size()) dense_.resize(id + 1);
      return dense_[id];
    }
    return sparse_[id];
  }

 private:
  static constexpr std::uint32_t kDenseLimit = 4096;
  std::deque<T> dense_;
  std::map<std::uint32_t, T> sparse_;
};

/// Object tables keyed by the trace's per-kind ids.
struct ObjectTable {
  ObjectSlab<SimMutex> mutexes;
  ObjectSlab<SimSema> semas;
  ObjectSlab<SimCond> conds;
  ObjectSlab<SimRwlock> rwlocks;

  SimMutex& mutex(std::uint32_t id) { return mutexes.at(id); }
  SimSema& sema(std::uint32_t id) { return semas.at(id); }
  SimCond& cond(std::uint32_t id) { return conds.at(id); }
  SimRwlock& rwlock(std::uint32_t id) { return rwlocks.at(id); }
};

}  // namespace vppb::core
