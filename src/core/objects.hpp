// Simulated synchronization objects.  Semantics mirror src/solaris
// (priority-ordered FIFO wakeups, direct handoff), with the replay
// rules of paper §3.2 applied by the engine.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "core/compiler.hpp"
#include "trace/event.hpp"
#include "ult/wait_queue.hpp"

namespace vppb::core {

using ult::ThreadId;
using ult::WaitQueue;

struct SimMutex {
  ThreadId owner = ult::kNoThread;
  WaitQueue waiters;

  void reset() {
    owner = ult::kNoThread;
    waiters.clear();
  }
};

struct SimSema {
  std::int64_t count = 0;
  WaitQueue waiters;

  void reset() {
    count = 0;
    waiters.clear();
  }
};

struct SimCond {
  WaitQueue waiters;
  /// Replay rule symmetric to the barrier rule: a cond_signal that woke
  /// a waiter in the recording but finds none in the simulation (the
  /// waiter has not arrived yet under the different schedule) is
  /// remembered here and consumed by the next arriving waiter.  Without
  /// it the signal would be lost and the recorded waiter would sleep
  /// forever — the condition-variable hazard of paper §6.
  std::int64_t pending_signals = 0;
  /// The paper's barrier rule: a cond_broadcast that released N threads
  /// in the recording blocks the broadcaster until N threads are
  /// waiting in the simulation, then releases them all ("the last
  /// thread arriving at the barrier releases all the waiting threads").
  struct PendingBroadcast {
    ThreadId broadcaster = ult::kNoThread;
    std::int64_t needed = 0;
  };
  std::optional<PendingBroadcast> pending;

  void reset() {
    waiters.clear();
    pending_signals = 0;
    pending.reset();
  }
};

struct SimRwlock {
  int readers = 0;
  ThreadId writer = ult::kNoThread;
  int waiting_writers = 0;
  WaitQueue reader_q;
  WaitQueue writer_q;

  void reset() {
    readers = 0;
    writer = ult::kNoThread;
    waiting_writers = 0;
    reader_q.clear();
    writer_q.clear();
  }
};

/// Objects of one kind, keyed by the compiler's per-kind sequential
/// ids.  The dense table is sized once per run from the FlatProgram's
/// id bounds and NEVER grows mid-run, so references handed out by at()
/// stay valid while the engine creates or wakes other objects of the
/// same kind (the unlock → reacquire chain holds one mutex reference
/// while queueing on another).  Stray ids beyond the presized range —
/// hand-written traces replayed without hints, or ids past the dense
/// cap — land in a node-stable map.
template <typename T>
class ObjectSlab {
 public:
  /// Sizes the dense table for ids [0, ids) (capped) and resets every
  /// object to its initial state, keeping allocated storage — the
  /// wait-queue buffers survive, which is what makes a reused engine
  /// workspace allocation-free in steady state.
  void configure(std::uint32_t ids) {
    const std::size_t want = std::min<std::size_t>(ids, kDenseLimit);
    if (want > dense_.size()) dense_.resize(want);
    for (T& obj : dense_) obj.reset();
    sparse_.clear();
  }

  T& at(std::uint32_t id) {
    if (id < dense_.size()) return dense_[id];
    return sparse_[id];
  }

 private:
  static constexpr std::uint32_t kDenseLimit = 1 << 20;
  std::vector<T> dense_;
  std::map<std::uint32_t, T> sparse_;
};

/// Object tables keyed by the trace's per-kind ids.
struct ObjectTable {
  ObjectSlab<SimMutex> mutexes;
  ObjectSlab<SimSema> semas;
  ObjectSlab<SimCond> conds;
  ObjectSlab<SimRwlock> rwlocks;

  /// Presizes every slab from the program's id bounds and resets all
  /// object state for a fresh run.
  void configure(const FlatProgram& fp) {
    mutexes.configure(fp.mutex_ids);
    semas.configure(fp.sema_ids);
    conds.configure(fp.cond_ids);
    rwlocks.configure(fp.rwlock_ids);
  }

  SimMutex& mutex(std::uint32_t id) { return mutexes.at(id); }
  SimSema& sema(std::uint32_t id) { return semas.at(id); }
  SimCond& cond(std::uint32_t id) { return conds.at(id); }
  SimRwlock& rwlock(std::uint32_t id) { return rwlocks.at(id); }
};

}  // namespace vppb::core
