// The "information describing the predicted execution" (paper fig. 1,
// box g): a full timeline of thread states, the simulated events, and
// per-thread statistics.  This is the Visualizer's input and the source
// of the speed-up numbers in Table 1.
#pragma once

#include <map>
#include <vector>

#include "trace/event.hpp"
#include "util/time.hpp"

namespace vppb::core {

using trace::ThreadId;

/// Thread state over a timeline segment, as drawn by the Visualizer:
/// running = solid line, runnable-but-not-running = grey line, blocked =
/// no line (paper §3.3).
enum class SegState : std::uint8_t {
  kRunning,
  kRunnable,
  kBlocked,
  kSleeping,
};

const char* to_string(SegState s);

struct Segment {
  ThreadId tid = 0;
  SimTime start;
  SimTime end;
  SegState state = SegState::kRunning;
  int cpu = -1;  ///< only meaningful while kRunning
};

/// One simulated thread-library event (an arrow/symbol in the execution
/// flow graph).  Carries everything the event "popup" shows: timing,
/// CPU, and the source location inherited from the recording.
struct SimEvent {
  SimTime at;    ///< when the call reached the library in the simulation
  SimTime done;  ///< when the call returned
  ThreadId tid = 0;
  trace::Op op = trace::Op::kThrExit;
  trace::ObjectRef obj;
  std::int64_t outcome = 0;
  std::uint32_t loc = 0;  ///< source-location index into the source trace
  int cpu = -1;           ///< CPU the thread ran on when the event started
};

struct ThreadStats {
  ThreadId tid = 0;
  SimTime created_at;
  SimTime exited_at;
  SimTime cpu_time;       ///< time actually working (popup: "working")
  SimTime runnable_time;  ///< ready but no LWP/CPU (red in the graph)
  SimTime blocked_time;
  SimTime sleeping_time;
};

struct CpuStats {
  int cpu = -1;
  SimTime busy;
  std::uint64_t dispatches = 0;  ///< LWP switches onto this CPU
};

/// One interval of an LWP's life: which thread it carried and whether
/// it held a CPU.  The raw material of the LWP gantt view, which makes
/// the two-level multiplexing (threads -> LWPs -> CPUs) visible.
struct LwpSegment {
  int lwp = -1;
  SimTime start;
  SimTime end;
  ThreadId thread = 0;  ///< attached thread (0 = idle LWP)
  int cpu = -1;         ///< -1 while waiting for a CPU
};

/// Per-LWP accounting (the simulated kernel threads of paper §3.2).
struct LwpStats {
  int id = -1;
  bool dedicated = false;  ///< owned by a bound thread
  SimTime running;         ///< time spent on a CPU
  std::uint64_t dispatches = 0;
  int final_ts_level = 0;  ///< TS level at the end of the run
};

/// Self-observation of one simulation run: scheduler activity counters
/// plus host-side timing.  The counters are deterministic (identical
/// for identical inputs); the wall-clock fields are not, so none of
/// this participates in digest() — adding it cannot disturb the pinned
/// regression digests.
struct EngineCounters {
  std::uint64_t steps = 0;             ///< trace operations applied
  std::uint64_t dispatches = 0;        ///< LWP→CPU placements (context switches)
  std::uint64_t migrations = 0;        ///< placements onto a different CPU
  std::uint64_t preemptions = 0;       ///< running LWPs evicted by priority
  std::uint64_t timer_wakeups = 0;     ///< sleep/timeout expirations processed
  std::uint64_t sched_passes = 0;      ///< dispatch sweeps over the ready queues
  std::uint64_t max_runq_depth = 0;    ///< most LWPs ever waiting for a CPU
  double wall_seconds = 0.0;           ///< host time inside Engine::run
  double steps_per_sec = 0.0;          ///< steps / wall_seconds (0 if instant)
};

struct SimResult {
  SimTime total;              ///< predicted execution time
  SimTime recorded_duration;  ///< the monitored uni-processor time
  double speedup = 0.0;       ///< recorded_duration / total
  int cpus = 1;
  int lwps = 1;
  EngineCounters engine;      ///< self-observation; excluded from digest()

  std::vector<Segment> segments;  ///< time-ordered per emission
  std::vector<SimEvent> events;   ///< time-ordered
  std::map<ThreadId, ThreadStats> threads;
  std::vector<CpuStats> cpu_stats;
  std::vector<LwpStats> lwp_stats;
  std::vector<LwpSegment> lwp_segments;  ///< when build_timeline is set

  /// Segments of one LWP, in time order.
  std::vector<LwpSegment> segments_of_lwp(int lwp) const;

  /// Segments of one thread, in time order.
  std::vector<Segment> thread_segments(ThreadId tid) const;

  /// Number of running / runnable threads at an instant.
  struct Parallelism {
    int running = 0;
    int runnable = 0;
  };
  Parallelism parallelism_at(SimTime t) const;

  /// Sampled parallelism profile over [0, total] with the given number
  /// of sample points — the data behind the paper's parallelism graph.
  struct ProfilePoint {
    SimTime at;
    int running = 0;
    int runnable = 0;
  };
  std::vector<ProfilePoint> parallelism_profile(std::size_t samples) const;

  /// Validates timeline invariants: segments per thread are contiguous
  /// and non-overlapping, running counts never exceed cpus, events lie
  /// within the run.  Throws vppb::Error on violation.
  void validate() const;
};

/// Order-sensitive FNV-1a fingerprint of everything in the result:
/// totals, every segment, event, thread/CPU/LWP stat and LWP segment.
/// Two results digest equally iff the predicted schedules are
/// byte-identical — the regression tests use this to pin the engine's
/// output across scheduler rewrites.
std::uint64_t digest(const SimResult& r);

/// Order-sensitive combined fingerprint of a batch of results (FNV-1a
/// over the per-result digests).  A sweep digests the per-CPU-count
/// results in `cpu_counts` order; the prediction service proves its
/// responses bit-identical to the offline path by comparing this value.
std::uint64_t digest(const std::vector<SimResult>& results);

}  // namespace vppb::core
