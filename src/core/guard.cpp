#include "core/guard.hpp"

#include "obs/metrics.hpp"
#include "util/strings.hpp"

namespace vppb::core {
namespace {

struct GuardMetrics {
  obs::Counter* trips;

  static GuardMetrics& get() {
    static GuardMetrics m = [] {
      auto& reg = obs::Registry::global();
      GuardMetrics g;
      g.trips = &reg.counter("vppb_guard_trips_total",
                             "Runs terminated by a RunGuard budget");
      return g;
    }();
    return m;
  }
};

[[noreturn]] void trip(GuardTrip kind, std::string msg) {
  GuardMetrics::get().trips->inc();
  throw BudgetExceeded(kind, msg);
}

}  // namespace

const char* guard_trip_name(GuardTrip t) {
  switch (t) {
    case GuardTrip::kNone: return "none";
    case GuardTrip::kCancelled: return "cancelled";
    case GuardTrip::kSteps: return "steps";
    case GuardTrip::kWallTime: return "wall-time";
    case GuardTrip::kSimTime: return "sim-time";
    case GuardTrip::kResultBytes: return "result-bytes";
  }
  return "?";
}

void RunGuard::arm(const RunLimits& limits) {
  limits_ = limits;
  if (limits_.max_wall_ms != 0) {
    wall_deadline_ = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(limits_.max_wall_ms);
  }
  sim_deadline_ = limits_.max_sim_ms != 0 ? SimTime::millis(limits_.max_sim_ms)
                                          : SimTime::max();
}

void RunGuard::trip_cancelled() const {
  trip(GuardTrip::kCancelled, "run cancelled");
}

void RunGuard::trip_steps(std::uint64_t steps) const {
  trip(GuardTrip::kSteps,
       strprintf("step budget exceeded: %llu steps > max %llu",
                 static_cast<unsigned long long>(steps),
                 static_cast<unsigned long long>(limits_.max_steps)));
}

void RunGuard::trip_wall() const {
  trip(GuardTrip::kWallTime,
       strprintf("wall-time budget exceeded: ran longer than %lld ms",
                 static_cast<long long>(limits_.max_wall_ms)));
}

void RunGuard::trip_sim(SimTime t) const {
  trip(GuardTrip::kSimTime,
       strprintf("simulated-time budget exceeded: %s > max %lld ms",
                 t.to_string().c_str(),
                 static_cast<long long>(limits_.max_sim_ms)));
}

void RunGuard::trip_result_bytes(std::size_t bytes) const {
  trip(GuardTrip::kResultBytes,
       strprintf("result-size budget exceeded: ~%zu bytes > max %llu", bytes,
                 static_cast<unsigned long long>(limits_.max_result_bytes)));
}

}  // namespace vppb::core
