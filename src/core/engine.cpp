#include "core/engine.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <sstream>
#include <vector>

#include "core/dispq.hpp"
#include "core/objects.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/error.hpp"

namespace vppb::core {
namespace {

using trace::Op;


constexpr int kInitialTsLevel = 29;  // the Solaris TS default user level

/// Simulated thread control block.
struct Th {
  ThreadId tid = 0;
  /// Flat step cursor into the FlatProgram's arena-backed stream: the
  /// hot path advances one pointer instead of a (map node, index) pair.
  const Step* sp = nullptr;
  const Step* sp_end = nullptr;
  const FlatThread* ft = nullptr;

  enum class St { kUnborn, kReady, kRunning, kBlocked, kSleeping, kDone };
  St st = St::kUnborn;

  /// kCompute runs Step::cpu then applies the op; kOpCost runs the
  /// (possibly scaled) Step::op_cost then advances to the next step.
  enum class Phase { kCompute, kOpCost };
  Phase phase = Phase::kCompute;
  SimTime remaining;

  SimTime ready_at;  ///< dispatch eligibility when kReady (comm delay)
  SimTime wake_at;   ///< timer when kSleeping

  int prio = 0;
  bool prio_overridden = false;
  bool suspended = false;      ///< thr_suspend replay: ineligible to run
  bool pending_suspend = false;
  bool bound = false;
  int bound_cpu = -1;
  int lwp = -1;
  int last_cpu = -1;
  std::uint64_t lib_seq = 0;

  /// What a blocked/sleeping thread is waiting for, so the waker can
  /// finish the operation on its behalf (direct handoff).
  enum class Wait {
    kNone,
    kMutex,
    kSema,
    kCond,            ///< in cond queue; then must acquire wait_mutex
    kSleepThenMutex,  ///< timed-out cond_timedwait: delay, then mutex
    kRwRead,
    kRwWrite,
    kJoin,
    kJoinAny,
    kBarrier,         ///< broadcaster blocked by the barrier rule
    kMutexReacquire,  ///< re-taking mutexes released at a barrier block
    kIoSleep,         ///< extension: waiting out a recorded I/O latency
  };
  Wait wait = Wait::kNone;
  std::uint32_t wait_obj = 0;
  std::uint32_t wait_mutex = 0;
  ThreadId join_target = 0;

  bool reaped = false;
  bool exited = false;

  // Library-level dispatch-queue bookkeeping.
  std::int32_t idx = -1;        ///< position in the dense thread table
  bool in_rq = false;           ///< queued waiting for an LWP
  std::int32_t rq_bucket = -1;  ///< bucket it was queued into
  std::uint32_t rq_epoch = 0;   ///< stamp for lazy queue deletion

  // Timeline bookkeeping.
  SimTime state_since;
  SegState seg_state = SegState::kBlocked;
  int seg_cpu = -1;
  std::ptrdiff_t open_event = -1;

  /// On the phase-completion due list (see Engine::note_phase_due).
  bool in_phase_due = false;

  const Step& current_step() const { return *sp; }
  bool has_steps_left() const { return sp < sp_end; }
};

/// Simulated LWP (kernel thread).
struct Lwp {
  int id = -1;
  int ts_level = kInitialTsLevel;
  SimTime quantum_left;
  std::uint64_t disp_seq = 0;
  SimTime running_total;     ///< accumulated on-CPU time (stats)
  std::uint64_t dispatches = 0;
  SimTime enqueued_at;       ///< when it last became dispatchable-not-running
  ThreadId thread = ult::kNoThread;
  struct Th* th = nullptr;   ///< cached pointer to the attached thread
  SimTime seg_since;         ///< LWP-gantt bookkeeping
  ThreadId seg_thread = 0;
  int seg_cpu = -1;
  int cpu = -1;
  bool dedicated = false;    ///< owned by a bound thread
  int bound_cpu = -1;
  bool slept = false;        ///< pending sleep-return boost
  bool in_free_heap = false; ///< queued in the free-LWP heap
  bool in_unplaced = false;  ///< on the attached-but-unplaced list
  bool in_quantum_due = false;  ///< on the quantum-expiry due list
};

class Engine {
 public:
  Engine() = default;

  /// One full simulation against this engine's workspace.  Every
  /// container is reset — not reallocated — at entry, so repeat runs
  /// (the batched sweep path) are allocation-free in steady state.
  /// The reset also recovers from a previous run that threw (guard
  /// budget trips leave the workspace dirty).
  SimResult run(const CompiledTrace& compiled, const SimConfig& cfg,
                const RunGuard* guard);

 private:
  SimResult run_body();
  void reset_workspace();

  /// Any mutation that can change a scheduling decision (thread state,
  /// queue membership, placement, priority, eligibility) bumps this
  /// clock; assign() and the contention probe memoize on it.
  void note_sched_change() { ++sched_clock_; }

  /// Called wherever a thread can end up running with zero remaining
  /// demand — the phase-completion condition process_due_now() used to
  /// rediscover by scanning every CPU.
  void note_phase_due(Th& t) {
    if (!t.in_phase_due && t.st == Th::St::kRunning && t.remaining.is_zero()) {
      t.in_phase_due = true;
      phase_due_.push_back(t.idx);
    }
  }

  /// Same for the quantum-expiry condition (placed LWP, quantum spent).
  void note_quantum_due(Lwp& lwp) {
    if (!lwp.in_quantum_due && lwp.cpu >= 0 && lwp.quantum_left.is_zero()) {
      lwp.in_quantum_due = true;
      quantum_due_.push_back(lwp.id);
    }
  }

  // ---- resource governance ----
  // Per-step checkpoint: cancellation + step budget every step; the
  // wall clock and result footprint only every 1024 steps (a clock
  // read per step would be measurable).
  void guard_step_check() {
    guard_->check_cancel();
    guard_->check_steps(ec_.steps);
    if ((ec_.steps & 1023u) == 0) {
      guard_->check_wall();
      guard_->check_result_bytes(approx_result_bytes());
    }
  }

  std::size_t approx_result_bytes() const {
    return result_.segments.capacity() * sizeof(Segment) +
           result_.events.capacity() * sizeof(SimEvent) +
           result_.lwp_segments.capacity() * sizeof(LwpSegment);
  }

  // ---- setup ----
  void init_threads();
  Lwp& new_lwp(bool dedicated, int bound_cpu);

  // ---- scheduling ----
  void assign();
  void attach_unbound_threads();
  void dispatch_lwps();
  void dispatch_linear();
  void dispatch_queued();
  void place(Lwp& lwp, int cpu);
  void unplace(Lwp& lwp);
  void emit_lwp_segment(Lwp& lwp);
  bool dispatchable(const Lwp& lwp) const;
  bool lwp_waiting_for_cpu() const;

  // ---- dispatch-queue bookkeeping ----
  int rank_of(int prio) const;
  void rq_put(Th& t);       ///< sync a thread's library-queue membership
  void rq_take_out(Th& t);  ///< invalidate its queue entry, if any
  Lwp* acquire_free_lwp();
  void mark_free(Lwp& lwp);
  void mark_unplaced(Lwp& lwp);
  void defer_ready(const Th& t);  ///< arm a timer for a future ready_at
  void push_timer(SimTime when, const Th& t, bool sleep);

  // ---- execution ----
  bool process_due_now();
  /// O(1) probe: can process_due_now() possibly do anything at now_?
  /// Every due condition it handles is fed by the due lists or the
  /// timer heap, so empty lists + no ripe timer means a guaranteed
  /// no-op call, which the fixpoint loop skips.
  bool any_due() const {
    return !phase_due_.empty() || !quantum_due_.empty() ||
           (!timers_.empty() && timers_.front().when <= now_);
  }
  void apply_op(Th& t);
  void enter_op_cost(Th& t);
  void advance_step(Th& t);
  void finish_thread(Th& t);

  // ---- blocking / waking ----
  void block(Th& t, Th::Wait wait, std::uint32_t obj);
  void unblock(Th& t);
  void complete_op_for(Th& t);
  bool try_take_mutex(Th& t, std::uint32_t mutex_id);
  void do_unlock_mutex(Th& t, std::uint32_t mutex_id);
  void continue_reacquire(Th& t);
  void acquire_mutex_or_block(Th& t, std::uint32_t mutex_id);
  void wake_from_cond(Th& t);
  void spawn_thread(ThreadId tid, SimTime at);
  void thread_exited(Th& t);
  SimTime wake_delay(const Th& woken) const;

  // ---- op handlers ----
  void op_create(Th& t, const Step& s);
  void op_join(Th& t, const Step& s);
  void op_mutex(Th& t, const Step& s);
  void op_sema(Th& t, const Step& s);
  void op_cond(Th& t, const Step& s);
  void op_rwlock(Th& t, const Step& s);

  // ---- time & bookkeeping ----
  double rate_factor() const;
  SimTime next_event_time();
  void advance_to(SimTime when);
  void set_state(Th& t, Th::St st);
  void emit_segment(Th& t, SimTime upto);
  SegState seg_state_of(Th::St st) const;
  [[noreturn]] void replay_deadlock();

  Th& th(ThreadId tid);
  int idx_of(ThreadId tid) const;
  bool exists(ThreadId tid) const { return idx_of(tid) >= 0; }

  const CompiledTrace* compiled_ = nullptr;
  const SimConfig* cfg_ = nullptr;
  const RunGuard* guard_ = nullptr;  ///< null = no governance, zero cost
  /// The flat program being replayed.  The shared_ptr keeps the arena
  /// alive (and pins its address) for the whole run even if the caller
  /// drops the CompiledTrace: every Th::sp points into it.
  std::shared_ptr<const FlatProgram> prog_hold_;
  const FlatProgram* prog_ = nullptr;

  SimTime now_;
  // Dense thread table in ascending-tid order (Th::idx indexes it; the
  // table never grows after init, so Th* stay stable).
  std::vector<Th> threads_;
  std::vector<ThreadId> tids_;        ///< idx -> tid (sorted)
  std::vector<std::int32_t> tid_to_idx_;  ///< tid -> idx when tids are small
  std::vector<Lwp> lwps_;
  std::vector<ThreadId> cpu_running_;  // per CPU: running thread (by LWP)
  std::vector<int> cpu_lwp_;           // per CPU: placed LWP id (-1 idle)
  int idle_cpus_ = 0;                  // CPUs with no placed LWP
  ObjectTable objects_;
  std::vector<ThreadId> zombies_;      // exited, unreaped, in exit order
  WaitQueue any_joiners_;
  std::vector<WaitQueue> joiners_;     // by thread idx
  std::uint64_t next_lib_seq_ = 1;
  std::uint64_t next_disp_seq_ = 1;
  int unbound_pool_size_ = 0;
  int unbound_lwps_made_ = 0;
  int running_count_ = 0;

  // Library level: ready, unbound, unattached threads bucketed by user
  // priority (rank into prios_), ordered by lib_seq within a bucket.
  std::vector<int> prios_;  ///< sorted distinct user priorities
  DispQueue<Th*> rq_;

  // Kernel level: scratch queues rebuilt per dispatch decision.
  struct KWaiter {
    Lwp* lwp;
    int uprio;
    int ts;
    std::uint64_t seq;
  };
  DispQueue<KWaiter> kq_;                       ///< unbound-CPU waiters
  bool kq_ready_ = false;                       ///< kq_ buckets allocated
  std::vector<std::vector<KWaiter>> kq_bound_;  ///< per-CPU bound waiters
  std::vector<int> kq_bound_touched_;

  /// Idle non-dedicated LWPs, one bit per LWP id.  Attach reuses the
  /// lowest-numbered free LWP first (like the heap it replaces), found
  /// by a countr_zero scan from free_hint_, the lowest word that can be
  /// non-zero.  free_count_ gives O(1) emptiness.
  std::vector<std::uint64_t> free_bits_;
  int free_hint_ = 0;
  std::size_t free_count_ = 0;
  /// LWPs with a thread but no CPU (stale entries dropped lazily).
  std::vector<int> unplaced_;
  /// Entries of unplaced_ that are still attached and still CPU-less —
  /// i.e. not stale.  Zero lets dispatch_lwps() skip the scan outright
  /// (stale husks then wait for the next live scan to be compacted).
  std::size_t unplaced_live_ = 0;

  /// Incremental due lists, replacing the per-iteration CPU scans of
  /// process_due_now(): every site that can make a running thread's
  /// remaining demand zero (or zero an LWP's quantum) enrolls it here,
  /// and the consumer revalidates — exactly the candidate-collection +
  /// revalidation the scans performed, without touching the CPUs that
  /// cannot be due.  The in_* flags keep entries unique.
  std::vector<std::int32_t> phase_due_;   ///< thread idx, unordered
  std::vector<int> quantum_due_;          ///< lwp id, unordered

  /// Pending wakeups: sleeper timers (wake_at) and future dispatch
  /// eligibility (ready_at), validated lazily against the thread.
  struct Timer {
    SimTime when;
    std::int32_t idx;
    bool sleep;
  };
  struct TimerLater {
    bool operator()(const Timer& a, const Timer& b) const {
      return a.when > b.when;
    }
  };
  std::vector<Timer> timers_;  ///< min-heap on `when`

  // Reusable scratch (hoisted out of the per-event hot paths).
  std::vector<int> due_scratch_;
  std::vector<Lwp*> disp_scratch_;
  std::vector<std::uint32_t> mutex_scratch_;

  // Per-thread cold data, indexed by Th::idx.  Out-of-line so Th stays
  // trivially copyable and the per-run thread-table rebuild is a plain
  // copy; the inner vectors keep their capacity across runs.
  std::vector<ThreadStats> stats_;
  std::vector<std::vector<std::uint32_t>> held_of_;   ///< mutexes held
  std::vector<std::vector<std::uint32_t>> reacq_of_;  ///< barrier re-take list
  std::size_t done_count_ = 0;  ///< threads in St::kDone

  // Scheduling memo.  assign() is a pure function of the scheduling
  // state; sched_clock_ (bumped by note_sched_change) plus now_
  // fingerprint that state.  After a pass that verifiably changed
  // nothing, identical fingerprints skip the pass outright — which is
  // exactly the re-run the old code performed after every event whose
  // op touched no scheduling state (uncontended locks, step advances).
  std::uint64_t sched_clock_ = 0;
  std::uint64_t last_assign_clock_ = 0;
  SimTime last_assign_now_;
  bool assign_memo_valid_ = false;
  /// Same fingerprint scheme for the is-any-LWP-waiting probe, which
  /// next_event_time and the quantum-expiry scan both issue per event.
  mutable std::uint64_t contended_clock_ = 0;
  mutable SimTime contended_now_;
  mutable bool contended_valid_ = false;
  mutable bool contended_val_ = false;

  /// Self-observation: plain (non-atomic) increments on the hot paths,
  /// published into result_.engine once at the end of run().  Keeping
  /// them out of the registry until then is what keeps the
  /// instrumented engine within the < 3% overhead budget.
  EngineCounters ec_;

  SimResult result_;
};

int Engine::idx_of(ThreadId tid) const {
  if (!tid_to_idx_.empty()) {
    return tid >= 0 && tid < static_cast<ThreadId>(tid_to_idx_.size())
               ? tid_to_idx_[static_cast<std::size_t>(tid)]
               : -1;
  }
  const auto it = std::lower_bound(tids_.begin(), tids_.end(), tid);
  return it != tids_.end() && *it == tid
             ? static_cast<int>(it - tids_.begin())
             : -1;
}

Th& Engine::th(ThreadId tid) {
  const int idx = idx_of(tid);
  VPPB_CHECK_MSG(idx >= 0, "simulated thread T" << tid << " does not exist");
  return threads_[static_cast<std::size_t>(idx)];
}

int Engine::rank_of(int prio) const {
  // prios_ holds every priority a thread can ever have in this run
  // (collected at init), so the lookup always hits.
  return static_cast<int>(
      std::lower_bound(prios_.begin(), prios_.end(), prio) - prios_.begin());
}

void Engine::rq_take_out(Th& t) {
  if (!t.in_rq) return;
  t.in_rq = false;
  ++t.rq_epoch;
  rq_.invalidate(t.rq_bucket);
}

/// Brings the library dispatch queue in line with the thread's state:
/// requeued (fresh bucket/seq) when it is ready, unbound, unattached
/// and not suspended; dequeued otherwise.  Idempotent.
void Engine::rq_put(Th& t) {
  note_sched_change();
  rq_take_out(t);
  if (t.bound || t.suspended || t.lwp != -1 || t.st != Th::St::kReady) return;
  t.rq_bucket = rank_of(t.prio);
  t.in_rq = true;
  rq_.insert(t.rq_bucket, &t, t.lib_seq, t.rq_epoch);
}

void Engine::mark_free(Lwp& lwp) {
  if (lwp.dedicated || lwp.in_free_heap) return;
  note_sched_change();
  lwp.in_free_heap = true;
  const std::size_t w = static_cast<std::size_t>(lwp.id) >> 6;
  if (free_bits_.size() <= w) free_bits_.resize(w + 1, 0);
  free_bits_[w] |= 1ull << (lwp.id & 63);
  if (static_cast<int>(w) < free_hint_) free_hint_ = static_cast<int>(w);
  ++free_count_;
}

void Engine::mark_unplaced(Lwp& lwp) {
  // Only ever called on an attached, CPU-less LWP that is not already
  // counted (placement and detachment both decrement), so the live
  // count moves in lock-step with the "attached and unplaced" set even
  // when the vector still holds the physical husk of an earlier stint.
  note_sched_change();
  ++unplaced_live_;
  if (lwp.in_unplaced) return;
  lwp.in_unplaced = true;
  unplaced_.push_back(lwp.id);
}

void Engine::push_timer(SimTime when, const Th& t, bool sleep) {
  timers_.push_back(Timer{when, t.idx, sleep});
  std::push_heap(timers_.begin(), timers_.end(), TimerLater{});
}

void Engine::defer_ready(const Th& t) {
  if (t.ready_at > now_) push_timer(t.ready_at, t, /*sleep=*/false);
}

SegState Engine::seg_state_of(Th::St st) const {
  switch (st) {
    case Th::St::kRunning: return SegState::kRunning;
    case Th::St::kReady: return SegState::kRunnable;
    case Th::St::kSleeping: return SegState::kSleeping;
    default: return SegState::kBlocked;
  }
}

void Engine::emit_segment(Th& t, SimTime upto) {
  if (upto > t.state_since) {
    if (cfg_->build_timeline) {
      result_.segments.push_back(
          Segment{t.tid, t.state_since, upto, t.seg_state, t.seg_cpu});
    }
    const SimTime d = upto - t.state_since;
    ThreadStats& stats = stats_[static_cast<std::size_t>(t.idx)];
    switch (t.seg_state) {
      case SegState::kRunning: stats.cpu_time += d; break;
      case SegState::kRunnable: stats.runnable_time += d; break;
      case SegState::kBlocked: stats.blocked_time += d; break;
      case SegState::kSleeping: stats.sleeping_time += d; break;
    }
  }
  t.state_since = upto;
}

void Engine::set_state(Th& t, Th::St st) {
  note_sched_change();
  if (t.st == Th::St::kRunning && st != Th::St::kRunning) --running_count_;
  if (t.st != Th::St::kRunning && st == Th::St::kRunning) ++running_count_;
  if (st == Th::St::kDone && t.st != Th::St::kDone) ++done_count_;
  emit_segment(t, now_);
  t.st = st;
  t.seg_state = seg_state_of(st);
  if (st != Th::St::kRunning) t.seg_cpu = -1;
}

// ---------------------------------------------------------------------------
// Setup

/// Flushes the LWP's current (thread, cpu) interval to the gantt and
/// restarts it with the current attachment/placement.
void Engine::emit_lwp_segment(Lwp& lwp) {
  // The seg_* fields exist only to feed the gantt; skip the bookkeeping
  // entirely when no timeline is wanted.
  if (!cfg_->build_timeline) return;
  if (now_ > lwp.seg_since && (lwp.seg_thread != 0 || lwp.seg_cpu >= 0)) {
    result_.lwp_segments.push_back(LwpSegment{
        lwp.id, lwp.seg_since, now_, lwp.seg_thread, lwp.seg_cpu});
  }
  lwp.seg_since = now_;
  lwp.seg_thread = lwp.thread == ult::kNoThread ? 0 : lwp.thread;
  lwp.seg_cpu = lwp.cpu;
}

Lwp& Engine::new_lwp(bool dedicated, int bound_cpu) {
  Lwp lwp;
  lwp.id = static_cast<int>(lwps_.size());
  lwp.quantum_left = cfg_->sched.ts_table.entry(lwp.ts_level).quantum;
  lwp.dedicated = dedicated;
  lwp.bound_cpu = bound_cpu;
  lwp.enqueued_at = now_;
  lwps_.push_back(lwp);
  return lwps_.back();
}

void Engine::init_threads() {
  // One-pass remap of the trace's thread ids onto dense indices (the
  // flat table is in ascending tid order).  Rebuilt per run — Th is a
  // plain copyable record now, so this is a bulk copy into storage the
  // previous run already sized.
  const std::size_t count = prog_->n_threads;
  threads_.clear();
  threads_.reserve(count);
  tids_.clear();
  tids_.reserve(count);
  tid_to_idx_.clear();
  for (std::size_t i = 0; i < count; ++i) {
    const FlatThread& ft = prog_->threads[i];
    Th t;
    t.tid = ft.tid;
    t.idx = static_cast<std::int32_t>(i);
    t.sp = ft.steps;
    t.sp_end = ft.steps + ft.n_steps;
    t.ft = &ft;
    const ThreadPolicy& pol = cfg_->sched.policy_of(ft.tid);
    t.prio_overridden = pol.override_priority;
    t.prio = pol.override_priority ? pol.priority : ft.initial_priority;
    if (pol.override_binding) {
      t.bound = pol.binding != Binding::kUnbound;
      t.bound_cpu = pol.binding == Binding::kBoundCpu ? pol.cpu : -1;
    } else {
      t.bound = ft.bound;
    }
    if (t.bound_cpu >= cfg_->hw.cpus) t.bound_cpu = cfg_->hw.cpus - 1;
    tids_.push_back(ft.tid);
    threads_.push_back(t);
  }
  // Direct tid -> idx table when the ids are reasonably dense;
  // hand-written traces with wild ids fall back to binary search.
  const ThreadId max_tid = tids_.empty() ? 0 : tids_.back();
  if (!tids_.empty() && tids_.front() >= 0 &&
      static_cast<std::size_t>(max_tid) <= 4 * count + 1024) {
    tid_to_idx_.assign(static_cast<std::size_t>(max_tid) + 1, -1);
    for (const Th& t : threads_)
      tid_to_idx_[static_cast<std::size_t>(t.tid)] = t.idx;
  }
  joiners_.resize(count);
  for (WaitQueue& q : joiners_) q.clear();
  stats_.assign(count, ThreadStats{});
  if (held_of_.size() < count) {
    held_of_.resize(count);
    reacq_of_.resize(count);
  }
  for (std::size_t i = 0; i < count; ++i) {
    held_of_[i].clear();
    reacq_of_[i].clear();
  }
  lwps_.clear();
  lwps_.reserve(count + static_cast<std::size_t>(cfg_->hw.cpus) + 4);

  // Every user priority a thread can ever hold: the initial/policy
  // priorities plus every thr_setprio argument in the trace.  The
  // dispatch-queue buckets are ranks into this table.
  prios_.clear();
  prios_.push_back(0);
  for (const Th& t : threads_) prios_.push_back(t.prio);
  prios_.insert(prios_.end(), compiled_->setprio_values.begin(),
                compiled_->setprio_values.end());
  std::sort(prios_.begin(), prios_.end());
  prios_.erase(std::unique(prios_.begin(), prios_.end()), prios_.end());
  rq_.configure(static_cast<int>(prios_.size()));
  // kq_ is configured lazily by dispatch_queued(): its bucket array is
  // prios × TS levels, and most runs never see > 64 waiting LWPs.
  kq_ready_ = false;
  for (auto& list : kq_bound_) list.clear();
  kq_bound_touched_.clear();
  kq_bound_.resize(static_cast<std::size_t>(cfg_->hw.cpus));

  // Per-kind object tables presized from the program's id bounds and
  // reset in place (wait-queue buffers survive).
  objects_.configure(*prog_);

  // Main starts at time zero; threads never created by a logged
  // thr_create (hand-written traces) appear at their first record.
  for (Th& t : threads_) {
    if (t.tid == 1) {
      spawn_thread(t.tid, SimTime::zero());
    } else if (!t.ft->created_in_log) {
      spawn_thread(t.tid, t.ft->first_record_at);
    }
  }
}

void Engine::spawn_thread(ThreadId tid, SimTime at) {
  Th& t = th(tid);
  VPPB_CHECK_MSG(t.st == Th::St::kUnborn, "T" << tid << " spawned twice");
  ThreadStats& stats = stats_[static_cast<std::size_t>(t.idx)];
  stats.tid = tid;
  stats.created_at = at;
  t.state_since = at;
  if (!t.has_steps_left()) {
    t.st = Th::St::kDone;  // metadata-only thread
    t.exited = true;
    ++done_count_;
    return;
  }
  t.remaining = t.current_step().cpu;
  t.phase = Th::Phase::kCompute;
  t.st = Th::St::kReady;
  t.seg_state = SegState::kRunnable;
  t.ready_at = at;
  t.lib_seq = next_lib_seq_++;
  if (t.bound) {
    Lwp& lwp = new_lwp(/*dedicated=*/true, t.bound_cpu);
    lwp.thread = tid;
    lwp.th = &t;
    t.lwp = lwp.id;
    mark_unplaced(lwp);
  } else {
    rq_put(t);
  }
  defer_ready(t);
}

// ---------------------------------------------------------------------------
// Scheduling: library level (threads -> LWPs) and kernel level (LWPs -> CPUs)

bool Engine::dispatchable(const Lwp& lwp) const {
  if (lwp.th == nullptr) return false;
  const Th& t = *lwp.th;
  if (t.suspended) return false;
  if (t.st == Th::St::kRunning) return true;
  return t.st == Th::St::kReady && t.ready_at <= now_;
}

/// Lowest-numbered free non-dedicated LWP, growing the unbound pool
/// lazily (up to its configured size) once the existing ones are busy.
Lwp* Engine::acquire_free_lwp() {
  while (free_count_ > 0) {
    std::size_t w = static_cast<std::size_t>(free_hint_);
    while (free_bits_[w] == 0) ++w;
    const std::uint64_t word = free_bits_[w];
    const int id = static_cast<int>((w << 6) +
                   static_cast<std::size_t>(std::countr_zero(word)));
    free_bits_[w] = word & (word - 1);
    free_hint_ = static_cast<int>(w);  // words below were seen empty
    --free_count_;
    Lwp& lwp = lwps_[static_cast<std::size_t>(id)];
    lwp.in_free_heap = false;
    if (!lwp.dedicated && lwp.thread == ult::kNoThread) return &lwp;
  }
  if (unbound_lwps_made_ < unbound_pool_size_) {
    ++unbound_lwps_made_;
    return &new_lwp(/*dedicated=*/false, -1);
  }
  return nullptr;
}

void Engine::attach_unbound_threads() {
  // When no LWP could possibly be acquired, the scan below would only
  // take the best eligible thread and put it straight back at the same
  // seq — a telescope this gate collapses.  (Stale free-heap entries
  // cannot exist: an entry is popped the moment it is consumed, so a
  // queued id is always genuinely free.)
  if (free_count_ == 0 && unbound_lwps_made_ >= unbound_pool_size_) return;
  // Nothing queued for an LWP: the scan below would walk an empty
  // bitmap.  (Live count, not emptiness: lazily-deleted husks do not
  // make a scan productive.)
  if (rq_.live() == 0) return;
  // Pop eligible threads off the library dispatch queue in (priority,
  // FIFO) order and pair each with the lowest free LWP — the same
  // pairing the sort-then-scan produced, without building either list.
  for (;;) {
    Th* t = rq_.scan([this](Th* cand, std::uint32_t epoch) {
      if (epoch != cand->rq_epoch) return DispQueue<Th*>::Visit::kDrop;
      if (cand->ready_at > now_) return DispQueue<Th*>::Visit::kSkip;
      return DispQueue<Th*>::Visit::kTake;
    });
    if (t == nullptr) return;
    t->in_rq = false;
    ++t->rq_epoch;
    Lwp* lwp = acquire_free_lwp();
    if (lwp == nullptr) {
      // No LWP for it: back to its exact queue position (same seq).
      t->in_rq = true;
      rq_.insert(t->rq_bucket, t, t->lib_seq, t->rq_epoch);
      return;
    }
    emit_lwp_segment(*lwp);
    lwp->thread = t->tid;
    lwp->th = t;
    lwp->seg_thread = t->tid;
    t->lwp = lwp->id;
    if (lwp->slept) {
      // The LWP was idle (asleep in the kernel); returning to the
      // dispatch queue boosts its TS level (ts_slpret).
      if (cfg_->sched.ts_dynamics) {
        lwp->ts_level = cfg_->sched.ts_table.entry(lwp->ts_level).on_sleep_return;
        lwp->quantum_left = cfg_->sched.ts_table.entry(lwp->ts_level).quantum;
      }
      lwp->slept = false;
    }
    lwp->disp_seq = next_disp_seq_++;
    lwp->enqueued_at = now_;
    mark_unplaced(*lwp);
  }
}

void Engine::place(Lwp& lwp, int cpu) {
  emit_lwp_segment(lwp);
  lwp.cpu = cpu;
  lwp.seg_cpu = cpu;
  cpu_lwp_[static_cast<std::size_t>(cpu)] = lwp.id;
  --idle_cpus_;
  Th& t = *lwp.th;
  cpu_running_[static_cast<std::size_t>(cpu)] = t.tid;
  ++result_.cpu_stats[static_cast<std::size_t>(cpu)].dispatches;
  ++lwp.dispatches;

  ++ec_.dispatches;
  const bool migrated = t.last_cpu != -1 && t.last_cpu != cpu;
  if (migrated) ++ec_.migrations;
  set_state(t, Th::St::kRunning);
  t.seg_cpu = cpu;
  if (migrated) t.remaining += cfg_->hw.migration_penalty;
  t.remaining += cfg_->cost.context_switch_cost;
  t.last_cpu = cpu;
  --unplaced_live_;
  note_phase_due(t);
  note_quantum_due(lwp);
}

void Engine::unplace(Lwp& lwp) {
  if (lwp.cpu < 0) return;
  emit_lwp_segment(lwp);
  lwp.seg_cpu = -1;
  cpu_lwp_[static_cast<std::size_t>(lwp.cpu)] = -1;
  cpu_running_[static_cast<std::size_t>(lwp.cpu)] = ult::kNoThread;
  ++idle_cpus_;
  lwp.cpu = -1;
  if (lwp.th != nullptr) {
    Th& t = *lwp.th;
    if (t.st == Th::St::kRunning) set_state(t, Th::St::kReady);
    lwp.enqueued_at = now_;
    mark_unplaced(lwp);
  }
}

void Engine::dispatch_lwps() {
  if (unplaced_live_ == 0) return;
  const auto& table = cfg_->sched.ts_table;

  // One pass over the unplaced list: drop stale entries (placed or
  // detached since), apply starvation relief (ts_lwait) per waiter,
  // and collect the dispatchable ones.
  disp_scratch_.clear();
  std::size_t keep = 0;
  for (std::size_t r = 0; r < unplaced_.size(); ++r) {
    const int lid = unplaced_[r];
    Lwp& lwp = lwps_[static_cast<std::size_t>(lid)];
    if (lwp.cpu >= 0 || lwp.thread == ult::kNoThread) {
      lwp.in_unplaced = false;
      continue;
    }
    unplaced_[keep++] = lid;
    if (!dispatchable(lwp)) continue;
    if (cfg_->sched.ts_dynamics) {
      const TsEntry& e = table.entry(lwp.ts_level);
      if (now_ - lwp.enqueued_at > e.max_wait) {
        lwp.ts_level = e.on_starve;
        lwp.quantum_left = table.entry(lwp.ts_level).quantum;
        lwp.enqueued_at = now_;
      }
    }
    disp_scratch_.push_back(&lwp);
  }
  unplaced_.resize(keep);
  if (disp_scratch_.empty()) return;
  ++ec_.sched_passes;
  ec_.max_runq_depth =
      std::max<std::uint64_t>(ec_.max_runq_depth, disp_scratch_.size());

  // With a handful of waiters (the overwhelmingly common case: at most
  // a few more runnable LWPs than CPUs), direct linear selection beats
  // setting up the bucket queues.  The dispatch order — (user prio, TS
  // level, FIFO), a total order since disp_seq is unique — is the same
  // either way, so the paths are interchangeable decision-for-decision.
  if (disp_scratch_.size() <= 64) {
    dispatch_linear();
  } else {
    dispatch_queued();
  }
}

/// Small-waiter dispatch: selection by linear scan of disp_scratch_.
void Engine::dispatch_linear() {
  auto better = [](const Lwp& a, const Lwp& b) {
    const int ua = a.th->prio, ub = b.th->prio;
    if (ua != ub) return ua > ub;
    if (a.ts_level != b.ts_level) return a.ts_level > b.ts_level;
    return a.disp_seq < b.disp_seq;
  };
  auto take = [this](std::size_t i) {
    Lwp* out = disp_scratch_[i];
    disp_scratch_[i] = disp_scratch_.back();
    disp_scratch_.pop_back();
    return out;
  };
  const std::size_t npos = static_cast<std::size_t>(-1);

  // Fill idle CPUs in ascending order with the best allowed waiter.
  for (int cpu = 0; idle_cpus_ > 0 && cpu < cfg_->hw.cpus && !disp_scratch_.empty();
       ++cpu) {
    if (cpu_lwp_[static_cast<std::size_t>(cpu)] != -1) continue;
    std::size_t best = npos;
    for (std::size_t i = 0; i < disp_scratch_.size(); ++i) {
      const Lwp& cand = *disp_scratch_[i];
      if (cand.bound_cpu >= 0 && cand.bound_cpu != cpu) continue;
      if (best == npos || better(cand, *disp_scratch_[best])) best = i;
    }
    if (best != npos) place(*take(best), cpu);
  }

  // Preemption: the strongest waiter evicts the weakest running LWP it
  // may run on; stop at the first contender without a strictly weaker
  // (user prio, TS level) victim.
  while (!disp_scratch_.empty()) {
    std::size_t ci = 0;
    for (std::size_t i = 1; i < disp_scratch_.size(); ++i) {
      if (better(*disp_scratch_[i], *disp_scratch_[ci])) ci = i;
    }
    Lwp* contender = disp_scratch_[ci];
    int victim_cpu = -1;
    std::pair<int, int> victim_key(contender->th->prio, contender->ts_level);
    for (int cpu = 0; cpu < cfg_->hw.cpus; ++cpu) {
      const int lid = cpu_lwp_[static_cast<std::size_t>(cpu)];
      if (lid < 0) continue;
      if (contender->bound_cpu >= 0 && contender->bound_cpu != cpu) continue;
      const Lwp& running = lwps_[static_cast<std::size_t>(lid)];
      const std::pair<int, int> running_key(
          running.th == nullptr ? 0 : running.th->prio, running.ts_level);
      if (running_key < victim_key) {
        victim_key = running_key;
        victim_cpu = cpu;
      }
    }
    if (victim_cpu < 0) break;
    Lwp& victim = lwps_[static_cast<std::size_t>(
        cpu_lwp_[static_cast<std::size_t>(victim_cpu)])];
    ++ec_.preemptions;
    unplace(victim);
    place(*take(ci), victim_cpu);
  }
}

/// Large-waiter dispatch: Solaris dispq selection.  Unbound-CPU waiters
/// go into per-(user-priority rank × TS level) buckets; CPU-bound ones
/// onto small per-CPU lists.
void Engine::dispatch_queued() {
  if (!kq_ready_) {
    kq_.configure(static_cast<int>(prios_.size()) * kTsLevels);
    kq_ready_ = true;
  }
  kq_.clear();
  for (const int cpu : kq_bound_touched_)
    kq_bound_[static_cast<std::size_t>(cpu)].clear();
  kq_bound_touched_.clear();

  for (Lwp* lp : disp_scratch_) {
    Lwp& lwp = *lp;
    const KWaiter kw{&lwp, lwp.th->prio, lwp.ts_level, lwp.disp_seq};
    if (lwp.bound_cpu >= 0) {
      auto& list = kq_bound_[static_cast<std::size_t>(lwp.bound_cpu)];
      if (list.empty()) kq_bound_touched_.push_back(lwp.bound_cpu);
      list.push_back(kw);
    } else {
      const int ts = std::clamp(lwp.ts_level, 0, kTsLevels - 1);
      kq_.insert(rank_of(kw.uprio) * kTsLevels + ts, kw, kw.seq, 0);
    }
  }

  // (user priority, TS level, FIFO) — the dispatch order.
  auto better = [](const KWaiter& a, const KWaiter& b) {
    if (a.uprio != b.uprio) return a.uprio > b.uprio;
    if (a.ts != b.ts) return a.ts > b.ts;
    return a.seq < b.seq;
  };
  auto best_bound_for = [&](int cpu) {
    const auto& list = kq_bound_[static_cast<std::size_t>(cpu)];
    std::size_t best = list.size();
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (best == list.size() || better(list[i], list[best])) best = i;
    }
    return best;
  };
  auto pop_bound = [&](int cpu, std::size_t i) {
    auto& list = kq_bound_[static_cast<std::size_t>(cpu)];
    const KWaiter out = list[i];
    list[i] = list.back();
    list.pop_back();
    return out;
  };

  // Fill idle CPUs in ascending order with the best allowed waiter:
  // the unbound queue's head vs the CPU's own bound list.
  for (int cpu = 0; idle_cpus_ > 0 && cpu < cfg_->hw.cpus; ++cpu) {
    if (cpu_lwp_[static_cast<std::size_t>(cpu)] != -1) continue;
    const auto* ub = kq_.top();
    const std::size_t bi = best_bound_for(cpu);
    const auto& blist = kq_bound_[static_cast<std::size_t>(cpu)];
    if (ub != nullptr && (bi == blist.size() || better(ub->item, blist[bi]))) {
      place(*kq_.pop_top().lwp, cpu);
    } else if (bi != blist.size()) {
      place(*pop_bound(cpu, bi).lwp, cpu);
    }
  }

  // Preemption: the strongest waiter overall evicts the weakest
  // running LWP it may run on; stop at the first contender that finds
  // no victim with a strictly lower (user prio, TS level).
  for (;;) {
    const auto* ub = kq_.top();
    bool have = ub != nullptr;
    KWaiter contender = have ? ub->item : KWaiter{};
    int contender_bcpu = -1;
    std::size_t contender_bi = 0;
    for (const int cpu : kq_bound_touched_) {
      const auto& list = kq_bound_[static_cast<std::size_t>(cpu)];
      for (std::size_t i = 0; i < list.size(); ++i) {
        if (!have || better(list[i], contender)) {
          have = true;
          contender = list[i];
          contender_bcpu = cpu;
          contender_bi = i;
        }
      }
    }
    if (!have) break;

    int victim_cpu = -1;
    std::pair<int, int> victim_key(contender.uprio, contender.ts);
    for (int cpu = 0; cpu < cfg_->hw.cpus; ++cpu) {
      const int lid = cpu_lwp_[static_cast<std::size_t>(cpu)];
      if (lid < 0) continue;
      if (contender.lwp->bound_cpu >= 0 && contender.lwp->bound_cpu != cpu)
        continue;
      const Lwp& running = lwps_[static_cast<std::size_t>(lid)];
      const std::pair<int, int> running_key(
          running.th == nullptr ? 0 : running.th->prio, running.ts_level);
      if (running_key < victim_key) {
        victim_key = running_key;
        victim_cpu = cpu;
      }
    }
    if (victim_cpu < 0) break;
    if (contender_bcpu >= 0) {
      pop_bound(contender_bcpu, contender_bi);
    } else {
      kq_.pop_top();
    }
    Lwp& victim = lwps_[static_cast<std::size_t>(
        cpu_lwp_[static_cast<std::size_t>(victim_cpu)])];
    ++ec_.preemptions;
    unplace(victim);
    place(*contender.lwp, victim_cpu);
  }
}

void Engine::assign() {
  // Memoized fixpoint: skip the whole pass while the scheduling state
  // still fingerprints identically to a state where a full pass
  // verifiably changed nothing.  Sound because every scheduling input
  // bumps sched_clock_ (see note_sched_change callers) and re-running
  // an assignment pass at an unchanged state reproduces its no-op:
  // starvation relief cannot re-fire at the same now_ (enqueued_at was
  // reset), and stale-entry compaction is semantically invisible.
  if (assign_memo_valid_ && sched_clock_ == last_assign_clock_ &&
      now_ == last_assign_now_) {
    return;
  }
  const std::uint64_t before = sched_clock_;
  attach_unbound_threads();
  dispatch_lwps();
  // Only a pass that changed nothing proves the state is a fixpoint; a
  // pass that placed or preempted may have enabled further moves, and
  // the old always-rerun code would have found them next call.
  assign_memo_valid_ = sched_clock_ == before;
  last_assign_clock_ = sched_clock_;
  last_assign_now_ = now_;
}

// ---------------------------------------------------------------------------
// Execution

bool Engine::lwp_waiting_for_cpu() const {
  // Every attached LWP without a CPU is on unplaced_ (stale entries are
  // compacted by dispatch_lwps; here they are just skipped).  The probe
  // runs several times per event, so memoize it on the same
  // (sched_clock_, now_) fingerprint assign() uses.
  if (contended_valid_ && contended_clock_ == sched_clock_ &&
      contended_now_ == now_) {
    return contended_val_;
  }
  bool waiting = false;
  for (const int lid : unplaced_) {
    const Lwp& lwp = lwps_[static_cast<std::size_t>(lid)];
    if (lwp.cpu < 0 && dispatchable(lwp)) {
      waiting = true;
      break;
    }
  }
  contended_valid_ = true;
  contended_clock_ = sched_clock_;
  contended_now_ = now_;
  contended_val_ = waiting;
  return waiting;
}

double Engine::rate_factor() const {
  const double alpha = cfg_->hw.memory_contention_alpha;
  if (alpha <= 0.0 || running_count_ <= 1) return 1.0;
  return 1.0 + alpha * static_cast<double>(running_count_ - 1);
}

SimTime Engine::next_event_time() {
  SimTime next = SimTime::max();
  const double rate = rate_factor();
  // Quantum expiry only changes anything when an LWP is waiting for a
  // CPU; without contention the expiry (level decay + quantum refresh)
  // is applied lazily at the next natural event, which avoids flooding
  // long uncontended computations with expiry events.
  const bool contended = lwp_waiting_for_cpu();
  // Running threads are exactly the placed LWPs' threads.  rate == 1.0
  // (no memory contention) keeps the arithmetic integral: scaled(1.0)
  // is the identity for any representable duration.
  for (int cpu = 0; cpu < cfg_->hw.cpus; ++cpu) {
    const int lid = cpu_lwp_[static_cast<std::size_t>(cpu)];
    if (lid < 0) continue;
    const Lwp& lwp = lwps_[static_cast<std::size_t>(lid)];
    const SimTime rem = lwp.th->remaining;
    next = std::min(next, now_ + (rate == 1.0 ? rem : rem.scaled(rate)));
    if (contended) next = std::min(next, now_ + lwp.quantum_left);
  }
  // Sleep (wake_at) and deferred-ready (ready_at) timers, validated
  // lazily: a timer whose thread has moved on, or that is already due
  // (every due timer was consumed by process_due_now), is discarded.
  while (!timers_.empty()) {
    const Timer& top = timers_.front();
    if (top.when > now_) {
      const Th& t = threads_[static_cast<std::size_t>(top.idx)];
      const bool armed =
          top.sleep ? t.st == Th::St::kSleeping && t.wake_at == top.when
                    : t.st == Th::St::kReady && t.ready_at == top.when;
      if (armed) {
        next = std::min(next, top.when);
        break;
      }
    }
    std::pop_heap(timers_.begin(), timers_.end(), TimerLater{});
    timers_.pop_back();
  }
  return next;
}

void Engine::advance_to(SimTime when) {
  VPPB_CHECK_MSG(when >= now_, "time went backwards in the simulator");
  const SimTime dt = when - now_;
  if (dt.is_zero()) return;
  const double rate = rate_factor();
  for (int cpu = 0; cpu < cfg_->hw.cpus; ++cpu) {
    const int lid = cpu_lwp_[static_cast<std::size_t>(cpu)];
    if (lid < 0) continue;
    Lwp& lwp = lwps_[static_cast<std::size_t>(lid)];
    Th& t = *lwp.th;
    SimTime progress = rate == 1.0 ? dt : dt.scaled(1.0 / rate);
    if (progress > t.remaining) progress = t.remaining;
    t.remaining -= progress;
    lwp.quantum_left =
        lwp.quantum_left > dt ? lwp.quantum_left - dt : SimTime::zero();
    lwp.running_total += dt;
    result_.cpu_stats[static_cast<std::size_t>(cpu)].busy += dt;
    note_phase_due(t);
    note_quantum_due(lwp);
  }
  now_ = when;
}

/// Handles everything due at `now_`: sleepers waking, quantum expiries,
/// and threads whose current phase has no demand left.  Returns true if
/// any state changed (so the caller re-runs assignment).
bool Engine::process_due_now() {
  bool changed = false;

  // Timer wakeups (timed-out cond_timedwait and I/O-latency replays).
  // Pop every due timer, keep the sleeper ones, and process them in
  // ascending thread order (idx order == tid order) with the state
  // revalidated per thread — duplicates and timers whose thread was
  // woken by other means fall out of the revalidation.
  due_scratch_.clear();
  while (!timers_.empty() && timers_.front().when <= now_) {
    const Timer top = timers_.front();
    std::pop_heap(timers_.begin(), timers_.end(), TimerLater{});
    timers_.pop_back();
    if (top.sleep) due_scratch_.push_back(top.idx);
  }
  if (!due_scratch_.empty()) {
    if (due_scratch_.size() > 1)
      std::sort(due_scratch_.begin(), due_scratch_.end());
    for (const int idx : due_scratch_) {
      Th& t = threads_[static_cast<std::size_t>(idx)];
      if (t.st != Th::St::kSleeping || t.wake_at > now_) continue;
      ++ec_.timer_wakeups;
      if (t.wait == Th::Wait::kIoSleep) {
        t.wait = Th::Wait::kNone;
        set_state(t, Th::St::kReady);
        t.ready_at = now_;
        t.lib_seq = next_lib_seq_++;
        complete_op_for(t);
        rq_put(t);
        changed = true;
        continue;
      }
      VPPB_CHECK(t.wait == Th::Wait::kSleepThenMutex);
      t.wait = Th::Wait::kNone;
      const std::uint32_t mutex_id = t.wait_mutex;
      set_state(t, Th::St::kReady);  // placeholder; acquire may re-block
      t.ready_at = now_;
      t.lib_seq = next_lib_seq_++;
      acquire_mutex_or_block(t, mutex_id);
      changed = true;
    }
  }

  // Quantum expiry: the running LWP's level decays and — when another
  // LWP is waiting for a CPU — it goes to the back of the dispatch
  // queue.  Without contention the refresh happens in place.  The due
  // list is exactly the candidate set the old per-CPU scan collected
  // (every site that can zero a placed LWP's quantum enrolls it), with
  // the same revalidation and the same ascending LWP-id order.
  if (!quantum_due_.empty()) {
    due_scratch_.assign(quantum_due_.begin(), quantum_due_.end());
    quantum_due_.clear();
    if (due_scratch_.size() > 1)
      std::sort(due_scratch_.begin(), due_scratch_.end());
    const bool contended = lwp_waiting_for_cpu();
    for (const int lid : due_scratch_) {
      Lwp& lwp = lwps_[static_cast<std::size_t>(lid)];
      lwp.in_quantum_due = false;
      if (lwp.cpu < 0 || !lwp.quantum_left.is_zero()) continue;
      if (cfg_->sched.ts_dynamics)
        lwp.ts_level = cfg_->sched.ts_table.entry(lwp.ts_level).on_expiry;
      lwp.quantum_left = cfg_->sched.ts_table.entry(lwp.ts_level).quantum;
      if (contended) {
        lwp.disp_seq = next_disp_seq_++;
        unplace(lwp);
        changed = true;
      } else {
        // A zero quantum in the TS table would leave it due; keep the
        // candidate set complete, as the rescans did.
        note_quantum_due(lwp);
      }
    }
  }

  // Phase completions for running threads, in deterministic tid order.
  // Snapshot the due list: completions created while processing (a
  // zero-cost op entering its next zero phase) belong to the next
  // round, exactly as they were invisible to the old scan's snapshot.
  if (!phase_due_.empty()) {
    due_scratch_.assign(phase_due_.begin(), phase_due_.end());
    phase_due_.clear();
    if (due_scratch_.size() > 1)
      std::sort(due_scratch_.begin(), due_scratch_.end());
    for (const int idx : due_scratch_) {
      Th& t = threads_[static_cast<std::size_t>(idx)];
      t.in_phase_due = false;
      if (t.st != Th::St::kRunning || !t.remaining.is_zero()) continue;
      if (t.phase == Th::Phase::kCompute) {
        apply_op(t);
      } else {
        advance_step(t);
      }
      changed = true;
    }
  }
  return changed;
}

void Engine::apply_op(Th& t) {
  ++ec_.steps;
  if (guard_ != nullptr) guard_step_check();
  const Step& s = t.current_step();

  // Open the event entry shown by the Visualizer.
  if (cfg_->build_timeline) {
    SimEvent ev;
    ev.at = now_;
    ev.done = now_;
    ev.tid = t.tid;
    ev.op = s.op;
    ev.obj = s.obj;
    ev.outcome = s.outcome;
    ev.loc = s.loc;
    ev.cpu = t.last_cpu;
    t.open_event = static_cast<std::ptrdiff_t>(result_.events.size());
    result_.events.push_back(ev);
  }

  switch (s.op) {
    case Op::kThrCreate: op_create(t, s); break;
    case Op::kThrExit:
      finish_thread(t);
      return;
    case Op::kThrJoin: op_join(t, s); break;
    case Op::kThrYield: {
      // Back of the library queue (and of the kernel queue for bound
      // threads): detach and re-enter as runnable.
      Lwp& lwp = lwps_[static_cast<std::size_t>(t.lwp)];
      unplace(lwp);
      if (!t.bound) {
        lwp.thread = ult::kNoThread;
        lwp.th = nullptr;
        --unplaced_live_;
        t.lwp = -1;
        lwp.slept = true;
        mark_free(lwp);
      } else {
        lwp.disp_seq = next_disp_seq_++;
      }
      t.lib_seq = next_lib_seq_++;
      rq_put(t);
      enter_op_cost(t);
      break;
    }
    case Op::kThrSetPrio: {
      const auto target = static_cast<ThreadId>(s.obj.id);
      if (exists(target)) {
        Th& tgt = th(target);
        // A user-supplied priority override makes the simulator ignore
        // the thr_setprio events for that thread (paper §3.2).
        if (!tgt.prio_overridden) {
          tgt.prio = static_cast<int>(s.arg);
          rq_put(tgt);  // rebucket, keeping its arrival seq
        }
      }
      enter_op_cost(t);
      break;
    }
    case Op::kThrSetConcurrency:
      // The simulator's LWP knob overrides the program (paper §3.2:
      // "in this case the thr_setconcurrency in the program has no
      // effect").
      enter_op_cost(t);
      break;
    case Op::kThrSuspend: {
      const auto target = static_cast<ThreadId>(s.obj.id);
      if (exists(target)) {
        Th& tgt = th(target);
        if (tgt.st == Th::St::kBlocked || tgt.st == Th::St::kSleeping) {
          tgt.pending_suspend = true;
        } else if (tgt.st != Th::St::kDone) {
          tgt.suspended = true;
          if (tgt.st == Th::St::kRunning) {
            Lwp& lwp = lwps_[static_cast<std::size_t>(tgt.lwp)];
            unplace(lwp);
          }
          rq_put(tgt);  // drops it from the library queue, if queued
        }
      }
      enter_op_cost(t);
      break;
    }
    case Op::kThrContinue: {
      const auto target = static_cast<ThreadId>(s.obj.id);
      if (exists(target)) {
        Th& tgt = th(target);
        tgt.pending_suspend = false;
        tgt.suspended = false;
        rq_put(tgt);  // back into the library queue at its old seq
      }
      enter_op_cost(t);
      break;
    }
    case Op::kUserMark:
    case Op::kMutexInit:
    case Op::kMutexDestroy:
    case Op::kSemaDestroy:
    case Op::kCondInit:
    case Op::kCondDestroy:
    case Op::kRwInit:
    case Op::kRwDestroy:
      enter_op_cost(t);
      break;
    case Op::kSemaInit:
      objects_.sema(s.slot).count = s.arg;
      enter_op_cost(t);
      break;
    case Op::kMutexLock:
    case Op::kMutexTrylock:
    case Op::kMutexUnlock:
      op_mutex(t, s);
      break;
    case Op::kSemaWait:
    case Op::kSemaTrywait:
    case Op::kSemaPost:
      op_sema(t, s);
      break;
    case Op::kCondWait:
    case Op::kCondTimedwait:
    case Op::kCondSignal:
    case Op::kCondBroadcast:
      op_cond(t, s);
      break;
    case Op::kRwRdlock:
    case Op::kRwTryRdlock:
    case Op::kRwWrlock:
    case Op::kRwTryWrlock:
    case Op::kRwUnlock:
      op_rwlock(t, s);
      break;
    case Op::kIoWait: {
      // Extension: park the thread for the recorded device latency; the
      // LWP is released meanwhile (an async-I/O-capable library).
      t.wait = Th::Wait::kIoSleep;
      t.wake_at = now_ + s.delay;
      Lwp* lwp = t.lwp >= 0 ? &lwps_[static_cast<std::size_t>(t.lwp)] : nullptr;
      if (lwp != nullptr) {
        unplace(*lwp);
        if (!t.bound) {
          emit_lwp_segment(*lwp);
          lwp->thread = ult::kNoThread;
          lwp->th = nullptr;
          --unplaced_live_;
          lwp->seg_thread = 0;
          t.lwp = -1;
          mark_free(*lwp);
        }
        lwp->slept = true;
      }
      set_state(t, Th::St::kSleeping);
      push_timer(t.wake_at, t, /*sleep=*/true);
      break;
    }
    case Op::kStartCollect:
    case Op::kEndCollect:
      enter_op_cost(t);
      break;
  }
}

void Engine::enter_op_cost(Th& t) {
  const Step& s = t.current_step();
  double factor = 1.0;
  if (s.op == Op::kThrCreate) {
    // Creating a bound thread takes 6.7x longer (paper §3.2).
    const auto child = static_cast<ThreadId>(s.outcome);
    if (exists(child) && th(child).bound)
      factor = cfg_->cost.bound_create_factor;
  } else if (t.bound && trace::op_obj_kind(s.op) != trace::ObjKind::kThread &&
             trace::op_obj_kind(s.op) != trace::ObjKind::kNone &&
             trace::op_obj_kind(s.op) != trace::ObjKind::kMark &&
             trace::op_obj_kind(s.op) != trace::ObjKind::kIo) {
    // Synchronization by bound threads takes 5.9x longer (paper §3.2).
    factor = cfg_->cost.bound_sync_factor;
  }
  t.phase = Th::Phase::kOpCost;
  t.remaining = factor == 1.0 ? s.op_cost : s.op_cost.scaled(factor);
  note_phase_due(t);
}

void Engine::advance_step(Th& t) {
  if (t.open_event >= 0) {
    result_.events[static_cast<std::size_t>(t.open_event)].done = now_;
    t.open_event = -1;
  }
  ++t.sp;
  t.phase = Th::Phase::kCompute;
  if (!t.has_steps_left()) {
    // Trace ended without an explicit thr_exit (hand-written traces):
    // treat it as an exit.
    finish_thread(t);
    return;
  }
  t.remaining = t.current_step().cpu;
  note_phase_due(t);
}

void Engine::finish_thread(Th& t) {
  if (t.open_event >= 0) {
    result_.events[static_cast<std::size_t>(t.open_event)].done = now_;
    t.open_event = -1;
  }
  if (t.lwp >= 0) {
    Lwp& lwp = lwps_[static_cast<std::size_t>(t.lwp)];
    unplace(lwp);
    emit_lwp_segment(lwp);
    lwp.thread = ult::kNoThread;
    lwp.th = nullptr;
    --unplaced_live_;
    lwp.seg_thread = 0;
    lwp.slept = true;
    t.lwp = -1;
    mark_free(lwp);
  }
  set_state(t, Th::St::kDone);
  t.exited = true;
  stats_[static_cast<std::size_t>(t.idx)].exited_at = now_;
  t.sp = t.sp_end;
  thread_exited(t);
}

void Engine::thread_exited(Th& t) {
  // Specific joiners first.
  WaitQueue& jq = joiners_[static_cast<std::size_t>(t.idx)];
  if (!jq.empty()) {
    const ThreadId j = jq.pop();
    Th& joiner = th(j);
    t.reaped = true;
    joiner.wait = Th::Wait::kNone;
    unblock(joiner);
    // Remaining specific joiners lose the race (ESRCH in the real API);
    // release them too so the replay cannot hang.
    while (!jq.empty()) {
      Th& also = th(jq.pop());
      also.wait = Th::Wait::kNone;
      unblock(also);
    }
    return;
  }
  // Otherwise the zombie waits for a wildcard joiner.
  if (!any_joiners_.empty()) {
    const ThreadId j = any_joiners_.pop();
    Th& joiner = th(j);
    t.reaped = true;
    joiner.wait = Th::Wait::kNone;
    unblock(joiner);
    return;
  }
  zombies_.push_back(t.tid);
}

SimTime Engine::wake_delay(const Th& woken) const {
  // An event on one CPU propagates to another after the communication
  // delay (paper §3.2).  Wakeups within one CPU are immediate.
  if (cfg_->hw.cpus <= 1 || cfg_->hw.comm_delay.is_zero()) return SimTime::zero();
  // The waker is the thread currently applying an op; threads_ lookups
  // here would be circular, so use a conservative rule: a thread that
  // last ran on some CPU is assumed to be woken from a different one
  // whenever more than one CPU exists.
  (void)woken;
  return cfg_->hw.comm_delay;
}

void Engine::block(Th& t, Th::Wait wait, std::uint32_t obj) {
  Lwp* lwp = t.lwp >= 0 ? &lwps_[static_cast<std::size_t>(t.lwp)] : nullptr;
  if (lwp != nullptr) {
    unplace(*lwp);
    if (!t.bound) {
      emit_lwp_segment(*lwp);
      lwp->thread = ult::kNoThread;
      lwp->th = nullptr;
      --unplaced_live_;
      lwp->seg_thread = 0;
      t.lwp = -1;
      lwp->slept = true;  // will boost when it picks up new work
      mark_free(*lwp);
    } else {
      lwp->slept = true;  // bound LWP sleeps with its thread
    }
  }
  t.wait = wait;
  t.wait_obj = obj;
  set_state(t, Th::St::kBlocked);
}

void Engine::unblock(Th& t) {
  VPPB_CHECK_MSG(t.st == Th::St::kBlocked || t.st == Th::St::kReady,
                 "unblock of T" << t.tid << " in unexpected state");
  if (t.st == Th::St::kBlocked) set_state(t, Th::St::kReady);
  if (t.pending_suspend) {
    // thr_suspend hit while blocked: stop at the wakeup point.
    t.pending_suspend = false;
    t.suspended = true;
  }
  t.ready_at = now_ + wake_delay(t);
  t.lib_seq = next_lib_seq_++;
  rq_put(t);
  defer_ready(t);
  complete_op_for(t);
}

void Engine::complete_op_for(Th& t) {
  // The blocking operation has succeeded on this thread's behalf; charge
  // the recorded library cost and move on.
  enter_op_cost(t);
}

bool Engine::try_take_mutex(Th& t, std::uint32_t mutex_id) {
  SimMutex& m = objects_.mutex(mutex_id);
  if (m.owner != ult::kNoThread) return false;
  m.owner = t.tid;
  held_of_[static_cast<std::size_t>(t.idx)].push_back(mutex_id);
  return true;
}

void Engine::do_unlock_mutex(Th& t, std::uint32_t mutex_id) {
  SimMutex& m = objects_.mutex(mutex_id);
  VPPB_CHECK_MSG(m.owner == t.tid, "replay: T" << t.tid << " releases mutex#"
                                               << mutex_id
                                               << " it does not hold");
  std::erase(held_of_[static_cast<std::size_t>(t.idx)], mutex_id);
  const ThreadId next = m.waiters.pop();
  m.owner = next;
  if (next == ult::kNoThread) return;
  Th& w = th(next);
  held_of_[static_cast<std::size_t>(w.idx)].push_back(mutex_id);
  if (w.wait == Th::Wait::kMutexReacquire) {
    // Part of a barrier re-acquisition chain: keep going.
    auto& reacq = reacq_of_[static_cast<std::size_t>(w.idx)];
    VPPB_CHECK(!reacq.empty() && reacq.front() == mutex_id);
    reacq.erase(reacq.begin());
    continue_reacquire(w);
    return;
  }
  w.wait = Th::Wait::kNone;
  unblock(w);
}

void Engine::continue_reacquire(Th& t) {
  auto& reacq = reacq_of_[static_cast<std::size_t>(t.idx)];
  while (!reacq.empty()) {
    const std::uint32_t id = reacq.front();
    if (try_take_mutex(t, id)) {
      reacq.erase(reacq.begin());
      continue;
    }
    objects_.mutex(id).waiters.push(t.tid, t.prio);
    t.wait = Th::Wait::kMutexReacquire;
    t.wait_obj = id;
    if (t.st != Th::St::kBlocked) set_state(t, Th::St::kBlocked);
    return;
  }
  t.wait = Th::Wait::kNone;
  unblock(t);
}

void Engine::acquire_mutex_or_block(Th& t, std::uint32_t mutex_id) {
  if (try_take_mutex(t, mutex_id)) {
    if (t.st == Th::St::kBlocked) set_state(t, Th::St::kReady);
    t.ready_at = std::max(t.ready_at, now_);
    t.wait = Th::Wait::kNone;
    rq_put(t);
    defer_ready(t);
    complete_op_for(t);
    return;
  }
  objects_.mutex(mutex_id).waiters.push(t.tid, t.prio);
  t.wait = Th::Wait::kMutex;
  t.wait_obj = mutex_id;
  if (t.st != Th::St::kBlocked) set_state(t, Th::St::kBlocked);
}

void Engine::wake_from_cond(Th& t) {
  // Signalled: now contend for the mutex recorded with the wait.
  t.wait = Th::Wait::kNone;
  acquire_mutex_or_block(t, t.wait_mutex);
}

// ---- op handlers -----------------------------------------------------------

void Engine::op_create(Th& t, const Step& s) {
  const auto child = static_cast<ThreadId>(s.outcome);
  if (exists(child) && th(child).st == Th::St::kUnborn) {
    spawn_thread(child, now_);
    Th& c = th(child);
    c.ready_at = now_ + wake_delay(c);
    constexpr long kThrSuspended = 0x80;  // THR_SUSPENDED
    if ((s.arg & kThrSuspended) != 0) c.suspended = true;
    rq_put(c);  // re-sync: ready_at/suspended changed after the spawn
    defer_ready(c);
  }
  enter_op_cost(t);
}

void Engine::op_join(Th& t, const Step& s) {
  // A join that failed in the recording (ESRCH/EDEADLK — e.g. the final
  // probe of a join-all loop) returns without waiting; its outcome field
  // carries no departed thread.
  if (s.outcome == 0) {
    enter_op_cost(t);
    return;
  }
  const auto target = static_cast<std::int64_t>(s.obj.id);
  if (target == trace::kAnyThread) {
    if (!zombies_.empty()) {
      const ThreadId z = zombies_.front();
      zombies_.erase(zombies_.begin());
      th(z).reaped = true;
      enter_op_cost(t);
      return;
    }
    block(t, Th::Wait::kJoinAny, 0);
    any_joiners_.push(t.tid, t.prio);
    return;
  }
  const auto tgt_id = static_cast<ThreadId>(target);
  if (!exists(tgt_id)) {
    enter_op_cost(t);  // ESRCH in the log too; nothing to wait for
    return;
  }
  Th& target_th = th(tgt_id);
  if (target_th.exited) {
    // Already a zombie (possibly already reaped by a wildcard join —
    // the mismatch the paper's §6 acknowledges); complete immediately.
    target_th.reaped = true;
    std::erase(zombies_, tgt_id);
    enter_op_cost(t);
    return;
  }
  block(t, Th::Wait::kJoin, s.obj.id);
  t.join_target = tgt_id;
  joiners_[static_cast<std::size_t>(target_th.idx)].push(t.tid, t.prio);
}

void Engine::op_mutex(Th& t, const Step& s) {
  SimMutex& m = objects_.mutex(s.slot);
  switch (s.op) {
    case Op::kMutexLock:
      if (try_take_mutex(t, s.slot)) {
        enter_op_cost(t);
      } else {
        block(t, Th::Wait::kMutex, s.slot);
        m.waiters.push(t.tid, t.prio);
      }
      break;
    case Op::kMutexTrylock:
      // Paper §3.2: "if the thread gained access to the lock in the log
      // file, the simulation will do a mutex_lock, otherwise no action
      // is taken".
      if (s.outcome == 1) {
        if (try_take_mutex(t, s.slot)) {
          enter_op_cost(t);
        } else {
          block(t, Th::Wait::kMutex, s.slot);
          m.waiters.push(t.tid, t.prio);
        }
      } else {
        enter_op_cost(t);
      }
      break;
    case Op::kMutexUnlock:
      do_unlock_mutex(t, s.slot);
      enter_op_cost(t);
      break;
    default: VPPB_CHECK(false);
  }
}

void Engine::op_sema(Th& t, const Step& s) {
  SimSema& sem = objects_.sema(s.slot);
  switch (s.op) {
    case Op::kSemaWait:
      if (sem.count > 0) {
        --sem.count;
        enter_op_cost(t);
      } else {
        block(t, Th::Wait::kSema, s.slot);
        sem.waiters.push(t.tid, t.prio);
      }
      break;
    case Op::kSemaTrywait:
      if (s.outcome == 1) {
        if (sem.count > 0) {
          --sem.count;
          enter_op_cost(t);
        } else {
          block(t, Th::Wait::kSema, s.slot);
          sem.waiters.push(t.tid, t.prio);
        }
      } else {
        enter_op_cost(t);
      }
      break;
    case Op::kSemaPost: {
      const ThreadId next = sem.waiters.pop();
      if (next != ult::kNoThread) {
        Th& w = th(next);
        w.wait = Th::Wait::kNone;
        unblock(w);  // the unit is handed to the sleeper
      } else {
        ++sem.count;
      }
      enter_op_cost(t);
      break;
    }
    default: VPPB_CHECK(false);
  }
}

void Engine::op_cond(Th& t, const Step& s) {
  SimCond& c = objects_.cond(s.slot);
  switch (s.op) {
    case Op::kCondWait:
    case Op::kCondTimedwait: {
      const std::uint32_t mutex_id = s.slot2;  // the wait's recorded mutex
      // Release the mutex exactly as the library does internally.
      do_unlock_mutex(t, mutex_id);

      if (s.op == Op::kCondTimedwait && s.outcome == 0) {
        // Timed out in the recording: replay as a delay then re-acquire
        // the mutex (paper §3.2).
        t.wait = Th::Wait::kSleepThenMutex;
        t.wait_mutex = mutex_id;
        t.wake_at = now_ + s.delay;
        Lwp* lwp = t.lwp >= 0 ? &lwps_[static_cast<std::size_t>(t.lwp)] : nullptr;
        if (lwp != nullptr) {
          unplace(*lwp);
          if (!t.bound) {
            lwp->thread = ult::kNoThread;
            lwp->th = nullptr;
            --unplaced_live_;
            t.lwp = -1;
            mark_free(*lwp);
          }
          lwp->slept = true;
        }
        set_state(t, Th::St::kSleeping);
        push_timer(t.wake_at, t, /*sleep=*/true);
        break;
      }

      // A signal recorded for this waiter may already have fired under
      // the simulated schedule; consume it instead of sleeping forever.
      if (c.pending_signals > 0) {
        --c.pending_signals;
        t.wait_mutex = mutex_id;
        Lwp* lwp2 = t.lwp >= 0 ? &lwps_[static_cast<std::size_t>(t.lwp)] : nullptr;
        if (lwp2 != nullptr) {
          unplace(*lwp2);
          if (!t.bound) {
            lwp2->thread = ult::kNoThread;
            lwp2->th = nullptr;
            --unplaced_live_;
            t.lwp = -1;
            mark_free(*lwp2);
          }
          lwp2->slept = true;
        }
        set_state(t, Th::St::kBlocked);
        wake_from_cond(t);
        break;
      }

      block(t, Th::Wait::kCond, s.slot);
      t.wait_mutex = mutex_id;
      c.waiters.push(t.tid, t.prio);

      // A pending barrier broadcast may now have enough arrivals.
      if (c.pending &&
          static_cast<std::int64_t>(c.waiters.size()) >= c.pending->needed) {
        Th& caster = th(c.pending->broadcaster);
        c.pending.reset();
        while (!c.waiters.empty()) {
          Th& w = th(c.waiters.pop());
          wake_from_cond(w);
        }
        continue_reacquire(caster);
      }
      break;
    }
    case Op::kCondSignal: {
      const ThreadId next = c.waiters.pop();
      if (next != ult::kNoThread) {
        wake_from_cond(th(next));
      } else if (s.outcome == 1) {
        // The recording woke a waiter; it has not arrived yet in the
        // simulation — remember the signal for it (see SimCond).
        ++c.pending_signals;
      }
      enter_op_cost(t);
      break;
    }
    case Op::kCondBroadcast: {
      const std::int64_t needed = s.outcome;  // waiters released in the log
      if (static_cast<std::int64_t>(c.waiters.size()) >= needed) {
        while (!c.waiters.empty()) {
          Th& w = th(c.waiters.pop());
          wake_from_cond(w);
        }
        enter_op_cost(t);
      } else {
        // Barrier rule (paper §6): wait until as many threads arrive at
        // the barrier as the log released, then the last arrival
        // triggers the release above.  The broadcaster releases any
        // mutexes it holds (it typically holds the barrier mutex, which
        // the still-arriving threads need) and re-takes them afterwards.
        VPPB_CHECK_MSG(!c.pending, "two pending broadcasts on cond#"
                                       << s.obj.id);
        c.pending = SimCond::PendingBroadcast{t.tid, needed};
        const auto& held = held_of_[static_cast<std::size_t>(t.idx)];
        reacq_of_[static_cast<std::size_t>(t.idx)] = held;
        // do_unlock_mutex edits the held list; iterate a scratch copy.
        mutex_scratch_.assign(held.begin(), held.end());
        for (const std::uint32_t id : mutex_scratch_)
          do_unlock_mutex(t, id);
        block(t, Th::Wait::kBarrier, s.slot);
      }
      break;
    }
    default: VPPB_CHECK(false);
  }
}

void Engine::op_rwlock(Th& t, const Step& s) {
  SimRwlock& rw = objects_.rwlock(s.slot);
  auto rd_acquire = [&]() {
    if (rw.writer == ult::kNoThread && rw.waiting_writers == 0) {
      ++rw.readers;
      enter_op_cost(t);
    } else {
      block(t, Th::Wait::kRwRead, s.slot);
      rw.reader_q.push(t.tid, t.prio);
    }
  };
  auto wr_acquire = [&]() {
    if (rw.writer == ult::kNoThread && rw.readers == 0) {
      rw.writer = t.tid;
      enter_op_cost(t);
    } else {
      ++rw.waiting_writers;
      block(t, Th::Wait::kRwWrite, s.slot);
      rw.writer_q.push(t.tid, t.prio);
    }
  };
  switch (s.op) {
    case Op::kRwRdlock: rd_acquire(); break;
    case Op::kRwTryRdlock:
      if (s.outcome == 1) rd_acquire(); else enter_op_cost(t);
      break;
    case Op::kRwWrlock: wr_acquire(); break;
    case Op::kRwTryWrlock:
      if (s.outcome == 1) wr_acquire(); else enter_op_cost(t);
      break;
    case Op::kRwUnlock: {
      if (rw.writer == t.tid) {
        rw.writer = ult::kNoThread;
      } else {
        VPPB_CHECK_MSG(rw.readers > 0, "replay: rw_unlock of rwlock#"
                                           << s.obj.id << " not held");
        --rw.readers;
      }
      if (rw.writer == ult::kNoThread && rw.readers == 0) {
        const ThreadId w = rw.writer_q.pop();
        if (w != ult::kNoThread) {
          --rw.waiting_writers;
          rw.writer = w;
          Th& wt = th(w);
          wt.wait = Th::Wait::kNone;
          unblock(wt);
        } else {
          while (!rw.reader_q.empty()) {
            Th& rt = th(rw.reader_q.pop());
            ++rw.readers;
            rt.wait = Th::Wait::kNone;
            unblock(rt);
          }
        }
      }
      enter_op_cost(t);
      break;
    }
    default: VPPB_CHECK(false);
  }
}

// ---------------------------------------------------------------------------

void Engine::replay_deadlock() {
  std::ostringstream os;
  os << "replay deadlock at t=" << now_ << ":\n";
  for (const Th& t : threads_) {
    os << "  T" << t.tid << " step " << (t.sp - t.ft->steps) << "/"
       << t.ft->n_steps;
    switch (t.st) {
      case Th::St::kUnborn: os << " unborn"; break;
      case Th::St::kReady: os << " ready"; break;
      case Th::St::kRunning: os << " running"; break;
      case Th::St::kBlocked: os << " blocked"; break;
      case Th::St::kSleeping: os << " sleeping"; break;
      case Th::St::kDone: os << " done"; break;
    }
    if (t.st == Th::St::kBlocked && t.has_steps_left())
      os << " in " << trace::op_name(t.current_step().op);
    os << '\n';
  }
  throw Error(os.str());
}

/// Registry handles for per-run engine totals, registered once.  The
/// engine flushes its plain counters here a single time per run — the
/// hot loop never touches an atomic.
struct EngineMetrics {
  obs::Counter& sims;
  obs::Counter& steps;
  obs::Counter& dispatches;
  obs::Counter& migrations;
  obs::Counter& preemptions;

  static EngineMetrics& get() {
    auto& reg = obs::Registry::global();
    static EngineMetrics m{
        reg.counter("vppb_engine_sims_total", "Completed simulation runs"),
        reg.counter("vppb_engine_steps_total",
                    "Trace operations applied across all runs"),
        reg.counter("vppb_engine_dispatches_total",
                    "LWP placements onto CPUs (context switches)"),
        reg.counter("vppb_engine_migrations_total",
                    "Placements onto a different CPU than last time"),
        reg.counter("vppb_engine_preemptions_total",
                    "Running LWPs evicted by a higher-priority waiter"),
    };
    return m;
  }
};

void Engine::reset_workspace() {
  // Every per-run scalar and container back to its initial state,
  // keeping allocations.  Containers sized per run (threads_, joiners_,
  // object slabs, …) are handled by init_threads; everything here must
  // also recover from a previous run that threw mid-flight.
  now_ = SimTime::zero();
  result_ = SimResult{};
  ec_ = EngineCounters{};
  zombies_.clear();
  any_joiners_.clear();
  timers_.clear();
  std::fill(free_bits_.begin(), free_bits_.end(), 0);
  free_hint_ = 0;
  free_count_ = 0;
  unplaced_.clear();
  unplaced_live_ = 0;
  phase_due_.clear();
  quantum_due_.clear();
  next_lib_seq_ = 1;
  next_disp_seq_ = 1;
  unbound_pool_size_ = 0;
  unbound_lwps_made_ = 0;
  running_count_ = 0;
  done_count_ = 0;
  idle_cpus_ = 0;
  sched_clock_ = 0;
  assign_memo_valid_ = false;
  contended_valid_ = false;
}

SimResult Engine::run(const CompiledTrace& compiled, const SimConfig& cfg,
                      const RunGuard* guard) {
  compiled_ = &compiled;
  cfg_ = &cfg;
  guard_ = guard;
  // Hand-built CompiledTraces (tests, tools) may lack the flat form;
  // derive it on the spot.  Holding the shared_ptr — not just the raw
  // pointer — matters: all step cursors point into its arena.
  prog_hold_ = compiled.flat != nullptr ? compiled.flat
                                        : build_flat_program(compiled.threads);
  prog_ = prog_hold_.get();
  reset_workspace();
  return run_body();
}

SimResult Engine::run_body() {
  obs::Span run_span("engine.run", "engine");
  run_span.arg("cpus", cfg_->hw.cpus);
  const auto wall0 = std::chrono::steady_clock::now();
  VPPB_CHECK_MSG(cfg_->hw.cpus >= 1, "need at least one CPU");
  VPPB_CHECK_MSG(cfg_->sched.lwps >= 0, "negative LWP count");

  {
    obs::Span init_span("engine.init", "engine");
    unbound_pool_size_ = cfg_->sched.lwps > 0
                             ? cfg_->sched.lwps
                             : static_cast<int>(prog_->n_threads);
    cpu_running_.assign(static_cast<std::size_t>(cfg_->hw.cpus),
                        ult::kNoThread);
    cpu_lwp_.assign(static_cast<std::size_t>(cfg_->hw.cpus), -1);
    idle_cpus_ = cfg_->hw.cpus;
    result_.cpu_stats.resize(static_cast<std::size_t>(cfg_->hw.cpus));
    for (int c = 0; c < cfg_->hw.cpus; ++c)
      result_.cpu_stats[static_cast<std::size_t>(c)].cpu = c;

    init_threads();
  }

  {
    obs::Span replay_span("engine.replay", "engine");
    for (;;) {
      bool changed = true;
      while (changed) {
        assign();
        changed = any_due() && process_due_now();
      }

      const SimTime next = next_event_time();
      if (next == SimTime::max()) {
        if (done_count_ == threads_.size()) break;
        replay_deadlock();
      }
      if (guard_ != nullptr) {
        guard_->check_cancel();
        guard_->check_sim_time(next);
      }
      advance_to(next);
    }
  }

  // A final footprint + wall check so a small trace that exploded the
  // result storage (timeline on) or overstayed its wall budget still
  // trips even below the periodic cadence.
  if (guard_ != nullptr) {
    guard_->check_result_bytes(approx_result_bytes());
    guard_->check_wall();
  }

  // Finalize.
  obs::Span finalize_span("engine.finalize", "engine");
  result_.total = now_;
  result_.recorded_duration = compiled_->recorded_duration;
  result_.speedup = result_.total.is_zero()
                        ? 1.0
                        : static_cast<double>(compiled_->recorded_duration.ns()) /
                              static_cast<double>(result_.total.ns());
  result_.cpus = cfg_->hw.cpus;
  result_.lwps = unbound_pool_size_;
  for (const Th& t : threads_) {
    // Every thread is done here; its last segment was flushed when it
    // exited, so only the stats remain to be published.
    result_.threads.emplace(t.tid, stats_[static_cast<std::size_t>(t.idx)]);
  }
  for (Lwp& lwp : lwps_) emit_lwp_segment(lwp);
  for (const Lwp& lwp : lwps_) {
    LwpStats ls;
    ls.id = lwp.id;
    ls.dedicated = lwp.dedicated;
    ls.running = lwp.running_total;
    ls.dispatches = lwp.dispatches;
    ls.final_ts_level = lwp.ts_level;
    result_.lwp_stats.push_back(ls);
  }
  std::sort(result_.segments.begin(), result_.segments.end(),
            [](const Segment& a, const Segment& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.tid < b.tid;
            });

  // Publish the self-observation: deterministic counters plus host
  // timing (the latter varies run to run, which is why none of
  // result_.engine is digested).
  ec_.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - wall0)
          .count();
  ec_.steps_per_sec = ec_.wall_seconds > 0.0
                          ? static_cast<double>(ec_.steps) / ec_.wall_seconds
                          : 0.0;
  result_.engine = ec_;
  EngineMetrics& em = EngineMetrics::get();
  em.sims.inc();
  em.steps.inc(ec_.steps);
  em.dispatches.inc(ec_.dispatches);
  em.migrations.inc(ec_.migrations);
  em.preemptions.inc(ec_.preemptions);
  run_span.arg("steps", static_cast<std::int64_t>(ec_.steps));

  return std::move(result_);
}

}  // namespace

struct SimEngine::Impl {
  Engine engine;
};

SimEngine::SimEngine() : impl_(std::make_unique<Impl>()) {}
SimEngine::~SimEngine() = default;
SimEngine::SimEngine(SimEngine&&) noexcept = default;
SimEngine& SimEngine::operator=(SimEngine&&) noexcept = default;

SimResult SimEngine::run(const CompiledTrace& compiled, const SimConfig& config,
                         const RunGuard* guard) {
  return impl_->engine.run(compiled, config, guard);
}

SimResult simulate(const CompiledTrace& compiled, const SimConfig& config) {
  Engine engine;
  return engine.run(compiled, config, nullptr);
}

SimResult simulate(const CompiledTrace& compiled, const SimConfig& config,
                   const RunGuard* guard) {
  Engine engine;
  return engine.run(compiled, config, guard);
}

SimResult simulate(const trace::Trace& trace, const SimConfig& config) {
  return simulate(compile(trace), config);
}

SimResult simulate(const trace::Trace& trace, const SimConfig& config,
                   const RunGuard* guard) {
  return simulate(compile(trace, guard), config, guard);
}

double predict_speedup(const trace::Trace& trace, int cpus) {
  SimConfig cfg;
  cfg.hw.cpus = cpus;
  cfg.build_timeline = false;
  return simulate(trace, cfg).speedup;
}

}  // namespace vppb::core
