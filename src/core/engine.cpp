#include "core/engine.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "core/objects.hpp"
#include "util/error.hpp"

namespace vppb::core {
namespace {

using trace::Op;

constexpr int kInitialTsLevel = 29;  // the Solaris TS default user level

/// Simulated thread control block.
struct Th {
  ThreadId tid = 0;
  const CompiledThread* ct = nullptr;
  std::size_t step = 0;

  enum class St { kUnborn, kReady, kRunning, kBlocked, kSleeping, kDone };
  St st = St::kUnborn;

  /// kCompute runs Step::cpu then applies the op; kOpCost runs the
  /// (possibly scaled) Step::op_cost then advances to the next step.
  enum class Phase { kCompute, kOpCost };
  Phase phase = Phase::kCompute;
  SimTime remaining;

  SimTime ready_at;  ///< dispatch eligibility when kReady (comm delay)
  SimTime wake_at;   ///< timer when kSleeping

  int prio = 0;
  bool prio_overridden = false;
  bool suspended = false;      ///< thr_suspend replay: ineligible to run
  bool pending_suspend = false;
  bool bound = false;
  int bound_cpu = -1;
  int lwp = -1;
  int last_cpu = -1;
  std::uint64_t lib_seq = 0;

  /// What a blocked/sleeping thread is waiting for, so the waker can
  /// finish the operation on its behalf (direct handoff).
  enum class Wait {
    kNone,
    kMutex,
    kSema,
    kCond,            ///< in cond queue; then must acquire wait_mutex
    kSleepThenMutex,  ///< timed-out cond_timedwait: delay, then mutex
    kRwRead,
    kRwWrite,
    kJoin,
    kJoinAny,
    kBarrier,         ///< broadcaster blocked by the barrier rule
    kMutexReacquire,  ///< re-taking mutexes released at a barrier block
    kIoSleep,         ///< extension: waiting out a recorded I/O latency
  };
  Wait wait = Wait::kNone;
  std::uint32_t wait_obj = 0;
  std::uint32_t wait_mutex = 0;
  ThreadId join_target = 0;

  /// Mutexes currently held (replay bookkeeping for the barrier rule).
  std::vector<std::uint32_t> held_mutexes;
  /// Mutexes to re-take after a barrier-rule block, in acquire order.
  std::vector<std::uint32_t> reacquire;

  bool reaped = false;
  bool exited = false;

  // Timeline bookkeeping.
  SimTime state_since;
  SegState seg_state = SegState::kBlocked;
  int seg_cpu = -1;
  ThreadStats stats;
  std::ptrdiff_t open_event = -1;

  const Step& current_step() const { return ct->steps[step]; }
  bool has_steps_left() const { return ct != nullptr && step < ct->steps.size(); }
};

/// Simulated LWP (kernel thread).
struct Lwp {
  int id = -1;
  int ts_level = kInitialTsLevel;
  SimTime quantum_left;
  std::uint64_t disp_seq = 0;
  SimTime running_total;     ///< accumulated on-CPU time (stats)
  std::uint64_t dispatches = 0;
  SimTime enqueued_at;       ///< when it last became dispatchable-not-running
  ThreadId thread = ult::kNoThread;
  struct Th* th = nullptr;   ///< cached pointer to the attached thread
  SimTime seg_since;         ///< LWP-gantt bookkeeping
  ThreadId seg_thread = 0;
  int seg_cpu = -1;
  int cpu = -1;
  bool dedicated = false;    ///< owned by a bound thread
  int bound_cpu = -1;
  bool slept = false;        ///< pending sleep-return boost
};

class Engine {
 public:
  Engine(const CompiledTrace& compiled, const SimConfig& cfg)
      : compiled_(compiled), cfg_(cfg) {}

  SimResult run();

 private:
  // ---- setup ----
  void init_threads();
  Lwp& new_lwp(bool dedicated, int bound_cpu);

  // ---- scheduling ----
  void assign();
  void attach_unbound_threads();
  void dispatch_lwps();
  void place(Lwp& lwp, int cpu);
  void unplace(Lwp& lwp);
  void emit_lwp_segment(Lwp& lwp);
  bool dispatchable(const Lwp& lwp) const;
  bool lwp_waiting_for_cpu() const;

  // ---- execution ----
  bool process_due_now();
  void apply_op(Th& t);
  void enter_op_cost(Th& t);
  void advance_step(Th& t);
  void finish_thread(Th& t);

  // ---- blocking / waking ----
  void block(Th& t, Th::Wait wait, std::uint32_t obj);
  void unblock(Th& t);
  void complete_op_for(Th& t);
  bool try_take_mutex(Th& t, std::uint32_t mutex_id);
  void do_unlock_mutex(Th& t, std::uint32_t mutex_id);
  void continue_reacquire(Th& t);
  void acquire_mutex_or_block(Th& t, std::uint32_t mutex_id);
  void wake_from_cond(Th& t);
  void spawn_thread(ThreadId tid, SimTime at);
  void thread_exited(Th& t);
  SimTime wake_delay(const Th& woken) const;

  // ---- op handlers ----
  void op_create(Th& t, const Step& s);
  void op_join(Th& t, const Step& s);
  void op_mutex(Th& t, const Step& s);
  void op_sema(Th& t, const Step& s);
  void op_cond(Th& t, const Step& s);
  void op_rwlock(Th& t, const Step& s);

  // ---- time & bookkeeping ----
  double rate_factor() const;
  SimTime next_event_time() const;
  void advance_to(SimTime when);
  void set_state(Th& t, Th::St st);
  void emit_segment(Th& t, SimTime upto);
  SegState seg_state_of(Th::St st) const;
  [[noreturn]] void replay_deadlock();

  Th& th(ThreadId tid);
  bool exists(ThreadId tid) const { return threads_.count(tid) != 0; }

  const CompiledTrace& compiled_;
  const SimConfig& cfg_;

  SimTime now_;
  std::map<ThreadId, Th> threads_;
  std::vector<Th*> thread_list_;  ///< map values in tid order (hot loops)
  std::vector<Lwp> lwps_;
  std::vector<ThreadId> cpu_running_;  // per CPU: running thread (by LWP)
  std::vector<int> cpu_lwp_;           // per CPU: placed LWP id (-1 idle)
  ObjectTable objects_;
  std::vector<ThreadId> zombies_;      // exited, unreaped, in exit order
  WaitQueue any_joiners_;
  std::map<ThreadId, WaitQueue> joiners_;
  std::uint64_t next_lib_seq_ = 1;
  std::uint64_t next_disp_seq_ = 1;
  int unbound_pool_size_ = 0;
  int unbound_lwps_made_ = 0;
  int running_count_ = 0;

  SimResult result_;
};

Th& Engine::th(ThreadId tid) {
  auto it = threads_.find(tid);
  VPPB_CHECK_MSG(it != threads_.end(), "simulated thread T" << tid
                                                            << " does not exist");
  return it->second;
}

SegState Engine::seg_state_of(Th::St st) const {
  switch (st) {
    case Th::St::kRunning: return SegState::kRunning;
    case Th::St::kReady: return SegState::kRunnable;
    case Th::St::kSleeping: return SegState::kSleeping;
    default: return SegState::kBlocked;
  }
}

void Engine::emit_segment(Th& t, SimTime upto) {
  if (upto > t.state_since) {
    if (cfg_.build_timeline) {
      result_.segments.push_back(
          Segment{t.tid, t.state_since, upto, t.seg_state, t.seg_cpu});
    }
    const SimTime d = upto - t.state_since;
    switch (t.seg_state) {
      case SegState::kRunning: t.stats.cpu_time += d; break;
      case SegState::kRunnable: t.stats.runnable_time += d; break;
      case SegState::kBlocked: t.stats.blocked_time += d; break;
      case SegState::kSleeping: t.stats.sleeping_time += d; break;
    }
  }
  t.state_since = upto;
}

void Engine::set_state(Th& t, Th::St st) {
  if (t.st == Th::St::kRunning && st != Th::St::kRunning) --running_count_;
  if (t.st != Th::St::kRunning && st == Th::St::kRunning) ++running_count_;
  emit_segment(t, now_);
  t.st = st;
  t.seg_state = seg_state_of(st);
  if (st != Th::St::kRunning) t.seg_cpu = -1;
}

// ---------------------------------------------------------------------------
// Setup

/// Flushes the LWP's current (thread, cpu) interval to the gantt and
/// restarts it with the current attachment/placement.
void Engine::emit_lwp_segment(Lwp& lwp) {
  if (cfg_.build_timeline && now_ > lwp.seg_since &&
      (lwp.seg_thread != 0 || lwp.seg_cpu >= 0)) {
    result_.lwp_segments.push_back(LwpSegment{
        lwp.id, lwp.seg_since, now_, lwp.seg_thread, lwp.seg_cpu});
  }
  lwp.seg_since = now_;
  lwp.seg_thread = lwp.thread == ult::kNoThread ? 0 : lwp.thread;
  lwp.seg_cpu = lwp.cpu;
}

Lwp& Engine::new_lwp(bool dedicated, int bound_cpu) {
  Lwp lwp;
  lwp.id = static_cast<int>(lwps_.size());
  lwp.quantum_left = cfg_.sched.ts_table.entry(lwp.ts_level).quantum;
  lwp.dedicated = dedicated;
  lwp.bound_cpu = bound_cpu;
  lwp.enqueued_at = now_;
  lwps_.push_back(lwp);
  return lwps_.back();
}

void Engine::init_threads() {
  for (const auto& [tid, ct] : compiled_.threads) {
    Th t;
    t.tid = tid;
    t.ct = &ct;
    const ThreadPolicy& pol = cfg_.sched.policy_of(tid);
    t.prio_overridden = pol.override_priority;
    t.prio = pol.override_priority ? pol.priority : ct.initial_priority;
    if (pol.override_binding) {
      t.bound = pol.binding != Binding::kUnbound;
      t.bound_cpu = pol.binding == Binding::kBoundCpu ? pol.cpu : -1;
    } else {
      t.bound = ct.bound;
    }
    if (t.bound_cpu >= cfg_.hw.cpus) t.bound_cpu = cfg_.hw.cpus - 1;
    threads_.emplace(tid, std::move(t));
  }
  thread_list_.reserve(threads_.size());
  for (auto& [tid, t] : threads_) thread_list_.push_back(&t);
  // Main starts at time zero; threads never created by a logged
  // thr_create (hand-written traces) appear at their first record.
  for (auto& [tid, t] : threads_) {
    if (tid == 1) {
      spawn_thread(tid, SimTime::zero());
    } else if (!t.ct->created_in_log) {
      spawn_thread(tid, t.ct->first_record_at);
    }
  }
}

void Engine::spawn_thread(ThreadId tid, SimTime at) {
  Th& t = th(tid);
  VPPB_CHECK_MSG(t.st == Th::St::kUnborn, "T" << tid << " spawned twice");
  t.stats.tid = tid;
  t.stats.created_at = at;
  t.state_since = at;
  if (!t.has_steps_left()) {
    t.st = Th::St::kDone;  // metadata-only thread
    t.exited = true;
    return;
  }
  t.remaining = t.current_step().cpu;
  t.phase = Th::Phase::kCompute;
  t.st = Th::St::kReady;
  t.seg_state = SegState::kRunnable;
  t.ready_at = at;
  t.lib_seq = next_lib_seq_++;
  if (t.bound) {
    Lwp& lwp = new_lwp(/*dedicated=*/true, t.bound_cpu);
    lwp.thread = tid;
    lwp.th = &t;
    t.lwp = lwp.id;
  }
}

// ---------------------------------------------------------------------------
// Scheduling: library level (threads -> LWPs) and kernel level (LWPs -> CPUs)

bool Engine::dispatchable(const Lwp& lwp) const {
  if (lwp.th == nullptr) return false;
  const Th& t = *lwp.th;
  if (t.suspended) return false;
  if (t.st == Th::St::kRunning) return true;
  return t.st == Th::St::kReady && t.ready_at <= now_;
}

void Engine::attach_unbound_threads() {
  // Ready, unbound, unattached threads in (priority, FIFO) order.
  std::vector<Th*> ready;
  for (Th* tp : thread_list_) {
    Th& t = *tp;
    if (!t.bound && !t.suspended && t.st == Th::St::kReady &&
        t.ready_at <= now_ && t.lwp == -1)
      ready.push_back(&t);
  }
  if (ready.empty()) return;
  std::sort(ready.begin(), ready.end(), [](const Th* a, const Th* b) {
    if (a->prio != b->prio) return a->prio > b->prio;
    return a->lib_seq < b->lib_seq;
  });

  std::size_t next = 0;
  for (Lwp& lwp : lwps_) {
    if (next >= ready.size()) break;
    if (lwp.dedicated || lwp.thread != ult::kNoThread) continue;
    Th& t = *ready[next++];
    emit_lwp_segment(lwp);
    lwp.thread = t.tid;
    lwp.th = &t;
    lwp.seg_thread = t.tid;
    t.lwp = lwp.id;
    if (lwp.slept) {
      // The LWP was idle (asleep in the kernel); returning to the
      // dispatch queue boosts its TS level (ts_slpret).
      if (cfg_.sched.ts_dynamics) {
        lwp.ts_level = cfg_.sched.ts_table.entry(lwp.ts_level).on_sleep_return;
        lwp.quantum_left = cfg_.sched.ts_table.entry(lwp.ts_level).quantum;
      }
      lwp.slept = false;
    }
    lwp.disp_seq = next_disp_seq_++;
    lwp.enqueued_at = now_;
  }
  // Grow the unbound pool lazily up to its configured size.
  while (next < ready.size() && unbound_lwps_made_ < unbound_pool_size_) {
    Lwp& lwp = new_lwp(/*dedicated=*/false, -1);
    ++unbound_lwps_made_;
    Th& t = *ready[next++];
    lwp.thread = t.tid;
    lwp.th = &t;
    lwp.seg_since = now_;
    lwp.seg_thread = t.tid;
    t.lwp = lwp.id;
    lwp.disp_seq = next_disp_seq_++;
    lwp.enqueued_at = now_;
  }
}

void Engine::place(Lwp& lwp, int cpu) {
  emit_lwp_segment(lwp);
  lwp.cpu = cpu;
  lwp.seg_cpu = cpu;
  cpu_lwp_[static_cast<std::size_t>(cpu)] = lwp.id;
  Th& t = *lwp.th;
  cpu_running_[static_cast<std::size_t>(cpu)] = t.tid;
  ++result_.cpu_stats[static_cast<std::size_t>(cpu)].dispatches;
  ++lwp.dispatches;

  const bool migrated = t.last_cpu != -1 && t.last_cpu != cpu;
  set_state(t, Th::St::kRunning);
  t.seg_cpu = cpu;
  if (migrated) t.remaining += cfg_.hw.migration_penalty;
  t.remaining += cfg_.cost.context_switch_cost;
  t.last_cpu = cpu;
}

void Engine::unplace(Lwp& lwp) {
  if (lwp.cpu < 0) return;
  emit_lwp_segment(lwp);
  lwp.seg_cpu = -1;
  cpu_lwp_[static_cast<std::size_t>(lwp.cpu)] = -1;
  cpu_running_[static_cast<std::size_t>(lwp.cpu)] = ult::kNoThread;
  lwp.cpu = -1;
  if (lwp.th != nullptr) {
    Th& t = *lwp.th;
    if (t.st == Th::St::kRunning) set_state(t, Th::St::kReady);
    lwp.enqueued_at = now_;
  }
}

void Engine::dispatch_lwps() {
  const auto& table = cfg_.sched.ts_table;

  // Starvation relief for LWPs stuck in the dispatch queue (ts_lwait).
  if (cfg_.sched.ts_dynamics) {
    for (Lwp& lwp : lwps_) {
      if (lwp.cpu >= 0 || !dispatchable(lwp)) continue;
      const TsEntry& e = table.entry(lwp.ts_level);
      if (now_ - lwp.enqueued_at > e.max_wait) {
        lwp.ts_level = e.on_starve;
        lwp.quantum_left = table.entry(lwp.ts_level).quantum;
        lwp.enqueued_at = now_;
      }
    }
  }

  // Waiting (dispatchable, not placed) LWPs.  CPUs are filled by
  // linear selection of the best waiter (user priority, then TS level,
  // then FIFO) rather than by sorting: with many LWPs and few CPUs the
  // selection is what an O(1)-dispatch kernel queue would do, and it
  // keeps the per-event cost proportional to the waiting count.
  auto user_prio_of = [](const Lwp& lwp) {
    return lwp.th == nullptr ? 0 : lwp.th->prio;
  };
  auto better = [&user_prio_of](const Lwp& a, const Lwp& b) {
    const int ua = user_prio_of(a), ub = user_prio_of(b);
    if (ua != ub) return ua > ub;
    if (a.ts_level != b.ts_level) return a.ts_level > b.ts_level;
    return a.disp_seq < b.disp_seq;
  };
  std::vector<Lwp*> waiting;
  for (Lwp& lwp : lwps_) {
    if (lwp.cpu < 0 && dispatchable(lwp)) waiting.push_back(&lwp);
  }
  if (waiting.empty()) return;

  auto cpu_allowed = [](const Lwp& lwp, int cpu) {
    return lwp.bound_cpu < 0 || lwp.bound_cpu == cpu;
  };
  auto take_best_for = [&](int cpu) -> Lwp* {
    std::size_t best = waiting.size();
    for (std::size_t i = 0; i < waiting.size(); ++i) {
      if (!cpu_allowed(*waiting[i], cpu)) continue;
      if (best == waiting.size() || better(*waiting[i], *waiting[best]))
        best = i;
    }
    if (best == waiting.size()) return nullptr;
    Lwp* out = waiting[best];
    waiting.erase(waiting.begin() + static_cast<std::ptrdiff_t>(best));
    return out;
  };

  // Fill idle CPUs.
  for (int cpu = 0; cpu < cfg_.hw.cpus && !waiting.empty(); ++cpu) {
    if (cpu_lwp_[static_cast<std::size_t>(cpu)] != -1) continue;
    if (Lwp* lwp = take_best_for(cpu)) place(*lwp, cpu);
  }

  // Preemption: a waiting LWP with a strictly higher (user prio, TS
  // level) evicts the weakest running LWP it may run on.
  auto key = [&user_prio_of](const Lwp& lwp) {
    return std::pair<int, int>(user_prio_of(lwp), lwp.ts_level);
  };
  for (;;) {
    if (waiting.empty()) break;
    // Strongest waiter overall.
    std::size_t ci = 0;
    for (std::size_t i = 1; i < waiting.size(); ++i) {
      if (better(*waiting[i], *waiting[ci])) ci = i;
    }
    Lwp* contender = waiting[ci];
    int victim_cpu = -1;
    std::pair<int, int> victim_key = key(*contender);
    for (int cpu = 0; cpu < cfg_.hw.cpus; ++cpu) {
      const int lid = cpu_lwp_[static_cast<std::size_t>(cpu)];
      if (lid < 0 || !cpu_allowed(*contender, cpu)) continue;
      const Lwp& running = lwps_[static_cast<std::size_t>(lid)];
      if (key(running) < victim_key) {
        victim_key = key(running);
        victim_cpu = cpu;
      }
    }
    if (victim_cpu < 0) break;
    Lwp& victim = lwps_[static_cast<std::size_t>(
        cpu_lwp_[static_cast<std::size_t>(victim_cpu)])];
    unplace(victim);
    place(*contender, victim_cpu);
    waiting.erase(waiting.begin() + static_cast<std::ptrdiff_t>(ci));
  }
}

void Engine::assign() {
  attach_unbound_threads();
  dispatch_lwps();
}

// ---------------------------------------------------------------------------
// Execution

bool Engine::lwp_waiting_for_cpu() const {
  for (const Lwp& lwp : lwps_) {
    if (lwp.cpu < 0 && dispatchable(lwp)) return true;
  }
  return false;
}

double Engine::rate_factor() const {
  const double alpha = cfg_.hw.memory_contention_alpha;
  if (alpha <= 0.0 || running_count_ <= 1) return 1.0;
  return 1.0 + alpha * static_cast<double>(running_count_ - 1);
}

SimTime Engine::next_event_time() const {
  SimTime next = SimTime::max();
  const double rate = rate_factor();
  // Quantum expiry only changes anything when an LWP is waiting for a
  // CPU; without contention the expiry (level decay + quantum refresh)
  // is applied lazily at the next natural event, which avoids flooding
  // long uncontended computations with expiry events.
  const bool contended = lwp_waiting_for_cpu();
  for (const Th* tp : thread_list_) {
    const Th& t = *tp;
    if (t.st == Th::St::kRunning) {
      next = std::min(next, now_ + t.remaining.scaled(rate));
      if (contended) {
        const Lwp& lwp = lwps_[static_cast<std::size_t>(t.lwp)];
        next = std::min(next, now_ + lwp.quantum_left);
      }
    } else if (t.st == Th::St::kReady && t.ready_at > now_) {
      next = std::min(next, t.ready_at);
    } else if (t.st == Th::St::kSleeping) {
      next = std::min(next, t.wake_at);
    }
  }
  return next;
}

void Engine::advance_to(SimTime when) {
  VPPB_CHECK_MSG(when >= now_, "time went backwards in the simulator");
  const SimTime dt = when - now_;
  if (dt.is_zero()) return;
  const double rate = rate_factor();
  for (Th* tp : thread_list_) {
    Th& t = *tp;
    if (t.st != Th::St::kRunning) continue;
    SimTime progress = dt.scaled(1.0 / rate);
    if (progress > t.remaining) progress = t.remaining;
    t.remaining -= progress;
    Lwp& lwp = lwps_[static_cast<std::size_t>(t.lwp)];
    lwp.quantum_left =
        lwp.quantum_left > dt ? lwp.quantum_left - dt : SimTime::zero();
    lwp.running_total += dt;
    result_.cpu_stats[static_cast<std::size_t>(lwp.cpu)].busy += dt;
  }
  now_ = when;
}

/// Handles everything due at `now_`: sleepers waking, quantum expiries,
/// and threads whose current phase has no demand left.  Returns true if
/// any state changed (so the caller re-runs assignment).
bool Engine::process_due_now() {
  bool changed = false;

  // Timer wakeups (timed-out cond_timedwait and I/O-latency replays).
  for (Th* tp : thread_list_) {
    Th& t = *tp;
    if (t.st == Th::St::kSleeping && t.wake_at <= now_) {
      if (t.wait == Th::Wait::kIoSleep) {
        t.wait = Th::Wait::kNone;
        set_state(t, Th::St::kReady);
        t.ready_at = now_;
        t.lib_seq = next_lib_seq_++;
        complete_op_for(t);
        changed = true;
        continue;
      }
      VPPB_CHECK(t.wait == Th::Wait::kSleepThenMutex);
      t.wait = Th::Wait::kNone;
      const std::uint32_t mutex_id = t.wait_mutex;
      set_state(t, Th::St::kReady);  // placeholder; acquire may re-block
      t.ready_at = now_;
      t.lib_seq = next_lib_seq_++;
      acquire_mutex_or_block(t, mutex_id);
      changed = true;
    }
  }

  // Quantum expiry: the running LWP's level decays and — when another
  // LWP is waiting for a CPU — it goes to the back of the dispatch
  // queue.  Without contention the refresh happens in place.
  const bool contended = lwp_waiting_for_cpu();
  for (Lwp& lwp : lwps_) {
    if (lwp.cpu < 0 || !lwp.quantum_left.is_zero()) continue;
    if (cfg_.sched.ts_dynamics)
      lwp.ts_level = cfg_.sched.ts_table.entry(lwp.ts_level).on_expiry;
    lwp.quantum_left = cfg_.sched.ts_table.entry(lwp.ts_level).quantum;
    if (contended) {
      lwp.disp_seq = next_disp_seq_++;
      unplace(lwp);
      changed = true;
    }
  }

  // Phase completions for running threads, in deterministic tid order.
  for (Th* tp : thread_list_) {
    Th& t = *tp;
    if (t.st != Th::St::kRunning || !t.remaining.is_zero()) continue;
    if (t.phase == Th::Phase::kCompute) {
      apply_op(t);
    } else {
      advance_step(t);
    }
    changed = true;
  }
  return changed;
}

void Engine::apply_op(Th& t) {
  const Step& s = t.current_step();

  // Open the event entry shown by the Visualizer.
  if (cfg_.build_timeline) {
    SimEvent ev;
    ev.at = now_;
    ev.done = now_;
    ev.tid = t.tid;
    ev.op = s.op;
    ev.obj = s.obj;
    ev.outcome = s.outcome;
    ev.loc = s.loc;
    ev.cpu = t.last_cpu;
    t.open_event = static_cast<std::ptrdiff_t>(result_.events.size());
    result_.events.push_back(ev);
  }

  switch (s.op) {
    case Op::kThrCreate: op_create(t, s); break;
    case Op::kThrExit:
      finish_thread(t);
      return;
    case Op::kThrJoin: op_join(t, s); break;
    case Op::kThrYield: {
      // Back of the library queue (and of the kernel queue for bound
      // threads): detach and re-enter as runnable.
      Lwp& lwp = lwps_[static_cast<std::size_t>(t.lwp)];
      unplace(lwp);
      if (!t.bound) {
        lwp.thread = ult::kNoThread;
        lwp.th = nullptr;
        t.lwp = -1;
        lwp.slept = true;
      } else {
        lwp.disp_seq = next_disp_seq_++;
      }
      t.lib_seq = next_lib_seq_++;
      enter_op_cost(t);
      break;
    }
    case Op::kThrSetPrio: {
      const auto target = static_cast<ThreadId>(s.obj.id);
      if (exists(target)) {
        Th& tgt = th(target);
        // A user-supplied priority override makes the simulator ignore
        // the thr_setprio events for that thread (paper §3.2).
        if (!tgt.prio_overridden) tgt.prio = static_cast<int>(s.arg);
      }
      enter_op_cost(t);
      break;
    }
    case Op::kThrSetConcurrency:
      // The simulator's LWP knob overrides the program (paper §3.2:
      // "in this case the thr_setconcurrency in the program has no
      // effect").
      enter_op_cost(t);
      break;
    case Op::kThrSuspend: {
      const auto target = static_cast<ThreadId>(s.obj.id);
      if (exists(target)) {
        Th& tgt = th(target);
        if (tgt.st == Th::St::kBlocked || tgt.st == Th::St::kSleeping) {
          tgt.pending_suspend = true;
        } else if (tgt.st != Th::St::kDone) {
          tgt.suspended = true;
          if (tgt.st == Th::St::kRunning) {
            Lwp& lwp = lwps_[static_cast<std::size_t>(tgt.lwp)];
            unplace(lwp);
          }
        }
      }
      enter_op_cost(t);
      break;
    }
    case Op::kThrContinue: {
      const auto target = static_cast<ThreadId>(s.obj.id);
      if (exists(target)) {
        Th& tgt = th(target);
        tgt.pending_suspend = false;
        tgt.suspended = false;
      }
      enter_op_cost(t);
      break;
    }
    case Op::kUserMark:
    case Op::kMutexInit:
    case Op::kMutexDestroy:
    case Op::kSemaDestroy:
    case Op::kCondInit:
    case Op::kCondDestroy:
    case Op::kRwInit:
    case Op::kRwDestroy:
      enter_op_cost(t);
      break;
    case Op::kSemaInit:
      objects_.sema(s.obj.id).count = s.arg;
      enter_op_cost(t);
      break;
    case Op::kMutexLock:
    case Op::kMutexTrylock:
    case Op::kMutexUnlock:
      op_mutex(t, s);
      break;
    case Op::kSemaWait:
    case Op::kSemaTrywait:
    case Op::kSemaPost:
      op_sema(t, s);
      break;
    case Op::kCondWait:
    case Op::kCondTimedwait:
    case Op::kCondSignal:
    case Op::kCondBroadcast:
      op_cond(t, s);
      break;
    case Op::kRwRdlock:
    case Op::kRwTryRdlock:
    case Op::kRwWrlock:
    case Op::kRwTryWrlock:
    case Op::kRwUnlock:
      op_rwlock(t, s);
      break;
    case Op::kIoWait: {
      // Extension: park the thread for the recorded device latency; the
      // LWP is released meanwhile (an async-I/O-capable library).
      t.wait = Th::Wait::kIoSleep;
      t.wake_at = now_ + s.delay;
      Lwp* lwp = t.lwp >= 0 ? &lwps_[static_cast<std::size_t>(t.lwp)] : nullptr;
      if (lwp != nullptr) {
        unplace(*lwp);
        if (!t.bound) {
          emit_lwp_segment(*lwp);
          lwp->thread = ult::kNoThread;
          lwp->th = nullptr;
          lwp->seg_thread = 0;
          t.lwp = -1;
        }
        lwp->slept = true;
      }
      set_state(t, Th::St::kSleeping);
      break;
    }
    case Op::kStartCollect:
    case Op::kEndCollect:
      enter_op_cost(t);
      break;
  }
}

void Engine::enter_op_cost(Th& t) {
  const Step& s = t.current_step();
  double factor = 1.0;
  if (s.op == Op::kThrCreate) {
    // Creating a bound thread takes 6.7x longer (paper §3.2).
    const auto child = static_cast<ThreadId>(s.outcome);
    if (exists(child) && th(child).bound)
      factor = cfg_.cost.bound_create_factor;
  } else if (t.bound && trace::op_obj_kind(s.op) != trace::ObjKind::kThread &&
             trace::op_obj_kind(s.op) != trace::ObjKind::kNone &&
             trace::op_obj_kind(s.op) != trace::ObjKind::kMark &&
             trace::op_obj_kind(s.op) != trace::ObjKind::kIo) {
    // Synchronization by bound threads takes 5.9x longer (paper §3.2).
    factor = cfg_.cost.bound_sync_factor;
  }
  t.phase = Th::Phase::kOpCost;
  t.remaining = s.op_cost.scaled(factor);
}

void Engine::advance_step(Th& t) {
  if (t.open_event >= 0) {
    result_.events[static_cast<std::size_t>(t.open_event)].done = now_;
    t.open_event = -1;
  }
  ++t.step;
  t.phase = Th::Phase::kCompute;
  if (!t.has_steps_left()) {
    // Trace ended without an explicit thr_exit (hand-written traces):
    // treat it as an exit.
    finish_thread(t);
    return;
  }
  t.remaining = t.current_step().cpu;
}

void Engine::finish_thread(Th& t) {
  if (t.open_event >= 0) {
    result_.events[static_cast<std::size_t>(t.open_event)].done = now_;
    t.open_event = -1;
  }
  if (t.lwp >= 0) {
    Lwp& lwp = lwps_[static_cast<std::size_t>(t.lwp)];
    unplace(lwp);
    emit_lwp_segment(lwp);
    lwp.thread = ult::kNoThread;
    lwp.th = nullptr;
    lwp.seg_thread = 0;
    lwp.slept = true;
    t.lwp = -1;
  }
  set_state(t, Th::St::kDone);
  t.exited = true;
  t.stats.exited_at = now_;
  t.step = t.ct->steps.size();
  thread_exited(t);
}

void Engine::thread_exited(Th& t) {
  // Specific joiners first.
  auto it = joiners_.find(t.tid);
  if (it != joiners_.end() && !it->second.empty()) {
    const ThreadId j = it->second.pop();
    Th& joiner = th(j);
    t.reaped = true;
    joiner.wait = Th::Wait::kNone;
    unblock(joiner);
    // Remaining specific joiners lose the race (ESRCH in the real API);
    // release them too so the replay cannot hang.
    while (!it->second.empty()) {
      Th& also = th(it->second.pop());
      also.wait = Th::Wait::kNone;
      unblock(also);
    }
    return;
  }
  // Otherwise the zombie waits for a wildcard joiner.
  if (!any_joiners_.empty()) {
    const ThreadId j = any_joiners_.pop();
    Th& joiner = th(j);
    t.reaped = true;
    joiner.wait = Th::Wait::kNone;
    unblock(joiner);
    return;
  }
  zombies_.push_back(t.tid);
}

SimTime Engine::wake_delay(const Th& woken) const {
  // An event on one CPU propagates to another after the communication
  // delay (paper §3.2).  Wakeups within one CPU are immediate.
  if (cfg_.hw.cpus <= 1 || cfg_.hw.comm_delay.is_zero()) return SimTime::zero();
  // The waker is the thread currently applying an op; threads_ lookups
  // here would be circular, so use a conservative rule: a thread that
  // last ran on some CPU is assumed to be woken from a different one
  // whenever more than one CPU exists.
  (void)woken;
  return cfg_.hw.comm_delay;
}

void Engine::block(Th& t, Th::Wait wait, std::uint32_t obj) {
  Lwp* lwp = t.lwp >= 0 ? &lwps_[static_cast<std::size_t>(t.lwp)] : nullptr;
  if (lwp != nullptr) {
    unplace(*lwp);
    if (!t.bound) {
      emit_lwp_segment(*lwp);
      lwp->thread = ult::kNoThread;
      lwp->th = nullptr;
      lwp->seg_thread = 0;
      t.lwp = -1;
      lwp->slept = true;  // will boost when it picks up new work
    } else {
      lwp->slept = true;  // bound LWP sleeps with its thread
    }
  }
  t.wait = wait;
  t.wait_obj = obj;
  set_state(t, Th::St::kBlocked);
}

void Engine::unblock(Th& t) {
  VPPB_CHECK_MSG(t.st == Th::St::kBlocked || t.st == Th::St::kReady,
                 "unblock of T" << t.tid << " in unexpected state");
  if (t.st == Th::St::kBlocked) set_state(t, Th::St::kReady);
  if (t.pending_suspend) {
    // thr_suspend hit while blocked: stop at the wakeup point.
    t.pending_suspend = false;
    t.suspended = true;
  }
  t.ready_at = now_ + wake_delay(t);
  t.lib_seq = next_lib_seq_++;
  complete_op_for(t);
}

void Engine::complete_op_for(Th& t) {
  // The blocking operation has succeeded on this thread's behalf; charge
  // the recorded library cost and move on.
  enter_op_cost(t);
}

bool Engine::try_take_mutex(Th& t, std::uint32_t mutex_id) {
  SimMutex& m = objects_.mutex(mutex_id);
  if (m.owner != ult::kNoThread) return false;
  m.owner = t.tid;
  t.held_mutexes.push_back(mutex_id);
  return true;
}

void Engine::do_unlock_mutex(Th& t, std::uint32_t mutex_id) {
  SimMutex& m = objects_.mutex(mutex_id);
  VPPB_CHECK_MSG(m.owner == t.tid, "replay: T" << t.tid << " releases mutex#"
                                               << mutex_id
                                               << " it does not hold");
  std::erase(t.held_mutexes, mutex_id);
  const ThreadId next = m.waiters.pop();
  m.owner = next;
  if (next == ult::kNoThread) return;
  Th& w = th(next);
  w.held_mutexes.push_back(mutex_id);
  if (w.wait == Th::Wait::kMutexReacquire) {
    // Part of a barrier re-acquisition chain: keep going.
    VPPB_CHECK(!w.reacquire.empty() && w.reacquire.front() == mutex_id);
    w.reacquire.erase(w.reacquire.begin());
    continue_reacquire(w);
    return;
  }
  w.wait = Th::Wait::kNone;
  unblock(w);
}

void Engine::continue_reacquire(Th& t) {
  while (!t.reacquire.empty()) {
    const std::uint32_t id = t.reacquire.front();
    if (try_take_mutex(t, id)) {
      t.reacquire.erase(t.reacquire.begin());
      continue;
    }
    objects_.mutex(id).waiters.push(t.tid, t.prio);
    t.wait = Th::Wait::kMutexReacquire;
    t.wait_obj = id;
    if (t.st != Th::St::kBlocked) set_state(t, Th::St::kBlocked);
    return;
  }
  t.wait = Th::Wait::kNone;
  unblock(t);
}

void Engine::acquire_mutex_or_block(Th& t, std::uint32_t mutex_id) {
  if (try_take_mutex(t, mutex_id)) {
    if (t.st == Th::St::kBlocked) set_state(t, Th::St::kReady);
    t.ready_at = std::max(t.ready_at, now_);
    t.wait = Th::Wait::kNone;
    complete_op_for(t);
    return;
  }
  objects_.mutex(mutex_id).waiters.push(t.tid, t.prio);
  t.wait = Th::Wait::kMutex;
  t.wait_obj = mutex_id;
  if (t.st != Th::St::kBlocked) set_state(t, Th::St::kBlocked);
}

void Engine::wake_from_cond(Th& t) {
  // Signalled: now contend for the mutex recorded with the wait.
  t.wait = Th::Wait::kNone;
  acquire_mutex_or_block(t, t.wait_mutex);
}

// ---- op handlers -----------------------------------------------------------

void Engine::op_create(Th& t, const Step& s) {
  const auto child = static_cast<ThreadId>(s.outcome);
  if (exists(child) && th(child).st == Th::St::kUnborn) {
    spawn_thread(child, now_);
    Th& c = th(child);
    c.ready_at = now_ + wake_delay(c);
    constexpr long kThrSuspended = 0x80;  // THR_SUSPENDED
    if ((s.arg & kThrSuspended) != 0) c.suspended = true;
  }
  enter_op_cost(t);
}

void Engine::op_join(Th& t, const Step& s) {
  // A join that failed in the recording (ESRCH/EDEADLK — e.g. the final
  // probe of a join-all loop) returns without waiting; its outcome field
  // carries no departed thread.
  if (s.outcome == 0) {
    enter_op_cost(t);
    return;
  }
  const auto target = static_cast<std::int64_t>(s.obj.id);
  if (target == trace::kAnyThread) {
    if (!zombies_.empty()) {
      const ThreadId z = zombies_.front();
      zombies_.erase(zombies_.begin());
      th(z).reaped = true;
      enter_op_cost(t);
      return;
    }
    block(t, Th::Wait::kJoinAny, 0);
    any_joiners_.push(t.tid, t.prio);
    return;
  }
  const auto tgt_id = static_cast<ThreadId>(target);
  if (!exists(tgt_id)) {
    enter_op_cost(t);  // ESRCH in the log too; nothing to wait for
    return;
  }
  Th& target_th = th(tgt_id);
  if (target_th.exited) {
    // Already a zombie (possibly already reaped by a wildcard join —
    // the mismatch the paper's §6 acknowledges); complete immediately.
    target_th.reaped = true;
    std::erase(zombies_, tgt_id);
    enter_op_cost(t);
    return;
  }
  block(t, Th::Wait::kJoin, s.obj.id);
  t.join_target = tgt_id;
  joiners_[tgt_id].push(t.tid, t.prio);
}

void Engine::op_mutex(Th& t, const Step& s) {
  SimMutex& m = objects_.mutex(s.obj.id);
  switch (s.op) {
    case Op::kMutexLock:
      if (try_take_mutex(t, s.obj.id)) {
        enter_op_cost(t);
      } else {
        block(t, Th::Wait::kMutex, s.obj.id);
        m.waiters.push(t.tid, t.prio);
      }
      break;
    case Op::kMutexTrylock:
      // Paper §3.2: "if the thread gained access to the lock in the log
      // file, the simulation will do a mutex_lock, otherwise no action
      // is taken".
      if (s.outcome == 1) {
        if (try_take_mutex(t, s.obj.id)) {
          enter_op_cost(t);
        } else {
          block(t, Th::Wait::kMutex, s.obj.id);
          m.waiters.push(t.tid, t.prio);
        }
      } else {
        enter_op_cost(t);
      }
      break;
    case Op::kMutexUnlock:
      do_unlock_mutex(t, s.obj.id);
      enter_op_cost(t);
      break;
    default: VPPB_CHECK(false);
  }
}

void Engine::op_sema(Th& t, const Step& s) {
  SimSema& sem = objects_.sema(s.obj.id);
  switch (s.op) {
    case Op::kSemaWait:
      if (sem.count > 0) {
        --sem.count;
        enter_op_cost(t);
      } else {
        block(t, Th::Wait::kSema, s.obj.id);
        sem.waiters.push(t.tid, t.prio);
      }
      break;
    case Op::kSemaTrywait:
      if (s.outcome == 1) {
        if (sem.count > 0) {
          --sem.count;
          enter_op_cost(t);
        } else {
          block(t, Th::Wait::kSema, s.obj.id);
          sem.waiters.push(t.tid, t.prio);
        }
      } else {
        enter_op_cost(t);
      }
      break;
    case Op::kSemaPost: {
      const ThreadId next = sem.waiters.pop();
      if (next != ult::kNoThread) {
        Th& w = th(next);
        w.wait = Th::Wait::kNone;
        unblock(w);  // the unit is handed to the sleeper
      } else {
        ++sem.count;
      }
      enter_op_cost(t);
      break;
    }
    default: VPPB_CHECK(false);
  }
}

void Engine::op_cond(Th& t, const Step& s) {
  SimCond& c = objects_.cond(s.obj.id);
  switch (s.op) {
    case Op::kCondWait:
    case Op::kCondTimedwait: {
      const auto mutex_id = static_cast<std::uint32_t>(s.arg);
      // Release the mutex exactly as the library does internally.
      do_unlock_mutex(t, mutex_id);

      if (s.op == Op::kCondTimedwait && s.outcome == 0) {
        // Timed out in the recording: replay as a delay then re-acquire
        // the mutex (paper §3.2).
        t.wait = Th::Wait::kSleepThenMutex;
        t.wait_mutex = mutex_id;
        t.wake_at = now_ + s.delay;
        Lwp* lwp = t.lwp >= 0 ? &lwps_[static_cast<std::size_t>(t.lwp)] : nullptr;
        if (lwp != nullptr) {
          unplace(*lwp);
          if (!t.bound) {
            lwp->thread = ult::kNoThread;
            lwp->th = nullptr;
            t.lwp = -1;
          }
          lwp->slept = true;
        }
        set_state(t, Th::St::kSleeping);
        break;
      }

      // A signal recorded for this waiter may already have fired under
      // the simulated schedule; consume it instead of sleeping forever.
      if (c.pending_signals > 0) {
        --c.pending_signals;
        t.wait_mutex = mutex_id;
        Lwp* lwp2 = t.lwp >= 0 ? &lwps_[static_cast<std::size_t>(t.lwp)] : nullptr;
        if (lwp2 != nullptr) {
          unplace(*lwp2);
          if (!t.bound) {
            lwp2->thread = ult::kNoThread;
            lwp2->th = nullptr;
            t.lwp = -1;
          }
          lwp2->slept = true;
        }
        set_state(t, Th::St::kBlocked);
        wake_from_cond(t);
        break;
      }

      block(t, Th::Wait::kCond, s.obj.id);
      t.wait_mutex = mutex_id;
      c.waiters.push(t.tid, t.prio);

      // A pending barrier broadcast may now have enough arrivals.
      if (c.pending &&
          static_cast<std::int64_t>(c.waiters.size()) >= c.pending->needed) {
        Th& caster = th(c.pending->broadcaster);
        c.pending.reset();
        while (!c.waiters.empty()) {
          Th& w = th(c.waiters.pop());
          wake_from_cond(w);
        }
        continue_reacquire(caster);
      }
      break;
    }
    case Op::kCondSignal: {
      const ThreadId next = c.waiters.pop();
      if (next != ult::kNoThread) {
        wake_from_cond(th(next));
      } else if (s.outcome == 1) {
        // The recording woke a waiter; it has not arrived yet in the
        // simulation — remember the signal for it (see SimCond).
        ++c.pending_signals;
      }
      enter_op_cost(t);
      break;
    }
    case Op::kCondBroadcast: {
      const std::int64_t needed = s.outcome;  // waiters released in the log
      if (static_cast<std::int64_t>(c.waiters.size()) >= needed) {
        while (!c.waiters.empty()) {
          Th& w = th(c.waiters.pop());
          wake_from_cond(w);
        }
        enter_op_cost(t);
      } else {
        // Barrier rule (paper §6): wait until as many threads arrive at
        // the barrier as the log released, then the last arrival
        // triggers the release above.  The broadcaster releases any
        // mutexes it holds (it typically holds the barrier mutex, which
        // the still-arriving threads need) and re-takes them afterwards.
        VPPB_CHECK_MSG(!c.pending, "two pending broadcasts on cond#"
                                       << s.obj.id);
        c.pending = SimCond::PendingBroadcast{t.tid, needed};
        t.reacquire = t.held_mutexes;
        for (const std::uint32_t id : std::vector<std::uint32_t>(t.held_mutexes))
          do_unlock_mutex(t, id);
        block(t, Th::Wait::kBarrier, s.obj.id);
      }
      break;
    }
    default: VPPB_CHECK(false);
  }
}

void Engine::op_rwlock(Th& t, const Step& s) {
  SimRwlock& rw = objects_.rwlock(s.obj.id);
  auto rd_acquire = [&]() {
    if (rw.writer == ult::kNoThread && rw.waiting_writers == 0) {
      ++rw.readers;
      enter_op_cost(t);
    } else {
      block(t, Th::Wait::kRwRead, s.obj.id);
      rw.reader_q.push(t.tid, t.prio);
    }
  };
  auto wr_acquire = [&]() {
    if (rw.writer == ult::kNoThread && rw.readers == 0) {
      rw.writer = t.tid;
      enter_op_cost(t);
    } else {
      ++rw.waiting_writers;
      block(t, Th::Wait::kRwWrite, s.obj.id);
      rw.writer_q.push(t.tid, t.prio);
    }
  };
  switch (s.op) {
    case Op::kRwRdlock: rd_acquire(); break;
    case Op::kRwTryRdlock:
      if (s.outcome == 1) rd_acquire(); else enter_op_cost(t);
      break;
    case Op::kRwWrlock: wr_acquire(); break;
    case Op::kRwTryWrlock:
      if (s.outcome == 1) wr_acquire(); else enter_op_cost(t);
      break;
    case Op::kRwUnlock: {
      if (rw.writer == t.tid) {
        rw.writer = ult::kNoThread;
      } else {
        VPPB_CHECK_MSG(rw.readers > 0, "replay: rw_unlock of rwlock#"
                                           << s.obj.id << " not held");
        --rw.readers;
      }
      if (rw.writer == ult::kNoThread && rw.readers == 0) {
        const ThreadId w = rw.writer_q.pop();
        if (w != ult::kNoThread) {
          --rw.waiting_writers;
          rw.writer = w;
          Th& wt = th(w);
          wt.wait = Th::Wait::kNone;
          unblock(wt);
        } else {
          while (!rw.reader_q.empty()) {
            Th& rt = th(rw.reader_q.pop());
            ++rw.readers;
            rt.wait = Th::Wait::kNone;
            unblock(rt);
          }
        }
      }
      enter_op_cost(t);
      break;
    }
    default: VPPB_CHECK(false);
  }
}

// ---------------------------------------------------------------------------

void Engine::replay_deadlock() {
  std::ostringstream os;
  os << "replay deadlock at t=" << now_ << ":\n";
  for (const auto& [tid, t] : threads_) {
    os << "  T" << tid << " step " << t.step << "/" << t.ct->steps.size();
    switch (t.st) {
      case Th::St::kUnborn: os << " unborn"; break;
      case Th::St::kReady: os << " ready"; break;
      case Th::St::kRunning: os << " running"; break;
      case Th::St::kBlocked: os << " blocked"; break;
      case Th::St::kSleeping: os << " sleeping"; break;
      case Th::St::kDone: os << " done"; break;
    }
    if (t.st == Th::St::kBlocked && t.has_steps_left())
      os << " in " << trace::op_name(t.current_step().op);
    os << '\n';
  }
  throw Error(os.str());
}

SimResult Engine::run() {
  VPPB_CHECK_MSG(cfg_.hw.cpus >= 1, "need at least one CPU");
  VPPB_CHECK_MSG(cfg_.sched.lwps >= 0, "negative LWP count");

  unbound_pool_size_ = cfg_.sched.lwps > 0
                           ? cfg_.sched.lwps
                           : static_cast<int>(compiled_.threads.size());
  cpu_running_.assign(static_cast<std::size_t>(cfg_.hw.cpus), ult::kNoThread);
  cpu_lwp_.assign(static_cast<std::size_t>(cfg_.hw.cpus), -1);
  result_.cpu_stats.resize(static_cast<std::size_t>(cfg_.hw.cpus));
  for (int c = 0; c < cfg_.hw.cpus; ++c)
    result_.cpu_stats[static_cast<std::size_t>(c)].cpu = c;

  init_threads();

  for (;;) {
    bool changed = true;
    while (changed) {
      assign();
      changed = process_due_now();
    }

    const SimTime next = next_event_time();
    if (next == SimTime::max()) {
      bool all_done = true;
      for (const auto& [tid, t] : threads_) {
        if (t.st != Th::St::kDone) all_done = false;
      }
      if (all_done) break;
      replay_deadlock();
    }
    advance_to(next);
  }

  // Finalize.
  result_.total = now_;
  result_.recorded_duration = compiled_.recorded_duration;
  result_.speedup = result_.total.is_zero()
                        ? 1.0
                        : static_cast<double>(compiled_.recorded_duration.ns()) /
                              static_cast<double>(result_.total.ns());
  result_.cpus = cfg_.hw.cpus;
  result_.lwps = unbound_pool_size_;
  for (auto& [tid, t] : threads_) {
    // Every thread is done here; its last segment was flushed when it
    // exited, so only the stats remain to be published.
    result_.threads.emplace(tid, t.stats);
  }
  for (Lwp& lwp : lwps_) emit_lwp_segment(lwp);
  for (const Lwp& lwp : lwps_) {
    LwpStats ls;
    ls.id = lwp.id;
    ls.dedicated = lwp.dedicated;
    ls.running = lwp.running_total;
    ls.dispatches = lwp.dispatches;
    ls.final_ts_level = lwp.ts_level;
    result_.lwp_stats.push_back(ls);
  }
  std::sort(result_.segments.begin(), result_.segments.end(),
            [](const Segment& a, const Segment& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.tid < b.tid;
            });
  return result_;
}

}  // namespace

SimResult simulate(const CompiledTrace& compiled, const SimConfig& config) {
  Engine engine(compiled, config);
  return engine.run();
}

SimResult simulate(const trace::Trace& trace, const SimConfig& config) {
  return simulate(compile(trace), config);
}

double predict_speedup(const trace::Trace& trace, int cpus) {
  SimConfig cfg;
  cfg.hw.cpus = cpus;
  cfg.build_timeline = false;
  return simulate(trace, cfg).speedup;
}

}  // namespace vppb::core
