#include "core/result.hpp"

#include <algorithm>
#include <cstring>

#include "util/error.hpp"

namespace vppb::core {

const char* to_string(SegState s) {
  switch (s) {
    case SegState::kRunning: return "running";
    case SegState::kRunnable: return "runnable";
    case SegState::kBlocked: return "blocked";
    case SegState::kSleeping: return "sleeping";
  }
  return "?";
}

std::vector<Segment> SimResult::thread_segments(ThreadId tid) const {
  std::vector<Segment> out;
  for (const Segment& s : segments) {
    if (s.tid == tid) out.push_back(s);
  }
  std::sort(out.begin(), out.end(),
            [](const Segment& a, const Segment& b) { return a.start < b.start; });
  return out;
}

std::vector<LwpSegment> SimResult::segments_of_lwp(int lwp) const {
  std::vector<LwpSegment> out;
  for (const LwpSegment& s : lwp_segments) {
    if (s.lwp == lwp) out.push_back(s);
  }
  std::sort(out.begin(), out.end(),
            [](const LwpSegment& a, const LwpSegment& b) {
              return a.start < b.start;
            });
  return out;
}

SimResult::Parallelism SimResult::parallelism_at(SimTime t) const {
  Parallelism p;
  for (const Segment& s : segments) {
    if (s.start <= t && t < s.end) {
      if (s.state == SegState::kRunning) ++p.running;
      if (s.state == SegState::kRunnable) ++p.runnable;
    }
  }
  return p;
}

std::vector<SimResult::ProfilePoint> SimResult::parallelism_profile(
    std::size_t samples) const {
  VPPB_CHECK_MSG(samples >= 2, "profile needs at least two samples");
  std::vector<ProfilePoint> out;
  out.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    const SimTime t = SimTime::nanos(total.ns() * static_cast<std::int64_t>(i) /
                                     static_cast<std::int64_t>(samples - 1));
    const Parallelism p = parallelism_at(t);
    out.push_back(ProfilePoint{t, p.running, p.runnable});
  }
  return out;
}

namespace {

/// FNV-1a over 64-bit words; every field is widened to one word so the
/// digest is independent of struct padding and host endianness quirks.
struct Fnv {
  std::uint64_t h = 1469598103934665603ULL;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  }
  void mix_i64(std::int64_t v) { mix(static_cast<std::uint64_t>(v)); }
  void mix_time(SimTime t) { mix_i64(t.ns()); }
  void mix_double(double d) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof d);
    std::memcpy(&bits, &d, sizeof bits);
    mix(bits);
  }
};

}  // namespace

std::uint64_t digest(const SimResult& r) {
  Fnv f;
  f.mix_time(r.total);
  f.mix_time(r.recorded_duration);
  f.mix_double(r.speedup);
  f.mix_i64(r.cpus);
  f.mix_i64(r.lwps);
  f.mix(r.segments.size());
  for (const Segment& s : r.segments) {
    f.mix_i64(s.tid);
    f.mix_time(s.start);
    f.mix_time(s.end);
    f.mix_i64(static_cast<int>(s.state));
    f.mix_i64(s.cpu);
  }
  f.mix(r.events.size());
  for (const SimEvent& e : r.events) {
    f.mix_time(e.at);
    f.mix_time(e.done);
    f.mix_i64(e.tid);
    f.mix_i64(static_cast<int>(e.op));
    f.mix_i64(static_cast<int>(e.obj.kind));
    f.mix_i64(e.obj.id);
    f.mix_i64(e.outcome);
    f.mix_i64(e.loc);
    f.mix_i64(e.cpu);
  }
  f.mix(r.threads.size());
  for (const auto& [tid, st] : r.threads) {
    f.mix_i64(tid);
    f.mix_time(st.created_at);
    f.mix_time(st.exited_at);
    f.mix_time(st.cpu_time);
    f.mix_time(st.runnable_time);
    f.mix_time(st.blocked_time);
    f.mix_time(st.sleeping_time);
  }
  f.mix(r.cpu_stats.size());
  for (const CpuStats& c : r.cpu_stats) {
    f.mix_i64(c.cpu);
    f.mix_time(c.busy);
    f.mix(c.dispatches);
  }
  f.mix(r.lwp_stats.size());
  for (const LwpStats& l : r.lwp_stats) {
    f.mix_i64(l.id);
    f.mix_i64(l.dedicated ? 1 : 0);
    f.mix_time(l.running);
    f.mix(l.dispatches);
    f.mix_i64(l.final_ts_level);
  }
  f.mix(r.lwp_segments.size());
  for (const LwpSegment& s : r.lwp_segments) {
    f.mix_i64(s.lwp);
    f.mix_time(s.start);
    f.mix_time(s.end);
    f.mix_i64(s.thread);
    f.mix_i64(s.cpu);
  }
  return f.h;
}

std::uint64_t digest(const std::vector<SimResult>& results) {
  Fnv f;
  f.mix(results.size());
  for (const SimResult& r : results) f.mix(digest(r));
  return f.h;
}

void SimResult::validate() const {
  VPPB_CHECK_MSG(total >= SimTime::zero(), "negative total time");
  std::map<ThreadId, std::vector<Segment>> per_thread;
  for (const Segment& s : segments) {
    VPPB_CHECK_MSG(s.start <= s.end, "segment with negative length");
    VPPB_CHECK_MSG(s.end <= total, "segment past the end of the run");
    per_thread[s.tid].push_back(s);
  }
  for (auto& [tid, segs] : per_thread) {
    std::sort(segs.begin(), segs.end(), [](const Segment& a, const Segment& b) {
      return a.start < b.start;
    });
    for (std::size_t i = 1; i < segs.size(); ++i) {
      VPPB_CHECK_MSG(segs[i].start >= segs[i - 1].end,
                     "overlapping segments for T" << tid);
      VPPB_CHECK_MSG(segs[i].start == segs[i - 1].end,
                     "timeline gap for T" << tid << " at " << segs[i].start);
    }
  }
  // Running threads never exceed the CPU count: check at segment edges.
  for (const Segment& probe : segments) {
    if (probe.state != SegState::kRunning) continue;
    int running = 0;
    for (const Segment& s : segments) {
      if (s.state == SegState::kRunning && s.start <= probe.start &&
          probe.start < s.end)
        ++running;
    }
    VPPB_CHECK_MSG(running <= cpus, "more running threads (" << running
                                                             << ") than CPUs");
  }
  for (const SimEvent& e : events) {
    VPPB_CHECK_MSG(e.at <= e.done, "event ends before it starts");
    VPPB_CHECK_MSG(e.done <= total, "event past the end of the run");
  }
}

}  // namespace vppb::core
