#include "core/result.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace vppb::core {

const char* to_string(SegState s) {
  switch (s) {
    case SegState::kRunning: return "running";
    case SegState::kRunnable: return "runnable";
    case SegState::kBlocked: return "blocked";
    case SegState::kSleeping: return "sleeping";
  }
  return "?";
}

std::vector<Segment> SimResult::thread_segments(ThreadId tid) const {
  std::vector<Segment> out;
  for (const Segment& s : segments) {
    if (s.tid == tid) out.push_back(s);
  }
  std::sort(out.begin(), out.end(),
            [](const Segment& a, const Segment& b) { return a.start < b.start; });
  return out;
}

std::vector<LwpSegment> SimResult::segments_of_lwp(int lwp) const {
  std::vector<LwpSegment> out;
  for (const LwpSegment& s : lwp_segments) {
    if (s.lwp == lwp) out.push_back(s);
  }
  std::sort(out.begin(), out.end(),
            [](const LwpSegment& a, const LwpSegment& b) {
              return a.start < b.start;
            });
  return out;
}

SimResult::Parallelism SimResult::parallelism_at(SimTime t) const {
  Parallelism p;
  for (const Segment& s : segments) {
    if (s.start <= t && t < s.end) {
      if (s.state == SegState::kRunning) ++p.running;
      if (s.state == SegState::kRunnable) ++p.runnable;
    }
  }
  return p;
}

std::vector<SimResult::ProfilePoint> SimResult::parallelism_profile(
    std::size_t samples) const {
  VPPB_CHECK_MSG(samples >= 2, "profile needs at least two samples");
  std::vector<ProfilePoint> out;
  out.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    const SimTime t = SimTime::nanos(total.ns() * static_cast<std::int64_t>(i) /
                                     static_cast<std::int64_t>(samples - 1));
    const Parallelism p = parallelism_at(t);
    out.push_back(ProfilePoint{t, p.running, p.runnable});
  }
  return out;
}

void SimResult::validate() const {
  VPPB_CHECK_MSG(total >= SimTime::zero(), "negative total time");
  std::map<ThreadId, std::vector<Segment>> per_thread;
  for (const Segment& s : segments) {
    VPPB_CHECK_MSG(s.start <= s.end, "segment with negative length");
    VPPB_CHECK_MSG(s.end <= total, "segment past the end of the run");
    per_thread[s.tid].push_back(s);
  }
  for (auto& [tid, segs] : per_thread) {
    std::sort(segs.begin(), segs.end(), [](const Segment& a, const Segment& b) {
      return a.start < b.start;
    });
    for (std::size_t i = 1; i < segs.size(); ++i) {
      VPPB_CHECK_MSG(segs[i].start >= segs[i - 1].end,
                     "overlapping segments for T" << tid);
      VPPB_CHECK_MSG(segs[i].start == segs[i - 1].end,
                     "timeline gap for T" << tid << " at " << segs[i].start);
    }
  }
  // Running threads never exceed the CPU count: check at segment edges.
  for (const Segment& probe : segments) {
    if (probe.state != SegState::kRunning) continue;
    int running = 0;
    for (const Segment& s : segments) {
      if (s.state == SegState::kRunning && s.start <= probe.start &&
          probe.start < s.end)
        ++running;
    }
    VPPB_CHECK_MSG(running <= cpus, "more running threads (" << running
                                                             << ") than CPUs");
  }
  for (const SimEvent& e : events) {
    VPPB_CHECK_MSG(e.at <= e.done, "event ends before it starts");
    VPPB_CHECK_MSG(e.done <= total, "event past the end of the run");
  }
}

}  // namespace vppb::core
