// Processor-count sweeps and speed-up-curve analysis.
//
// The paper's workflow ends with a developer reading speed-up numbers
// off the Simulator; this module packages the common questions: what
// does the whole curve look like, where does adding processors stop
// paying (the knee), and what serial fraction explains the curve
// (Amdahl fit — e.g. the paper's FFT row 1.55/2.14/2.62 is an almost
// perfect f ~= 0.29 curve).
#pragma once

#include <mutex>
#include <span>
#include <vector>

#include "core/compiler.hpp"
#include "core/config.hpp"
#include "core/engine.hpp"
#include "core/guard.hpp"
#include "core/result.hpp"
#include "util/time.hpp"

namespace vppb::util {
class ThreadPool;
}

namespace vppb::core {

struct SweepPoint {
  int cpus = 1;
  double speedup = 1.0;
  double efficiency = 1.0;  ///< speedup / cpus
  SimTime total;
};

class SpeedupCurve {
 public:
  explicit SpeedupCurve(std::vector<SweepPoint> points);

  const std::vector<SweepPoint>& points() const { return points_; }

  /// Least-squares Amdahl fit: 1/S = f + (1-f)/p.  Returns the serial
  /// fraction f clamped to [0, 1].
  double amdahl_serial_fraction() const;

  /// Predicted speed-up of the fitted Amdahl curve at `cpus`.
  double amdahl_speedup(int cpus) const;

  /// The largest CPU count of the *leading prefix* of the curve whose
  /// efficiency stays at or above the threshold (the "knee" a capacity
  /// planner cares about).  A count only qualifies if every smaller
  /// swept count also meets the threshold: once efficiency dips below
  /// it, later recoveries (non-monotone curves) do not move the knee
  /// outward.  Returns the smallest swept count when even that one
  /// fails the threshold.
  int knee(double efficiency_threshold = 0.5) const;

  /// Largest speed-up over the sweep.
  const SweepPoint& best() const;

 private:
  std::vector<SweepPoint> points_;
};

/// Controls how sweep_cpus runs the per-configuration simulations.
struct SweepOptions {
  /// Simulations in flight: 1 = strictly serial (the default), 0 = one
  /// per hardware thread, N = exactly N.  Each sweep point simulates an
  /// immutable CompiledTrace with its own SimConfig, so the points are
  /// independent; results are always assembled in deterministic
  /// `cpu_counts` order regardless of completion order.
  int jobs = 1;
  /// Reuse an already-running util::ThreadPool instead of spinning one
  /// up per call (jobs is ignored when set).
  util::ThreadPool* pool = nullptr;
  /// By default the sweep forces `build_timeline = false` on every
  /// point — a sweep wants the speed-up numbers, and building (then
  /// discarding) full timelines would dominate the cost.  Set this to
  /// honor `base.build_timeline` instead, together with `results` to
  /// receive the timelines.
  bool honor_build_timeline = false;
  /// When non-null, receives the full SimResult of every point, in
  /// `cpu_counts` order (the vector is resized to match).
  std::vector<SimResult>* results = nullptr;
  /// Optional governance: checked before each sweep point and polled
  /// inside every simulation.  One guard covers the whole sweep, so a
  /// single cancel() (or a tripping wall budget) stops every in-flight
  /// point; step/sim-time/result budgets apply per point.  The sweep
  /// rethrows the first BudgetExceeded after all dispatched points have
  /// drained — no tasks are left running in the pool.
  const RunGuard* guard = nullptr;
};

/// The batched sweep driver: a pool of reusable SimEngines behind a
/// mutex, so every simulation it runs — a whole sweep or a single
/// what-if point — lands on an engine whose workspace is already
/// allocated and merely reset.  The compiled trace is shared immutably
/// by every point; only the SimConfig varies.  Results are bit-identical
/// to the one-shot simulate() path (the determinism suite pins this),
/// so callers switch freely between the two.
///
/// Thread-safe: concurrent calls check out distinct engines, and the
/// pool grows to the high-water concurrency.  An engine whose run
/// throws (cancelled guard, tripped budget) is discarded rather than
/// returned, so the pool only ever holds engines that completed
/// cleanly.
class SweepRunner {
 public:
  /// One simulation on a pooled engine; guard semantics as simulate().
  SimResult run(const CompiledTrace& compiled, const SimConfig& config,
                const RunGuard* guard = nullptr);

  /// Batched sweep: sweep_cpus semantics, every point on a pooled
  /// engine.  With options.jobs > 1 the points still run concurrently —
  /// each worker checks out its own engine.
  SpeedupCurve sweep(const CompiledTrace& compiled,
                     std::span<const int> cpu_counts, const SimConfig& base,
                     const SweepOptions& options = SweepOptions{});

  /// The process-wide runner: the CLI, the vppbd handlers and the sweep
  /// entry points below all share it, so any repeated prediction work
  /// in the process reuses the same warmed engines.
  static SweepRunner& shared();

 private:
  SimEngine acquire();
  void release(SimEngine engine);

  std::mutex mu_;
  std::vector<SimEngine> idle_;
};

/// Simulates the compiled trace at each CPU count (other parameters from
/// `base`; its cpu count is ignored).  NOTE: this overload — and the
/// four-argument one under default options — forces
/// `base.build_timeline` off for every point; see
/// SweepOptions::honor_build_timeline to override.
SpeedupCurve sweep_cpus(const CompiledTrace& compiled,
                        std::span<const int> cpu_counts,
                        const SimConfig& base);

/// As above, with explicit execution options (parallelism, timeline
/// handling, per-point result capture).
SpeedupCurve sweep_cpus(const CompiledTrace& compiled,
                        std::span<const int> cpu_counts,
                        const SimConfig& base, const SweepOptions& options);

}  // namespace vppb::core
