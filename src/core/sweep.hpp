// Processor-count sweeps and speed-up-curve analysis.
//
// The paper's workflow ends with a developer reading speed-up numbers
// off the Simulator; this module packages the common questions: what
// does the whole curve look like, where does adding processors stop
// paying (the knee), and what serial fraction explains the curve
// (Amdahl fit — e.g. the paper's FFT row 1.55/2.14/2.62 is an almost
// perfect f ~= 0.29 curve).
#pragma once

#include <span>
#include <vector>

#include "core/compiler.hpp"
#include "core/config.hpp"
#include "util/time.hpp"

namespace vppb::core {

struct SweepPoint {
  int cpus = 1;
  double speedup = 1.0;
  double efficiency = 1.0;  ///< speedup / cpus
  SimTime total;
};

class SpeedupCurve {
 public:
  explicit SpeedupCurve(std::vector<SweepPoint> points);

  const std::vector<SweepPoint>& points() const { return points_; }

  /// Least-squares Amdahl fit: 1/S = f + (1-f)/p.  Returns the serial
  /// fraction f clamped to [0, 1].
  double amdahl_serial_fraction() const;

  /// Predicted speed-up of the fitted Amdahl curve at `cpus`.
  double amdahl_speedup(int cpus) const;

  /// The largest swept CPU count whose efficiency still meets the
  /// threshold (the "knee" a capacity planner cares about).  Returns
  /// the smallest swept count when nothing qualifies.
  int knee(double efficiency_threshold = 0.5) const;

  /// Largest speed-up over the sweep.
  const SweepPoint& best() const;

 private:
  std::vector<SweepPoint> points_;
};

/// Simulates the compiled trace at each CPU count (other parameters from
/// `base`; its cpu count is ignored).
SpeedupCurve sweep_cpus(const CompiledTrace& compiled,
                        std::span<const int> cpu_counts,
                        const SimConfig& base);

}  // namespace vppb::core
