// Cooperative cancellation and resource budgets for simulation runs.
//
// A RunGuard is owned by whoever starts a run (a CLI command, one
// server request) and a pointer to it is threaded through compile(),
// simulate() and sweep_cpus().  The running code polls it at natural
// checkpoints — once per engine step, once per compiled record batch,
// once per sweep point — and a tripped budget surfaces as a thrown
// BudgetExceeded carrying which budget fired.  Guards never change
// simulation *results*: a run either completes bit-identically to an
// unguarded run or throws, which is what keeps the 12 pinned
// determinism digests valid with guards attached.
//
// Cost model: a null guard pointer is one predictable branch per
// checkpoint.  An attached guard with no limits armed is one relaxed
// atomic load (the cancellation flag) plus compares against zero; the
// wall clock is only read when a wall budget is armed, and then only
// every ~1k steps.  cancel() may be called from any thread (the server
// watchdog does); everything else is written before the guard is
// shared and read-only afterwards.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "util/error.hpp"
#include "util/time.hpp"

namespace vppb::core {

/// Which budget terminated a guarded run.
enum class GuardTrip : std::uint8_t {
  kNone = 0,
  kCancelled,    ///< RunGuard::cancel() was called (watchdog, Ctrl-C, ...)
  kSteps,        ///< max_steps simulated operations exceeded
  kWallTime,     ///< max_wall_ms of real time elapsed
  kSimTime,      ///< simulated clock would pass max_sim_ms
  kResultBytes,  ///< accumulated SimResult storage exceeded max_result_bytes
};

const char* guard_trip_name(GuardTrip trip);

/// Thrown by guard checkpoints when a budget trips.  Derives from
/// vppb::Error so unaware callers still see a formatted message;
/// aware callers (the server) switch on trip() for typed responses.
class BudgetExceeded : public Error {
 public:
  BudgetExceeded(GuardTrip trip, const std::string& what)
      : Error(what), trip_(trip) {}
  GuardTrip trip() const { return trip_; }

 private:
  GuardTrip trip_;
};

/// Budgets for one run.  Zero means unlimited; all-zero limits make the
/// guard a pure cancellation token.
struct RunLimits {
  std::uint64_t max_steps = 0;        ///< simulated operations (engine steps)
  std::int64_t max_wall_ms = 0;       ///< real time from arm() to trip
  std::int64_t max_sim_ms = 0;        ///< simulated milliseconds
  std::uint64_t max_result_bytes = 0; ///< approximate SimResult footprint
};

class RunGuard {
 public:
  /// A pure cancellation token (no budgets).
  RunGuard() = default;

  /// Arms `limits`; the wall-time budget starts counting now.
  explicit RunGuard(const RunLimits& limits) { arm(limits); }

  RunGuard(const RunGuard&) = delete;
  RunGuard& operator=(const RunGuard&) = delete;

  /// (Re)arms the budgets.  Not safe against concurrent checks — call
  /// before the guard is shared with running code.
  void arm(const RunLimits& limits);

  /// Requests cooperative termination.  Safe from any thread.
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  const RunLimits& limits() const { return limits_; }

  /// True when any budget (not counting cancellability) is armed.
  bool has_limits() const {
    return limits_.max_steps != 0 || limits_.max_wall_ms != 0 ||
           limits_.max_sim_ms != 0 || limits_.max_result_bytes != 0;
  }

  // --- checkpoints; each throws BudgetExceeded when its budget trips ---

  void check_cancel() const {
    if (cancelled_.load(std::memory_order_relaxed)) trip_cancelled();
  }

  void check_steps(std::uint64_t steps) const {
    if (limits_.max_steps != 0 && steps > limits_.max_steps)
      trip_steps(steps);
  }

  /// Reads the clock only when a wall budget is armed.
  void check_wall() const {
    if (limits_.max_wall_ms != 0 &&
        std::chrono::steady_clock::now() >= wall_deadline_)
      trip_wall();
  }

  void check_sim_time(SimTime t) const {
    if (limits_.max_sim_ms != 0 && t > sim_deadline_) trip_sim(t);
  }

  void check_result_bytes(std::size_t bytes) const {
    if (limits_.max_result_bytes != 0 && bytes > limits_.max_result_bytes)
      trip_result_bytes(bytes);
  }

 private:
  [[noreturn]] void trip_cancelled() const;
  [[noreturn]] void trip_steps(std::uint64_t steps) const;
  [[noreturn]] void trip_wall() const;
  [[noreturn]] void trip_sim(SimTime t) const;
  [[noreturn]] void trip_result_bytes(std::size_t bytes) const;

  RunLimits limits_;
  std::chrono::steady_clock::time_point wall_deadline_{};
  SimTime sim_deadline_ = SimTime::max();
  std::atomic<bool> cancelled_{false};
};

}  // namespace vppb::core
