// The Solaris timeshare (TS) dispatch table.
//
// Solaris 2.5 schedules kernel threads/LWPs in the TS class through a
// 60-level table: each level defines the time quantum and where the
// level moves on quantum expiry (down) or on return from sleep (up).
// The paper's simulator "emulates the priority adjustment as it is
// handled in Solaris" and ties the time-slice length to the priority
// (§3.2); this table is that mechanism.
//
// The default table reproduces the classic ts_dptbl shipped with
// Solaris: 200 ms quanta at the lowest levels falling to 20 ms at the
// highest, expiry dropping a level by 10, sleep return boosting into
// the 50s band.
#pragma once

#include <array>
#include <cstdint>

#include "util/time.hpp"

namespace vppb::core {

/// Number of TS priority levels (0 = weakest, 59 = strongest).
constexpr int kTsLevels = 60;

struct TsEntry {
  SimTime quantum;   ///< ts_quantum: time slice at this level
  int on_expiry;     ///< ts_tqexp: new level after using the full quantum
  int on_sleep_return;  ///< ts_slpret: new level after blocking
  int on_starve;     ///< ts_lwait: new level after waiting too long
  SimTime max_wait;  ///< ts_maxwait: starvation threshold (zero = 1 tick)
};

class TsTable {
 public:
  /// The classic Solaris ts_dptbl defaults.
  static TsTable solaris_default();

  /// A flat table: fixed quantum, no priority movement.  Used by the
  /// ablation bench to show what the TS dynamics contribute.
  static TsTable flat(SimTime quantum);

  /// Inline: the engine consults the table on every dispatch and
  /// quantum event; an out-of-line call here is measurable.
  int clamp(int level) const {
    if (level < 0) return 0;
    if (level >= kTsLevels) return kTsLevels - 1;
    return level;
  }
  const TsEntry& entry(int level) const {
    return entries[static_cast<std::size_t>(clamp(level))];
  }

  std::array<TsEntry, kTsLevels> entries{};
};

}  // namespace vppb::core
