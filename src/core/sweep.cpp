#include "core/sweep.hpp"

#include <algorithm>

#include "core/engine.hpp"
#include "util/error.hpp"

namespace vppb::core {

SpeedupCurve::SpeedupCurve(std::vector<SweepPoint> points)
    : points_(std::move(points)) {
  VPPB_CHECK_MSG(!points_.empty(), "empty speed-up curve");
  std::sort(points_.begin(), points_.end(),
            [](const SweepPoint& a, const SweepPoint& b) {
              return a.cpus < b.cpus;
            });
}

double SpeedupCurve::amdahl_serial_fraction() const {
  // Linear regression of y = 1/S against x = 1/p:  y = f + (1-f)x,
  // i.e. slope m = 1-f and intercept c = f; we recover f from the
  // slope of the least-squares line.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double n = static_cast<double>(points_.size());
  for (const SweepPoint& p : points_) {
    const double x = 1.0 / p.cpus;
    const double y = 1.0 / std::max(1e-9, p.speedup);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double denom = n * sxx - sx * sx;
  double f;
  if (std::abs(denom) < 1e-12) {
    // Degenerate sweep (single point): attribute everything that is not
    // explained by the point itself to serial work.
    const SweepPoint& p = points_.front();
    f = p.cpus > 1
            ? (static_cast<double>(p.cpus) / p.speedup - 1.0) / (p.cpus - 1)
            : 0.0;
  } else {
    const double slope = (n * sxy - sx * sy) / denom;
    f = 1.0 - slope;  // intercept form: c = f, slope = 1 - f
  }
  return std::clamp(f, 0.0, 1.0);
}

double SpeedupCurve::amdahl_speedup(int cpus) const {
  VPPB_CHECK_MSG(cpus >= 1, "need at least one CPU");
  const double f = amdahl_serial_fraction();
  return 1.0 / (f + (1.0 - f) / cpus);
}

int SpeedupCurve::knee(double efficiency_threshold) const {
  int best_cpus = points_.front().cpus;
  for (const SweepPoint& p : points_) {
    if (p.efficiency >= efficiency_threshold) best_cpus = std::max(best_cpus, p.cpus);
  }
  return best_cpus;
}

const SweepPoint& SpeedupCurve::best() const {
  return *std::max_element(points_.begin(), points_.end(),
                           [](const SweepPoint& a, const SweepPoint& b) {
                             return a.speedup < b.speedup;
                           });
}

SpeedupCurve sweep_cpus(const CompiledTrace& compiled,
                        std::span<const int> cpu_counts,
                        const SimConfig& base) {
  VPPB_CHECK_MSG(!cpu_counts.empty(), "empty CPU sweep");
  std::vector<SweepPoint> points;
  points.reserve(cpu_counts.size());
  for (const int cpus : cpu_counts) {
    SimConfig cfg = base;
    cfg.hw.cpus = cpus;
    cfg.build_timeline = false;
    const SimResult r = simulate(compiled, cfg);
    SweepPoint p;
    p.cpus = cpus;
    p.speedup = r.speedup;
    p.efficiency = r.speedup / cpus;
    p.total = r.total;
    points.push_back(p);
  }
  return SpeedupCurve(std::move(points));
}

}  // namespace vppb::core
