#include "core/sweep.hpp"

#include <algorithm>

#include "core/engine.hpp"
#include "obs/span.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace vppb::core {

SpeedupCurve::SpeedupCurve(std::vector<SweepPoint> points)
    : points_(std::move(points)) {
  VPPB_CHECK_MSG(!points_.empty(), "empty speed-up curve");
  std::sort(points_.begin(), points_.end(),
            [](const SweepPoint& a, const SweepPoint& b) {
              return a.cpus < b.cpus;
            });
}

double SpeedupCurve::amdahl_serial_fraction() const {
  // Linear regression of y = 1/S against x = 1/p:  y = f + (1-f)x,
  // i.e. slope m = 1-f and intercept c = f; we recover f from the
  // slope of the least-squares line.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double n = static_cast<double>(points_.size());
  for (const SweepPoint& p : points_) {
    const double x = 1.0 / p.cpus;
    const double y = 1.0 / std::max(1e-9, p.speedup);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double denom = n * sxx - sx * sx;
  double f;
  if (std::abs(denom) < 1e-12) {
    // Degenerate sweep (single point): attribute everything that is not
    // explained by the point itself to serial work.
    const SweepPoint& p = points_.front();
    f = p.cpus > 1
            ? (static_cast<double>(p.cpus) / p.speedup - 1.0) / (p.cpus - 1)
            : 0.0;
  } else {
    const double slope = (n * sxy - sx * sy) / denom;
    f = 1.0 - slope;  // intercept form: c = f, slope = 1 - f
  }
  return std::clamp(f, 0.0, 1.0);
}

double SpeedupCurve::amdahl_speedup(int cpus) const {
  VPPB_CHECK_MSG(cpus >= 1, "need at least one CPU");
  const double f = amdahl_serial_fraction();
  return 1.0 / (f + (1.0 - f) / cpus);
}

int SpeedupCurve::knee(double efficiency_threshold) const {
  // Only the leading prefix that stays above the threshold counts: a
  // curve that dips below and later recovers (possible with cache or
  // contention artifacts) must not report the recovered count as the
  // knee — the planner would buy CPUs across an efficiency hole.
  int best_cpus = points_.front().cpus;
  for (const SweepPoint& p : points_) {
    if (p.efficiency < efficiency_threshold) break;
    best_cpus = p.cpus;
  }
  return best_cpus;
}

const SweepPoint& SpeedupCurve::best() const {
  return *std::max_element(points_.begin(), points_.end(),
                           [](const SweepPoint& a, const SweepPoint& b) {
                             return a.speedup < b.speedup;
                           });
}

SimEngine SweepRunner::acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!idle_.empty()) {
    SimEngine engine = std::move(idle_.back());
    idle_.pop_back();
    return engine;
  }
  return SimEngine{};
}

void SweepRunner::release(SimEngine engine) {
  std::lock_guard<std::mutex> lock(mu_);
  idle_.push_back(std::move(engine));
}

SimResult SweepRunner::run(const CompiledTrace& compiled,
                           const SimConfig& config, const RunGuard* guard) {
  SimEngine engine = acquire();
  // A throwing run (cancel, tripped budget) abandons the engine: its
  // workspace would reset fine on the next run, but never pooling a
  // half-run workspace keeps the invariant trivially auditable.
  SimResult result = engine.run(compiled, config, guard);
  release(std::move(engine));
  return result;
}

SweepRunner& SweepRunner::shared() {
  static SweepRunner runner;
  return runner;
}

SpeedupCurve sweep_cpus(const CompiledTrace& compiled,
                        std::span<const int> cpu_counts,
                        const SimConfig& base) {
  return sweep_cpus(compiled, cpu_counts, base, SweepOptions{});
}

SpeedupCurve sweep_cpus(const CompiledTrace& compiled,
                        std::span<const int> cpu_counts,
                        const SimConfig& base, const SweepOptions& options) {
  return SweepRunner::shared().sweep(compiled, cpu_counts, base, options);
}

SpeedupCurve SweepRunner::sweep(const CompiledTrace& compiled,
                                std::span<const int> cpu_counts,
                                const SimConfig& base,
                                const SweepOptions& options) {
  VPPB_CHECK_MSG(!cpu_counts.empty(), "empty CPU sweep");
  obs::Span sweep_span("core.sweep", "engine");
  sweep_span.arg("points", static_cast<std::int64_t>(cpu_counts.size()));
  const std::size_t n = cpu_counts.size();
  std::vector<SweepPoint> points(n);
  if (options.results != nullptr) {
    options.results->clear();
    options.results->resize(n);
  }

  // Every point reads the shared immutable CompiledTrace and owns its
  // SimConfig and SimResult, so the points are freely parallel; slot
  // `i` of points/results belongs to cpu_counts[i], which keeps the
  // output deterministic whatever order the pool finishes in.
  auto run_point = [&](std::size_t i) {
    if (options.guard != nullptr) options.guard->check_cancel();
    const int cpus = cpu_counts[i];
    obs::Span point_span("sweep.point", "engine");
    point_span.arg("cpus", cpus);
    SimConfig cfg = base;
    cfg.hw.cpus = cpus;
    if (!options.honor_build_timeline) cfg.build_timeline = false;
    SimResult r = run(compiled, cfg, options.guard);
    SweepPoint& p = points[i];
    p.cpus = cpus;
    p.speedup = r.speedup;
    p.efficiency = r.speedup / cpus;
    p.total = r.total;
    if (options.results != nullptr) (*options.results)[i] = std::move(r);
  };

  if (options.pool != nullptr) {
    options.pool->parallel_for(n, run_point);
  } else if (options.jobs != 1 && n > 1) {
    util::ThreadPool pool(options.jobs);
    pool.parallel_for(n, run_point);
  } else {
    for (std::size_t i = 0; i < n; ++i) run_point(i);
  }
  return SpeedupCurve(std::move(points));
}

}  // namespace vppb::core
