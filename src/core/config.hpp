// Simulation inputs: the hardware configuration and scheduling policies
// of the paper's fig. 1 (boxes e and f).
#pragma once

#include <map>

#include "core/ts_table.hpp"
#include "trace/event.hpp"
#include "util/time.hpp"

namespace vppb::core {

using trace::ThreadId;

/// Hardware configuration (paper fig. 1, box e).
struct HwConfig {
  int cpus = 1;
  /// How fast an event on one CPU propagates to another (paper §3.2):
  /// a wakeup crossing CPUs is delivered after this delay.
  SimTime comm_delay = SimTime::zero();
  /// Cost of migrating a thread to a CPU it did not run on last
  /// (cold-cache penalty knob; the paper's simulator "does not simulate
  /// the caches" — zero by default, available for ablation).
  SimTime migration_penalty = SimTime::zero();
  /// Memory-bus contention: each running thread progresses at rate
  /// 1/(1 + alpha·(running-1)).  Zero in the predictor; the reference
  /// machine may set it to model shared-bus slowdown.
  double memory_contention_alpha = 0.0;
};

/// How a thread may be manipulated in the Simulator (paper §3.2):
/// unbound, bound to an LWP, or bound to a specific CPU.
enum class Binding : std::uint8_t { kUnbound, kBoundLwp, kBoundCpu };

struct ThreadPolicy {
  /// When false the binding recorded in the log (THR_BOUND) applies;
  /// when true this policy's binding replaces it (paper §3.2: "each
  /// thread can individually be unbound; bound to a LWP; or bound to a
  /// certain CPU").
  bool override_binding = false;
  Binding binding = Binding::kUnbound;
  int cpu = -1;  ///< target CPU for kBoundCpu
  /// Fixed priority override.  When set, every thr_setprio event for
  /// this thread in the log is ignored (paper §3.2).
  bool override_priority = false;
  int priority = 0;
};

/// Scheduling policies (paper fig. 1, box f).
struct SchedConfig {
  /// Number of LWPs multiplexing the unbound threads.  0 means "one per
  /// thread" (never a constraint).  When set, thr_setconcurrency events
  /// in the log have no effect (paper §3.2).
  int lwps = 0;
  std::map<ThreadId, ThreadPolicy> thread_policy;
  TsTable ts_table = TsTable::solaris_default();
  /// Emulate the Solaris TS priority/quantum adjustment.  Disabled, all
  /// LWPs keep a fixed level and quantum (ablation knob).
  bool ts_dynamics = true;

  const ThreadPolicy& policy_of(ThreadId tid) const {
    static const ThreadPolicy kDefault{};
    auto it = thread_policy.find(tid);
    return it == thread_policy.end() ? kDefault : it->second;
  }
};

/// Cost model for operations that are more expensive in configurations
/// the uni-processor recording could not observe.
struct CostModel {
  /// Creating a bound thread takes 6.7× longer than an unbound one
  /// (paper §3.2, citing the Solaris MT guide).
  double bound_create_factor = 6.7;
  /// Synchronization on bound threads takes 5.9× longer; the paper uses
  /// the semaphore figure for mutexes, conditions and rwlocks as well.
  double bound_sync_factor = 5.9;
  /// CPU cost charged for an LWP context switch in the reference
  /// machine.  The paper's *predictor* deliberately ignores it (§6), so
  /// it defaults to zero here and is only set by src/machine.
  SimTime context_switch_cost = SimTime::zero();
};

struct SimConfig {
  HwConfig hw;
  SchedConfig sched;
  CostModel cost;
  /// Record a full timeline for the Visualizer (disable for speed when
  /// only the speed-up number is wanted).
  bool build_timeline = true;
};

}  // namespace vppb::core
