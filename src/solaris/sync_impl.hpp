// Internal representations of the synchronization objects.  Not part of
// the public API; the recorder and tests never see these directly.
#pragma once

#include "trace/event.hpp"
#include "ult/wait_queue.hpp"

namespace vppb::sol::detail {

using ult::ThreadId;
using ult::WaitQueue;

struct MutexImpl {
  trace::ObjectRef ref;
  ThreadId owner = ult::kNoThread;
  WaitQueue waiters;
};

struct SemaImpl {
  trace::ObjectRef ref;
  unsigned count = 0;
  WaitQueue waiters;
};

struct CondImpl {
  trace::ObjectRef ref;
  WaitQueue waiters;
};

struct RwlockImpl {
  trace::ObjectRef ref;
  int readers = 0;
  ThreadId writer = ult::kNoThread;
  int waiting_writers = 0;
  WaitQueue reader_q;
  WaitQueue writer_q;
};

// Probe-free primitives shared by the public API and by cond_wait's
// internal unlock/relock (the paper's recorder sits at the library
// boundary, so library-internal operations are never recorded).
void mutex_lock_impl(MutexImpl& m);
void mutex_unlock_impl(MutexImpl& m);

}  // namespace vppb::sol::detail
