// Internal hooks shared between the solaris layer's translation units
// and sol::Program.  Not part of the public API.
#pragma once

#include <cstdint>

#include "trace/event.hpp"

namespace vppb::sol::detail {

/// Hands out the next sequential id for a kind of sync object.
std::uint32_t next_object_id(trace::ObjKind kind);

/// Registers the main thread with the solaris layer (and the probe sink,
/// if one is attached).  Called by sol::Program at the top of main.
void register_main_thread();

}  // namespace vppb::sol::detail
