#include "solaris/probe.hpp"

#include "ult/runtime.hpp"

namespace vppb::sol {
namespace {

ProbeSink* g_sink = nullptr;
OpCostModel g_op_costs{};

SimTime cost_of(trace::Op op) {
  switch (trace::op_obj_kind(op)) {
    case trace::ObjKind::kMutex:
    case trace::ObjKind::kSema:
    case trace::ObjKind::kCond:
    case trace::ObjKind::kRwlock:
      return g_op_costs.sync;
    case trace::ObjKind::kThread:
      return op == trace::Op::kThrCreate ? g_op_costs.create
                                         : g_op_costs.thread_mgmt;
    default:
      return SimTime::zero();
  }
}

}  // namespace

void set_probe_sink(ProbeSink* sink) { g_sink = sink; }
ProbeSink* probe_sink() { return g_sink; }

void set_op_cost_model(const OpCostModel& model) { g_op_costs = model; }
const OpCostModel& op_cost_model() { return g_op_costs; }

namespace detail {

ProbeScope::ProbeScope(trace::Op op, trace::ObjectRef obj, std::int64_t arg,
                       std::int64_t arg2, const std::source_location& loc)
    : ctx_{op, obj, arg, arg2, loc, {}}, active_(g_sink != nullptr) {
  if (active_) g_sink->on_call(ctx_);
  // The modelled library cost lands between the call and return stamps,
  // so the Recorder captures it as the op's cost — whether or not a
  // sink is attached (recording must not change behaviour).
  const SimTime cost = cost_of(op);
  if (!cost.is_zero() && ult::Runtime::in_runtime() &&
      ult::Runtime::current().clock_mode() == ult::ClockMode::kVirtual) {
    ult::Runtime::current().work(cost);
  }
}

ProbeScope::~ProbeScope() {
  if (active_ && g_sink != nullptr) g_sink->on_return(ctx_, result_);
}

}  // namespace detail
}  // namespace vppb::sol
