#include "solaris/solaris.hpp"
#include "solaris/state.hpp"
#include "solaris/sync_impl.hpp"
#include "util/error.hpp"

namespace vppb::sol {
namespace detail {
namespace {

using ult::Runtime;
using ult::kNoThread;

template <typename Impl>
Impl& ensure(Impl*& slot, trace::ObjKind kind) {
  // Solaris allows statically initialized objects; auto-initialize on
  // first use (no init record is produced, matching a program that never
  // called *_init — the Simulator creates objects lazily anyway).
  if (slot == nullptr) {
    slot = new Impl();
    slot->ref = trace::ObjectRef{kind, next_object_id(kind)};
  }
  return *slot;
}

}  // namespace

void mutex_lock_impl(MutexImpl& m) {
  auto& rt = Runtime::current();
  const ThreadId self = rt.current_tid();
  VPPB_CHECK_MSG(m.owner != self,
                 "recursive mutex_lock by T" << self << " would self-deadlock");
  if (m.owner == kNoThread) {
    m.owner = self;
    return;
  }
  // Direct handoff: the unlocker assigns ownership to the woken thread,
  // so wake order (priority, then FIFO) is exactly acquisition order.
  rt.block_current(m.waiters);
  VPPB_CHECK(m.owner == self);
}

void mutex_unlock_impl(MutexImpl& m) {
  auto& rt = Runtime::current();
  VPPB_CHECK_MSG(m.owner == rt.current_tid(),
                 "mutex_unlock by non-owner T" << rt.current_tid());
  const ThreadId next = m.waiters.pop();
  m.owner = next;  // kNoThread when the queue is empty
  if (next != kNoThread) rt.wake(next);
}

}  // namespace detail

using detail::ensure;
using detail::kNoThread;
using detail::ProbeScope;
using ult::Runtime;

// ---- mutex -----------------------------------------------------------------

int mutex_init(mutex_t* m, int /*type*/, void* /*arg*/,
               std::source_location loc) {
  if (m == nullptr) return SOL_EINVAL;
  VPPB_CHECK_MSG(m->impl == nullptr, "mutex_init on an initialized mutex");
  auto& im = ensure(m->impl, trace::ObjKind::kMutex);
  ProbeScope probe(trace::Op::kMutexInit, im.ref, 0, 0, loc);
  return SOL_OK;
}

int mutex_lock(mutex_t* m, std::source_location loc) {
  if (m == nullptr) return SOL_EINVAL;
  auto& im = ensure(m->impl, trace::ObjKind::kMutex);
  ProbeScope probe(trace::Op::kMutexLock, im.ref, 0, 0, loc);
  detail::mutex_lock_impl(im);
  return SOL_OK;
}

int mutex_trylock(mutex_t* m, std::source_location loc) {
  if (m == nullptr) return SOL_EINVAL;
  auto& im = ensure(m->impl, trace::ObjKind::kMutex);
  ProbeScope probe(trace::Op::kMutexTrylock, im.ref, 0, 0, loc);
  if (im.owner != kNoThread) {
    probe.set_result(0);
    return SOL_EBUSY;
  }
  im.owner = Runtime::current().current_tid();
  probe.set_result(1);
  return SOL_OK;
}

int mutex_unlock(mutex_t* m, std::source_location loc) {
  if (m == nullptr || m->impl == nullptr) return SOL_EINVAL;
  auto& im = *m->impl;
  ProbeScope probe(trace::Op::kMutexUnlock, im.ref, 0, 0, loc);
  detail::mutex_unlock_impl(im);
  return SOL_OK;
}

int mutex_destroy(mutex_t* m, std::source_location loc) {
  if (m == nullptr || m->impl == nullptr) return SOL_EINVAL;
  if (!Runtime::in_runtime()) {
    // Process teardown: RAII wrappers may be destroyed after the
    // runtime has finished (closures owned by exited fibers); just
    // reclaim the memory, there is nobody left to notify.
    delete m->impl;
    m->impl = nullptr;
    return SOL_OK;
  }
  auto& im = *m->impl;
  VPPB_CHECK_MSG(im.owner == kNoThread && im.waiters.empty(),
                 "mutex_destroy of a mutex in use");
  ProbeScope probe(trace::Op::kMutexDestroy, im.ref, 0, 0, loc);
  delete m->impl;
  m->impl = nullptr;
  return SOL_OK;
}

// ---- semaphore ---------------------------------------------------------------

int sema_init(sema_t* s, unsigned count, int /*type*/, void* /*arg*/,
              std::source_location loc) {
  if (s == nullptr) return SOL_EINVAL;
  VPPB_CHECK_MSG(s->impl == nullptr, "sema_init on an initialized semaphore");
  auto& im = ensure(s->impl, trace::ObjKind::kSema);
  im.count = count;
  ProbeScope probe(trace::Op::kSemaInit, im.ref,
                   static_cast<std::int64_t>(count), 0, loc);
  return SOL_OK;
}

int sema_wait(sema_t* s, std::source_location loc) {
  if (s == nullptr) return SOL_EINVAL;
  auto& im = ensure(s->impl, trace::ObjKind::kSema);
  ProbeScope probe(trace::Op::kSemaWait, im.ref, 0, 0, loc);
  auto& rt = Runtime::current();
  if (im.count > 0) {
    --im.count;
    return SOL_OK;
  }
  // Direct handoff: sema_post transfers the unit to the woken sleeper.
  rt.block_current(im.waiters);
  return SOL_OK;
}

int sema_trywait(sema_t* s, std::source_location loc) {
  if (s == nullptr) return SOL_EINVAL;
  auto& im = ensure(s->impl, trace::ObjKind::kSema);
  ProbeScope probe(trace::Op::kSemaTrywait, im.ref, 0, 0, loc);
  if (im.count == 0) {
    probe.set_result(0);
    return SOL_EBUSY;
  }
  --im.count;
  probe.set_result(1);
  return SOL_OK;
}

int sema_post(sema_t* s, std::source_location loc) {
  if (s == nullptr) return SOL_EINVAL;
  auto& im = ensure(s->impl, trace::ObjKind::kSema);
  ProbeScope probe(trace::Op::kSemaPost, im.ref, 0, 0, loc);
  auto& rt = Runtime::current();
  if (rt.wake_one(im.waiters) == kNoThread) ++im.count;
  return SOL_OK;
}

int sema_destroy(sema_t* s, std::source_location loc) {
  if (s == nullptr || s->impl == nullptr) return SOL_EINVAL;
  if (!Runtime::in_runtime()) {
    // Process teardown: RAII wrappers may be destroyed after the
    // runtime has finished (closures owned by exited fibers); just
    // reclaim the memory, there is nobody left to notify.
    delete s->impl;
    s->impl = nullptr;
    return SOL_OK;
  }
  auto& im = *s->impl;
  VPPB_CHECK_MSG(im.waiters.empty(), "sema_destroy with sleepers");
  ProbeScope probe(trace::Op::kSemaDestroy, im.ref, 0, 0, loc);
  delete s->impl;
  s->impl = nullptr;
  return SOL_OK;
}

// ---- condition variable --------------------------------------------------------

int cond_init(cond_t* c, int /*type*/, void* /*arg*/,
              std::source_location loc) {
  if (c == nullptr) return SOL_EINVAL;
  VPPB_CHECK_MSG(c->impl == nullptr, "cond_init on an initialized condvar");
  auto& im = ensure(c->impl, trace::ObjKind::kCond);
  ProbeScope probe(trace::Op::kCondInit, im.ref, 0, 0, loc);
  return SOL_OK;
}

int cond_wait(cond_t* c, mutex_t* m, std::source_location loc) {
  if (c == nullptr || m == nullptr) return SOL_EINVAL;
  auto& ic = ensure(c->impl, trace::ObjKind::kCond);
  auto& im = ensure(m->impl, trace::ObjKind::kMutex);
  ProbeScope probe(trace::Op::kCondWait, ic.ref, im.ref.id, 0, loc);
  auto& rt = Runtime::current();
  VPPB_CHECK_MSG(im.owner == rt.current_tid(),
                 "cond_wait without holding the mutex");
  // The unlock/relock around the sleep is library-internal and therefore
  // unrecorded, exactly as with the paper's interposed recorder.
  detail::mutex_unlock_impl(im);
  rt.block_current(ic.waiters);
  detail::mutex_lock_impl(im);
  return SOL_OK;
}

int cond_timedwait(cond_t* c, mutex_t* m, SimTime abstime,
                   std::source_location loc) {
  if (c == nullptr || m == nullptr) return SOL_EINVAL;
  auto& ic = ensure(c->impl, trace::ObjKind::kCond);
  auto& im = ensure(m->impl, trace::ObjKind::kMutex);
  ProbeScope probe(trace::Op::kCondTimedwait, ic.ref, im.ref.id, 0, loc);
  auto& rt = Runtime::current();
  VPPB_CHECK_MSG(im.owner == rt.current_tid(),
                 "cond_timedwait without holding the mutex");
  detail::mutex_unlock_impl(im);
  const bool woken = rt.block_current_until(ic.waiters, abstime);
  detail::mutex_lock_impl(im);
  probe.set_result(woken ? 1 : 0);
  return woken ? SOL_OK : SOL_ETIME;
}

int cond_signal(cond_t* c, std::source_location loc) {
  if (c == nullptr) return SOL_EINVAL;
  auto& ic = ensure(c->impl, trace::ObjKind::kCond);
  ProbeScope probe(trace::Op::kCondSignal, ic.ref, 0, 0, loc);
  const bool woke = Runtime::current().wake_one(ic.waiters) != kNoThread;
  probe.set_result(woke ? 1 : 0);
  return SOL_OK;
}

int cond_broadcast(cond_t* c, std::source_location loc) {
  if (c == nullptr) return SOL_EINVAL;
  auto& ic = ensure(c->impl, trace::ObjKind::kCond);
  ProbeScope probe(trace::Op::kCondBroadcast, ic.ref, 0, 0, loc);
  const auto released = Runtime::current().wake_all(ic.waiters);
  probe.set_result(static_cast<std::int64_t>(released));
  return SOL_OK;
}

int cond_destroy(cond_t* c, std::source_location loc) {
  if (c == nullptr || c->impl == nullptr) return SOL_EINVAL;
  if (!Runtime::in_runtime()) {
    // Process teardown: RAII wrappers may be destroyed after the
    // runtime has finished (closures owned by exited fibers); just
    // reclaim the memory, there is nobody left to notify.
    delete c->impl;
    c->impl = nullptr;
    return SOL_OK;
  }
  auto& ic = *c->impl;
  VPPB_CHECK_MSG(ic.waiters.empty(), "cond_destroy with sleepers");
  ProbeScope probe(trace::Op::kCondDestroy, ic.ref, 0, 0, loc);
  delete c->impl;
  c->impl = nullptr;
  return SOL_OK;
}

// ---- readers/writer lock ---------------------------------------------------------

int rwlock_init(rwlock_t* rw, int /*type*/, void* /*arg*/,
                std::source_location loc) {
  if (rw == nullptr) return SOL_EINVAL;
  VPPB_CHECK_MSG(rw->impl == nullptr, "rwlock_init on an initialized rwlock");
  auto& im = ensure(rw->impl, trace::ObjKind::kRwlock);
  ProbeScope probe(trace::Op::kRwInit, im.ref, 0, 0, loc);
  return SOL_OK;
}

int rw_rdlock(rwlock_t* rw, std::source_location loc) {
  if (rw == nullptr) return SOL_EINVAL;
  auto& im = ensure(rw->impl, trace::ObjKind::kRwlock);
  ProbeScope probe(trace::Op::kRwRdlock, im.ref, 0, 0, loc);
  auto& rt = Runtime::current();
  // Writer preference, as in Solaris: arriving readers queue behind
  // waiting writers.
  while (im.writer != kNoThread || im.waiting_writers > 0)
    rt.block_current(im.reader_q);
  ++im.readers;
  return SOL_OK;
}

int rw_tryrdlock(rwlock_t* rw, std::source_location loc) {
  if (rw == nullptr) return SOL_EINVAL;
  auto& im = ensure(rw->impl, trace::ObjKind::kRwlock);
  ProbeScope probe(trace::Op::kRwTryRdlock, im.ref, 0, 0, loc);
  if (im.writer != kNoThread || im.waiting_writers > 0) {
    probe.set_result(0);
    return SOL_EBUSY;
  }
  ++im.readers;
  probe.set_result(1);
  return SOL_OK;
}

int rw_wrlock(rwlock_t* rw, std::source_location loc) {
  if (rw == nullptr) return SOL_EINVAL;
  auto& im = ensure(rw->impl, trace::ObjKind::kRwlock);
  ProbeScope probe(trace::Op::kRwWrlock, im.ref, 0, 0, loc);
  auto& rt = Runtime::current();
  while (im.writer != kNoThread || im.readers > 0) {
    ++im.waiting_writers;
    rt.block_current(im.writer_q);
    --im.waiting_writers;
  }
  im.writer = rt.current_tid();
  return SOL_OK;
}

int rw_trywrlock(rwlock_t* rw, std::source_location loc) {
  if (rw == nullptr) return SOL_EINVAL;
  auto& im = ensure(rw->impl, trace::ObjKind::kRwlock);
  ProbeScope probe(trace::Op::kRwTryWrlock, im.ref, 0, 0, loc);
  if (im.writer != kNoThread || im.readers > 0) {
    probe.set_result(0);
    return SOL_EBUSY;
  }
  im.writer = Runtime::current().current_tid();
  probe.set_result(1);
  return SOL_OK;
}

int rw_unlock(rwlock_t* rw, std::source_location loc) {
  if (rw == nullptr || rw->impl == nullptr) return SOL_EINVAL;
  auto& im = *rw->impl;
  ProbeScope probe(trace::Op::kRwUnlock, im.ref, 0, 0, loc);
  auto& rt = Runtime::current();
  if (im.writer == rt.current_tid()) {
    im.writer = kNoThread;
    if (rt.wake_one(im.writer_q) == kNoThread) rt.wake_all(im.reader_q);
    return SOL_OK;
  }
  VPPB_CHECK_MSG(im.readers > 0, "rw_unlock without holding the lock");
  --im.readers;
  if (im.readers == 0) rt.wake_one(im.writer_q);
  return SOL_OK;
}

int rwlock_destroy(rwlock_t* rw, std::source_location loc) {
  if (rw == nullptr || rw->impl == nullptr) return SOL_EINVAL;
  if (!Runtime::in_runtime()) {
    // Process teardown: RAII wrappers may be destroyed after the
    // runtime has finished (closures owned by exited fibers); just
    // reclaim the memory, there is nobody left to notify.
    delete rw->impl;
    rw->impl = nullptr;
    return SOL_OK;
  }
  auto& im = *rw->impl;
  VPPB_CHECK_MSG(im.writer == kNoThread && im.readers == 0 &&
                     im.reader_q.empty() && im.writer_q.empty(),
                 "rwlock_destroy of a lock in use");
  ProbeScope probe(trace::Op::kRwDestroy, im.ref, 0, 0, loc);
  delete rw->impl;
  rw->impl = nullptr;
  return SOL_OK;
}

}  // namespace vppb::sol
