// The Recorder attachment point.
//
// The paper interposes an instrumented library between the program and
// libthread.so.1 via LD_PRELOAD; every call passes through a probe that
// records (time, event, object, thread, source line) and then calls the
// real routine.  Here the "real routine" is src/solaris, and the probe
// is a sink installed around it: when a sink is attached every public
// API function reports its call and return, when none is attached the
// API runs bare (the unmonitored execution).
#pragma once

#include <cstdint>
#include <source_location>
#include <string_view>

#include "trace/event.hpp"

namespace vppb::sol {

/// What a probe sees about one API call.
struct ProbeContext {
  trace::Op op;
  trace::ObjectRef obj;
  std::int64_t arg = 0;
  std::int64_t arg2 = 0;
  std::source_location loc;
  std::string_view label;  ///< only for kUserMark records
};

/// Implemented by the Recorder (src/recorder).
class ProbeSink {
 public:
  virtual ~ProbeSink() = default;

  /// Entry of a probed call, before the real routine runs.
  virtual void on_call(const ProbeContext& ctx) = 0;

  /// Return of a probed call.  `result_arg` carries outcome information
  /// (trylock success, timedwait timeout, joined thread id).
  virtual void on_return(const ProbeContext& ctx, std::int64_t result_arg) = 0;

  /// A new thread became known (records the start-routine name the
  /// paper resolves with a debugger).
  virtual void on_thread(trace::ThreadId tid, std::string_view name,
                         std::string_view start_func, bool bound,
                         int priority) = 0;
};

/// Install/remove the sink (nullptr detaches).  The substitute for
/// setting LD_PRELOAD before starting the monitored execution.
void set_probe_sink(ProbeSink* sink);
ProbeSink* probe_sink();

/// Virtual-clock cost of the thread-library calls themselves.  In real
/// clock mode the actual library code is timed, so these are unused; in
/// virtual mode they default to zero (tests stay exact) and can be set
/// to 1990s-Solaris-like magnitudes so that, e.g., the x6.7/x5.9
/// bound-thread factors of paper §3.2 have something to scale.
struct OpCostModel {
  SimTime sync;    ///< mutex/sema/cond/rwlock operations
  SimTime create;  ///< thr_create (unbound; the simulator scales bound)
  SimTime thread_mgmt;  ///< join/yield/setprio/setconcurrency
};

void set_op_cost_model(const OpCostModel& model);
const OpCostModel& op_cost_model();

namespace detail {

/// RAII helper used by every API function: reports on_call in the
/// constructor and on_return in finish() (or destructor with the last
/// set result).  Does nothing when no sink is attached.
class ProbeScope {
 public:
  ProbeScope(trace::Op op, trace::ObjectRef obj, std::int64_t arg,
             std::int64_t arg2, const std::source_location& loc);
  ~ProbeScope();

  ProbeScope(const ProbeScope&) = delete;
  ProbeScope& operator=(const ProbeScope&) = delete;

  void set_result(std::int64_t result_arg) { result_ = result_arg; }

 private:
  ProbeContext ctx_;
  std::int64_t result_ = 0;
  bool active_;
};

}  // namespace detail
}  // namespace vppb::sol
