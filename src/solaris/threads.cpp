#include <map>
#include <sstream>

#include "solaris/solaris.hpp"
#include "solaris/sync_impl.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace vppb::sol {
namespace {

using ult::Runtime;
using ult::ThreadId;

struct ThreadRec {
  void* retval = nullptr;
  bool detached = false;
  bool bound = false;
  bool reaped = false;
};

struct SolState {
  std::map<thread_t, ThreadRec> threads;
  ult::WaitQueue any_exit_waiters;
  std::map<trace::ObjKind, std::uint32_t> next_object_id;
  std::map<std::string, std::uint32_t, std::less<>> io_devices;
  int concurrency_request = 0;
};

SolState g_state;

// Start-routine names survive across runs (they describe code, not state).
std::map<StartRoutine, std::string>& start_names() {
  static std::map<StartRoutine, std::string> names;
  return names;
}

std::string lookup_start_name(StartRoutine fn) {
  auto it = start_names().find(fn);
  if (it != start_names().end()) return it->second;
  std::ostringstream os;
  os << "fn@" << reinterpret_cast<const void*>(fn);
  return os.str();
}

ThreadRec& rec(thread_t tid) {
  auto it = g_state.threads.find(tid);
  VPPB_CHECK_MSG(it != g_state.threads.end(),
                 "thread T" << tid << " unknown to the solaris layer");
  return it->second;
}

/// Emits the implicit thr_exit record and terminates the calling thread.
[[noreturn]] void exit_with(void* status, const std::source_location& loc) {
  auto& rt = Runtime::current();
  const thread_t self = rt.current_tid();
  rec(self).retval = status;
  if (ProbeSink* sink = probe_sink()) {
    sink->on_call(ProbeContext{trace::Op::kThrExit,
                               {trace::ObjKind::kThread,
                                static_cast<std::uint32_t>(self)},
                               0,
                               0,
                               loc,
                               {}});
  }
  rt.wake_all(g_state.any_exit_waiters);
  rt.exit_current();
}

}  // namespace

void reset_state() { g_state = SolState{}; }

std::uint32_t object_count(trace::ObjKind kind) {
  auto it = g_state.next_object_id.find(kind);
  return it == g_state.next_object_id.end() ? 0 : it->second;
}

namespace detail {

std::uint32_t next_object_id(trace::ObjKind kind) {
  return ++g_state.next_object_id[kind];
}

void register_main_thread() {
  const thread_t self = Runtime::current().current_tid();
  g_state.threads[self] = ThreadRec{};
  if (ProbeSink* sink = probe_sink())
    sink->on_thread(self, "main", "main", /*bound=*/false,
                    Runtime::current().priority(self));
}

}  // namespace detail

void register_start_routine(StartRoutine fn, std::string name) {
  start_names()[fn] = std::move(name);
}

int thr_create_fn(std::function<void*()> fn, long flags, thread_t* new_thread,
                  std::string name, std::source_location loc) {
  auto& rt = Runtime::current();
  const bool bound = (flags & (THR_BOUND | THR_NEW_LWP)) != 0;
  const bool detached = (flags & THR_DETACHED) != 0;
  const bool daemon = (flags & THR_DAEMON) != 0;

  detail::ProbeScope probe(trace::Op::kThrCreate, {trace::ObjKind::kThread, 0},
                           flags, 0, loc);

  const ThreadId tid = rt.spawn(
      [fn = std::move(fn), loc]() mutable {
        void* status = fn();
        exit_with(status, loc);
      },
      ult::kDefaultPriority, daemon, name);
  g_state.threads[tid] = ThreadRec{nullptr, detached, bound, false};

  if (ProbeSink* sink = probe_sink())
    sink->on_thread(tid, rt.name(tid), name.empty() ? rt.name(tid) : name,
                    bound, rt.priority(tid));
  if (flags & THR_SUSPENDED) rt.suspend(tid);
  probe.set_result(tid);
  if (new_thread != nullptr) *new_thread = tid;
  return SOL_OK;
}

int thr_create(void* /*stack*/, std::size_t /*stack_size*/, StartRoutine start,
               void* arg, long flags, thread_t* new_thread,
               std::source_location loc) {
  if (start == nullptr) return SOL_EINVAL;
  return thr_create_fn([start, arg]() { return start(arg); }, flags,
                       new_thread, lookup_start_name(start), loc);
}

int thr_join(thread_t target, thread_t* departed, void** status,
             std::source_location loc) {
  auto& rt = Runtime::current();
  const thread_t self = rt.current_tid();
  const std::int64_t recorded_target =
      target == 0 ? trace::kAnyThread : target;

  detail::ProbeScope probe(
      trace::Op::kThrJoin,
      {trace::ObjKind::kThread, static_cast<std::uint32_t>(recorded_target)},
      0, 0, loc);

  if (target == self) return SOL_EDEADLK;

  if (target != 0) {
    auto it = g_state.threads.find(target);
    if (it == g_state.threads.end() || it->second.detached ||
        it->second.reaped)
      return SOL_ESRCH;
    while (rt.state(target) != ult::ThreadState::kDone) {
      rt.block_current(rt.exit_waiters(target));
      if (rec(target).reaped) return SOL_ESRCH;  // raced with another joiner
    }
    ThreadRec& r = rec(target);
    if (r.reaped) return SOL_ESRCH;
    r.reaped = true;
    probe.set_result(target);
    if (departed != nullptr) *departed = target;
    if (status != nullptr) *status = r.retval;
    return SOL_OK;
  }

  // Wildcard join: wait for any undetached thread to exit (may not be the
  // thread that exited in a recorded execution — paper §6).
  for (;;) {
    bool any_candidate = false;
    for (auto& [tid, r] : g_state.threads) {
      if (tid == self || r.detached || r.reaped) continue;
      any_candidate = true;
      if (rt.state(tid) == ult::ThreadState::kDone) {
        r.reaped = true;
        probe.set_result(tid);
        if (departed != nullptr) *departed = tid;
        if (status != nullptr) *status = r.retval;
        return SOL_OK;
      }
    }
    if (!any_candidate) return SOL_ESRCH;
    rt.block_current(g_state.any_exit_waiters);
  }
}

void thr_exit(void* status, std::source_location loc) {
  exit_with(status, loc);
}

thread_t thr_self() { return Runtime::current().current_tid(); }

int thr_yield(std::source_location loc) {
  auto& rt = Runtime::current();
  detail::ProbeScope probe(trace::Op::kThrYield, {}, 0, 0, loc);
  rt.yield();
  return SOL_OK;
}

int thr_suspend(thread_t target, std::source_location loc) {
  auto& rt = Runtime::current();
  if (!rt.exists(target)) return SOL_ESRCH;
  if (rt.state(target) == ult::ThreadState::kDone) return SOL_ESRCH;
  detail::ProbeScope probe(
      trace::Op::kThrSuspend,
      {trace::ObjKind::kThread, static_cast<std::uint32_t>(target)}, 0, 0,
      loc);
  rt.suspend(target);
  return SOL_OK;
}

int thr_continue(thread_t target, std::source_location loc) {
  auto& rt = Runtime::current();
  if (!rt.exists(target)) return SOL_ESRCH;
  detail::ProbeScope probe(
      trace::Op::kThrContinue,
      {trace::ObjKind::kThread, static_cast<std::uint32_t>(target)}, 0, 0,
      loc);
  rt.resume(target);
  return SOL_OK;
}

int thr_setprio(thread_t target, int priority, std::source_location loc) {
  auto& rt = Runtime::current();
  if (!rt.exists(target)) return SOL_ESRCH;
  if (priority < ult::kMinPriority || priority > ult::kMaxPriority)
    return SOL_EINVAL;
  detail::ProbeScope probe(
      trace::Op::kThrSetPrio,
      {trace::ObjKind::kThread, static_cast<std::uint32_t>(target)}, priority,
      0, loc);
  rt.set_priority(target, priority);
  return SOL_OK;
}

int thr_getprio(thread_t target, int* priority) {
  auto& rt = Runtime::current();
  if (!rt.exists(target)) return SOL_ESRCH;
  if (priority != nullptr) *priority = rt.priority(target);
  return SOL_OK;
}

int thr_setconcurrency(int level, std::source_location loc) {
  if (level < 0) return SOL_EINVAL;
  detail::ProbeScope probe(trace::Op::kThrSetConcurrency, {}, level, 0, loc);
  g_state.concurrency_request = level;
  return SOL_OK;
}

int thr_getconcurrency() { return g_state.concurrency_request; }

void compute(SimTime amount) {
  auto& rt = Runtime::current();
  if (rt.clock_mode() == ult::ClockMode::kVirtual) {
    rt.work(amount);
    return;
  }
  // Real mode: actually burn CPU for the requested wall time.
  const SimTime start = rt.stamp_now();
  volatile double sink = 1.0;
  while (rt.stamp_now() - start < amount) {
    for (int i = 0; i < 64; ++i) sink = sink * 1.0000001 + 0.0000001;
  }
}

void io_wait(SimTime latency, std::string_view device,
             std::source_location loc) {
  auto& rt = Runtime::current();
  VPPB_CHECK_MSG(latency >= SimTime::zero(), "negative I/O latency");
  auto it = g_state.io_devices.find(device);
  if (it == g_state.io_devices.end()) {
    const auto id = detail::next_object_id(trace::ObjKind::kIo);
    it = g_state.io_devices.emplace(std::string(device), id).first;
  }
  detail::ProbeScope probe(trace::Op::kIoWait,
                           {trace::ObjKind::kIo, it->second},
                           latency.ns(), 0, loc);
  if (rt.clock_mode() == ult::ClockMode::kVirtual) {
    rt.sleep_until(rt.now() + latency);
  } else {
    // Real mode: the device latency still must not burn CPU, so the
    // runtime parks the thread until the deadline.
    rt.sleep_until(rt.stamp_now() + latency);
  }
}

void mark(std::string_view label, std::source_location loc) {
  if (ProbeSink* sink = probe_sink()) {
    sink->on_call(ProbeContext{
        trace::Op::kUserMark, {trace::ObjKind::kMark, 0}, 0, 0, loc, label});
  }
}

}  // namespace vppb::sol
