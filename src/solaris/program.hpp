// sol::Program — the harness that runs a multithreaded program on the
// one-LWP runtime (the paper's "execution on a uni-processor"), plus
// RAII C++ conveniences used by the workloads (the C-style API remains
// the recorded surface).
#pragma once

#include <functional>
#include <source_location>

#include "solaris/solaris.hpp"
#include "ult/runtime.hpp"
#include "util/time.hpp"

namespace vppb::sol {

class Program {
 public:
  struct Options {
    ult::ClockMode clock_mode = ult::ClockMode::kVirtual;
    std::size_t stack_size = 256 * 1024;
    SimTime livelock_horizon = SimTime::max();
    std::uint64_t max_context_switches = 0;
    /// Virtual cost of the library calls themselves (see OpCostModel).
    OpCostModel op_costs{};
  };

  Program();  // default Options
  explicit Program(Options opts) : opts_(opts) {}

  /// Runs `main_fn` as the program's main thread (id 1) to completion.
  /// Resets the solaris layer state, so each run is independent.
  void run(const std::function<void()>& main_fn);

  /// Duration of the last run (the uni-processor execution time).
  SimTime last_duration() const { return last_duration_; }

 private:
  Options opts_;
  SimTime last_duration_;
};

// ---- RAII wrappers ---------------------------------------------------------

class Mutex {
 public:
  explicit Mutex(std::source_location loc = std::source_location::current()) {
    mutex_init(&m_, 0, nullptr, loc);
  }
  ~Mutex() {
    if (m_.impl != nullptr) mutex_destroy(&m_);
  }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock(std::source_location loc = std::source_location::current()) {
    mutex_lock(&m_, loc);
  }
  bool try_lock(std::source_location loc = std::source_location::current()) {
    return mutex_trylock(&m_, loc) == SOL_OK;
  }
  void unlock(std::source_location loc = std::source_location::current()) {
    mutex_unlock(&m_, loc);
  }
  mutex_t* raw() { return &m_; }

 private:
  mutex_t m_;
};

class ScopedLock {
 public:
  explicit ScopedLock(Mutex& m,
                      std::source_location loc = std::source_location::current())
      : m_(m), loc_(loc) {
    m_.lock(loc_);
  }
  ~ScopedLock() { m_.unlock(loc_); }
  ScopedLock(const ScopedLock&) = delete;
  ScopedLock& operator=(const ScopedLock&) = delete;

 private:
  Mutex& m_;
  std::source_location loc_;
};

class Semaphore {
 public:
  explicit Semaphore(unsigned count = 0,
                     std::source_location loc = std::source_location::current()) {
    sema_init(&s_, count, 0, nullptr, loc);
  }
  ~Semaphore() {
    if (s_.impl != nullptr) sema_destroy(&s_);
  }
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  void wait(std::source_location loc = std::source_location::current()) {
    sema_wait(&s_, loc);
  }
  bool try_wait(std::source_location loc = std::source_location::current()) {
    return sema_trywait(&s_, loc) == SOL_OK;
  }
  void post(std::source_location loc = std::source_location::current()) {
    sema_post(&s_, loc);
  }
  sema_t* raw() { return &s_; }

 private:
  sema_t s_;
};

class CondVar {
 public:
  explicit CondVar(std::source_location loc = std::source_location::current()) {
    cond_init(&c_, 0, nullptr, loc);
  }
  ~CondVar() {
    if (c_.impl != nullptr) cond_destroy(&c_);
  }
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& m,
            std::source_location loc = std::source_location::current()) {
    cond_wait(&c_, m.raw(), loc);
  }
  /// Returns false on timeout.
  bool timed_wait(Mutex& m, SimTime abstime,
                  std::source_location loc = std::source_location::current()) {
    return cond_timedwait(&c_, m.raw(), abstime, loc) == SOL_OK;
  }
  void signal(std::source_location loc = std::source_location::current()) {
    cond_signal(&c_, loc);
  }
  void broadcast(std::source_location loc = std::source_location::current()) {
    cond_broadcast(&c_, loc);
  }
  cond_t* raw() { return &c_; }

 private:
  cond_t c_;
};

class RwLock {
 public:
  explicit RwLock(std::source_location loc = std::source_location::current()) {
    rwlock_init(&rw_, 0, nullptr, loc);
  }
  ~RwLock() {
    if (rw_.impl != nullptr) rwlock_destroy(&rw_);
  }
  RwLock(const RwLock&) = delete;
  RwLock& operator=(const RwLock&) = delete;

  void rdlock(std::source_location loc = std::source_location::current()) {
    rw_rdlock(&rw_, loc);
  }
  void wrlock(std::source_location loc = std::source_location::current()) {
    rw_wrlock(&rw_, loc);
  }
  void unlock(std::source_location loc = std::source_location::current()) {
    rw_unlock(&rw_, loc);
  }
  rwlock_t* raw() { return &rw_; }

 private:
  rwlock_t rw_;
};

/// The mutex + cond_broadcast barrier the paper's §6 discussion singles
/// out: the Simulator models the "last thread to arrive releases all
/// waiters" behaviour of exactly this construction.  SPLASH-style
/// workloads synchronize phases with it.
class Barrier {
 public:
  explicit Barrier(int parties,
                   std::source_location loc = std::source_location::current());

  /// Blocks until `parties` threads have arrived.
  void arrive(std::source_location loc = std::source_location::current());

  int parties() const { return parties_; }

 private:
  Mutex m_;
  CondVar c_;
  int parties_;
  int arrived_ = 0;
  std::int64_t generation_ = 0;
};

/// Joins every joinable thread until none remain (main's usual epilogue).
void join_all(std::source_location loc = std::source_location::current());

}  // namespace vppb::sol
