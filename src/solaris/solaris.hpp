// A source-compatible subset of the Solaris 2.X threads API
// (thr_* / mutex_* / sema_* / cond_* / rw_*), implemented on the
// user-level threads runtime in src/ult.
//
// Semantics follow the Solaris Multithreaded Programming Guide the
// paper cites: unbound threads are multiplexed by the library on the
// process's LWPs (exactly one LWP here, as the Recorder requires);
// synchronization objects wake sleepers in priority order, FIFO within
// a priority; cond_timedwait returns ETIME on timeout; try-operations
// return EBUSY when the object is held.
//
// Every function takes a defaulted std::source_location so the Recorder
// can map events to source lines — the portable substitute for the
// paper's %i7 return-address capture plus debugger lookup.
#pragma once

#include <cstdint>
#include <functional>
#include <source_location>
#include <string>

#include "solaris/probe.hpp"
#include "ult/runtime.hpp"
#include "util/time.hpp"

namespace vppb::sol {

using thread_t = ult::ThreadId;

// thr_create flags (values as in Solaris <thread.h>).
constexpr long THR_BOUND = 0x00000001;
constexpr long THR_NEW_LWP = 0x00000002;
constexpr long THR_DETACHED = 0x00000040;
constexpr long THR_SUSPENDED = 0x00000080;
constexpr long THR_DAEMON = 0x00000100;

// Error returns (the subset the API uses).
constexpr int SOL_OK = 0;
constexpr int SOL_EBUSY = 16;
constexpr int SOL_EINVAL = 22;
constexpr int SOL_ESRCH = 3;
constexpr int SOL_EDEADLK = 45;
constexpr int SOL_ETIME = 62;

// ---- thread management ----------------------------------------------------

/// C-style start routine, as in Solaris.
using StartRoutine = void* (*)(void*);

/// Registers a human-readable name for a start routine; the Recorder
/// stores it in the trace (the paper resolves the recorded function
/// pointer with a debugger).  Unregistered routines get "fn@<addr>".
void register_start_routine(StartRoutine fn, std::string name);

int thr_create(void* stack, std::size_t stack_size, StartRoutine start,
               void* arg, long flags, thread_t* new_thread,
               std::source_location loc = std::source_location::current());

/// Extension: create from any callable, with an explicit name.
int thr_create_fn(std::function<void*()> fn, long flags, thread_t* new_thread,
                  std::string name = {},
                  std::source_location loc = std::source_location::current());

int thr_join(thread_t target, thread_t* departed, void** status,
             std::source_location loc = std::source_location::current());

[[noreturn]] void thr_exit(
    void* status, std::source_location loc = std::source_location::current());

thread_t thr_self();

int thr_yield(std::source_location loc = std::source_location::current());

/// Stops / resumes a thread (THR_SUSPENDED creation is also supported).
int thr_suspend(thread_t target,
                std::source_location loc = std::source_location::current());
int thr_continue(thread_t target,
                 std::source_location loc = std::source_location::current());

int thr_setprio(thread_t target, int priority,
                std::source_location loc = std::source_location::current());
int thr_getprio(thread_t target, int* priority);

/// Advises the library how many LWPs to use.  On one LWP this records
/// the request and changes nothing — the Simulator's LWP-count knob
/// overrides it anyway (paper §3.2).
int thr_setconcurrency(int level,
                       std::source_location loc = std::source_location::current());
int thr_getconcurrency();

// ---- mutexes ---------------------------------------------------------------

namespace detail {
struct MutexImpl;
struct SemaImpl;
struct CondImpl;
struct RwlockImpl;
}  // namespace detail

struct mutex_t {
  detail::MutexImpl* impl = nullptr;
};
struct sema_t {
  detail::SemaImpl* impl = nullptr;
};
struct cond_t {
  detail::CondImpl* impl = nullptr;
};
struct rwlock_t {
  detail::RwlockImpl* impl = nullptr;
};

int mutex_init(mutex_t* m, int type = 0, void* arg = nullptr,
               std::source_location loc = std::source_location::current());
int mutex_lock(mutex_t* m,
               std::source_location loc = std::source_location::current());
int mutex_trylock(mutex_t* m,
                  std::source_location loc = std::source_location::current());
int mutex_unlock(mutex_t* m,
                 std::source_location loc = std::source_location::current());
int mutex_destroy(mutex_t* m,
                  std::source_location loc = std::source_location::current());

// ---- counting semaphores ---------------------------------------------------

int sema_init(sema_t* s, unsigned count, int type = 0, void* arg = nullptr,
              std::source_location loc = std::source_location::current());
int sema_wait(sema_t* s,
              std::source_location loc = std::source_location::current());
int sema_trywait(sema_t* s,
                 std::source_location loc = std::source_location::current());
int sema_post(sema_t* s,
              std::source_location loc = std::source_location::current());
int sema_destroy(sema_t* s,
                 std::source_location loc = std::source_location::current());

// ---- condition variables ---------------------------------------------------

int cond_init(cond_t* c, int type = 0, void* arg = nullptr,
              std::source_location loc = std::source_location::current());
int cond_wait(cond_t* c, mutex_t* m,
              std::source_location loc = std::source_location::current());
/// Absolute deadline in runtime time; returns SOL_ETIME on timeout.
int cond_timedwait(cond_t* c, mutex_t* m, SimTime abstime,
                   std::source_location loc = std::source_location::current());
int cond_signal(cond_t* c,
                std::source_location loc = std::source_location::current());
int cond_broadcast(cond_t* c,
                   std::source_location loc = std::source_location::current());
int cond_destroy(cond_t* c,
                 std::source_location loc = std::source_location::current());

// ---- readers/writer locks ----------------------------------------------------

int rwlock_init(rwlock_t* rw, int type = 0, void* arg = nullptr,
                std::source_location loc = std::source_location::current());
int rw_rdlock(rwlock_t* rw,
              std::source_location loc = std::source_location::current());
int rw_tryrdlock(rwlock_t* rw,
                 std::source_location loc = std::source_location::current());
int rw_wrlock(rwlock_t* rw,
              std::source_location loc = std::source_location::current());
int rw_trywrlock(rwlock_t* rw,
                 std::source_location loc = std::source_location::current());
int rw_unlock(rwlock_t* rw,
              std::source_location loc = std::source_location::current());
int rwlock_destroy(rwlock_t* rw,
                   std::source_location loc = std::source_location::current());

// ---- compute & annotations ---------------------------------------------------

/// Declare virtual CPU work by the calling thread (virtual clock mode);
/// in real clock mode actual computation is timed instead and this is
/// only a convenience spin substitute.
void compute(SimTime amount);

/// Emit a named phase marker into the trace (Visualizer annotation).
void mark(std::string_view label,
          std::source_location loc = std::source_location::current());

/// Extension (the paper's §6 future work): blocking I/O with the given
/// latency on a named device.  The calling thread sleeps — it burns no
/// CPU and other threads run meanwhile — and the Recorder logs the op so
/// the Simulator replays the latency as a device delay rather than
/// compute demand.
void io_wait(SimTime latency, std::string_view device = "disk",
             std::source_location loc = std::source_location::current());

/// Internal: resets the solaris layer's per-run state (thread return
/// values, object id counters).  Called by sol::Program.
void reset_state();

/// Internal: object ids handed out so far (used by tests).
std::uint32_t object_count(trace::ObjKind kind);

}  // namespace vppb::sol
