#include "solaris/pthread_compat.hpp"

namespace vppb::sol {

int vppb_pthread_attr_init(vppb_pthread_attr_t* attr) {
  if (attr == nullptr) return SOL_EINVAL;
  *attr = vppb_pthread_attr_t{};
  return SOL_OK;
}

int vppb_pthread_attr_setdetachstate(vppb_pthread_attr_t* attr,
                                     bool detached) {
  if (attr == nullptr) return SOL_EINVAL;
  if (detached) {
    attr->flags |= THR_DETACHED;
  } else {
    attr->flags &= ~THR_DETACHED;
  }
  return SOL_OK;
}

int vppb_pthread_attr_setscope_system(vppb_pthread_attr_t* attr, bool system) {
  if (attr == nullptr) return SOL_EINVAL;
  if (system) {
    attr->flags |= THR_BOUND;
  } else {
    attr->flags &= ~THR_BOUND;
  }
  return SOL_OK;
}

int vppb_pthread_create(vppb_pthread_t* thread,
                        const vppb_pthread_attr_t* attr,
                        void* (*start)(void*), void* arg,
                        std::source_location loc) {
  const long flags = attr != nullptr ? attr->flags : 0;
  return thr_create(nullptr, 0, start, arg, flags, thread, loc);
}

int vppb_pthread_join(vppb_pthread_t thread, void** retval,
                      std::source_location loc) {
  return thr_join(thread, nullptr, retval, loc);
}

void vppb_pthread_exit(void* retval, std::source_location loc) {
  thr_exit(retval, loc);
}

vppb_pthread_t vppb_pthread_self() { return thr_self(); }

int vppb_sched_yield(std::source_location loc) { return thr_yield(loc); }

int vppb_pthread_mutex_init(vppb_pthread_mutex_t* m, const void*,
                            std::source_location loc) {
  return m == nullptr ? SOL_EINVAL : mutex_init(&m->m, 0, nullptr, loc);
}
int vppb_pthread_mutex_lock(vppb_pthread_mutex_t* m,
                            std::source_location loc) {
  return m == nullptr ? SOL_EINVAL : mutex_lock(&m->m, loc);
}
int vppb_pthread_mutex_trylock(vppb_pthread_mutex_t* m,
                               std::source_location loc) {
  return m == nullptr ? SOL_EINVAL : mutex_trylock(&m->m, loc);
}
int vppb_pthread_mutex_unlock(vppb_pthread_mutex_t* m,
                              std::source_location loc) {
  return m == nullptr ? SOL_EINVAL : mutex_unlock(&m->m, loc);
}
int vppb_pthread_mutex_destroy(vppb_pthread_mutex_t* m,
                               std::source_location loc) {
  return m == nullptr ? SOL_EINVAL : mutex_destroy(&m->m, loc);
}

int vppb_pthread_cond_init(vppb_pthread_cond_t* c, const void*,
                           std::source_location loc) {
  return c == nullptr ? SOL_EINVAL : cond_init(&c->c, 0, nullptr, loc);
}
int vppb_pthread_cond_wait(vppb_pthread_cond_t* c, vppb_pthread_mutex_t* m,
                           std::source_location loc) {
  if (c == nullptr || m == nullptr) return SOL_EINVAL;
  return cond_wait(&c->c, &m->m, loc);
}
int vppb_pthread_cond_timedwait(vppb_pthread_cond_t* c,
                                vppb_pthread_mutex_t* m, SimTime abstime,
                                std::source_location loc) {
  if (c == nullptr || m == nullptr) return SOL_EINVAL;
  return cond_timedwait(&c->c, &m->m, abstime, loc);
}
int vppb_pthread_cond_signal(vppb_pthread_cond_t* c,
                             std::source_location loc) {
  return c == nullptr ? SOL_EINVAL : cond_signal(&c->c, loc);
}
int vppb_pthread_cond_broadcast(vppb_pthread_cond_t* c,
                                std::source_location loc) {
  return c == nullptr ? SOL_EINVAL : cond_broadcast(&c->c, loc);
}
int vppb_pthread_cond_destroy(vppb_pthread_cond_t* c,
                              std::source_location loc) {
  return c == nullptr ? SOL_EINVAL : cond_destroy(&c->c, loc);
}

int vppb_pthread_rwlock_init(vppb_pthread_rwlock_t* rw, const void*,
                             std::source_location loc) {
  return rw == nullptr ? SOL_EINVAL : rwlock_init(&rw->rw, 0, nullptr, loc);
}
int vppb_pthread_rwlock_rdlock(vppb_pthread_rwlock_t* rw,
                               std::source_location loc) {
  return rw == nullptr ? SOL_EINVAL : rw_rdlock(&rw->rw, loc);
}
int vppb_pthread_rwlock_wrlock(vppb_pthread_rwlock_t* rw,
                               std::source_location loc) {
  return rw == nullptr ? SOL_EINVAL : rw_wrlock(&rw->rw, loc);
}
int vppb_pthread_rwlock_unlock(vppb_pthread_rwlock_t* rw,
                               std::source_location loc) {
  return rw == nullptr ? SOL_EINVAL : rw_unlock(&rw->rw, loc);
}
int vppb_pthread_rwlock_destroy(vppb_pthread_rwlock_t* rw,
                                std::source_location loc) {
  return rw == nullptr ? SOL_EINVAL : rwlock_destroy(&rw->rw, loc);
}

int vppb_sem_init(vppb_sem_t* s, int /*pshared*/, unsigned value,
                  std::source_location loc) {
  return s == nullptr ? SOL_EINVAL : sema_init(&s->s, value, 0, nullptr, loc);
}
int vppb_sem_wait(vppb_sem_t* s, std::source_location loc) {
  return s == nullptr ? SOL_EINVAL : sema_wait(&s->s, loc);
}
int vppb_sem_trywait(vppb_sem_t* s, std::source_location loc) {
  return s == nullptr ? SOL_EINVAL : sema_trywait(&s->s, loc);
}
int vppb_sem_post(vppb_sem_t* s, std::source_location loc) {
  return s == nullptr ? SOL_EINVAL : sema_post(&s->s, loc);
}
int vppb_sem_destroy(vppb_sem_t* s, std::source_location loc) {
  return s == nullptr ? SOL_EINVAL : sema_destroy(&s->s, loc);
}

}  // namespace vppb::sol
