// POSIX-threads front-end over the Solaris threads layer.
//
// The paper notes (§6) that "the tool can easily be adjusted to
// support, e.g., POSIX threads with only small modifications of the
// probes in the Recorder".  This header is that adjustment: a
// pthread-shaped API whose calls run through the same probed solaris
// primitives, so pthread-style programs record, simulate and visualize
// identically.  Naming uses a vppb_ prefix (vppb_pthread_create, ...)
// to avoid colliding with the host's <pthread.h>.
#pragma once

#include <source_location>

#include "solaris/solaris.hpp"

namespace vppb::sol {

using vppb_pthread_t = thread_t;

struct vppb_pthread_attr_t {
  long flags = 0;  ///< THR_BOUND / THR_DETACHED / THR_DAEMON
};

struct vppb_pthread_mutex_t {
  mutex_t m;
};
struct vppb_pthread_cond_t {
  cond_t c;
};
struct vppb_pthread_rwlock_t {
  rwlock_t rw;
};
struct vppb_sem_t {
  sema_t s;
};

// ---- attributes -------------------------------------------------------------

int vppb_pthread_attr_init(vppb_pthread_attr_t* attr);
int vppb_pthread_attr_setdetachstate(vppb_pthread_attr_t* attr, bool detached);
/// PTHREAD_SCOPE_SYSTEM maps to a bound thread, as on Solaris.
int vppb_pthread_attr_setscope_system(vppb_pthread_attr_t* attr, bool system);

// ---- threads ----------------------------------------------------------------

int vppb_pthread_create(
    vppb_pthread_t* thread, const vppb_pthread_attr_t* attr,
    void* (*start)(void*), void* arg,
    std::source_location loc = std::source_location::current());
int vppb_pthread_join(
    vppb_pthread_t thread, void** retval,
    std::source_location loc = std::source_location::current());
[[noreturn]] void vppb_pthread_exit(
    void* retval, std::source_location loc = std::source_location::current());
vppb_pthread_t vppb_pthread_self();
int vppb_sched_yield(
    std::source_location loc = std::source_location::current());

// ---- mutexes ----------------------------------------------------------------

int vppb_pthread_mutex_init(
    vppb_pthread_mutex_t* m, const void* attr = nullptr,
    std::source_location loc = std::source_location::current());
int vppb_pthread_mutex_lock(
    vppb_pthread_mutex_t* m,
    std::source_location loc = std::source_location::current());
int vppb_pthread_mutex_trylock(
    vppb_pthread_mutex_t* m,
    std::source_location loc = std::source_location::current());
int vppb_pthread_mutex_unlock(
    vppb_pthread_mutex_t* m,
    std::source_location loc = std::source_location::current());
int vppb_pthread_mutex_destroy(
    vppb_pthread_mutex_t* m,
    std::source_location loc = std::source_location::current());

// ---- condition variables ------------------------------------------------------

int vppb_pthread_cond_init(
    vppb_pthread_cond_t* c, const void* attr = nullptr,
    std::source_location loc = std::source_location::current());
int vppb_pthread_cond_wait(
    vppb_pthread_cond_t* c, vppb_pthread_mutex_t* m,
    std::source_location loc = std::source_location::current());
/// Absolute deadline in runtime time; returns SOL_ETIME on timeout
/// (POSIX ETIMEDOUT).
int vppb_pthread_cond_timedwait(
    vppb_pthread_cond_t* c, vppb_pthread_mutex_t* m, SimTime abstime,
    std::source_location loc = std::source_location::current());
int vppb_pthread_cond_signal(
    vppb_pthread_cond_t* c,
    std::source_location loc = std::source_location::current());
int vppb_pthread_cond_broadcast(
    vppb_pthread_cond_t* c,
    std::source_location loc = std::source_location::current());
int vppb_pthread_cond_destroy(
    vppb_pthread_cond_t* c,
    std::source_location loc = std::source_location::current());

// ---- rwlocks ------------------------------------------------------------------

int vppb_pthread_rwlock_init(
    vppb_pthread_rwlock_t* rw, const void* attr = nullptr,
    std::source_location loc = std::source_location::current());
int vppb_pthread_rwlock_rdlock(
    vppb_pthread_rwlock_t* rw,
    std::source_location loc = std::source_location::current());
int vppb_pthread_rwlock_wrlock(
    vppb_pthread_rwlock_t* rw,
    std::source_location loc = std::source_location::current());
int vppb_pthread_rwlock_unlock(
    vppb_pthread_rwlock_t* rw,
    std::source_location loc = std::source_location::current());
int vppb_pthread_rwlock_destroy(
    vppb_pthread_rwlock_t* rw,
    std::source_location loc = std::source_location::current());

// ---- POSIX semaphores ----------------------------------------------------------

int vppb_sem_init(vppb_sem_t* s, int pshared, unsigned value,
                  std::source_location loc = std::source_location::current());
int vppb_sem_wait(vppb_sem_t* s,
                  std::source_location loc = std::source_location::current());
int vppb_sem_trywait(
    vppb_sem_t* s, std::source_location loc = std::source_location::current());
int vppb_sem_post(vppb_sem_t* s,
                  std::source_location loc = std::source_location::current());
int vppb_sem_destroy(
    vppb_sem_t* s, std::source_location loc = std::source_location::current());

}  // namespace vppb::sol
