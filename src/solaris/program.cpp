#include "solaris/program.hpp"

#include "solaris/state.hpp"
#include "util/error.hpp"

namespace vppb::sol {

Program::Program() : Program(Options{}) {}

void Program::run(const std::function<void()>& main_fn) {
  reset_state();
  set_op_cost_model(opts_.op_costs);
  ult::Runtime::Config cfg;
  cfg.clock_mode = opts_.clock_mode;
  cfg.stack_size = opts_.stack_size;
  cfg.livelock_horizon = opts_.livelock_horizon;
  cfg.max_context_switches = opts_.max_context_switches;
  ult::Runtime rt(cfg);
  rt.run([&main_fn]() {
    detail::register_main_thread();
    main_fn();
    // Returning from main is an implicit thr_exit, and is recorded as
    // one (the paper's fig. 2 log ends with main's thr_exit).
    thr_exit(nullptr);
  });
  last_duration_ = rt.now();
}

Barrier::Barrier(int parties, std::source_location loc)
    : m_(loc), c_(loc), parties_(parties) {
  VPPB_CHECK_MSG(parties > 0, "barrier needs at least one party");
}

void Barrier::arrive(std::source_location loc) {
  mutex_lock(m_.raw(), loc);
  const std::int64_t my_generation = generation_;
  if (++arrived_ == parties_) {
    arrived_ = 0;
    ++generation_;
    cond_broadcast(c_.raw(), loc);
  } else {
    while (generation_ == my_generation) cond_wait(c_.raw(), m_.raw(), loc);
  }
  mutex_unlock(m_.raw(), loc);
}

void join_all(std::source_location loc) {
  void* status = nullptr;
  while (thr_join(0, nullptr, &status, loc) == SOL_OK) {
  }
}

}  // namespace vppb::sol
