// The recorded information (the paper's log file): a time-ordered list
// of records plus thread metadata and a source-location table that
// substitutes for the paper's debugger-assisted address→line mapping.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "trace/event.hpp"
#include "util/time.hpp"

namespace vppb::trace {

/// Interned strings (file names, function names).  Index 0 is "".
class StringPool {
 public:
  StringPool() { strings_.emplace_back(); }

  std::uint32_t intern(std::string_view s);
  const std::string& get(std::uint32_t id) const;
  std::size_t size() const { return strings_.size(); }

 private:
  std::vector<std::string> strings_;
  std::map<std::string, std::uint32_t, std::less<>> index_;
};

/// A source location: where in the program a probe was hit.  The paper
/// recorded the %i7 return address and resolved it with a debugger; we
/// record file/line/function captured at the call site.
struct SourceLoc {
  std::uint32_t file = 0;  ///< StringPool index
  std::uint32_t func = 0;  ///< StringPool index
  std::uint32_t line = 0;

  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
  friend auto operator<=>(const SourceLoc&, const SourceLoc&) = default;
};

/// Per-thread metadata: the paper records the function pointer passed to
/// thr_create and resolves its name; we store the resolved name.
struct ThreadMeta {
  ThreadId tid = 0;
  std::uint32_t name = 0;        ///< thread name (StringPool)
  std::uint32_t start_func = 0;  ///< start routine name (StringPool)
  bool bound = false;            ///< created with THR_BOUND
  int initial_priority = 0;
};

/// A complete recorded execution.
class Trace {
 public:
  /// Location index 0 is reserved as "unknown" so records default to it.
  Trace() : locations(1) {}

  StringPool strings;
  std::vector<ThreadMeta> threads;
  std::vector<Record> records;       ///< in recording (time) order
  std::vector<SourceLoc> locations;  ///< indexed by Record::loc; [0] = unknown

  /// Register a location, deduplicating identical ones.
  std::uint32_t add_location(std::string_view file, std::uint32_t line,
                             std::string_view func);

  const ThreadMeta* find_thread(ThreadId tid) const;
  ThreadMeta& upsert_thread(ThreadId tid);

  /// Total recorded duration (time of the last record).
  SimTime duration() const;

  /// Render "file:line" for a record (empty when unknown).
  std::string location_string(const Record& r) const;

  /// Validates internal consistency (monotonic times, paired call/return,
  /// known threads, in-range indices).  Throws vppb::Error on violation.
  void validate() const;
};

/// The Simulator's first step (paper fig. 4): sort the log into one event
/// list per thread, preserving time order within each list.
std::map<ThreadId, std::vector<Record>> split_by_thread(const Trace& trace);

/// Aggregate statistics used by the §4 intrusion/size experiments.
struct TraceStats {
  std::size_t records = 0;
  std::size_t threads = 0;
  SimTime duration;
  double events_per_second = 0.0;  ///< record pairs per recorded second
  std::map<Op, std::size_t> per_op;
};

TraceStats compute_stats(const Trace& trace);

}  // namespace vppb::trace
