#include "trace/trace.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace vppb::trace {

std::uint32_t StringPool::intern(std::string_view s) {
  if (s.empty()) return 0;
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(std::string(s), id);
  return id;
}

const std::string& StringPool::get(std::uint32_t id) const {
  VPPB_CHECK_MSG(id < strings_.size(), "string id out of range: " << id);
  return strings_[id];
}

std::uint32_t Trace::add_location(std::string_view file, std::uint32_t line,
                                  std::string_view func) {
  SourceLoc loc{strings.intern(file), strings.intern(func), line};
  // Linear scan over a typically tiny, hot-at-the-end table would be
  // wasteful for big programs; dedupe against the last few entries only
  // (consecutive events usually share a site) and otherwise append.
  const std::size_t lookback = std::min<std::size_t>(locations.size(), 64);
  for (std::size_t i = locations.size() - lookback; i < locations.size(); ++i) {
    if (locations[i] == loc) return static_cast<std::uint32_t>(i);
  }
  locations.push_back(loc);
  return static_cast<std::uint32_t>(locations.size() - 1);
}

const ThreadMeta* Trace::find_thread(ThreadId tid) const {
  for (const auto& t : threads) {
    if (t.tid == tid) return &t;
  }
  return nullptr;
}

ThreadMeta& Trace::upsert_thread(ThreadId tid) {
  for (auto& t : threads) {
    if (t.tid == tid) return t;
  }
  threads.push_back(ThreadMeta{.tid = tid});
  return threads.back();
}

SimTime Trace::duration() const {
  return records.empty() ? SimTime::zero() : records.back().at;
}

std::string Trace::location_string(const Record& r) const {
  if (r.loc >= locations.size()) return {};
  const SourceLoc& loc = locations[r.loc];
  if (loc.file == 0) return {};
  return strprintf("%s:%u", strings.get(loc.file).c_str(), loc.line);
}

void Trace::validate() const {
  SimTime prev = SimTime::zero();
  // Per-thread: every blocking kCall must be followed by a matching
  // kReturn of the same op before that thread's next record pair.
  std::map<ThreadId, const Record*> open_call;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    VPPB_CHECK_MSG(r.at >= prev,
                   "record " << i << " goes back in time (" << r.at << " < "
                             << prev << ")");
    prev = r.at;
    VPPB_CHECK_MSG(r.loc < locations.size() || r.loc == 0,
                   "record " << i << " has bad location index " << r.loc);
    VPPB_CHECK_MSG(find_thread(r.tid) != nullptr,
                   "record " << i << " from unknown thread T" << r.tid);
    // Markers and thr_exit are single records: no return is ever written
    // (the thread is gone, or the record is a pure annotation).
    const bool single = r.op == Op::kThrExit || r.op == Op::kStartCollect ||
                        r.op == Op::kEndCollect || r.op == Op::kUserMark;
    auto& open = open_call[r.tid];
    if (r.phase == Phase::kCall) {
      VPPB_CHECK_MSG(open == nullptr, "record " << i << ": thread T" << r.tid
                                                << " has two open calls");
      if (!single) open = &r;
    } else {
      VPPB_CHECK_MSG(open != nullptr && open->op == r.op,
                     "record " << i << ": unmatched return of "
                               << op_name(r.op) << " by T" << r.tid);
      open = nullptr;
    }
  }
}

std::map<ThreadId, std::vector<Record>> split_by_thread(const Trace& trace) {
  std::map<ThreadId, std::vector<Record>> lists;
  for (const auto& t : trace.threads) lists[t.tid];  // even if eventless
  for (const Record& r : trace.records) lists[r.tid].push_back(r);
  return lists;
}

TraceStats compute_stats(const Trace& trace) {
  TraceStats s;
  s.records = trace.records.size();
  s.threads = trace.threads.size();
  s.duration = trace.duration();
  for (const Record& r : trace.records) {
    if (r.phase == Phase::kCall) ++s.per_op[r.op];
  }
  const double secs = s.duration.seconds_d();
  if (secs > 0) {
    std::size_t calls = 0;
    for (const auto& [op, n] : s.per_op) calls += n;
    s.events_per_second = static_cast<double>(calls) / secs;
  }
  return s;
}

}  // namespace vppb::trace
