#include "trace/event.hpp"

#include <array>
#include <utility>

namespace vppb::trace {
namespace {

struct OpInfo {
  Op op;
  std::string_view name;
  ObjKind kind;
  bool may_block;
  bool is_try;
};

constexpr std::array<OpInfo, 35> kOps{{
    {Op::kStartCollect, "start_collect", ObjKind::kNone, false, false},
    {Op::kEndCollect, "end_collect", ObjKind::kNone, false, false},
    {Op::kThrCreate, "thr_create", ObjKind::kThread, false, false},
    {Op::kThrExit, "thr_exit", ObjKind::kThread, false, false},
    {Op::kThrJoin, "thr_join", ObjKind::kThread, true, false},
    {Op::kThrYield, "thr_yield", ObjKind::kNone, false, false},
    {Op::kThrSetPrio, "thr_setprio", ObjKind::kThread, false, false},
    {Op::kThrSetConcurrency, "thr_setconcurrency", ObjKind::kNone, false, false},
    {Op::kThrSuspend, "thr_suspend", ObjKind::kThread, false, false},
    {Op::kThrContinue, "thr_continue", ObjKind::kThread, false, false},
    {Op::kMutexInit, "mtx_init", ObjKind::kMutex, false, false},
    {Op::kMutexLock, "mtx_lock", ObjKind::kMutex, true, false},
    {Op::kMutexTrylock, "mtx_trylock", ObjKind::kMutex, false, true},
    {Op::kMutexUnlock, "mtx_unlock", ObjKind::kMutex, false, false},
    {Op::kMutexDestroy, "mtx_destroy", ObjKind::kMutex, false, false},
    {Op::kSemaInit, "sema_init", ObjKind::kSema, false, false},
    {Op::kSemaWait, "sema_wait", ObjKind::kSema, true, false},
    {Op::kSemaTrywait, "sema_trywait", ObjKind::kSema, false, true},
    {Op::kSemaPost, "sema_post", ObjKind::kSema, false, false},
    {Op::kSemaDestroy, "sema_destroy", ObjKind::kSema, false, false},
    {Op::kCondInit, "cond_init", ObjKind::kCond, false, false},
    {Op::kCondWait, "cond_wait", ObjKind::kCond, true, false},
    {Op::kCondTimedwait, "cond_timedwait", ObjKind::kCond, true, false},
    {Op::kCondSignal, "cond_signal", ObjKind::kCond, false, false},
    {Op::kCondBroadcast, "cond_broadcast", ObjKind::kCond, false, false},
    {Op::kCondDestroy, "cond_destroy", ObjKind::kCond, false, false},
    {Op::kRwInit, "rw_init", ObjKind::kRwlock, false, false},
    {Op::kRwRdlock, "rw_rdlock", ObjKind::kRwlock, true, false},
    {Op::kRwTryRdlock, "rw_tryrdlock", ObjKind::kRwlock, false, true},
    {Op::kRwWrlock, "rw_wrlock", ObjKind::kRwlock, true, false},
    {Op::kRwTryWrlock, "rw_trywrlock", ObjKind::kRwlock, false, true},
    {Op::kRwUnlock, "rw_unlock", ObjKind::kRwlock, false, false},
    {Op::kRwDestroy, "rw_destroy", ObjKind::kRwlock, false, false},
    {Op::kUserMark, "user_mark", ObjKind::kMark, false, false},
    {Op::kIoWait, "io_wait", ObjKind::kIo, true, false},
}};

const OpInfo& info(Op op) {
  for (const auto& i : kOps) {
    if (i.op == op) return i;
  }
  return kOps[0];
}

}  // namespace

std::string_view op_name(Op op) { return info(op).name; }

bool op_from_name(std::string_view name, Op& out) {
  for (const auto& i : kOps) {
    if (i.name == name) {
      out = i.op;
      return true;
    }
  }
  return false;
}

std::string_view obj_kind_name(ObjKind k) {
  switch (k) {
    case ObjKind::kNone: return "none";
    case ObjKind::kThread: return "thread";
    case ObjKind::kMutex: return "mutex";
    case ObjKind::kSema: return "sema";
    case ObjKind::kCond: return "cond";
    case ObjKind::kRwlock: return "rwlock";
    case ObjKind::kMark: return "mark";
    case ObjKind::kIo: return "io";
  }
  return "?";
}

bool obj_kind_from_name(std::string_view name, ObjKind& out) {
  for (ObjKind k : {ObjKind::kNone, ObjKind::kThread, ObjKind::kMutex,
                    ObjKind::kSema, ObjKind::kCond, ObjKind::kRwlock,
                    ObjKind::kMark, ObjKind::kIo}) {
    if (obj_kind_name(k) == name) {
      out = k;
      return true;
    }
  }
  return false;
}

bool op_may_block(Op op) { return info(op).may_block; }
ObjKind op_obj_kind(Op op) { return info(op).kind; }
bool op_is_try(Op op) { return info(op).is_try; }

}  // namespace vppb::trace
