// Internal: shared validating record decoder for the binary ("VPPB")
// and chunked ("VPPC") formats.  Both encode a record the same way —
// delta-ns timestamp, then tid/phase/op/kind/objid/arg/arg2/loc as
// varints — and both must enforce the same structural invariants while
// decoding so a salvaged prefix is consistent by construction:
// monotonic time, known ops and object kinds, in-range location
// indices, known threads, and matched call/return pairs per thread.
//
// The scanner keeps its state (previous timestamp, open calls) in a
// struct so the chunked reader can carry it across chunk boundaries.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "trace/salvage.hpp"
#include "trace/trace.hpp"
#include "trace/varint.hpp"
#include "util/strings.hpp"

namespace vppb::trace {

struct RecordScan {
  std::int64_t prev_ns = 0;
  std::map<ThreadId, Op> open_call;

  // Set when read_one() rejects a record; the caller turns them into a
  // thrown Error (strict) or a TraceIssue cut point (salvage).
  IssueKind why = IssueKind::kBadField;
  std::string message;

  /// Decodes and validates one record, appending it to trace.records.
  /// Returns false — with why/message set — on truncation or the first
  /// structural violation; the reader position may then be mid-record.
  bool read_one(wire::TryReader& in, Trace& trace) {
    Record r;
    std::uint64_t delta, phase, op, kind, loc, objid;
    std::int64_t tid;
    if (!in.u64(delta) || !in.i64(tid) || !in.u64(phase) || !in.u64(op) ||
        !in.u64(kind) || !in.u64(objid) || !in.i64(r.arg) || !in.i64(r.arg2) ||
        !in.u64(loc)) {
      return fail(IssueKind::kTruncated, "record truncated");
    }
    // Unsigned arithmetic: a hostile delta must wrap, not overflow into
    // UB.  The monotonic-time check below rejects the wrapped value.
    prev_ns = static_cast<std::int64_t>(static_cast<std::uint64_t>(prev_ns) +
                                        delta);
    r.at = SimTime::nanos(prev_ns);
    r.tid = static_cast<ThreadId>(tid);
    r.phase = phase != 0 ? Phase::kReturn : Phase::kCall;
    if (op > static_cast<std::uint64_t>(Op::kIoWait))
      return fail(IssueKind::kUnknownEvent,
                  strprintf("unknown op %llu",
                            static_cast<unsigned long long>(op)));
    r.op = static_cast<Op>(op);
    if (kind > static_cast<std::uint64_t>(ObjKind::kIo))
      return fail(IssueKind::kUnknownEvent,
                  strprintf("unknown object kind %llu",
                            static_cast<unsigned long long>(kind)));
    r.obj.kind = static_cast<ObjKind>(kind);
    r.obj.id = static_cast<std::uint32_t>(objid);
    // loc 0 (the reserved "unknown" slot) is legal even when no
    // location table was written — matching Trace::validate().
    if (loc != 0 && loc >= trace.locations.size())
      return fail(IssueKind::kBadReference,
                  strprintf("location index %llu out of range",
                            static_cast<unsigned long long>(loc)));
    r.loc = static_cast<std::uint32_t>(loc);
    return admit(r, trace);
  }

  /// Validates an already-decoded record against the trace built so far
  /// and appends it.  Shared with the text reader, whose records arrive
  /// parsed rather than decoded.  Assumes op/obj.kind are in range.
  bool admit(const Record& r, Trace& trace) {
    if (r.loc != 0 && r.loc >= trace.locations.size())
      return fail(IssueKind::kBadReference,
                  strprintf("location index %u out of range", r.loc));
    if (trace.find_thread(r.tid) == nullptr)
      return fail(IssueKind::kBadReference,
                  strprintf("record from unknown thread T%d",
                            static_cast<int>(r.tid)));
    const bool single = r.op == Op::kThrExit || r.op == Op::kStartCollect ||
                        r.op == Op::kEndCollect || r.op == Op::kUserMark;
    auto it = open_call.find(r.tid);
    if (r.phase == Phase::kCall) {
      if (it != open_call.end())
        return fail(IssueKind::kUnmatchedCall,
                    strprintf("T%d opens a second call",
                              static_cast<int>(r.tid)));
      if (!single) open_call.emplace(r.tid, r.op);
    } else {
      if (it == open_call.end() || it->second != r.op)
        return fail(IssueKind::kUnmatchedCall,
                    strprintf("unmatched return of %s by T%d",
                              std::string(op_name(r.op)).c_str(),
                              static_cast<int>(r.tid)));
      open_call.erase(it);
    }
    if (r.at.ns() < 0 ||
        (!trace.records.empty() && r.at < trace.records.back().at))
      return fail(IssueKind::kTimeRegression, "timestamp goes backwards");
    trace.records.push_back(r);
    return true;
  }

 private:
  bool fail(IssueKind k, std::string msg) {
    why = k;
    message = std::move(msg);
    return false;
  }
};

}  // namespace vppb::trace
