#include "trace/chunked.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "trace/binary.hpp"
#include "trace/record_reader.hpp"
#include "trace/varint.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace vppb::trace {
namespace {

constexpr char kFileMagic[4] = {'V', 'P', 'P', 'C'};
constexpr char kChunkMagic[4] = {'C', 'H', 'N', 'K'};
constexpr std::uint8_t kVersion = 1;
constexpr std::size_t kChunkHeaderSize = 20;

// Payload item tags.
enum : std::uint64_t {
  kTagString = 1,
  kTagThread = 2,
  kTagLocation = 3,
  kTagRecord = 4,
};

using wire::put_i64;
using wire::put_str;
using wire::put_u64;

void put_string_item(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u64(out, kTagString);
  put_str(out, s);
}

void put_thread_item(std::vector<std::uint8_t>& out, const ThreadMeta& t) {
  put_u64(out, kTagThread);
  put_i64(out, t.tid);
  put_u64(out, t.name);
  put_u64(out, t.start_func);
  put_u64(out, t.bound ? 1 : 0);
  put_i64(out, t.initial_priority);
}

void put_location_item(std::vector<std::uint8_t>& out, const SourceLoc& loc) {
  put_u64(out, kTagLocation);
  put_u64(out, loc.file);
  put_u64(out, loc.func);
  put_u64(out, loc.line);
}

void put_record_item(std::vector<std::uint8_t>& out, const Record& r,
                     std::int64_t& prev_ns) {
  put_u64(out, kTagRecord);
  put_u64(out, static_cast<std::uint64_t>(r.at.ns() - prev_ns));
  prev_ns = r.at.ns();
  put_i64(out, r.tid);
  put_u64(out, r.phase == Phase::kReturn ? 1 : 0);
  put_u64(out, static_cast<std::uint64_t>(r.op));
  put_u64(out, static_cast<std::uint64_t>(r.obj.kind));
  put_u64(out, r.obj.id);
  put_i64(out, r.arg);
  put_i64(out, r.arg2);
  put_u64(out, r.loc);
}

inline void store_le32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

inline std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

/// EINTR-retrying full write.  Async-signal-safe (only ::write).
bool write_all(int fd, const void* data, std::size_t n) noexcept {
  const std::uint8_t* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

void build_chunk_header(std::uint8_t (&hdr)[kChunkHeaderSize],
                        const std::uint8_t* payload, std::size_t n,
                        std::uint32_t nrec, std::uint32_t running_in,
                        std::uint32_t* running_out) noexcept {
  std::memcpy(hdr, kChunkMagic, 4);
  store_le32(hdr + 4, static_cast<std::uint32_t>(n));
  store_le32(hdr + 8, nrec);
  store_le32(hdr + 12, util::crc32(payload, n));
  const std::uint32_t running = util::crc32(payload, n, running_in);
  store_le32(hdr + 16, running);
  if (running_out != nullptr) *running_out = running;
}

}  // namespace

ChunkedWriter::ChunkedWriter(std::string path, ChunkedWriterOptions opt)
    : opt_(opt),
      final_path_(std::move(path)),
      partial_path_(final_path_ + ".partial") {
  fd_ = ::open(partial_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0)
    throw Error("cannot create live trace log " + partial_path_ + ": " +
                std::strerror(errno));
  std::uint8_t header[5];
  std::memcpy(header, kFileMagic, 4);
  header[4] = kVersion;
  if (!write_all(fd_, header, sizeof header)) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw Error("cannot write live trace log " + partial_path_ + ": " +
                std::strerror(err));
  }
  cap_ = std::max<std::size_t>(opt_.chunk_bytes * 2, 64 * 1024);
  buf_.store(new std::uint8_t[cap_], std::memory_order_release);
  scratch_.reserve(256);
}

ChunkedWriter::~ChunkedWriter() {
  if (fd_ >= 0) ::close(fd_);
  // The buffer is only reclaimed here, never on growth, so a signal
  // handler caught mid-append cannot read freed memory.
  delete[] buf_.load();
}

void ChunkedWriter::append_item(std::size_t nrecords_in_item) {
  const std::size_t committed = committed_.load(std::memory_order_relaxed);
  const std::size_t need = committed + scratch_.size();
  if (need > cap_) {
    // Seal first: that empties the pending buffer on the normal path.
    seal();
    if (scratch_.size() > cap_) {
      // A single oversized item (a pathological string).  Grow by swap
      // and leak the old block — see the header comment on buf_.
      const std::size_t newcap = std::max(cap_ * 2, scratch_.size() + 4096);
      std::uint8_t* newbuf = new std::uint8_t[newcap];
      buf_.store(newbuf, std::memory_order_release);
      cap_ = newcap;
    }
  }
  std::uint8_t* buf = buf_.load(std::memory_order_relaxed);
  const std::size_t at = committed_.load(std::memory_order_relaxed);
  std::memcpy(buf + at, scratch_.data(), scratch_.size());
  committed_.store(at + scratch_.size(), std::memory_order_release);
  if (nrecords_in_item > 0)
    pending_records_.fetch_add(static_cast<std::uint32_t>(nrecords_in_item),
                               std::memory_order_release);
  scratch_.clear();
}

void ChunkedWriter::add_string(const std::string& s) {
  put_string_item(scratch_, s);
  append_item(0);
  ++next_string_;
}

void ChunkedWriter::upsert_thread(const ThreadMeta& t) {
  put_thread_item(scratch_, t);
  append_item(0);
}

void ChunkedWriter::add_location(const SourceLoc& loc) {
  put_location_item(scratch_, loc);
  append_item(0);
  ++next_location_;
}

void ChunkedWriter::add_record(const Record& r) {
  put_record_item(scratch_, r, prev_ns_);
  append_item(1);
  ++records_written_;
  if (pending_records_.load(std::memory_order_relaxed) >= opt_.chunk_records ||
      committed_.load(std::memory_order_relaxed) >= opt_.chunk_bytes)
    seal();
}

void ChunkedWriter::sync_tables(const Trace& trace) {
  while (next_string_ < trace.strings.size())
    add_string(trace.strings.get(next_string_));
  while (next_location_ < trace.locations.size())
    add_location(trace.locations[next_location_]);
  for (std::size_t i = 0; i < trace.threads.size(); ++i) {
    const ThreadMeta& t = trace.threads[i];
    if (i < synced_threads_.size()) {
      const ThreadMeta& s = synced_threads_[i];
      if (s.tid == t.tid && s.name == t.name && s.start_func == t.start_func &&
          s.bound == t.bound && s.initial_priority == t.initial_priority)
        continue;
      synced_threads_[i] = t;
    } else {
      synced_threads_.push_back(t);
    }
    upsert_thread(t);
  }
}

void ChunkedWriter::write_chunk(const std::uint8_t* payload, std::size_t n,
                                std::uint32_t nrec) noexcept {
  std::uint8_t hdr[kChunkHeaderSize];
  std::uint32_t new_running = 0;
  build_chunk_header(hdr, payload, n, nrec,
                     running_crc_.load(std::memory_order_acquire),
                     &new_running);
  if (!write_all(fd_, hdr, sizeof hdr) || !write_all(fd_, payload, n)) return;
  running_crc_.store(new_running, std::memory_order_release);
  sealed_chunks_.fetch_add(1, std::memory_order_release);
}

void ChunkedWriter::seal() {
  const std::size_t n = committed_.load(std::memory_order_acquire);
  const std::uint32_t nrec = pending_records_.load(std::memory_order_acquire);
  if (n == 0 || fd_ < 0) return;
  sealing_.store(true, std::memory_order_release);
  write_chunk(buf_.load(std::memory_order_acquire), n, nrec);
  committed_.store(0, std::memory_order_release);
  pending_records_.store(0, std::memory_order_release);
  sealing_.store(false, std::memory_order_release);
}

std::string ChunkedWriter::finalize() {
  if (finalized_.load(std::memory_order_acquire)) return final_path_;
  seal();
  if (fd_ >= 0) {
    ::fsync(fd_);
    if (::rename(partial_path_.c_str(), final_path_.c_str()) != 0)
      throw Error("cannot publish trace log " + final_path_ + ": " +
                  std::strerror(errno));
    ::close(fd_);
    fd_ = -1;
  }
  finalized_.store(true, std::memory_order_release);
  return final_path_;
}

void ChunkedWriter::crash_seal() noexcept {
  // Runs on a signal stack: only async-signal-safe calls past this
  // point (crc32 is a pure table lookup; c_str() on a const string
  // allocates nothing).
  if (finalized_.load(std::memory_order_acquire) || fd_ < 0) return;
  std::size_t pending = 0;
  if (!sealing_.load(std::memory_order_acquire)) {
    pending = committed_.load(std::memory_order_acquire);
    if (pending > 0)
      write_chunk(buf_.load(std::memory_order_acquire), pending,
                  pending_records_.load(std::memory_order_acquire));
  }
  // Publish only if something real was sealed; otherwise leave the
  // ".partial" stub so a previous good log at final_path_ survives.
  if (sealed_chunks_.load(std::memory_order_acquire) > 0) {
    ::fsync(fd_);
    ::rename(partial_path_.c_str(), final_path_.c_str());
    finalized_.store(true, std::memory_order_release);
  }
}

std::vector<std::uint8_t> to_chunked(const Trace& trace,
                                     std::size_t chunk_records) {
  VPPB_CHECK_MSG(chunk_records > 0, "chunk_records must be positive");
  std::vector<std::uint8_t> out;
  out.insert(out.end(), kFileMagic, kFileMagic + 4);
  out.push_back(kVersion);

  std::uint32_t running = 0;
  std::vector<std::uint8_t> payload;
  std::uint32_t nrec = 0;
  auto flush = [&] {
    if (payload.empty()) return;
    std::uint8_t hdr[kChunkHeaderSize];
    build_chunk_header(hdr, payload.data(), payload.size(), nrec, running,
                       &running);
    out.insert(out.end(), hdr, hdr + sizeof hdr);
    out.insert(out.end(), payload.begin(), payload.end());
    payload.clear();
    nrec = 0;
  };

  for (std::uint32_t id = 1; id < trace.strings.size(); ++id)
    put_string_item(payload, trace.strings.get(id));
  for (const ThreadMeta& t : trace.threads) put_thread_item(payload, t);
  for (const SourceLoc& loc : trace.locations)
    put_location_item(payload, loc);

  std::int64_t prev_ns = 0;
  for (const Record& r : trace.records) {
    put_record_item(payload, r, prev_ns);
    if (++nrec >= chunk_records) flush();
  }
  flush();
  return out;
}

Trace from_chunked(const std::uint8_t* data, std::size_t size,
                   const LoadOptions& opt, LoadReport* report) {
  VPPB_CHECK_MSG(size >= 5 && std::memcmp(data, kFileMagic, 4) == 0,
                 "not a VPPC chunked trace (bad magic)");
  VPPB_CHECK_MSG(data[4] == kVersion,
                 "unsupported chunked trace version " << int(data[4]));

  Trace trace;
  trace.locations.clear();  // the stream carries the reserved entry 0
  RecordScan scan;
  std::uint32_t running = 0;
  std::size_t pos = 5;
  bool stopped = false;
  std::uint32_t decoded_records = 0;  // in the chunk being decoded

  auto fail = [&](IssueKind kind, std::size_t offset,
                  const std::string& msg) {
    if (!opt.salvage)
      throw Error(strprintf("chunked trace: %s (byte %zu)", msg.c_str(),
                            offset));
    if (report != nullptr)
      report->issues.push_back(TraceIssue{kind, offset, msg});
    stopped = true;
  };

  while (!stopped && pos < size) {
    if (size - pos < kChunkHeaderSize) {
      fail(IssueKind::kTruncated, pos,
           strprintf("chunk header truncated (%zu trailing bytes)",
                     size - pos));
      break;
    }
    if (std::memcmp(data + pos, kChunkMagic, 4) != 0) {
      fail(IssueKind::kBadMagic, pos, "bad chunk magic");
      break;
    }
    const std::size_t payload_len = load_le32(data + pos + 4);
    const std::uint32_t record_count = load_le32(data + pos + 8);
    const std::uint32_t payload_crc = load_le32(data + pos + 12);
    const std::uint32_t running_crc = load_le32(data + pos + 16);
    if (payload_len > size - pos - kChunkHeaderSize) {
      fail(IssueKind::kTruncated, pos,
           strprintf("chunk payload truncated (%zu of %zu bytes present)",
                     size - pos - kChunkHeaderSize, payload_len));
      break;
    }
    const std::uint8_t* payload = data + pos + kChunkHeaderSize;
    if (util::crc32(payload, payload_len) != payload_crc) {
      fail(IssueKind::kBadChecksum, pos, "chunk payload CRC mismatch");
      break;
    }
    const std::uint32_t new_running =
        util::crc32(payload, payload_len, running);
    if (new_running != running_crc) {
      fail(IssueKind::kBadChecksum, pos,
           "chunk breaks the file's running digest");
      break;
    }
    running = new_running;

    wire::TryReader in(payload, payload_len);
    decoded_records = 0;
    while (!stopped && !in.at_end()) {
      const std::size_t item_off = pos + kChunkHeaderSize + in.pos();
      std::uint64_t tag;
      if (!in.u64(tag)) {
        fail(IssueKind::kBadField, item_off, "item tag truncated");
        break;
      }
      switch (tag) {
        case kTagString: {
          std::string s;
          if (!in.str(s)) {
            fail(IssueKind::kBadField, item_off, "string item truncated");
            break;
          }
          const std::uint32_t expect =
              static_cast<std::uint32_t>(trace.strings.size());
          if (trace.strings.intern(s) != expect)
            fail(IssueKind::kBadReference, item_off,
                 "string table not in intern order");
          break;
        }
        case kTagThread: {
          std::int64_t tid, prio;
          std::uint64_t name, func, bound;
          if (!in.i64(tid) || !in.u64(name) || !in.u64(func) ||
              !in.u64(bound) || !in.i64(prio)) {
            fail(IssueKind::kBadField, item_off, "thread item truncated");
            break;
          }
          if (name >= trace.strings.size() || func >= trace.strings.size()) {
            fail(IssueKind::kBadReference, item_off,
                 "thread item has bad string ids");
            break;
          }
          ThreadMeta& t = trace.upsert_thread(static_cast<ThreadId>(tid));
          t.name = static_cast<std::uint32_t>(name);
          t.start_func = static_cast<std::uint32_t>(func);
          t.bound = bound != 0;
          t.initial_priority = static_cast<int>(prio);
          break;
        }
        case kTagLocation: {
          std::uint64_t file, func, line;
          if (!in.u64(file) || !in.u64(func) || !in.u64(line)) {
            fail(IssueKind::kBadField, item_off, "location item truncated");
            break;
          }
          if (file >= trace.strings.size() || func >= trace.strings.size()) {
            fail(IssueKind::kBadReference, item_off,
                 "location item has bad string ids");
            break;
          }
          SourceLoc loc;
          loc.file = static_cast<std::uint32_t>(file);
          loc.func = static_cast<std::uint32_t>(func);
          loc.line = static_cast<std::uint32_t>(line);
          trace.locations.push_back(loc);
          break;
        }
        case kTagRecord: {
          if (!scan.read_one(in, trace)) {
            fail(scan.why, item_off,
                 scan.message + strprintf(" — cut at record %zu",
                                          trace.records.size()));
            break;
          }
          ++decoded_records;
          break;
        }
        default:
          fail(IssueKind::kUnknownEvent, item_off,
               strprintf("unknown item tag %llu",
                         static_cast<unsigned long long>(tag)));
          break;
      }
    }
    if (stopped) break;
    if (decoded_records != record_count) {
      // The payload passed its CRC, so trust the data over the
      // (uncovered) header field: report, keep, continue.
      const std::string msg =
          strprintf("chunk header claims %u records but %u decoded",
                    record_count, decoded_records);
      if (!opt.salvage)
        throw Error(strprintf("chunked trace: %s (byte %zu)", msg.c_str(),
                              pos));
      if (report != nullptr)
        report->issues.push_back(
            TraceIssue{IssueKind::kBadField, pos, msg});
    }
    if (report != nullptr) report->chunks_loaded++;
    pos += kChunkHeaderSize + payload_len;
  }

  if (stopped && report != nullptr) {
    // Best-effort census of what the cut discarded: walk the remaining
    // chunk headers without trusting their payloads.  The first entry
    // may be the chunk the cut happened inside, so records decoded
    // from it before the cut are not double-counted.
    std::size_t p = pos;
    bool first = true;
    while (size - p >= 12 && std::memcmp(data + p, kChunkMagic, 4) == 0) {
      const std::size_t len = load_le32(data + p + 4);
      std::uint32_t rc = load_le32(data + p + 8);
      if (first && rc >= decoded_records) rc -= decoded_records;
      report->chunks_dropped++;
      report->records_dropped += rc;
      first = false;
      // Torn tail: the header (let alone the payload) is not all here.
      // size - p - kChunkHeaderSize would underflow below, so check
      // the header first.
      if (size - p < kChunkHeaderSize || len > size - p - kChunkHeaderSize)
        break;
      p += kChunkHeaderSize + len;
    }
  }

  if (opt.salvage) trim_open_calls(trace, report);
  if (report != nullptr) {
    report->records_recovered = trace.records.size();
    report->salvaged |= !report->issues.empty();
  }
  trace.validate();
  return trace;
}

Trace load_chunked_file(const std::string& path, const LoadOptions& opt,
                        LoadReport* report) {
  const std::vector<std::uint8_t> bytes = read_file_bytes(path);
  return from_chunked(bytes.data(), bytes.size(), opt, report);
}

}  // namespace vppb::trace
