// Salvage vocabulary for the trace loaders.
//
// The paper's whole pipeline hangs off one artifact — the log of a
// single monitored run — so a recording that survived a crash, a full
// disk, or a stray bit flip is worth recovering, not rejecting.  Every
// loader (text, binary, chunked) accepts LoadOptions and, in salvage
// mode, degrades from abort-on-first-error to: validate everything,
// accumulate structured TraceIssues, and truncate to the longest valid
// prefix of events rather than failing.
//
// "Valid prefix" means replayable: monotonic timestamps, known event
// types and threads, matched call/return pairs, and no call left open
// at the cut (the Simulator refuses dangling calls, so the salvaged
// trace is trimmed back to the last point where every thread was
// between library calls).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vppb::trace {

enum class IssueKind : std::uint8_t {
  kTruncated,       ///< data ends mid-field / mid-chunk
  kBadMagic,        ///< file/chunk magic mismatch
  kBadVersion,      ///< format version from the future
  kBadChecksum,     ///< chunk CRC mismatch (bit rot, torn write)
  kBadField,        ///< malformed varint / string / count
  kBadReference,    ///< string, location or thread id out of range
  kUnknownEvent,    ///< op or object kind outside the known taxonomy
  kTimeRegression,  ///< timestamp going backwards
  kUnmatchedCall,   ///< return without a call, or a second open call
  kTrailingData,    ///< bytes after the last decodable event
  kOpenCallTrimmed, ///< records dropped so no call is left dangling
};

const char* issue_kind_name(IssueKind kind);

/// One structural problem found while loading a trace, anchored to a
/// byte offset (binary/chunked), a line number (text), or a chunk index.
struct TraceIssue {
  IssueKind kind = IssueKind::kBadField;
  std::size_t offset = 0;  ///< byte offset or line number
  std::string message;
};

struct LoadOptions {
  /// Recover the longest valid prefix instead of throwing on the first
  /// structural error.  Unreadable files and unrecognized formats still
  /// throw: there is nothing to salvage without a parsable header.
  bool salvage = false;
};

/// What a (salvaging) load actually did.  Populated in strict mode too,
/// where it simply reports full recovery.
struct LoadReport {
  std::vector<TraceIssue> issues;
  std::size_t records_recovered = 0;
  std::size_t records_dropped = 0;
  std::size_t chunks_loaded = 0;   ///< chunked format only
  std::size_t chunks_dropped = 0;  ///< chunked format only
  bool salvaged = false;  ///< true when anything was dropped or repaired

  /// One-line human summary ("recovered 1204 events, dropped 17; 2
  /// issues: ...").
  std::string summary() const;
};

class Trace;

/// Trims trace.records back to the last point where no library call was
/// open on any thread.  The Simulator refuses a log that ends inside a
/// call (it cannot know the call's duration), so every salvaged prefix
/// is cut here before being handed on.  Returns the number of records
/// dropped; records the cut as a kOpenCallTrimmed issue in *report.
std::size_t trim_open_calls(Trace& trace, LoadReport* report);

}  // namespace vppb::trace
