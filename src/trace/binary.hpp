// Compact binary serialization of traces.
//
// §4 of the paper worries about log size ("the size of the log files
// could become a problem for very long executions of fine grained
// programs"; they experimented up to 15 MB).  The text format
// (trace/io.hpp) is the readable interchange; this codec is the
// size-conscious one: varint-encoded fields and delta-encoded
// timestamps typically shrink logs ~4-6x.
//
// Layout: magic "VPPB" + version byte, then varint-prefixed sections
// (strings, threads, locations, records).  All integers are LEB128
// varints; signed values use zigzag.  Timestamps are per-record deltas
// against the previous record.
//
// For logs written incrementally by a live (possibly crashing) target,
// see the chunked "VPPC" format in trace/chunked.hpp.  Both formats
// share the salvage vocabulary in trace/salvage.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/salvage.hpp"
#include "trace/trace.hpp"

namespace vppb::trace {

/// Serialize to the binary format.
std::vector<std::uint8_t> to_binary(const Trace& trace);

/// Parse the binary format; throws vppb::Error on malformed input.
/// Runs Trace::validate() before returning.
Trace from_binary(const std::uint8_t* data, std::size_t size);
Trace from_binary(const std::vector<std::uint8_t>& bytes);

/// Validating parse.  In salvage mode, structural errors in the record
/// section truncate to the longest valid prefix (reported via *report)
/// instead of throwing; a corrupt header still throws — there is
/// nothing to recover without the string/thread/location tables.
Trace from_binary(const std::uint8_t* data, std::size_t size,
                  const LoadOptions& opt, LoadReport* report);

/// Parse any known trace format by sniffing the magic: chunked
/// ("VPPC"), monolithic binary ("VPPB"), else text.
Trace from_any(const std::uint8_t* data, std::size_t size,
               const LoadOptions& opt, LoadReport* report);

/// File helpers.  load_any_file sniffs the magic and accepts the
/// chunked, binary, or text format.  save_binary_file writes via a
/// temp file + atomic rename so a crash mid-save never clobbers a
/// previous good log.
void save_binary_file(const Trace& trace, const std::string& path);
Trace load_binary_file(const std::string& path);
Trace load_any_file(const std::string& path);
Trace load_any_file(const std::string& path, const LoadOptions& opt,
                    LoadReport* report);

/// Slurp a whole file; throws vppb::Error when it cannot be opened.
std::vector<std::uint8_t> read_file_bytes(const std::string& path);

}  // namespace vppb::trace
