#include "trace/salvage.hpp"

#include <map>

#include "trace/trace.hpp"
#include "util/strings.hpp"

namespace vppb::trace {

const char* issue_kind_name(IssueKind kind) {
  switch (kind) {
    case IssueKind::kTruncated: return "truncated";
    case IssueKind::kBadMagic: return "bad-magic";
    case IssueKind::kBadVersion: return "bad-version";
    case IssueKind::kBadChecksum: return "bad-checksum";
    case IssueKind::kBadField: return "bad-field";
    case IssueKind::kBadReference: return "bad-reference";
    case IssueKind::kUnknownEvent: return "unknown-event";
    case IssueKind::kTimeRegression: return "time-regression";
    case IssueKind::kUnmatchedCall: return "unmatched-call";
    case IssueKind::kTrailingData: return "trailing-data";
    case IssueKind::kOpenCallTrimmed: return "open-call-trimmed";
  }
  return "?";
}

std::string LoadReport::summary() const {
  std::string out = strprintf(
      "recovered %zu events, dropped %zu", records_recovered, records_dropped);
  if (chunks_loaded + chunks_dropped > 0)
    out += strprintf(" (%zu of %zu chunks)", chunks_loaded,
                     chunks_loaded + chunks_dropped);
  if (issues.empty()) {
    out += "; no issues";
    return out;
  }
  out += strprintf("; %zu issue%s:", issues.size(),
                   issues.size() == 1 ? "" : "s");
  for (const TraceIssue& issue : issues) {
    out += strprintf("\n  [%s @%zu] %s", issue_kind_name(issue.kind),
                     issue.offset, issue.message.c_str());
  }
  return out;
}

std::size_t trim_open_calls(Trace& trace, LoadReport* report) {
  // Walk forward tracking open calls per thread; remember the longest
  // prefix after which no thread is inside a call — that is the cut.
  std::map<ThreadId, Op> open;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < trace.records.size(); ++i) {
    const Record& r = trace.records[i];
    const bool single = r.op == Op::kThrExit || r.op == Op::kStartCollect ||
                        r.op == Op::kEndCollect || r.op == Op::kUserMark;
    if (!single) {
      if (r.phase == Phase::kCall)
        open.emplace(r.tid, r.op);
      else
        open.erase(r.tid);
    }
    if (open.empty()) keep = i + 1;
  }
  const std::size_t dropped = trace.records.size() - keep;
  if (dropped == 0) return 0;
  trace.records.resize(keep);
  if (report != nullptr) {
    report->records_dropped += dropped;
    report->salvaged = true;
    report->issues.push_back(TraceIssue{
        IssueKind::kOpenCallTrimmed, keep,
        strprintf("trimmed %zu trailing record%s left inside an open call",
                  dropped, dropped == 1 ? "" : "s")});
  }
  return dropped;
}

}  // namespace vppb::trace
