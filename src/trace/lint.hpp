// Semantic trace lint: the checks behind `vppb check`.
//
// Trace::validate() guarantees structural sanity (paired call/return,
// in-range indices); this pass asks the next question — does the
// recorded synchronization story make sense?  A log whose threads
// unlock mutexes they never acquired, join threads that do not exist,
// or drive a semaphore count negative will still replay (the Simulator
// is defensive), but its predictions describe a program that cannot
// have run.  The lint surfaces these before any simulation time is
// spent, with the record index and source location of each finding so
// the recording bug can be fixed at its origin.
//
// Findings are graded: an *error* means the trace is semantically
// impossible (replay output is untrustworthy); a *warning* means the
// trace is suspicious but replayable (e.g. a mutex unlocked by a thread
// that is not its recorded owner — legal for Solaris mutexes, almost
// always a bug).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace vppb::trace {

enum class LintSeverity : std::uint8_t { kWarning, kError };

struct LintIssue {
  LintSeverity severity = LintSeverity::kWarning;
  std::size_t record_index = 0;  ///< offending record in Trace::records
  std::string message;
  std::string location;  ///< "file:line" when the record carries one

  /// One finding, one line: "error: <message> (record N at file:line)".
  std::string to_string() const;
};

struct LintReport {
  std::vector<LintIssue> issues;

  std::size_t errors = 0;
  std::size_t warnings = 0;
  bool clean() const { return issues.empty(); }

  /// All findings, one per line, plus a summary line.  "clean" when
  /// there is nothing to report.
  std::string to_string() const;
};

/// Runs every semantic check over the trace:
///   - non-monotonic timestamps (error)
///   - mutex unlocked while not held (error) / by a non-owner (warning)
///   - join of an unknown thread (error), of an already-joined thread
///     (warning), of the joining thread itself (error)
///   - semaphore count driven negative (error)
///   - cond_wait entered without holding the named mutex (warning)
LintReport lint(const Trace& trace);

}  // namespace vppb::trace
