// Text serialization of traces — the "log file" the Recorder writes and
// the Simulator/Visualizer read.  A line-oriented format so logs can be
// inspected, diffed, and hand-written in tests:
//
//   # vppb-trace v1
//   meta clock virtual
//   thread 1 main main 0 0
//   loc 0 - 0 -
//   loc 1 quickstart.cpp 12 main
//   rec 100000 1 C thr_create thread 4 0 0 1
//   rec 100250 1 R thr_create thread 4 0 0 1
//   ...
#pragma once

#include <iosfwd>
#include <string>

#include "trace/salvage.hpp"
#include "trace/trace.hpp"

namespace vppb::trace {

/// Serialize to the text format.  Deterministic byte-for-byte output.
/// save_file writes via a temp file + atomic rename.
void write_text(const Trace& trace, std::ostream& os);
std::string to_text(const Trace& trace);
void save_file(const Trace& trace, const std::string& path);

/// Parse the text format.  Throws vppb::Error with a line number on any
/// malformed input.  Runs Trace::validate() before returning.
Trace read_text(std::istream& is);
Trace from_text(const std::string& text);
Trace load_file(const std::string& path);

/// Validating parse: in salvage mode a malformed line cuts the trace to
/// the valid prefix (recorded in *report) instead of throwing.
Trace read_text(std::istream& is, const LoadOptions& opt, LoadReport* report);
Trace from_text(const std::string& text, const LoadOptions& opt,
                LoadReport* report);
Trace load_file(const std::string& path, const LoadOptions& opt,
                LoadReport* report);

}  // namespace vppb::trace
