#include "trace/io.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace vppb::trace {
namespace {

// Field encoding for possibly-empty strings: "-" stands for empty, and
// spaces/percent signs are percent-escaped so compiler-pretty function
// names ("void f(int)") survive the space-separated format.
std::string enc(const std::string& s) {
  if (s.empty()) return "-";
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == ' ') {
      out += "%20";
    } else if (c == '%') {
      out += "%25";
    } else {
      out += c;
    }
  }
  return out;
}

std::string dec(std::string_view s) {
  if (s == "-") return {};
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size() && s[i + 1] == '2') {
      if (s[i + 2] == '0') {
        out += ' ';
        i += 2;
        continue;
      }
      if (s[i + 2] == '5') {
        out += '%';
        i += 2;
        continue;
      }
    }
    out += s[i];
  }
  return out;
}

[[noreturn]] void bad_line(std::size_t lineno, std::string_view why) {
  throw Error(strprintf("trace line %zu: %.*s", lineno,
                        static_cast<int>(why.size()), why.data()));
}

}  // namespace

void write_text(const Trace& trace, std::ostream& os) {
  os << "# vppb-trace v1\n";
  for (const auto& t : trace.threads) {
    os << "thread " << t.tid << ' ' << enc(trace.strings.get(t.name)) << ' '
       << enc(trace.strings.get(t.start_func)) << ' ' << (t.bound ? 1 : 0)
       << ' ' << t.initial_priority << '\n';
  }
  for (std::size_t i = 0; i < trace.locations.size(); ++i) {
    const SourceLoc& loc = trace.locations[i];
    os << "loc " << i << ' ' << enc(trace.strings.get(loc.file)) << ' '
       << loc.line << ' ' << enc(trace.strings.get(loc.func)) << '\n';
  }
  for (const Record& r : trace.records) {
    os << "rec " << r.at.ns() << ' ' << r.tid << ' '
       << (r.phase == Phase::kCall ? 'C' : 'R') << ' ' << op_name(r.op) << ' '
       << obj_kind_name(r.obj.kind) << ' ' << r.obj.id << ' ' << r.arg << ' '
       << r.arg2 << ' ' << r.loc << '\n';
  }
}

std::string to_text(const Trace& trace) {
  std::ostringstream os;
  write_text(trace, os);
  return os.str();
}

void save_file(const Trace& trace, const std::string& path) {
  std::ofstream f(path);
  if (!f)
    throw Error("cannot open trace file for writing: " + path + ": " +
                std::strerror(errno));
  write_text(trace, f);
  if (!f) throw Error("failed writing trace file: " + path);
}

Trace read_text(std::istream& is) {
  Trace trace;
  trace.locations.clear();  // the file supplies all entries, including 0
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const std::string_view sv = trim(line);
    if (sv.empty() || sv.front() == '#') continue;
    const auto f = split(sv, ' ');
    if (f[0] == "thread") {
      if (f.size() != 6) bad_line(lineno, "thread needs 5 fields");
      std::int64_t tid, bound, prio;
      if (!parse_i64(f[1], tid) || !parse_i64(f[4], bound) ||
          !parse_i64(f[5], prio))
        bad_line(lineno, "bad thread fields");
      ThreadMeta& t = trace.upsert_thread(static_cast<ThreadId>(tid));
      t.name = trace.strings.intern(dec(f[2]));
      t.start_func = trace.strings.intern(dec(f[3]));
      t.bound = bound != 0;
      t.initial_priority = static_cast<int>(prio);
    } else if (f[0] == "loc") {
      if (f.size() != 5) bad_line(lineno, "loc needs 4 fields");
      std::int64_t idx, ln;
      if (!parse_i64(f[1], idx) || !parse_i64(f[3], ln))
        bad_line(lineno, "bad loc fields");
      if (static_cast<std::size_t>(idx) != trace.locations.size())
        bad_line(lineno, "loc indices must be dense and in order");
      trace.locations.push_back(SourceLoc{trace.strings.intern(dec(f[2])),
                                          trace.strings.intern(dec(f[4])),
                                          static_cast<std::uint32_t>(ln)});
    } else if (f[0] == "rec") {
      if (f.size() != 10) bad_line(lineno, "rec needs 9 fields");
      Record r;
      std::int64_t at, tid, objid, arg, arg2, loc;
      if (!parse_i64(f[1], at) || !parse_i64(f[2], tid) ||
          !parse_i64(f[6], objid) || !parse_i64(f[7], arg) ||
          !parse_i64(f[8], arg2) || !parse_i64(f[9], loc))
        bad_line(lineno, "bad rec numeric fields");
      if (f[3] == "C") {
        r.phase = Phase::kCall;
      } else if (f[3] == "R") {
        r.phase = Phase::kReturn;
      } else {
        bad_line(lineno, "phase must be C or R");
      }
      if (!op_from_name(f[4], r.op)) bad_line(lineno, "unknown op");
      if (!obj_kind_from_name(f[5], r.obj.kind))
        bad_line(lineno, "unknown object kind");
      r.at = SimTime::nanos(at);
      r.tid = static_cast<ThreadId>(tid);
      r.obj.id = static_cast<std::uint32_t>(objid);
      r.arg = arg;
      r.arg2 = arg2;
      r.loc = static_cast<std::uint32_t>(loc);
      trace.records.push_back(r);
    } else {
      bad_line(lineno, "unknown directive");
    }
  }
  trace.validate();
  return trace;
}

Trace from_text(const std::string& text) {
  std::istringstream is(text);
  return read_text(is);
}

Trace load_file(const std::string& path) {
  std::ifstream f(path);
  if (!f)
    throw Error("cannot open trace file: " + path + ": " +
                std::strerror(errno));
  return read_text(f);
}

}  // namespace vppb::trace
