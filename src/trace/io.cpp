#include "trace/io.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "trace/record_reader.hpp"
#include "util/atomic_file.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace vppb::trace {
namespace {

// Field encoding for possibly-empty strings: "-" stands for empty, and
// spaces/percent signs are percent-escaped so compiler-pretty function
// names ("void f(int)") survive the space-separated format.
std::string enc(const std::string& s) {
  if (s.empty()) return "-";
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == ' ') {
      out += "%20";
    } else if (c == '%') {
      out += "%25";
    } else {
      out += c;
    }
  }
  return out;
}

std::string dec(std::string_view s) {
  if (s == "-") return {};
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size() && s[i + 1] == '2') {
      if (s[i + 2] == '0') {
        out += ' ';
        i += 2;
        continue;
      }
      if (s[i + 2] == '5') {
        out += '%';
        i += 2;
        continue;
      }
    }
    out += s[i];
  }
  return out;
}

/// Signals one malformed line.  The strict reader turns it into a
/// thrown Error; the salvaging reader into a cut point.
struct LineError {
  IssueKind kind = IssueKind::kBadField;
  std::string why;
};

Trace read_text_impl(std::istream& is, const LoadOptions& opt,
                     LoadReport* report) {
  Trace trace;
  trace.locations.clear();  // the file supplies all entries, including 0
  std::string line;
  std::size_t lineno = 0;
  bool stopped = false;

  auto handle = [&](const LineError& e) {
    if (!opt.salvage)
      throw Error(strprintf("trace line %zu: %s", lineno, e.why.c_str()));
    if (report != nullptr)
      report->issues.push_back(TraceIssue{
          e.kind, lineno,
          e.why + strprintf(" — cut at record %zu", trace.records.size())});
    stopped = true;
  };

  // Parses one directive; returns false with *err set on any problem.
  auto parse_line = [&](std::string_view sv, LineError* err) -> bool {
    const auto f = split(sv, ' ');
    if (f[0] == "thread") {
      if (f.size() != 6)
        return *err = {IssueKind::kBadField, "thread needs 5 fields"}, false;
      std::int64_t tid, bound, prio;
      if (!parse_i64(f[1], tid) || !parse_i64(f[4], bound) ||
          !parse_i64(f[5], prio))
        return *err = {IssueKind::kBadField, "bad thread fields"}, false;
      ThreadMeta& t = trace.upsert_thread(static_cast<ThreadId>(tid));
      t.name = trace.strings.intern(dec(f[2]));
      t.start_func = trace.strings.intern(dec(f[3]));
      t.bound = bound != 0;
      t.initial_priority = static_cast<int>(prio);
    } else if (f[0] == "loc") {
      if (f.size() != 5)
        return *err = {IssueKind::kBadField, "loc needs 4 fields"}, false;
      std::int64_t idx, ln;
      if (!parse_i64(f[1], idx) || !parse_i64(f[3], ln))
        return *err = {IssueKind::kBadField, "bad loc fields"}, false;
      if (static_cast<std::size_t>(idx) != trace.locations.size())
        return *err = {IssueKind::kBadReference,
                       "loc indices must be dense and in order"},
               false;
      trace.locations.push_back(SourceLoc{trace.strings.intern(dec(f[2])),
                                          trace.strings.intern(dec(f[4])),
                                          static_cast<std::uint32_t>(ln)});
    } else if (f[0] == "rec") {
      if (f.size() != 10)
        return *err = {IssueKind::kBadField, "rec needs 9 fields"}, false;
      Record r;
      std::int64_t at, tid, objid, arg, arg2, loc;
      if (!parse_i64(f[1], at) || !parse_i64(f[2], tid) ||
          !parse_i64(f[6], objid) || !parse_i64(f[7], arg) ||
          !parse_i64(f[8], arg2) || !parse_i64(f[9], loc))
        return *err = {IssueKind::kBadField, "bad rec numeric fields"}, false;
      if (f[3] == "C") {
        r.phase = Phase::kCall;
      } else if (f[3] == "R") {
        r.phase = Phase::kReturn;
      } else {
        return *err = {IssueKind::kBadField, "phase must be C or R"}, false;
      }
      if (!op_from_name(f[4], r.op))
        return *err = {IssueKind::kUnknownEvent, "unknown op"}, false;
      if (!obj_kind_from_name(f[5], r.obj.kind))
        return *err = {IssueKind::kUnknownEvent, "unknown object kind"}, false;
      r.at = SimTime::nanos(at);
      r.tid = static_cast<ThreadId>(tid);
      r.obj.id = static_cast<std::uint32_t>(objid);
      r.arg = arg;
      r.arg2 = arg2;
      r.loc = static_cast<std::uint32_t>(loc);
      trace.records.push_back(r);
    } else {
      return *err = {IssueKind::kUnknownEvent, "unknown directive"}, false;
    }
    return true;
  };

  while (std::getline(is, line)) {
    ++lineno;
    const std::string_view sv = trim(line);
    if (sv.empty() || sv.front() == '#') continue;
    if (stopped) {
      // Past the cut: census only, so the report can say what was lost.
      if (report != nullptr && sv.substr(0, 4) == "rec ")
        report->records_dropped++;
      continue;
    }
    LineError err;
    if (!parse_line(sv, &err)) handle(err);
  }

  if (opt.salvage) {
    // The text format allows forward references (a `loc` or `thread`
    // line after the `rec` lines that use it), so the structural scan
    // runs after parsing, once the tables are complete.
    std::vector<Record> parsed = std::move(trace.records);
    trace.records.clear();
    RecordScan scan;
    for (std::size_t i = 0; i < parsed.size(); ++i) {
      if (scan.admit(parsed[i], trace)) continue;
      if (report != nullptr) {
        report->issues.push_back(TraceIssue{
            scan.why, i,
            scan.message + strprintf(" — cut at record %zu", i)});
        report->records_dropped += parsed.size() - i;
      }
      break;
    }
    trim_open_calls(trace, report);
  }
  if (report != nullptr) {
    report->records_recovered = trace.records.size();
    report->salvaged |= !report->issues.empty();
  }
  trace.validate();
  return trace;
}

}  // namespace

void write_text(const Trace& trace, std::ostream& os) {
  os << "# vppb-trace v1\n";
  for (const auto& t : trace.threads) {
    os << "thread " << t.tid << ' ' << enc(trace.strings.get(t.name)) << ' '
       << enc(trace.strings.get(t.start_func)) << ' ' << (t.bound ? 1 : 0)
       << ' ' << t.initial_priority << '\n';
  }
  for (std::size_t i = 0; i < trace.locations.size(); ++i) {
    const SourceLoc& loc = trace.locations[i];
    os << "loc " << i << ' ' << enc(trace.strings.get(loc.file)) << ' '
       << loc.line << ' ' << enc(trace.strings.get(loc.func)) << '\n';
  }
  for (const Record& r : trace.records) {
    os << "rec " << r.at.ns() << ' ' << r.tid << ' '
       << (r.phase == Phase::kCall ? 'C' : 'R') << ' ' << op_name(r.op) << ' '
       << obj_kind_name(r.obj.kind) << ' ' << r.obj.id << ' ' << r.arg << ' '
       << r.arg2 << ' ' << r.loc << '\n';
  }
}

std::string to_text(const Trace& trace) {
  std::ostringstream os;
  write_text(trace, os);
  return os.str();
}

void save_file(const Trace& trace, const std::string& path) {
  util::atomic_write_file(path, to_text(trace));
}

Trace read_text(std::istream& is) {
  return read_text_impl(is, LoadOptions{}, nullptr);
}

Trace read_text(std::istream& is, const LoadOptions& opt,
                LoadReport* report) {
  return read_text_impl(is, opt, report);
}

Trace from_text(const std::string& text) {
  std::istringstream is(text);
  return read_text(is);
}

Trace from_text(const std::string& text, const LoadOptions& opt,
                LoadReport* report) {
  std::istringstream is(text);
  return read_text_impl(is, opt, report);
}

Trace load_file(const std::string& path) {
  std::ifstream f(path);
  if (!f)
    throw Error("cannot open trace file: " + path + ": " +
                std::strerror(errno));
  return read_text(f);
}

Trace load_file(const std::string& path, const LoadOptions& opt,
                LoadReport* report) {
  std::ifstream f(path);
  if (!f)
    throw Error("cannot open trace file: " + path + ": " +
                std::strerror(errno));
  return read_text_impl(f, opt, report);
}

}  // namespace vppb::trace
