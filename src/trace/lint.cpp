#include "trace/lint.hpp"

#include <unordered_map>
#include <unordered_set>

#include "util/strings.hpp"

namespace vppb::trace {
namespace {

const char* severity_name(LintSeverity s) {
  return s == LintSeverity::kError ? "error" : "warning";
}

class Linter {
 public:
  explicit Linter(const Trace& t) : t_(t) {}

  LintReport run() {
    collect_threads();
    for (std::size_t i = 0; i < t_.records.size(); ++i) check(i);
    return std::move(report_);
  }

 private:
  void add(LintSeverity sev, std::size_t i, std::string msg) {
    LintIssue issue;
    issue.severity = sev;
    issue.record_index = i;
    issue.message = std::move(msg);
    issue.location = t_.location_string(t_.records[i]);
    if (sev == LintSeverity::kError)
      ++report_.errors;
    else
      ++report_.warnings;
    report_.issues.push_back(std::move(issue));
  }

  /// Every identity a join could legally name: declared metadata,
  /// created threads, and any thread that produced a record (the main
  /// thread has no create record of its own).
  void collect_threads() {
    for (const ThreadMeta& m : t_.threads) known_threads_.insert(m.tid);
    for (const Record& r : t_.records) {
      known_threads_.insert(r.tid);
      if (r.op == Op::kThrCreate && r.phase == Phase::kCall)
        known_threads_.insert(static_cast<ThreadId>(r.obj.id));
    }
  }

  void check(std::size_t i) {
    const Record& r = t_.records[i];
    if (i > 0 && r.at < t_.records[i - 1].at)
      add(LintSeverity::kError, i,
          strprintf("timestamp %s goes backwards (previous record at %s)",
                    r.at.to_string().c_str(),
                    t_.records[i - 1].at.to_string().c_str()));
    switch (r.op) {
      case Op::kMutexLock:
        if (r.phase == Phase::kReturn) mutex_owner_[r.obj.id] = r.tid;
        break;
      case Op::kMutexTrylock:
        if (r.phase == Phase::kReturn && r.arg == 1)
          mutex_owner_[r.obj.id] = r.tid;
        break;
      case Op::kMutexUnlock:
        if (r.phase == Phase::kCall) check_unlock(i, r);
        break;
      case Op::kThrJoin:
        check_join(i, r);
        break;
      case Op::kSemaInit:
        if (r.phase == Phase::kCall) sema_count_[r.obj.id] = r.arg;
        break;
      case Op::kSemaPost:
        if (r.phase == Phase::kReturn) ++sema_count_[r.obj.id];
        break;
      case Op::kSemaWait:
        if (r.phase == Phase::kReturn) check_sema_take(i, r);
        break;
      case Op::kSemaTrywait:
        if (r.phase == Phase::kReturn && r.arg == 1) check_sema_take(i, r);
        break;
      case Op::kCondWait:
      case Op::kCondTimedwait:
        check_cond_wait(i, r);
        break;
      default:
        break;
    }
  }

  void check_unlock(std::size_t i, const Record& r) {
    auto it = mutex_owner_.find(r.obj.id);
    if (it == mutex_owner_.end()) {
      add(LintSeverity::kError, i,
          strprintf("thread %u unlocks mutex %u which is not held",
                    static_cast<unsigned>(r.tid),
                    static_cast<unsigned>(r.obj.id)));
      return;
    }
    if (it->second != r.tid)
      // Solaris mutexes permit this, so it replays — but a lock
      // migrating between threads without a handoff protocol is almost
      // always a recording or program bug.
      add(LintSeverity::kWarning, i,
          strprintf("thread %u unlocks mutex %u held by thread %u",
                    static_cast<unsigned>(r.tid),
                    static_cast<unsigned>(r.obj.id),
                    static_cast<unsigned>(it->second)));
    mutex_owner_.erase(it);
  }

  void check_join(std::size_t i, const Record& r) {
    if (r.phase == Phase::kReturn) {
      if (r.arg != kAnyThread) joined_.insert(static_cast<ThreadId>(r.arg));
      return;
    }
    const auto target = static_cast<ThreadId>(r.obj.id);
    if (static_cast<std::int64_t>(r.obj.id) == kAnyThread) return;
    if (target == r.tid) {
      add(LintSeverity::kError, i,
          strprintf("thread %u joins itself (guaranteed deadlock)",
                    static_cast<unsigned>(r.tid)));
      return;
    }
    if (known_threads_.find(target) == known_threads_.end()) {
      add(LintSeverity::kError, i,
          strprintf("thread %u joins unknown thread %u",
                    static_cast<unsigned>(r.tid),
                    static_cast<unsigned>(target)));
      return;
    }
    if (joined_.find(target) != joined_.end())
      add(LintSeverity::kWarning, i,
          strprintf("thread %u joins thread %u which was already joined",
                    static_cast<unsigned>(r.tid),
                    static_cast<unsigned>(target)));
  }

  void check_sema_take(std::size_t i, const Record& r) {
    std::int64_t& count = sema_count_[r.obj.id];
    if (--count < 0) {
      add(LintSeverity::kError, i,
          strprintf("semaphore %u count driven to %lld (a completed wait "
                    "with no matching post or initial count)",
                    static_cast<unsigned>(r.obj.id),
                    static_cast<long long>(count)));
      count = 0;  // re-ground so one missing post is one finding
    }
  }

  void check_cond_wait(std::size_t i, const Record& r) {
    // The library releases the mutex while the thread sleeps on the
    // condition and reacquires it before the call returns, so the owner
    // table must track both edges to stay truthful for later records.
    // Only the call record carries the mutex id; the matching return is
    // resolved from the per-thread pending map.
    if (r.phase == Phase::kReturn) {
      auto pending = cond_mutex_.find(r.tid);
      if (pending == cond_mutex_.end()) return;  // no recorded call edge
      mutex_owner_[pending->second] = r.tid;
      cond_mutex_.erase(pending);
      return;
    }
    const std::uint32_t mutex_id = static_cast<std::uint32_t>(
        r.op == Op::kCondWait ? r.arg : r.arg2);
    cond_mutex_[r.tid] = mutex_id;
    auto it = mutex_owner_.find(mutex_id);
    if (it == mutex_owner_.end() || it->second != r.tid)
      add(LintSeverity::kWarning, i,
          strprintf("thread %u waits on condition %u without holding "
                    "mutex %u (undefined behavior in the thread library)",
                    static_cast<unsigned>(r.tid),
                    static_cast<unsigned>(r.obj.id), mutex_id));
    if (it != mutex_owner_.end() && it->second == r.tid)
      mutex_owner_.erase(it);
  }

  const Trace& t_;
  LintReport report_;
  std::unordered_set<ThreadId> known_threads_;
  std::unordered_set<ThreadId> joined_;
  std::unordered_map<std::uint32_t, ThreadId> mutex_owner_;
  std::unordered_map<std::uint32_t, std::int64_t> sema_count_;
  /// tid -> mutex named by that thread's in-flight cond_wait call.
  std::unordered_map<ThreadId, std::uint32_t> cond_mutex_;
};

}  // namespace

std::string LintIssue::to_string() const {
  std::string out = strprintf("%s: %s (record %zu", severity_name(severity),
                              message.c_str(), record_index);
  if (!location.empty()) out += " at " + location;
  out += ")";
  return out;
}

std::string LintReport::to_string() const {
  if (clean()) return "clean\n";
  std::string out;
  for (const LintIssue& issue : issues) {
    out += issue.to_string();
    out += '\n';
  }
  out += strprintf("%zu error%s, %zu warning%s\n", errors,
                   errors == 1 ? "" : "s", warnings,
                   warnings == 1 ? "" : "s");
  return out;
}

LintReport lint(const Trace& trace) { return Linter(trace).run(); }

}  // namespace vppb::trace
