// The event taxonomy of the Recorder.
//
// Every probed thread-library call produces two records, one when the
// call enters the library (kCall) and one when it returns to user code
// (kReturn) — the paper's fig. 2 shows both (e.g. "thr_join thr_a" and
// later "ok thr_join thr_a").  The CPU demand of a thread between two
// of its events is therefore the gap between a kReturn and the next
// kCall, which is exactly what the Simulator replays.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/time.hpp"
#include "ult/wait_queue.hpp"  // ThreadId

namespace vppb::trace {

using ult::ThreadId;

/// Which thread-library primitive an event belongs to.
enum class Op : std::uint8_t {
  kStartCollect,  ///< first record of every log
  kEndCollect,    ///< last record of every log
  kThrCreate,     ///< obj = new thread id, arg = create flags
  kThrExit,
  kThrJoin,       ///< obj = target id (kAnyThread for wildcard); return arg = departed id
  kThrYield,
  kThrSetPrio,    ///< obj = target thread, arg = new priority
  kThrSetConcurrency,  ///< arg = requested LWP count (replayed as a no-op knob)
  kThrSuspend,    ///< obj = target thread
  kThrContinue,   ///< obj = target thread
  kMutexInit,
  kMutexLock,
  kMutexTrylock,  ///< return arg: 1 = acquired, 0 = busy
  kMutexUnlock,
  kMutexDestroy,
  kSemaInit,      ///< arg = initial count
  kSemaWait,
  kSemaTrywait,   ///< return arg: 1 = acquired, 0 = busy
  kSemaPost,
  kSemaDestroy,
  kCondInit,
  kCondWait,      ///< obj = condvar, arg = mutex id
  kCondTimedwait, ///< return arg: 1 = woken, 0 = timed out; call arg2 = mutex id
  kCondSignal,
  kCondBroadcast,
  kCondDestroy,
  kRwInit,
  kRwRdlock,
  kRwTryRdlock,   ///< return arg: 1 = acquired, 0 = busy
  kRwWrlock,
  kRwTryWrlock,   ///< return arg: 1 = acquired, 0 = busy
  kRwUnlock,
  kRwDestroy,
  kUserMark,      ///< extension: application phase markers for the Visualizer
  kIoWait,        ///< extension (paper §6 future work): blocking I/O of a
                  ///< recorded latency; obj = device, replayed as a delay
};

/// Kind of object an event refers to.
enum class ObjKind : std::uint8_t {
  kNone,
  kThread,
  kMutex,
  kSema,
  kCond,
  kRwlock,
  kMark,
  kIo,  ///< an I/O device/channel (extension)
};

/// Call/return phase of a record.
enum class Phase : std::uint8_t { kCall, kReturn };

/// Wildcard target for thr_join(0, ...).
constexpr std::int64_t kAnyThread = 0;

/// Object identity: kind + per-kind sequential id assigned at init time.
struct ObjectRef {
  ObjKind kind = ObjKind::kNone;
  std::uint32_t id = 0;

  friend bool operator==(const ObjectRef&, const ObjectRef&) = default;
};

/// One record in the log.
struct Record {
  SimTime at;               ///< timestamp (1 ns resolution internally)
  ThreadId tid = 0;         ///< calling thread
  Phase phase = Phase::kCall;
  Op op = Op::kStartCollect;
  ObjectRef obj;            ///< primary object (sync object or thread)
  std::int64_t arg = 0;     ///< op-specific (see Op comments)
  std::int64_t arg2 = 0;    ///< secondary (e.g. mutex id of a cond wait)
  std::uint32_t loc = 0;    ///< index into the trace's source-location table
};

/// Mnemonic used in the text log ("thr_create", "mtx_lock", ...).
std::string_view op_name(Op op);

/// Inverse of op_name; returns false if unknown.
bool op_from_name(std::string_view name, Op& out);

std::string_view obj_kind_name(ObjKind k);
bool obj_kind_from_name(std::string_view name, ObjKind& out);

/// True for operations that may block the caller (their kReturn record
/// can be far from the kCall record).
bool op_may_block(Op op);

/// The object kind an op operates on.
ObjKind op_obj_kind(Op op);

/// True for try-operations, which the Simulator replays by outcome.
bool op_is_try(Op op);

}  // namespace vppb::trace
