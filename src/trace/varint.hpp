// Shared varint codec for the trace serialization formats.
//
// Both the monolithic binary format (binary.cpp) and the crash-safe
// chunked format (chunked.cpp) encode fields as LEB128 varints with
// zigzag for signed values.  Two readers are provided: the throwing
// `Reader` for strict decoding, and the non-throwing `TryReader` that
// the salvaging loader and the fuzz harness drive — every operation
// reports failure through its return value so a corrupt byte stream
// can be cut at the first bad field instead of unwinding.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace vppb::trace::wire {

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

inline void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, zigzag(v));
}

inline void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u64(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

/// Bounds-checked reader that refuses to continue past a malformed
/// field: every accessor reports success, and the caller decides
/// whether that is a fatal error (strict mode) or a cut point (salvage).
class TryReader {
 public:
  TryReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool u64(std::uint64_t& out) {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (pos_ >= size_ || shift >= 64) return false;
      const std::uint8_t b = data_[pos_++];
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) {
        out = v;
        return true;
      }
      shift += 7;
    }
  }

  bool i64(std::int64_t& out) {
    std::uint64_t v;
    if (!u64(v)) return false;
    out = unzigzag(v);
    return true;
  }

  bool str(std::string& out) {
    std::uint64_t n;
    if (!u64(n)) return false;
    if (n > size_ - pos_) return false;
    out.assign(reinterpret_cast<const char*>(data_ + pos_),
               static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return true;
  }

  bool at_end() const { return pos_ == size_; }
  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Strict reader: same decoding, but a malformed field throws
/// vppb::Error with the byte offset.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size) : in_(data, size) {}

  std::uint64_t u64() {
    std::uint64_t v;
    VPPB_CHECK_MSG(in_.u64(v), "binary data truncated or bad varint at byte "
                                   << in_.pos());
    return v;
  }

  std::int64_t i64() { return unzigzag(u64()); }

  std::string str() {
    std::string s;
    VPPB_CHECK_MSG(in_.str(s), "string overruns buffer at byte " << in_.pos());
    return s;
  }

  bool at_end() const { return in_.at_end(); }
  std::size_t pos() const { return in_.pos(); }
  std::size_t remaining() const { return in_.remaining(); }

 private:
  TryReader in_;
};

}  // namespace vppb::trace::wire
