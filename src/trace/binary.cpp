#include "trace/binary.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>

#include "trace/io.hpp"
#include "util/error.hpp"

namespace vppb::trace {
namespace {

constexpr char kMagic[4] = {'V', 'P', 'P', 'B'};
constexpr std::uint8_t kVersion = 1;

// ---- varint primitives -----------------------------------------------------

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, zigzag(v));
}

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u64(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint64_t u64() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      VPPB_CHECK_MSG(pos_ < size_, "binary trace truncated at byte " << pos_);
      const std::uint8_t b = data_[pos_++];
      VPPB_CHECK_MSG(shift < 64, "varint too long in binary trace");
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }

  std::int64_t i64() { return unzigzag(u64()); }

  std::string str() {
    const std::uint64_t n = u64();
    VPPB_CHECK_MSG(pos_ + n <= size_, "binary trace string overruns buffer");
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  bool at_end() const { return pos_ == size_; }
  std::size_t pos() const { return pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> to_binary(const Trace& trace) {
  std::vector<std::uint8_t> out;
  out.reserve(trace.records.size() * 6 + 256);
  out.insert(out.end(), kMagic, kMagic + 4);
  out.push_back(kVersion);

  // Strings: the pool is reconstructed by interning in order, so only
  // the non-empty entries (ids 1..n-1) are stored.
  put_u64(out, trace.strings.size() - 1);
  for (std::uint32_t id = 1; id < trace.strings.size(); ++id)
    put_str(out, trace.strings.get(id));

  put_u64(out, trace.threads.size());
  for (const ThreadMeta& t : trace.threads) {
    put_i64(out, t.tid);
    put_u64(out, t.name);
    put_u64(out, t.start_func);
    put_u64(out, t.bound ? 1 : 0);
    put_i64(out, t.initial_priority);
  }

  put_u64(out, trace.locations.size());
  for (const SourceLoc& loc : trace.locations) {
    put_u64(out, loc.file);
    put_u64(out, loc.func);
    put_u64(out, loc.line);
  }

  put_u64(out, trace.records.size());
  std::int64_t prev_ns = 0;
  for (const Record& r : trace.records) {
    put_u64(out, static_cast<std::uint64_t>(r.at.ns() - prev_ns));
    prev_ns = r.at.ns();
    put_i64(out, r.tid);
    put_u64(out, r.phase == Phase::kReturn ? 1 : 0);
    put_u64(out, static_cast<std::uint64_t>(r.op));
    put_u64(out, static_cast<std::uint64_t>(r.obj.kind));
    put_u64(out, r.obj.id);
    put_i64(out, r.arg);
    put_i64(out, r.arg2);
    put_u64(out, r.loc);
  }
  return out;
}

Trace from_binary(const std::uint8_t* data, std::size_t size) {
  VPPB_CHECK_MSG(size >= 5 && std::memcmp(data, kMagic, 4) == 0,
                 "not a VPPB binary trace (bad magic)");
  VPPB_CHECK_MSG(data[4] == kVersion,
                 "unsupported binary trace version " << int(data[4]));
  Reader in(data + 5, size - 5);
  Trace trace;

  const std::uint64_t nstrings = in.u64();
  for (std::uint64_t i = 0; i < nstrings; ++i) {
    const std::string s = in.str();
    const std::uint32_t id = trace.strings.intern(s);
    VPPB_CHECK_MSG(id == i + 1, "binary trace string table not in order");
  }

  const std::uint64_t nthreads = in.u64();
  for (std::uint64_t i = 0; i < nthreads; ++i) {
    ThreadMeta t;
    t.tid = static_cast<ThreadId>(in.i64());
    t.name = static_cast<std::uint32_t>(in.u64());
    t.start_func = static_cast<std::uint32_t>(in.u64());
    t.bound = in.u64() != 0;
    t.initial_priority = static_cast<int>(in.i64());
    VPPB_CHECK_MSG(t.name < trace.strings.size() &&
                       t.start_func < trace.strings.size(),
                   "binary trace thread has bad string ids");
    trace.threads.push_back(t);
  }

  trace.locations.clear();
  const std::uint64_t nlocs = in.u64();
  for (std::uint64_t i = 0; i < nlocs; ++i) {
    SourceLoc loc;
    loc.file = static_cast<std::uint32_t>(in.u64());
    loc.func = static_cast<std::uint32_t>(in.u64());
    loc.line = static_cast<std::uint32_t>(in.u64());
    VPPB_CHECK_MSG(loc.file < trace.strings.size() &&
                       loc.func < trace.strings.size(),
                   "binary trace location has bad string ids");
    trace.locations.push_back(loc);
  }

  const std::uint64_t nrecords = in.u64();
  std::int64_t prev_ns = 0;
  trace.records.reserve(static_cast<std::size_t>(nrecords));
  for (std::uint64_t i = 0; i < nrecords; ++i) {
    Record r;
    prev_ns += static_cast<std::int64_t>(in.u64());
    r.at = SimTime::nanos(prev_ns);
    r.tid = static_cast<ThreadId>(in.i64());
    r.phase = in.u64() != 0 ? Phase::kReturn : Phase::kCall;
    const std::uint64_t op = in.u64();
    VPPB_CHECK_MSG(op <= static_cast<std::uint64_t>(Op::kIoWait),
                   "binary trace has unknown op " << op);
    r.op = static_cast<Op>(op);
    const std::uint64_t kind = in.u64();
    VPPB_CHECK_MSG(kind <= static_cast<std::uint64_t>(ObjKind::kIo),
                   "binary trace has unknown object kind " << kind);
    r.obj.kind = static_cast<ObjKind>(kind);
    r.obj.id = static_cast<std::uint32_t>(in.u64());
    r.arg = in.i64();
    r.arg2 = in.i64();
    r.loc = static_cast<std::uint32_t>(in.u64());
    trace.records.push_back(r);
  }
  VPPB_CHECK_MSG(in.at_end(), "trailing bytes in binary trace");
  trace.validate();
  return trace;
}

Trace from_binary(const std::vector<std::uint8_t>& bytes) {
  return from_binary(bytes.data(), bytes.size());
}

void save_binary_file(const Trace& trace, const std::string& path) {
  const std::vector<std::uint8_t> bytes = to_binary(trace);
  std::ofstream f(path, std::ios::binary);
  if (!f)
    throw Error("cannot open trace file for writing: " + path + ": " +
                std::strerror(errno));
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!f) throw Error("failed writing trace file: " + path);
}

Trace load_binary_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f)
    throw Error("cannot open trace file: " + path + ": " +
                std::strerror(errno));
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(f),
                                  std::istreambuf_iterator<char>()};
  return from_binary(bytes);
}

Trace load_any_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f)
    throw Error("cannot open trace file: " + path + ": " +
                std::strerror(errno));
  char magic[4] = {};
  f.read(magic, 4);
  f.close();
  if (std::memcmp(magic, kMagic, 4) == 0) return load_binary_file(path);
  return load_file(path);
}

}  // namespace vppb::trace
