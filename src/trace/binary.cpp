#include "trace/binary.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <map>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "trace/chunked.hpp"
#include "trace/io.hpp"
#include "trace/record_reader.hpp"
#include "trace/varint.hpp"
#include "util/atomic_file.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace vppb::trace {
namespace {

constexpr char kMagic[4] = {'V', 'P', 'P', 'B'};
constexpr std::uint8_t kVersion = 1;

using wire::put_i64;
using wire::put_str;
using wire::put_u64;

void add_issue(LoadReport* report, IssueKind kind, std::size_t offset,
               std::string message) {
  if (report == nullptr) return;
  report->issues.push_back(TraceIssue{kind, offset, std::move(message)});
}

/// Decodes the record section.  In salvage mode a structural violation
/// ends the section (longest valid prefix) instead of throwing; the
/// same checks throw in strict mode so corrupt logs cannot slip through
/// with a clean bill of health.
void read_records(wire::TryReader& in, Trace& trace, std::uint64_t nrecords,
                  const LoadOptions& opt, LoadReport* report) {
  // A record encodes to >= 9 bytes (9 fields, >= 1 byte each), so a
  // "giant header" declaring more records than the payload could hold
  // must not drive the reservation: cap by what the bytes can supply.
  trace.records.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(nrecords, in.remaining() / 9 + 1)));

  RecordScan scan;
  for (std::uint64_t i = 0; i < nrecords; ++i) {
    if (scan.read_one(in, trace)) continue;
    if (!opt.salvage)
      throw Error(strprintf("binary trace: %s (record %zu, byte %zu)",
                            scan.message.c_str(), trace.records.size(),
                            in.pos()));
    add_issue(report, scan.why, in.pos(),
              scan.message +
                  strprintf(" — cut at record %zu", trace.records.size()));
    return;
  }
}

Trace from_binary_impl(const std::uint8_t* data, std::size_t size,
                       const LoadOptions& opt, LoadReport* report) {
  VPPB_CHECK_MSG(size >= 5 && std::memcmp(data, kMagic, 4) == 0,
                 "not a VPPB binary trace (bad magic)");
  VPPB_CHECK_MSG(data[4] == kVersion,
                 "unsupported binary trace version " << int(data[4]));
  // The table sections (strings, threads, locations) are all-or-nothing
  // even under salvage: records are meaningless without them, so a
  // corrupt table is an unrecoverable log, not a short one.
  wire::Reader header(data + 5, size - 5);
  Trace trace;

  const std::uint64_t nstrings = header.u64();
  VPPB_CHECK_MSG(nstrings <= header.remaining(),
                 "string table declares " << nstrings
                     << " entries but only " << header.remaining()
                     << " bytes remain");
  for (std::uint64_t i = 0; i < nstrings; ++i) {
    const std::string s = header.str();
    const std::uint32_t id = trace.strings.intern(s);
    VPPB_CHECK_MSG(id == i + 1, "binary trace string table not in order");
  }

  const std::uint64_t nthreads = header.u64();
  VPPB_CHECK_MSG(nthreads <= header.remaining(),
                 "thread table declares " << nthreads
                     << " entries but only " << header.remaining()
                     << " bytes remain");
  for (std::uint64_t i = 0; i < nthreads; ++i) {
    ThreadMeta t;
    t.tid = static_cast<ThreadId>(header.i64());
    t.name = static_cast<std::uint32_t>(header.u64());
    t.start_func = static_cast<std::uint32_t>(header.u64());
    t.bound = header.u64() != 0;
    t.initial_priority = static_cast<int>(header.i64());
    VPPB_CHECK_MSG(t.name < trace.strings.size() &&
                       t.start_func < trace.strings.size(),
                   "binary trace thread has bad string ids");
    trace.threads.push_back(t);
  }

  trace.locations.clear();
  const std::uint64_t nlocs = header.u64();
  VPPB_CHECK_MSG(nlocs <= header.remaining(),
                 "location table declares " << nlocs
                     << " entries but only " << header.remaining()
                     << " bytes remain");
  for (std::uint64_t i = 0; i < nlocs; ++i) {
    SourceLoc loc;
    loc.file = static_cast<std::uint32_t>(header.u64());
    loc.func = static_cast<std::uint32_t>(header.u64());
    loc.line = static_cast<std::uint32_t>(header.u64());
    VPPB_CHECK_MSG(loc.file < trace.strings.size() &&
                       loc.func < trace.strings.size(),
                   "binary trace location has bad string ids");
    trace.locations.push_back(loc);
  }

  const std::uint64_t nrecords = header.u64();
  wire::TryReader records_in(data + 5 + header.pos(),
                             size - 5 - header.pos());
  read_records(records_in, trace, nrecords, opt, report);

  if (report != nullptr) {
    report->records_recovered = trace.records.size();
    report->records_dropped = static_cast<std::size_t>(
        nrecords - std::min<std::uint64_t>(nrecords, trace.records.size()));
  }
  if (!records_in.at_end() && trace.records.size() == nrecords) {
    if (!opt.salvage) throw Error("trailing bytes in binary trace");
    add_issue(report, IssueKind::kTrailingData, 5 + header.pos() + records_in.pos(),
              strprintf("%zu trailing bytes ignored", records_in.remaining()));
  }
  if (opt.salvage) {
    trim_open_calls(trace, report);
    if (report != nullptr) {
      report->records_recovered = trace.records.size();
      report->salvaged |= !report->issues.empty();
    }
  }
  trace.validate();
  return trace;
}

}  // namespace

std::vector<std::uint8_t> to_binary(const Trace& trace) {
  std::vector<std::uint8_t> out;
  out.reserve(trace.records.size() * 6 + 256);
  out.insert(out.end(), kMagic, kMagic + 4);
  out.push_back(kVersion);

  // Strings: the pool is reconstructed by interning in order, so only
  // the non-empty entries (ids 1..n-1) are stored.
  put_u64(out, trace.strings.size() - 1);
  for (std::uint32_t id = 1; id < trace.strings.size(); ++id)
    put_str(out, trace.strings.get(id));

  put_u64(out, trace.threads.size());
  for (const ThreadMeta& t : trace.threads) {
    put_i64(out, t.tid);
    put_u64(out, t.name);
    put_u64(out, t.start_func);
    put_u64(out, t.bound ? 1 : 0);
    put_i64(out, t.initial_priority);
  }

  put_u64(out, trace.locations.size());
  for (const SourceLoc& loc : trace.locations) {
    put_u64(out, loc.file);
    put_u64(out, loc.func);
    put_u64(out, loc.line);
  }

  put_u64(out, trace.records.size());
  std::int64_t prev_ns = 0;
  for (const Record& r : trace.records) {
    put_u64(out, static_cast<std::uint64_t>(r.at.ns() - prev_ns));
    prev_ns = r.at.ns();
    put_i64(out, r.tid);
    put_u64(out, r.phase == Phase::kReturn ? 1 : 0);
    put_u64(out, static_cast<std::uint64_t>(r.op));
    put_u64(out, static_cast<std::uint64_t>(r.obj.kind));
    put_u64(out, r.obj.id);
    put_i64(out, r.arg);
    put_i64(out, r.arg2);
    put_u64(out, r.loc);
  }
  return out;
}

Trace from_binary(const std::uint8_t* data, std::size_t size) {
  return from_binary_impl(data, size, LoadOptions{}, nullptr);
}

Trace from_binary(const std::vector<std::uint8_t>& bytes) {
  return from_binary(bytes.data(), bytes.size());
}

Trace from_binary(const std::uint8_t* data, std::size_t size,
                  const LoadOptions& opt, LoadReport* report) {
  return from_binary_impl(data, size, opt, report);
}

void save_binary_file(const Trace& trace, const std::string& path) {
  util::atomic_write_file(path, to_binary(trace));
}

Trace load_binary_file(const std::string& path) {
  return from_binary(read_file_bytes(path));
}

Trace load_any_file(const std::string& path) {
  return load_any_file(path, LoadOptions{}, nullptr);
}

Trace load_any_file(const std::string& path, const LoadOptions& opt,
                    LoadReport* report) {
  const std::vector<std::uint8_t> bytes = read_file_bytes(path);
  return from_any(bytes.data(), bytes.size(), opt, report);
}

namespace {

/// Registry handles for the loader path, registered once.  from_any is
/// the single funnel every format and every caller (CLI, cache,
/// salvage tools) goes through, so counting here covers them all.
struct LoaderMetrics {
  obs::Counter& loads;
  obs::Counter& bytes;
  obs::Counter& records;
  obs::Counter& salvage_issues;

  static LoaderMetrics& get() {
    auto& reg = obs::Registry::global();
    static LoaderMetrics m{
        reg.counter("vppb_trace_loads_total", "Trace parses completed"),
        reg.counter("vppb_trace_bytes_total", "Trace bytes parsed"),
        reg.counter("vppb_trace_records_total", "Trace records decoded"),
        reg.counter("vppb_trace_salvage_issues_total",
                    "Issues recorded while salvaging damaged traces"),
    };
    return m;
  }
};

const char* format_name(const std::uint8_t* data, std::size_t size) {
  if (size >= 4 && std::memcmp(data, "VPPC", 4) == 0) return "chunked";
  if (size >= 4 && std::memcmp(data, kMagic, 4) == 0) return "binary";
  return "text";
}

}  // namespace

Trace from_any(const std::uint8_t* data, std::size_t size,
               const LoadOptions& opt, LoadReport* report) {
  obs::Span span("trace.load", "loader");
  span.arg("bytes", static_cast<std::int64_t>(size));
  const auto t0 = std::chrono::steady_clock::now();
  Trace trace = [&]() {
    if (size >= 4 && std::memcmp(data, "VPPC", 4) == 0)
      return from_chunked(data, size, opt, report);
    if (size >= 4 && std::memcmp(data, kMagic, 4) == 0)
      return from_binary_impl(data, size, opt, report);
    const std::string text(reinterpret_cast<const char*>(data), size);
    return from_text(text, opt, report);
  }();

  LoaderMetrics& lm = LoaderMetrics::get();
  lm.loads.inc();
  lm.bytes.inc(size);
  lm.records.inc(trace.records.size());
  if (report != nullptr) lm.salvage_issues.inc(report->issues.size());
  if (obs::Logger::global().enabled(obs::LogLevel::kDebug)) {
    const double secs =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            std::chrono::steady_clock::now() - t0)
            .count();
    obs::logf(obs::LogLevel::kDebug, "loader",
              "parsed %s trace: %zu records, %zu bytes, %.0f records/sec%s",
              format_name(data, size), trace.records.size(), size,
              secs > 0.0 ? static_cast<double>(trace.records.size()) / secs
                         : 0.0,
              report != nullptr && !report->issues.empty() ? " (salvaged)"
                                                           : "");
  }
  return trace;
}

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f)
    throw Error("cannot open trace file: " + path + ": " +
                std::strerror(errno));
  return std::vector<std::uint8_t>{std::istreambuf_iterator<char>(f),
                                   std::istreambuf_iterator<char>()};
}

}  // namespace vppb::trace
