// Crash-safe chunked trace log ("VPPC").
//
// The monolithic binary format (binary.hpp) is written in one shot at
// the end of a run — a target that crashes, is killed, or fills the
// disk loses the entire recording.  That defeats the tool's purpose:
// the runs one most wants to inspect are exactly the ones that die.
// This format is written incrementally as a sequence of sealed,
// checksummed chunks so that however the target ends, every chunk
// sealed before the end is recoverable.
//
// Layout:
//   "VPPC" <version:u8>
//   chunk*:
//     "CHNK" <payload_len:u32le> <record_count:u32le>
//            <payload_crc32:u32le> <running_crc32:u32le>
//     payload bytes
//
// payload_crc32 covers this chunk's payload; running_crc32 is the CRC
// of every payload byte in the file so far (seeded with the previous
// chunk's running value), so chunks cannot be reordered or spliced
// between files without detection.  The payload is a tagged item
// stream — new strings (in intern order), thread-meta upserts, new
// locations, and records with delta timestamps that continue across
// chunk boundaries — making any chunk prefix a loadable trace.
//
// ChunkedWriter is built for dying processes: appends encode eagerly
// into a pre-allocated buffer and publish an atomic committed
// watermark, so crash_seal() — callable from a SIGSEGV handler — only
// needs async-signal-safe steps: CRC over committed bytes, ::write,
// ::fsync, ::rename.  The writer writes to `path + ".partial"` and
// renames to `path` only once at least one chunk is safely on disk,
// so a previous good log is never clobbered by an empty new one.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/salvage.hpp"
#include "trace/trace.hpp"

namespace vppb::trace {

struct ChunkedWriterOptions {
  std::size_t chunk_records = 1024;       ///< seal after this many records
  std::size_t chunk_bytes = 256 * 1024;   ///< ... or this many payload bytes
};

class ChunkedWriter {
 public:
  /// Opens `path + ".partial"` and writes the file header.  Throws
  /// vppb::Error when the file cannot be created.
  explicit ChunkedWriter(std::string path, ChunkedWriterOptions opt = {});

  /// Leaves the ".partial" file on disk when finalize() was never
  /// reached — a crash investigator's evidence, salvageable as-is.
  ~ChunkedWriter();

  ChunkedWriter(const ChunkedWriter&) = delete;
  ChunkedWriter& operator=(const ChunkedWriter&) = delete;

  /// Item appends.  Strings must arrive in intern order (ids 1..n);
  /// locations in index order starting at 0 (including the reserved
  /// "unknown" entry).  Threads may be upserted at any time.
  void add_string(const std::string& s);
  void upsert_thread(const ThreadMeta& t);
  void add_location(const SourceLoc& loc);
  void add_record(const Record& r);

  /// Diffs the trace's string/location tables and thread metas against
  /// what has already been written and appends the new entries.  Call
  /// before add_record so the record's references resolve on replay.
  void sync_tables(const Trace& trace);

  /// Seals the pending chunk to the partial file (normal path).
  void seal();

  /// Seals, fsyncs, renames partial -> final, closes.  Returns the
  /// final path.  Idempotent.
  std::string finalize();

  /// Async-signal-safe best effort: writes the committed-but-unsealed
  /// payload as a final chunk, fsyncs, and renames partial -> final.
  /// Safe to call from SIGSEGV/SIGABRT handlers and atexit; if a
  /// normal-path seal() was interrupted mid-write, the pending chunk is
  /// skipped (the salvaging reader drops the torn tail).
  void crash_seal() noexcept;

  const std::string& partial_path() const { return partial_path_; }
  const std::string& final_path() const { return final_path_; }
  std::size_t sealed_chunks() const { return sealed_chunks_.load(); }
  std::size_t records_written() const { return records_written_; }
  bool finalized() const { return finalized_.load(); }

 private:
  void append_item(std::size_t nrecords_in_item);
  void write_chunk(const std::uint8_t* payload, std::size_t n,
                   std::uint32_t nrec) noexcept;

  ChunkedWriterOptions opt_;
  std::string final_path_;
  std::string partial_path_;
  int fd_ = -1;

  // Pending-chunk buffer.  The data pointer and committed watermark are
  // atomics so crash_seal(), possibly running on another thread's
  // signal stack, sees a consistent (pointer, length) pair.  The buffer
  // only grows by swap — the old block is intentionally leaked because
  // a handler may still be reading it.
  std::atomic<std::uint8_t*> buf_{nullptr};
  std::size_t cap_ = 0;
  std::atomic<std::size_t> committed_{0};
  std::atomic<std::uint32_t> pending_records_{0};
  std::atomic<std::uint32_t> running_crc_{0};
  std::atomic<std::uint32_t> sealed_chunks_{0};
  std::atomic<bool> sealing_{false};
  std::atomic<bool> finalized_{false};

  std::vector<std::uint8_t> scratch_;  ///< per-item staging (normal path)
  std::int64_t prev_ns_ = 0;
  std::uint32_t next_string_ = 1;
  std::size_t next_location_ = 0;
  std::vector<ThreadMeta> synced_threads_;
  std::size_t records_written_ = 0;
};

/// One-shot in-memory encoding of a whole trace (tests, fuzzing,
/// `vppb convert`).  Tables go in the first chunk; records are split
/// into chunks of chunk_records.
std::vector<std::uint8_t> to_chunked(const Trace& trace,
                                     std::size_t chunk_records = 1024);

/// Decodes a chunked log.  In strict mode any structural problem
/// throws.  In salvage mode the longest valid prefix of chunks — and
/// within the last chunk, of records — is recovered and the rest
/// reported via *report.
Trace from_chunked(const std::uint8_t* data, std::size_t size,
                   const LoadOptions& opt = {}, LoadReport* report = nullptr);

Trace load_chunked_file(const std::string& path, const LoadOptions& opt = {},
                        LoadReport* report = nullptr);

}  // namespace vppb::trace
