// Bottleneck analysis over a simulated execution: the programmatic form
// of what a developer does with the paper's Visualizer in §5 — find the
// synchronization object responsible for the serialization, see which
// threads it blocks, and jump to the source lines that touch it.
#pragma once

#include <string>
#include <vector>

#include "core/result.hpp"
#include "trace/trace.hpp"

namespace vppb::viz {

/// Aggregate statistics for one synchronization object.
struct ObjectContention {
  trace::ObjectRef obj;
  std::string name;          ///< e.g. "mutex#1"
  std::size_t operations = 0;
  std::size_t blocking_operations = 0;  ///< ops that did not finish instantly
  SimTime total_blocked;     ///< sum of (done - at) over its operations
  SimTime longest_block;
  std::size_t distinct_threads = 0;
  std::vector<std::string> source_lines;  ///< unique "file:line" touching it
};

/// Per-thread utilization summary (the numbers behind the paper's
/// statement that "no threads are actually running in parallel").
struct ThreadUtilization {
  trace::ThreadId tid = 0;
  std::string name;
  double running_fraction = 0.0;
  double runnable_fraction = 0.0;
  double blocked_fraction = 0.0;
  double sleeping_fraction = 0.0;
};

struct AnalysisReport {
  /// Objects sorted by total blocked time, worst first.
  std::vector<ObjectContention> contention;
  std::vector<ThreadUtilization> utilization;
  /// Average number of running threads over the run (area under the
  /// green curve of the parallelism graph / total time).
  double avg_running = 0.0;
  double avg_runnable = 0.0;

  /// The top culprit, or nullptr when nothing ever blocked.
  const ObjectContention* hottest() const {
    return contention.empty() ? nullptr : &contention.front();
  }

  /// Multi-line human-readable summary.
  std::string to_string() const;
};

/// Analyzes a simulated execution against its source trace.
AnalysisReport analyze(const core::SimResult& result,
                       const trace::Trace& source);

}  // namespace vppb::viz
