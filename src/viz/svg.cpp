// SVG renderers: the reproduction's stand-in for the paper's Motif GUI.
// Layout follows fig. 5: the parallelism graph (running threads in
// green, runnable-but-not-running stacked on top in red) above the
// execution flow graph (one row per thread; solid line = executing,
// grey = runnable without a CPU, gap = blocked; events drawn as
// coloured symbols, e.g. semaphores in red with up/down arrows for
// sema_post/sema_wait).
#include <cmath>
#include <sstream>

#include "util/strings.hpp"
#include "viz/visualizer.hpp"

namespace vppb::viz {
namespace {

constexpr int kMarginLeft = 70;
constexpr int kMarginRight = 16;
constexpr int kAxisHeight = 22;

/// Colour per object kind (paper: "different events are displayed with
/// different symbols and colours, e.g. all semaphores are shown in red").
const char* kind_color(trace::ObjKind kind) {
  switch (kind) {
    case trace::ObjKind::kSema: return "#d62728";    // red, as in the paper
    case trace::ObjKind::kMutex: return "#1f77b4";   // blue
    case trace::ObjKind::kCond: return "#9467bd";    // purple
    case trace::ObjKind::kRwlock: return "#2ca02c";  // green
    case trace::ObjKind::kThread: return "#333333";  // black
    case trace::ObjKind::kIo: return "#e6820a";      // orange: devices
    default: return "#7f7f7f";
  }
}

struct Scale {
  SimTime t0;
  SimTime t1;
  double x0;
  double x1;

  double x(SimTime t) const {
    if (t1 <= t0) return x0;
    const double f = static_cast<double>((t - t0).ns()) /
                     static_cast<double>((t1 - t0).ns());
    return x0 + f * (x1 - x0);
  }
};

void axis(std::ostringstream& os, const Scale& sc, double y) {
  os << "<line x1='" << sc.x0 << "' y1='" << y << "' x2='" << sc.x1
     << "' y2='" << y << "' stroke='#444' stroke-width='1'/>\n";
  for (int i = 0; i <= 8; ++i) {
    const SimTime t = sc.t0 + (sc.t1 - sc.t0) * i / 8;
    const double x = sc.x(t);
    os << "<line x1='" << x << "' y1='" << y << "' x2='" << x << "' y2='"
       << y + 4 << "' stroke='#444'/>\n";
    os << "<text x='" << x << "' y='" << y + 15
       << "' font-size='9' text-anchor='middle' fill='#444'>" << t.to_string()
       << "</text>\n";
  }
}

std::string esc(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

void parallelism_body(std::ostringstream& os, const Visualizer& viz,
                      const Scale& sc, double top, double height) {
  const auto& r = viz.result();
  const int samples = static_cast<int>(sc.x1 - sc.x0);
  int max_stack = 1;
  std::vector<core::SimResult::Parallelism> points;
  points.reserve(static_cast<std::size_t>(samples) + 1);
  for (int i = 0; i <= samples; ++i) {
    const SimTime t = sc.t0 + (sc.t1 - sc.t0) * i / std::max(samples, 1);
    const auto p = r.parallelism_at(t);
    points.push_back(p);
    max_stack = std::max(max_stack, p.running + p.runnable);
  }
  const double unit = height / max_stack;
  for (int i = 0; i < samples; ++i) {
    const double x = sc.x0 + i;
    const auto& p = points[static_cast<std::size_t>(i)];
    if (p.running > 0) {
      os << "<rect x='" << x << "' y='" << top + height - p.running * unit
         << "' width='1' height='" << p.running * unit
         << "' fill='#2ca02c'/>\n";  // green: running
    }
    if (p.runnable > 0) {
      os << "<rect x='" << x << "' y='"
         << top + height - (p.running + p.runnable) * unit
         << "' width='1' height='" << p.runnable * unit
         << "' fill='#d62728'/>\n";  // red: runnable but not running
    }
  }
  // Scale marks on the left.
  for (int n = 1; n <= max_stack; ++n) {
    os << "<text x='" << sc.x0 - 6 << "' y='" << top + height - n * unit + 3
       << "' font-size='8' text-anchor='end' fill='#666'>" << n << "</text>\n";
  }
}

void event_symbol(std::ostringstream& os, const Visualizer& viz,
                  std::size_t idx, double x, double y, bool selected) {
  const core::SimEvent& e = viz.event(idx);
  const char* color = kind_color(e.obj.kind);
  std::ostringstream title;
  title << trace::op_name(e.op);
  const std::string src = viz.source_location(idx);
  if (!src.empty()) title << " @ " << src;

  os << "<g>";
  switch (e.op) {
    case trace::Op::kSemaPost:  // upward arrow (paper §3.3)
      os << "<path d='M" << x << ' ' << y - 6 << " l-4 7 h8 z' fill='" << color
         << "'/>";
      break;
    case trace::Op::kSemaWait:  // downward arrow
      os << "<path d='M" << x << ' ' << y + 6 << " l-4 -7 h8 z' fill='"
         << color << "'/>";
      break;
    case trace::Op::kMutexLock:
    case trace::Op::kMutexTrylock:
      os << "<path d='M" << x << ' ' << y + 5 << " l-4 -7 h8 z' fill='"
         << color << "'/>";
      break;
    case trace::Op::kMutexUnlock:
      os << "<path d='M" << x << ' ' << y - 5 << " l-4 7 h8 z' fill='" << color
         << "'/>";
      break;
    case trace::Op::kThrCreate:
      os << "<circle cx='" << x << "' cy='" << y << "' r='4' fill='" << color
         << "'/>";
      break;
    case trace::Op::kThrJoin:
      os << "<circle cx='" << x << "' cy='" << y
         << "' r='4' fill='none' stroke='" << color << "' stroke-width='1.6'/>";
      break;
    case trace::Op::kThrExit:
      os << "<path d='M" << x - 4 << ' ' << y - 4 << " l8 8 m0 -8 l-8 8' "
         << "stroke='" << color << "' stroke-width='1.6'/>";
      break;
    case trace::Op::kCondBroadcast:
      os << "<rect x='" << x - 4 << "' y='" << y - 4
         << "' width='8' height='8' fill='" << color << "'/>";
      break;
    case trace::Op::kCondSignal:
    case trace::Op::kCondWait:
    case trace::Op::kCondTimedwait:
      os << "<rect x='" << x - 3.5 << "' y='" << y - 3.5
         << "' width='7' height='7' fill='none' stroke='" << color
         << "' stroke-width='1.5'/>";
      break;
    default:
      os << "<circle cx='" << x << "' cy='" << y << "' r='2.5' fill='" << color
         << "'/>";
      break;
  }
  if (selected) {
    // The selected event flashes (paper §3.3).
    os << "<circle cx='" << x << "' cy='" << y
       << "' r='8' fill='none' stroke='#ff9900' stroke-width='2'>"
       << "<animate attributeName='opacity' values='1;0;1' dur='1s' "
          "repeatCount='indefinite'/></circle>";
  }
  os << "<title>" << esc(title.str()) << "</title></g>\n";
}

void flow_body(std::ostringstream& os, const Visualizer& viz, const Scale& sc,
               double top, int row_height) {
  const auto& r = viz.result();
  int row = 0;
  for (const ThreadId tid : viz.visible_threads()) {
    const double y = top + row * row_height + row_height / 2.0;
    const trace::ThreadMeta* meta = viz.source().find_thread(tid);
    std::string label = "T" + std::to_string(tid);
    if (meta != nullptr && meta->name != 0) {
      label += " (" + viz.source().strings.get(meta->name) + ")";
    }
    os << "<text x='4' y='" << y + 3 << "' font-size='10' fill='#222'>"
       << esc(label) << "</text>\n";

    for (const core::Segment& s : r.thread_segments(tid)) {
      if (s.end <= sc.t0 || s.start >= sc.t1) continue;
      const double xa = sc.x(std::max(s.start, sc.t0));
      const double xb = sc.x(std::min(s.end, sc.t1));
      switch (s.state) {
        case core::SegState::kRunning:
          os << "<line x1='" << xa << "' y1='" << y << "' x2='" << xb
             << "' y2='" << y << "' stroke='#111' stroke-width='3'>"
             << "<title>running on CPU " << s.cpu << "</title></line>\n";
          break;
        case core::SegState::kRunnable:
          // Grey line: ready but no LWP/CPU to run on (paper §3.3).
          os << "<line x1='" << xa << "' y1='" << y << "' x2='" << xb
             << "' y2='" << y << "' stroke='#aaaaaa' stroke-width='3'>"
             << "<title>runnable (no CPU)</title></line>\n";
          break;
        case core::SegState::kSleeping:
          os << "<line x1='" << xa << "' y1='" << y << "' x2='" << xb
             << "' y2='" << y
             << "' stroke='#88aacc' stroke-width='1' stroke-dasharray='3,3'/>"
             << '\n';
          break;
        case core::SegState::kBlocked:
          break;  // no line at all
      }
    }
    ++row;
  }

  for (std::size_t i = 0; i < viz.event_count(); ++i) {
    const core::SimEvent& e = viz.event(i);
    if (e.at < sc.t0 || e.at > sc.t1) continue;
    int erow = 0;
    bool found = false;
    for (const ThreadId tid : viz.visible_threads()) {
      if (tid == e.tid) {
        found = true;
        break;
      }
      ++erow;
    }
    if (!found) continue;
    const double y = top + erow * row_height + row_height / 2.0;
    event_symbol(os, viz, i, sc.x(e.at), y,
                 viz.selected_event() && *viz.selected_event() == i);
  }
}

}  // namespace

std::string render_parallelism_svg(const Visualizer& viz,
                                   const RenderOptions& opts) {
  std::ostringstream os;
  const int height = opts.parallelism_height + kAxisHeight;
  os << "<svg xmlns='http://www.w3.org/2000/svg' width='" << opts.width
     << "' height='" << height << "'>\n";
  const Scale sc{viz.view().t0, viz.view().t1,
                 static_cast<double>(kMarginLeft),
                 static_cast<double>(opts.width - kMarginRight)};
  parallelism_body(os, viz, sc, 4, opts.parallelism_height - 8);
  axis(os, sc, opts.parallelism_height);
  os << "</svg>\n";
  return os.str();
}

std::string render_flow_svg(const Visualizer& viz, const RenderOptions& opts) {
  std::ostringstream os;
  const int rows = static_cast<int>(viz.visible_threads().size());
  const int height = rows * opts.flow_row_height + kAxisHeight + 8;
  os << "<svg xmlns='http://www.w3.org/2000/svg' width='" << opts.width
     << "' height='" << height << "'>\n";
  const Scale sc{viz.view().t0, viz.view().t1,
                 static_cast<double>(kMarginLeft),
                 static_cast<double>(opts.width - kMarginRight)};
  flow_body(os, viz, sc, 4, opts.flow_row_height);
  axis(os, sc, rows * opts.flow_row_height + 8);
  os << "</svg>\n";
  return os.str();
}

std::string render_lwp_svg(const Visualizer& viz, const RenderOptions& opts) {
  const auto& r = viz.result();
  const int rows = static_cast<int>(r.lwp_stats.size());
  const int row_height = opts.flow_row_height;
  const int height = rows * row_height + kAxisHeight + 8;

  // A small qualitative palette cycled by thread id.
  static const char* kPalette[] = {"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728",
                                   "#9467bd", "#8c564b", "#e377c2", "#7f7f7f",
                                   "#bcbd22", "#17becf"};

  std::ostringstream os;
  os << "<svg xmlns='http://www.w3.org/2000/svg' width='" << opts.width
     << "' height='" << height << "'>\n"
     << "<rect width='100%' height='100%' fill='white'/>\n";
  const Scale sc{viz.view().t0, viz.view().t1,
                 static_cast<double>(kMarginLeft),
                 static_cast<double>(opts.width - kMarginRight)};
  int row = 0;
  for (const core::LwpStats& ls : r.lwp_stats) {
    const double y = 4 + row * row_height;
    os << "<text x='4' y='" << y + row_height / 2.0 + 3
       << "' font-size='10' fill='#222'>L" << ls.id
       << (ls.dedicated ? " (bound)" : "") << "</text>\n";
    for (const core::LwpSegment& s : r.segments_of_lwp(ls.id)) {
      if (s.end <= sc.t0 || s.start >= sc.t1 || s.thread == 0) continue;
      const double xa = sc.x(std::max(s.start, sc.t0));
      const double xb = sc.x(std::min(s.end, sc.t1));
      const char* color =
          kPalette[static_cast<std::size_t>(s.thread) % 10];
      os << "<rect x='" << xa << "' y='" << y + 3 << "' width='"
         << std::max(0.5, xb - xa) << "' height='" << row_height - 6
         << "' fill='" << color << "' fill-opacity='"
         << (s.cpu >= 0 ? "0.95" : "0.30") << "'>"
         << "<title>T" << s.thread
         << (s.cpu >= 0 ? " on CPU " + std::to_string(s.cpu)
                        : std::string(" waiting for a CPU"))
         << "</title></rect>\n";
    }
    ++row;
  }
  axis(os, sc, 4.0 + rows * row_height + 2);
  os << "</svg>\n";
  return os.str();
}

std::string render_svg(const Visualizer& viz, const RenderOptions& opts) {
  const int rows = static_cast<int>(viz.visible_threads().size());
  const int flow_height = rows * opts.flow_row_height + kAxisHeight + 8;
  const int legend_height = opts.include_legend ? 18 : 0;
  const int total_height =
      opts.parallelism_height + kAxisHeight + 10 + flow_height + legend_height;

  std::ostringstream os;
  os << "<svg xmlns='http://www.w3.org/2000/svg' width='" << opts.width
     << "' height='" << total_height << "'>\n"
     << "<rect width='100%' height='100%' fill='white'/>\n";
  const Scale sc{viz.view().t0, viz.view().t1,
                 static_cast<double>(kMarginLeft),
                 static_cast<double>(opts.width - kMarginRight)};
  parallelism_body(os, viz, sc, 4, opts.parallelism_height - 8);
  axis(os, sc, opts.parallelism_height);
  const double flow_top = opts.parallelism_height + kAxisHeight + 10;
  flow_body(os, viz, sc, flow_top, opts.flow_row_height);
  axis(os, sc, flow_top + rows * opts.flow_row_height + 4);
  if (opts.include_legend) {
    os << "<text x='" << kMarginLeft << "' y='" << total_height - 5
       << "' font-size='9' fill='#555'>green = running, red = runnable; "
          "flow: black = executing, grey = runnable, gap = blocked; "
          "red arrows = semaphore post/wait</text>\n";
  }
  os << "</svg>\n";
  return os.str();
}

}  // namespace vppb::viz
