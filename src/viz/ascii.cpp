// Terminal renderers: quick views of the two graphs for tests, examples
// and headless environments.
#include <algorithm>
#include <sstream>
#include <vector>

#include "util/error.hpp"
#include "viz/visualizer.hpp"

namespace vppb::viz {
namespace {

char event_char(trace::Op op) {
  switch (op) {
    case trace::Op::kSemaWait: return 'v';
    case trace::Op::kSemaPost: return '^';
    case trace::Op::kMutexLock:
    case trace::Op::kMutexTrylock: return 'm';
    case trace::Op::kMutexUnlock: return 'u';
    case trace::Op::kThrCreate: return 'C';
    case trace::Op::kThrJoin: return 'J';
    case trace::Op::kThrExit: return 'X';
    case trace::Op::kCondWait:
    case trace::Op::kCondTimedwait: return 'w';
    case trace::Op::kCondSignal: return 's';
    case trace::Op::kCondBroadcast: return 'B';
    case trace::Op::kRwRdlock:
    case trace::Op::kRwTryRdlock: return 'r';
    case trace::Op::kRwWrlock:
    case trace::Op::kRwTryWrlock: return 'W';
    case trace::Op::kRwUnlock: return 'u';
    case trace::Op::kIoWait: return 'D';
    default: return '*';
  }
}

char state_char(core::SegState s) {
  switch (s) {
    case core::SegState::kRunning: return '=';
    case core::SegState::kRunnable: return '.';
    case core::SegState::kSleeping: return '~';
    case core::SegState::kBlocked: return ' ';
  }
  return ' ';
}

}  // namespace

std::string render_flow_ascii(const Visualizer& viz, int columns) {
  VPPB_CHECK_MSG(columns >= 10, "need at least 10 columns");
  const View& view = viz.view();
  const SimTime width = view.width();
  auto col_of = [&](SimTime t) {
    if (width.is_zero()) return 0;
    auto c = static_cast<int>((t - view.t0).ns() * columns / width.ns());
    return std::clamp(c, 0, columns - 1);
  };

  std::ostringstream os;
  os << "time: " << view.t0.to_string() << " .. " << view.t1.to_string()
     << "  (= running, . runnable, ~ sleeping, blank blocked)\n";
  for (const ThreadId tid : viz.visible_threads()) {
    std::string line(static_cast<std::size_t>(columns), ' ');
    for (const core::Segment& s : viz.result().thread_segments(tid)) {
      if (s.end <= view.t0 || s.start >= view.t1) continue;
      const int a = col_of(std::max(s.start, view.t0));
      const int b = col_of(std::min(s.end, view.t1));
      for (int c = a; c <= b; ++c)
        line[static_cast<std::size_t>(c)] = state_char(s.state);
    }
    for (std::size_t i = 0; i < viz.event_count(); ++i) {
      const core::SimEvent& e = viz.event(i);
      if (e.tid != tid || e.at < view.t0 || e.at > view.t1) continue;
      line[static_cast<std::size_t>(col_of(e.at))] = event_char(e.op);
    }
    os << 'T' << tid << '\t' << '|' << line << "|\n";
  }
  return os.str();
}

std::string render_parallelism_ascii(const Visualizer& viz, int columns,
                                     int rows) {
  VPPB_CHECK_MSG(columns >= 10 && rows >= 2, "grid too small");
  const View& view = viz.view();
  std::vector<core::SimResult::Parallelism> cols(
      static_cast<std::size_t>(columns));
  int max_stack = 1;
  for (int c = 0; c < columns; ++c) {
    const SimTime t = view.t0 + view.width() * c / std::max(columns - 1, 1);
    cols[static_cast<std::size_t>(c)] = viz.result().parallelism_at(t);
    max_stack = std::max(max_stack, cols[static_cast<std::size_t>(c)].running +
                                        cols[static_cast<std::size_t>(c)].runnable);
  }
  std::ostringstream os;
  os << "parallelism (" << '#' << " running, + runnable), max " << max_stack
     << "\n";
  for (int r = rows; r >= 1; --r) {
    // Threshold for this row: which stack height it represents.
    const double level = static_cast<double>(r) * max_stack / rows;
    std::string line(static_cast<std::size_t>(columns), ' ');
    for (int c = 0; c < columns; ++c) {
      const auto& p = cols[static_cast<std::size_t>(c)];
      if (p.running >= level) {
        line[static_cast<std::size_t>(c)] = '#';
      } else if (p.running + p.runnable >= level) {
        line[static_cast<std::size_t>(c)] = '+';
      }
    }
    os << '|' << line << "|\n";
  }
  os << ' ' << std::string(static_cast<std::size_t>(columns), '-') << "\n";
  return os.str();
}

std::string render_lwp_ascii(const Visualizer& viz, int columns) {
  VPPB_CHECK_MSG(columns >= 10, "need at least 10 columns");
  const View& view = viz.view();
  const SimTime width = view.width();
  auto col_of = [&](SimTime t) {
    if (width.is_zero()) return 0;
    auto c = static_cast<int>((t - view.t0).ns() * columns / width.ns());
    return std::clamp(c, 0, columns - 1);
  };
  // Stable, readable glyph per thread id.
  auto glyph = [](ThreadId tid, bool on_cpu) {
    static const char* kUpper = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ";
    static const char* kLower = "0123456789abcdefghijklmnopqrstuvwxyz";
    const int slot = tid % 36;
    return on_cpu ? kUpper[slot] : kLower[slot];
  };

  std::ostringstream os;
  os << "LWPs (UPPER = on a CPU, lower = waiting for a CPU, . = idle); "
        "glyph = thread id mod 36\n";
  std::vector<int> lwp_ids;
  for (const core::LwpStats& ls : viz.result().lwp_stats)
    lwp_ids.push_back(ls.id);
  for (const int lwp : lwp_ids) {
    std::string line(static_cast<std::size_t>(columns), '.');
    for (const core::LwpSegment& s : viz.result().segments_of_lwp(lwp)) {
      if (s.end <= view.t0 || s.start >= view.t1 || s.thread == 0) continue;
      const int a = col_of(std::max(s.start, view.t0));
      const int b = col_of(std::min(s.end, view.t1));
      for (int c = a; c <= b; ++c)
        line[static_cast<std::size_t>(c)] = glyph(s.thread, s.cpu >= 0);
    }
    os << "L" << lwp << '\t' << '|' << line << "|\n";
  }
  return os.str();
}

}  // namespace vppb::viz
