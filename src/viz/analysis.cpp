#include "viz/analysis.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "util/strings.hpp"

namespace vppb::viz {

AnalysisReport analyze(const core::SimResult& result,
                       const trace::Trace& source) {
  AnalysisReport report;

  struct Acc {
    std::size_t operations = 0;
    std::size_t blocking = 0;
    SimTime blocked;
    SimTime longest;
    std::set<trace::ThreadId> threads;
    std::set<std::string> sources;
  };
  std::map<std::pair<int, std::uint32_t>, Acc> by_object;

  for (const core::SimEvent& e : result.events) {
    if (e.obj.kind == trace::ObjKind::kNone ||
        e.obj.kind == trace::ObjKind::kMark)
      continue;
    Acc& acc = by_object[{static_cast<int>(e.obj.kind), e.obj.id}];
    ++acc.operations;
    const SimTime d = e.done - e.at;
    if (!d.is_zero()) {
      ++acc.blocking;
      acc.blocked += d;
      acc.longest = std::max(acc.longest, d);
    }
    acc.threads.insert(e.tid);
    if (e.loc < source.locations.size()) {
      const trace::SourceLoc& loc = source.locations[e.loc];
      if (loc.file != 0) {
        acc.sources.insert(strprintf("%s:%u",
                                     source.strings.get(loc.file).c_str(),
                                     loc.line));
      }
    }
  }

  for (auto& [key, acc] : by_object) {
    ObjectContention oc;
    oc.obj = trace::ObjectRef{static_cast<trace::ObjKind>(key.first),
                              key.second};
    if (oc.obj.kind == trace::ObjKind::kThread) {
      oc.name = oc.obj.id == 0 ? std::string("join(any)")
                               : strprintf("thread T%u", oc.obj.id);
    } else {
      oc.name = strprintf(
          "%s#%u", std::string(trace::obj_kind_name(oc.obj.kind)).c_str(),
          oc.obj.id);
    }
    oc.operations = acc.operations;
    oc.blocking_operations = acc.blocking;
    oc.total_blocked = acc.blocked;
    oc.longest_block = acc.longest;
    oc.distinct_threads = acc.threads.size();
    oc.source_lines.assign(acc.sources.begin(), acc.sources.end());
    report.contention.push_back(std::move(oc));
  }
  std::sort(report.contention.begin(), report.contention.end(),
            [](const ObjectContention& a, const ObjectContention& b) {
              if (a.total_blocked != b.total_blocked)
                return a.total_blocked > b.total_blocked;
              return a.operations > b.operations;
            });

  const double total = std::max(1e-12, result.total.seconds_d());
  double running_area = 0.0;
  double runnable_area = 0.0;
  for (const core::Segment& s : result.segments) {
    if (s.state == core::SegState::kRunning)
      running_area += (s.end - s.start).seconds_d();
    if (s.state == core::SegState::kRunnable)
      runnable_area += (s.end - s.start).seconds_d();
  }
  report.avg_running = running_area / total;
  report.avg_runnable = runnable_area / total;

  for (const auto& [tid, st] : result.threads) {
    ThreadUtilization u;
    u.tid = tid;
    const trace::ThreadMeta* meta = source.find_thread(tid);
    if (meta != nullptr) u.name = source.strings.get(meta->name);
    const double lifetime =
        std::max<double>(1e-12, (st.exited_at - st.created_at).seconds_d());
    u.running_fraction = st.cpu_time.seconds_d() / lifetime;
    u.runnable_fraction = st.runnable_time.seconds_d() / lifetime;
    u.blocked_fraction = st.blocked_time.seconds_d() / lifetime;
    u.sleeping_fraction = st.sleeping_time.seconds_d() / lifetime;
    report.utilization.push_back(u);
  }
  return report;
}

std::string AnalysisReport::to_string() const {
  std::ostringstream os;
  os << strprintf("average parallelism: %.2f running, %.2f runnable\n",
                  avg_running, avg_runnable);
  os << "hottest objects:\n";
  std::size_t shown = 0;
  for (const ObjectContention& oc : contention) {
    if (shown++ == 5) break;
    if (oc.total_blocked.is_zero()) break;
    os << strprintf("  %-12s %6zu ops, %5zu blocking, %s blocked total "
                    "(max %s), %zu threads",
                    oc.name.c_str(), oc.operations, oc.blocking_operations,
                    oc.total_blocked.to_string().c_str(),
                    oc.longest_block.to_string().c_str(),
                    oc.distinct_threads);
    if (!oc.source_lines.empty()) {
      os << " — " << oc.source_lines.front();
      if (oc.source_lines.size() > 1)
        os << strprintf(" (+%zu more sites)", oc.source_lines.size() - 1);
    }
    os << '\n';
  }
  if (shown == 0) os << "  (nothing ever blocked)\n";
  return os.str();
}

}  // namespace vppb::viz
