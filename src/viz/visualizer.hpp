// The Visualizer (paper §3.3): presents a simulated execution as the
// parallelism graph and the execution flow graph, with zooming, interval
// selection, thread filtering/compression, event inspection ("popup"),
// same-thread and similar-event stepping, and source-line mapping.
//
// The paper's tool is a Motif GUI; this reproduction provides the full
// data model and navigation logic behind it, plus SVG and ASCII
// renderers (src/viz/svg.cpp, src/viz/ascii.cpp) in place of the
// windowing toolkit.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/result.hpp"
#include "trace/trace.hpp"

namespace vppb::viz {

using core::SimResult;
using trace::ThreadId;

/// The visible time interval.  Zooming keeps the left edge fixed, as the
/// paper describes ("the zoom keeps the left-most time fixed").
struct View {
  SimTime t0;
  SimTime t1;

  SimTime width() const { return t1 - t0; }
  bool contains(SimTime t) const { return t0 <= t && t <= t1; }
};

/// Everything the event popup window shows (paper §3.3).
struct EventInfo {
  // About the thread causing the event:
  ThreadId tid = 0;
  std::string thread_name;
  std::string start_func;   ///< function passed to thr_create
  SimTime thread_started;
  SimTime thread_ended;
  SimTime thread_working;   ///< time actually working
  SimTime thread_total;     ///< total incl. blocked/runnable time
  // About the event:
  std::string op;           ///< e.g. "thr_join"
  std::string object;       ///< e.g. "mutex#3" or "thread T4"
  std::int64_t outcome = 0;
  int cpu = -1;             ///< CPU it ran on in the simulated execution
  SimTime started;
  SimTime ended;
  SimTime duration;
  std::string source;       ///< "file.cpp:42" (empty if unrecorded)
};

class Visualizer {
 public:
  /// Binds a simulated execution to its source trace (for names and
  /// source locations).  Both must outlive the visualizer.
  Visualizer(const SimResult& result, const trace::Trace& source);

  const SimResult& result() const { return *result_; }
  const trace::Trace& source() const { return *source_; }

  // ---- view control ---------------------------------------------------

  const View& view() const { return view_; }
  void reset_view();
  /// Magnification in the paper's steps of 1.5x or 3x (any factor > 1).
  void zoom_in(double factor = 1.5);
  void zoom_out(double factor = 1.5);
  /// The parallelism-graph interval marking: the flow graph shows [a,b].
  void select_interval(SimTime a, SimTime b);

  // ---- thread display -------------------------------------------------

  std::vector<ThreadId> all_threads() const;
  const std::vector<ThreadId>& visible_threads() const { return visible_; }
  void show_all_threads();
  /// Manual selection from a list, as in the paper.
  void set_visible_threads(std::vector<ThreadId> threads);
  /// Automatic compression: hide threads with no activity in the view.
  void compress_threads();

  // ---- events ----------------------------------------------------------

  /// Events in display order (time, then thread).
  std::size_t event_count() const { return order_.size(); }
  const core::SimEvent& event(std::size_t idx) const;

  /// The event nearest to (tid, t) — a mouse click in the flow graph.
  std::optional<std::size_t> event_near(ThreadId tid, SimTime t) const;

  /// Select an event: it starts flashing and the view auto-scrolls to
  /// centre it (paper §3.3).
  void select_event(std::size_t idx);
  std::optional<std::size_t> selected_event() const { return selected_; }

  /// The popup contents for an event.
  EventInfo event_info(std::size_t idx) const;

  /// Stepping: previous/next event of the same thread.
  std::optional<std::size_t> next_event_same_thread(std::size_t idx) const;
  std::optional<std::size_t> prev_event_same_thread(std::size_t idx) const;

  /// Stepping: next/previous *similar* event — same synchronization
  /// object when the event has one (e.g. the next operation on the same
  /// mutex), otherwise the same event type.
  std::optional<std::size_t> next_similar_event(std::size_t idx) const;
  std::optional<std::size_t> prev_similar_event(std::size_t idx) const;

  /// Source mapping: "file:line" of the call that generated the event.
  std::string source_location(std::size_t idx) const;

 private:
  bool similar(const core::SimEvent& a, const core::SimEvent& b) const;

  const SimResult* result_;
  const trace::Trace* source_;
  View view_;
  std::vector<ThreadId> visible_;
  std::vector<std::size_t> order_;  ///< event indices sorted for display
  std::optional<std::size_t> selected_;
};

// ---- renderers --------------------------------------------------------

struct RenderOptions {
  int width = 960;
  int flow_row_height = 26;
  int parallelism_height = 120;
  bool include_legend = true;
};

/// The combined fig. 5 layout: parallelism graph above the flow graph.
std::string render_svg(const Visualizer& viz, const RenderOptions& opts);

/// Individual graphs.
std::string render_parallelism_svg(const Visualizer& viz,
                                   const RenderOptions& opts);
std::string render_flow_svg(const Visualizer& viz, const RenderOptions& opts);

/// Terminal renderings (one row per thread; '=' running, '.' runnable,
/// ' ' blocked, event symbols overlaid).
std::string render_flow_ascii(const Visualizer& viz, int columns = 100);
std::string render_parallelism_ascii(const Visualizer& viz, int columns = 100,
                                     int rows = 8);

/// The LWP gantt: one row per simulated LWP showing which thread it
/// carries (digits/letters cycle through thread ids) — uppercase while
/// the LWP holds a CPU, lowercase while it waits for one, '.' idle.
/// Makes the two-level threads->LWPs->CPUs multiplexing visible.
std::string render_lwp_ascii(const Visualizer& viz, int columns = 100);

/// SVG form of the LWP gantt: coloured blocks per carried thread,
/// full-saturation while on a CPU, faded while waiting for one.
std::string render_lwp_svg(const Visualizer& viz, const RenderOptions& opts);

}  // namespace vppb::viz
