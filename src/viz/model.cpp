#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"
#include "viz/visualizer.hpp"

namespace vppb::viz {

Visualizer::Visualizer(const SimResult& result, const trace::Trace& source)
    : result_(&result), source_(&source) {
  order_.resize(result.events.size());
  for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = i;
  std::sort(order_.begin(), order_.end(), [&result](std::size_t a,
                                                    std::size_t b) {
    const auto& ea = result.events[a];
    const auto& eb = result.events[b];
    if (ea.at != eb.at) return ea.at < eb.at;
    if (ea.tid != eb.tid) return ea.tid < eb.tid;
    return a < b;
  });
  reset_view();
  show_all_threads();
}

void Visualizer::reset_view() {
  view_ = View{SimTime::zero(),
               result_->total.is_zero() ? SimTime::micros(1) : result_->total};
}

void Visualizer::zoom_in(double factor) {
  VPPB_CHECK_MSG(factor > 1.0, "zoom factor must exceed 1");
  // Left-most time stays fixed (paper §3.3).
  view_.t1 = view_.t0 + view_.width().scaled(1.0 / factor);
  if (view_.t1 <= view_.t0) view_.t1 = view_.t0 + SimTime::nanos(1);
}

void Visualizer::zoom_out(double factor) {
  VPPB_CHECK_MSG(factor > 1.0, "zoom factor must exceed 1");
  view_.t1 = view_.t0 + view_.width().scaled(factor);
  if (view_.t1 > result_->total) view_.t1 = result_->total;
  if (view_.t1 <= view_.t0) view_.t1 = result_->total;
}

void Visualizer::select_interval(SimTime a, SimTime b) {
  VPPB_CHECK_MSG(a < b, "empty interval selected");
  view_ = View{std::max(SimTime::zero(), a), std::min(result_->total, b)};
}

std::vector<ThreadId> Visualizer::all_threads() const {
  std::vector<ThreadId> out;
  out.reserve(result_->threads.size());
  for (const auto& [tid, stats] : result_->threads) out.push_back(tid);
  return out;
}

void Visualizer::show_all_threads() { visible_ = all_threads(); }

void Visualizer::set_visible_threads(std::vector<ThreadId> threads) {
  visible_ = std::move(threads);
}

void Visualizer::compress_threads() {
  // Keep only threads active during the shown interval (paper §3.3:
  // "the compression only shows the threads active during the time
  // interval shown in the execution flow graph").
  std::vector<ThreadId> active;
  for (const ThreadId tid : all_threads()) {
    bool is_active = false;
    for (const core::Segment& s : result_->segments) {
      if (s.tid == tid &&
          (s.state == core::SegState::kRunning ||
           s.state == core::SegState::kRunnable) &&
          s.start < view_.t1 && s.end > view_.t0) {
        is_active = true;
        break;
      }
    }
    if (is_active) active.push_back(tid);
  }
  visible_ = std::move(active);
}

const core::SimEvent& Visualizer::event(std::size_t idx) const {
  VPPB_CHECK_MSG(idx < order_.size(), "event index out of range: " << idx);
  return result_->events[order_[idx]];
}

std::optional<std::size_t> Visualizer::event_near(ThreadId tid,
                                                  SimTime t) const {
  std::optional<std::size_t> best;
  std::int64_t best_dist = 0;
  for (std::size_t i = 0; i < order_.size(); ++i) {
    const auto& e = event(i);
    if (e.tid != tid) continue;
    const std::int64_t dist = std::abs(e.at.ns() - t.ns());
    if (!best || dist < best_dist) {
      best = i;
      best_dist = dist;
    }
  }
  return best;
}

void Visualizer::select_event(std::size_t idx) {
  VPPB_CHECK_MSG(idx < order_.size(), "event index out of range: " << idx);
  selected_ = idx;
  // Auto-scroll: centre the view on the event, keeping the width.
  const SimTime width = view_.width();
  SimTime t0 = event(idx).at - width / 2;
  if (t0 < SimTime::zero()) t0 = SimTime::zero();
  SimTime t1 = t0 + width;
  if (t1 > result_->total) {
    t1 = result_->total;
    t0 = t1 > width ? t1 - width : SimTime::zero();
  }
  view_ = View{t0, t1};
}

EventInfo Visualizer::event_info(std::size_t idx) const {
  const core::SimEvent& e = event(idx);
  EventInfo info;
  info.tid = e.tid;
  const trace::ThreadMeta* meta = source_->find_thread(e.tid);
  if (meta != nullptr) {
    info.thread_name = source_->strings.get(meta->name);
    info.start_func = source_->strings.get(meta->start_func);
  }
  auto it = result_->threads.find(e.tid);
  if (it != result_->threads.end()) {
    const core::ThreadStats& st = it->second;
    info.thread_started = st.created_at;
    info.thread_ended = st.exited_at;
    info.thread_working = st.cpu_time;
    info.thread_total = st.exited_at - st.created_at;
  }
  info.op = std::string(trace::op_name(e.op));
  switch (e.obj.kind) {
    case trace::ObjKind::kThread:
      info.object = e.obj.id == 0 ? std::string("any thread")
                                  : strprintf("thread T%u", e.obj.id);
      break;
    case trace::ObjKind::kNone:
    case trace::ObjKind::kMark:
      info.object = "";
      break;
    default:
      info.object = strprintf("%s#%u",
                              std::string(obj_kind_name(e.obj.kind)).c_str(),
                              e.obj.id);
      break;
  }
  info.outcome = e.outcome;
  info.cpu = e.cpu;
  info.started = e.at;
  info.ended = e.done;
  info.duration = e.done - e.at;
  info.source = source_location(idx);
  return info;
}

std::optional<std::size_t> Visualizer::next_event_same_thread(
    std::size_t idx) const {
  const ThreadId tid = event(idx).tid;
  for (std::size_t i = idx + 1; i < order_.size(); ++i) {
    if (event(i).tid == tid) return i;
  }
  return std::nullopt;
}

std::optional<std::size_t> Visualizer::prev_event_same_thread(
    std::size_t idx) const {
  const ThreadId tid = event(idx).tid;
  for (std::size_t i = idx; i-- > 0;) {
    if (event(i).tid == tid) return i;
  }
  return std::nullopt;
}

bool Visualizer::similar(const core::SimEvent& a,
                         const core::SimEvent& b) const {
  // "The next event caused by the same event type or variable, e.g. the
  // next operation on the same mutex variable" (paper §3.3).
  if (a.obj.kind != trace::ObjKind::kNone &&
      a.obj.kind != trace::ObjKind::kMark) {
    return a.obj == b.obj;
  }
  return a.op == b.op;
}

std::optional<std::size_t> Visualizer::next_similar_event(
    std::size_t idx) const {
  const auto& ref = event(idx);
  for (std::size_t i = idx + 1; i < order_.size(); ++i) {
    if (similar(ref, event(i))) return i;
  }
  return std::nullopt;
}

std::optional<std::size_t> Visualizer::prev_similar_event(
    std::size_t idx) const {
  const auto& ref = event(idx);
  for (std::size_t i = idx; i-- > 0;) {
    if (similar(ref, event(i))) return i;
  }
  return std::nullopt;
}

std::string Visualizer::source_location(std::size_t idx) const {
  const core::SimEvent& e = event(idx);
  if (e.loc >= source_->locations.size()) return {};
  const trace::SourceLoc& loc = source_->locations[e.loc];
  if (loc.file == 0) return {};
  return strprintf("%s:%u", source_->strings.get(loc.file).c_str(), loc.line);
}

}  // namespace vppb::viz
