// Small synthetic workloads with known parallel structure, used by the
// tests, the ablation benches, and the examples.
#pragma once

#include "util/time.hpp"

namespace vppb::workloads {

/// N independent workers, each computing `work`: ideal speed-up = N.
void fork_join(int threads, SimTime work);

/// A software pipeline: `stages` threads connected by semaphores;
/// `items` flow through, each stage charging `stage_cost` per item.
/// Steady-state speed-up ≈ min(stages, CPUs).
void pipeline(int stages, int items, SimTime stage_cost);

/// Readers/writer mix on one rwlock: `readers` threads make `rounds`
/// read-locked computations of `read_cost` while one writer interposes
/// `writes` write-locked sections of `write_cost`.
void readers_writer(int readers, int rounds, SimTime read_cost, int writes,
                    SimTime write_cost);

/// N workers where worker i computes work · (1 + skew·i / (N-1)):
/// the makespan is the most-skewed worker (load imbalance demo).
void imbalanced(int threads, SimTime work, double skew);

/// Two priority classes contending for the CPUs: `high` threads at user
/// priority 10, `low` threads at 0, each computing `work`.
void priority_classes(int high, int low, SimTime work);

}  // namespace vppb::workloads
