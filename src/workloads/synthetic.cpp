#include "workloads/synthetic.hpp"

#include <memory>
#include <vector>

#include "solaris/program.hpp"
#include "solaris/solaris.hpp"
#include "util/error.hpp"

namespace vppb::workloads {

void fork_join(int threads, SimTime work) {
  VPPB_CHECK_MSG(threads >= 1, "need a worker");
  for (int i = 0; i < threads; ++i) {
    sol::thr_create_fn(
        [work]() -> void* {
          sol::compute(work);
          return nullptr;
        },
        0, nullptr, "fork_join_worker");
  }
  sol::join_all();
}

void pipeline(int stages, int items, SimTime stage_cost) {
  VPPB_CHECK_MSG(stages >= 1 && items >= 1, "empty pipeline");
  // queues[s] counts items available to stage s; stage s consumes from
  // queues[s] and feeds queues[s+1].
  auto queues = std::make_shared<std::vector<std::unique_ptr<sol::Semaphore>>>();
  for (int s = 0; s <= stages; ++s)
    queues->push_back(std::make_unique<sol::Semaphore>(0u));

  for (int s = 0; s < stages; ++s) {
    sol::thr_create_fn(
        [queues, s, items, stage_cost]() -> void* {
          for (int k = 0; k < items; ++k) {
            (*queues)[static_cast<std::size_t>(s)]->wait();
            sol::compute(stage_cost);
            (*queues)[static_cast<std::size_t>(s) + 1]->post();
          }
          return nullptr;
        },
        0, nullptr, "pipeline_stage");
  }
  for (int k = 0; k < items; ++k) (*queues)[0]->post();
  for (int k = 0; k < items; ++k)
    (*queues)[static_cast<std::size_t>(stages)]->wait();
  sol::join_all();
}

void readers_writer(int readers, int rounds, SimTime read_cost, int writes,
                    SimTime write_cost) {
  auto rw = std::make_shared<sol::RwLock>();
  for (int r = 0; r < readers; ++r) {
    sol::thr_create_fn(
        [rw, rounds, read_cost]() -> void* {
          for (int k = 0; k < rounds; ++k) {
            rw->rdlock();
            sol::compute(read_cost);
            rw->unlock();
          }
          return nullptr;
        },
        0, nullptr, "reader");
  }
  sol::thr_create_fn(
      [rw, writes, write_cost]() -> void* {
        for (int k = 0; k < writes; ++k) {
          rw->wrlock();
          sol::compute(write_cost);
          rw->unlock();
          sol::thr_yield();
        }
        return nullptr;
      },
      0, nullptr, "writer");
  sol::join_all();
}

void imbalanced(int threads, SimTime work, double skew) {
  VPPB_CHECK_MSG(threads >= 1, "need a worker");
  for (int i = 0; i < threads; ++i) {
    const double factor =
        threads == 1 ? 1.0
                     : 1.0 + skew * static_cast<double>(i) /
                               static_cast<double>(threads - 1);
    sol::thr_create_fn(
        [work, factor]() -> void* {
          sol::compute(work.scaled(factor));
          return nullptr;
        },
        0, nullptr, "imbalanced_worker");
  }
  sol::join_all();
}

void priority_classes(int high, int low, SimTime work) {
  std::vector<sol::thread_t> tids;
  for (int i = 0; i < high + low; ++i) {
    sol::thread_t tid = 0;
    sol::thr_create_fn(
        [work]() -> void* {
          sol::compute(work);
          return nullptr;
        },
        0, &tid, i < high ? "high_prio" : "low_prio");
    sol::thr_setprio(tid, i < high ? 10 : 0);
    tids.push_back(tid);
  }
  sol::join_all();
}

}  // namespace vppb::workloads
