// The producer-consumer case study of paper §5: 150 producers insert
// ten items each, 75 consumers drain the buffer; a semaphore counts the
// items.  The naive version guards insertion AND fetching with one
// mutex — the bottleneck the Visualizer pinpoints (the program runs
// only 2.2% faster on 8 CPUs).  The tuned version splits the storage
// into 100 buffers with their own locks, separate insert/fetch mutexes,
// and one briefly-held mutex to pick a buffer — and reaches ~7.75x.
#pragma once

#include <cstdint>

namespace vppb::workloads {

struct ProdConsParams {
  int producers = 150;
  int consumers = 75;
  int items_per_producer = 10;
  int buffers = 100;  ///< tuned version only
  /// Declared compute per item operation, microseconds.  The insert
  /// and fetch work dominates and sits inside the buffer locks, which
  /// is what makes the naive version ~fully serial (paper: only 2.2%
  /// faster on 8 CPUs).
  double produce_cost_us = 15.0;
  double insert_cost_us = 250.0;
  double fetch_cost_us = 250.0;
  double consume_cost_us = 15.0;
  double pick_cost_us = 5.0;  ///< tuned version: choosing the buffer
};

/// One mutex for the whole buffer system (paper fig. 6).
void prodcons_naive(const ProdConsParams& p);

/// 100 buffers with private locks (paper fig. 7).
void prodcons_tuned(const ProdConsParams& p);

}  // namespace vppb::workloads
