// The programs the paper could NOT validate with, §4: Barnes, Radiosity,
// Cholesky and FMM "spin on a variable, and since the thread never
// yields the CPU, no other thread could possibly change the value";
// Raytrace and Volrend distribute work by task stealing, and on one LWP
// "only one thread steals all tasks".
//
// Reproducing the *exclusions* is part of reproducing the evaluation:
// these workloads demonstrate both failure modes against this
// implementation (the first aborts via the livelock horizon; the second
// records fine but with the degenerate work distribution the paper
// describes).
#pragma once

#include <vector>

#include "util/time.hpp"

namespace vppb::workloads {

/// Barnes-style busy-wait synchronization: worker 0 publishes a flag
/// that the other workers spin on without any thread-library call.
/// On the one-LWP runtime this livelocks (detected via the horizon).
void spin_barrier_program(int threads, SimTime work);

/// Raytrace-style task stealing: `tasks` tasks seeded to thread 0's
/// queue; idle workers steal.  Returns how many tasks each worker
/// executed — on one LWP expect nearly all on one thread.
std::vector<int> task_stealing_program(int threads, int tasks,
                                       SimTime task_cost);

}  // namespace vppb::workloads
