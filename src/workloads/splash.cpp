#include "workloads/splash.hpp"

#include <memory>

#include "solaris/program.hpp"
#include "solaris/solaris.hpp"
#include "util/error.hpp"

namespace vppb::workloads {
namespace {

using sol::Barrier;
using sol::Mutex;
using sol::ScopedLock;
using sol::compute;

SimTime scaled_us(double us, double scale) {
  return SimTime::nanos(static_cast<std::int64_t>(us * 1000.0 * scale));
}

/// Spawns `n` workers running `body(worker_index)` and joins them all.
/// Matches the SPLASH pattern: main is the coordinator, workers are the
/// per-processor threads.
void run_workers(int n, const std::function<void(int)>& body,
                 const char* name) {
  VPPB_CHECK_MSG(n >= 1, "need at least one worker");
  for (int i = 0; i < n; ++i) {
    sol::thr_create_fn(
        [&body, i]() -> void* {
          body(i);
          return nullptr;
        },
        0, nullptr, name);
  }
  sol::join_all();
}

}  // namespace

void ocean(const SplashParams& p) {
  // 514x514-style grid: rows distributed contiguously; threads with the
  // remainder rows and the grid boundary do extra work, which is the
  // structural imbalance behind Ocean's good-but-not-perfect scaling.
  const int rows = 258;
  const int iterations = 18;
  const double row_cost_us = 240.0;        // one red or black sweep of a row
  const double reduce_cost_us = 1200.0;    // serial convergence bookkeeping
  const double boundary_extra_us = 1800.0; // boundary-condition rows

  auto barrier = std::make_shared<Barrier>(p.threads);
  auto err_mutex = std::make_shared<Mutex>();
  auto run = [=](int me) {
    const int base = rows / p.threads;
    const int extra = me < rows % p.threads ? 1 : 0;
    const int my_rows = base + extra;
    const bool has_boundary = me == 0 || me == p.threads - 1;
    for (int it = 0; it < iterations; ++it) {
      // Red sweep.
      compute(scaled_us(row_cost_us * my_rows, p.scale));
      if (has_boundary) compute(scaled_us(boundary_extra_us, p.scale));
      barrier->arrive();
      // Black sweep.
      compute(scaled_us(row_cost_us * my_rows, p.scale));
      if (has_boundary) compute(scaled_us(boundary_extra_us, p.scale));
      barrier->arrive();
      // Convergence reduction: parallel partial error, serialized merge.
      compute(scaled_us(row_cost_us * my_rows * 0.12, p.scale));
      {
        ScopedLock lock(*err_mutex);
        compute(scaled_us(reduce_cost_us / p.threads + 6.0, p.scale));
      }
      barrier->arrive();
    }
  };
  run_workers(p.threads, run, "ocean_worker");
}

void water_spatial(const SplashParams& p) {
  // 512-molecule cell-list dynamics: big force phase, small update
  // phase, tiny mutex-protected global-energy merge.  Almost perfectly
  // parallel, like the paper's 7.67x on 8 CPUs.
  const int molecules = 512;
  const int steps = 12;
  const double force_cost_us = 140.0;   // per molecule
  const double update_cost_us = 25.0;   // per molecule
  const double merge_cost_us = 100.0;   // per thread, serialized

  auto barrier = std::make_shared<Barrier>(p.threads);
  auto energy_mutex = std::make_shared<Mutex>();
  auto run = [=](int me) {
    const int base = molecules / p.threads;
    const int mine = base + (me < molecules % p.threads ? 1 : 0);
    for (int s = 0; s < steps; ++s) {
      compute(scaled_us(force_cost_us * mine, p.scale));
      barrier->arrive();
      compute(scaled_us(update_cost_us * mine, p.scale));
      {
        ScopedLock lock(*energy_mutex);
        compute(scaled_us(merge_cost_us, p.scale));
      }
      barrier->arrive();
    }
  };
  run_workers(p.threads, run, "water_worker");
}

void fft(const SplashParams& p) {
  // Six-step 4M-point-style FFT.  The row FFTs parallelize; the
  // bit-reversal setup and the three transposes are dominated by the
  // coordinator (memory-bound all-to-all in the original, serial here),
  // giving the ~29% serial fraction behind the paper's 1.55/2.14/2.62
  // speed-up row.
  const int fft_phases = 3;
  const double parallel_phase_us = 52000.0;  // total row-FFT work per phase
  const double serial_setup_us = 26000.0;    // twiddle + bit-reversal
  const double serial_transpose_us = 14500.0;

  auto barrier = std::make_shared<Barrier>(p.threads + 1);
  for (int i = 0; i < p.threads; ++i) {
    sol::thr_create_fn(
        [=]() -> void* {
          for (int phase = 0; phase < fft_phases; ++phase) {
            barrier->arrive();  // wait for the coordinator's transpose
            compute(scaled_us(parallel_phase_us / p.threads, p.scale));
            barrier->arrive();  // phase done
          }
          return nullptr;
        },
        0, nullptr, "fft_worker");
  }
  compute(scaled_us(serial_setup_us, p.scale));
  for (int phase = 0; phase < fft_phases; ++phase) {
    barrier->arrive();  // release the workers into the phase
    barrier->arrive();  // wait for them
    compute(scaled_us(serial_transpose_us, p.scale));
  }
  sol::join_all();
}

void radix(const SplashParams& p) {
  // 16M-key / radix-1024 style sort: three passes of parallel histogram
  // + tiny serial prefix + parallel permute.  Near-linear, like the
  // paper's 7.79x on 8 CPUs.
  const int passes = 3;
  const double histogram_total_us = 26000.0;  // per pass, split over threads
  const double permute_total_us = 34000.0;
  const double prefix_us = 260.0;             // 1024 buckets, coordinator

  auto barrier = std::make_shared<Barrier>(p.threads);
  auto run = [=](int me) {
    for (int pass = 0; pass < passes; ++pass) {
      compute(scaled_us(histogram_total_us / p.threads, p.scale));
      barrier->arrive();
      if (me == 0) compute(scaled_us(prefix_us, p.scale));
      barrier->arrive();
      compute(scaled_us(permute_total_us / p.threads, p.scale));
      barrier->arrive();
    }
  };
  run_workers(p.threads, run, "radix_worker");
}

void lu(const SplashParams& p) {
  // Blocked right-looking LU on a 16x16 block grid (768x768, 48x48
  // blocks in the paper's setup; 16x16 keeps the trace compact with the
  // same shape).  Step k: factor the diagonal block (its owner only),
  // update the perimeter row/column, then the (nb-k-1)^2 interior
  // blocks, 2D-scattered over threads.  Parallelism shrinks with k,
  // which is what caps the speed-up near 4.8 on 8 CPUs.
  const int nb = 16;
  const double diag_cost_us = 1100.0;
  const double perimeter_cost_us = 550.0;  // per block
  const double interior_cost_us = 340.0;   // per block

  auto barrier = std::make_shared<Barrier>(p.threads);
  auto run = [=](int me) {
    for (int k = 0; k < nb; ++k) {
      if (k % p.threads == me) compute(scaled_us(diag_cost_us, p.scale));
      barrier->arrive();
      // Perimeter: blocks (k, j) and (i, k), i,j > k, round-robin.
      int perim = 0;
      for (int j = k + 1; j < nb; ++j) {
        if (j % p.threads == me) ++perim;      // row block
        if ((j + 1) % p.threads == me) ++perim;  // column block
      }
      if (perim > 0) compute(scaled_us(perimeter_cost_us * perim, p.scale));
      barrier->arrive();
      // Interior: 2D scatter of (nb-k-1)^2 blocks.
      int mine = 0;
      for (int i = k + 1; i < nb; ++i) {
        for (int j = k + 1; j < nb; ++j) {
          if ((i * nb + j) % p.threads == me) ++mine;
        }
      }
      if (mine > 0) compute(scaled_us(interior_cost_us * mine, p.scale));
      barrier->arrive();
    }
  };
  run_workers(p.threads, run, "lu_worker");
}

std::vector<SplashApp> splash_suite() {
  return {
      {"Ocean", ocean},
      {"Water-spatial", water_spatial},
      {"FFT", fft},
      {"Radix", radix},
      {"LU", lu},
  };
}

}  // namespace vppb::workloads
