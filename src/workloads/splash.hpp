// From-scratch kernels with the thread/synchronization structure of the
// five SPLASH-2 programs the paper validates with (§4): Ocean,
// Water-Spatial, FFT, Radix and LU.  Each creates one worker thread per
// "processor" (as SPLASH does), phases are separated by the
// mutex+cond_broadcast barrier, and compute demand is declared through
// sol::compute with per-kernel cost models whose serial fractions and
// imbalance reproduce the paper's measured speed-up shapes:
//
//   Radix / Water-Spatial  near-linear (7.8 / 7.7 on 8 CPUs)
//   Ocean                  good with boundary imbalance (~6.6)
//   LU                     moderate; parallelism shrinks as the trailing
//                          submatrix empties (~4.8)
//   FFT                    clearly sublinear (~2.6): transpose phases
//                          with a large serial fraction (Amdahl ~29%)
//
// The paper's data-set sizes (514x514 Ocean, 4M-point FFT, ...) are far
// beyond what a deterministic virtual-clock trace needs; `scale` shrinks
// the declared compute while keeping the structure (phase counts, block
// counts, barrier pattern) intact.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace vppb::workloads {

struct SplashParams {
  int threads = 8;
  /// Problem-scale multiplier for declared compute (1.0 = defaults).
  double scale = 1.0;
};

/// Red-black Gauss-Seidel grid solver with per-iteration barriers and a
/// mutex-protected convergence reduction (Ocean, 514x514-grid style).
void ocean(const SplashParams& p);

/// Cell-based molecular dynamics steps: forces, update, global energy
/// accumulation under a mutex (Water-Spatial, 512 molecules style).
void water_spatial(const SplashParams& p);

/// Six-step FFT: serial twiddle/bit-reversal setup and serial transpose
/// coordination between parallel row-FFT phases (FFT, 4M points style).
void fft(const SplashParams& p);

/// Multi-pass counting sort: parallel histogram, serial prefix sum,
/// parallel permutation (Radix, 16M keys / radix 1024 style).
void radix(const SplashParams& p);

/// Blocked right-looking LU with a 16x16 block grid: diagonal factor,
/// perimeter, and shrinking interior updates (LU, contiguous style).
void lu(const SplashParams& p);

/// A registry entry for the validation suite.
struct SplashApp {
  std::string name;
  std::function<void(const SplashParams&)> run;
};

/// The five applications of the paper's Table 1, in its row order.
std::vector<SplashApp> splash_suite();

}  // namespace vppb::workloads
