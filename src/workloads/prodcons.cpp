#include "workloads/prodcons.hpp"

#include <memory>
#include <vector>

#include "solaris/program.hpp"
#include "solaris/solaris.hpp"
#include "util/error.hpp"

namespace vppb::workloads {
namespace {

SimTime us(double v) {
  return SimTime::nanos(static_cast<std::int64_t>(v * 1000.0));
}

int items_per_consumer(const ProdConsParams& p) {
  const int total = p.producers * p.items_per_producer;
  VPPB_CHECK_MSG(p.consumers > 0 && total % p.consumers == 0,
                 "consumers must evenly drain the buffer");
  return total / p.consumers;
}

}  // namespace

void prodcons_naive(const ProdConsParams& p) {
  const int per_consumer = items_per_consumer(p);
  auto items = std::make_shared<sol::Semaphore>(0u);
  auto buffer_mutex = std::make_shared<sol::Mutex>();

  for (int c = 0; c < p.consumers; ++c) {
    sol::thr_create_fn(
        [=]() -> void* {
          for (int k = 0; k < per_consumer; ++k) {
            items->wait();
            {
              // The hot mutex: every fetch serializes here (fig. 6's
              // downward arrows all point at this one lock).
              sol::ScopedLock lock(*buffer_mutex);
              sol::compute(us(p.fetch_cost_us));
            }
            sol::compute(us(p.consume_cost_us));
          }
          return nullptr;
        },
        0, nullptr, "consumer");
  }
  for (int prod = 0; prod < p.producers; ++prod) {
    sol::thr_create_fn(
        [=]() -> void* {
          for (int k = 0; k < p.items_per_producer; ++k) {
            sol::compute(us(p.produce_cost_us));
            {
              sol::ScopedLock lock(*buffer_mutex);
              sol::compute(us(p.insert_cost_us));
            }
            items->post();
          }
          return nullptr;
        },
        0, nullptr, "producer");
  }
  sol::join_all();
}

void prodcons_tuned(const ProdConsParams& p) {
  const int per_consumer = items_per_consumer(p);
  struct Shared {
    sol::Semaphore items{0u};
    sol::Mutex pick_insert;  // "which buffer to insert in": held briefly
    sol::Mutex pick_fetch;   // separate mutex for fetching (paper §5)
    std::vector<std::unique_ptr<sol::Mutex>> buffer_locks;
    int insert_cursor = 0;
    int fetch_cursor = 0;
  };
  auto shared = std::make_shared<Shared>();
  shared->buffer_locks.reserve(static_cast<std::size_t>(p.buffers));
  for (int b = 0; b < p.buffers; ++b)
    shared->buffer_locks.push_back(std::make_unique<sol::Mutex>());

  for (int c = 0; c < p.consumers; ++c) {
    sol::thr_create_fn(
        [=]() -> void* {
          for (int k = 0; k < per_consumer; ++k) {
            shared->items.wait();
            int buffer = 0;
            {
              // Small critical section: only picking the buffer.
              sol::ScopedLock pick(shared->pick_fetch);
              buffer = shared->fetch_cursor;
              shared->fetch_cursor = (shared->fetch_cursor + 1) % p.buffers;
              sol::compute(us(p.pick_cost_us));
            }
            {
              sol::ScopedLock lock(*shared->buffer_locks[
                  static_cast<std::size_t>(buffer)]);
              sol::compute(us(p.fetch_cost_us));
            }
            sol::compute(us(p.consume_cost_us));
          }
          return nullptr;
        },
        0, nullptr, "consumer");
  }
  for (int prod = 0; prod < p.producers; ++prod) {
    sol::thr_create_fn(
        [=]() -> void* {
          for (int k = 0; k < p.items_per_producer; ++k) {
            sol::compute(us(p.produce_cost_us));
            int buffer = 0;
            {
              sol::ScopedLock pick(shared->pick_insert);
              buffer = shared->insert_cursor;
              shared->insert_cursor = (shared->insert_cursor + 1) % p.buffers;
              sol::compute(us(p.pick_cost_us));
            }
            {
              sol::ScopedLock lock(*shared->buffer_locks[
                  static_cast<std::size_t>(buffer)]);
              sol::compute(us(p.insert_cost_us));
            }
            shared->items.post();
          }
          return nullptr;
        },
        0, nullptr, "producer");
  }
  sol::join_all();
}

}  // namespace vppb::workloads
