#include "workloads/excluded.hpp"

#include <memory>

#include "solaris/program.hpp"
#include "solaris/solaris.hpp"
#include "util/error.hpp"

namespace vppb::workloads {

void spin_barrier_program(int threads, SimTime work) {
  auto flag = std::make_shared<bool>(false);
  for (int i = 1; i < threads; ++i) {
    sol::thr_create_fn(
        [flag, work]() -> void* {
          // The Barnes/Radiosity pattern: spin on an ordinary variable.
          // No thread-library call in the loop, so on one LWP the
          // publisher never runs (paper §4).  compute() only advances
          // the spinner's own clock — the runtime's livelock horizon is
          // what ends this.
          while (!*flag) sol::compute(SimTime::micros(10));
          sol::compute(work);
          return nullptr;
        },
        0, nullptr, "spinner");
  }
  sol::thr_create_fn(
      [flag, work]() -> void* {
        sol::compute(work);
        *flag = true;  // nobody will ever see this on one LWP
        return nullptr;
      },
      0, nullptr, "publisher");
  sol::join_all();
}

std::vector<int> task_stealing_program(int threads, int tasks,
                                       SimTime task_cost) {
  VPPB_CHECK_MSG(threads >= 1, "need a worker");
  struct Shared {
    sol::Mutex lock;
    std::vector<int> queue_depth;   // tasks waiting per worker
    std::vector<int> executed;      // tasks run per worker
    int remaining;
  };
  auto shared = std::make_shared<Shared>();
  shared->queue_depth.assign(static_cast<std::size_t>(threads), 0);
  shared->executed.assign(static_cast<std::size_t>(threads), 0);
  shared->queue_depth[0] = tasks;  // all work seeded to worker 0
  shared->remaining = tasks;

  for (int me = 0; me < threads; ++me) {
    sol::thr_create_fn(
        [shared, me, threads, task_cost]() -> void* {
          for (;;) {
            int victim = -1;
            {
              sol::ScopedLock guard(shared->lock);
              if (shared->remaining == 0) return nullptr;
              // Own queue first, then steal from anyone (the
              // Raytrace/Volrend policy).
              if (shared->queue_depth[static_cast<std::size_t>(me)] > 0) {
                victim = me;
              } else {
                for (int v = 0; v < threads; ++v) {
                  if (shared->queue_depth[static_cast<std::size_t>(v)] > 0) {
                    victim = v;
                    break;
                  }
                }
              }
              if (victim < 0) return nullptr;  // nothing left to steal
              --shared->queue_depth[static_cast<std::size_t>(victim)];
              --shared->remaining;
              ++shared->executed[static_cast<std::size_t>(me)];
            }
            sol::compute(task_cost);
          }
        },
        0, nullptr, "stealing_worker");
  }
  sol::join_all();
  return shared->executed;
}

}  // namespace vppb::workloads
