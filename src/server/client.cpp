#include "server/client.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <thread>

#include "util/error.hpp"

namespace vppb::server {
namespace {

/// xorshift64*: tiny, deterministic, good enough to decorrelate backoff
/// sleeps — this is jitter, not cryptography.
std::uint64_t next_rand(std::uint64_t& state) {
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 2685821657736338717ULL;
}

/// Decorrelated jitter (the "DecorrelatedJitter" scheme): each sleep is
/// uniform in [base, prev * 3], capped.  Spreads concurrent retriers
/// apart instead of letting them re-collide in synchronized waves.
std::int64_t next_sleep_ms(std::int64_t prev_ms, const RetryPolicy& p,
                           std::uint64_t& rng) {
  const std::int64_t lo = p.base_ms;
  const std::int64_t hi = std::max(lo, std::min(p.cap_ms, prev_ms * 3));
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_rand(rng) % span);
}

}  // namespace

Client Client::connect_unix(const std::string& path,
                            int connect_timeout_ms) {
  Client c(util::connect_unix(path, connect_timeout_ms),
           EndpointKind::kUnix, path, 0);
  c.connect_timeout_ms_ = connect_timeout_ms;
  return c;
}

Client Client::connect_tcp(std::uint16_t port) {
  // Ambient key: a local tool pointed at an authenticated loopback
  // daemon just exports VPPB_AUTH_KEY and keeps its call sites.
  return connect_tcp(std::string(), port, load_auth_key(std::string()), 0);
}

Client Client::connect_tcp(const std::string& host, std::uint16_t port,
                           const std::string& auth_key,
                           int connect_timeout_ms) {
  Client c(util::connect_tcp(host, port, connect_timeout_ms),
           EndpointKind::kTcp, "", port);
  c.host_ = host;
  c.auth_key_ = auth_key;
  c.connect_timeout_ms_ = connect_timeout_ms;
  AuthConfig cfg;
  cfg.key = auth_key;
  if (connect_timeout_ms > 0) cfg.handshake_timeout_ms = connect_timeout_ms;
  auth_connect(c.sock_, cfg);
  return c;
}

void Client::reconnect() {
  if (kind_ == EndpointKind::kUnix) {
    sock_ = util::connect_unix(path_, connect_timeout_ms_);
    return;
  }
  sock_ = util::connect_tcp(host_, port_, connect_timeout_ms_);
  AuthConfig cfg;
  cfg.key = auth_key_;
  if (connect_timeout_ms_ > 0) cfg.handshake_timeout_ms = connect_timeout_ms_;
  auth_connect(sock_, cfg);
}

Response Client::call(const Request& req) {
  write_frame(sock_, encode(req));
  std::vector<std::uint8_t> payload;
  if (!read_frame(sock_, payload))
    throw Error("server closed the connection before responding");
  return decode_response(payload);
}

Response Client::call_retry(const Request& req, RetryPolicy& policy) {
  std::uint64_t rng = policy.seed ? policy.seed : 1;
  std::int64_t prev_sleep = policy.base_ms;
  std::int64_t min_sleep = 0;  ///< retry-after hint from a quota rejection
  Response last;
  bool have_response = false;
  std::exception_ptr last_err;
  const auto t0 = std::chrono::steady_clock::now();
  const int attempts = std::max(1, policy.max_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::int64_t ms = next_sleep_ms(prev_sleep, policy, rng);
      prev_sleep = ms;
      ms = std::max(ms, min_sleep);
      min_sleep = 0;
      // The backoff schedule must fit inside the request's own deadline:
      // sleeping past it guarantees every further attempt comes back
      // kDeadlineExceeded, a double-spend of a budget already gone.
      if (req.deadline_ms > 0) {
        const std::int64_t elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - t0)
                .count();
        const std::int64_t remaining = req.deadline_ms - elapsed;
        if (remaining <= 0) break;  // budget spent: report what we have
        ms = std::min(ms, remaining);
      }
      policy.slept_ms += ms;
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    }
    try {
      if (policy.request_timeout_ms > 0)
        sock_.set_recv_timeout(policy.request_timeout_ms);
      last = call(req);
      have_response = true;
    } catch (const AuthError&) {
      // Definitive: the same key fails the same way on every retry.
      throw;
    } catch (const Error&) {
      // Transport failure (dropped connection, timeout, torn frame):
      // the connection state is unknown — a fresh one is the only safe
      // way to retry.  On the last attempt, let the error surface.
      if (attempt + 1 >= attempts) throw;
      last_err = std::current_exception();
      try {
        reconnect();
      } catch (const AuthError&) {
        throw;  // typed rejection, not an outage — retrying cannot help
      } catch (const Error&) {
        continue;  // endpoint still down; back off and try again
      }
      continue;
    }
    if (last.status != Status::kOverloaded &&
        last.status != Status::kQuotaExceeded)
      return last;
    // Overloaded / quota-exhausted: the server is alive and said
    // "later" — same connection, backoff, retry.  A quota rejection
    // carries the refill time; sleeping less than that guarantees
    // another rejection, so the hint floors the next sleep (still
    // clamped to the request's remaining deadline above).
    if (last.status == Status::kQuotaExceeded && last.retry_after_ms > 0)
      min_sleep = last.retry_after_ms;
  }
  // Out of attempts or out of deadline budget.  With a response in hand
  // (kOverloaded) return it; with nothing but transport failures,
  // surface the most recent one.
  if (!have_response && last_err) std::rethrow_exception(last_err);
  return last;
}

}  // namespace vppb::server
