#include "server/client.hpp"

#include "util/error.hpp"

namespace vppb::server {

Client Client::connect_unix(const std::string& path) {
  return Client(util::connect_unix(path));
}

Client Client::connect_tcp(std::uint16_t port) {
  return Client(util::connect_tcp(port));
}

Response Client::call(const Request& req) {
  write_frame(sock_, encode(req));
  std::vector<std::uint8_t> payload;
  if (!read_frame(sock_, payload))
    throw Error("server closed the connection before responding");
  return decode_response(payload);
}

}  // namespace vppb::server
