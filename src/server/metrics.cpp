#include "server/metrics.hpp"

#include "obs/metrics.hpp"
#include "util/stats.hpp"

namespace vppb::server {

namespace {

/// Registry handles mirroring the request-path counters, so the
/// `metricsdump` exposition shows server traffic next to the cache,
/// pool, engine, and loader families.  The exact by-type breakdown and
/// percentile ring stay in Metrics (the wire StatsBody needs them).
struct ServerMetrics {
  obs::Counter& requests;
  obs::Counter& errors;
  obs::Counter& overloads;
  obs::Counter& deadlines;
  obs::Counter& budgets;
  obs::Counter& poisoned;
  obs::Counter& watchdog_cancels;
  obs::Counter& watchdog_replacements;
  obs::Counter& sampled;
  obs::Counter& auth_failures;
  obs::Counter& idle_reaps;
  obs::Histogram& latency_us;

  static ServerMetrics& get() {
    auto& reg = obs::Registry::global();
    static ServerMetrics m{
        reg.counter("vppb_server_requests_total", "Requests received"),
        reg.counter("vppb_server_errors_total",
                    "Requests that failed with an error status"),
        reg.counter("vppb_server_overloads_total",
                    "Requests rejected by admission control"),
        reg.counter("vppb_server_deadlines_total",
                    "Requests that missed their deadline"),
        reg.counter("vppb_server_budget_kills_total",
                    "Requests stopped by a resource budget"),
        reg.counter("vppb_server_poisoned_total",
                    "Requests rejected from the poison quarantine"),
        reg.counter("vppb_server_watchdog_cancels_total",
                    "Overdue requests cancelled by the watchdog"),
        reg.counter("vppb_server_watchdog_replacements_total",
                    "Wedged workers replaced by the watchdog"),
        reg.counter("vppb_server_sampled_requests_total",
                    "Requests carrying a distributed trace id"),
        reg.counter("vppb_server_auth_failures_total",
                    "TCP peers rejected by the authenticated handshake"),
        reg.counter("vppb_server_idle_reaps_total",
                    "Connections closed for idling past the deadline"),
        reg.histogram("vppb_server_latency_us",
                      "Admitted request latency, decode to response ready",
                      obs::latency_us_bounds()),
    };
    return m;
  }
};

}  // namespace

void Metrics::count_request(ReqType t) {
  ServerMetrics::get().requests.inc();
  std::lock_guard<std::mutex> lock(mu_);
  ++requests_;
  ++by_type_[static_cast<std::size_t>(t)];
}

void Metrics::count_error() {
  ServerMetrics::get().errors.inc();
  std::lock_guard<std::mutex> lock(mu_);
  ++errors_;
}

void Metrics::count_overload() {
  ServerMetrics::get().overloads.inc();
  std::lock_guard<std::mutex> lock(mu_);
  ++overloads_;
}

void Metrics::count_deadline() {
  ServerMetrics::get().deadlines.inc();
  std::lock_guard<std::mutex> lock(mu_);
  ++deadlines_;
}

void Metrics::count_budget() {
  ServerMetrics::get().budgets.inc();
  std::lock_guard<std::mutex> lock(mu_);
  ++budget_kills_;
}

void Metrics::count_poisoned() {
  ServerMetrics::get().poisoned.inc();
  std::lock_guard<std::mutex> lock(mu_);
  ++poisoned_;
}

void Metrics::count_watchdog_cancel() {
  ServerMetrics::get().watchdog_cancels.inc();
  std::lock_guard<std::mutex> lock(mu_);
  ++watchdog_cancels_;
}

void Metrics::count_watchdog_replacement() {
  ServerMetrics::get().watchdog_replacements.inc();
  std::lock_guard<std::mutex> lock(mu_);
  ++watchdog_replacements_;
}

void Metrics::count_sampled() {
  ServerMetrics::get().sampled.inc();
  std::lock_guard<std::mutex> lock(mu_);
  ++sampled_;
}

void Metrics::count_auth_failure() {
  ServerMetrics::get().auth_failures.inc();
  std::lock_guard<std::mutex> lock(mu_);
  ++auth_failures_;
}

void Metrics::count_idle_reap() {
  ServerMetrics::get().idle_reaps.inc();
  std::lock_guard<std::mutex> lock(mu_);
  ++idle_reaps_;
}

void Metrics::record_latency_us(double us, std::uint64_t trace_id) {
  ServerMetrics::get().latency_us.observe(us, trace_id);
  std::lock_guard<std::mutex> lock(mu_);
  ++latencies_seen_;
  if (latency_us_.size() < kMaxSamples) {
    latency_us_.push_back(us);
  } else {
    latency_us_[ring_next_] = us;
    ring_next_ = (ring_next_ + 1) % kMaxSamples;
  }
}

void Metrics::snapshot(StatsBody& out) const {
  std::vector<double> ring;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.requests = requests_;
    for (std::size_t i = 0; i < kReqTypeCount; ++i)
      out.by_type[i] = by_type_[i];
    out.errors = errors_;
    out.overloads = overloads_;
    out.deadlines = deadlines_;
    out.budget_kills = budget_kills_;
    out.poisoned = poisoned_;
    out.watchdog_cancels = watchdog_cancels_;
    out.watchdog_replacements = watchdog_replacements_;
    out.sampled_requests = sampled_;
    out.auth_failures = auth_failures_;
    out.idle_reaps = idle_reaps_;
    out.latency_count = latencies_seen_;
    ring = latency_us_;  // percentile work happens off-lock
  }
  if (!ring.empty()) {
    // nth_element per percentile instead of one full sort: O(n) each on
    // the 64k ring, and the request path is never blocked behind a
    // sort since the lock is already released.
    out.p50_us = percentile_nth(ring, 50.0);
    out.p90_us = percentile_nth(ring, 90.0);
    out.p99_us = percentile_nth(ring, 99.0);
    double mx = ring.front();
    for (double v : ring) mx = v > mx ? v : mx;
    out.max_us = mx;
  }
}

}  // namespace vppb::server
