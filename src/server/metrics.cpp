#include "server/metrics.hpp"

#include "util/stats.hpp"

namespace vppb::server {

void Metrics::count_request(ReqType t) {
  std::lock_guard<std::mutex> lock(mu_);
  ++requests_;
  ++by_type_[static_cast<std::size_t>(t)];
}

void Metrics::count_error() {
  std::lock_guard<std::mutex> lock(mu_);
  ++errors_;
}

void Metrics::count_overload() {
  std::lock_guard<std::mutex> lock(mu_);
  ++overloads_;
}

void Metrics::count_deadline() {
  std::lock_guard<std::mutex> lock(mu_);
  ++deadlines_;
}

void Metrics::record_latency_us(double us) {
  std::lock_guard<std::mutex> lock(mu_);
  ++latencies_seen_;
  if (latency_us_.size() < kMaxSamples) {
    latency_us_.push_back(us);
  } else {
    latency_us_[ring_next_] = us;
    ring_next_ = (ring_next_ + 1) % kMaxSamples;
  }
}

void Metrics::snapshot(StatsBody& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out.requests = requests_;
  for (std::size_t i = 0; i < kReqTypeCount; ++i) out.by_type[i] = by_type_[i];
  out.errors = errors_;
  out.overloads = overloads_;
  out.deadlines = deadlines_;
  out.latency_count = latencies_seen_;
  if (!latency_us_.empty()) {
    out.p50_us = percentile(latency_us_, 50.0);
    out.p90_us = percentile(latency_us_, 90.0);
    out.p99_us = percentile(latency_us_, 99.0);
    double mx = latency_us_.front();
    for (double v : latency_us_) mx = v > mx ? v : mx;
    out.max_us = mx;
  }
}

}  // namespace vppb::server
