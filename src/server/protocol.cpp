#include "server/protocol.hpp"

#include <algorithm>
#include <cstring>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace vppb::server {
namespace {

// ---- varint primitives (the binary trace format's, with frame-sized
// sanity limits on the reading side) ---------------------------------------

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, (static_cast<std::uint64_t>(v) << 1) ^
                   static_cast<std::uint64_t>(v >> 63));
}

void put_double(std::vector<std::uint8_t>& out, double d) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof d);
  std::memcpy(&bits, &d, sizeof bits);
  put_u64(out, bits);
}

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u64(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint64_t u64() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      VPPB_CHECK_MSG(pos_ < size_, "frame truncated at byte " << pos_);
      const std::uint8_t b = data_[pos_++];
      VPPB_CHECK_MSG(shift < 64, "varint too long in frame");
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }

  std::int64_t i64() {
    const std::uint64_t v = u64();
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
  }

  double dbl() {
    const std::uint64_t bits = u64();
    double d;
    std::memcpy(&d, &bits, sizeof d);
    return d;
  }

  std::string str() {
    const std::uint64_t n = u64();
    VPPB_CHECK_MSG(pos_ + n <= size_, "frame string overruns payload");
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  bool at_end() const { return pos_ == size_; }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

ReqType req_type(std::uint64_t v) {
  VPPB_CHECK_MSG(v < kReqTypeCount, "unknown request type " << v);
  return static_cast<ReqType>(v);
}

// ---- StatsBody (shared by the top-level response and each per-shard
// entry of an aggregated cluster response) -----------------------------------

void put_stats(std::vector<std::uint8_t>& out, const StatsBody& s) {
  put_u64(out, s.requests);
  for (std::uint64_t n : s.by_type) put_u64(out, n);
  put_u64(out, s.errors);
  put_u64(out, s.overloads);
  put_u64(out, s.deadlines);
  put_u64(out, s.cache_hits);
  put_u64(out, s.cache_misses);
  put_u64(out, s.cache_evictions);
  put_u64(out, s.cache_waits);
  put_u64(out, s.cache_entries);
  put_u64(out, s.cache_bytes);
  put_u64(out, s.latency_count);
  put_double(out, s.p50_us);
  put_double(out, s.p90_us);
  put_double(out, s.p99_us);
  put_double(out, s.max_us);
  put_u64(out, s.budget_kills);
  put_u64(out, s.poisoned);
  put_u64(out, s.poison_strikes);
  put_u64(out, s.quarantined);
  put_u64(out, s.watchdog_cancels);
  put_u64(out, s.watchdog_replacements);
  put_u64(out, s.quota_rejections);
  put_u64(out, s.brownout_sheds);
  put_u64(out, s.stale_serves);
  put_double(out, s.slo_p99_ms);
  put_double(out, s.slo_availability);
  put_double(out, s.lat_burn_1m);
  put_double(out, s.lat_burn_5m);
  put_double(out, s.lat_burn_1h);
  put_double(out, s.avail_burn_1m);
  put_double(out, s.avail_burn_5m);
  put_double(out, s.avail_burn_1h);
  put_u64(out, s.sampled_requests);
  put_u64(out, s.trace_dropped);
  put_u64(out, s.auth_failures);
  put_u64(out, s.idle_reaps);
}

void get_stats(Reader& in, StatsBody& s) {
  s.requests = in.u64();
  for (std::uint64_t& n : s.by_type) n = in.u64();
  s.errors = in.u64();
  s.overloads = in.u64();
  s.deadlines = in.u64();
  s.cache_hits = in.u64();
  s.cache_misses = in.u64();
  s.cache_evictions = in.u64();
  s.cache_waits = in.u64();
  s.cache_entries = in.u64();
  s.cache_bytes = in.u64();
  s.latency_count = in.u64();
  s.p50_us = in.dbl();
  s.p90_us = in.dbl();
  s.p99_us = in.dbl();
  s.max_us = in.dbl();
  s.budget_kills = in.u64();
  s.poisoned = in.u64();
  s.poison_strikes = in.u64();
  s.quarantined = in.u64();
  s.watchdog_cancels = in.u64();
  s.watchdog_replacements = in.u64();
  s.quota_rejections = in.u64();
  s.brownout_sheds = in.u64();
  s.stale_serves = in.u64();
  s.slo_p99_ms = in.dbl();
  s.slo_availability = in.dbl();
  s.lat_burn_1m = in.dbl();
  s.lat_burn_5m = in.dbl();
  s.lat_burn_1h = in.dbl();
  s.avail_burn_1m = in.dbl();
  s.avail_burn_5m = in.dbl();
  s.avail_burn_1h = in.dbl();
  s.sampled_requests = in.u64();
  s.trace_dropped = in.u64();
  s.auth_failures = in.u64();
  s.idle_reaps = in.u64();
}

void check_version(Reader& in) {
  const std::uint64_t version = in.u64();
  VPPB_CHECK_MSG(version == kProtocolVersion,
                 "unsupported protocol version " << version << " (this build "
                 "speaks " << int(kProtocolVersion) << ")");
}

}  // namespace

const char* to_string(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kError: return "error";
    case Status::kOverloaded: return "overloaded";
    case Status::kDeadlineExceeded: return "deadline-exceeded";
    case Status::kBudgetExceeded: return "budget-exceeded";
    case Status::kPoisoned: return "poisoned";
    case Status::kQuotaExceeded: return "quota-exceeded";
    case Status::kAuthFailed: return "auth-failed";
  }
  return "?";
}

const char* to_string(ReqType t) {
  switch (t) {
    case ReqType::kPredict: return "predict";
    case ReqType::kSimulate: return "simulate";
    case ReqType::kAnalyze: return "analyze";
    case ReqType::kStats: return "stats";
    case ReqType::kHealth: return "health";
    case ReqType::kMetricsDump: return "metricsdump";
    case ReqType::kTraceDump: return "tracedump";
  }
  return "?";
}

std::vector<std::uint8_t> encode(const Request& req) {
  std::vector<std::uint8_t> out;
  out.reserve(32 + req.trace_path.size());
  put_u64(out, kProtocolVersion);
  put_u64(out, static_cast<std::uint64_t>(req.type));
  put_str(out, req.trace_path);
  put_i64(out, req.cpus);
  put_i64(out, req.lwps);
  put_i64(out, req.max_cpus);
  put_i64(out, req.comm_delay_us);
  put_u64(out, req.want_svg ? 1 : 0);
  put_i64(out, req.deadline_ms);
  put_u64(out, req.client_id);
  put_u64(out, req.origin_id);
  put_u64(out, req.trace_id);
  put_u64(out, req.parent_span_id);
  put_u64(out, req.sampled ? 1 : 0);
  put_u64(out, req.want_timeline ? 1 : 0);
  return out;
}

Request decode_request(const std::uint8_t* data, std::size_t size) {
  Reader in(data, size);
  check_version(in);
  Request req;
  req.type = req_type(in.u64());
  req.trace_path = in.str();
  req.cpus = static_cast<int>(in.i64());
  req.lwps = static_cast<int>(in.i64());
  req.max_cpus = static_cast<int>(in.i64());
  req.comm_delay_us = in.i64();
  req.want_svg = in.u64() != 0;
  req.deadline_ms = in.i64();
  req.client_id = in.u64();
  req.origin_id = in.u64();
  req.trace_id = in.u64();
  req.parent_span_id = in.u64();
  req.sampled = in.u64() != 0;
  req.want_timeline = in.u64() != 0;
  VPPB_CHECK_MSG(in.at_end(), "trailing bytes in request frame");
  return req;
}

std::vector<std::uint8_t> encode(const Response& resp) {
  std::vector<std::uint8_t> out;
  out.reserve(64 + resp.svg.size() + resp.report.size() + resp.error.size());
  put_u64(out, kProtocolVersion);
  put_u64(out, static_cast<std::uint64_t>(resp.status));
  put_u64(out, static_cast<std::uint64_t>(resp.type));
  put_str(out, resp.error);
  put_u64(out, resp.points.size());
  for (const WirePoint& p : resp.points) {
    put_i64(out, p.cpus);
    put_double(out, p.speedup);
    put_double(out, p.efficiency);
    put_i64(out, p.total_ns);
    put_u64(out, p.digest);
  }
  put_double(out, resp.serial_fraction);
  put_i64(out, resp.knee);
  put_u64(out, resp.digest);
  put_i64(out, resp.total_ns);
  put_double(out, resp.speedup);
  put_i64(out, resp.cpus);
  put_i64(out, resp.lwps);
  put_u64(out, resp.events);
  put_str(out, resp.svg);
  put_str(out, resp.report);
  put_stats(out, resp.stats);
  put_u64(out, resp.ready ? 1 : 0);
  put_u64(out, resp.in_flight);
  put_u64(out, resp.admission_limit);
  put_u64(out, resp.shard_id);
  put_u64(out, resp.epoch);
  put_u64(out, resp.shards.size());
  for (const ShardInfo& sh : resp.shards) {
    put_u64(out, sh.shard_id);
    put_u64(out, sh.epoch);
    put_u64(out, sh.healthy ? 1 : 0);
    put_str(out, sh.endpoint);
    put_stats(out, sh.stats);
  }
  put_i64(out, resp.retry_after_ms);
  put_u64(out, resp.brownout ? 1 : 0);
  put_u64(out, resp.live_shards);
  put_u64(out, resp.total_shards);
  put_u64(out, resp.served_stale ? 1 : 0);
  put_i64(out, resp.stale_age_ms);
  put_u64(out, resp.slo_burning ? 1 : 0);
  put_u64(out, resp.trace_id);
  put_u64(out, resp.timeline.size());
  for (const StageSpan& st : resp.timeline) {
    put_str(out, st.name);
    put_i64(out, st.start_us);
    put_i64(out, st.dur_us);
    put_u64(out, st.depth);
  }
  put_u64(out, resp.spans.size());
  for (const WireSpan& sp : resp.spans) {
    put_u64(out, sp.pid);
    put_u64(out, sp.tid);
    put_str(out, sp.name);
    put_str(out, sp.cat);
    put_i64(out, sp.start_unix_ns);
    put_i64(out, sp.dur_ns);
    put_u64(out, sp.trace_id);
    put_str(out, sp.arg_name);
    put_i64(out, sp.arg_value);
  }
  return out;
}

Response decode_response(const std::uint8_t* data, std::size_t size) {
  Reader in(data, size);
  check_version(in);
  Response resp;
  const std::uint64_t status = in.u64();
  VPPB_CHECK_MSG(
      status <= static_cast<std::uint64_t>(Status::kAuthFailed),
      "unknown response status " << status);
  resp.status = static_cast<Status>(status);
  resp.type = req_type(in.u64());
  resp.error = in.str();
  const std::uint64_t npoints = in.u64();
  VPPB_CHECK_MSG(npoints <= 4096, "implausible sweep point count "
                 << npoints);
  resp.points.resize(static_cast<std::size_t>(npoints));
  for (WirePoint& p : resp.points) {
    p.cpus = static_cast<int>(in.i64());
    p.speedup = in.dbl();
    p.efficiency = in.dbl();
    p.total_ns = in.i64();
    p.digest = in.u64();
  }
  resp.serial_fraction = in.dbl();
  resp.knee = static_cast<int>(in.i64());
  resp.digest = in.u64();
  resp.total_ns = in.i64();
  resp.speedup = in.dbl();
  resp.cpus = static_cast<int>(in.i64());
  resp.lwps = static_cast<int>(in.i64());
  resp.events = in.u64();
  resp.svg = in.str();
  resp.report = in.str();
  get_stats(in, resp.stats);
  resp.ready = in.u64() != 0;
  resp.in_flight = in.u64();
  resp.admission_limit = in.u64();
  resp.shard_id = in.u64();
  resp.epoch = in.u64();
  const std::uint64_t nshards = in.u64();
  VPPB_CHECK_MSG(nshards <= 1024, "implausible shard count " << nshards);
  resp.shards.resize(static_cast<std::size_t>(nshards));
  for (ShardInfo& sh : resp.shards) {
    sh.shard_id = in.u64();
    sh.epoch = in.u64();
    sh.healthy = in.u64() != 0;
    sh.endpoint = in.str();
    get_stats(in, sh.stats);
  }
  resp.retry_after_ms = in.i64();
  resp.brownout = in.u64() != 0;
  resp.live_shards = in.u64();
  resp.total_shards = in.u64();
  resp.served_stale = in.u64() != 0;
  resp.stale_age_ms = in.i64();
  resp.slo_burning = in.u64() != 0;
  resp.trace_id = in.u64();
  const std::uint64_t nstages = in.u64();
  VPPB_CHECK_MSG(nstages <= kMaxTimelineStages,
                 "implausible timeline stage count " << nstages);
  resp.timeline.resize(static_cast<std::size_t>(nstages));
  for (StageSpan& st : resp.timeline) {
    st.name = in.str();
    st.start_us = in.i64();
    st.dur_us = in.i64();
    st.depth = static_cast<std::uint32_t>(in.u64());
  }
  const std::uint64_t nspans = in.u64();
  // Bound against the bytes actually present (a span is >= 9 encoded
  // bytes) so a hostile count in a tiny frame cannot force a giant
  // allocation before the truncation is noticed.
  VPPB_CHECK_MSG(nspans <= kMaxWireSpans && nspans * 9 <= in.remaining(),
                 "implausible span count " << nspans);
  resp.spans.resize(static_cast<std::size_t>(nspans));
  for (WireSpan& sp : resp.spans) {
    sp.pid = in.u64();
    sp.tid = static_cast<std::uint32_t>(in.u64());
    sp.name = in.str();
    sp.cat = in.str();
    sp.start_unix_ns = in.i64();
    sp.dur_ns = in.i64();
    sp.trace_id = in.u64();
    sp.arg_name = in.str();
    sp.arg_value = in.i64();
  }
  VPPB_CHECK_MSG(in.at_end(), "trailing bytes in response frame");
  return resp;
}

Request decode_request(const std::vector<std::uint8_t>& payload) {
  return decode_request(payload.data(), payload.size());
}

Response decode_response(const std::vector<std::uint8_t>& payload) {
  return decode_response(payload.data(), payload.size());
}

void write_frame(util::Socket& sock,
                 const std::vector<std::uint8_t>& payload) {
  if (payload.empty() || payload.size() > kMaxFrame)
    throw Error(strprintf("frame payload of %zu bytes out of range (1..%zu)",
                          payload.size(), kMaxFrame));
  std::uint8_t header[4];
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  header[0] = static_cast<std::uint8_t>(n);
  header[1] = static_cast<std::uint8_t>(n >> 8);
  header[2] = static_cast<std::uint8_t>(n >> 16);
  header[3] = static_cast<std::uint8_t>(n >> 24);
  sock.send_all(header, sizeof header);
  sock.send_all(payload.data(), payload.size());
}

bool read_frame(util::Socket& sock, std::vector<std::uint8_t>& payload) {
  return read_frame(sock, payload, FrameLimits{});
}

bool read_frame(util::Socket& sock, std::vector<std::uint8_t>& payload,
                const FrameLimits& limits) {
  std::uint8_t header[4];
  const std::size_t got = sock.recv_exact(header, sizeof header);
  if (got == 0) return false;  // clean end-of-stream between frames
  if (got < sizeof header)
    throw Error(strprintf("truncated frame header (%zu of 4 bytes)", got));
  const std::uint32_t n = static_cast<std::uint32_t>(header[0]) |
                          static_cast<std::uint32_t>(header[1]) << 8 |
                          static_cast<std::uint32_t>(header[2]) << 16 |
                          static_cast<std::uint32_t>(header[3]) << 24;
  const std::size_t cap = std::min(limits.max_bytes, kMaxFrame);
  if (n == 0 || n > cap)
    throw Error(strprintf("frame length %u out of range (1..%zu) — "
                          "not a vppbd peer?", n, cap));
  payload.resize(n);
  const std::size_t body =
      sock.recv_exact_deadline(payload.data(), n, limits.frame_deadline_ms);
  if (body < n)
    throw Error(strprintf("truncated frame payload (%zu of %u bytes)",
                          body, n));
  return true;
}

}  // namespace vppb::server
