// Per-request deadlines for vppbd handlers.
//
// A deadline is set from Request::deadline_ms when the request arrives
// and carried through the handler path.  Handlers poll it at natural
// checkpoints (before loading a trace, between sweep points, before an
// SVG render); when it fires, the work is abandoned by throwing
// DeadlineExceeded, which the dispatcher turns into a typed
// Status::kDeadlineExceeded response — the client distinguishes "the
// server is slow" from "the request failed" and can retry elsewhere.
#pragma once

#include <chrono>
#include <cstdint>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace vppb::server {

class DeadlineExceeded : public Error {
 public:
  explicit DeadlineExceeded(const std::string& what) : Error(what) {}
};

class Deadline {
 public:
  /// No deadline: never expires.
  Deadline() = default;

  /// Expires `ms` milliseconds from now; ms <= 0 means no deadline.
  static Deadline after_ms(std::int64_t ms) {
    Deadline d;
    if (ms > 0) {
      d.has_ = true;
      d.at_ = std::chrono::steady_clock::now() +
              std::chrono::milliseconds(ms);
    }
    return d;
  }

  bool unlimited() const { return !has_; }

  bool expired() const {
    return has_ && std::chrono::steady_clock::now() >= at_;
  }

  /// Throws DeadlineExceeded, naming the stage, once expired.
  void check(const char* stage) const {
    if (expired())
      throw DeadlineExceeded(
          strprintf("deadline exceeded during %s", stage));
  }

 private:
  bool has_ = false;
  std::chrono::steady_clock::time_point at_{};
};

}  // namespace vppb::server
