#include "server/trace_cache.hpp"

#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "trace/binary.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace vppb::server {

std::uint64_t content_key(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t content_key_of_file(const std::string& path) {
  const std::vector<std::uint8_t> bytes = trace::read_file_bytes(path);
  return content_key(bytes.data(), bytes.size());
}

namespace {

/// Estimated in-memory footprint of a parsed + compiled trace.  The
/// budget must charge this on top of the file bytes: a compact binary
/// log expands roughly tenfold into Records and Steps, so file-bytes
/// accounting alone let the cache hold an order of magnitude more than
/// max_bytes_ promised.
std::size_t approx_footprint(const trace::Trace& t,
                             const core::CompiledTrace& c) {
  std::size_t steps = 0;
  for (const auto& [tid, ct] : c.threads) steps += ct.steps.size();
  return t.records.size() * sizeof(trace::Record) +
         steps * sizeof(core::Step) +
         t.locations.size() * sizeof(trace::SourceLoc) +
         t.threads.size() * (sizeof(trace::ThreadMeta) + 64);
}

/// Registry handles for the cache, registered once.  Counters are
/// bumped at event time; the gauges are refreshed after every mutation
/// under the cache lock, so the exposition always reflects the live
/// occupancy of the (single, in practice) daemon cache.
struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& evictions;
  obs::Counter& waits;
  obs::Counter& strikes;
  obs::Counter& quarantine_trips;
  obs::Counter& poison_rejects;
  obs::Gauge& entries;
  obs::Gauge& bytes;
  obs::Gauge& quarantined;

  static CacheMetrics& get() {
    auto& reg = obs::Registry::global();
    static CacheMetrics m{
        reg.counter("vppb_cache_hits_total",
                    "Trace-cache lookups served from memory"),
        reg.counter("vppb_cache_misses_total",
                    "Trace-cache lookups that loaded from disk"),
        reg.counter("vppb_cache_evictions_total", "LRU evictions"),
        reg.counter("vppb_cache_waits_total",
                    "Lookups that waited out another request's load"),
        reg.counter("vppb_cache_poison_strikes_total",
                    "Crash/budget-kill strikes recorded against traces"),
        reg.counter("vppb_cache_quarantine_trips_total",
                    "Content keys entering quarantine"),
        reg.counter("vppb_cache_poison_rejects_total",
                    "Lookups rejected because the content is quarantined"),
        reg.gauge("vppb_cache_entries", "Ready entries resident"),
        reg.gauge("vppb_cache_bytes",
                  "Charged trace bytes resident (file + footprint)"),
        reg.gauge("vppb_cache_quarantined",
                  "Content keys quarantined right now"),
    };
    return m;
  }
};

}  // namespace

std::shared_ptr<const TraceCache::Entry> TraceCache::get(
    const std::string& path, const core::RunGuard* guard, bool* loaded) {
  obs::Span get_span("cache.get", "cache");
  CacheMetrics& cm = CacheMetrics::get();
  if (loaded != nullptr) *loaded = false;
  // Injected faults surface as the same exception types the real
  // failures would: allocation failure and I/O error.  Both are thrown
  // before any shared state changes, so a faulted request leaves the
  // cache exactly as it found it.
  if (faults_ != nullptr) {
    if (faults_->should_fire(util::FaultSite::kCacheEnomem))
      throw std::bad_alloc();
    if (faults_->should_fire(util::FaultSite::kCacheEio))
      throw Error("injected I/O error reading trace file: " + path);
  }
  // Reading and digesting the bytes is per-request work by design: it
  // is what notices a changed file.  Parsing and compiling are not.
  const std::vector<std::uint8_t> bytes = trace::read_file_bytes(path);
  const std::uint64_t key = content_key(bytes.data(), bytes.size());

  std::unique_lock<std::mutex> lock(mu_);
  check_poisoned_locked(key);
  bool waited = false;
  for (;;) {
    auto it = slots_.find(key);
    if (it == slots_.end()) break;  // nobody has (or is loading) it
    if (it->second.entry) {
      ++hits_;
      cm.hits.inc();
      lru_.splice(lru_.begin(), lru_, it->second.lru);
      return it->second.entry;
    }
    // Another request is compiling this content right now; wait for it
    // rather than compiling a second copy.  A failed load erases the
    // slot, in which case this request retries as the loader.
    if (!waited) {
      waited = true;
      ++waits_;
      cm.waits.inc();
    }
    loaded_cv_.wait(lock);
  }

  ++misses_;
  cm.misses.inc();
  if (loaded != nullptr) *loaded = true;
  slots_.emplace(key, Slot{});  // loading marker
  lock.unlock();

  std::shared_ptr<Entry> entry;
  try {
    obs::Span load_span("cache.load", "cache");
    load_span.arg("bytes", static_cast<std::int64_t>(bytes.size()));
    entry = std::make_shared<Entry>();
    entry->key = key;
    entry->bytes = bytes.size();
    // Sniffs text, "VPPB" and crash-safe "VPPC" logs alike, so the
    // daemon serves whatever the recorder managed to leave behind.
    entry->trace =
        trace::from_any(bytes.data(), bytes.size(), trace::LoadOptions{},
                        nullptr);
    if (guard != nullptr) guard->check_cancel();
    entry->compiled = core::compile(entry->trace, guard);
    entry->bytes = bytes.size() + approx_footprint(entry->trace,
                                                   entry->compiled);
  } catch (...) {
    lock.lock();
    slots_.erase(key);
    loaded_cv_.notify_all();
    throw;
  }

  lock.lock();
  Slot& slot = slots_[key];
  slot.entry = entry;
  lru_.push_front(key);
  slot.lru = lru_.begin();
  bytes_ += entry->bytes;
  evict_locked();
  cm.entries.set(static_cast<std::int64_t>(lru_.size()));
  cm.bytes.set(static_cast<std::int64_t>(bytes_));
  loaded_cv_.notify_all();
  return entry;
}

void TraceCache::evict_locked() {
  // Only ready entries are on the LRU list; the entry just inserted is
  // at the front and is never evicted by its own insertion unless it
  // alone exceeds the budget (then the cache simply does not retain it).
  while (!lru_.empty() &&
         (lru_.size() > max_entries_ || bytes_ > max_bytes_)) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    auto it = slots_.find(victim);
    bytes_ -= it->second.entry->bytes;
    slots_.erase(it);
    ++evictions_;
    CacheMetrics::get().evictions.inc();
  }
}

void TraceCache::configure_quarantine(int strikes_to_trip,
                                      std::int64_t quarantine_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  strikes_to_trip_ = strikes_to_trip;
  if (quarantine_ms > 0) quarantine_ms_ = quarantine_ms;
}

void TraceCache::record_strike(const std::string& path) noexcept {
  std::uint64_t key = 0;
  try {
    const std::vector<std::uint8_t> bytes = trace::read_file_bytes(path);
    key = content_key(bytes.data(), bytes.size());
  } catch (...) {
    return;  // unreadable content cannot recur, so nothing to quarantine
  }
  CacheMetrics& cm = CacheMetrics::get();
  std::lock_guard<std::mutex> lock(mu_);
  if (strikes_to_trip_ <= 0) return;
  PoisonState& ps = poison_[key];
  poison_keys_.store(poison_.size(), std::memory_order_release);
  ++ps.strikes;
  ++poison_strikes_;
  cm.strikes.inc();
  if (ps.strikes >= strikes_to_trip_) {
    // Strikes are kept (not reset) through the trip: after the window
    // expires the decay halves them, so a repeat offender re-trips on
    // fewer new strikes than a first-time one.
    ++ps.trips;
    ++quarantine_trips_;
    cm.quarantine_trips.inc();
    ps.until = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(quarantine_ms_);
  }
}

void TraceCache::check_poisoned(const std::string& path) {
  if (poison_keys_.load(std::memory_order_acquire) == 0) return;
  const std::vector<std::uint8_t> bytes = trace::read_file_bytes(path);
  const std::uint64_t key = content_key(bytes.data(), bytes.size());
  std::lock_guard<std::mutex> lock(mu_);
  check_poisoned_locked(key);
}

void TraceCache::check_poisoned_locked(std::uint64_t key) {
  auto it = poison_.find(key);
  if (it == poison_.end()) return;
  PoisonState& ps = it->second;
  if (ps.until == std::chrono::steady_clock::time_point{}) return;
  const auto now = std::chrono::steady_clock::now();
  if (now < ps.until) {
    ++poison_rejects_;
    CacheMetrics::get().poison_rejects.inc();
    throw Poisoned(strprintf(
        "trace content %016llx is quarantined after %d strikes "
        "(crashes or budget kills); retry after the quarantine decays",
        static_cast<unsigned long long>(key), ps.strikes));
  }
  // Quarantine window over: decay.  The key becomes admissible with
  // half its strike history; a fully decayed key is forgotten.
  ps.until = {};
  ps.strikes /= 2;
  if (ps.strikes == 0) {
    poison_.erase(it);
    poison_keys_.store(poison_.size(), std::memory_order_release);
  }
}

TraceCache::Stats TraceCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.waits = waits_;
  s.entries = lru_.size();
  s.bytes = bytes_;
  s.poison_strikes = poison_strikes_;
  s.quarantine_trips = quarantine_trips_;
  s.poison_rejects = poison_rejects_;
  const auto now = std::chrono::steady_clock::now();
  for (const auto& [key, ps] : poison_) {
    if (ps.until != std::chrono::steady_clock::time_point{} && now < ps.until)
      ++s.quarantined;
  }
  CacheMetrics::get().quarantined.set(static_cast<std::int64_t>(s.quarantined));
  return s;
}

}  // namespace vppb::server
