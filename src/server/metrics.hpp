// Per-request service metrics: counters by request type, error and
// overload counts, and a latency reservoir for percentile reporting via
// the `stats` request.  Everything is cheap enough to update on the
// request path; percentiles are computed lazily at snapshot time.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "server/protocol.hpp"

namespace vppb::server {

class Metrics {
 public:
  /// Latency reservoir size; public so tests can exercise wrap-around.
  static constexpr std::size_t kMaxSamples = 1 << 16;

  void count_request(ReqType t);
  void count_error();
  void count_overload();
  void count_deadline();
  void count_budget();               ///< kBudgetExceeded response
  void count_poisoned();             ///< kPoisoned response
  void count_watchdog_cancel();      ///< watchdog cancelled an overdue run
  void count_watchdog_replacement(); ///< watchdog replaced a wedged worker

  void count_sampled();  ///< request arrived carrying a trace_id

  void count_auth_failure();  ///< TCP peer rejected by the v8 handshake
  void count_idle_reap();     ///< connection closed past the idle deadline

  /// Records the server-side latency of an executed (admitted) request,
  /// from frame decode to response ready.  Overload rejections are
  /// counted, not timed — their latency is the admission check.
  /// `trace_id`, when nonzero, is captured as the latency histogram
  /// bucket's exemplar.
  void record_latency_us(double us, std::uint64_t trace_id = 0);

  /// Fills the request-side counters and latency percentiles of `out`
  /// (the cache fields are the TraceCache's to fill).
  void snapshot(StatsBody& out) const;

 private:
  mutable std::mutex mu_;
  std::uint64_t requests_ = 0;
  std::uint64_t by_type_[kReqTypeCount] = {};
  std::uint64_t errors_ = 0;
  std::uint64_t overloads_ = 0;
  std::uint64_t deadlines_ = 0;
  std::uint64_t budget_kills_ = 0;
  std::uint64_t poisoned_ = 0;
  std::uint64_t watchdog_cancels_ = 0;
  std::uint64_t watchdog_replacements_ = 0;
  std::uint64_t sampled_ = 0;
  std::uint64_t auth_failures_ = 0;
  std::uint64_t idle_reaps_ = 0;
  std::uint64_t latencies_seen_ = 0;
  std::size_t ring_next_ = 0;
  std::vector<double> latency_us_;  ///< ring buffer once at kMaxSamples
};

}  // namespace vppb::server
