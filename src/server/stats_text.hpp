// Human-readable renderings of the stats/health wire bodies.
//
// Factored out of the CLI so the exact text the operator reads is unit
// testable: the stats view must always surface the failure counters
// (errors, overloads, deadline misses) and the cache hit rate, not just
// the happy-path totals.
#pragma once

#include <string>

#include "server/protocol.hpp"

namespace vppb::server {

/// The `vppb request stats` / `vppb stats` view: a counter table (one
/// row per request type), cache effectiveness including the hit rate,
/// and the latency distribution when any request has executed.
///
/// `aggregated` marks the percentiles as cluster-merged: order
/// statistics do not merge, so the proxy reports the per-shard maximum
/// — an upper bound — and the render must say so instead of letting it
/// read as a true merged percentile.
std::string render_stats_text(const StatsBody& s, bool aggregated = false);

/// Just the SLO block (objectives + multi-window burn rates); empty
/// string when no objective is configured.  Appended by
/// render_stats_text and reused by the --watch reconnect path, which
/// grays out the last-good SLO state while the endpoint is away.
std::string render_slo_text(const StatsBody& s);

/// The `vppb request health` view: readiness, in-flight occupancy, and
/// a one-line summary of the failure counters.
std::string render_health_text(const Response& r);

/// The cluster-aware stats view: the merged counter table first (so
/// `vppb stats --watch` reads unchanged against a proxy), then one row
/// per shard with its identity, epoch, health, and headline counters.
/// Falls back to render_stats_text when the response carries no shard
/// breakdown (a plain vppbd).
std::string render_cluster_stats_text(const Response& r);

}  // namespace vppb::server
