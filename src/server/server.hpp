// vppbd — the resident prediction service.
//
// Threading model: one accept thread polls the listener; each accepted
// connection gets a lightweight IO thread that reads one frame at a
// time, runs the request through admission control, and writes the
// response before reading the next frame (strict request/response per
// connection — no reordering, no per-connection queues).  The compute
// itself runs on a shared util::ThreadPool: the IO thread posts the
// handler and blocks for the result, so CPU-bound work is bounded by
// the pool size no matter how many clients connect.
//
// Admission is a bounded in-flight count, not a queue that grows: a
// request arriving while `admission_limit` requests are admitted (on a
// worker or waiting for one) is answered immediately with
// Status::kOverloaded.  Clients see explicit backpressure instead of
// unbounded latency, and a misbehaving client cannot pile up work.
//
// stop() drains gracefully: stop accepting, half-close the read side of
// every connection (in-flight requests finish and their responses are
// delivered), join everything.  `vppb serve` wires SIGINT/SIGTERM to
// exactly this.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/deadline.hpp"
#include "server/metrics.hpp"
#include "server/protocol.hpp"
#include "server/trace_cache.hpp"
#include "util/fault.hpp"
#include "util/socket.hpp"
#include "util/thread_pool.hpp"

namespace vppb::server {

struct ServerOptions {
  /// Unix-domain socket path; preferred when non-empty (any stale
  /// socket file is replaced).
  std::string unix_path;
  /// Loopback TCP port, used when unix_path is empty.  0 = ephemeral
  /// (read the bound port from Server::tcp_port after start()).
  std::uint16_t tcp_port = 0;
  /// Workers of the owned pool (0 = all hardware threads).  Ignored
  /// when `pool` is set.
  int jobs = 0;
  /// Share an existing pool instead of owning one (embedding, tests).
  util::ThreadPool* pool = nullptr;
  /// Maximum admitted (queued-or-running) requests before overload
  /// rejection.
  int admission_limit = 64;
  std::size_t cache_entries = 16;
  std::size_t cache_bytes = 512u << 20;
  /// Fault-injection plan (unowned; must outlive the server).  Null
  /// means "use FaultPlan::global()", i.e. honor $VPPB_FAULT.  Tests
  /// pass their own plan to inject without touching the environment.
  util::FaultPlan* faults = nullptr;
};

class Server {
 public:
  explicit Server(ServerOptions opt);
  ~Server();  ///< calls stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the endpoint and starts the accept thread.  Throws
  /// vppb::Error when the endpoint cannot be bound.
  void start();

  /// Graceful drain (see file comment).  Idempotent.
  void stop();

  /// Human-readable bound endpoint ("path.sock" or "127.0.0.1:port").
  const std::string& endpoint() const { return endpoint_; }
  std::uint16_t tcp_port() const { return port_; }

  TraceCache& cache() { return cache_; }
  Metrics& metrics() { return metrics_; }

 private:
  struct Conn {
    util::Socket sock;
    std::thread thread;
  };

  void accept_loop();
  void serve_connection(Conn* conn);
  Response execute(const Request& req);
  Response dispatch(const Request& req, const Deadline& deadline);
  Response stats_response();
  Response health_response();
  Response metricsdump_response();
  void fill_cache_stats(StatsBody& out);

  ServerOptions opt_;
  util::FaultPlan* faults_ = nullptr;
  std::unique_ptr<util::ThreadPool> owned_pool_;
  util::ThreadPool* pool_ = nullptr;
  TraceCache cache_;
  Metrics metrics_;

  util::Socket listener_;
  std::string endpoint_;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<int> in_flight_{0};
  std::thread accept_thread_;

  std::mutex conn_mu_;
  std::vector<std::unique_ptr<Conn>> conns_;
};

}  // namespace vppb::server
