// vppbd — the resident prediction service.
//
// Threading model: one accept thread polls the listener; each accepted
// connection gets a lightweight IO thread that reads one frame at a
// time, runs the request through admission control, and writes the
// response before reading the next frame (strict request/response per
// connection — no reordering, no per-connection queues).  The compute
// itself runs on a shared util::ThreadPool: the IO thread posts the
// handler and blocks for the result, so CPU-bound work is bounded by
// the pool size no matter how many clients connect.
//
// Admission is a bounded in-flight count, not a queue that grows: a
// request arriving while `admission_limit` requests are admitted (on a
// worker or waiting for one) is answered immediately with
// Status::kOverloaded.  Clients see explicit backpressure instead of
// unbounded latency, and a misbehaving client cannot pile up work.
//
// stop() drains gracefully: stop accepting, half-close the read side of
// every connection (in-flight requests finish and their responses are
// delivered), join everything.  `vppb serve` wires SIGINT/SIGTERM to
// exactly this.
//
// Resource governance (the hang-proofing layer): every admitted request
// carries a core::RunGuard armed with the server ceilings (max_steps /
// max_sim_ms / max_result_mb / max_wall_ms) and the request's own
// deadline; the engine polls it per step, so a pathological trace gets
// a typed kBudgetExceeded instead of wedging a worker.  A watchdog
// thread walks the in-flight requests on an interval and escalates:
// first it cancels an overdue request's guard (cooperative), then — if
// the worker still has not come back after the escalation grace — it
// answers the waiting client itself, abandons the worker's late result,
// records a poison strike against the trace, and restores pool capacity
// via ThreadPool::grow.  Repeated strikes on one content key trip the
// TraceCache quarantine, after which the request is rejected kPoisoned
// before admission — it never reaches a worker again until the
// quarantine decays.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/guard.hpp"
#include "obs/slo.hpp"
#include "obs/timeline.hpp"
#include "server/deadline.hpp"
#include "server/metrics.hpp"
#include "server/protocol.hpp"
#include "server/trace_cache.hpp"
#include "util/fault.hpp"
#include "util/socket.hpp"
#include "util/thread_pool.hpp"

namespace vppb::server {

struct ServerOptions {
  /// Unix-domain socket path; preferred when non-empty (any stale
  /// socket file is replaced).
  std::string unix_path;
  /// Loopback TCP port, used when unix_path is empty.  0 = ephemeral
  /// (read the bound port from Server::tcp_port after start()).
  std::uint16_t tcp_port = 0;
  /// Workers of the owned pool (0 = all hardware threads).  Ignored
  /// when `pool` is set.
  int jobs = 0;
  /// Share an existing pool instead of owning one (embedding, tests).
  util::ThreadPool* pool = nullptr;
  /// Maximum admitted (queued-or-running) requests before overload
  /// rejection.
  int admission_limit = 64;
  std::size_t cache_entries = 16;
  std::size_t cache_bytes = 512u << 20;
  /// Fault-injection plan (unowned; must outlive the server).  Null
  /// means "use FaultPlan::global()", i.e. honor $VPPB_FAULT.  Tests
  /// pass their own plan to inject without touching the environment.
  util::FaultPlan* faults = nullptr;

  // --- resource governance (0 = unlimited / disabled) ---
  /// Per-request ceiling on simulated engine steps.
  std::uint64_t max_steps = 0;
  /// Per-request ceiling on simulated time, milliseconds.
  std::int64_t max_sim_ms = 0;
  /// Per-request ceiling on result storage, megabytes.
  std::uint64_t max_result_mb = 0;
  /// Per-request wall-clock ceiling, milliseconds.  This is what the
  /// watchdog enforces for requests without a deadline; without it a
  /// deadline-less request can only be stopped by the other budgets.
  std::int64_t max_wall_ms = 0;
  /// Watchdog scan interval; 0 disables the watchdog thread.
  std::int64_t watchdog_interval_ms = 50;
  /// After cancelling an overdue request, how long the watchdog waits
  /// for the worker to come back before abandoning it (answering the
  /// client itself and replacing the worker).
  std::int64_t watchdog_escalate_ms = 1000;
  /// Cap on replacement workers over the server's lifetime, so a storm
  /// of wedges cannot grow the pool without bound.
  int watchdog_max_replacements = 4;
  /// Poison circuit breaker: strikes (crashes or budget kills on one
  /// content key) before quarantine.  0 disables it.
  int poison_strikes = 3;
  /// Quarantine window after a trip, milliseconds.
  std::int64_t quarantine_ms = 30000;
  /// Per-client fair admission: in-flight requests allowed per client
  /// identity (Request::client_id, falling back to the connection).
  /// 0 disables the per-client check; the global admission_limit always
  /// applies.
  int per_client_limit = 0;

  /// Shard identity reported in health/stats responses (protocol v5).
  /// Assigned by the operator or the cluster launcher; 0 = standalone.
  std::uint64_t shard_id = 0;

  // --- hostile-network hardening (protocol v8) ---
  /// Shared key for the TCP handshake (empty = open listener).  Unix
  /// sockets never authenticate: the socket file's permissions are the
  /// local trust boundary, and the loopback digest baseline must stay
  /// byte-identical.
  std::string auth_key;
  /// Bound on each handshake read/write; a peer that connects and then
  /// goes silent is dropped after this.
  std::int64_t auth_timeout_ms = 5000;
  /// Idle-connection reap: a connection with no new frame for this many
  /// milliseconds is closed (slowloris defense).  0 = never reap,
  /// preserving the long-lived-idle-client behaviour local tools rely
  /// on.
  std::int64_t idle_timeout_ms = 0;
  /// Total time a *started* frame may take to arrive before the
  /// connection is dropped (defeats one-byte-per-window trickling).
  /// 0 = unbounded.
  std::int64_t frame_deadline_ms = 0;
  /// Ceiling on accepted request frames, bytes (hostile peers should
  /// not get to pick allocation sizes up to the full 64 MiB protocol
  /// cap).  0 = the protocol cap.
  std::size_t max_request_frame_bytes = 0;

  /// Always-on span capture: start() enables the process-wide tracer so
  /// tracedump always has rings to drain (overhead is gated < 3% by
  /// bench_obs).  Embedders that manage the tracer themselves turn it
  /// off.
  bool tracing = true;

  // --- SLO objectives (0 = objective off) ---
  /// Latency objective: p99 of compute requests under this many ms.
  double slo_p99_ms = 0.0;
  /// Availability objective as a success fraction, e.g. 0.999.
  double slo_availability = 0.0;
};

class Server {
 public:
  explicit Server(ServerOptions opt);
  ~Server();  ///< calls stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the endpoint and starts the accept thread.  Throws
  /// vppb::Error when the endpoint cannot be bound.
  void start();

  /// Graceful drain (see file comment).  Idempotent.
  void stop();

  /// Human-readable bound endpoint ("path.sock" or "127.0.0.1:port").
  const std::string& endpoint() const { return endpoint_; }
  std::uint16_t tcp_port() const { return port_; }

  /// Start-time epoch: unique per process start, so a routing tier can
  /// tell "the same shard restarted" (same id, new epoch — cold cache)
  /// from a long-lived healthy backend.  0 before start().
  std::uint64_t epoch() const { return epoch_; }

  TraceCache& cache() { return cache_; }
  Metrics& metrics() { return metrics_; }

 private:
  struct Conn {
    util::Socket sock;
    std::thread thread;
    std::uint64_t id = 0;  ///< per-client fallback identity
  };

  /// Shared state of one admitted request.  The IO thread waits on it;
  /// the worker delivers into it; the watchdog may cancel it or — when
  /// the worker is wedged — deliver a typed answer in the worker's
  /// stead.  shared_ptr-owned so an abandoned worker can still write
  /// its (discarded) result safely after the waiter has moved on.
  struct ReqState {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;  ///< a response is in resp (under mu)
    Response resp;

    core::RunGuard guard;
    Deadline deadline;
    ReqType type = ReqType::kPredict;
    std::string trace_path;
    std::chrono::steady_clock::time_point admitted_at{};
    /// Stage timeline for want_timeline requests.  Stamped by the IO
    /// thread before the post and by the worker during dispatch; the
    /// worker copies it into its Response, so a watchdog-answered
    /// request simply reports no timeline (no racing reader).
    std::unique_ptr<obs::Timeline> timeline;

    // Watchdog-private escalation state (only its thread touches these).
    bool cancelled = false;
    bool abandoned = false;
    std::chrono::steady_clock::time_point cancelled_at{};
  };

  void accept_loop();
  void serve_connection(Conn* conn);
  Response execute(const Request& req, std::uint64_t conn_key);
  Response dispatch(const Request& req, ReqState& st);
  Response stats_response();
  Response health_response();
  Response metricsdump_response();
  Response tracedump_response();
  void fill_cache_stats(StatsBody& out);
  /// Stamps the SLO burn rates + tracing telemetry into a stats body
  /// and the breach verdict onto the response.
  void fill_slo(Response& resp);

  core::RunLimits request_limits(const Request& req) const;
  bool client_admit(std::uint64_t client);
  void client_release(std::uint64_t client);
  void watchdog_loop();
  void watchdog_scan(const std::shared_ptr<ReqState>& st);

  ServerOptions opt_;
  util::FaultPlan* faults_ = nullptr;
  std::unique_ptr<util::ThreadPool> owned_pool_;
  util::ThreadPool* pool_ = nullptr;
  TraceCache cache_;
  Metrics metrics_;
  obs::SloTracker slo_;

  util::Socket listener_;
  std::string endpoint_;
  std::uint16_t port_ = 0;
  std::uint64_t epoch_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<int> in_flight_{0};
  std::thread accept_thread_;

  std::mutex conn_mu_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::atomic<std::uint64_t> next_conn_id_{1};

  std::mutex client_mu_;
  std::unordered_map<std::uint64_t, int> client_in_flight_;

  std::thread watchdog_thread_;
  /// Separate from running_: the watchdog must keep rescuing draining
  /// connections after stop() flips running_ off.
  std::atomic<bool> watchdog_stop_{false};
  std::mutex watch_mu_;
  std::condition_variable watch_cv_;  ///< wakes the watchdog for stop()
  std::vector<std::shared_ptr<ReqState>> watched_;
  int replacements_made_ = 0;  ///< watchdog thread only

  // Posted-but-unfinished worker tasks; stop() waits for zero so an
  // abandoned task can never outlive the server it captures.
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  int tasks_live_ = 0;
};

}  // namespace vppb::server
