#include "server/handlers.hpp"

#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "core/sweep.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "viz/analysis.hpp"
#include "viz/visualizer.hpp"

namespace vppb::server {
namespace {

/// Largest simulated machine a request may ask for: generous for any
/// real what-if question, small enough that a corrupt frame cannot
/// request a year of simulation.
constexpr int kMaxRequestCpus = 4096;

void check_range(const char* what, std::int64_t v, std::int64_t lo,
                 std::int64_t hi) {
  if (v < lo || v > hi)
    throw Error(strprintf("%s %lld out of range [%lld, %lld]", what,
                          static_cast<long long>(v),
                          static_cast<long long>(lo),
                          static_cast<long long>(hi)));
}

core::SimConfig base_config(const Request& req) {
  check_range("lwps", req.lwps, 0, 1 << 20);
  check_range("comm-delay-us", req.comm_delay_us, 0, 86400000000LL);
  core::SimConfig cfg;
  cfg.sched.lwps = req.lwps;
  cfg.hw.comm_delay = SimTime::micros(req.comm_delay_us);
  return cfg;
}

/// Fetches the cache entry, stamping the timeline stage as
/// "cache-lookup" (hit) or "compile" (this request paid parse+compile).
std::shared_ptr<const TraceCache::Entry> timed_get(
    TraceCache& cache, const Request& req, const core::RunGuard* guard,
    obs::Timeline* tl) {
  if (tl == nullptr) return cache.get(req.trace_path, guard);
  const std::int64_t t0 = tl->now_us();
  bool loaded = false;
  auto entry = cache.get(req.trace_path, guard, &loaded);
  tl->stage(loaded ? "compile" : "cache-lookup", t0, tl->now_us() - t0);
  return entry;
}

}  // namespace

Response handle_predict(const Request& req, TraceCache& cache,
                        const Deadline& deadline,
                        const core::RunGuard* guard, obs::Timeline* tl) {
  check_range("max-cpus", req.max_cpus, 1, kMaxRequestCpus);
  Response resp;
  resp.type = ReqType::kPredict;
  deadline.check("trace load");
  const std::shared_ptr<const TraceCache::Entry> entry =
      timed_get(cache, req, guard, tl);
  const core::SimConfig base = base_config(req);

  std::vector<int> cpu_counts;
  for (int cpus = 1; cpus <= req.max_cpus; cpus *= 2)
    cpu_counts.push_back(cpus);

  // The sweep runs serially inside this handler: the service gets its
  // parallelism from concurrent requests sharing the pool, and a
  // deterministic per-request path keeps responses bit-identical to the
  // offline `vppb predict` (which the combined digest proves).  The
  // loop mirrors core::sweep_cpus(jobs=1) point for point — every point
  // on a pooled reused engine via the shared SweepRunner — with a
  // deadline checkpoint between points so a sweep cannot overstay.
  std::vector<core::SimResult> results;
  std::vector<core::SweepPoint> points;
  const std::int64_t sweep0 = tl != nullptr ? tl->now_us() : 0;
  for (const int cpus : cpu_counts) {
    deadline.check("CPU sweep");
    const std::int64_t pt0 = tl != nullptr ? tl->now_us() : 0;
    core::SimConfig cfg = base;
    cfg.hw.cpus = cpus;
    cfg.build_timeline = false;
    core::SimResult r =
        core::SweepRunner::shared().run(entry->compiled, cfg, guard);
    if (tl != nullptr)
      tl->stage(strprintf("cpus=%d", cpus), pt0, tl->now_us() - pt0, 1);
    points.push_back(core::SweepPoint{cpus, r.speedup, r.speedup / cpus,
                                      r.total});
    results.push_back(std::move(r));
  }
  if (tl != nullptr)
    tl->stage("simulate", sweep0, tl->now_us() - sweep0);
  const core::SpeedupCurve curve(points);

  for (std::size_t i = 0; i < curve.points().size(); ++i) {
    const core::SweepPoint& p = curve.points()[i];
    resp.points.push_back(WirePoint{p.cpus, p.speedup, p.efficiency,
                                    p.total.ns(),
                                    core::digest(results[i])});
  }
  resp.serial_fraction = curve.amdahl_serial_fraction();
  resp.knee = curve.knee(0.5);
  resp.digest = core::digest(results);
  return resp;
}

Response handle_simulate(const Request& req, TraceCache& cache,
                         const Deadline& deadline,
                         const core::RunGuard* guard, obs::Timeline* tl) {
  check_range("cpus", req.cpus, 1, kMaxRequestCpus);
  Response resp;
  resp.type = ReqType::kSimulate;
  deadline.check("trace load");
  const std::shared_ptr<const TraceCache::Entry> entry =
      timed_get(cache, req, guard, tl);
  core::SimConfig cfg = base_config(req);
  cfg.hw.cpus = req.cpus;

  deadline.check("simulation");
  const std::int64_t sim0 = tl != nullptr ? tl->now_us() : 0;
  const core::SimResult r =
      core::SweepRunner::shared().run(entry->compiled, cfg, guard);
  if (tl != nullptr) tl->stage("simulate", sim0, tl->now_us() - sim0);
  resp.total_ns = r.total.ns();
  resp.speedup = r.speedup;
  resp.cpus = r.cpus;
  resp.lwps = r.lwps;
  resp.events = r.events.size();
  resp.digest = core::digest(r);
  if (req.want_svg) {
    deadline.check("SVG render");
    const std::int64_t svg0 = tl != nullptr ? tl->now_us() : 0;
    viz::Visualizer v(r, entry->trace);
    v.compress_threads();
    resp.svg = viz::render_svg(v, viz::RenderOptions{});
    if (tl != nullptr) tl->stage("render-svg", svg0, tl->now_us() - svg0);
  }
  return resp;
}

Response handle_analyze(const Request& req, TraceCache& cache,
                        const Deadline& deadline,
                        const core::RunGuard* guard, obs::Timeline* tl) {
  check_range("cpus", req.cpus, 1, kMaxRequestCpus);
  Response resp;
  resp.type = ReqType::kAnalyze;
  deadline.check("trace load");
  const std::shared_ptr<const TraceCache::Entry> entry =
      timed_get(cache, req, guard, tl);
  core::SimConfig cfg = base_config(req);
  cfg.hw.cpus = req.cpus;

  deadline.check("simulation");
  const std::int64_t sim0 = tl != nullptr ? tl->now_us() : 0;
  const core::SimResult r =
      core::SweepRunner::shared().run(entry->compiled, cfg, guard);
  if (tl != nullptr) tl->stage("simulate", sim0, tl->now_us() - sim0);
  resp.total_ns = r.total.ns();
  resp.speedup = r.speedup;
  resp.cpus = r.cpus;
  resp.lwps = r.lwps;
  resp.events = r.events.size();
  resp.digest = core::digest(r);
  deadline.check("analysis report");
  const std::int64_t an0 = tl != nullptr ? tl->now_us() : 0;
  resp.report = viz::analyze(r, entry->trace).to_string();
  if (tl != nullptr) tl->stage("analyze-report", an0, tl->now_us() - an0);
  return resp;
}

}  // namespace vppb::server
