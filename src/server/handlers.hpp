// Request execution: one function per compute request type, mapping a
// decoded Request plus the shared trace cache to a Response.  Handlers
// run on thread-pool workers; everything they touch is either local,
// immutable (the cached CompiledTrace), or internally synchronized (the
// cache).  They throw vppb::Error for request-level failures — the
// server turns that into a Status::kError response, never a dropped
// connection.
#pragma once

#include "core/guard.hpp"
#include "obs/timeline.hpp"
#include "server/deadline.hpp"
#include "server/protocol.hpp"
#include "server/trace_cache.hpp"

namespace vppb::server {

/// Handlers poll `deadline` at their checkpoints (trace load, each
/// sweep point, render) and throw DeadlineExceeded to abandon work.
/// `guard` (optional) is threaded into the compile and simulate calls,
/// where it is polled per step; a tripped budget or a watchdog cancel
/// surfaces as core::BudgetExceeded for the dispatcher to type.
/// `tl` (optional) receives the per-request stage waterfall
/// (cache-lookup/compile/simulate/render) for protocol v7 timelines.
Response handle_predict(const Request& req, TraceCache& cache,
                        const Deadline& deadline = Deadline(),
                        const core::RunGuard* guard = nullptr,
                        obs::Timeline* tl = nullptr);
Response handle_simulate(const Request& req, TraceCache& cache,
                         const Deadline& deadline = Deadline(),
                         const core::RunGuard* guard = nullptr,
                         obs::Timeline* tl = nullptr);
Response handle_analyze(const Request& req, TraceCache& cache,
                        const Deadline& deadline = Deadline(),
                        const core::RunGuard* guard = nullptr,
                        obs::Timeline* tl = nullptr);

}  // namespace vppb::server
