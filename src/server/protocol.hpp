// The vppbd wire protocol: length-prefixed frames carrying varint-coded
// request/response messages.
//
// Frame layout (everything after the header is the payload):
//
//   [u32 little-endian payload length | 1 .. kMaxFrame] [payload bytes]
//
// Payloads use the same primitives as the binary trace format: LEB128
// varints, zigzag for signed values, IEEE-754 bit patterns for doubles,
// length-prefixed strings.  The first payload byte is the protocol
// version, the second the message type, so a server can reject frames
// from the future with a precise error instead of a crash.
//
// One request frame yields exactly one response frame; a client may
// send any number of requests sequentially over one connection.  All
// decoding is bounds-checked and throws vppb::Error on truncated,
// oversized, or garbage input — the connection is the unit of failure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/socket.hpp"

namespace vppb::server {

constexpr std::uint8_t kProtocolVersion = 8;  ///< v8: hostile-network hardening (HMAC-SHA256 authenticated TCP handshake, kAuthFailed, bounded preambles, partition-tolerant deadlines)
/// Upper bound on a frame payload (a full SVG render fits comfortably;
/// a corrupt or hostile length prefix does not).
constexpr std::size_t kMaxFrame = 64u << 20;

enum class ReqType : std::uint8_t {
  kPredict = 0,   ///< full CPU sweep + Amdahl fit + knee
  kSimulate = 1,  ///< one configuration, optional SVG render
  kAnalyze = 2,   ///< contention / utilization report
  kStats = 3,     ///< server counters, cache hit rate, latencies
  kHealth = 4,    ///< readiness probe; bypasses admission control
  kMetricsDump = 5,  ///< Prometheus text exposition of the obs registry
  kTraceDump = 6,    ///< drain the span tracer's rings (aggregated by the
                     ///< proxy into a cluster-wide flame view)
};
constexpr std::size_t kReqTypeCount = 7;

const char* to_string(ReqType t);

enum class Status : std::uint8_t {
  kOk = 0,
  kError = 1,             ///< request failed (bad trace, bad config, ...)
  kOverloaded = 2,        ///< admission queue full; retry later
  kDeadlineExceeded = 3,  ///< request deadline elapsed before completion
  kBudgetExceeded = 4,    ///< a server resource budget (steps, wall time,
                          ///< simulated time, result bytes) stopped the run
  kPoisoned = 5,          ///< trace content is quarantined after repeated
                          ///< crashes/budget kills; rejected pre-dispatch
  kQuotaExceeded = 6,     ///< the client spent its cluster-wide rate quota;
                          ///< retry_after_ms says when a token refills
  kAuthFailed = 7,        ///< the peer failed (or refused) the v8 TCP key
                          ///< proof; rejected pre-dispatch, connection
                          ///< closed
};

const char* to_string(Status s);

struct Request {
  ReqType type = ReqType::kPredict;
  std::string trace_path;         ///< predict/simulate/analyze
  int cpus = 8;                   ///< simulate/analyze
  int lwps = 0;                   ///< 0 = one LWP per thread
  int max_cpus = 16;              ///< predict: sweep 1,2,4.. up to this
  std::int64_t comm_delay_us = 0;
  bool want_svg = false;          ///< simulate: include an SVG render
  /// Server-side deadline: if the request has not completed this many
  /// milliseconds after arrival, the server abandons the work and
  /// responds kDeadlineExceeded.  0 = no deadline.
  std::int64_t deadline_ms = 0;
  /// Caller identity for per-client fair admission (0 = anonymous).
  /// When the server runs with a per-client limit, requests beyond it
  /// for one identity are rejected kOverloaded while other clients'
  /// slots stay available.
  std::uint64_t client_id = 0;
  /// Identity stamped by the routing tier (protocol v6): the proxy
  /// resolves anonymous requests to its own per-connection key so a
  /// shard's per-client fairness still distinguishes callers that all
  /// arrive over the proxy's pooled connections.  A shard uses it only
  /// when client_id is 0; 0 = not behind a proxy.
  std::uint64_t origin_id = 0;
  // Distributed trace context (protocol v7).  The originating client
  // mints trace_id; every tier propagates it unchanged and tags its
  // spans with it, so one id stitches proxy + shard rings together.
  std::uint64_t trace_id = 0;        ///< 0 = untraced request
  std::uint64_t parent_span_id = 0;  ///< caller's span, for future nesting
  bool sampled = false;   ///< tag spans with trace_id at every tier
  bool want_timeline = false;  ///< return the per-request stage timeline
};

/// One sweep point of a predict response.
struct WirePoint {
  int cpus = 1;
  double speedup = 1.0;
  double efficiency = 1.0;
  std::int64_t total_ns = 0;
  std::uint64_t digest = 0;  ///< core::digest of this point's SimResult
};

/// The stats payload: request counters, cache effectiveness, and the
/// server-side latency distribution of executed requests.
struct StatsBody {
  std::uint64_t requests = 0;      ///< all received requests, by arrival
  std::uint64_t by_type[kReqTypeCount] = {};  ///< indexed by ReqType
  std::uint64_t errors = 0;        ///< responses with Status::kError
  std::uint64_t overloads = 0;     ///< admission rejections
  std::uint64_t deadlines = 0;     ///< responses with kDeadlineExceeded
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_waits = 0;   ///< single-flight waits on a load
  std::uint64_t cache_entries = 0;
  std::uint64_t cache_bytes = 0;
  std::uint64_t latency_count = 0;  ///< executed (admitted) requests
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
  // Resource-governance counters (protocol v4).
  std::uint64_t budget_kills = 0;    ///< responses with kBudgetExceeded
  std::uint64_t poisoned = 0;        ///< responses with kPoisoned
  std::uint64_t poison_strikes = 0;  ///< crash/budget strikes recorded
  std::uint64_t quarantined = 0;     ///< content keys quarantined right now
  std::uint64_t watchdog_cancels = 0;       ///< overdue requests cancelled
  std::uint64_t watchdog_replacements = 0;  ///< wedged workers replaced
  // Cluster-resilience counters (protocol v6); a plain vppbd reports
  // zeros, the proxy fills them from its own admission and brownout
  // layers.
  std::uint64_t quota_rejections = 0;  ///< responses with kQuotaExceeded
  std::uint64_t brownout_sheds = 0;    ///< cold computes shed in brownout
  std::uint64_t stale_serves = 0;      ///< answers served from the proxy
                                       ///< response cache (served_stale)
  // SLO / tracing telemetry (protocol v7).  Burn rates are multi-window
  // error-budget consumption rates (1.0 = spending exactly the budget);
  // zeros when no objective is configured.
  double slo_p99_ms = 0.0;        ///< configured latency objective (0 = off)
  double slo_availability = 0.0;  ///< configured availability objective
  double lat_burn_1m = 0.0;
  double lat_burn_5m = 0.0;
  double lat_burn_1h = 0.0;
  double avail_burn_1m = 0.0;
  double avail_burn_5m = 0.0;
  double avail_burn_1h = 0.0;
  std::uint64_t sampled_requests = 0;  ///< requests carrying a trace_id
  std::uint64_t trace_dropped = 0;     ///< span ring events overwritten
  // Hostile-network counters (protocol v8).
  std::uint64_t auth_failures = 0;  ///< TCP peers rejected by the handshake
  std::uint64_t idle_reaps = 0;     ///< connections closed for idling past
                                    ///< the server's idle deadline
};

/// One backend's slice of an aggregated cluster response (protocol v5).
/// The proxy fills one per configured shard for stats / health /
/// metricsdump requests; a plain vppbd always answers with an empty
/// shard list.
struct ShardInfo {
  std::uint64_t shard_id = 0;  ///< operator-assigned identity (0 = unset)
  std::uint64_t epoch = 0;     ///< changes on every shard (re)start
  bool healthy = false;        ///< in the routing ring right now
  std::string endpoint;        ///< "path.sock" or "127.0.0.1:port"
  StatsBody stats;             ///< this shard's own counters
};

/// One stage (or marker) of a per-request timeline (protocol v7).
/// Offsets are microseconds since arrival at the outermost tier that
/// recorded the timeline; depth nests a shard's stages under the
/// proxy's forward stage so summing one depth never double-counts.
struct StageSpan {
  std::string name;
  std::int64_t start_us = 0;
  std::int64_t dur_us = 0;  ///< -1 = instant marker
  std::uint32_t depth = 0;
};

/// One span drained from a process's tracer ring by a tracedump
/// request (protocol v7).  Timestamps are absolute unix ns (each
/// process adds its tracer epoch before answering), so a collector
/// merges processes onto one clock without negotiation.
struct WireSpan {
  std::uint64_t pid = 0;  ///< shard id of the emitting process (0 = proxy
                          ///< or standalone vppbd)
  std::uint32_t tid = 0;  ///< emitting thread's stable export id
  std::string name;
  std::string cat;
  std::int64_t start_unix_ns = 0;
  std::int64_t dur_ns = -1;  ///< -1 = instant event
  std::uint64_t trace_id = 0;
  std::string arg_name;  ///< empty = no argument
  std::int64_t arg_value = 0;
};

/// Decode-side plausibility caps for the v7 repeated fields.
constexpr std::size_t kMaxTimelineStages = 4096;
constexpr std::size_t kMaxWireSpans = 1u << 21;

struct Response {
  Status status = Status::kOk;
  ReqType type = ReqType::kPredict;  ///< echoes the request type
  std::string error;                 ///< set when status != kOk

  // predict
  std::vector<WirePoint> points;
  double serial_fraction = 0.0;
  int knee = 1;

  // simulate / analyze (and predict: combined digest over all points)
  std::uint64_t digest = 0;
  std::int64_t total_ns = 0;
  double speedup = 0.0;
  int cpus = 0;
  int lwps = 0;
  std::uint64_t events = 0;
  std::string svg;     ///< simulate with want_svg
  std::string report;  ///< analyze; metricsdump (Prometheus text)

  // stats / health
  StatsBody stats;

  // health
  bool ready = false;              ///< accepting and serving requests
  std::uint64_t in_flight = 0;     ///< admitted requests currently running
  std::uint64_t admission_limit = 0;

  // cluster (protocol v5)
  std::uint64_t shard_id = 0;  ///< identity of the answering shard (0 = unset)
  std::uint64_t epoch = 0;     ///< start-time epoch of the answering process
  /// Per-shard breakdown of an aggregated proxy response; empty from a
  /// plain vppbd and for non-aggregating request types.
  std::vector<ShardInfo> shards;

  // cluster resilience (protocol v6)
  /// With kQuotaExceeded (and brownout sheds): milliseconds until the
  /// client's next token refills / the proxy expects capacity back.
  std::int64_t retry_after_ms = 0;
  bool brownout = false;          ///< the proxy is shedding load by priority
  std::uint64_t live_shards = 0;  ///< health/stats: shards in the ring now
  std::uint64_t total_shards = 0;
  /// This answer came from the proxy's response cache instead of a
  /// shard (digest-safe: responses are deterministic in the request).
  bool served_stale = false;
  std::int64_t stale_age_ms = 0;  ///< age of the cached answer served

  // Distributed tracing & SLO (protocol v7).
  bool slo_burning = false;     ///< stats/health: multi-window SLO breach
  std::uint64_t trace_id = 0;   ///< echo of the request's trace context
  /// Per-request stage waterfall; filled when the request asked
  /// want_timeline, empty otherwise.
  std::vector<StageSpan> timeline;
  /// tracedump: spans drained from the answering process(es).
  std::vector<WireSpan> spans;
};

std::vector<std::uint8_t> encode(const Request& req);
std::vector<std::uint8_t> encode(const Response& resp);
Request decode_request(const std::uint8_t* data, std::size_t size);
Response decode_response(const std::uint8_t* data, std::size_t size);
Request decode_request(const std::vector<std::uint8_t>& payload);
Response decode_response(const std::vector<std::uint8_t>& payload);

/// Writes one frame (header + payload).  Throws vppb::Error on
/// oversized payloads or a lost peer.
void write_frame(util::Socket& sock, const std::vector<std::uint8_t>& payload);

/// Reads one frame into `payload`.  Returns false on a clean
/// end-of-stream at a frame boundary; throws vppb::Error on a
/// truncated header/payload or an out-of-range length prefix.
bool read_frame(util::Socket& sock, std::vector<std::uint8_t>& payload);

/// Per-frame ceilings for reads from peers that have not earned full
/// trust (protocol v8).  `max_bytes` rejects a length prefix above the
/// cap before any allocation; `frame_deadline_ms` bounds the *total*
/// time a started frame may take to arrive, so a peer trickling one
/// byte per receive-timeout window cannot hold a 64 MiB read open for
/// days.
struct FrameLimits {
  std::size_t max_bytes = kMaxFrame;
  int frame_deadline_ms = 0;  ///< 0 = unbounded
};

bool read_frame(util::Socket& sock, std::vector<std::uint8_t>& payload,
                const FrameLimits& limits);

}  // namespace vppb::server
