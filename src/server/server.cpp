#include "server/server.hpp"

#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <thread>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "server/handlers.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace vppb::server {

namespace {
using obs::LogLevel;
}  // namespace

Server::Server(ServerOptions opt)
    : opt_(opt),
      faults_(opt.faults ? opt.faults : &util::FaultPlan::global()),
      cache_(opt.cache_entries, opt.cache_bytes, faults_) {
  if (opt_.pool) {
    pool_ = opt_.pool;
  } else {
    owned_pool_ = std::make_unique<util::ThreadPool>(opt_.jobs);
    pool_ = owned_pool_.get();
  }
}

Server::~Server() { stop(); }

void Server::start() {
  VPPB_CHECK_MSG(!running_.load(), "server already started");
  if (!opt_.unix_path.empty()) {
    listener_ = util::listen_unix(opt_.unix_path);
    endpoint_ = opt_.unix_path;
  } else {
    port_ = opt_.tcp_port;
    listener_ = util::listen_tcp(port_);
    endpoint_ = strprintf("127.0.0.1:%u", port_);
  }
  running_.store(true);
  accept_thread_ = std::thread(&Server::accept_loop, this);
  obs::logf(LogLevel::kInfo, "server", "listening on %s (admission limit %d)",
            endpoint_.c_str(), opt_.admission_limit);
  if (faults_->armed())
    obs::logf(LogLevel::kWarn, "server", "fault injection armed: %s",
              faults_->summary().c_str());
}

void Server::stop() {
  if (!running_.exchange(false)) {
    // Never started, or a second stop(): still make sure a join from a
    // racing first stop() is not skipped.
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  {
    // Half-close every connection's read side: its IO thread finishes
    // the request it is on, delivers the response, then sees EOF.
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto& c : conns_) c->sock.shutdown_read();
  }
  // The accept thread is gone, so conns_ is stable from here.
  for (auto& c : conns_)
    if (c->thread.joinable()) c->thread.join();
  conns_.clear();
  if (!opt_.unix_path.empty()) ::unlink(opt_.unix_path.c_str());
  obs::logf(LogLevel::kInfo, "server", "stopped (drained) on %s",
            endpoint_.c_str());
}

void Server::accept_loop() {
  while (running_.load()) {
    util::Socket s = util::accept_with_timeout(listener_, 100);
    if (!s.valid()) continue;
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (!running_.load()) break;  // raced with stop(): drop the socket
    conns_.push_back(std::make_unique<Conn>());
    Conn* conn = conns_.back().get();
    conn->sock = std::move(s);
    conn->thread = std::thread(&Server::serve_connection, this, conn);
  }
}

void Server::serve_connection(Conn* conn) {
  try {
    std::vector<std::uint8_t> payload;
    while (read_frame(conn->sock, payload)) {
      // Fault injection happens where real damage would: between the
      // wire and the decoder.  A corrupted payload must come back as a
      // typed kError response; a short read must cost exactly this
      // connection and nothing else.
      if (faults_->should_fire(util::FaultSite::kShortRead))
        throw Error("injected short read: dropping connection");
      if (!payload.empty() &&
          faults_->should_fire(util::FaultSite::kCorruptFrame))
        payload[payload.size() / 2] ^= 0x20;
      if (faults_->should_fire(util::FaultSite::kDelayResponse))
        std::this_thread::sleep_for(std::chrono::milliseconds(
            faults_->param(util::FaultSite::kDelayResponse)));
      Response resp;
      try {
        resp = execute(decode_request(payload));
      } catch (const Error& e) {
        // Undecodable but correctly framed request: answer, keep the
        // connection (the framing itself is intact).
        resp.status = Status::kError;
        resp.error = e.what();
        metrics_.count_error();
      }
      write_frame(conn->sock, encode(resp));
    }
  } catch (const Error& e) {
    // Broken framing or a lost peer: the connection is the unit of
    // failure — drop it, the server lives on.
    obs::logf(LogLevel::kDebug, "server", "connection dropped: %s", e.what());
  }
}

Response Server::execute(const Request& req) {
  metrics_.count_request(req.type);
  const auto t0 = std::chrono::steady_clock::now();

  // Health answers before admission: a readiness probe that can be
  // rejected for overload cannot tell "busy but alive" from "dead",
  // which is the one question it exists to answer.
  if (req.type == ReqType::kHealth) return health_response();

  const Deadline deadline = Deadline::after_ms(req.deadline_ms);

  // Admission: reserve a slot or reject immediately.  The count covers
  // requests posted to the pool but not yet finished, so a saturated
  // pool surfaces as explicit overload, never as unbounded queueing.
  if (in_flight_.fetch_add(1, std::memory_order_acq_rel) >=
      opt_.admission_limit) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    metrics_.count_overload();
    obs::logf(LogLevel::kDebug, "server", "overload: rejecting %s request",
              to_string(req.type));
    Response resp;
    resp.type = req.type;
    resp.status = Status::kOverloaded;
    resp.error = strprintf("server overloaded: %d requests in flight "
                           "(admission limit %d); retry later",
                           opt_.admission_limit, opt_.admission_limit);
    return resp;
  }

  Response resp;
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  pool_->post([&]() {
    resp = dispatch(req, deadline);
    // Notify under the lock: `cv` lives on the waiter's stack, and the
    // waiter may return (destroying it) the moment it can re-acquire
    // `mu` — which this lock scope forbids until notify_one is done.
    std::lock_guard<std::mutex> lock(mu);
    done = true;
    cv.notify_one();
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&]() { return done; });
  }
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);

  // A result computed after the deadline passed is as useless to the
  // client as no result: report it as such, so deadline semantics hold
  // even when no handler checkpoint happened to notice the expiry.
  if (resp.status == Status::kOk && deadline.expired()) {
    resp = Response{};
    resp.type = req.type;
    resp.status = Status::kDeadlineExceeded;
    resp.error = "deadline exceeded: result completed too late";
    metrics_.count_deadline();
  }

  if (resp.status == Status::kError) metrics_.count_error();
  const double latency_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - t0)
          .count();
  metrics_.record_latency_us(latency_us);
  obs::logf(LogLevel::kDebug, "server", "%s -> status %d in %.0f us",
            to_string(req.type), static_cast<int>(resp.status), latency_us);
  return resp;
}

Response Server::dispatch(const Request& req, const Deadline& deadline) {
  try {
    // A request that spent its whole budget waiting for a worker is
    // abandoned here, before any compute.
    deadline.check("queue wait");
    switch (req.type) {
      case ReqType::kPredict:
        return handle_predict(req, cache_, deadline);
      case ReqType::kSimulate:
        return handle_simulate(req, cache_, deadline);
      case ReqType::kAnalyze:
        return handle_analyze(req, cache_, deadline);
      case ReqType::kStats:
        return stats_response();
      case ReqType::kHealth:
        return health_response();  // normally answered pre-admission
      case ReqType::kMetricsDump:
        return metricsdump_response();
    }
    throw Error("unhandled request type");
  } catch (const DeadlineExceeded& e) {
    metrics_.count_deadline();
    Response resp;
    resp.type = req.type;
    resp.status = Status::kDeadlineExceeded;
    resp.error = e.what();
    return resp;
  } catch (const std::exception& e) {
    // std::exception, not just vppb::Error: an injected bad_alloc (or a
    // real one) must become a typed response, never a dead worker.
    Response resp;
    resp.type = req.type;
    resp.status = Status::kError;
    resp.error = e.what();
    return resp;
  }
}

void Server::fill_cache_stats(StatsBody& out) {
  const TraceCache::Stats cs = cache_.stats();
  out.cache_hits = cs.hits;
  out.cache_misses = cs.misses;
  out.cache_evictions = cs.evictions;
  out.cache_waits = cs.waits;
  out.cache_entries = cs.entries;
  out.cache_bytes = cs.bytes;
}

Response Server::stats_response() {
  Response resp;
  resp.type = ReqType::kStats;
  metrics_.snapshot(resp.stats);  // includes this stats request itself
  fill_cache_stats(resp.stats);
  return resp;
}

Response Server::health_response() {
  Response resp;
  resp.type = ReqType::kHealth;
  resp.ready = running_.load();
  resp.in_flight = static_cast<std::uint64_t>(
      in_flight_.load(std::memory_order_acquire));
  resp.admission_limit = static_cast<std::uint64_t>(opt_.admission_limit);
  metrics_.snapshot(resp.stats);
  fill_cache_stats(resp.stats);
  return resp;
}

Response Server::metricsdump_response() {
  // Refresh the point-in-time gauges the event paths cannot keep
  // current on their own, then dump the whole registry.  The text rides
  // in `report`, the same free-form channel `analyze` uses.
  auto& reg = obs::Registry::global();
  reg.gauge("vppb_server_in_flight", "Admitted requests currently running")
      .set(in_flight_.load(std::memory_order_acquire));
  reg.gauge("vppb_server_admission_limit", "Admission control limit")
      .set(opt_.admission_limit);
  const TraceCache::Stats cs = cache_.stats();
  reg.gauge("vppb_cache_entries", "Ready entries resident")
      .set(static_cast<std::int64_t>(cs.entries));
  reg.gauge("vppb_cache_bytes", "Raw trace bytes resident")
      .set(static_cast<std::int64_t>(cs.bytes));

  Response resp;
  resp.type = ReqType::kMetricsDump;
  resp.report = reg.prometheus_text();
  metrics_.snapshot(resp.stats);  // keep the structured body populated too
  fill_cache_stats(resp.stats);
  return resp;
}

}  // namespace vppb::server
