#include "server/server.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <thread>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "server/auth.hpp"
#include "server/handlers.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace vppb::server {

namespace {
using obs::LogLevel;
}  // namespace

Server::Server(ServerOptions opt)
    : opt_(opt),
      faults_(opt.faults ? opt.faults : &util::FaultPlan::global()),
      cache_(opt.cache_entries, opt.cache_bytes, faults_) {
  if (opt_.pool) {
    pool_ = opt_.pool;
  } else {
    owned_pool_ = std::make_unique<util::ThreadPool>(opt_.jobs);
    pool_ = owned_pool_.get();
  }
  cache_.configure_quarantine(opt_.poison_strikes, opt_.quarantine_ms);
  slo_.configure(obs::SloOptions{opt_.slo_p99_ms, opt_.slo_availability});
}

Server::~Server() { stop(); }

void Server::start() {
  VPPB_CHECK_MSG(!running_.load(), "server already started");
  if (!opt_.unix_path.empty()) {
    listener_ = util::listen_unix(opt_.unix_path);
    endpoint_ = opt_.unix_path;
  } else {
    port_ = opt_.tcp_port;
    listener_ = util::listen_tcp(port_);
    endpoint_ = strprintf("127.0.0.1:%u", port_);
  }
  // Epoch: unique per process start.  Mixing the pid into the clock
  // reading keeps two shards forked in the same tick distinguishable.
  epoch_ = static_cast<std::uint64_t>(
               std::chrono::steady_clock::now().time_since_epoch().count()) ^
           (static_cast<std::uint64_t>(::getpid()) << 48);
  if (epoch_ == 0) epoch_ = 1;
  // Always-on span capture (tracedump drains these rings; bench_obs
  // gates the enabled overhead < 3%).
  if (opt_.tracing) obs::Tracer::global().enable();
  running_.store(true);
  watchdog_stop_.store(false);
  if (opt_.watchdog_interval_ms > 0)
    watchdog_thread_ = std::thread(&Server::watchdog_loop, this);
  accept_thread_ = std::thread(&Server::accept_loop, this);
  obs::logf(LogLevel::kInfo, "server", "listening on %s (admission limit %d)",
            endpoint_.c_str(), opt_.admission_limit);
  if (faults_->armed())
    obs::logf(LogLevel::kWarn, "server", "fault injection armed: %s",
              faults_->summary().c_str());
}

void Server::stop() {
  if (!running_.exchange(false)) {
    // Never started, or a second stop(): still make sure a join from a
    // racing first stop() is not skipped.
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  {
    // Half-close every connection's read side: its IO thread finishes
    // the request it is on, delivers the response, then sees EOF.
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto& c : conns_) c->sock.shutdown_read();
  }
  // The accept thread is gone, so conns_ is stable from here.
  for (auto& c : conns_)
    if (c->thread.joinable()) c->thread.join();
  conns_.clear();
  // An abandoned worker task may still be running after its waiter
  // returned; it captures `this`, so it must finish before teardown.
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    drain_cv_.wait(lock, [&]() { return tasks_live_ == 0; });
  }
  // The watchdog outlives the drain so it can rescue draining
  // connections whose worker is wedged.
  watchdog_stop_.store(true);
  watch_cv_.notify_all();
  if (watchdog_thread_.joinable()) watchdog_thread_.join();
  if (!opt_.unix_path.empty()) ::unlink(opt_.unix_path.c_str());
  obs::logf(LogLevel::kInfo, "server", "stopped (drained) on %s",
            endpoint_.c_str());
}

void Server::accept_loop() {
  while (running_.load()) {
    util::Socket s = util::accept_with_timeout(listener_, 100);
    if (!s.valid()) continue;
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (!running_.load()) break;  // raced with stop(): drop the socket
    conns_.push_back(std::make_unique<Conn>());
    Conn* conn = conns_.back().get();
    conn->sock = std::move(s);
    conn->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
    conn->thread = std::thread(&Server::serve_connection, this, conn);
  }
}

void Server::serve_connection(Conn* conn) {
  // TCP peers must pass the v8 handshake before the first frame is
  // read; the rejection is typed, bounded (fixed-size preamble, never a
  // length-prefixed allocation), and pre-dispatch.  Unix sockets skip
  // it — the socket file's permissions are the local trust boundary.
  if (opt_.unix_path.empty()) {
    try {
      AuthConfig cfg;
      cfg.key = opt_.auth_key;
      cfg.handshake_timeout_ms = static_cast<int>(opt_.auth_timeout_ms);
      auth_accept(conn->sock, cfg);
    } catch (const AuthError& e) {
      metrics_.count_auth_failure();
      obs::logf(LogLevel::kWarn, "server", "auth failed: %s", e.what());
      return;
    } catch (const Error& e) {
      metrics_.count_auth_failure();
      obs::logf(LogLevel::kDebug, "server", "handshake dropped: %s",
                e.what());
      return;
    }
    // Half-open connections (peer host gone without a FIN) must die
    // deterministically, not after the kernel's multi-hour default.
    conn->sock.set_keepalive(/*idle_s=*/30, /*interval_s=*/10,
                             /*probes=*/3, /*user_timeout_ms=*/45000);
  }
  if (opt_.idle_timeout_ms > 0)
    conn->sock.set_recv_timeout(static_cast<int>(opt_.idle_timeout_ms));
  FrameLimits limits;
  if (opt_.max_request_frame_bytes > 0)
    limits.max_bytes = opt_.max_request_frame_bytes;
  limits.frame_deadline_ms = static_cast<int>(opt_.frame_deadline_ms);
  try {
    std::vector<std::uint8_t> payload;
    while (read_frame(conn->sock, payload, limits)) {
      // Fault injection happens where real damage would: between the
      // wire and the decoder.  A corrupted payload must come back as a
      // typed kError response; a short read must cost exactly this
      // connection and nothing else.
      if (faults_->should_fire(util::FaultSite::kShortRead))
        throw Error("injected short read: dropping connection");
      if (!payload.empty() &&
          faults_->should_fire(util::FaultSite::kCorruptFrame))
        payload[payload.size() / 2] ^= 0x20;
      Response resp;
      std::uint64_t trace_id = 0;
      try {
        const Request req = decode_request(payload);
        trace_id = req.trace_id;
        resp = execute(req, conn->id);
      } catch (const Error& e) {
        // Undecodable but correctly framed request: answer, keep the
        // connection (the framing itself is intact).
        resp.status = Status::kError;
        resp.error = e.what();
        metrics_.count_error();
      }
      // Every response names its origin, not just the probe types: the
      // routing tier attributes compute answers (failover, hedging) by
      // the shard identity stamped here.
      resp.shard_id = opt_.shard_id;
      resp.epoch = epoch_;
      resp.trace_id = trace_id;
      if (resp.timeline.empty()) {
        write_frame(conn->sock, encode(resp));
      } else {
        // The serialize stage cannot ride inside the bytes it measures;
        // time a first encode, then re-encode with the stage appended
        // (only timeline requests pay the double encode).
        std::int64_t last_us = 0;
        for (const StageSpan& sp : resp.timeline)
          last_us = std::max(
              last_us, sp.start_us + (sp.dur_us > 0 ? sp.dur_us : 0));
        const auto s0 = std::chrono::steady_clock::now();
        (void)encode(resp);
        const std::int64_t ser_us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - s0)
                .count();
        resp.timeline.push_back(StageSpan{
            "serialize", last_us, std::max<std::int64_t>(ser_us, 1), 0});
        write_frame(conn->sock, encode(resp));
      }
    }
  } catch (const util::SocketTimeout& e) {
    // Idle past the deadline, or a started frame trickling in too
    // slowly: reap the connection.  The slot it held is free again and
    // the server owes this peer nothing.
    metrics_.count_idle_reap();
    obs::logf(LogLevel::kInfo, "server", "idle connection reaped: %s",
              e.what());
  } catch (const Error& e) {
    // Broken framing or a lost peer: the connection is the unit of
    // failure — drop it, the server lives on.
    obs::logf(LogLevel::kDebug, "server", "connection dropped: %s", e.what());
  }
  // The Conn object lives until stop() joins its thread, but the wire
  // must not: shut the socket down now so a peer blocked on recv sees
  // EOF the moment we stop serving it.  shutdown (not close) — stop()
  // may concurrently shutdown_read() this fd, and closing here would
  // race that against fd reuse.
  conn->sock.shutdown_both();
}

core::RunLimits Server::request_limits(const Request& req) const {
  core::RunLimits limits;
  limits.max_steps = opt_.max_steps;
  limits.max_sim_ms = opt_.max_sim_ms;
  limits.max_result_bytes = opt_.max_result_mb << 20;
  // The tighter of the server wall ceiling and the request's own
  // deadline: the engine then notices an expired deadline mid-step,
  // not just at the coarse handler checkpoints.
  limits.max_wall_ms = opt_.max_wall_ms;
  if (req.deadline_ms > 0 &&
      (limits.max_wall_ms == 0 || req.deadline_ms < limits.max_wall_ms))
    limits.max_wall_ms = req.deadline_ms;
  return limits;
}

bool Server::client_admit(std::uint64_t client) {
  std::lock_guard<std::mutex> lock(client_mu_);
  int& n = client_in_flight_[client];
  if (n >= opt_.per_client_limit) return false;
  ++n;
  return true;
}

void Server::client_release(std::uint64_t client) {
  std::lock_guard<std::mutex> lock(client_mu_);
  auto it = client_in_flight_.find(client);
  if (it != client_in_flight_.end() && --it->second <= 0)
    client_in_flight_.erase(it);
}

Response Server::execute(const Request& req, std::uint64_t conn_key) {
  metrics_.count_request(req.type);
  if (req.trace_id != 0) metrics_.count_sampled();
  const auto t0 = std::chrono::steady_clock::now();

  // Health answers before admission: a readiness probe that can be
  // rejected for overload cannot tell "busy but alive" from "dead",
  // which is the one question it exists to answer.
  if (req.type == ReqType::kHealth) return health_response();

  const bool compute = req.type == ReqType::kPredict ||
                       req.type == ReqType::kSimulate ||
                       req.type == ReqType::kAnalyze;

  // Quarantine check before any slot is reserved: a poisoned trace has
  // already cost workers; it must not cost admission capacity too.
  // Anything other than "quarantined" (unreadable file, ...) falls
  // through — the handler produces the authoritative error.
  if (compute) {
    try {
      cache_.check_poisoned(req.trace_path);
    } catch (const Poisoned& e) {
      metrics_.count_poisoned();
      obs::logf(LogLevel::kWarn, "server", "poisoned: rejecting %s of %s",
                to_string(req.type), req.trace_path.c_str());
      Response resp;
      resp.type = req.type;
      resp.status = Status::kPoisoned;
      resp.error = e.what();
      return resp;
    } catch (const std::exception&) {
    }
  }

  // Per-client fair admission before the global gate: one flooding
  // client exhausts its own quota, not the shared slots.
  // Identity order: explicit client_id, then the origin the routing
  // tier stamped (all proxy traffic shares pooled connections, so the
  // conn key alone cannot tell proxied callers apart), then the
  // connection itself.
  const std::uint64_t client = req.client_id != 0   ? req.client_id
                               : req.origin_id != 0 ? req.origin_id
                                                    : conn_key;
  const bool client_gated = opt_.per_client_limit > 0;
  if (client_gated && !client_admit(client)) {
    metrics_.count_overload();
    obs::logf(LogLevel::kDebug, "server",
              "overload: client %llu over per-client limit %d",
              static_cast<unsigned long long>(client), opt_.per_client_limit);
    Response resp;
    resp.type = req.type;
    resp.status = Status::kOverloaded;
    resp.error = strprintf("client quota exceeded: %d requests in flight "
                           "for this client (per-client limit %d); retry later",
                           opt_.per_client_limit, opt_.per_client_limit);
    return resp;
  }

  // Admission: reserve a slot or reject immediately.  The count covers
  // requests posted to the pool but not yet finished, so a saturated
  // pool surfaces as explicit overload, never as unbounded queueing.
  if (in_flight_.fetch_add(1, std::memory_order_acq_rel) >=
      opt_.admission_limit) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    if (client_gated) client_release(client);
    metrics_.count_overload();
    obs::logf(LogLevel::kDebug, "server", "overload: rejecting %s request",
              to_string(req.type));
    Response resp;
    resp.type = req.type;
    resp.status = Status::kOverloaded;
    resp.error = strprintf("server overloaded: %d requests in flight "
                           "(admission limit %d); retry later",
                           opt_.admission_limit, opt_.admission_limit);
    return resp;
  }

  auto st = std::make_shared<ReqState>();
  st->guard.arm(request_limits(req));
  st->deadline = Deadline::after_ms(req.deadline_ms);
  st->type = req.type;
  st->trace_path = compute ? req.trace_path : std::string();
  st->admitted_at = t0;
  std::int64_t posted_us = 0;
  if (req.want_timeline && compute) {
    st->timeline = std::make_unique<obs::Timeline>();
    // Admission covers everything from frame decode to the pool post
    // (quarantine + quota checks); queue is stamped by the worker when
    // it actually picks the request up.
    posted_us = st->timeline->now_us();
    st->timeline->stage("admission", 0, posted_us);
  }
  {
    std::lock_guard<std::mutex> lock(watch_mu_);
    watched_.push_back(st);
  }
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    ++tasks_live_;
  }
  pool_->post([this, req, st, posted_us]() {
    if (st->timeline)
      st->timeline->stage("queue", posted_us,
                          st->timeline->now_us() - posted_us);
    Response r = dispatch(req, *st);
    {
      // The watchdog may have answered the client already; its verdict
      // stands and this (late) result is discarded.
      std::lock_guard<std::mutex> lock(st->mu);
      if (!st->done) {
        st->resp = std::move(r);
        st->done = true;
        st->cv.notify_one();
      }
    }
    std::lock_guard<std::mutex> lock(drain_mu_);
    if (--tasks_live_ == 0) drain_cv_.notify_all();
  });

  Response resp;
  {
    std::unique_lock<std::mutex> lock(st->mu);
    st->cv.wait(lock, [&]() { return st->done; });
    resp = std::move(st->resp);
  }
  {
    std::lock_guard<std::mutex> lock(watch_mu_);
    for (auto it = watched_.begin(); it != watched_.end(); ++it) {
      if (it->get() == st.get()) {
        watched_.erase(it);
        break;
      }
    }
  }
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  if (client_gated) client_release(client);

  // A result computed after the deadline passed is as useless to the
  // client as no result: report it as such, so deadline semantics hold
  // even when no handler checkpoint happened to notice the expiry.
  if (resp.status == Status::kOk && st->deadline.expired()) {
    resp = Response{};
    resp.type = req.type;
    resp.status = Status::kDeadlineExceeded;
    resp.error = "deadline exceeded: result completed too late";
    metrics_.count_deadline();
  }

  if (resp.status == Status::kError) metrics_.count_error();
  const double latency_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - t0)
          .count();
  metrics_.record_latency_us(latency_us, req.sampled ? req.trace_id : 0);
  if (compute) {
    // SLO accounting covers compute only: probes and dumps are not the
    // service the objectives are about.  Overload and poison rejections
    // count as ok — they are the server protecting the objective, and
    // charging them would let one flooding client burn the error budget.
    const bool ok = resp.status != Status::kError &&
                    resp.status != Status::kDeadlineExceeded &&
                    resp.status != Status::kBudgetExceeded;
    slo_.record(latency_us, ok);
  }
  obs::logf(LogLevel::kDebug, "server", "%s -> status %d in %.0f us",
            to_string(req.type), static_cast<int>(resp.status), latency_us);
  return resp;
}

Response Server::dispatch(const Request& req, ReqState& st) {
  // Propagated trace context: every span this worker opens while the
  // handler runs carries the caller's trace id, so a cross-process
  // trace-collect can stitch proxy and shard spans into one trace.
  obs::TraceContext tctx(req.sampled ? req.trace_id : 0);
  Response resp = [&]() -> Response {
  try {
    // A request that spent its whole budget waiting for a worker is
    // abandoned here, before any compute.
    st.deadline.check("queue wait");
    // Worker-side stall faults.  delay-ms is cooperative: it polls the
    // guard, so a watchdog cancel cuts it short.  wedge-ms is not — it
    // models a worker stuck in a tight native loop, which only the
    // watchdog's abandon-and-replace escalation can get past.
    if (faults_->should_fire(util::FaultSite::kDelayResponse)) {
      const auto until =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(
              faults_->param(util::FaultSite::kDelayResponse));
      while (std::chrono::steady_clock::now() < until) {
        st.guard.check_cancel();
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    if (faults_->should_fire(util::FaultSite::kWedge))
      std::this_thread::sleep_for(std::chrono::milliseconds(
          faults_->param(util::FaultSite::kWedge)));
    switch (req.type) {
      case ReqType::kPredict:
        return handle_predict(req, cache_, st.deadline, &st.guard,
                              st.timeline.get());
      case ReqType::kSimulate:
        return handle_simulate(req, cache_, st.deadline, &st.guard,
                               st.timeline.get());
      case ReqType::kAnalyze:
        return handle_analyze(req, cache_, st.deadline, &st.guard,
                              st.timeline.get());
      case ReqType::kStats:
        return stats_response();
      case ReqType::kHealth:
        return health_response();  // normally answered pre-admission
      case ReqType::kMetricsDump:
        return metricsdump_response();
      case ReqType::kTraceDump:
        return tracedump_response();
    }
    throw Error("unhandled request type");
  } catch (const DeadlineExceeded& e) {
    metrics_.count_deadline();
    Response resp;
    resp.type = req.type;
    resp.status = Status::kDeadlineExceeded;
    resp.error = e.what();
    return resp;
  } catch (const core::BudgetExceeded& e) {
    Response resp;
    resp.type = req.type;
    // A cancel or wall trip on a request whose own deadline has passed
    // is that deadline biting (the guard is just the messenger), so the
    // client sees the same typed status it always has.  Genuine budget
    // trips additionally count as a poison strike: a trace that eats a
    // budget is on its way to quarantine.
    if (st.deadline.expired() && (e.trip() == core::GuardTrip::kCancelled ||
                                  e.trip() == core::GuardTrip::kWallTime)) {
      metrics_.count_deadline();
      resp.status = Status::kDeadlineExceeded;
    } else {
      metrics_.count_budget();
      resp.status = Status::kBudgetExceeded;
      if (!st.trace_path.empty()) cache_.record_strike(st.trace_path);
    }
    resp.error = e.what();
    return resp;
  } catch (const Poisoned& e) {
    // The quarantine tripped between the pre-admission check and the
    // cache lookup (another worker's strike landed in the window).
    metrics_.count_poisoned();
    Response resp;
    resp.type = req.type;
    resp.status = Status::kPoisoned;
    resp.error = e.what();
    return resp;
  } catch (const std::bad_alloc&) {
    // Allocation failure is the "crash" half of the poison ledger: a
    // trace that blows the heap will do it again on retry.
    if (!st.trace_path.empty()) cache_.record_strike(st.trace_path);
    Response resp;
    resp.type = req.type;
    resp.status = Status::kError;
    resp.error = "out of memory while serving request";
    return resp;
  } catch (const std::exception& e) {
    // std::exception, not just vppb::Error: an unexpected exception must
    // become a typed response, never a dead worker.
    Response resp;
    resp.type = req.type;
    resp.status = Status::kError;
    resp.error = e.what();
    return resp;
  }
  }();
  // The worker — not the IO thread — copies the timeline into the
  // response, so a watchdog-answered request simply carries none and no
  // reader ever races a wedged worker still stamping stages.
  if (st.timeline != nullptr) {
    for (const obs::Stage& sp : st.timeline->stages())
      resp.timeline.push_back(
          StageSpan{sp.name, sp.start_us, sp.dur_us, sp.depth});
  }
  return resp;
}

void Server::watchdog_loop() {
  for (;;) {
    std::vector<std::shared_ptr<ReqState>> snapshot;
    {
      std::unique_lock<std::mutex> lock(watch_mu_);
      watch_cv_.wait_for(
          lock, std::chrono::milliseconds(opt_.watchdog_interval_ms),
          [&]() { return watchdog_stop_.load(); });
      if (watchdog_stop_.load()) return;
      snapshot = watched_;
    }
    for (const auto& st : snapshot) watchdog_scan(st);
  }
}

void Server::watchdog_scan(const std::shared_ptr<ReqState>& st) {
  {
    std::lock_guard<std::mutex> lock(st->mu);
    if (st->done) return;
  }
  const auto now = std::chrono::steady_clock::now();
  if (!st->cancelled) {
    bool overdue = st->deadline.expired();
    if (opt_.max_wall_ms > 0 &&
        now - st->admitted_at >= std::chrono::milliseconds(opt_.max_wall_ms))
      overdue = true;
    if (!overdue) return;
    // First rung: cooperative.  A worker at any guard checkpoint sees
    // this on its next step and unwinds with a typed error.
    st->guard.cancel();
    st->cancelled = true;
    st->cancelled_at = now;
    metrics_.count_watchdog_cancel();
    obs::logf(LogLevel::kWarn, "server",
              "watchdog: cancelled overdue %s request",
              to_string(st->type));
    return;
  }
  if (st->abandoned) return;
  if (now - st->cancelled_at <
      std::chrono::milliseconds(opt_.watchdog_escalate_ms))
    return;
  // Second rung: the worker ignored the cancel for the whole escalation
  // grace — treat it as wedged.  Answer the client in its stead, put the
  // content on the poison ledger, and restore the pool capacity the
  // wedged worker is sitting on.
  Response resp;
  resp.type = st->type;
  if (st->deadline.expired()) {
    resp.status = Status::kDeadlineExceeded;
    resp.error = "deadline exceeded: worker unresponsive, request abandoned";
    metrics_.count_deadline();
  } else {
    resp.status = Status::kBudgetExceeded;
    resp.error =
        "wall-time budget exceeded: worker unresponsive, request abandoned";
    metrics_.count_budget();
  }
  {
    std::lock_guard<std::mutex> lock(st->mu);
    if (st->done) return;  // the worker came back at the last moment
    st->resp = std::move(resp);
    st->done = true;
    st->cv.notify_one();
  }
  st->abandoned = true;
  if (!st->trace_path.empty()) cache_.record_strike(st->trace_path);
  if (replacements_made_ < opt_.watchdog_max_replacements) {
    ++replacements_made_;
    pool_->grow(1);
    metrics_.count_watchdog_replacement();
    obs::logf(LogLevel::kWarn, "server",
              "watchdog: abandoned wedged %s request, grew pool "
              "(replacement %d of %d)",
              to_string(st->type), replacements_made_,
              opt_.watchdog_max_replacements);
  } else {
    obs::logf(LogLevel::kWarn, "server",
              "watchdog: abandoned wedged %s request (replacement "
              "budget exhausted)",
              to_string(st->type));
  }
}

void Server::fill_cache_stats(StatsBody& out) {
  const TraceCache::Stats cs = cache_.stats();
  out.cache_hits = cs.hits;
  out.cache_misses = cs.misses;
  out.cache_evictions = cs.evictions;
  out.cache_waits = cs.waits;
  out.cache_entries = cs.entries;
  out.cache_bytes = cs.bytes;
  out.poison_strikes = cs.poison_strikes;
  out.quarantined = cs.quarantined;
}

void Server::fill_slo(Response& resp) {
  resp.stats.slo_p99_ms = opt_.slo_p99_ms;
  resp.stats.slo_availability = opt_.slo_availability;
  const obs::BurnRates burn = slo_.burn();
  resp.stats.lat_burn_1m = burn.lat_1m;
  resp.stats.lat_burn_5m = burn.lat_5m;
  resp.stats.lat_burn_1h = burn.lat_1h;
  resp.stats.avail_burn_1m = burn.avail_1m;
  resp.stats.avail_burn_5m = burn.avail_5m;
  resp.stats.avail_burn_1h = burn.avail_1h;
  resp.stats.trace_dropped = obs::Tracer::global().dropped_count();
  resp.slo_burning = burn.burning;
}

Response Server::stats_response() {
  Response resp;
  resp.type = ReqType::kStats;
  resp.shard_id = opt_.shard_id;
  resp.epoch = epoch_;
  metrics_.snapshot(resp.stats);  // includes this stats request itself
  fill_cache_stats(resp.stats);
  fill_slo(resp);
  return resp;
}

Response Server::health_response() {
  Response resp;
  resp.type = ReqType::kHealth;
  resp.shard_id = opt_.shard_id;
  resp.epoch = epoch_;
  resp.ready = running_.load();
  resp.in_flight = static_cast<std::uint64_t>(
      in_flight_.load(std::memory_order_acquire));
  resp.admission_limit = static_cast<std::uint64_t>(opt_.admission_limit);
  metrics_.snapshot(resp.stats);
  fill_cache_stats(resp.stats);
  fill_slo(resp);
  return resp;
}

Response Server::tracedump_response() {
  Response resp;
  resp.type = ReqType::kTraceDump;
  resp.shard_id = opt_.shard_id;
  resp.epoch = epoch_;
  const obs::Tracer& tracer = obs::Tracer::global();
  // Absolute unix-ns timestamps: each process stamps events against its
  // own captured system-clock epoch, so the collector merges dumps from
  // proxy + shards without any clock negotiation.
  const std::int64_t epoch_unix = tracer.epoch_unix_ns();
  // Per-ring cap keeps the dump (64 threads x cap) under kMaxFrame even
  // with every ring full.
  for (const obs::Tracer::SnapshotEvent& se : tracer.snapshot(1u << 15)) {
    WireSpan w;
    w.pid = opt_.shard_id;
    w.tid = se.tid;
    w.name = se.ev.name != nullptr ? se.ev.name : "?";
    w.cat = se.ev.cat != nullptr ? se.ev.cat : "vppb";
    w.start_unix_ns = epoch_unix + se.ev.start_ns;
    w.dur_ns = se.ev.dur_ns;
    w.trace_id = se.ev.trace_id;
    if (se.ev.arg_name != nullptr) {
      w.arg_name = se.ev.arg_name;
      w.arg_value = se.ev.arg_value;
    }
    resp.spans.push_back(std::move(w));
  }
  metrics_.snapshot(resp.stats);
  fill_cache_stats(resp.stats);
  fill_slo(resp);
  return resp;
}

Response Server::metricsdump_response() {
  // Refresh the point-in-time gauges the event paths cannot keep
  // current on their own, then dump the whole registry.  The text rides
  // in `report`, the same free-form channel `analyze` uses.
  auto& reg = obs::Registry::global();
  reg.gauge("vppb_server_in_flight", "Admitted requests currently running")
      .set(in_flight_.load(std::memory_order_acquire));
  reg.gauge("vppb_server_admission_limit", "Admission control limit")
      .set(opt_.admission_limit);
  const TraceCache::Stats cs = cache_.stats();  // also refreshes the
                                                // quarantined gauge
  reg.gauge("vppb_cache_entries", "Ready entries resident")
      .set(static_cast<std::int64_t>(cs.entries));
  reg.gauge("vppb_cache_bytes",
            "Charged trace bytes resident (file + footprint)")
      .set(static_cast<std::int64_t>(cs.bytes));
  // Burn rates are dimensionless ratios; gauges are integral, so they
  // export in milli-units (burn x1000) — 1000 = burning exactly at the
  // objective's sustainable rate.
  const obs::BurnRates burn = slo_.burn();
  const auto milli = [](double v) {
    return static_cast<std::int64_t>(v * 1000.0);
  };
  reg.gauge("vppb_slo_latency_burn_5m_milli",
            "Latency error-budget burn rate over 5m, x1000")
      .set(milli(burn.lat_5m));
  reg.gauge("vppb_slo_availability_burn_5m_milli",
            "Availability error-budget burn rate over 5m, x1000")
      .set(milli(burn.avail_5m));
  reg.gauge("vppb_slo_burning",
            "1 when a multi-window burn-rate alert is firing")
      .set(burn.burning ? 1 : 0);

  Response resp;
  resp.type = ReqType::kMetricsDump;
  resp.shard_id = opt_.shard_id;
  resp.epoch = epoch_;
  resp.report = reg.prometheus_text();
  metrics_.snapshot(resp.stats);  // keep the structured body populated too
  fill_cache_stats(resp.stats);
  fill_slo(resp);
  return resp;
}

}  // namespace vppb::server
