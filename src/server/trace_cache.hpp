// The compiled-trace cache: the reason a resident daemon beats the
// one-shot CLI for the paper's interactive what-if loop.
//
// Keying is content-addressed: the key is an FNV-1a digest of the raw
// trace file bytes, so renaming a file, serving the same trace from two
// paths, or re-recording an identical run all share one entry, while a
// changed file can never serve stale predictions.  The expensive work —
// parsing and core::compile — happens at most once per content digest:
// concurrent requests for a not-yet-loaded trace are single-flighted
// (the first requester loads, the rest wait on the slot and count as
// hits), which is what makes "N clients, 1 compile" an invariant rather
// than a fast-path.
//
// Eviction is LRU over ready entries, bounded by entry count and by raw
// trace bytes.  Entries are handed out as shared_ptr, so an eviction
// never invalidates an in-flight request — the entry dies when the last
// request using it finishes.
#pragma once

#include <cstdint>
#include <condition_variable>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/compiler.hpp"
#include "trace/trace.hpp"
#include "util/fault.hpp"

namespace vppb::server {

class TraceCache {
 public:
  struct Entry {
    std::uint64_t key = 0;  ///< FNV-1a of the file bytes
    trace::Trace trace;
    core::CompiledTrace compiled;
    std::size_t bytes = 0;  ///< raw file size (budget accounting)
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t waits = 0;  ///< requests that waited out another's load
    std::size_t entries = 0;
    std::size_t bytes = 0;
  };

  /// `faults` (optional, unowned) injects deterministic cache failures
  /// — kCacheEnomem (std::bad_alloc) and kCacheEio (vppb::Error) — on
  /// the load path, for recovery testing.
  TraceCache(std::size_t max_entries, std::size_t max_bytes,
             util::FaultPlan* faults = nullptr)
      : max_entries_(max_entries), max_bytes_(max_bytes), faults_(faults) {}

  /// Returns the cached entry for the trace at `path`, loading (parse +
  /// compile) on first sight of its content.  Waiting out another
  /// request's in-flight load counts as a hit.  Throws vppb::Error on
  /// unreadable or malformed traces.
  std::shared_ptr<const Entry> get(const std::string& path);

  Stats stats() const;

 private:
  struct Slot {
    std::shared_ptr<const Entry> entry;  ///< null while loading
    std::list<std::uint64_t>::iterator lru;  ///< valid when ready
  };

  void evict_locked();

  const std::size_t max_entries_;
  const std::size_t max_bytes_;
  util::FaultPlan* faults_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable loaded_cv_;  ///< a load finished (or failed)
  std::unordered_map<std::uint64_t, Slot> slots_;
  std::list<std::uint64_t> lru_;  ///< most-recent first, ready keys only
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t waits_ = 0;
};

}  // namespace vppb::server
