// The compiled-trace cache: the reason a resident daemon beats the
// one-shot CLI for the paper's interactive what-if loop.
//
// Keying is content-addressed: the key is an FNV-1a digest of the raw
// trace file bytes, so renaming a file, serving the same trace from two
// paths, or re-recording an identical run all share one entry, while a
// changed file can never serve stale predictions.  The expensive work —
// parsing and core::compile — happens at most once per content digest:
// concurrent requests for a not-yet-loaded trace are single-flighted
// (the first requester loads, the rest wait on the slot and count as
// hits), which is what makes "N clients, 1 compile" an invariant rather
// than a fast-path.
//
// Eviction is LRU over ready entries, bounded by entry count and by the
// entry's *charged* size: the raw file bytes plus an estimate of the
// parsed + compiled in-memory footprint (records, steps, locations).
// Charging only file bytes — the original accounting — let a compact
// binary trace that expands ~10x in memory blow far past max_bytes_.
// Entries are handed out as shared_ptr, so an eviction never
// invalidates an in-flight request — the entry dies when the last
// request using it finishes.
//
// The cache is also the poison-trace circuit breaker: the server calls
// record_strike(path) whenever a request over that content crashes a
// worker or is killed by a resource budget.  After `strikes_to_trip`
// strikes the content key is quarantined for `quarantine_ms`: get() and
// check_poisoned() throw a typed Poisoned error without any parse or
// dispatch.  Quarantine decays rather than lasting forever — when the
// window expires the key is admissible again but keeps half its strike
// count, so a repeat offender re-trips quickly while a trace that was
// killed by transient overload works its way back to a clean record.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <condition_variable>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/compiler.hpp"
#include "core/guard.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace vppb::server {

/// Typed rejection for quarantined trace content; the dispatcher turns
/// it into Status::kPoisoned.
class Poisoned : public Error {
 public:
  explicit Poisoned(const std::string& what) : Error(what) {}
};

/// The FNV-1a content digest the cache keys by.  Exposed so the cluster
/// routing tier hashes trace content with the *same* function: a trace's
/// routing shard and its cache key agree by construction, which is what
/// makes each shard's cache see a disjoint, stable slice of traces.
std::uint64_t content_key(const std::uint8_t* data, std::size_t n);

/// content_key over the raw bytes of the file at `path`.  Throws
/// vppb::Error when the file cannot be read.
std::uint64_t content_key_of_file(const std::string& path);

class TraceCache {
 public:
  struct Entry {
    std::uint64_t key = 0;  ///< FNV-1a of the file bytes
    trace::Trace trace;
    core::CompiledTrace compiled;
    /// Charged size: raw file bytes + estimated parsed/compiled
    /// footprint (budget accounting).
    std::size_t bytes = 0;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t waits = 0;  ///< requests that waited out another's load
    std::size_t entries = 0;
    std::size_t bytes = 0;
    std::uint64_t poison_strikes = 0;    ///< strikes recorded
    std::uint64_t quarantine_trips = 0;  ///< keys entering quarantine
    std::uint64_t poison_rejects = 0;    ///< lookups rejected as Poisoned
    std::size_t quarantined = 0;         ///< keys quarantined right now
  };

  /// `faults` (optional, unowned) injects deterministic cache failures
  /// — kCacheEnomem (std::bad_alloc) and kCacheEio (vppb::Error) — on
  /// the load path, for recovery testing.
  TraceCache(std::size_t max_entries, std::size_t max_bytes,
             util::FaultPlan* faults = nullptr)
      : max_entries_(max_entries), max_bytes_(max_bytes), faults_(faults) {}

  /// Returns the cached entry for the trace at `path`, loading (parse +
  /// compile) on first sight of its content.  Waiting out another
  /// request's in-flight load counts as a hit.  Throws vppb::Error on
  /// unreadable or malformed traces, Poisoned on quarantined content.
  /// `guard` (optional) is polled during parse + compile so a cancelled
  /// request abandons even the load stage.  `loaded` (optional) reports
  /// whether this call paid the parse+compile (request timelines name
  /// the stage "compile" instead of "cache-lookup" when it did).
  std::shared_ptr<const Entry> get(const std::string& path,
                                   const core::RunGuard* guard = nullptr,
                                   bool* loaded = nullptr);

  /// Arms the circuit breaker: `strikes_to_trip` strikes quarantine a
  /// content key for `quarantine_ms`.  strikes_to_trip <= 0 disables it
  /// (the default).
  void configure_quarantine(int strikes_to_trip, std::int64_t quarantine_ms);

  /// Records one crash/budget-kill strike against the content at
  /// `path`.  Reads and digests the file; an unreadable file is ignored
  /// (there is nothing to quarantine).  Never throws.
  void record_strike(const std::string& path) noexcept;

  /// Throws Poisoned when the content at `path` is quarantined.  Cheap
  /// when no key has ever been struck (one atomic load, no file read),
  /// which is what lets the server call it on every request's pre-
  /// dispatch path.
  void check_poisoned(const std::string& path);

  Stats stats() const;

 private:
  struct PoisonState {
    int strikes = 0;  ///< strikes since the last decay
    std::uint64_t trips = 0;
    /// Quarantined while now < until; default = not quarantined.
    std::chrono::steady_clock::time_point until{};
  };

  /// Enforces quarantine for `key` and applies lazy decay.  Throws
  /// Poisoned.  Caller holds mu_.
  void check_poisoned_locked(std::uint64_t key);
  struct Slot {
    std::shared_ptr<const Entry> entry;  ///< null while loading
    std::list<std::uint64_t>::iterator lru;  ///< valid when ready
  };

  void evict_locked();

  const std::size_t max_entries_;
  const std::size_t max_bytes_;
  util::FaultPlan* faults_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable loaded_cv_;  ///< a load finished (or failed)
  std::unordered_map<std::uint64_t, Slot> slots_;
  std::list<std::uint64_t> lru_;  ///< most-recent first, ready keys only
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t waits_ = 0;

  int strikes_to_trip_ = 0;  ///< <= 0: circuit breaker disabled
  std::int64_t quarantine_ms_ = 30000;
  /// Lock-free gate for check_poisoned's fast path: number of keys with
  /// any strike history.  0 means no file read is ever needed.
  std::atomic<std::size_t> poison_keys_{0};
  std::unordered_map<std::uint64_t, PoisonState> poison_;
  std::uint64_t poison_strikes_ = 0;
  std::uint64_t quarantine_trips_ = 0;
  std::uint64_t poison_rejects_ = 0;
};

}  // namespace vppb::server
