#include "server/auth.hpp"

#include <cstdio>
#include <cstring>
#include <random>

#include "util/env.hpp"
#include "util/hmac.hpp"
#include "util/strings.hpp"

namespace vppb::server {
namespace {

constexpr char kChallengeMagic[4] = {'V', 'P', 'B', '8'};
constexpr char kProofMagic[4] = {'V', 'P', 'A', '8'};
constexpr char kVerdictMagic[4] = {'V', 'P', 'V', '8'};
constexpr std::uint8_t kHandshakeVersion = 8;

[[noreturn]] void reject(const char* what) {
  throw AuthError(strprintf("auth handshake: %s", what));
}

void check_magic(const std::uint8_t* data, const char expect[4],
                 const char* which) {
  if (std::memcmp(data, expect, 4) != 0)
    reject(strprintf("bad %s magic (not a v8 peer?)", which).c_str());
}

void mac_for_role(const std::string& key, const char* role,
                  const std::uint8_t* nonce_a, const std::uint8_t* nonce_b,
                  std::uint8_t out[kAuthMacBytes]) {
  std::uint8_t msg[16 + 2 * kAuthNonceBytes] = {};
  const std::size_t role_len = std::strlen(role);
  std::memcpy(msg, role, role_len);
  std::memcpy(msg + 16, nonce_a, kAuthNonceBytes);
  std::memcpy(msg + 16 + kAuthNonceBytes, nonce_b, kAuthNonceBytes);
  const util::Sha256Digest d =
      util::hmac_sha256(key.data(), key.size(), msg, sizeof msg);
  std::memcpy(out, d.data(), kAuthMacBytes);
}

}  // namespace

Challenge parse_challenge(const std::uint8_t* data, std::size_t n) {
  if (n != kChallengeBytes) reject("challenge has wrong size");
  check_magic(data, kChallengeMagic, "challenge");
  if (data[4] != kHandshakeVersion) reject("challenge version mismatch");
  if (data[6] != 0 || data[7] != 0) reject("nonzero reserved bytes");
  Challenge c;
  c.flags = data[5];
  if ((c.flags & ~kAuthFlagRequired) != 0) reject("unknown challenge flags");
  std::memcpy(c.nonce, data + 8, kAuthNonceBytes);
  return c;
}

ClientProof parse_client_proof(const std::uint8_t* data, std::size_t n) {
  if (n != kClientProofBytes) reject("client proof has wrong size");
  check_magic(data, kProofMagic, "client proof");
  if (data[4] != kHandshakeVersion) reject("client proof version mismatch");
  if (data[5] != 0 || data[6] != 0 || data[7] != 0)
    reject("nonzero reserved bytes");
  ClientProof p;
  std::memcpy(p.nonce, data + 8, kAuthNonceBytes);
  std::memcpy(p.mac, data + 8 + kAuthNonceBytes, kAuthMacBytes);
  return p;
}

Verdict parse_verdict(const std::uint8_t* data, std::size_t n) {
  if (n != kVerdictBytes) reject("verdict has wrong size");
  check_magic(data, kVerdictMagic, "verdict");
  if (data[4] > 1) reject("unknown verdict status");
  if (data[5] != 0 || data[6] != 0 || data[7] != 0)
    reject("nonzero reserved bytes");
  Verdict v;
  v.status = data[4];
  std::memcpy(v.mac, data + 8, kAuthMacBytes);
  return v;
}

void encode_challenge(const Challenge& c, std::uint8_t out[kChallengeBytes]) {
  std::memcpy(out, kChallengeMagic, 4);
  out[4] = kHandshakeVersion;
  out[5] = c.flags;
  out[6] = out[7] = 0;
  std::memcpy(out + 8, c.nonce, kAuthNonceBytes);
}

void encode_client_proof(const ClientProof& p,
                         std::uint8_t out[kClientProofBytes]) {
  std::memcpy(out, kProofMagic, 4);
  out[4] = kHandshakeVersion;
  out[5] = out[6] = out[7] = 0;
  std::memcpy(out + 8, p.nonce, kAuthNonceBytes);
  std::memcpy(out + 8 + kAuthNonceBytes, p.mac, kAuthMacBytes);
}

void encode_verdict(const Verdict& v, std::uint8_t out[kVerdictBytes]) {
  std::memcpy(out, kVerdictMagic, 4);
  out[4] = v.status;
  out[5] = out[6] = out[7] = 0;
  std::memcpy(out + 8, v.mac, kAuthMacBytes);
}

void client_mac(const std::string& key,
                const std::uint8_t server_nonce[kAuthNonceBytes],
                const std::uint8_t client_nonce[kAuthNonceBytes],
                std::uint8_t out[kAuthMacBytes]) {
  mac_for_role(key, "vppb-v8-client", server_nonce, client_nonce, out);
}

void server_mac(const std::string& key,
                const std::uint8_t server_nonce[kAuthNonceBytes],
                const std::uint8_t client_nonce[kAuthNonceBytes],
                std::uint8_t out[kAuthMacBytes]) {
  // Nonces swapped relative to the client role, so the two MACs are
  // never interchangeable even under a reflected connection.
  mac_for_role(key, "vppb-v8-server", client_nonce, server_nonce, out);
}

void random_nonce(std::uint8_t out[kAuthNonceBytes]) {
  // std::random_device reads the system entropy source on every
  // platform this builds on; one device per call keeps the function
  // stateless (nonces are 32 bytes — quality matters more than speed,
  // and a handshake happens once per connection).
  std::random_device rd;
  for (std::size_t i = 0; i < kAuthNonceBytes; i += 4) {
    const std::uint32_t w = rd();
    std::memcpy(out + i, &w, 4);
  }
}

void auth_accept(util::Socket& sock, const AuthConfig& cfg) {
  sock.set_recv_timeout(cfg.handshake_timeout_ms);
  sock.set_send_timeout(cfg.handshake_timeout_ms);
  Challenge ch;
  ch.flags = cfg.required() ? kAuthFlagRequired : 0;
  random_nonce(ch.nonce);
  std::uint8_t ch_buf[kChallengeBytes];
  encode_challenge(ch, ch_buf);
  sock.send_all(ch_buf, sizeof ch_buf);
  if (!cfg.required()) {
    sock.set_recv_timeout(0);
    sock.set_send_timeout(0);
    return;
  }
  std::uint8_t proof_buf[kClientProofBytes];
  const std::size_t got = sock.recv_exact(proof_buf, sizeof proof_buf);
  // A truncated proof (peer hung up mid-preamble) parses as wrong-size
  // and is rejected like any other malformed preamble.
  const ClientProof proof = parse_client_proof(proof_buf, got);
  std::uint8_t expect[kAuthMacBytes];
  client_mac(cfg.key, ch.nonce, proof.nonce, expect);
  if (!util::constant_time_equal(expect, proof.mac, kAuthMacBytes)) {
    Verdict v;
    v.status = 1;
    std::uint8_t v_buf[kVerdictBytes];
    encode_verdict(v, v_buf);
    // Best effort: the peer learns *that* it failed, never why.
    try {
      sock.send_all(v_buf, sizeof v_buf);
    } catch (const Error&) {
    }
    reject("peer failed the key proof");
  }
  Verdict v;
  v.status = 0;
  server_mac(cfg.key, ch.nonce, proof.nonce, v.mac);
  std::uint8_t v_buf[kVerdictBytes];
  encode_verdict(v, v_buf);
  sock.send_all(v_buf, sizeof v_buf);
  sock.set_recv_timeout(0);
  sock.set_send_timeout(0);
}

void auth_connect(util::Socket& sock, const AuthConfig& cfg) {
  sock.set_recv_timeout(cfg.handshake_timeout_ms);
  sock.set_send_timeout(cfg.handshake_timeout_ms);
  std::uint8_t ch_buf[kChallengeBytes];
  const std::size_t got = sock.recv_exact(ch_buf, sizeof ch_buf);
  const Challenge ch = parse_challenge(ch_buf, got);
  const bool server_wants_auth = (ch.flags & kAuthFlagRequired) != 0;
  if (!server_wants_auth) {
    // Refusing the downgrade matters on a hostile network: a client
    // configured with a key expects an authenticated endpoint, and an
    // impostor could otherwise simply not ask for a proof.
    if (cfg.required())
      reject("server does not require authentication but a key is "
             "configured here — refusing the downgrade");
    sock.set_recv_timeout(0);
    sock.set_send_timeout(0);
    return;
  }
  if (!cfg.required())
    reject("server requires authentication and no key is configured "
           "(--auth-key-file / VPPB_AUTH_KEY)");
  ClientProof proof;
  random_nonce(proof.nonce);
  client_mac(cfg.key, ch.nonce, proof.nonce, proof.mac);
  std::uint8_t proof_buf[kClientProofBytes];
  encode_client_proof(proof, proof_buf);
  sock.send_all(proof_buf, sizeof proof_buf);
  std::uint8_t v_buf[kVerdictBytes];
  const std::size_t vgot = sock.recv_exact(v_buf, sizeof v_buf);
  const Verdict v = parse_verdict(v_buf, vgot);
  if (v.status != 0) reject("server rejected our key");
  std::uint8_t expect[kAuthMacBytes];
  server_mac(cfg.key, ch.nonce, proof.nonce, expect);
  if (!util::constant_time_equal(expect, v.mac, kAuthMacBytes))
    reject("server failed to prove key knowledge");
  sock.set_recv_timeout(0);
  sock.set_send_timeout(0);
}

std::string load_auth_key(const std::string& key_file) {
  if (!key_file.empty()) {
    std::FILE* f = std::fopen(key_file.c_str(), "rb");
    if (f == nullptr)
      throw Error("cannot read auth key file: " + key_file);
    std::string key;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) key.append(buf, n);
    std::fclose(f);
    if (!key.empty() && key.back() == '\n') key.pop_back();
    if (!key.empty() && key.back() == '\r') key.pop_back();
    if (key.empty())
      throw Error("auth key file is empty: " + key_file);
    return key;
  }
  return util::env_or("VPPB_AUTH_KEY", "");
}

}  // namespace vppb::server
