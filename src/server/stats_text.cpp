#include "server/stats_text.hpp"

#include <algorithm>

#include "util/strings.hpp"
#include "util/table.hpp"

namespace vppb::server {

namespace {

std::string u64str(std::uint64_t v) {
  return strprintf("%llu", static_cast<unsigned long long>(v));
}

}  // namespace

std::string render_stats_text(const StatsBody& s, bool aggregated) {
  TextTable table;
  table.header({"counter", "value"});
  table.row({"requests", u64str(s.requests)});
  for (std::size_t i = 0; i < kReqTypeCount; ++i) {
    table.row({strprintf("  %s", to_string(static_cast<ReqType>(i))),
               u64str(s.by_type[i])});
  }
  table.row({"errors", u64str(s.errors)});
  table.row({"overloads", u64str(s.overloads)});
  table.row({"deadline misses", u64str(s.deadlines)});
  table.row({"budget kills", u64str(s.budget_kills)});
  table.row({"poisoned rejects", u64str(s.poisoned)});
  table.row({"poison strikes", u64str(s.poison_strikes)});
  table.row({"quarantined now", u64str(s.quarantined)});
  table.row({"watchdog cancels", u64str(s.watchdog_cancels)});
  table.row({"worker replacements", u64str(s.watchdog_replacements)});
  table.row({"quota rejections", u64str(s.quota_rejections)});
  table.row({"brownout sheds", u64str(s.brownout_sheds)});
  table.row({"stale serves", u64str(s.stale_serves)});
  table.row({"sampled requests", u64str(s.sampled_requests)});
  table.row({"trace drops", u64str(s.trace_dropped)});
  table.row({"cache hits", u64str(s.cache_hits)});
  table.row({"cache misses", u64str(s.cache_misses)});
  table.row({"cache evictions", u64str(s.cache_evictions)});
  table.row({"cache waits", u64str(s.cache_waits)});
  table.row({"cache entries", u64str(s.cache_entries)});
  table.row({"cache bytes", u64str(s.cache_bytes)});
  std::string out = table.render();
  const std::uint64_t lookups = s.cache_hits + s.cache_misses;
  if (lookups > 0) {
    out += strprintf("\ncache hit rate: %.1f%%\n",
                     100.0 * static_cast<double>(s.cache_hits) /
                         static_cast<double>(lookups));
  }
  if (s.latency_count > 0) {
    if (aggregated) {
      // Merged across shards: these are per-shard maxima (no shard's
      // percentile exceeds the figure), not a merged distribution.
      out += strprintf("latency (us, per-shard max): p50 <= %.0f  "
                       "p90 <= %.0f  p99 <= %.0f  max %.0f "
                       "over %s requests\n",
                       s.p50_us, s.p90_us, s.p99_us, s.max_us,
                       u64str(s.latency_count).c_str());
    } else {
      out += strprintf("latency (us): p50 %.0f  p90 %.0f  p99 %.0f  "
                       "max %.0f over %s requests\n",
                       s.p50_us, s.p90_us, s.p99_us, s.max_us,
                       u64str(s.latency_count).c_str());
    }
  }
  out += render_slo_text(s);
  return out;
}

std::string render_slo_text(const StatsBody& s) {
  if (s.slo_p99_ms <= 0.0 && s.slo_availability <= 0.0) return "";
  std::string out = "SLO:";
  if (s.slo_p99_ms > 0.0)
    out += strprintf(" p99 < %.4g ms", s.slo_p99_ms);
  if (s.slo_availability > 0.0)
    out += strprintf("%s availability >= %.4g%%",
                     s.slo_p99_ms > 0.0 ? "," : "",
                     100.0 * s.slo_availability);
  out += '\n';
  // Burn rate 1.0 = spending error budget exactly at the sustainable
  // pace; the alert thresholds are 14.4 (fast: 1m+5m) and 6.0 (slow:
  // 5m+1h), the SRE-book multiwindow pairs.
  if (s.slo_p99_ms > 0.0)
    out += strprintf("  latency burn:      1m %.2f  5m %.2f  1h %.2f\n",
                     s.lat_burn_1m, s.lat_burn_5m, s.lat_burn_1h);
  if (s.slo_availability > 0.0)
    out += strprintf("  availability burn: 1m %.2f  5m %.2f  1h %.2f\n",
                     s.avail_burn_1m, s.avail_burn_5m, s.avail_burn_1h);
  return out;
}

std::string render_cluster_stats_text(const Response& r) {
  std::string out = render_stats_text(r.stats, !r.shards.empty());
  if (r.slo_burning)
    out += "SLO BURNING: error budget is being spent faster than the "
           "multi-window alert thresholds allow\n";
  if (r.shards.empty()) return out;
  if (r.brownout) {
    out += strprintf("BROWNOUT: proxy shedding load (%s of %s shards "
                     "live)\n",
                     u64str(r.live_shards).c_str(),
                     u64str(r.total_shards).c_str());
  }
  out += "\nshards:\n";
  TextTable table;
  table.header({"shard", "epoch", "state", "endpoint", "requests", "errors",
                "cache hits", "entries", "p99 us", "burn 5m"});
  for (const ShardInfo& sh : r.shards) {
    const double burn5m =
        std::max(sh.stats.lat_burn_5m, sh.stats.avail_burn_5m);
    table.row({u64str(sh.shard_id), strprintf("%08llx",
                   static_cast<unsigned long long>(sh.epoch & 0xffffffffu)),
               sh.healthy ? "up" : "down", sh.endpoint,
               u64str(sh.stats.requests), u64str(sh.stats.errors),
               u64str(sh.stats.cache_hits), u64str(sh.stats.cache_entries),
               strprintf("%.0f", sh.stats.p99_us),
               strprintf("%.2f", burn5m)});
  }
  out += table.render();
  return out;
}

std::string render_health_text(const Response& r) {
  std::string out;
  out += strprintf("ready:           %s\n", r.ready ? "yes" : "no");
  if (r.total_shards > 0) {
    out += strprintf("cluster:         %s / %s shards live%s\n",
                     u64str(r.live_shards).c_str(),
                     u64str(r.total_shards).c_str(),
                     r.brownout ? " (BROWNOUT: shedding load)" : "");
  }
  out += strprintf("in flight:       %s / %s\n", u64str(r.in_flight).c_str(),
                   u64str(r.admission_limit).c_str());
  out += strprintf("requests served: %s (%s errors, %s overloads, "
                   "%s deadline misses)\n",
                   u64str(r.stats.requests).c_str(),
                   u64str(r.stats.errors).c_str(),
                   u64str(r.stats.overloads).c_str(),
                   u64str(r.stats.deadlines).c_str());
  out += strprintf("cache:           %s entries, %s bytes\n",
                   u64str(r.stats.cache_entries).c_str(),
                   u64str(r.stats.cache_bytes).c_str());
  if (r.stats.slo_p99_ms > 0.0 || r.stats.slo_availability > 0.0) {
    out += strprintf("SLO:             %s (lat burn 5m %.2f, avail burn "
                     "5m %.2f)\n",
                     r.slo_burning ? "BURNING" : "ok",
                     r.stats.lat_burn_5m, r.stats.avail_burn_5m);
  }
  return out;
}

}  // namespace vppb::server
