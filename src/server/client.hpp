// The vppbd client: a blocking request/response call over one
// connection.  Used by `vppb request`, the integration tests, and the
// server benchmark; any other client only needs to reimplement the
// frame layout in protocol.hpp.
//
// call() is the raw single-shot primitive.  call_retry() layers the
// resilience policy on top: transient failures — Status::kOverloaded,
// kQuotaExceeded (sleeping at least its retry_after_ms hint), transport
// errors, receive timeouts — are retried with exponential backoff and
// decorrelated jitter (reconnecting when the transport broke), while
// definitive answers (kOk, kError, kDeadlineExceeded, kBudgetExceeded,
// kPoisoned) return immediately — a budget kill or a quarantine
// rejection will only repeat on retry.  A request that
// missed its deadline is never retried, and the backoff sleeps
// themselves are clamped to the request's remaining deadline_ms budget:
// the deadline is spent, and sleeping past it would double-spend it.
// The jitter PRNG is seeded deterministically so tests replay the same
// backoff schedule.
#pragma once

#include <cstdint>
#include <string>

#include "server/auth.hpp"
#include "server/protocol.hpp"
#include "util/socket.hpp"

namespace vppb::server {

/// Retry/backoff knobs for Client::call_retry.
struct RetryPolicy {
  int max_attempts = 5;          ///< total tries, including the first
  std::int64_t base_ms = 10;     ///< minimum sleep between tries
  std::int64_t cap_ms = 2000;    ///< maximum sleep between tries
  std::uint64_t seed = 1;        ///< jitter PRNG seed (deterministic)
  /// Per-attempt receive timeout; a silent server past this is treated
  /// as a transport failure and retried on a fresh connection.  0 =
  /// wait forever.
  int request_timeout_ms = 0;
  /// Total sleeps performed; call_retry accumulates into it when the
  /// caller wants to observe the schedule (tests).
  std::int64_t slept_ms = 0;
};

class Client {
 public:
  /// `connect_timeout_ms` bounds the connect itself (0 = wait forever);
  /// a black-holed endpoint throws util::SocketTimeout instead of
  /// pinning the caller.
  static Client connect_unix(const std::string& path,
                             int connect_timeout_ms = 0);
  /// TCP connect + the v8 handshake.  The loopback overload reads the
  /// ambient key ($VPPB_AUTH_KEY, usually unset); the full overload
  /// takes an explicit key for remote/authenticated shards.  Throws
  /// AuthError when the server demands a key we lack (or rejects the
  /// one we have) — definitive, never retried.
  static Client connect_tcp(std::uint16_t port);
  static Client connect_tcp(const std::string& host, std::uint16_t port,
                            const std::string& auth_key,
                            int connect_timeout_ms = 0);

  /// Sends one request and blocks for its response.  Throws vppb::Error
  /// on transport failure (including the server closing mid-response);
  /// request-level failures come back as Status::kError / kOverloaded
  /// responses, not exceptions.
  Response call(const Request& req);

  /// call() plus the retry policy described in the file comment.
  /// Throws the last transport error when every attempt fails; returns
  /// the last kOverloaded response when the server stayed saturated.
  Response call_retry(const Request& req, RetryPolicy& policy);

 private:
  enum class EndpointKind { kUnix, kTcp };

  Client(util::Socket sock, EndpointKind kind, std::string path,
         std::uint16_t port)
      : sock_(std::move(sock)), kind_(kind), path_(std::move(path)),
        port_(port) {}

  void reconnect();

  util::Socket sock_;
  EndpointKind kind_ = EndpointKind::kUnix;
  std::string path_;        ///< Unix socket path (kUnix)
  std::string host_;        ///< TCP host ("" = loopback)
  std::uint16_t port_ = 0;  ///< TCP port (kTcp)
  std::string auth_key_;    ///< carried so reconnect() re-authenticates
  int connect_timeout_ms_ = 0;
};

}  // namespace vppb::server
