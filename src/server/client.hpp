// The vppbd client: a blocking request/response call over one
// connection.  Used by `vppb request`, the integration tests, and the
// server benchmark; any other client only needs to reimplement the
// frame layout in protocol.hpp.
#pragma once

#include <cstdint>
#include <string>

#include "server/protocol.hpp"
#include "util/socket.hpp"

namespace vppb::server {

class Client {
 public:
  static Client connect_unix(const std::string& path);
  static Client connect_tcp(std::uint16_t port);

  /// Sends one request and blocks for its response.  Throws vppb::Error
  /// on transport failure (including the server closing mid-response);
  /// request-level failures come back as Status::kError / kOverloaded
  /// responses, not exceptions.
  Response call(const Request& req);

 private:
  explicit Client(util::Socket sock) : sock_(std::move(sock)) {}

  util::Socket sock_;
};

}  // namespace vppb::server
