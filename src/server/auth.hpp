// Authenticated connection handshake for TCP peers (protocol v8).
//
// Threat model: a TCP listener may be reachable from hosts the operator
// does not control.  Before any protocol frame is accepted, the peer
// must prove knowledge of a shared key via an HMAC-SHA256
// challenge–response:
//
//   server -> client   Challenge  (40 bytes: magic, version, flags,
//                                  32-byte random nonce)
//   client -> server   ClientProof(72 bytes: magic, version, 32-byte
//                                  client nonce, HMAC over both nonces)
//   server -> client   Verdict    (40 bytes: magic, status, HMAC over
//                                  both nonces in the server role)
//
// Every message is fixed-size, so the unauthenticated read path never
// allocates and never reads more than kMaxPreambleBytes from a peer
// that has not yet proven itself.  Nonces are fresh per connection, so
// a captured proof replayed against a new connection fails (the new
// challenge nonce changes the MAC).  The verdict carries the server's
// own MAC in the opposite role, so the client also authenticates the
// server — a spoofed endpoint cannot silently absorb trace paths.
// MACs are compared in constant time.
//
// Unix-domain sockets skip all of this: filesystem permissions on the
// socket path are the local trust boundary, and the loopback digest
// baseline must stay byte-identical.
//
// What this does NOT provide: transport encryption or integrity for the
// frames that follow.  The key authenticates the *peer*; anyone who can
// read the wire can read traces in flight.  Run over a trusted network
// or a tunnel when confidentiality matters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/error.hpp"
#include "util/socket.hpp"

namespace vppb::server {

/// Thrown when a peer fails (or refuses) authentication — the wire
/// analogue of Status::kAuthFailed.  Distinct from Error so callers can
/// map it to a typed rejection instead of a generic transport failure.
class AuthError : public Error {
 public:
  explicit AuthError(const std::string& what) : Error(what) {}
};

inline constexpr std::size_t kAuthNonceBytes = 32;
inline constexpr std::size_t kAuthMacBytes = 32;
/// Sizes of the three fixed handshake messages.
inline constexpr std::size_t kChallengeBytes = 4 + 1 + 1 + 2 + kAuthNonceBytes;
inline constexpr std::size_t kClientProofBytes =
    4 + 1 + 3 + kAuthNonceBytes + kAuthMacBytes;
inline constexpr std::size_t kVerdictBytes = 4 + 1 + 3 + kAuthMacBytes;
/// The most a peer can make the other side read before authenticating.
inline constexpr std::size_t kMaxPreambleBytes = kClientProofBytes;

/// Challenge flags.
inline constexpr std::uint8_t kAuthFlagRequired = 0x01;

struct AuthConfig {
  std::string key;  ///< shared secret; empty = auth disabled
  /// Bound on each handshake read/write; a peer that connects and goes
  /// silent is dropped after this.
  int handshake_timeout_ms = 5000;

  bool required() const { return !key.empty(); }
};

/// Parsed forms of the handshake messages, exposed (with their parsers)
/// so tests and the fuzzer can exercise the exact bytes-to-struct path
/// the handshake uses.  Parsers throw AuthError on any malformed input:
/// wrong size, wrong magic, wrong version, nonzero reserved bytes.
struct Challenge {
  std::uint8_t flags = 0;
  std::uint8_t nonce[kAuthNonceBytes] = {};
};
struct ClientProof {
  std::uint8_t nonce[kAuthNonceBytes] = {};
  std::uint8_t mac[kAuthMacBytes] = {};
};
struct Verdict {
  std::uint8_t status = 0;  ///< 0 = accepted, 1 = auth failed
  std::uint8_t mac[kAuthMacBytes] = {};
};

Challenge parse_challenge(const std::uint8_t* data, std::size_t n);
ClientProof parse_client_proof(const std::uint8_t* data, std::size_t n);
Verdict parse_verdict(const std::uint8_t* data, std::size_t n);

/// Encoders, for the handshake itself and for building fuzz corpora.
void encode_challenge(const Challenge& c, std::uint8_t out[kChallengeBytes]);
void encode_client_proof(const ClientProof& p,
                         std::uint8_t out[kClientProofBytes]);
void encode_verdict(const Verdict& v, std::uint8_t out[kVerdictBytes]);

/// The client-side MAC: HMAC(key, "vppb-v8-client" || server_nonce ||
/// client_nonce), and the server-side MAC with role string
/// "vppb-v8-server" and the nonces swapped.
void client_mac(const std::string& key,
                const std::uint8_t server_nonce[kAuthNonceBytes],
                const std::uint8_t client_nonce[kAuthNonceBytes],
                std::uint8_t out[kAuthMacBytes]);
void server_mac(const std::string& key,
                const std::uint8_t server_nonce[kAuthNonceBytes],
                const std::uint8_t client_nonce[kAuthNonceBytes],
                std::uint8_t out[kAuthMacBytes]);

/// Server side of the handshake, run on a freshly accepted TCP
/// connection before any frame is read.  Sends the challenge, verifies
/// the proof, answers with a verdict.  Throws AuthError when the peer
/// is malformed or fails the MAC (after sending a rejecting verdict on
/// a best-effort basis), SocketTimeout when the peer stalls past the
/// handshake timeout.
void auth_accept(util::Socket& sock, const AuthConfig& cfg);

/// Client side: reads the challenge, proves key knowledge, checks the
/// verdict and the server's own MAC.  Throws AuthError when the server
/// demands a key we do not have, rejects our proof, or fails to prove
/// itself.
void auth_connect(util::Socket& sock, const AuthConfig& cfg);

/// Resolves the shared key: the contents of `key_file` when non-empty
/// (one trailing newline trimmed, as produced by `openssl rand` or
/// `echo`), else $VPPB_AUTH_KEY, else empty (auth disabled).  Throws
/// Error when key_file is named but unreadable or empty.
std::string load_auth_key(const std::string& key_file);

/// Fills `out` with nonce bytes from the system entropy source.
void random_nonce(std::uint8_t out[kAuthNonceBytes]);

}  // namespace vppb::server
