// Per-request stage timeline: the compact waterfall a response carries
// back to the client (protocol v7).  Unlike the span tracer — a
// process-wide ring sampled after the fact — a Timeline belongs to one
// request and travels with it: the server stamps queue/cache/simulate
// stages, the proxy prepends routing/forward stages and nests the
// shard's stages one level deeper.
//
// Offsets are microseconds since the timeline's construction (request
// arrival at the recording tier).  A stage with dur_us == -1 is an
// instant marker (hedge fired, failover, stale-serve).  `depth` is the
// nesting level for display: a proxy's "forward" stage at depth 0
// contains the shard's own stages re-parented at depth 1, so summing
// durations at one depth never double-counts.
//
// Not internally synchronized: stages are stamped by one thread at a
// time (IO thread -> worker -> IO thread, sequenced by the server's
// request handoff), which is the only use.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace vppb::obs {

struct Stage {
  std::string name;
  std::int64_t start_us = 0;
  std::int64_t dur_us = 0;  ///< -1 = instant marker
  std::uint32_t depth = 0;
};

class Timeline {
 public:
  Timeline() : t0_(std::chrono::steady_clock::now()) {}

  /// Microseconds since construction.
  std::int64_t now_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - t0_)
        .count();
  }

  void stage(std::string name, std::int64_t start_us, std::int64_t dur_us,
             std::uint32_t depth = 0) {
    stages_.push_back({std::move(name), start_us, dur_us, depth});
  }

  /// Instant marker at the current time.
  void marker(std::string name, std::uint32_t depth = 0) {
    stages_.push_back({std::move(name), now_us(), -1, depth});
  }

  std::vector<Stage>& stages() { return stages_; }
  const std::vector<Stage>& stages() const { return stages_; }

 private:
  std::chrono::steady_clock::time_point t0_;
  std::vector<Stage> stages_;
};

}  // namespace vppb::obs
