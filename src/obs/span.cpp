#include "obs/span.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace vppb::obs {

namespace {
// Thread-local distributed-trace id stamped onto recorded events.
thread_local std::uint64_t tl_trace_id = 0;
}  // namespace

TraceContext::TraceContext(std::uint64_t trace_id) : saved_(tl_trace_id) {
  tl_trace_id = trace_id;
}

TraceContext::~TraceContext() { tl_trace_id = saved_; }

std::uint64_t TraceContext::current() { return tl_trace_id; }

Tracer::Tracer() {
  epoch_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now().time_since_epoch())
                  .count();
  epoch_unix_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::system_clock::now().time_since_epoch())
                       .count();
}

Tracer& Tracer::global() {
  // Leaked so emitting threads may outlive static destruction.
  static Tracer* g = new Tracer();
  return *g;
}

std::int64_t Tracer::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
             .count() -
         epoch_ns_;
}

Tracer::Ring& Tracer::ring_for_this_thread() {
  thread_local Ring* tl_ring = nullptr;
  if (tl_ring == nullptr) {
    std::lock_guard<std::mutex> lk(rings_mu_);
    auto ring = std::make_unique<Ring>();
    ring->tid = static_cast<std::uint32_t>(rings_.size() + 1);
    ring->slots.resize(kRingCapacity);
    tl_ring = ring.get();
    rings_.push_back(std::move(ring));
  }
  return *tl_ring;
}

void Tracer::record(const SpanEvent& ev) {
  Ring& r = ring_for_this_thread();
  const std::uint64_t n = r.n.load(std::memory_order_relaxed);
  if (n >= kRingCapacity) {
    // Overwriting the oldest surviving event: account the drop where
    // operators look (the metrics registry), not only in the export
    // footnote, so trace-collect can warn about truncated rings.
    static Counter& drops = Registry::global().counter(
        "vppb_trace_dropped_total",
        "Span events overwritten in full tracer rings");
    drops.inc();
  }
  r.slots[n % kRingCapacity] = ev;
  // Publish after the slot write so a concurrent export never reads an
  // unwritten slot (single writer per ring).
  r.n.store(n + 1, std::memory_order_release);
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lk(rings_mu_);
  for (auto& r : rings_) r->n.store(0, std::memory_order_relaxed);
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lk(rings_mu_);
  std::size_t total = 0;
  for (const auto& r : rings_) {
    total += static_cast<std::size_t>(
        std::min<std::uint64_t>(r->n.load(std::memory_order_acquire),
                                kRingCapacity));
  }
  return total;
}

std::size_t Tracer::dropped_count() const {
  std::lock_guard<std::mutex> lk(rings_mu_);
  std::size_t total = 0;
  for (const auto& r : rings_) {
    const std::uint64_t n = r->n.load(std::memory_order_acquire);
    if (n > kRingCapacity) total += static_cast<std::size_t>(n - kRingCapacity);
  }
  return total;
}

namespace {

void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
}

void append_event(std::string& out, const SpanEvent& ev, std::uint64_t pid,
                  std::uint32_t tid, bool* first) {
  if (!*first) out += ",\n";
  *first = false;
  char buf[160];
  out += R"({"name":")";
  append_escaped(out, ev.name != nullptr ? ev.name : "?");
  out += R"(","cat":")";
  append_escaped(out, ev.cat != nullptr ? ev.cat : "vppb");
  // Chrome trace timestamps are microseconds; keep ns precision via
  // the fractional part.
  if (ev.dur_ns >= 0) {
    std::snprintf(buf, sizeof(buf),
                  R"(","ph":"X","ts":%.3f,"dur":%.3f,"pid":%)" PRIu64
                  R"(,"tid":%u)",
                  static_cast<double>(ev.start_ns) / 1e3,
                  static_cast<double>(ev.dur_ns) / 1e3, pid, tid);
  } else {
    std::snprintf(buf, sizeof(buf),
                  R"(","ph":"i","s":"t","ts":%.3f,"pid":%)" PRIu64
                  R"(,"tid":%u)",
                  static_cast<double>(ev.start_ns) / 1e3, pid, tid);
  }
  out += buf;
  if (ev.arg_name != nullptr || ev.trace_id != 0) {
    out += R"(,"args":{)";
    bool first_arg = true;
    if (ev.trace_id != 0) {
      std::snprintf(buf, sizeof(buf), R"("trace_id":"%016)" PRIx64 "\"",
                    ev.trace_id);
      out += buf;
      first_arg = false;
    }
    if (ev.arg_name != nullptr) {
      if (!first_arg) out += ',';
      out += '"';
      append_escaped(out, ev.arg_name);
      std::snprintf(buf, sizeof(buf), R"(":%)" PRId64, ev.arg_value);
      out += buf;
    }
    out += '}';
  }
  out += '}';
}

}  // namespace

std::vector<Tracer::SnapshotEvent> Tracer::snapshot(
    std::size_t max_events) const {
  std::lock_guard<std::mutex> lk(rings_mu_);
  std::vector<SnapshotEvent> out;
  for (const auto& r : rings_) {
    const std::uint64_t n = r->n.load(std::memory_order_acquire);
    std::uint64_t kept = std::min<std::uint64_t>(n, kRingCapacity);
    if (max_events != 0) kept = std::min<std::uint64_t>(kept, max_events);
    for (std::uint64_t i = n - kept; i < n; ++i) {
      out.push_back({r->tid, r->slots[i % kRingCapacity]});
    }
  }
  return out;
}

std::string Tracer::chrome_json(std::uint64_t pid) const {
  std::lock_guard<std::mutex> lk(rings_mu_);
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  std::uint64_t dropped = 0;
  for (const auto& r : rings_) {
    const std::uint64_t n = r->n.load(std::memory_order_acquire);
    const std::uint64_t kept = std::min<std::uint64_t>(n, kRingCapacity);
    if (n > kept) dropped += n - kept;
    // Oldest surviving event first.
    for (std::uint64_t i = n - kept; i < n; ++i) {
      append_event(out, r->slots[i % kRingCapacity], pid, r->tid, &first);
    }
  }
  if (dropped > 0) {
    SpanEvent note;
    note.name = "obs.dropped_events";
    note.cat = "obs";
    note.start_ns = 0;
    note.dur_ns = -1;
    note.arg_name = "dropped";
    note.arg_value = static_cast<std::int64_t>(dropped);
    append_event(out, note, pid, 0, &first);
  }
  out += "\n]}\n";
  return out;
}

void Tracer::write_chrome_json(const std::string& path) const {
  const std::string json = chrome_json();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("cannot open profile output: " + tmp);
  }
  const bool ok =
      std::fwrite(json.data(), 1, json.size(), f) == json.size() &&
      std::fflush(f) == 0;
  std::fclose(f);
  if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot write profile output: " + path);
  }
}

void instant(const char* name, const char* cat, const char* arg_name,
             std::int64_t arg_value) {
  Tracer& t = Tracer::global();
  if (!t.enabled()) return;
  SpanEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.start_ns = t.now_ns();
  ev.dur_ns = -1;
  ev.arg_name = arg_name;
  ev.arg_value = arg_value;
  ev.trace_id = TraceContext::current();
  t.record(ev);
}

}  // namespace vppb::obs
