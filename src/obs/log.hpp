// Structured leveled logging with text and JSON sinks.
//
// Replaces the ad-hoc fprintf(stderr, ...) scattered through the CLI
// and server.  One process-wide Logger; every line carries a level and
// a component tag.  Level checks are a relaxed atomic load, so
// disabled log sites cost a load and a branch.
//
// Configuration comes from the VPPB_LOG environment variable
// (`level[:json]`, e.g. "debug" or "info:json"; see util/env.hpp) and
// can be overridden by the `--log-level` / `--log-json` CLI flags.
//
// Text lines:   `HH:MM:SS.mmm LEVEL component: message`
// JSON lines:   `{"ts":<unix seconds>,"level":"info","component":"x",
//                 "msg":"..."}` — one object per line, strings escaped.
#pragma once

#include <atomic>
#include <cstdarg>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>

namespace vppb::obs {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

const char* to_string(LogLevel level);

/// Parses "trace" / "debug" / "info" / "warn" / "error" / "off"
/// (case-sensitive).  Returns false on anything else.
bool parse_log_level(std::string_view s, LogLevel* out);

/// A VPPB_LOG value: `level[:json]`.
struct LogSpec {
  LogLevel level = LogLevel::kInfo;
  bool json = false;
};

/// Parses `level[:json]` (`:text` is also accepted for symmetry).
/// Returns false — leaving *out untouched — on a malformed spec.
bool parse_log_spec(std::string_view s, LogSpec* out);

class Logger {
 public:
  /// Receives one fully formatted line, without the trailing newline.
  using Sink = std::function<void(std::string_view line)>;

  /// The process-wide logger.  First use reads VPPB_LOG; a malformed
  /// value falls back to the defaults (info, text, stderr).
  static Logger& global();

  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  void set_level(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  bool json() const { return json_.load(std::memory_order_relaxed); }
  void set_json(bool json) { json_.store(json, std::memory_order_relaxed); }
  void configure(const LogSpec& spec) {
    set_level(spec.level);
    set_json(spec.json);
  }

  /// Replaces the output sink (tests capture lines this way); an empty
  /// function restores the default stderr sink.  Sink calls are
  /// serialized by the logger.
  void set_sink(Sink sink);

  bool enabled(LogLevel level) const {
    return static_cast<int>(level) >= level_.load(std::memory_order_relaxed);
  }

  void log(LogLevel level, const char* component, std::string_view msg);
  void vlogf(LogLevel level, const char* component, const char* fmt,
             std::va_list ap);

 private:
  Logger();

  std::atomic<int> level_{static_cast<int>(LogLevel::kInfo)};
  std::atomic<bool> json_{false};
  std::mutex sink_mu_;
  Sink sink_;  // empty = stderr
};

/// printf-style log through Logger::global(); returns immediately when
/// the level is disabled.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 3, 4)))
#endif
void logf(LogLevel level, const char* component, const char* fmt, ...);

}  // namespace vppb::obs
