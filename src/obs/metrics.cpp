#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>

namespace vppb::obs {

Histogram::Histogram(std::string name, std::string help,
                     std::vector<double> bounds)
    : name_(std::move(name)), help_(std::move(help)),
      bounds_(std::move(bounds)) {
  // Strictly ascending: an equal pair would be a bucket no observation
  // can ever land in, which is a bug at the registration site.
  if (std::adjacent_find(bounds_.begin(), bounds_.end(),
                         [](double a, double b) { return a >= b; }) !=
      bounds_.end()) {
    throw std::invalid_argument("histogram bounds must be strictly "
                                "ascending: " + name_);
  }
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  exemplar_ids_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  exemplar_bits_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0);
    exemplar_ids_[i].store(0);
    exemplar_bits_[i].store(0);
  }
}

void Histogram::observe(double v, std::uint64_t exemplar_trace_id) {
  // First edge >= v; past-the-end means the +Inf overflow bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  if (exemplar_trace_id != 0) {
    exemplar_bits_[idx].store(std::bit_cast<std::uint64_t>(v),
                              std::memory_order_relaxed);
    exemplar_ids_[idx].store(exemplar_trace_id, std::memory_order_relaxed);
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t old = sum_bits_.load(std::memory_order_relaxed);
  while (true) {
    const std::uint64_t want = std::bit_cast<std::uint64_t>(
        std::bit_cast<double>(old) + v);
    if (sum_bits_.compare_exchange_weak(old, want, std::memory_order_relaxed))
      break;
  }
}

double Histogram::sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

double Histogram::exemplar_value(std::size_t i) const {
  return std::bit_cast<double>(exemplar_bits_[i].load(
      std::memory_order_relaxed));
}

const std::vector<double>& latency_us_bounds() {
  static const std::vector<double> kBounds = {
      50,     100,    250,    500,     1000,    2500,     5000,
      10000,  25000,  50000,  100000,  250000,  500000,   1000000,
      2500000};
  return kBounds;
}

Counter& Registry::counter(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name), std::make_unique<Counter>(
                                             std::string(name),
                                             std::string(help)))
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name), std::make_unique<Gauge>(
                                             std::string(name),
                                             std::string(help)))
             .first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::string(name),
                                                  std::string(help),
                                                  std::move(bounds)))
             .first;
  }
  return *it->second;
}

namespace {

void append_help_type(std::string& out, const std::string& name,
                      const std::string& help, const char* type) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return std::string(buf);
}

}  // namespace

std::string Registry::prometheus_text() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  char buf[128];
  for (const auto& [name, c] : counters_) {
    append_help_type(out, name, c->help(), "counter");
    std::snprintf(buf, sizeof(buf), "%s %" PRIu64 "\n", name.c_str(),
                  c->value());
    out += buf;
  }
  for (const auto& [name, g] : gauges_) {
    append_help_type(out, name, g->help(), "gauge");
    std::snprintf(buf, sizeof(buf), "%s %" PRId64 "\n", name.c_str(),
                  g->value());
    out += buf;
  }
  for (const auto& [name, h] : histograms_) {
    append_help_type(out, name, h->help(), "histogram");
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i <= h->bounds().size(); ++i) {
      cum += h->bucket_count(i);
      const std::string le = i < h->bounds().size()
                                 ? format_double(h->bounds()[i])
                                 : std::string("+Inf");
      std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"%s\"} %" PRIu64,
                    name.c_str(), le.c_str(), cum);
      out += buf;
      // OpenMetrics-style exemplar: the last trace id observed into
      // this (non-cumulative) bucket, linking the latency band to a
      // concrete distributed trace.
      if (const std::uint64_t ex = h->exemplar_trace_id(i); ex != 0) {
        std::snprintf(buf, sizeof(buf), " # {trace_id=\"%016" PRIx64
                      "\"} %s", ex,
                      format_double(h->exemplar_value(i)).c_str());
        out += buf;
      }
      out += '\n';
    }
    std::snprintf(buf, sizeof(buf), "%s_sum %s\n", name.c_str(),
                  format_double(h->sum()).c_str());
    out += buf;
    std::snprintf(buf, sizeof(buf), "%s_count %" PRIu64 "\n", name.c_str(),
                  h->count());
    out += buf;
  }
  return out;
}

Registry& Registry::global() {
  // Leaked on purpose: instrumentation sites hold references that must
  // outlive every static destructor.
  static Registry* g = new Registry();
  return *g;
}

}  // namespace vppb::obs
