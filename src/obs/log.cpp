#include "obs/log.hpp"

#include <chrono>
#include <cstdio>
#include <ctime>
#include <vector>

#include "util/env.hpp"

namespace vppb::obs {

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

bool parse_log_level(std::string_view s, LogLevel* out) {
  if (s == "trace") { *out = LogLevel::kTrace; return true; }
  if (s == "debug") { *out = LogLevel::kDebug; return true; }
  if (s == "info") { *out = LogLevel::kInfo; return true; }
  if (s == "warn") { *out = LogLevel::kWarn; return true; }
  if (s == "error") { *out = LogLevel::kError; return true; }
  if (s == "off") { *out = LogLevel::kOff; return true; }
  return false;
}

bool parse_log_spec(std::string_view s, LogSpec* out) {
  LogSpec spec;
  std::string_view level_part = s;
  const std::size_t colon = s.find(':');
  if (colon != std::string_view::npos) {
    level_part = s.substr(0, colon);
    const std::string_view fmt = s.substr(colon + 1);
    if (fmt == "json") {
      spec.json = true;
    } else if (fmt != "text") {
      return false;
    }
  }
  if (!parse_log_level(level_part, &spec.level)) return false;
  *out = spec;
  return true;
}

Logger::Logger() {
  const std::string env = util::env_or("VPPB_LOG", "");
  if (!env.empty()) {
    LogSpec spec;
    if (parse_log_spec(env, &spec)) {
      configure(spec);
    } else {
      std::fprintf(stderr, "vppb: ignoring malformed VPPB_LOG=%s\n",
                   env.c_str());
    }
  }
}

Logger& Logger::global() {
  // Leaked: log sites may fire during static destruction.
  static Logger* g = new Logger();
  return *g;
}

void Logger::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lk(sink_mu_);
  sink_ = std::move(sink);
}

namespace {

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
}

}  // namespace

void Logger::log(LogLevel level, const char* component, std::string_view msg) {
  if (!enabled(level)) return;
  const auto now = std::chrono::system_clock::now();
  const double unix_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          now.time_since_epoch())
          .count();
  std::string line;
  if (json()) {
    char head[64];
    std::snprintf(head, sizeof(head), "{\"ts\":%.3f,\"level\":\"", unix_s);
    line += head;
    line += to_string(level);
    line += "\",\"component\":\"";
    append_json_escaped(line, component);
    line += "\",\"msg\":\"";
    append_json_escaped(line, msg);
    line += "\"}";
  } else {
    const std::time_t secs = std::chrono::system_clock::to_time_t(now);
    std::tm tm{};
    localtime_r(&secs, &tm);
    const int ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            now.time_since_epoch())
            .count() %
        1000);
    char head[64];
    std::snprintf(head, sizeof(head), "%02d:%02d:%02d.%03d %-5s ", tm.tm_hour,
                  tm.tm_min, tm.tm_sec, ms, to_string(level));
    line += head;
    line += component;
    line += ": ";
    line += msg;
  }
  std::lock_guard<std::mutex> lk(sink_mu_);
  if (sink_) {
    sink_(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

void Logger::vlogf(LogLevel level, const char* component, const char* fmt,
                   std::va_list ap) {
  if (!enabled(level)) return;
  char stack_buf[512];
  std::va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(stack_buf, sizeof(stack_buf), fmt, ap);
  if (n < 0) {
    va_end(ap2);
    return;
  }
  if (static_cast<std::size_t>(n) < sizeof(stack_buf)) {
    va_end(ap2);
    log(level, component, std::string_view(stack_buf, n));
    return;
  }
  std::vector<char> big(static_cast<std::size_t>(n) + 1);
  std::vsnprintf(big.data(), big.size(), fmt, ap2);
  va_end(ap2);
  log(level, component, std::string_view(big.data(), n));
}

void logf(LogLevel level, const char* component, const char* fmt, ...) {
  Logger& lg = Logger::global();
  if (!lg.enabled(level)) return;
  std::va_list ap;
  va_start(ap, fmt);
  lg.vlogf(level, component, fmt, ap);
  va_end(ap);
}

}  // namespace vppb::obs
