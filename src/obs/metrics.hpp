// Lock-cheap process-wide metrics: counters, gauges, and fixed-bucket
// histograms, collected in a named Registry and exportable as
// Prometheus text exposition.
//
// Design constraints, in order:
//   1. The write path must be safe to call from the hottest layers we
//      instrument (dispatch loop flushes, cache lookups, pool posts):
//      no mutex, no allocation, one relaxed atomic RMW.
//   2. Reads (snapshots, exposition) are rare and may be slow.
//   3. Metric objects live forever once registered — instrumentation
//      sites hold plain references and never re-look-up by name.
//
// Counters spread their increments over a small fixed array of
// cache-line-padded atomic cells; each thread hashes to a cell, so
// concurrent writers on different cells never contend and the summed
// value is exact (reads sum all cells).  Gauges are single atomics
// (set-dominated, not increment-dominated).  Histograms keep one
// atomic per bucket plus packed-double sum; bounds are inclusive
// upper edges with Prometheus `le` semantics and an implicit +Inf
// overflow bucket.
//
// This library is the bottom layer of the tree (linked by util and
// everything above); it depends only on the standard library.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace vppb::obs {

/// Number of per-counter shards.  Power of two; 16 cells × 64 bytes =
/// 1 KiB per counter, enough to keep a few dozen writer threads off
/// each other's lines.
inline constexpr std::size_t kCounterShards = 16;

/// Index of the calling thread's shard.  Threads are numbered in
/// creation order and folded into the shard range; the assignment is
/// stable for a thread's lifetime.
inline std::size_t shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed);
  return idx & (kCounterShards - 1);
}

/// Monotonic counter.  inc() is one relaxed fetch_add on the calling
/// thread's shard; value() sums the shards (exact, but only
/// monotonically consistent — concurrent increments may or may not be
/// included).
class Counter {
 public:
  Counter(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void inc(std::uint64_t n = 1) {
    cells_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }
  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::string name_;
  std::string help_;
  Cell cells_[kCounterShards];
};

/// Last-write-wins signed gauge (queue depths, cache bytes, in-flight
/// requests).  A single atomic: gauges are set/add from few sites, not
/// hammered from every thread.
class Gauge {
 public:
  Gauge(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void sub(std::int64_t n) { v_.fetch_sub(n, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }

 private:
  std::string name_;
  std::string help_;
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram.  `bounds` are inclusive upper edges in
/// ascending order (Prometheus `le`); observations above the last edge
/// land in the implicit +Inf bucket.  observe() is a binary search
/// over the edges plus two relaxed RMWs (bucket, count) and one CAS
/// loop (packed-double sum).
class Histogram {
 public:
  Histogram(std::string name, std::string help, std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// `exemplar_trace_id`, when nonzero, is captured as the bucket's
  /// exemplar (last writer wins): the exposition links the bucket to a
  /// concrete distributed trace an operator can pull with trace-collect.
  void observe(double v, std::uint64_t exemplar_trace_id = 0);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Non-cumulative count of bucket i; index bounds().size() is +Inf.
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Last captured exemplar trace id for bucket i (0 = none) and the
  /// observation it came from.  The pair is racy across writers —
  /// id and value may briefly disagree — which is fine for a debugging
  /// breadcrumb.
  std::uint64_t exemplar_trace_id(std::size_t i) const {
    return exemplar_ids_[i].load(std::memory_order_relaxed);
  }
  double exemplar_value(std::size_t i) const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }

 private:
  std::string name_;
  std::string help_;
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds+1 cells
  std::unique_ptr<std::atomic<std::uint64_t>[]> exemplar_ids_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> exemplar_bits_;  // double
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  // bit-packed double
};

/// Standard microsecond-latency edges shared by the server, pool, and
/// loader histograms so their expositions are comparable.
const std::vector<double>& latency_us_bounds();

/// Named home for every metric in the process.  Registration takes a
/// mutex and allocates; do it once at an instrumentation site (e.g. a
/// function-local static holding the returned reference) and keep the
/// reference.  Re-registering a name returns the existing metric; a
/// name may be registered as only one kind.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name, std::string_view help);
  Gauge& gauge(std::string_view name, std::string_view help);
  /// `bounds` is consulted only on first registration.
  Histogram& histogram(std::string_view name, std::string_view help,
                       std::vector<double> bounds);

  /// Prometheus text exposition (version 0.0.4): HELP/TYPE comments,
  /// cumulative `_bucket{le=...}` lines, `_sum`/`_count`, families
  /// sorted by name.
  std::string prometheus_text() const;

  /// The process-wide registry every built-in instrumentation site
  /// writes to.
  static Registry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace vppb::obs
