#include "obs/slo.hpp"

#include <algorithm>
#include <chrono>

namespace vppb::obs {

namespace {

/// Per-window burn: violating fraction over the allowed fraction.
double burn_of(std::uint64_t total, std::uint64_t bad, double allowed) {
  if (total == 0 || allowed <= 0.0) return 0.0;
  return (static_cast<double>(bad) / static_cast<double>(total)) / allowed;
}

}  // namespace

void SloTracker::configure(const SloOptions& opt) {
  std::lock_guard<std::mutex> lk(mu_);
  opt_ = opt;
}

std::int64_t SloTracker::steady_s() const {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SloTracker::record(double latency_us, bool ok, std::int64_t now_s) {
  if (now_s < 0) now_s = steady_s();
  std::lock_guard<std::mutex> lk(mu_);
  if (!opt_.enabled()) return;
  Bucket& b = ring_[static_cast<std::size_t>(now_s) % kBuckets];
  if (b.sec != now_s) b = Bucket{now_s, 0, 0, 0};
  ++b.total;
  if (opt_.p99_ms > 0.0 && latency_us > opt_.p99_ms * 1000.0) ++b.slow;
  if (!ok) ++b.failed;
}

void SloTracker::window_sum(std::int64_t now_s, std::int64_t window_s,
                            std::uint64_t* total, std::uint64_t* slow,
                            std::uint64_t* failed) const {
  *total = *slow = *failed = 0;
  const std::int64_t lo = now_s - window_s;  // exclusive
  const std::int64_t span = std::min<std::int64_t>(
      window_s, static_cast<std::int64_t>(kBuckets));
  for (std::int64_t s = now_s; s > now_s - span && s > lo; --s) {
    if (s < 0) break;
    const Bucket& b = ring_[static_cast<std::size_t>(s) % kBuckets];
    if (b.sec != s) continue;  // slot empty or recycled for another stamp
    *total += b.total;
    *slow += b.slow;
    *failed += b.failed;
  }
}

BurnRates SloTracker::burn(std::int64_t now_s) const {
  if (now_s < 0) now_s = steady_s();
  std::lock_guard<std::mutex> lk(mu_);
  BurnRates r;
  if (!opt_.enabled()) return r;

  // The latency objective is a p99: 1% of requests may exceed the
  // target.  The availability budget is 1 - objective.
  const double lat_allowed = opt_.p99_ms > 0.0 ? 0.01 : 0.0;
  const double avail_allowed =
      opt_.availability > 0.0
          ? std::max(1.0 - opt_.availability, 1e-9)
          : 0.0;

  const std::int64_t windows[3] = {60, 300, 3600};
  double lat[3] = {0, 0, 0};
  double avail[3] = {0, 0, 0};
  for (int i = 0; i < 3; ++i) {
    std::uint64_t total, slow, failed;
    window_sum(now_s, windows[i], &total, &slow, &failed);
    lat[i] = burn_of(total, slow, lat_allowed);
    avail[i] = burn_of(total, failed, avail_allowed);
  }
  r.lat_1m = lat[0];
  r.lat_5m = lat[1];
  r.lat_1h = lat[2];
  r.avail_1m = avail[0];
  r.avail_5m = avail[1];
  r.avail_1h = avail[2];

  const auto multiwindow = [](const double b[3]) {
    const bool fast = b[0] >= kFastBurn && b[1] >= kFastBurn;
    const bool slow = b[1] >= kSlowBurn && b[2] >= kSlowBurn;
    return fast || slow;
  };
  r.burning = multiwindow(lat) || multiwindow(avail);
  return r;
}

}  // namespace vppb::obs
