// SLO burn-rate tracking: turns a stream of per-request outcomes into
// the multi-window burn rates an operator alerts on.
//
// An objective defines an error budget: a p99 latency target allows 1%
// of requests over the target, an availability target of 0.999 allows
// 0.1% failed requests.  The burn rate over a window is the fraction
// of budget-violating requests divided by the allowed fraction — 1.0
// means spending the budget exactly as fast as the objective permits,
// 10 means ten times too fast.  Following the multi-window pattern, a
// breach is declared only when a short AND a long window both burn
// (fast: 1m and 5m above 14.4; slow: 5m and 1h above 6), so a single
// slow request cannot page but a sustained regression cannot hide.
//
// The tracker keeps one bucket per second in a fixed ring (1h of
// history, ~40 KiB); record() is a mutex-guarded handful of integer
// increments, negligible next to the request it accounts for.  Both
// record() and burn() accept an explicit second stamp so tests drive
// time deterministically.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace vppb::obs {

struct SloOptions {
  double p99_ms = 0.0;        ///< latency objective: p99 <= this (0 = off)
  double availability = 0.0;  ///< success-fraction objective, e.g. 0.999
                              ///< (0 = off)
  bool enabled() const { return p99_ms > 0.0 || availability > 0.0; }
};

/// Burn rates per objective per window, plus the combined multi-window
/// breach verdict.
struct BurnRates {
  double lat_1m = 0.0;
  double lat_5m = 0.0;
  double lat_1h = 0.0;
  double avail_1m = 0.0;
  double avail_5m = 0.0;
  double avail_1h = 0.0;
  bool burning = false;
};

class SloTracker {
 public:
  /// Fast-burn threshold over the 1m+5m windows, slow-burn over 5m+1h.
  static constexpr double kFastBurn = 14.4;
  static constexpr double kSlowBurn = 6.0;

  SloTracker() = default;
  explicit SloTracker(const SloOptions& opt) : opt_(opt) {}

  /// Replaces the objectives (startup-time configuration).
  void configure(const SloOptions& opt);
  const SloOptions& options() const { return opt_; }
  bool enabled() const { return opt_.enabled(); }

  /// Accounts one completed request.  `ok` is the availability verdict
  /// (admission rejections are not failures; errors and deadline
  /// misses are — the caller decides).  `now_s` overrides the clock
  /// for tests (-1 = steady clock).
  void record(double latency_us, bool ok, std::int64_t now_s = -1);

  /// Burn rates over the trailing 1m / 5m / 1h windows ending now.
  /// Cheap enough to call on every stats request.
  BurnRates burn(std::int64_t now_s = -1) const;

 private:
  struct Bucket {
    std::int64_t sec = -1;  ///< stamp owning this slot (-1 = empty)
    std::uint32_t total = 0;
    std::uint32_t slow = 0;    ///< over the latency target
    std::uint32_t failed = 0;  ///< not ok
  };
  static constexpr std::size_t kBuckets = 3600;

  std::int64_t steady_s() const;
  /// Sums buckets with stamps in (now_s - window_s, now_s].
  void window_sum(std::int64_t now_s, std::int64_t window_s,
                  std::uint64_t* total, std::uint64_t* slow,
                  std::uint64_t* failed) const;

  SloOptions opt_;
  mutable std::mutex mu_;
  std::vector<Bucket> ring_ = std::vector<Bucket>(kBuckets);
};

}  // namespace vppb::obs
