// Span tracer: scoped RAII timers and instant events, ring-buffered
// per thread, exportable as Chrome trace-event JSON (load the file at
// https://ui.perfetto.dev or chrome://tracing).
//
// Cost model: when tracing is disabled — the default — constructing a
// Span is one relaxed atomic load and a branch, and nothing is ever
// recorded, so instrumentation can stay compiled into release builds.
// When enabled, ending a span appends one POD event to a fixed-size
// thread-local ring with no locks on the hot path (the ring is
// registered once per thread under a mutex).  Rings overwrite their
// oldest events when full; the export notes how many were dropped.
//
// Event names and categories must be string literals (or otherwise
// immortal): rings store `const char*` and events may be exported long
// after the emitting scope returned.
//
// Exporting while other threads still emit is safe in the sense that
// each published event is read consistently (single writer per ring,
// release/acquire on the published count); a ring that wraps *during*
// the export can surface a stale mix of old and new events, which is
// acceptable for a profiler.  The CLI exports after the traced work
// completes.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace vppb::obs {

/// One completed span ("ph":"X") or instant event ("ph":"i").  POD so
/// ring slots can be overwritten freely.
struct SpanEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  std::int64_t start_ns = 0;  ///< steady-clock ns since tracer epoch
  std::int64_t dur_ns = -1;   ///< -1 = instant event
  const char* arg_name = nullptr;  ///< optional single numeric arg
  std::int64_t arg_value = 0;
  /// Distributed-trace id propagated from the request that was being
  /// served when the span was recorded (0 = not request-scoped).
  std::uint64_t trace_id = 0;
};

/// Scoped thread-local trace context: while alive, every Span/instant
/// recorded on this thread is tagged with `trace_id`, so spans emitted
/// deep inside the engine/cache are attributable to the distributed
/// trace of the request being served.  Nests (restores the previous id
/// on destruction); crossing threads means installing a new context on
/// the worker, which is what the server's dispatch path does.
class TraceContext {
 public:
  explicit TraceContext(std::uint64_t trace_id);
  ~TraceContext();
  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  /// The calling thread's current trace id (0 = none).
  static std::uint64_t current();

 private:
  std::uint64_t saved_;
};

class Tracer {
 public:
  /// Events kept per thread; oldest overwritten beyond this.
  static constexpr std::size_t kRingCapacity = 1 << 16;

  /// The process-wide tracer all Spans record into.
  static Tracer& global();

  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops all recorded events (rings stay registered to their
  /// threads).  Not safe concurrently with emitting threads.
  void clear();

  /// ns since the tracer's epoch (process start), on the steady clock.
  std::int64_t now_ns() const;

  void record(const SpanEvent& ev);

  /// Number of events currently held across all rings, plus the count
  /// overwritten since the last clear().
  std::size_t event_count() const;
  std::size_t dropped_count() const;

  /// System-clock (unix) ns corresponding to tracer timestamp 0.
  /// Lets a collector place this process's events on a host-wide
  /// timeline: absolute time of an event = epoch_unix_ns() + start_ns.
  std::int64_t epoch_unix_ns() const { return epoch_unix_ns_; }

  /// One event as seen by snapshot(): the ring's stable export tid
  /// plus the event itself.
  struct SnapshotEvent {
    std::uint32_t tid = 0;
    SpanEvent ev;
  };

  /// Copies every currently-held event (oldest surviving first per
  /// ring), up to `max_events` most-recent per ring (0 = no cap).
  /// Safe concurrently with emitting threads, same caveat as the JSON
  /// export: a ring that wraps mid-copy can yield a stale mix.
  std::vector<SnapshotEvent> snapshot(std::size_t max_events = 0) const;

  /// Chrome trace-event JSON: {"traceEvents":[...]}.  Timestamps are
  /// fractional microseconds; `pid` labels this process's lane (the
  /// cluster collector passes the shard id).
  std::string chrome_json(std::uint64_t pid = 1) const;
  /// Writes chrome_json() to `path` (temp + rename); throws vppb-style
  /// std::runtime_error on IO failure.
  void write_chrome_json(const std::string& path) const;

 private:
  struct Ring {
    std::uint32_t tid = 0;  ///< stable per-thread export id
    std::atomic<std::uint64_t> n{0};  ///< events ever written
    std::vector<SpanEvent> slots;
  };

  Tracer();
  Ring& ring_for_this_thread();

  std::atomic<bool> enabled_{false};
  std::int64_t epoch_ns_ = 0;  ///< steady-clock origin of timestamps
  std::int64_t epoch_unix_ns_ = 0;  ///< system-clock time of timestamp 0
  mutable std::mutex rings_mu_;
  // Ring pointers are immortal once registered: emitting threads hold
  // raw pointers in thread-local storage.
  std::vector<std::unique_ptr<Ring>> rings_;
};

/// Scoped timer.  Records one "X" event covering construction to
/// destruction, on the constructing thread's ring.  Must be ended on
/// the thread that created it (stack scoped — the normal use).
class Span {
 public:
  explicit Span(const char* name, const char* cat = "vppb") {
    Tracer& t = Tracer::global();
    if (t.enabled()) {
      ev_.name = name;
      ev_.cat = cat;
      ev_.start_ns = t.now_ns();
      ev_.trace_id = TraceContext::current();
      active_ = true;
    }
  }
  ~Span() { finish(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches one numeric argument, shown in the event's detail pane.
  /// `name` must be immortal.  Last call wins.
  void arg(const char* name, std::int64_t value) {
    ev_.arg_name = name;
    ev_.arg_value = value;
  }

  /// Ends the span early (idempotent).
  void finish() {
    if (!active_) return;
    active_ = false;
    Tracer& t = Tracer::global();
    ev_.dur_ns = t.now_ns() - ev_.start_ns;
    t.record(ev_);
  }

 private:
  SpanEvent ev_;
  bool active_ = false;
};

/// Zero-duration marker at the current time.  `name`, `cat`, and
/// `arg_name` must be immortal.
void instant(const char* name, const char* cat = "vppb",
             const char* arg_name = nullptr, std::int64_t arg_value = 0);

}  // namespace vppb::obs
