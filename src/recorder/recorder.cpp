#include "recorder/recorder.hpp"

#include <csignal>
#include <cstdlib>
#include <cstring>

#include <atomic>

#include "ult/runtime.hpp"
#include "util/error.hpp"

namespace vppb::rec {
namespace {

/// Basename of a __FILE__-style path, for paper-like "file:line" display.
std::string_view basename_of(const char* path) {
  std::string_view sv(path == nullptr ? "" : path);
  const std::size_t pos = sv.find_last_of('/');
  return pos == std::string_view::npos ? sv : sv.substr(pos + 1);
}

// Crash finalization.  A dying target gets one chance to seal its live
// log; the exchange below makes every exit path (signal, abort, exit)
// claim the writer at most once, so handlers racing each other or the
// destructor cannot double-seal.
std::atomic<trace::ChunkedWriter*> g_live_writer{nullptr};

void crash_handler(int sig) {
  trace::ChunkedWriter* w = g_live_writer.exchange(nullptr);
  if (w != nullptr) w->crash_seal();
  // Re-deliver with the default action so the process still dies (and
  // dumps core) the way it would have without us.
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

void atexit_seal() {
  trace::ChunkedWriter* w = g_live_writer.exchange(nullptr);
  if (w != nullptr) w->crash_seal();
}

void install_crash_handlers_once() {
  static bool installed = [] {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = crash_handler;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGSEGV, &sa, nullptr);
    ::sigaction(SIGABRT, &sa, nullptr);
    ::sigaction(SIGBUS, &sa, nullptr);
    std::atexit(atexit_seal);
    return true;
  }();
  (void)installed;
}

}  // namespace

Recorder::Recorder() : Recorder(Options{}) {}

Recorder::Recorder(Options opts) : opts_(std::move(opts)) {
  trace_.records.reserve(opts_.reserve_records);
  if (!opts_.live_log_path.empty()) {
    trace::ChunkedWriterOptions wopts;
    wopts.chunk_records = opts_.live_chunk_records;
    live_ = std::make_unique<trace::ChunkedWriter>(opts_.live_log_path, wopts);
    if (opts_.install_crash_handlers) {
      install_crash_handlers_once();
      g_live_writer.store(live_.get());
    }
  }
}

Recorder::Scope::Scope(Recorder& r) {
  VPPB_CHECK_MSG(sol::probe_sink() == nullptr,
                 "another recorder is already attached");
  sol::set_probe_sink(&r);
}

Recorder::Scope::~Scope() { sol::set_probe_sink(nullptr); }

std::uint32_t Recorder::location_of(const sol::ProbeContext& ctx) {
  if (!opts_.capture_locations) return 0;
  return trace_.add_location(basename_of(ctx.loc.file_name()), ctx.loc.line(),
                             ctx.loc.function_name());
}

Recorder::~Recorder() {
  // Un-register from the crash path before the writer dies with us.
  trace::ChunkedWriter* mine = live_.get();
  if (mine != nullptr) g_live_writer.compare_exchange_strong(mine, nullptr);
}

void Recorder::mirror(const trace::Record& r) {
  if (live_ == nullptr) return;
  live_->sync_tables(trace_);
  live_->add_record(r);
}

void Recorder::append(SimTime at, trace::ThreadId tid, trace::Phase phase,
                      const sol::ProbeContext& ctx, std::int64_t arg) {
  trace::Record r;
  r.at = at;
  r.tid = tid;
  r.phase = phase;
  r.op = ctx.op;
  r.obj = ctx.obj;
  r.arg = arg;
  r.arg2 = ctx.arg2;
  r.loc = location_of(ctx);
  if (ctx.op == trace::Op::kUserMark)
    r.arg = trace_.strings.intern(ctx.label);
  if (opts_.ring_capacity != 0 &&
      trace_.records.size() >= opts_.ring_capacity) {
    // TNF-style overwrite of the oldest record (see Options comment).
    trace_.records.erase(trace_.records.begin());
    ++dropped_;
  }
  trace_.records.push_back(r);
  mirror(r);
}

void Recorder::on_call(const sol::ProbeContext& ctx) {
  auto& rt = ult::Runtime::current();
  const SimTime at = rt.stamp_now();
  if (!started_) {
    started_ = true;
    trace::Record start;
    start.at = at;
    start.tid = rt.current_tid();
    start.op = trace::Op::kStartCollect;
    trace_.records.push_back(start);
    mirror(start);
  }
  append(at, rt.current_tid(), trace::Phase::kCall, ctx, ctx.arg);
}

void Recorder::on_return(const sol::ProbeContext& ctx,
                         std::int64_t result_arg) {
  auto& rt = ult::Runtime::current();
  append(rt.stamp_now(), rt.current_tid(), trace::Phase::kReturn, ctx,
         result_arg);
}

void Recorder::on_thread(trace::ThreadId tid, std::string_view name,
                         std::string_view start_func, bool bound,
                         int priority) {
  trace::ThreadMeta& meta = trace_.upsert_thread(tid);
  meta.name = trace_.strings.intern(name);
  meta.start_func = trace_.strings.intern(start_func);
  meta.bound = bound;
  meta.initial_priority = priority;
}

trace::Trace Recorder::finish(SimTime program_end) {
  if (started_) {
    trace::Record end;
    end.at = program_end;
    end.tid = 1;
    end.op = trace::Op::kEndCollect;
    trace_.records.push_back(end);
    mirror(end);
  }
  if (live_ != nullptr) {
    // Claim the writer back from the crash path, then publish cleanly.
    trace::ChunkedWriter* mine = live_.get();
    g_live_writer.compare_exchange_strong(mine, nullptr);
    live_->sync_tables(trace_);
    live_->finalize();
    live_.reset();
  }
  // A ring-truncated log has lost its prefix (dangling returns etc.);
  // it cannot promise the validation invariants the full log has.
  if (dropped_ == 0) trace_.validate();
  trace::Trace out = std::move(trace_);
  trace_ = trace::Trace{};
  trace_.records.reserve(opts_.reserve_records);
  dropped_ = 0;
  started_ = false;
  return out;
}

trace::Trace record_program(sol::Program& program,
                            const std::function<void()>& main_fn,
                            Recorder::Options opts) {
  Recorder recorder(opts);
  {
    Recorder::Scope attach(recorder);
    program.run(main_fn);
  }
  return recorder.finish(program.last_duration());
}

}  // namespace vppb::rec
