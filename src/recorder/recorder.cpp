#include "recorder/recorder.hpp"

#include <cstring>

#include "ult/runtime.hpp"
#include "util/error.hpp"

namespace vppb::rec {
namespace {

/// Basename of a __FILE__-style path, for paper-like "file:line" display.
std::string_view basename_of(const char* path) {
  std::string_view sv(path == nullptr ? "" : path);
  const std::size_t pos = sv.find_last_of('/');
  return pos == std::string_view::npos ? sv : sv.substr(pos + 1);
}

}  // namespace

Recorder::Recorder() : Recorder(Options{}) {}

Recorder::Recorder(Options opts) : opts_(opts) {
  trace_.records.reserve(opts_.reserve_records);
}

Recorder::Scope::Scope(Recorder& r) {
  VPPB_CHECK_MSG(sol::probe_sink() == nullptr,
                 "another recorder is already attached");
  sol::set_probe_sink(&r);
}

Recorder::Scope::~Scope() { sol::set_probe_sink(nullptr); }

std::uint32_t Recorder::location_of(const sol::ProbeContext& ctx) {
  if (!opts_.capture_locations) return 0;
  return trace_.add_location(basename_of(ctx.loc.file_name()), ctx.loc.line(),
                             ctx.loc.function_name());
}

void Recorder::append(SimTime at, trace::ThreadId tid, trace::Phase phase,
                      const sol::ProbeContext& ctx, std::int64_t arg) {
  trace::Record r;
  r.at = at;
  r.tid = tid;
  r.phase = phase;
  r.op = ctx.op;
  r.obj = ctx.obj;
  r.arg = arg;
  r.arg2 = ctx.arg2;
  r.loc = location_of(ctx);
  if (ctx.op == trace::Op::kUserMark)
    r.arg = trace_.strings.intern(ctx.label);
  if (opts_.ring_capacity != 0 &&
      trace_.records.size() >= opts_.ring_capacity) {
    // TNF-style overwrite of the oldest record (see Options comment).
    trace_.records.erase(trace_.records.begin());
    ++dropped_;
  }
  trace_.records.push_back(r);
}

void Recorder::on_call(const sol::ProbeContext& ctx) {
  auto& rt = ult::Runtime::current();
  const SimTime at = rt.stamp_now();
  if (!started_) {
    started_ = true;
    trace::Record start;
    start.at = at;
    start.tid = rt.current_tid();
    start.op = trace::Op::kStartCollect;
    trace_.records.push_back(start);
  }
  append(at, rt.current_tid(), trace::Phase::kCall, ctx, ctx.arg);
}

void Recorder::on_return(const sol::ProbeContext& ctx,
                         std::int64_t result_arg) {
  auto& rt = ult::Runtime::current();
  append(rt.stamp_now(), rt.current_tid(), trace::Phase::kReturn, ctx,
         result_arg);
}

void Recorder::on_thread(trace::ThreadId tid, std::string_view name,
                         std::string_view start_func, bool bound,
                         int priority) {
  trace::ThreadMeta& meta = trace_.upsert_thread(tid);
  meta.name = trace_.strings.intern(name);
  meta.start_func = trace_.strings.intern(start_func);
  meta.bound = bound;
  meta.initial_priority = priority;
}

trace::Trace Recorder::finish(SimTime program_end) {
  if (started_) {
    trace::Record end;
    end.at = program_end;
    end.tid = 1;
    end.op = trace::Op::kEndCollect;
    trace_.records.push_back(end);
  }
  // A ring-truncated log has lost its prefix (dangling returns etc.);
  // it cannot promise the validation invariants the full log has.
  if (dropped_ == 0) trace_.validate();
  trace::Trace out = std::move(trace_);
  trace_ = trace::Trace{};
  trace_.records.reserve(opts_.reserve_records);
  dropped_ = 0;
  started_ = false;
  return out;
}

trace::Trace record_program(sol::Program& program,
                            const std::function<void()>& main_fn,
                            Recorder::Options opts) {
  Recorder recorder(opts);
  {
    Recorder::Scope attach(recorder);
    program.run(main_fn);
  }
  return recorder.finish(program.last_duration());
}

}  // namespace vppb::rec
