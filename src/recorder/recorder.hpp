// The Recorder: the paper's instrumented encapsulating thread library.
//
// Attached around the solaris API (the LD_PRELOAD substitute), it
// records every thread-library call — when it happened, the event type,
// the object concerned, the calling thread and the source line — into
// an in-memory buffer, "kept in memory until the program terminates" to
// keep intrusion minimal, then handed over as a trace::Trace.
#pragma once

#include <functional>
#include <memory>

#include "solaris/probe.hpp"
#include "solaris/program.hpp"
#include "trace/chunked.hpp"
#include "trace/trace.hpp"

namespace vppb::rec {

class Recorder final : public sol::ProbeSink {
 public:
  struct Options {
    /// Record file:line for every event (the paper's %i7 capture).
    /// Disabling it shrinks logs; the Visualizer then has no source
    /// mapping for this trace.
    bool capture_locations = true;
    /// Pre-allocated record capacity (events are buffered in memory).
    std::size_t reserve_records = 1 << 16;
    /// TNF-style circular buffer: keep only the newest N records
    /// (0 = unbounded, the VPPB default).  The paper rejects TNF
    /// precisely because "information may be overwritten if the buffer
    /// is too small" — with a bound set, finish() reports how many
    /// records were lost and the truncated log generally cannot be
    /// replayed.
    std::size_t ring_capacity = 0;
    /// When non-empty, mirror every event to a crash-safe chunked log
    /// (trace/chunked.hpp) at this path as the program runs.  However
    /// the target dies — SIGKILL included — every sealed chunk is
    /// recoverable with the salvaging loader.  The ring bound does not
    /// apply to the live log: it keeps everything that happened.
    std::string live_log_path;
    /// Seal a live-log chunk after this many records.
    std::size_t live_chunk_records = 1024;
    /// Install SIGSEGV/SIGABRT/SIGBUS and atexit finalizers that seal
    /// the live log (async-signal-safely) before the process dies.
    /// Process-global: one live-logging recorder at a time.
    bool install_crash_handlers = false;
  };

  Recorder();  // default Options
  explicit Recorder(Options opts);
  ~Recorder() override;

  /// RAII attachment: installs the recorder as the probe sink for its
  /// lifetime, like setting LD_PRELOAD for the monitored execution.
  class Scope {
   public:
    explicit Scope(Recorder& r);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
  };

  // ProbeSink interface -----------------------------------------------------
  void on_call(const sol::ProbeContext& ctx) override;
  void on_return(const sol::ProbeContext& ctx,
                 std::int64_t result_arg) override;
  void on_thread(trace::ThreadId tid, std::string_view name,
                 std::string_view start_func, bool bound,
                 int priority) override;

  /// Finalizes the log (writes the end_collect record with the program's
  /// total duration) and moves the trace out.  The recorder is empty
  /// afterwards and can be reused.
  trace::Trace finish(SimTime program_end);

  std::size_t records_so_far() const { return trace_.records.size(); }

  /// Records overwritten because the ring filled (0 when unbounded).
  std::size_t dropped_records() const { return dropped_; }

  /// The live chunked log writer (null unless Options.live_log_path).
  const trace::ChunkedWriter* live_writer() const { return live_.get(); }

 private:
  std::uint32_t location_of(const sol::ProbeContext& ctx);
  void append(SimTime at, trace::ThreadId tid, trace::Phase phase,
              const sol::ProbeContext& ctx, std::int64_t arg);
  void mirror(const trace::Record& r);

  Options opts_;
  trace::Trace trace_;
  std::unique_ptr<trace::ChunkedWriter> live_;
  std::size_t dropped_ = 0;
  bool started_ = false;
};

/// Convenience harness for the common workflow (paper fig. 1): run the
/// program once on the uni-processor runtime with the recorder attached
/// and return the recorded information.
trace::Trace record_program(sol::Program& program,
                            const std::function<void()>& main_fn,
                            Recorder::Options opts = Recorder::Options());

}  // namespace vppb::rec
