#include "ult/runtime.hpp"

#include <sstream>

#include "util/error.hpp"

namespace vppb::ult {
namespace {

Runtime* g_current_runtime = nullptr;

}  // namespace

const char* to_string(ThreadState s) {
  switch (s) {
    case ThreadState::kRunnable: return "runnable";
    case ThreadState::kRunning: return "running";
    case ThreadState::kBlocked: return "blocked";
    case ThreadState::kSleeping: return "sleeping";
    case ThreadState::kSuspended: return "suspended";
    case ThreadState::kDone: return "done";
  }
  return "?";
}

Runtime::Runtime() : Runtime(Config{}) {}

Runtime::Runtime(Config cfg) : cfg_(cfg), clock_(cfg.clock_mode) {}

Runtime::~Runtime() {
  if (g_current_runtime == this) g_current_runtime = nullptr;
}

Runtime& Runtime::current() {
  VPPB_CHECK_MSG(g_current_runtime != nullptr,
                 "Runtime::current() called outside Runtime::run()");
  return *g_current_runtime;
}

bool Runtime::in_runtime() { return g_current_runtime != nullptr; }

Runtime::Thread& Runtime::thread(ThreadId tid) {
  VPPB_CHECK_MSG(tid >= 0 && static_cast<std::size_t>(tid) < slots_.size() &&
                     slots_[static_cast<std::size_t>(tid)] != nullptr,
                 "no such thread T" << tid);
  return *slots_[static_cast<std::size_t>(tid)];
}

const Runtime::Thread& Runtime::thread(ThreadId tid) const {
  return const_cast<Runtime*>(this)->thread(tid);
}

ThreadId Runtime::spawn(std::function<void()> fn, int priority, bool daemon,
                        std::string name) {
  VPPB_CHECK_MSG(priority >= kMinPriority && priority <= kMaxPriority,
                 "priority out of range: " << priority);
  const ThreadId id = next_id_;
  // Mimic Solaris id assignment: main is 1; the first user thread is 4
  // (ids 2 and 3 belong to library-internal threads we do not create).
  next_id_ = (id == 1) ? 4 : next_id_ + 1;

  auto t = std::make_unique<Thread>();
  t->id = id;
  t->name = name.empty() ? ("T" + std::to_string(id)) : std::move(name);
  t->priority = priority;
  t->daemon = daemon;
  t->state = ThreadState::kRunnable;
  t->created_at = clock_.now();
  t->fiber = std::make_unique<Fiber>(
      [this, fn = std::move(fn)]() {
        // An exception escaping a thread aborts the whole run: the
        // scheduler rethrows it from run() so callers (and tests) see it.
        try {
          fn();
        } catch (...) {
          pending_exception_ = std::current_exception();
        }
        exit_current();
      },
      cfg_.stack_size);

  if (slots_.size() <= static_cast<std::size_t>(id))
    slots_.resize(static_cast<std::size_t>(id) + 1);
  slots_[static_cast<std::size_t>(id)] = std::move(t);
  run_queue_.push(id, priority);
  return id;
}

void Runtime::run(std::function<void()> main_fn) {
  VPPB_CHECK_MSG(!running_, "Runtime::run() is not reentrant");
  VPPB_CHECK_MSG(g_current_runtime == nullptr,
                 "another Runtime is already running on this LWP");
  running_ = true;
  g_current_runtime = this;
  clock_.reset();
  spawn(std::move(main_fn), kDefaultPriority, /*daemon=*/false, "main");

  try {
    schedule_loop();
  } catch (...) {
    g_current_runtime = nullptr;
    running_ = false;
    throw;
  }
  g_current_runtime = nullptr;
  running_ = false;
}

void Runtime::schedule_loop() {
  for (;;) {
    // Wake timer sleepers that are already due.
    fire_due_timers();

    ThreadId next = run_queue_.pop();
    if (next == kNoThread) {
      if (!timers_.empty()) {
        // Idle: jump the clock to the earliest pending timer.
        SimTime when = timers_.top().when;
        if (when > clock_.now()) clock_.advance(when - clock_.now());
        continue;
      }
      if (!live_non_daemon_threads()) return;  // program finished
      throw Error("deadlock: no runnable thread and no pending timer\n" +
                  state_dump());
    }

    Thread& t = thread(next);
    VPPB_CHECK_MSG(t.state == ThreadState::kRunnable,
                   "scheduled thread T" << next << " in state "
                                        << to_string(t.state));
    t.state = ThreadState::kRunning;
    cur_ = next;
    ++switches_;
    if (cfg_.max_context_switches != 0 && switches_ > cfg_.max_context_switches)
      throw Error("context-switch bound exceeded (runaway loop?)\n" +
                  state_dump());

    clock_.stamp_real_elapsed();  // don't charge scheduler time to the thread
    t.fiber->switch_from(&sched_ctx_);
    cur_ = kNoThread;
    if (pending_exception_) {
      std::exception_ptr ex = pending_exception_;
      pending_exception_ = nullptr;
      std::rethrow_exception(ex);
    }
  }
}

bool Runtime::fire_due_timers() {
  bool fired = false;
  while (!timers_.empty() && timers_.top().when <= clock_.now()) {
    const Timer timer = timers_.top();
    timers_.pop();
    if (!exists(timer.tid)) continue;
    Thread& t = thread(timer.tid);
    if (t.sleep_gen != timer.gen) continue;  // stale: thread was woken
    if (t.state == ThreadState::kBlocked) {
      VPPB_CHECK(t.waiting_on != nullptr);
      t.waiting_on->remove(t.id);
      t.waiting_on = nullptr;
      t.timed_out = true;
    } else if (t.state != ThreadState::kSleeping) {
      continue;
    }
    ++t.sleep_gen;
    if (t.pending_suspend) {
      t.pending_suspend = false;
      t.state = ThreadState::kSuspended;
      continue;
    }
    t.state = ThreadState::kRunnable;
    run_queue_.push(t.id, t.priority);
    fired = true;
  }
  return fired;
}

bool Runtime::live_non_daemon_threads() const {
  for (const auto& t : slots_) {
    if (t && !t->daemon && t->state != ThreadState::kDone) return true;
  }
  return false;
}

void Runtime::check_livelock() const {
  if (clock_.now() > cfg_.livelock_horizon) {
    throw Error(
        "livelock horizon exceeded: a thread appears to be spinning "
        "without calling the thread library (paper §6 limitation)\n" +
        state_dump());
  }
}

SimTime Runtime::stamp_now() {
  charge_current();
  return clock_.now();
}

void Runtime::charge_current() {
  const SimTime added = clock_.stamp_real_elapsed();
  if (cur_ != kNoThread && !added.is_zero()) current_thread().cpu_time += added;
}

void Runtime::work(SimTime d) {
  VPPB_CHECK_MSG(cur_ != kNoThread, "work() called outside a thread");
  VPPB_CHECK_MSG(d >= SimTime::zero(), "negative work duration");
  charge_current();
  if (clock_.mode() == ClockMode::kVirtual) {
    clock_.advance(d);
    current_thread().cpu_time += d;
  }
  check_livelock();
}

void Runtime::switch_to_scheduler() {
  Thread& t = current_thread();
  charge_current();
  VPPB_CHECK(swapcontext(t.fiber->context(), &sched_ctx_) == 0);
}

void Runtime::yield() {
  Thread& t = current_thread();
  t.state = ThreadState::kRunnable;
  run_queue_.push(t.id, t.priority);
  switch_to_scheduler();
}

void Runtime::block_current(WaitQueue& q) {
  Thread& t = current_thread();
  q.push(t.id, t.priority);
  t.waiting_on = &q;
  t.timed_out = false;
  t.state = ThreadState::kBlocked;
  switch_to_scheduler();
  VPPB_CHECK_MSG(!t.timed_out, "untimed block woke via timer");
}

bool Runtime::block_current_until(WaitQueue& q, SimTime deadline) {
  Thread& t = current_thread();
  q.push(t.id, t.priority);
  t.waiting_on = &q;
  t.timed_out = false;
  t.state = ThreadState::kBlocked;
  timers_.push(Timer{deadline, t.id, t.sleep_gen});
  switch_to_scheduler();
  return !t.timed_out;
}

void Runtime::wake(ThreadId tid) {
  Thread& t = thread(tid);
  VPPB_CHECK_MSG(t.state == ThreadState::kBlocked ||
                     t.state == ThreadState::kSleeping,
                 "wake of T" << tid << " in state " << to_string(t.state));
  t.waiting_on = nullptr;
  ++t.sleep_gen;  // cancel any pending timer
  if (t.pending_suspend) {
    // thr_suspend arrived while the thread was asleep: it stops the
    // moment it would otherwise resume.
    t.pending_suspend = false;
    t.state = ThreadState::kSuspended;
    return;
  }
  t.state = ThreadState::kRunnable;
  run_queue_.push(t.id, t.priority);
}

ThreadId Runtime::wake_one(WaitQueue& q) {
  const ThreadId tid = q.pop();
  if (tid != kNoThread) wake(tid);
  return tid;
}

std::size_t Runtime::wake_all(WaitQueue& q) {
  std::size_t n = 0;
  while (wake_one(q) != kNoThread) ++n;
  return n;
}

void Runtime::sleep_until(SimTime when) {
  Thread& t = current_thread();
  if (when <= clock_.now()) {
    yield();
    return;
  }
  t.state = ThreadState::kSleeping;
  timers_.push(Timer{when, t.id, t.sleep_gen});
  switch_to_scheduler();
}

void Runtime::suspend(ThreadId tid) {
  Thread& t = thread(tid);
  switch (t.state) {
    case ThreadState::kRunnable:
      VPPB_CHECK(run_queue_.remove(tid));
      t.state = ThreadState::kSuspended;
      break;
    case ThreadState::kRunning: {
      VPPB_CHECK_MSG(tid == cur_, "only the current thread can be running");
      t.state = ThreadState::kSuspended;
      switch_to_scheduler();
      break;
    }
    case ThreadState::kBlocked:
    case ThreadState::kSleeping:
      t.pending_suspend = true;
      break;
    case ThreadState::kSuspended:
      break;  // idempotent
    case ThreadState::kDone:
      throw Error("suspend of an exited thread");
  }
}

bool Runtime::resume(ThreadId tid) {
  Thread& t = thread(tid);
  if (t.pending_suspend) {
    t.pending_suspend = false;
    return true;
  }
  if (t.state != ThreadState::kSuspended) return false;
  t.state = ThreadState::kRunnable;
  run_queue_.push(t.id, t.priority);
  return true;
}

bool Runtime::is_suspended(ThreadId tid) const {
  const Thread& t = thread(tid);
  return t.state == ThreadState::kSuspended || t.pending_suspend;
}

void Runtime::exit_current() {
  Thread& t = current_thread();
  charge_current();
  t.state = ThreadState::kDone;
  t.exited_at = clock_.now();
  wake_all(t.exit_waiters);
  // Leave the fiber for good; the scheduler never re-queues done threads.
  VPPB_CHECK(swapcontext(t.fiber->context(), &sched_ctx_) == 0);
  VPPB_CHECK_MSG(false, "resumed a done thread");
  for (;;) {}  // unreachable; satisfies [[noreturn]]
}

bool Runtime::exists(ThreadId tid) const {
  return tid >= 0 && static_cast<std::size_t>(tid) < slots_.size() &&
         slots_[static_cast<std::size_t>(tid)] != nullptr;
}

ThreadState Runtime::state(ThreadId tid) const { return thread(tid).state; }
int Runtime::priority(ThreadId tid) const { return thread(tid).priority; }

void Runtime::set_priority(ThreadId tid, int prio) {
  VPPB_CHECK_MSG(prio >= kMinPriority && prio <= kMaxPriority,
                 "priority out of range: " << prio);
  Thread& t = thread(tid);
  t.priority = prio;
  // Update in place so the new priority takes effect immediately while
  // preserving FIFO order within the (new) priority level.
  if (t.state == ThreadState::kRunnable) run_queue_.update_priority(tid, prio);
  if (t.state == ThreadState::kBlocked && t.waiting_on != nullptr)
    t.waiting_on->update_priority(tid, prio);
}

bool Runtime::is_daemon(ThreadId tid) const { return thread(tid).daemon; }
const std::string& Runtime::name(ThreadId tid) const {
  return thread(tid).name;
}
SimTime Runtime::cpu_time(ThreadId tid) const { return thread(tid).cpu_time; }
SimTime Runtime::created_at(ThreadId tid) const {
  return thread(tid).created_at;
}
SimTime Runtime::exited_at(ThreadId tid) const { return thread(tid).exited_at; }
WaitQueue& Runtime::exit_waiters(ThreadId tid) {
  return thread(tid).exit_waiters;
}

std::vector<ThreadId> Runtime::all_threads() const {
  std::vector<ThreadId> out;
  for (const auto& t : slots_) {
    if (t) out.push_back(t->id);
  }
  return out;
}

std::string Runtime::state_dump() const {
  std::ostringstream os;
  os << "threads at t=" << clock_.now() << ":\n";
  for (const auto& t : slots_) {
    if (!t) continue;
    os << "  T" << t->id << " (" << t->name << ") " << to_string(t->state)
       << " prio=" << t->priority << " cpu=" << t->cpu_time;
    if (t->daemon) os << " daemon";
    os << '\n';
  }
  return os.str();
}

}  // namespace vppb::ult
