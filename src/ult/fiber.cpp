#include "ult/fiber.hpp"

#include "util/error.hpp"

namespace vppb::ult {
namespace {

// makecontext() only passes int arguments portably, so the fiber being
// entered is published here just before the switch.  Safe because the
// whole runtime is single-OS-threaded by design (one LWP).
Fiber* g_entering = nullptr;

}  // namespace

Fiber::Fiber(std::function<void()> entry, std::size_t stack_size)
    : entry_(std::move(entry)),
      stack_(std::make_unique<char[]>(stack_size)),
      stack_size_(stack_size) {
  VPPB_CHECK_MSG(stack_size >= 16 * 1024, "fiber stack too small");
  VPPB_CHECK(getcontext(&ctx_) == 0);
  ctx_.uc_stack.ss_sp = stack_.get();
  ctx_.uc_stack.ss_size = stack_size_;
  ctx_.uc_link = nullptr;  // exits are routed through the Runtime
  makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
}

void Fiber::trampoline() {
  Fiber* self = g_entering;
  g_entering = nullptr;
  self->started_ = true;
  self->entry_();
  // The entry function must never return here: the Runtime routes every
  // thread exit through exit_current(), which switches away for good.
  VPPB_CHECK_MSG(false, "fiber entry function returned without exiting");
}

void Fiber::switch_from(ucontext_t* from) {
  if (!started_) g_entering = this;
  VPPB_CHECK(swapcontext(from, &ctx_) == 0);
}

}  // namespace vppb::ult
