// Wait queues used by every synchronization object.
//
// Solaris wakes sleepers in priority order and FIFO within a priority
// level; the queue reproduces that so the recorded uni-processor
// execution has the same wakeup order the real library would produce.
#pragma once

#include <cstdint>
#include <vector>

namespace vppb::ult {

using ThreadId = std::int32_t;
constexpr ThreadId kNoThread = -1;

class WaitQueue {
 public:
  /// Enqueue a sleeper with its current priority (higher = better).
  /// Inline: the engine calls this on every block.  While every queued
  /// sleeper shares one priority — overwhelmingly the common case, since
  /// most traces never call thr_setprio — the queue runs in FIFO mode:
  /// push is a plain append and pop consumes from a head cursor, both
  /// O(1) with no heap maintenance.  The first push of a *different*
  /// priority converts the live entries into a heap in place; the heap
  /// pops in exactly the order (priority desc, seq asc) the FIFO run
  /// would have produced for equal priorities, so the two modes are
  /// observationally identical.
  void push(ThreadId tid, int priority) {
    if (fifo_) {
      if (head_ == entries_.size()) {
        // Empty: restart the FIFO run at this priority.
        head_ = 0;
        entries_.clear();
        fifo_prio_ = priority;
      } else if (priority != fifo_prio_) {
        to_heap();
        entries_.push_back(Entry{tid, priority, next_seq_++});
        sift_up_last();
        return;
      }
      entries_.push_back(Entry{tid, priority, next_seq_++});
      return;
    }
    entries_.push_back(Entry{tid, priority, next_seq_++});
    if (entries_.size() > 1) sift_up_last();
  }

  /// Remove and return the best sleeper, or kNoThread when empty.
  /// Inline fast paths: the empty probe (every unlock/post/signal pops
  /// speculatively) and the FIFO-mode cursor advance cost no call.
  ThreadId pop() {
    if (fifo_) {
      if (head_ == entries_.size()) return kNoThread;
      const ThreadId tid = entries_[head_++].tid;
      if (head_ == entries_.size()) {
        head_ = 0;
        entries_.clear();
      }
      return tid;
    }
    if (entries_.empty()) return kNoThread;
    if (entries_.size() == 1) {
      const ThreadId tid = entries_.front().tid;
      entries_.clear();
      fifo_ = true;  // drained: the next run starts uniform again
      return tid;
    }
    return pop_slow();
  }

  /// Remove a specific sleeper (timed wait that fired, targeted signal).
  /// Returns true if it was present.
  bool remove(ThreadId tid);

  /// Change a queued sleeper's priority, preserving its arrival order
  /// within the new priority level.  Returns true if it was present.
  bool update_priority(ThreadId tid, int priority);

  bool empty() const { return entries_.size() == head_; }
  std::size_t size() const { return entries_.size() - head_; }

  /// Empties the queue and rewinds the arrival counter, preserving the
  /// entry storage.  A cleared queue is indistinguishable from a
  /// freshly constructed one (the seq restart matters: seq breaks
  /// priority ties, so a reused engine workspace must hand out the
  /// same sequence a fresh run would).
  void clear() {
    entries_.clear();
    head_ = 0;
    fifo_ = true;
    next_seq_ = 0;
  }

  /// Snapshot of queued ids in wake order (for diagnostics/tests).
  std::vector<ThreadId> snapshot() const;

  struct Entry {
    ThreadId tid;
    int priority;
    std::uint64_t seq;  // arrival order breaks priority ties FIFO
  };

 private:
  void sift_up_last();
  ThreadId pop_slow();
  /// Leaves FIFO mode: discards the consumed prefix and heapifies the
  /// live entries.  Seqs are preserved, so wake order is unchanged.
  void to_heap();

  // FIFO mode (fifo_): entries_[head_..) are live, share fifo_prio_,
  // and sit in arrival (= wake) order.  Heap mode: head_ == 0 and
  // entries_ is a max-heap under (priority desc, seq asc) — it pops
  // exactly the entry a linear scan would pick, in O(log n), which
  // matters when sleepers at mixed priorities pile onto one object.
  // remove() and update_priority() stay O(n): they only happen on
  // timed-wait expiry and thr_setprio, both rare.
  std::vector<Entry> entries_;
  std::size_t head_ = 0;
  bool fifo_ = true;
  int fifo_prio_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace vppb::ult
