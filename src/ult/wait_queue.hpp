// Wait queues used by every synchronization object.
//
// Solaris wakes sleepers in priority order and FIFO within a priority
// level; the queue reproduces that so the recorded uni-processor
// execution has the same wakeup order the real library would produce.
#pragma once

#include <cstdint>
#include <vector>

namespace vppb::ult {

using ThreadId = std::int32_t;
constexpr ThreadId kNoThread = -1;

class WaitQueue {
 public:
  /// Enqueue a sleeper with its current priority (higher = better).
  void push(ThreadId tid, int priority);

  /// Remove and return the best sleeper, or kNoThread when empty.
  ThreadId pop();

  /// Remove a specific sleeper (timed wait that fired, targeted signal).
  /// Returns true if it was present.
  bool remove(ThreadId tid);

  /// Change a queued sleeper's priority, preserving its arrival order
  /// within the new priority level.  Returns true if it was present.
  bool update_priority(ThreadId tid, int priority);

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  /// Snapshot of queued ids in wake order (for diagnostics/tests).
  std::vector<ThreadId> snapshot() const;

  struct Entry {
    ThreadId tid;
    int priority;
    std::uint64_t seq;  // arrival order breaks priority ties FIFO
  };

 private:
  // (priority desc, seq asc) is a strict total order (seq is unique),
  // so a binary max-heap pops exactly the entry a linear scan would
  // pick, in O(log n) — which matters when many threads pile onto one
  // object (a barrier mutex collects O(threads) sleepers).  remove()
  // and update_priority() stay O(n): they only happen on timed-wait
  // expiry and thr_setprio, both rare.
  std::vector<Entry> entries_;  // max-heap under wakes_after
  std::uint64_t next_seq_ = 0;
};

}  // namespace vppb::ult
