// The runtime clock that timestamps recorded events.
//
// Two modes:
//  - Virtual: time advances only through explicit work()/advance() calls.
//    Every run is bit-reproducible; this drives the tests and tables.
//  - Real: time advances by measured std::chrono::steady_clock intervals
//    between runtime entries, like the paper's 1 µs wall-clock stamps.
//    Used for the intrusion-overhead experiment.
#pragma once

#include <chrono>

#include "util/time.hpp"

namespace vppb::ult {

enum class ClockMode { kVirtual, kReal };

class Clock {
 public:
  explicit Clock(ClockMode mode) : mode_(mode) { reset(); }

  ClockMode mode() const { return mode_; }
  SimTime now() const { return now_; }

  void reset();

  /// Virtual-mode advance by an explicit duration.
  void advance(SimTime d) { now_ += d; }

  /// Real-mode: fold in wall time elapsed since the previous stamp and
  /// return how much was added.  In virtual mode this is a no-op that
  /// returns zero (compute between library calls has no virtual cost
  /// unless declared with work()).
  SimTime stamp_real_elapsed();

 private:
  ClockMode mode_;
  SimTime now_;
  std::chrono::steady_clock::time_point last_real_;
};

}  // namespace vppb::ult
