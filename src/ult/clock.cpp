#include "ult/clock.hpp"

namespace vppb::ult {

void Clock::reset() {
  now_ = SimTime::zero();
  last_real_ = std::chrono::steady_clock::now();
}

SimTime Clock::stamp_real_elapsed() {
  if (mode_ != ClockMode::kReal) return SimTime::zero();
  const auto t = std::chrono::steady_clock::now();
  const auto d = std::chrono::duration_cast<std::chrono::nanoseconds>(
      t - last_real_);
  last_real_ = t;
  const SimTime added = SimTime::from(d);
  now_ += added;
  return added;
}

}  // namespace vppb::ult
