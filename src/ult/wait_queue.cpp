#include "ult/wait_queue.hpp"

#include <algorithm>

namespace vppb::ult {

void WaitQueue::push(ThreadId tid, int priority) {
  entries_.push_back(Entry{tid, priority, next_seq_++});
}

ThreadId WaitQueue::pop() {
  if (entries_.empty()) return kNoThread;
  auto best = entries_.begin();
  for (auto it = std::next(entries_.begin()); it != entries_.end(); ++it) {
    if (it->priority > best->priority ||
        (it->priority == best->priority && it->seq < best->seq)) {
      best = it;
    }
  }
  const ThreadId tid = best->tid;
  entries_.erase(best);
  return tid;
}

bool WaitQueue::remove(ThreadId tid) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [tid](const Entry& e) { return e.tid == tid; });
  if (it == entries_.end()) return false;
  entries_.erase(it);
  return true;
}

bool WaitQueue::update_priority(ThreadId tid, int priority) {
  for (auto& e : entries_) {
    if (e.tid == tid) {
      e.priority = priority;
      return true;
    }
  }
  return false;
}

std::vector<ThreadId> WaitQueue::snapshot() const {
  // Wake order: priority desc, seq asc.
  std::vector<Entry> sorted(entries_.begin(), entries_.end());
  std::sort(sorted.begin(), sorted.end(), [](const Entry& a, const Entry& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.seq < b.seq;
  });
  std::vector<ThreadId> out;
  out.reserve(sorted.size());
  for (const auto& e : sorted) out.push_back(e.tid);
  return out;
}

}  // namespace vppb::ult
