#include "ult/wait_queue.hpp"

#include <algorithm>

namespace vppb::ult {

namespace {

/// Heap comparator: "a is woken after b", i.e. a is worse.  std::*_heap
/// keeps the maximum (the next thread to wake) at the front.
struct Cmp {
  bool operator()(const WaitQueue::Entry& a, const WaitQueue::Entry& b) const {
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.seq > b.seq;
  }
};

}  // namespace

void WaitQueue::push(ThreadId tid, int priority) {
  entries_.push_back(Entry{tid, priority, next_seq_++});
  std::push_heap(entries_.begin(), entries_.end(), Cmp{});
}

ThreadId WaitQueue::pop() {
  if (entries_.empty()) return kNoThread;
  std::pop_heap(entries_.begin(), entries_.end(), Cmp{});
  const ThreadId tid = entries_.back().tid;
  entries_.pop_back();
  return tid;
}

bool WaitQueue::remove(ThreadId tid) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [tid](const Entry& e) { return e.tid == tid; });
  if (it == entries_.end()) return false;
  *it = entries_.back();
  entries_.pop_back();
  std::make_heap(entries_.begin(), entries_.end(), Cmp{});
  return true;
}

bool WaitQueue::update_priority(ThreadId tid, int priority) {
  for (auto& e : entries_) {
    if (e.tid == tid) {
      e.priority = priority;
      std::make_heap(entries_.begin(), entries_.end(), Cmp{});
      return true;
    }
  }
  return false;
}

std::vector<ThreadId> WaitQueue::snapshot() const {
  // Wake order: priority desc, seq asc.
  std::vector<Entry> sorted(entries_.begin(), entries_.end());
  std::sort(sorted.begin(), sorted.end(), [](const Entry& a, const Entry& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.seq < b.seq;
  });
  std::vector<ThreadId> out;
  out.reserve(sorted.size());
  for (const auto& e : sorted) out.push_back(e.tid);
  return out;
}

}  // namespace vppb::ult
