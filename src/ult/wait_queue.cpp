#include "ult/wait_queue.hpp"

#include <algorithm>

namespace vppb::ult {

namespace {

/// "a is woken after b" — std::*_heap keeps the next thread to wake
/// (priority desc, seq asc — a strict total order) at the front.
struct Cmp {
  bool operator()(const WaitQueue::Entry& a, const WaitQueue::Entry& b) const {
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.seq > b.seq;
  }
};

}  // namespace

void WaitQueue::sift_up_last() {
  std::push_heap(entries_.begin(), entries_.end(), Cmp{});
}

ThreadId WaitQueue::pop_slow() {
  std::pop_heap(entries_.begin(), entries_.end(), Cmp{});
  const ThreadId tid = entries_.back().tid;
  entries_.pop_back();
  return tid;
}

void WaitQueue::to_heap() {
  entries_.erase(entries_.begin(),
                 entries_.begin() + static_cast<std::ptrdiff_t>(head_));
  head_ = 0;
  fifo_ = false;
  std::make_heap(entries_.begin(), entries_.end(), Cmp{});
}

bool WaitQueue::remove(ThreadId tid) {
  if (fifo_) {
    auto it = std::find_if(entries_.begin() + static_cast<std::ptrdiff_t>(head_),
                           entries_.end(),
                           [tid](const Entry& e) { return e.tid == tid; });
    if (it == entries_.end()) return false;
    // Erase in place: the live range stays in arrival order.
    entries_.erase(it);
    if (head_ == entries_.size()) {
      head_ = 0;
      entries_.clear();
    }
    return true;
  }
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [tid](const Entry& e) { return e.tid == tid; });
  if (it == entries_.end()) return false;
  *it = entries_.back();
  entries_.pop_back();
  std::make_heap(entries_.begin(), entries_.end(), Cmp{});
  if (entries_.empty()) fifo_ = true;
  return true;
}

bool WaitQueue::update_priority(ThreadId tid, int priority) {
  if (fifo_) {
    for (std::size_t i = head_; i < entries_.size(); ++i) {
      if (entries_[i].tid != tid) continue;
      if (priority == fifo_prio_) return true;  // order unchanged
      to_heap();
      // to_heap() shifted indices by the old head; refind and reheap.
      for (auto& e : entries_) {
        if (e.tid == tid) {
          e.priority = priority;
          break;
        }
      }
      std::make_heap(entries_.begin(), entries_.end(), Cmp{});
      return true;
    }
    return false;
  }
  for (auto& e : entries_) {
    if (e.tid == tid) {
      e.priority = priority;
      std::make_heap(entries_.begin(), entries_.end(), Cmp{});
      return true;
    }
  }
  return false;
}

std::vector<ThreadId> WaitQueue::snapshot() const {
  // Wake order: priority desc, seq asc.
  std::vector<Entry> sorted(entries_.begin() + static_cast<std::ptrdiff_t>(head_),
                            entries_.end());
  std::sort(sorted.begin(), sorted.end(), [](const Entry& a, const Entry& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.seq < b.seq;
  });
  std::vector<ThreadId> out;
  out.reserve(sorted.size());
  for (const auto& e : sorted) out.push_back(e.tid);
  return out;
}

}  // namespace vppb::ult
