// A fiber: a user-level execution context with its own stack.
//
// This is the mechanical core of the libthread substitute.  Solaris
// unbound threads on a single LWP are exactly cooperative fibers whose
// context switches happen inside the thread library; we reproduce that
// with ucontext (makecontext/swapcontext), which is fully deterministic.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>

namespace vppb::ult {

class Fiber {
 public:
  /// Creates a fiber that will execute `entry` when first switched to.
  /// The entry function must not return control by falling off the end
  /// without the owner switching away; the Runtime guarantees this by
  /// routing all exits through exit_current().
  Fiber(std::function<void()> entry, std::size_t stack_size);

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;
  ~Fiber() = default;

  /// Transfers control from the caller (running on `from`'s context)
  /// to this fiber.  Returns when something switches back to `from`.
  void switch_from(ucontext_t* from);

  ucontext_t* context() { return &ctx_; }
  std::size_t stack_size() const { return stack_size_; }

  /// True once the entry function has been entered at least once.
  bool started() const { return started_; }

 private:
  static void trampoline();

  std::function<void()> entry_;
  std::unique_ptr<char[]> stack_;
  std::size_t stack_size_;
  ucontext_t ctx_{};
  bool started_ = false;
};

}  // namespace vppb::ult
