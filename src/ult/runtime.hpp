// The user-level threads runtime: the reproduction's stand-in for the
// Solaris 2.X thread library running a process on ONE LWP.
//
// Threads are fibers multiplexed on the calling OS thread.  Context
// switches happen only inside thread-library calls (block/yield/exit),
// exactly like Solaris unbound threads on a single LWP — which is the
// configuration the paper's Recorder requires.  The runtime charges CPU
// time to the running thread from either a virtual clock (deterministic
// work() declarations) or measured wall time.
//
// Deliberate reproduction of the paper's §6 limitation: a thread that
// spins without calling the library never yields, so other threads
// starve.  The runtime detects this through the livelock horizon
// (virtual mode) and reports it instead of hanging.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "ult/clock.hpp"
#include "ult/fiber.hpp"
#include "ult/wait_queue.hpp"
#include "util/time.hpp"

namespace vppb::ult {

enum class ThreadState {
  kRunnable,   ///< ready, waiting for the (single) LWP
  kRunning,    ///< currently executing
  kBlocked,    ///< waiting on a synchronization object
  kSleeping,   ///< waiting for a timer
  kSuspended,  ///< stopped by thr_suspend until thr_continue
  kDone,       ///< exited
};

const char* to_string(ThreadState s);

/// Default and bounds for user thread priorities (higher runs first,
/// as with thr_setprio).
constexpr int kMinPriority = 0;
constexpr int kMaxPriority = 127;
constexpr int kDefaultPriority = 0;

class Runtime {
 public:
  struct Config {
    ClockMode clock_mode = ClockMode::kVirtual;
    std::size_t stack_size = 256 * 1024;
    /// Virtual-time bound: if the clock passes this, a thread is
    /// presumed to be spinning (paper §6) and the run aborts.
    SimTime livelock_horizon = SimTime::max();
    /// Context-switch bound (0 = unlimited); a second runaway guard.
    std::uint64_t max_context_switches = 0;
  };

  Runtime();  // default Config
  explicit Runtime(Config cfg);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Runs `main_fn` as thread 1 and schedules until every non-daemon
  /// thread has exited.  Throws vppb::Error on deadlock or livelock.
  void run(std::function<void()> main_fn);

  /// The runtime driving the calling fiber.  Only valid inside run().
  static Runtime& current();
  static bool in_runtime();

  // ---- thread-side API (call only from inside run()) -------------------

  /// Creates a thread.  Ids mimic Solaris: main is 1, user threads start
  /// at 4 (2 and 3 are "reserved" for library-internal threads).
  ThreadId spawn(std::function<void()> fn, int priority = kDefaultPriority,
                 bool daemon = false, std::string name = {});

  ThreadId current_tid() const { return cur_; }
  SimTime now() const { return clock_.now(); }

  /// Folds real elapsed time into the clock (real mode) and returns now.
  /// Probes call this so timestamps include compute since the last call.
  SimTime stamp_now();

  /// Declare virtual compute by the current thread.
  void work(SimTime d);

  /// Give up the LWP to an equal-or-higher-priority runnable thread.
  void yield();

  /// Block the current thread on a queue until someone wakes it.
  void block_current(WaitQueue& q);

  /// Block with a deadline.  Returns true if woken, false on timeout.
  bool block_current_until(WaitQueue& q, SimTime deadline);

  /// Wake a thread previously popped from a WaitQueue.
  void wake(ThreadId tid);

  /// Pop the best sleeper from q and wake it.  Returns the id or kNoThread.
  ThreadId wake_one(WaitQueue& q);

  /// Wake every sleeper in q; returns how many.
  std::size_t wake_all(WaitQueue& q);

  /// Sleep until the given absolute time.
  void sleep_until(SimTime t);

  /// thr_suspend semantics: stop a thread until resume().  A runnable
  /// (or currently running) thread stops immediately; a blocked or
  /// sleeping thread stops as soon as it would otherwise wake.
  void suspend(ThreadId tid);

  /// thr_continue semantics: make a suspended thread runnable again
  /// (or cancel a pending suspension).  Returns false if the thread was
  /// not suspended or pending suspension.
  bool resume(ThreadId tid);

  bool is_suspended(ThreadId tid) const;

  /// Terminate the current thread.  Never returns.
  [[noreturn]] void exit_current();

  // ---- introspection ----------------------------------------------------

  bool exists(ThreadId tid) const;
  ThreadState state(ThreadId tid) const;
  int priority(ThreadId tid) const;
  void set_priority(ThreadId tid, int prio);
  bool is_daemon(ThreadId tid) const;
  const std::string& name(ThreadId tid) const;
  SimTime cpu_time(ThreadId tid) const;
  SimTime created_at(ThreadId tid) const;
  SimTime exited_at(ThreadId tid) const;
  WaitQueue& exit_waiters(ThreadId tid);
  std::vector<ThreadId> all_threads() const;
  std::uint64_t context_switches() const { return switches_; }
  ClockMode clock_mode() const { return clock_.mode(); }

  /// Multi-line dump of every thread's state (deadlock diagnostics).
  std::string state_dump() const;

 private:
  struct Thread {
    ThreadId id = kNoThread;
    std::string name;
    int priority = kDefaultPriority;
    bool daemon = false;
    ThreadState state = ThreadState::kRunnable;
    std::unique_ptr<Fiber> fiber;
    SimTime cpu_time;
    SimTime created_at;
    SimTime exited_at;
    WaitQueue* waiting_on = nullptr;
    WaitQueue exit_waiters;
    std::uint64_t sleep_gen = 0;  // invalidates stale timers
    bool timed_out = false;
    bool pending_suspend = false;  // suspend requested while blocked
  };

  struct Timer {
    SimTime when;
    ThreadId tid;
    std::uint64_t gen;
    friend bool operator>(const Timer& a, const Timer& b) {
      if (a.when != b.when) return a.when > b.when;
      return a.tid > b.tid;
    }
  };

  Thread& thread(ThreadId tid);
  const Thread& thread(ThreadId tid) const;
  Thread& current_thread() { return thread(cur_); }

  void charge_current();
  void switch_to_scheduler();
  void schedule_loop();
  bool fire_due_timers();
  bool live_non_daemon_threads() const;
  void check_livelock() const;

  Config cfg_;
  Clock clock_;
  std::vector<std::unique_ptr<Thread>> slots_;  // indexed by ThreadId
  WaitQueue run_queue_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers_;
  ucontext_t sched_ctx_{};
  std::exception_ptr pending_exception_;
  ThreadId cur_ = kNoThread;
  ThreadId next_id_ = 1;
  std::uint64_t switches_ = 0;
  bool running_ = false;
};

}  // namespace vppb::ult
