// Tests for the reference multiprocessor (src/machine) and the
// validation harness that produces Table 1.
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "machine/machine.hpp"
#include "machine/validate.hpp"
#include "recorder/recorder.hpp"
#include "solaris/program.hpp"
#include "util/error.hpp"
#include "workloads/splash.hpp"
#include "workloads/synthetic.hpp"

namespace vppb::machine {
namespace {

trace::Trace record(const std::function<void()>& fn) {
  sol::Program program;
  return rec::record_program(program, fn);
}

TEST(JitterTest, ZeroStddevIsIdentity) {
  const trace::Trace t = record([]() {
    workloads::fork_join(4, SimTime::millis(10));
  });
  const core::CompiledTrace c = core::compile(t);
  const core::CompiledTrace j = jittered(c, 0.0, 123);
  for (const auto& [tid, ct] : c.threads) {
    EXPECT_EQ(j.thread(tid).total_cpu, ct.total_cpu);
  }
}

TEST(JitterTest, SameSeedSameTrace) {
  const trace::Trace t = record([]() {
    workloads::fork_join(4, SimTime::millis(10));
  });
  const core::CompiledTrace c = core::compile(t);
  const core::CompiledTrace a = jittered(c, 0.02, 7);
  const core::CompiledTrace b = jittered(c, 0.02, 7);
  for (const auto& [tid, ct] : a.threads) {
    EXPECT_EQ(b.thread(tid).total_cpu, ct.total_cpu);
  }
}

TEST(JitterTest, DifferentSeedsDiffer) {
  const trace::Trace t = record([]() {
    workloads::fork_join(4, SimTime::millis(10));
  });
  const core::CompiledTrace c = core::compile(t);
  const core::CompiledTrace a = jittered(c, 0.02, 7);
  const core::CompiledTrace b = jittered(c, 0.02, 8);
  bool any_diff = false;
  for (const auto& [tid, ct] : a.threads) {
    if (b.thread(tid).total_cpu != ct.total_cpu) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(JitterTest, PerturbationIsBounded) {
  const trace::Trace t = record([]() {
    workloads::fork_join(8, SimTime::millis(10));
  });
  const core::CompiledTrace c = core::compile(t);
  const double stddev = 0.02;
  const core::CompiledTrace j = jittered(c, stddev, 99);
  for (const auto& [tid, ct] : c.threads) {
    const double ratio = static_cast<double>(j.thread(tid).total_cpu.ns()) /
                         std::max<double>(1.0, static_cast<double>(ct.total_cpu.ns()));
    if (ct.total_cpu.ns() > 0) {
      EXPECT_GT(ratio, 1.0 - 5 * stddev);
      EXPECT_LT(ratio, 1.0 + 5 * stddev);
    }
  }
}

TEST(MachineTest, ReportsRequestedRepetitions) {
  const trace::Trace t = record([]() {
    workloads::fork_join(4, SimTime::millis(5));
  });
  MachineConfig mc;
  mc.cpus = 4;
  mc.repetitions = 7;
  const MachineResult r = execute(t, mc);
  EXPECT_EQ(r.runs.size(), 7u);
  EXPECT_LE(r.speedup_min, r.speedup_mid);
  EXPECT_LE(r.speedup_mid, r.speedup_max);
}

TEST(MachineTest, SpeedupNearIdealForIndependentWork) {
  const trace::Trace t = record([]() {
    workloads::fork_join(4, SimTime::millis(50));
  });
  MachineConfig mc;
  mc.cpus = 4;
  const MachineResult r = execute(t, mc);
  EXPECT_NEAR(r.speedup_mid, 4.0, 0.4);
}

TEST(MachineTest, DeterministicGivenSeed) {
  const trace::Trace t = record([]() {
    workloads::imbalanced(4, SimTime::millis(10), 0.5);
  });
  MachineConfig mc;
  mc.cpus = 4;
  mc.seed = 42;
  const MachineResult a = execute(t, mc);
  const MachineResult b = execute(t, mc);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_EQ(a.runs[i].total_ncpu, b.runs[i].total_ncpu);
  }
}

TEST(MachineTest, JitterWidensTheRange) {
  const trace::Trace t = record([]() {
    workloads::imbalanced(8, SimTime::millis(10), 0.3);
  });
  MachineConfig calm;
  calm.cpus = 8;
  calm.cpu_jitter = 0.0;
  MachineConfig noisy = calm;
  noisy.cpu_jitter = 0.05;
  const MachineResult rc = execute(t, calm);
  const MachineResult rn = execute(t, noisy);
  EXPECT_NEAR(rc.speedup_max - rc.speedup_min, 0.0, 1e-9);
  EXPECT_GT(rn.speedup_max - rn.speedup_min, 0.0);
}

TEST(MachineTest, OverheadKnobsSlowTheMachine) {
  const trace::Trace t = record([]() {
    workloads::ocean(workloads::SplashParams{4, 0.05});
  });
  MachineConfig cheap;
  cheap.cpus = 4;
  cheap.cpu_jitter = 0.0;
  cheap.context_switch_cost = SimTime::zero();
  cheap.migration_penalty = SimTime::zero();
  MachineConfig costly = cheap;
  costly.context_switch_cost = SimTime::micros(50);
  costly.migration_penalty = SimTime::micros(100);
  EXPECT_LT(execute(t, costly).speedup_mid, execute(t, cheap).speedup_mid);
}

TEST(MachineTest, MemoryContentionReducesSpeedup) {
  const trace::Trace t = record([]() {
    workloads::fork_join(4, SimTime::millis(20));
  });
  MachineConfig base;
  base.cpus = 4;
  base.cpu_jitter = 0.0;
  MachineConfig contended = base;
  contended.memory_contention_alpha = 0.1;
  EXPECT_LT(execute(t, contended).speedup_mid, execute(t, base).speedup_mid);
}

TEST(MachineTest, RejectsBadConfig) {
  const trace::Trace t = record([]() {
    workloads::fork_join(1, SimTime::millis(1));
  });
  MachineConfig mc;
  mc.repetitions = 0;
  EXPECT_THROW(execute(t, mc), Error);
  mc.repetitions = 1;
  mc.cpus = 0;
  EXPECT_THROW(execute(t, mc), Error);
}

TEST(ValidateTest, ProducesOnePointPerCpuCount) {
  const int cpus[] = {2, 4};
  MachineConfig mc;
  mc.repetitions = 3;
  const ValidationReport report = validate_workload(
      "fork_join",
      [](int threads) { workloads::fork_join(threads, SimTime::millis(20)); },
      std::span<const int>(cpus), mc);
  ASSERT_EQ(report.points.size(), 2u);
  EXPECT_EQ(report.points[0].cpus, 2);
  EXPECT_EQ(report.points[1].cpus, 4);
  EXPECT_GT(report.points[0].log_records, 0u);
}

TEST(ValidateTest, IndependentWorkValidatesTightly) {
  const int cpus[] = {2, 4, 8};
  MachineConfig mc;
  const ValidationReport report = validate_workload(
      "fork_join",
      [](int threads) { workloads::fork_join(threads, SimTime::millis(40)); },
      std::span<const int>(cpus), mc);
  EXPECT_LT(report.max_abs_error(), 0.05)
      << "prediction error for trivially parallel work should be tiny";
}

TEST(ValidateTest, SplashSuiteWithinPaperEnvelope) {
  // The headline reproduction: every SPLASH-style app, every processor
  // count, predicted within the paper's 6.2% worst case (we assert a
  // slightly looser 8% to keep the test robust to future retuning).
  const int cpus[] = {2, 4, 8};
  MachineConfig mc;
  for (const auto& app : workloads::splash_suite()) {
    const ValidationReport report = validate_workload(
        app.name,
        [&app](int threads) {
          app.run(workloads::SplashParams{threads, 0.5});
        },
        std::span<const int>(cpus), mc);
    EXPECT_LT(report.max_abs_error(), 0.08) << app.name;
  }
}

TEST(ValidateTest, SpeedupShapesMatchPaper) {
  // The qualitative Table 1 shape: Radix and Water near-linear at 8
  // CPUs, Ocean good, LU moderate, FFT clearly sublinear.
  const int cpus[] = {8};
  MachineConfig mc;
  std::map<std::string, double> pred;
  for (const auto& app : workloads::splash_suite()) {
    const ValidationReport report = validate_workload(
        app.name,
        [&app](int threads) {
          app.run(workloads::SplashParams{threads, 0.5});
        },
        std::span<const int>(cpus), mc);
    pred[app.name] = report.points[0].predicted;
  }
  EXPECT_GT(pred["Radix"], 7.0);
  EXPECT_GT(pred["Water-spatial"], 7.0);
  EXPECT_GT(pred["Ocean"], 5.5);
  EXPECT_LT(pred["Ocean"], pred["Water-spatial"]);
  EXPECT_GT(pred["LU"], 4.0);
  EXPECT_LT(pred["LU"], 6.0);
  EXPECT_GT(pred["FFT"], 2.0);
  EXPECT_LT(pred["FFT"], 3.2);
}

}  // namespace
}  // namespace vppb::machine
