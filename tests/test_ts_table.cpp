// Tests for the Solaris TS dispatch table.
#include <gtest/gtest.h>

#include "core/ts_table.hpp"
#include "util/error.hpp"

namespace vppb::core {
namespace {

TEST(TsTableTest, SixtyLevels) {
  const TsTable t = TsTable::solaris_default();
  EXPECT_EQ(kTsLevels, 60);
  EXPECT_EQ(t.entries.size(), 60u);
}

TEST(TsTableTest, QuantaDecreaseWithPriority) {
  // Classic ts_dptbl: 200ms at the bottom, 20ms at the top.
  const TsTable t = TsTable::solaris_default();
  EXPECT_EQ(t.entry(0).quantum, SimTime::millis(200));
  EXPECT_EQ(t.entry(9).quantum, SimTime::millis(200));
  EXPECT_EQ(t.entry(10).quantum, SimTime::millis(160));
  EXPECT_EQ(t.entry(29).quantum, SimTime::millis(120));
  EXPECT_EQ(t.entry(42).quantum, SimTime::millis(40));
  EXPECT_EQ(t.entry(59).quantum, SimTime::millis(20));
  for (int level = 1; level < kTsLevels; ++level) {
    EXPECT_LE(t.entry(level).quantum, t.entry(level - 1).quantum) << level;
  }
}

TEST(TsTableTest, ExpiryDropsSleepReturnBoosts) {
  const TsTable t = TsTable::solaris_default();
  for (int level = 0; level < kTsLevels; ++level) {
    const TsEntry& e = t.entry(level);
    EXPECT_LE(e.on_expiry, level) << "expiry must not raise priority";
    EXPECT_GE(e.on_sleep_return, 50) << "sleep return boosts into the 50s";
    EXPECT_LT(e.on_sleep_return, kTsLevels);
    EXPECT_GE(e.on_starve, e.on_expiry);
  }
  EXPECT_EQ(t.entry(35).on_expiry, 25);
  EXPECT_EQ(t.entry(5).on_expiry, 0);
}

TEST(TsTableTest, ClampBoundsLevels) {
  const TsTable t = TsTable::solaris_default();
  EXPECT_EQ(t.clamp(-5), 0);
  EXPECT_EQ(t.clamp(99), 59);
  EXPECT_EQ(t.clamp(30), 30);
  // entry() uses clamp internally.
  EXPECT_EQ(&t.entry(-1), &t.entry(0));
  EXPECT_EQ(&t.entry(200), &t.entry(59));
}

TEST(TsTableTest, FlatTableIsInert) {
  const TsTable t = TsTable::flat(SimTime::millis(50));
  for (int level = 0; level < kTsLevels; ++level) {
    EXPECT_EQ(t.entry(level).quantum, SimTime::millis(50));
    EXPECT_EQ(t.entry(level).on_expiry, level);
    EXPECT_EQ(t.entry(level).on_sleep_return, level);
  }
  EXPECT_THROW(TsTable::flat(SimTime::zero()), Error);
}

}  // namespace
}  // namespace vppb::core
