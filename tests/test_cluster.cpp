// Tests for the cluster tier: the consistent-hash ring (distribution +
// minimal remapping), protocol v5 framing edges (shard identity/epoch,
// aggregated stats bodies, hostile shard counts), proxy routing with
// digest parity against the offline path, cross-tier single-flight
// de-duplication, hedged retries, aggregation, and the shard-kill
// failover test: a SIGKILLed backend must cost clients nothing but
// latency — no transport errors, no typed errors, identical digests.
//
// Run with `ctest -L cluster`; the suite is also built under
// -DVPPB_SANITIZE=thread in the sanitizer CI lane.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/launcher.hpp"
#include "cluster/membership.hpp"
#include "cluster/proxy.hpp"
#include "cluster/ring.hpp"
#include "recorder/recorder.hpp"
#include "server/client.hpp"
#include "server/handlers.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "server/stats_text.hpp"
#include "server/trace_cache.hpp"
#include "solaris/program.hpp"
#include "trace/io.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "workloads/synthetic.hpp"

#ifndef VPPB_EXE
#define VPPB_EXE ""
#endif

namespace vppb::cluster {
namespace {

using server::Client;
using server::ReqType;
using server::Request;
using server::Response;
using server::Status;

// ---- helpers ---------------------------------------------------------------

/// A fresh path under the system temp dir; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& tag) {
    static std::atomic<int> counter{0};
    path_ = (std::filesystem::temp_directory_path() /
             ("vppb_cluster_" + tag + "_" + std::to_string(::getpid()) +
              "_" + std::to_string(counter.fetch_add(1))))
                .string();
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Records a fork-join trace whose content (and therefore content key
/// and routing shard) varies with `threads` and `work`.
void write_trace(const std::string& path, int threads, std::int64_t work_us) {
  sol::Program program;
  const trace::Trace t = rec::record_program(program, [&]() {
    workloads::fork_join(threads, SimTime::micros(work_us));
  });
  trace::save_file(t, path);
}

Request predict_request(const std::string& path) {
  Request req;
  req.type = ReqType::kPredict;
  req.trace_path = path;
  req.max_cpus = 4;
  return req;
}

/// The offline answer the cluster must agree with bit-for-bit: the
/// same handler the shards run, against a private cache.
Response offline_predict(const std::string& path) {
  server::TraceCache cache(4, 256u << 20);
  return server::handle_predict(predict_request(path), cache);
}

// ---- ring ------------------------------------------------------------------

TEST(RingTest, SpreadsKeysAcrossShards) {
  Ring ring(64);
  for (std::uint64_t id = 1; id <= 4; ++id) ring.add(id);
  std::map<std::uint64_t, int> per_shard;
  for (std::uint64_t k = 0; k < 4000; ++k) ++per_shard[ring.owner(k * 7919)];
  ASSERT_EQ(per_shard.size(), 4u);
  for (const auto& [id, n] : per_shard) {
    // With 64 vnodes the split concentrates near 1/4; accept a wide
    // band so the test pins "no starved shard", not a distribution.
    EXPECT_GT(n, 4000 / 10) << "shard " << id << " starved";
  }
}

TEST(RingTest, RemovalOnlyMovesTheRemovedShardsKeys) {
  Ring ring(64);
  for (std::uint64_t id = 1; id <= 4; ++id) ring.add(id);
  std::map<std::uint64_t, std::uint64_t> before;
  for (std::uint64_t k = 0; k < 2000; ++k) before[k] = ring.owner(k * 7919);
  ring.remove(2);
  for (std::uint64_t k = 0; k < 2000; ++k) {
    const std::uint64_t now = ring.owner(k * 7919);
    if (before[k] != 2) {
      EXPECT_EQ(now, before[k]) << "key " << k
                                << " moved although its owner survived";
    } else {
      EXPECT_NE(now, 2u);
    }
  }
}

TEST(RingTest, OwnersAreDistinctAndStartAtOwner) {
  Ring ring(32);
  for (std::uint64_t id = 1; id <= 3; ++id) ring.add(id);
  for (std::uint64_t k = 0; k < 50; ++k) {
    const auto owners = ring.owners(k * 104729, 3);
    ASSERT_EQ(owners.size(), 3u);
    EXPECT_EQ(owners[0], ring.owner(k * 104729));
    EXPECT_EQ(std::set<std::uint64_t>(owners.begin(), owners.end()).size(),
              3u);
  }
}

TEST(RingTest, EmptyRingThrowsTyped) {
  Ring ring(8);
  EXPECT_THROW(ring.owner(1), Error);
  ring.add(9);
  ring.remove(9);
  EXPECT_THROW(ring.owner(1), Error);
}

// ---- endpoints -------------------------------------------------------------

TEST(EndpointTest, ParseVariants) {
  EXPECT_EQ(ShardEndpoint::parse(1, "a/b.sock").unix_path, "a/b.sock");
  EXPECT_EQ(ShardEndpoint::parse(1, "7070").tcp_port, 7070);
  EXPECT_EQ(ShardEndpoint::parse(1, ":7070").tcp_port, 7070);
  EXPECT_EQ(ShardEndpoint::parse(1, "127.0.0.1:7071").tcp_port, 7071);
  EXPECT_EQ(ShardEndpoint::parse(1, "localhost:7072").tcp_port, 7072);
  // Remote shards (protocol v8): numeric IPv4 parses, host is kept,
  // but a named host would need DNS and is refused.
  const ShardEndpoint remote = ShardEndpoint::parse(1, "10.0.0.1:7070");
  EXPECT_EQ(remote.host, "10.0.0.1");
  EXPECT_EQ(remote.tcp_port, 7070);
  EXPECT_FALSE(remote.loopback());
  EXPECT_THROW(ShardEndpoint::parse(1, "shard-a.internal:7070"), Error);
  EXPECT_THROW(ShardEndpoint::parse(1, "127.0.0.1:0"), Error);
  EXPECT_THROW(ShardEndpoint::parse(1, "127.0.0.1:99999"), Error);
  EXPECT_THROW(ShardEndpoint::parse(1, ""), Error);
}

TEST(EndpointTest, RemoteShardRequiresAuthKey) {
  MembershipOptions mopt;
  EXPECT_THROW(
      Membership({ShardEndpoint::parse(1, "10.0.0.1:7070")}, mopt), Error);
  mopt.auth_key = "cluster-secret";
  Membership ok({ShardEndpoint::parse(1, "10.0.0.1:7070")}, mopt);
  EXPECT_EQ(ok.shard_count(), 1u);
}

// ---- protocol v5 framing ---------------------------------------------------

TEST(ProtocolV5Test, ClusterResponseRoundTrip) {
  Response resp;
  resp.status = Status::kOk;
  resp.type = ReqType::kStats;
  resp.shard_id = 7;
  resp.epoch = 0x1122334455667788ULL;
  resp.stats.requests = 11;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    server::ShardInfo sh;
    sh.shard_id = id;
    sh.epoch = 0xabc0 + id;
    sh.healthy = id != 2;
    sh.endpoint = id == 1 ? "cdir/shard0.sock" : "127.0.0.1:9000";
    sh.stats.requests = id * 5;
    sh.stats.cache_hits = id;
    sh.stats.p99_us = 123.5 * static_cast<double>(id);
    sh.stats.watchdog_cancels = id;
    resp.shards.push_back(sh);
  }
  const Response back = server::decode_response(server::encode(resp));
  EXPECT_EQ(back.shard_id, resp.shard_id);
  EXPECT_EQ(back.epoch, resp.epoch);
  ASSERT_EQ(back.shards.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(back.shards[i].shard_id, resp.shards[i].shard_id);
    EXPECT_EQ(back.shards[i].epoch, resp.shards[i].epoch);
    EXPECT_EQ(back.shards[i].healthy, resp.shards[i].healthy);
    EXPECT_EQ(back.shards[i].endpoint, resp.shards[i].endpoint);
    EXPECT_EQ(back.shards[i].stats.requests, resp.shards[i].stats.requests);
    EXPECT_EQ(back.shards[i].stats.p99_us, resp.shards[i].stats.p99_us);
    EXPECT_EQ(back.shards[i].stats.watchdog_cancels,
              resp.shards[i].stats.watchdog_cancels);
  }
}

TEST(ProtocolV5Test, EveryTruncationRejectedCleanly) {
  Response resp;
  resp.type = ReqType::kStats;
  resp.shard_id = 1;
  server::ShardInfo sh;
  sh.shard_id = 2;
  sh.endpoint = "cdir/shard1.sock";
  sh.stats.requests = 9;
  resp.shards.push_back(sh);
  const std::vector<std::uint8_t> full = server::encode(resp);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(full.begin(),
                                           full.begin() + cut);
    EXPECT_THROW((void)server::decode_response(prefix), Error)
        << "prefix of " << cut << " bytes decoded";
  }
  EXPECT_NO_THROW((void)server::decode_response(full));
}

TEST(ProtocolV5Test, ImplausibleShardCountRejected) {
  Response resp;
  resp.type = ReqType::kStats;
  // With no shards and default resilience/tracing fields, the payload
  // ends in the count varint followed by ten zero bytes
  // (retry_after_ms, brownout, live/total shards, served_stale,
  // stale_age_ms, slo_burning, trace_id, timeline count, span count);
  // patch the count to a hostile value and the decoder must refuse to
  // allocate.
  std::vector<std::uint8_t> bytes = server::encode(resp);
  constexpr std::size_t kTrailing = 10;
  ASSERT_GE(bytes.size(), kTrailing + 1);
  for (std::size_t i = bytes.size() - kTrailing - 1; i < bytes.size(); ++i)
    ASSERT_EQ(bytes[i], 0u) << "byte " << i;
  bytes.resize(bytes.size() - kTrailing - 1);
  bytes.push_back(0x88);  // LEB128(5000)
  bytes.push_back(0x27);
  bytes.insert(bytes.end(), kTrailing, 0u);
  try {
    (void)server::decode_response(bytes);
    FAIL() << "hostile shard count decoded";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("shard count"), std::string::npos);
  }
}

TEST(StatsTextTest, ClusterRenderAddsShardTable) {
  Response resp;
  resp.type = ReqType::kStats;
  resp.stats.requests = 10;
  server::ShardInfo up;
  up.shard_id = 1;
  up.healthy = true;
  up.endpoint = "cdir/shard0.sock";
  up.stats.requests = 6;
  server::ShardInfo down;
  down.shard_id = 2;
  down.endpoint = "cdir/shard1.sock";
  resp.shards = {up, down};
  const std::string text = server::render_cluster_stats_text(resp);
  EXPECT_NE(text.find("shards:"), std::string::npos);
  EXPECT_NE(text.find("up"), std::string::npos);
  EXPECT_NE(text.find("down"), std::string::npos);
  EXPECT_NE(text.find("cdir/shard1.sock"), std::string::npos);
  // A plain vppbd response renders exactly as before.
  resp.shards.clear();
  EXPECT_EQ(server::render_cluster_stats_text(resp),
            server::render_stats_text(resp.stats));
}

// ---- merge helpers ---------------------------------------------------------

TEST(MergeTest, StatsCountersSumAndPercentilesUpperBound) {
  server::StatsBody a, b;
  a.requests = 3;
  a.cache_hits = 2;
  a.p99_us = 100.0;
  a.latency_count = 3;
  b.requests = 5;
  b.cache_hits = 1;
  b.p99_us = 900.0;
  b.latency_count = 5;
  server::StatsBody merged;
  merge_stats(merged, a);
  merge_stats(merged, b);
  EXPECT_EQ(merged.requests, 8u);
  EXPECT_EQ(merged.cache_hits, 3u);
  EXPECT_EQ(merged.latency_count, 8u);
  EXPECT_DOUBLE_EQ(merged.p99_us, 900.0);
}

TEST(MergeTest, PrometheusSamplesSumAcrossSections) {
  const std::string a =
      "# HELP vppb_cache_hits_total Trace-cache lookups\n"
      "# TYPE vppb_cache_hits_total counter\n"
      "vppb_cache_hits_total 3\n"
      "vppb_reqs{type=\"predict\"} 2\n";
  const std::string b =
      "# HELP vppb_cache_hits_total Trace-cache lookups\n"
      "# TYPE vppb_cache_hits_total counter\n"
      "vppb_cache_hits_total 4\n"
      "vppb_reqs{type=\"predict\"} 5\n"
      "vppb_reqs{type=\"stats\"} 1\n";
  const std::string merged = merge_prometheus({{"s0", a}, {"s1", b}});
  EXPECT_NE(merged.find("vppb_cache_hits_total 7"), std::string::npos);
  EXPECT_NE(merged.find("vppb_reqs{type=\"predict\"} 7"), std::string::npos);
  EXPECT_NE(merged.find("vppb_reqs{type=\"stats\"} 1"), std::string::npos);
  // HELP appears once, not once per section.
  const std::size_t first = merged.find("# HELP vppb_cache_hits_total");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(merged.find("# HELP vppb_cache_hits_total", first + 1),
            std::string::npos);
}

// ---- proxy over in-process shards ------------------------------------------

/// Two in-process vppbd shards plus a proxy, all on temp unix sockets.
struct TwoShardRig {
  TempFile sock_a{"shard_a"}, sock_b{"shard_b"}, sock_p{"proxy"};
  std::unique_ptr<server::Server> shard_a, shard_b;
  std::unique_ptr<Proxy> proxy;

  explicit TwoShardRig(std::int64_t hedge_ms = 0,
                       util::FaultPlan* faults_a = nullptr) {
    server::ServerOptions sa;
    sa.unix_path = sock_a.path();
    sa.jobs = 2;
    sa.shard_id = 1;
    static util::FaultPlan inert;
    sa.faults = faults_a ? faults_a : &inert;
    server::ServerOptions sb = sa;
    sb.unix_path = sock_b.path();
    sb.shard_id = 2;
    sb.faults = &inert;
    shard_a = std::make_unique<server::Server>(sa);
    shard_b = std::make_unique<server::Server>(sb);
    shard_a->start();
    shard_b->start();

    ProxyOptions popt;
    popt.unix_path = sock_p.path();
    popt.hedge_ms = hedge_ms;
    popt.shards.push_back(ShardEndpoint::parse(1, sock_a.path()));
    popt.shards.push_back(ShardEndpoint::parse(2, sock_b.path()));
    proxy = std::make_unique<Proxy>(popt);
    proxy->start();
  }

  ~TwoShardRig() {
    proxy->stop();
    shard_a->stop();
    shard_b->stop();
  }

  Client connect() { return Client::connect_unix(sock_p.path()); }
};

TEST(ProxyTest, RoutesByContentAndMatchesOfflineDigests) {
  TwoShardRig rig;
  Client client = rig.connect();
  std::set<std::uint64_t> shards_seen;
  for (int i = 0; i < 8; ++i) {
    TempFile trace("route");
    write_trace(trace.path(), 2 + i % 3, 200 + 40 * i);
    const Response via_proxy = client.call(predict_request(trace.path()));
    ASSERT_EQ(via_proxy.status, Status::kOk) << via_proxy.error;
    shards_seen.insert(via_proxy.shard_id);
    const Response offline = offline_predict(trace.path());
    EXPECT_EQ(via_proxy.digest, offline.digest)
        << "proxy answer differs from the offline CLI for trace " << i;
    ASSERT_EQ(via_proxy.points.size(), offline.points.size());
    for (std::size_t p = 0; p < offline.points.size(); ++p)
      EXPECT_EQ(via_proxy.points[p].digest, offline.points[p].digest);
    // Routing agreement: the shard that answered is the ring owner of
    // the trace's content key.
    const std::uint64_t key = server::content_key_of_file(trace.path());
    const auto route = rig.proxy->membership().route(key, 1);
    ASSERT_EQ(route.size(), 1u);
    EXPECT_EQ(rig.proxy->membership().endpoint(route[0]).id,
              via_proxy.shard_id);
  }
  // 8 distinct contents virtually never all land on one of two shards;
  // if they did, the routing tier would not be spreading load at all.
  EXPECT_EQ(shards_seen.size(), 2u);
}

TEST(ProxyTest, AggregatesStatsAcrossShards) {
  TwoShardRig rig;
  Client client = rig.connect();
  TempFile trace("agg");
  write_trace(trace.path(), 3, 300);
  ASSERT_EQ(client.call(predict_request(trace.path())).status, Status::kOk);

  Request stats;
  stats.type = ReqType::kStats;
  const Response r = client.call(stats);
  ASSERT_EQ(r.status, Status::kOk);
  ASSERT_EQ(r.shards.size(), 2u);
  EXPECT_TRUE(r.shards[0].healthy);
  EXPECT_TRUE(r.shards[1].healthy);
  EXPECT_NE(r.shards[0].epoch, r.shards[1].epoch);
  EXPECT_EQ(r.stats.requests,
            r.shards[0].stats.requests + r.shards[1].stats.requests);
  EXPECT_GE(r.stats.by_type[static_cast<int>(ReqType::kPredict)], 1u);

  Request health;
  health.type = ReqType::kHealth;
  const Response h = client.call(health);
  ASSERT_EQ(h.status, Status::kOk);
  EXPECT_TRUE(h.ready);
  EXPECT_GT(h.admission_limit, 0u);

  Request dump;
  dump.type = ReqType::kMetricsDump;
  const Response d = client.call(dump);
  ASSERT_EQ(d.status, Status::kOk);
  EXPECT_NE(d.report.find("vppb_proxy_requests_total"), std::string::npos);
  EXPECT_NE(d.report.find("vppb_cache_hits_total"), std::string::npos);
}

TEST(ProxyTest, SingleFlightCollapsesIdenticalRequests) {
  // One deliberately slow shard (cooperative 400 ms stall per request)
  // behind the proxy: a leader plus three identical followers must
  // reach the shard as ONE request.
  util::FaultPlan slow = util::FaultPlan::parse("delay-ms:1:0:400");
  TempFile sock_s{"sf_shard"}, sock_p{"sf_proxy"};
  server::ServerOptions so;
  so.unix_path = sock_s.path();
  so.jobs = 2;
  so.shard_id = 1;
  so.faults = &slow;
  server::Server shard(so);
  shard.start();
  ProxyOptions popt;
  popt.unix_path = sock_p.path();
  popt.shards.push_back(ShardEndpoint::parse(1, sock_s.path()));
  Proxy proxy(popt);
  proxy.start();

  TempFile trace("sf");
  write_trace(trace.path(), 3, 250);
  const Request req = predict_request(trace.path());

  std::vector<std::thread> callers;
  std::vector<Response> responses(4);
  for (int i = 0; i < 4; ++i) {
    callers.emplace_back([&, i]() {
      Client c = Client::connect_unix(sock_p.path());
      responses[static_cast<std::size_t>(i)] = c.call(req);
    });
    // The leader must be in flight before the followers arrive for
    // them to dedup against it; the shard stalls 400 ms, so 80 ms of
    // stagger leaves a wide margin.
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
  }
  for (auto& t : callers) t.join();
  for (const Response& r : responses) {
    ASSERT_EQ(r.status, Status::kOk) << r.error;
    EXPECT_EQ(r.digest, responses[0].digest);
  }

  Client c = Client::connect_unix(sock_p.path());
  Request stats;
  stats.type = ReqType::kStats;
  const Response r = c.call(stats);
  ASSERT_EQ(r.shards.size(), 1u);
  EXPECT_EQ(r.shards[0].stats.by_type[static_cast<int>(ReqType::kPredict)],
            1u)
      << "identical concurrent requests were not collapsed";
  proxy.stop();
  shard.stop();
}

TEST(ProxyTest, HedgeAnswersFromSuccessorWhenPrimaryStalls) {
  // Shard 1 stalls every compute request 1500 ms; the proxy hedges
  // after 50 ms.  A request routed to shard 1 must come back from
  // shard 2 well before the primary would have answered.
  util::FaultPlan slow = util::FaultPlan::parse("delay-ms:1:0:1500");
  TwoShardRig rig(/*hedge_ms=*/50, &slow);
  Client client = rig.connect();

  // Find a trace whose ring owner is the slow shard.
  std::unique_ptr<TempFile> trace;
  for (int i = 0; i < 24; ++i) {
    auto t = std::make_unique<TempFile>("hedge");
    write_trace(t->path(), 2 + i % 4, 150 + 37 * i);
    const std::uint64_t key = server::content_key_of_file(t->path());
    const auto route = rig.proxy->membership().route(key, 1);
    ASSERT_FALSE(route.empty());
    if (rig.proxy->membership().endpoint(route[0]).id == 1) {
      trace = std::move(t);
      break;
    }
  }
  ASSERT_TRUE(trace) << "no trace routed to shard 1 in 24 tries";

  const auto t0 = std::chrono::steady_clock::now();
  const Response r = client.call(predict_request(trace->path()));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  ASSERT_EQ(r.status, Status::kOk) << r.error;
  EXPECT_EQ(r.shard_id, 2u) << "answer did not come from the hedge";
  EXPECT_LT(elapsed, 1500) << "hedge did not beat the stalled primary";
  EXPECT_EQ(r.digest, offline_predict(trace->path()).digest);
}

// ---- shard-kill failover against real processes ----------------------------

TEST(ClusterFailoverTest, ShardKillIsInvisibleToClients) {
  ASSERT_STRNE(VPPB_EXE, "") << "VPPB_EXE not compiled in";
  TempFile dir_guard("cluster_dir");
  ClusterOptions copt;
  copt.exe = VPPB_EXE;
  copt.dir = dir_guard.path();
  copt.shards = 2;
  copt.jobs = 1;
  LocalCluster shards(copt);
  shards.start();

  TempFile sock_p{"failover_proxy"};
  ProxyOptions popt;
  popt.unix_path = sock_p.path();
  popt.shards = shards.shards();
  Proxy proxy(popt);
  proxy.start();
  ASSERT_EQ(proxy.membership().up_count(), 2u);

  // Traces for both shards, with their expected digests, so the kill
  // provably re-routes *some* of them.
  struct Case {
    std::unique_ptr<TempFile> file;
    std::uint64_t digest = 0;
    std::uint64_t shard = 0;
  };
  std::vector<Case> cases;
  Client client = Client::connect_unix(sock_p.path());
  std::set<std::uint64_t> shards_seen;
  for (int i = 0; i < 8; ++i) {
    Case c;
    c.file = std::make_unique<TempFile>("failover");
    write_trace(c.file->path(), 2 + i % 3, 180 + 29 * i);
    const Response r = client.call(predict_request(c.file->path()));
    ASSERT_EQ(r.status, Status::kOk) << r.error;
    c.digest = r.digest;
    c.shard = r.shard_id;
    shards_seen.insert(r.shard_id);
    cases.push_back(std::move(c));
  }
  ASSERT_EQ(shards_seen.size(), 2u);
  const std::uint64_t old_epoch_1 = proxy.membership().snapshot()[0].epoch;

  // SIGKILL shard 1: no drain, no goodbye — in-flight state is gone.
  shards.kill_shard(0);

  // Every request — including those routed to the corpse — must come
  // back kOk with the same digest, through the surviving shard.  The
  // first request to the dead shard pays the ejection; none may see a
  // transport or typed error.
  for (const Case& c : cases) {
    Response r;
    ASSERT_NO_THROW(r = client.call(predict_request(c.file->path())))
        << "transport error leaked to a client during failover";
    ASSERT_EQ(r.status, Status::kOk) << r.error;
    EXPECT_EQ(r.digest, c.digest);
    EXPECT_EQ(r.shard_id, 2u) << "answer from a dead shard?";
  }
  EXPECT_EQ(proxy.membership().up_count(), 1u);

  // Aggregated health keeps answering, with the corpse marked down.
  Request health;
  health.type = ReqType::kHealth;
  const Response h = client.call(health);
  ASSERT_EQ(h.status, Status::kOk);
  EXPECT_TRUE(h.ready);
  ASSERT_EQ(h.shards.size(), 2u);
  EXPECT_FALSE(h.shards[0].healthy);
  EXPECT_TRUE(h.shards[1].healthy);

  // Restart: the prober must fold the shard back in (with a new epoch)
  // without anyone telling the proxy.
  shards.restart_shard(0);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (proxy.membership().up_count() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_EQ(proxy.membership().up_count(), 2u) << "re-probe never recovered";
  EXPECT_NE(proxy.membership().snapshot()[0].epoch, old_epoch_1)
      << "a restarted shard must present a fresh epoch";

  // And the revived shard serves its arc again, digest-identical.
  for (const Case& c : cases) {
    const Response r = client.call(predict_request(c.file->path()));
    ASSERT_EQ(r.status, Status::kOk) << r.error;
    EXPECT_EQ(r.digest, c.digest);
    EXPECT_EQ(r.shard_id, c.shard);
  }

  proxy.stop();
  shards.stop();
}

// ---- protocol v6: identity, quota, brownout fields -------------------------

TEST(ProtocolV6Test, ResilienceFieldsRoundTrip) {
  Request req;
  req.type = ReqType::kPredict;
  req.trace_path = "t.trace";
  req.client_id = 0x1111222233334444ULL;
  req.origin_id = 0x5555666677778888ULL;
  const Request rback = server::decode_request(server::encode(req));
  EXPECT_EQ(rback.client_id, req.client_id);
  EXPECT_EQ(rback.origin_id, req.origin_id);

  Response resp;
  resp.type = ReqType::kPredict;
  resp.status = Status::kQuotaExceeded;
  resp.error = "over quota";
  resp.retry_after_ms = 750;
  resp.brownout = true;
  resp.live_shards = 1;
  resp.total_shards = 4;
  resp.served_stale = true;
  resp.stale_age_ms = 2500;
  resp.stats.quota_rejections = 3;
  resp.stats.brownout_sheds = 2;
  resp.stats.stale_serves = 1;
  const Response back = server::decode_response(server::encode(resp));
  EXPECT_EQ(back.status, Status::kQuotaExceeded);
  EXPECT_EQ(back.retry_after_ms, 750);
  EXPECT_TRUE(back.brownout);
  EXPECT_EQ(back.live_shards, 1u);
  EXPECT_EQ(back.total_shards, 4u);
  EXPECT_TRUE(back.served_stale);
  EXPECT_EQ(back.stale_age_ms, 2500);
  EXPECT_EQ(back.stats.quota_rejections, 3u);
  EXPECT_EQ(back.stats.brownout_sheds, 2u);
  EXPECT_EQ(back.stats.stale_serves, 1u);
  EXPECT_STREQ(server::to_string(Status::kQuotaExceeded), "quota-exceeded");
}

// ---- client quota ----------------------------------------------------------

TEST(QuotaTest, BurstThenExactRefill) {
  QuotaOptions qopt;
  qopt.rps = 1.0;
  qopt.burst = 3.0;
  ClientQuota quota(qopt);
  ASSERT_TRUE(quota.enabled());
  const auto t0 = std::chrono::steady_clock::time_point{} +
                  std::chrono::hours(1);
  for (int i = 0; i < 3; ++i)
    EXPECT_TRUE(quota.admit(7, t0).admitted) << "burst request " << i;
  const auto rejected = quota.admit(7, t0);
  EXPECT_FALSE(rejected.admitted);
  // Empty bucket at 1 rps: the next token is exactly one second out.
  EXPECT_EQ(rejected.retry_after_ms, 1000);
  EXPECT_EQ(quota.rejections(), 1u);

  // 1.5 s later the bucket holds 1.5 tokens: one admission, then a
  // rejection whose hint is the 500 ms to the next full token.
  const auto t1 = t0 + std::chrono::milliseconds(1500);
  EXPECT_TRUE(quota.admit(7, t1).admitted);
  const auto again = quota.admit(7, t1);
  EXPECT_FALSE(again.admitted);
  EXPECT_EQ(again.retry_after_ms, 500);
}

TEST(QuotaTest, ClientsAreIndependent) {
  QuotaOptions qopt;
  qopt.rps = 1.0;
  qopt.burst = 1.0;
  ClientQuota quota(qopt);
  const auto t0 = std::chrono::steady_clock::time_point{} +
                  std::chrono::hours(1);
  EXPECT_TRUE(quota.admit(1, t0).admitted);
  EXPECT_FALSE(quota.admit(1, t0).admitted);
  // A different identity still has its full burst.
  EXPECT_TRUE(quota.admit(2, t0).admitted);
}

TEST(QuotaTest, DisabledAdmitsEverything) {
  ClientQuota quota(QuotaOptions{});
  EXPECT_FALSE(quota.enabled());
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(quota.admit(1, t0).admitted);
}

// ---- global quota through the proxy ----------------------------------------

TEST(ProxyQuotaTest, FloodAcrossFourShardsHeldToOneQuota) {
  // Four shards behind one proxy with a 3-request burst and a
  // negligible refill rate.  A flooding client gets exactly ONE
  // cluster-wide budget — 3 admissions — no matter how many shards its
  // traces hash to; before this lived in the proxy, K shards would
  // each have granted their own budget (K times the quota).
  std::vector<TempFile> socks;
  for (int i = 0; i < 5; ++i)
    socks.emplace_back("quota" + std::to_string(i));
  std::vector<std::unique_ptr<server::Server>> shards;
  ProxyOptions popt;
  for (int i = 0; i < 4; ++i) {
    server::ServerOptions so;
    so.unix_path = socks[static_cast<std::size_t>(i)].path();
    so.jobs = 1;
    so.shard_id = static_cast<std::uint64_t>(i) + 1;
    shards.push_back(std::make_unique<server::Server>(so));
    shards.back()->start();
    popt.shards.push_back(ShardEndpoint::parse(
        static_cast<std::uint64_t>(i) + 1,
        socks[static_cast<std::size_t>(i)].path()));
  }
  popt.unix_path = socks[4].path();
  popt.quota.rps = 0.0001;
  popt.quota.burst = 3.0;
  Proxy proxy(popt);
  proxy.start();
  ASSERT_EQ(proxy.membership().up_count(), 4u);

  // Distinct traces so the flood provably spans multiple shards.
  std::vector<std::unique_ptr<TempFile>> traces;
  std::set<std::uint64_t> owners;
  for (int i = 0; i < 8; ++i) {
    traces.push_back(std::make_unique<TempFile>("qt"));
    write_trace(traces.back()->path(), 2 + i % 3, 170 + 23 * i);
    const std::uint64_t key =
        server::content_key_of_file(traces.back()->path());
    const auto route = proxy.membership().route(key, 1);
    ASSERT_EQ(route.size(), 1u);
    owners.insert(proxy.membership().endpoint(route[0]).id);
  }
  ASSERT_GE(owners.size(), 3u) << "traces did not spread across shards";

  Client flooder = Client::connect_unix(socks[4].path());
  int admitted = 0, quota_rejected = 0;
  for (int i = 0; i < 16; ++i) {
    Request req = predict_request(
        traces[static_cast<std::size_t>(i) % traces.size()]->path());
    req.client_id = 77;
    const Response r = flooder.call(req);
    if (r.status == Status::kOk) {
      ++admitted;
    } else {
      ASSERT_EQ(r.status, Status::kQuotaExceeded) << r.error;
      EXPECT_GT(r.retry_after_ms, 0);
      EXPECT_NE(r.error.find("quota"), std::string::npos);
      ++quota_rejected;
    }
  }
  EXPECT_EQ(admitted, 3) << "flood was not held to exactly one burst";
  EXPECT_EQ(quota_rejected, 13);

  // The well-behaved client is untouched by the flooder's rejection
  // storm, and its answer matches the offline digest.
  Client polite = Client::connect_unix(socks[4].path());
  Request req = predict_request(traces[0]->path());
  req.client_id = 88;
  const Response r = polite.call(req);
  ASSERT_EQ(r.status, Status::kOk) << r.error;
  EXPECT_EQ(r.digest, offline_predict(traces[0]->path()).digest);

  // The proxy's aggregated stats surface the rejections.
  Request stats;
  stats.type = ReqType::kStats;
  const Response s = polite.call(stats);
  ASSERT_EQ(s.status, Status::kOk);
  EXPECT_EQ(s.stats.quota_rejections, 13u);

  proxy.stop();
  for (auto& sh : shards) sh->stop();
}

// ---- brownout --------------------------------------------------------------

TEST(ProxyBrownoutTest, ShedsColdServesCachedStale) {
  TempFile sock_a{"bo_a"}, sock_b{"bo_b"}, sock_p{"bo_p"};
  server::ServerOptions sa;
  sa.unix_path = sock_a.path();
  sa.jobs = 1;
  sa.shard_id = 1;
  server::ServerOptions sb = sa;
  sb.unix_path = sock_b.path();
  sb.shard_id = 2;
  auto shard_a = std::make_unique<server::Server>(sa);
  auto shard_b = std::make_unique<server::Server>(sb);
  shard_a->start();
  shard_b->start();

  ProxyOptions popt;
  popt.unix_path = sock_p.path();
  popt.shards.push_back(ShardEndpoint::parse(1, sock_a.path()));
  popt.shards.push_back(ShardEndpoint::parse(2, sock_b.path()));
  // 1 of 2 live (50%) is below the 60% floor -> brownout.
  popt.brownout_min_live_pct = 60;
  popt.stale_ms = 60000;
  // Slow re-probe so the downed shard stays ejected for the test body.
  popt.membership.probe_base_ms = 2000;
  popt.membership.probe_cap_ms = 4000;
  Proxy proxy(popt);
  proxy.start();
  ASSERT_EQ(proxy.membership().up_count(), 2u);
  EXPECT_FALSE(proxy.brownout_active());

  // Warm the proxy response cache while the cluster is whole.
  TempFile warm("bo_warm");
  write_trace(warm.path(), 3, 240);
  Client client = Client::connect_unix(sock_p.path());
  const Response first = client.call(predict_request(warm.path()));
  ASSERT_EQ(first.status, Status::kOk) << first.error;
  EXPECT_FALSE(first.served_stale);

  // Take shard 2 down hard; eject it so the ring shrinks immediately.
  shard_b->stop();
  proxy.membership().eject(1);
  std::size_t live = 0, total = 0;
  ASSERT_TRUE(proxy.brownout_active(&live, &total));
  EXPECT_EQ(live, 1u);
  EXPECT_EQ(total, 2u);

  // Repeat request: served from the proxy cache, marked stale+brownout,
  // digest-identical to the fresh answer.
  const Response cached = client.call(predict_request(warm.path()));
  ASSERT_EQ(cached.status, Status::kOk) << cached.error;
  EXPECT_TRUE(cached.served_stale);
  EXPECT_TRUE(cached.brownout);
  EXPECT_GE(cached.stale_age_ms, 0);
  EXPECT_EQ(cached.digest, first.digest);

  // Cold compute: shed with a typed overload carrying the brownout
  // marker and a retry hint — never forwarded to the surviving shard.
  TempFile cold("bo_cold");
  write_trace(cold.path(), 4, 300);
  const Response shed = client.call(predict_request(cold.path()));
  EXPECT_EQ(shed.status, Status::kOverloaded);
  EXPECT_TRUE(shed.brownout);
  EXPECT_GT(shed.retry_after_ms, 0);
  EXPECT_NE(shed.error.find("brownout"), std::string::npos);

  // Health still answers, surfacing the degraded state.
  Request health;
  health.type = ReqType::kHealth;
  const Response h = client.call(health);
  ASSERT_EQ(h.status, Status::kOk);
  EXPECT_TRUE(h.brownout);
  EXPECT_EQ(h.live_shards, 1u);
  EXPECT_EQ(h.total_shards, 2u);
  EXPECT_NE(server::render_health_text(h).find("BROWNOUT"),
            std::string::npos);

  proxy.stop();
  shard_a->stop();
}

// ---- membership epoch transitions ------------------------------------------

TEST(MembershipEpochTest, TransientBlipKeepsEpochRestartChangesIt) {
  TempFile sock{"epoch_shard"};
  server::ServerOptions so;
  so.unix_path = sock.path();
  so.jobs = 1;
  so.shard_id = 1;
  auto shard = std::make_unique<server::Server>(so);
  shard->start();

  MembershipOptions mopt;
  mopt.probe_base_ms = 10;
  mopt.probe_cap_ms = 50;
  Membership m({ShardEndpoint::parse(1, sock.path())}, mopt);
  m.start();
  ASSERT_EQ(m.up_count(), 1u);
  const std::uint64_t epoch_orig = m.snapshot()[0].epoch;
  ASSERT_NE(epoch_orig, 0u);

  // Transient blip: ejected while the process lives on.  The prober
  // re-admits it, and the SAME epoch proves nothing restarted (the
  // shard's cache is still warm).
  m.eject(0);
  EXPECT_EQ(m.up_count(), 0u);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (m.up_count() < 1 && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_EQ(m.up_count(), 1u) << "blip never recovered";
  EXPECT_EQ(m.snapshot()[0].epoch, epoch_orig)
      << "a blip must not look like a restart";
  EXPECT_EQ(m.snapshot()[0].ejections, 1u);

  // Real restart on the same endpoint: a new process binds the same
  // socket.  After the down/up cycle the epoch MUST differ — that is
  // how the proxy knows the cache went cold.
  shard->stop();
  shard.reset();
  m.eject(0);
  shard = std::make_unique<server::Server>(so);
  shard->start();
  deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (m.up_count() < 1 && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_EQ(m.up_count(), 1u) << "restart never recovered";
  EXPECT_NE(m.snapshot()[0].epoch, epoch_orig)
      << "restart-with-same-endpoint must present a fresh epoch";
  EXPECT_EQ(m.snapshot()[0].ejections, 2u);

  m.stop();
  shard->stop();
}

TEST(MembershipEpochTest, DownShardIsReprobedWithBackoffUntilItReturns) {
  TempFile sock{"backoff_shard"};
  server::ServerOptions so;
  so.unix_path = sock.path();
  so.jobs = 1;
  so.shard_id = 1;
  auto shard = std::make_unique<server::Server>(so);
  shard->start();

  MembershipOptions mopt;
  mopt.probe_base_ms = 20;
  mopt.probe_cap_ms = 200;
  Membership m({ShardEndpoint::parse(1, sock.path())}, mopt);
  m.start();
  ASSERT_EQ(m.up_count(), 1u);

  // Kill the shard for real, eject, and hold it down long enough that
  // the prober must fail several times (walking up its backoff).
  shard->stop();
  shard.reset();
  m.eject(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_EQ(m.up_count(), 0u) << "prober resurrected a dead shard";

  // Bring it back: recovery must happen on its own, bounded by the
  // backoff cap (plus generous scheduling slack).
  shard = std::make_unique<server::Server>(so);
  shard->start();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (m.up_count() < 1 && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(m.up_count(), 1u) << "backed-off prober never recovered";

  m.stop();
  shard->stop();
}

// ---- launcher: zombies, pause/resume, crash-loop governance ----------------

TEST(LauncherTest, ReapExitedCollectsSelfCrashedShard) {
  ASSERT_STRNE(VPPB_EXE, "") << "VPPB_EXE not compiled in";
  TempFile dir_guard("reap_dir");
  ClusterOptions copt;
  copt.exe = VPPB_EXE;
  copt.dir = dir_guard.path();
  copt.shards = 1;
  copt.jobs = 1;
  LocalCluster shards(copt);
  shards.start();
  ASSERT_TRUE(shards.alive(0));
  EXPECT_TRUE(shards.reap_exited().empty());

  // The shard dies on its own — no kill_shard, so nobody waitpid()s it
  // and it sits as a zombie until reap_exited collects it.
  ::kill(shards.pid(0), SIGKILL);
  std::vector<std::size_t> exited;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (exited.empty() && std::chrono::steady_clock::now() < deadline) {
    exited = shards.reap_exited();
    if (exited.empty())
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(exited.size(), 1u);
  EXPECT_EQ(exited[0], 0u);
  EXPECT_FALSE(shards.alive(0));

  // And the slot restarts cleanly afterwards.
  shards.restart_shard(0);
  EXPECT_TRUE(shards.alive(0));
  shards.stop();
}

TEST(LauncherTest, PausedShardStopsAnsweringAndResumes) {
  ASSERT_STRNE(VPPB_EXE, "") << "VPPB_EXE not compiled in";
  TempFile dir_guard("pause_dir");
  ClusterOptions copt;
  copt.exe = VPPB_EXE;
  copt.dir = dir_guard.path();
  copt.shards = 1;
  copt.jobs = 1;
  LocalCluster shards(copt);
  shards.start();

  auto probe_ok = [&]() {
    try {
      Client c = Client::connect_unix(shards.shards()[0].unix_path);
      Request req;
      req.type = ReqType::kHealth;
      server::RetryPolicy once;
      once.max_attempts = 1;
      once.request_timeout_ms = 300;
      return c.call_retry(req, once).status == Status::kOk;
    } catch (const Error&) {
      return false;
    }
  };
  ASSERT_TRUE(probe_ok());

  // SIGSTOPped: connects may still land in the kernel backlog, but no
  // response arrives inside the timeout — the gray-failure signature.
  shards.pause_shard(0);
  EXPECT_FALSE(probe_ok());
  shards.resume_shard(0);
  EXPECT_TRUE(probe_ok());

  // stop() must also cope with a paused shard (SIGCONT before SIGTERM,
  // else the blocking waitpid would hang this test forever).
  shards.pause_shard(0);
  shards.stop();
  EXPECT_FALSE(shards.alive(0));
}

TEST(LauncherTest, CrashLoopBacksOffThenRefuses) {
  ASSERT_STRNE(VPPB_EXE, "") << "VPPB_EXE not compiled in";
  TempFile dir_guard("loop_dir");
  ClusterOptions copt;
  copt.exe = VPPB_EXE;
  copt.dir = dir_guard.path();
  copt.shards = 1;
  copt.jobs = 1;
  copt.max_crash_restarts = 3;
  copt.restart_backoff_base_ms = 10;
  copt.restart_backoff_cap_ms = 30;
  LocalCluster shards(copt);
  shards.start();

  // Three rapid crash->restart cycles are tolerated (with backoff)...
  for (int i = 0; i < 3; ++i) {
    shards.kill_shard(0);
    shards.restart_shard(0);
    EXPECT_EQ(shards.restarts(0), i + 1);
  }
  // ...the fourth inside the cool-off window is refused: a shard that
  // cannot stay up should stay down until an operator looks at it.
  shards.kill_shard(0);
  EXPECT_THROW(shards.restart_shard(0), Error);
  EXPECT_FALSE(shards.alive(0));
  shards.stop();
}

}  // namespace
}  // namespace vppb::cluster
