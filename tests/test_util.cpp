// Unit tests for src/util: time arithmetic, parsing, flags, stats, rng,
// and the sweep thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/error.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/time.hpp"

namespace vppb {
namespace {

TEST(SimTime, ConstructionAndConversion) {
  EXPECT_EQ(SimTime::micros(5).ns(), 5000);
  EXPECT_EQ(SimTime::millis(2).us(), 2000);
  EXPECT_DOUBLE_EQ(SimTime::seconds(1.5).seconds_d(), 1.5);
  EXPECT_TRUE(SimTime::zero().is_zero());
}

TEST(SimTime, Arithmetic) {
  const SimTime a = SimTime::micros(10);
  const SimTime b = SimTime::micros(4);
  EXPECT_EQ((a + b).us(), 14);
  EXPECT_EQ((a - b).us(), 6);
  EXPECT_EQ((a * 3).us(), 30);
  EXPECT_EQ(a / b, 2);
  EXPECT_LT(b, a);
  EXPECT_EQ(a.scaled(0.5).us(), 5);
}

TEST(SimTime, Formatting) {
  EXPECT_EQ(SimTime::nanos(12).to_string(), "12ns");
  EXPECT_EQ(SimTime::micros(3).to_string(), "3.000us");
  EXPECT_EQ(SimTime::millis(4).to_string(), "4.000ms");
  EXPECT_EQ(SimTime::seconds(2.5).to_string(), "2.500s");
}

TEST(Strings, Split) {
  const auto f = split("a b  c", ' ');
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[2], "c");
  EXPECT_EQ(split("a,,b", ',', /*keep_empty=*/true).size(), 3u);
  EXPECT_TRUE(split("", ' ').empty());
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x \t\n"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(Strings, ParseI64) {
  std::int64_t v = 0;
  EXPECT_TRUE(parse_i64("-42", v));
  EXPECT_EQ(v, -42);
  EXPECT_FALSE(parse_i64("12x", v));
  EXPECT_FALSE(parse_i64("", v));
  EXPECT_TRUE(parse_i64("9223372036854775807", v));
  EXPECT_FALSE(parse_i64("9223372036854775808", v));
}

TEST(Strings, ParseDouble) {
  double d = 0;
  EXPECT_TRUE(parse_double("2.5e3", d));
  EXPECT_DOUBLE_EQ(d, 2500.0);
  EXPECT_FALSE(parse_double("abc", d));
}

TEST(Flags, ParseAllKinds) {
  Flags flags;
  flags.define_i64("cpus", 1, "processor count");
  flags.define_double("delay", 0.5, "comm delay");
  flags.define_bool("verbose", false, "chatty");
  flags.define_string("out", "x.svg", "output file");
  const char* argv[] = {"prog",      "--cpus=8", "--delay", "1.25",
                        "--verbose", "--out",    "y.svg",   "pos1"};
  flags.parse(8, argv);
  EXPECT_EQ(flags.i64("cpus"), 8);
  EXPECT_DOUBLE_EQ(flags.dbl("delay"), 1.25);
  EXPECT_TRUE(flags.boolean("verbose"));
  EXPECT_EQ(flags.str("out"), "y.svg");
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "pos1");
}

TEST(Flags, NegatedBoolAndErrors) {
  Flags flags;
  flags.define_bool("record", true, "record");
  const char* argv[] = {"prog", "--no-record"};
  flags.parse(2, argv);
  EXPECT_FALSE(flags.boolean("record"));

  Flags bad;
  const char* argv2[] = {"prog", "--nope"};
  EXPECT_THROW(bad.parse(2, argv2), Error);
}

TEST(Flags, MalformedValueThrows) {
  Flags flags;
  flags.define_i64("n", 0, "count");
  const char* argv[] = {"prog", "--n=abc"};
  EXPECT_THROW(flags.parse(2, argv), Error);
}

TEST(Stats, AccumulatorMoments) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_THROW(median({}), Error);
}

TEST(Stats, PredictionErrorMatchesPaperDefinition) {
  // Paper: error = (real - predicted) / real; Ocean 8p: (6.65-6.24)/6.65.
  EXPECT_NEAR(prediction_error(6.65, 6.24), 0.0617, 1e-4);
  EXPECT_DOUBLE_EQ(prediction_error(2.0, 2.0), 0.0);
}

TEST(Stats, HistogramClampsOutOfRange) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(3.0);
  h.add(99.0, 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_weight(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_weight(1), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_weight(4), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
    const auto n = r.below(10);
    EXPECT_LT(n, 10u);
  }
}

TEST(Rng, GaussianMoments) {
  Rng r(42);
  Accumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(r.gaussian(10.0, 2.0));
  EXPECT_NEAR(acc.mean(), 10.0, 0.1);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.1);
}

TEST(Rng, JitterFactorBoundedAndCentered) {
  Rng r(5);
  Accumulator acc;
  for (int i = 0; i < 5000; ++i) {
    const double f = r.jitter_factor(0.02);
    EXPECT_GE(f, 1.0 - 0.08);
    EXPECT_LE(f, 1.0 + 0.08);
    acc.add(f);
  }
  EXPECT_NEAR(acc.mean(), 1.0, 0.01);
  EXPECT_DOUBLE_EQ(r.jitter_factor(0.0), 1.0);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t;
  t.header({"App", "Speed-up"});
  t.row({"Ocean", "6.24"});
  t.row({"FFT", "2.61"});
  const std::string s = t.render();
  EXPECT_NE(s.find("App   | Speed-up"), std::string::npos);
  EXPECT_NE(s.find("------+---------"), std::string::npos);
  EXPECT_NE(s.find("Ocean | 6.24"), std::string::npos);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.jobs(), 4);
  std::vector<std::atomic<int>> hits(101);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ReusableAcrossCallsAndEmptyLoop) {
  util::ThreadPool pool(3);
  std::atomic<int> total{0};
  pool.parallel_for(0, [&](std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 0);
  for (int round = 0; round < 5; ++round)
    pool.parallel_for(17, [&](std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 5 * 17);
}

TEST(ThreadPool, SingleJobRunsInlineInOrder) {
  util::ThreadPool pool(1);
  EXPECT_EQ(pool.jobs(), 1);
  std::vector<std::size_t> order;
  pool.parallel_for(6, [&](std::size_t i) { order.push_back(i); });
  std::vector<std::size_t> expect(6);
  std::iota(expect.begin(), expect.end(), 0u);
  EXPECT_EQ(order, expect) << "no workers -> inline, sequential";
}

TEST(ThreadPool, PropagatesTheFirstException) {
  util::ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [](std::size_t i) {
                                   if (i == 3) throw Error("boom");
                                 }),
               Error);
  // The pool stays usable after a throwing loop.
  std::atomic<int> total{0};
  pool.parallel_for(4, [&](std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 4);
}

TEST(ThreadPool, ResolveJobs) {
  EXPECT_GE(util::ThreadPool::resolve_jobs(0), 1);
  EXPECT_EQ(util::ThreadPool::resolve_jobs(5), 5);
  EXPECT_GE(util::ThreadPool::resolve_jobs(-3), 1);
}

TEST(Error, CheckMacroThrows) {
  EXPECT_THROW(VPPB_CHECK(1 == 2), Error);
  EXPECT_NO_THROW(VPPB_CHECK(1 == 1));
  try {
    VPPB_CHECK_MSG(false, "context " << 42);
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

}  // namespace
}  // namespace vppb
